// Webstore: the paper's introductory example of a deterministic service —
// an on-line store where "each client will get a well-defined response to a
// browse or purchase request". A shopper browses and buys across a primary
// failure without noticing; order identifiers stay consistent because both
// replicas walk through the same per-connection state transitions.
//
// Run with: go run ./examples/webstore
package main

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"tcpfailover"
	"tcpfailover/internal/apps"
	"tcpfailover/internal/netstack"
)

const storePort = 8080

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "webstore:", err)
		os.Exit(1)
	}
}

func run() error {
	opts := tcpfailover.LANOptions()
	opts.ServerPorts = []uint16{storePort}
	sc, err := tcpfailover.NewScenario(opts)
	if err != nil {
		return err
	}
	if err := sc.Group.OnEach(func(h *netstack.Host) error {
		_, err := apps.NewStoreServer(h.TCP(), storePort, apps.DefaultCatalog())
		return err
	}); err != nil {
		return err
	}
	sc.Start()

	conn, err := sc.Client.TCP().Dial(sc.ServiceAddr(), storePort)
	if err != nil {
		return err
	}

	// The shopping session: after the second reply the primary dies; the
	// session continues against the secondary.
	script := []string{
		"BROWSE monitor",
		"BUY monitor 1",
		"BUY keyboard 2",
		"BROWSE monitor", // stock must reflect the earlier purchase
		"QUIT",
	}
	crashAfterReply := 2

	var out strings.Builder
	replies := 0
	step := 0
	closed := false
	buf := make([]byte, 8192)
	advance := func() {
		if step < len(script) {
			fmt.Printf("t=%8.3fms  C> %s\n", sc.Now().Seconds()*1e3, script[step])
			_, _ = conn.Write([]byte(script[step] + "\n"))
			step++
		}
	}
	conn.OnEstablished(advance)
	conn.OnReadable(func() {
		for {
			n, rerr := conn.Read(buf)
			if n > 0 {
				out.Write(buf[:n])
				for _, line := range strings.Split(strings.TrimRight(string(buf[:n]), "\n"), "\n") {
					fmt.Printf("t=%8.3fms  S: %s\n", sc.Now().Seconds()*1e3, line)
				}
				// Every command yields exactly one reply line; advance per line.
				for strings.Count(out.String(), "\n") > replies {
					replies++
					if replies == crashAfterReply && sc.Primary.Alive() {
						fmt.Printf("t=%8.3fms  *** primary crashes ***\n", sc.Now().Seconds()*1e3)
						sc.Group.CrashPrimary()
					}
					advance()
				}
				continue
			}
			if rerr == io.EOF {
				conn.Close()
			}
			return
		}
	})
	conn.OnClose(func(error) { closed = true })

	if err := sc.RunUntil(func() bool { return closed }, 10*time.Minute); err != nil {
		return fmt.Errorf("%w\nsession so far:\n%s", err, out.String())
	}
	fmt.Println("\nsession completed across the failover; transcript is deterministic")
	return nil
}
