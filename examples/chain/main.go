// Chain: three-way daisy-chained replication — the extension the paper
// sketches in its introduction ("Higher degrees of replication can be
// achieved by daisy-chaining multiple backup servers"). A client connection
// survives the failure of *two* of the three replicas, one after the other:
// first the head dies (the middle is promoted via the section 5 takeover),
// then the promoted head dies too (the tail performs a second takeover).
//
// Run with: go run ./examples/chain
package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"tcpfailover"
	"tcpfailover/internal/apps"
	"tcpfailover/internal/netstack"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "chain:", err)
		os.Exit(1)
	}
}

func run() error {
	opts := tcpfailover.LANOptions()
	opts.ServerPorts = []uint16{7}
	opts.Backups = 2 // head <- middle <- tail
	sc, err := tcpfailover.NewScenario(opts)
	if err != nil {
		return err
	}
	if err := sc.Chain.OnEach(func(h *netstack.Host) error {
		_, err := apps.NewEchoServer(h.TCP(), 7)
		return err
	}); err != nil {
		return err
	}
	sc.Chain.OnFailover = func(pos int) {
		names := []string{"head", "middle", "tail"}
		fmt.Printf("t=%9.3fms  chain reconfigured after losing the %s\n",
			sc.Now().Seconds()*1e3, names[pos])
	}
	sc.Start()

	const total = 1 << 20
	conn, err := sc.Client.TCP().Dial(sc.ServiceAddr(), 7)
	if err != nil {
		return err
	}
	var sent, received int64
	badAt := int64(-1)
	chunk := make([]byte, 16*1024)
	pump := func() {
		for sent < total {
			n := min(int64(len(chunk)), total-sent)
			apps.Pattern(chunk[:n], sent)
			m, err := conn.Write(chunk[:n])
			if err != nil || m == 0 {
				return
			}
			sent += int64(m)
		}
		conn.Close()
	}
	rbuf := make([]byte, 16*1024)
	conn.OnEstablished(pump)
	conn.OnWritable(pump)
	conn.OnReadable(func() {
		for {
			n, err := conn.Read(rbuf)
			if n > 0 {
				if badAt < 0 {
					if i := apps.VerifyPattern(rbuf[:n], received); i >= 0 {
						badAt = received + int64(i)
					}
				}
				received += int64(n)
				continue
			}
			if err == io.EOF || n == 0 {
				return
			}
		}
	})

	// First crash: the head, at one third of the stream.
	if err := sc.RunUntil(func() bool { return received > total/3 }, time.Minute); err != nil {
		return err
	}
	fmt.Printf("t=%9.3fms  %d/%d bytes echoed — crashing the HEAD\n",
		sc.Now().Seconds()*1e3, received, total)
	sc.Chain.Crash(0)

	// Second crash: the promoted middle, at two thirds.
	if err := sc.RunUntil(func() bool { return received > 2*total/3 }, 10*time.Minute); err != nil {
		return err
	}
	fmt.Printf("t=%9.3fms  %d/%d bytes echoed — crashing the PROMOTED MIDDLE\n",
		sc.Now().Seconds()*1e3, received, total)
	sc.Chain.Crash(1)

	if err := sc.RunUntil(func() bool { return received == total }, 10*time.Minute); err != nil {
		return err
	}
	fmt.Printf("t=%9.3fms  final byte received — the connection outlived two of three replicas\n",
		sc.Now().Seconds()*1e3)
	fmt.Printf("sent %d, received %d, corruption at %d (-1 = none)\n", sent, received, badAt)
	if received != total || badAt >= 0 {
		return fmt.Errorf("stream damaged")
	}
	return nil
}
