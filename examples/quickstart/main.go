// Quickstart: a replicated echo server that survives a primary crash in the
// middle of a client connection — the paper's headline capability.
//
// The example builds the paper's Figure 1 topology (client, router, primary
// and secondary on a server LAN), installs an echo service on both
// replicas, streams data through one TCP connection, kills the primary
// halfway, and shows the same connection finishing against the secondary
// with every byte intact.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"tcpfailover"
	"tcpfailover/internal/apps"
	"tcpfailover/internal/netstack"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	opts := tcpfailover.LANOptions()
	opts.ServerPorts = []uint16{7} // the echo port
	sc, err := tcpfailover.NewScenario(opts)
	if err != nil {
		return err
	}

	// Active replication: the identical, deterministic application is
	// installed on the primary and the secondary.
	if err := sc.Group.OnEach(func(h *netstack.Host) error {
		_, err := apps.NewEchoServer(h.TCP(), 7)
		return err
	}); err != nil {
		return err
	}
	sc.Start() // fault detectors begin exchanging heartbeats

	// The client connects to the service address (the primary's) and
	// streams 1 MB, verifying the echoed bytes.
	const total = 1 << 20
	conn, err := sc.Client.TCP().Dial(sc.ServiceAddr(), 7)
	if err != nil {
		return err
	}
	var sent, received int64
	badAt := int64(-1)
	closed := false
	chunk := make([]byte, 16*1024)
	pump := func() {
		for sent < total {
			n := min(int64(len(chunk)), total-sent)
			apps.Pattern(chunk[:n], sent)
			m, err := conn.Write(chunk[:n])
			if err != nil || m == 0 {
				return
			}
			sent += int64(m)
		}
		conn.Close()
	}
	rbuf := make([]byte, 16*1024)
	conn.OnEstablished(pump)
	conn.OnWritable(pump)
	conn.OnReadable(func() {
		for {
			n, err := conn.Read(rbuf)
			if n > 0 {
				if badAt < 0 {
					if i := apps.VerifyPattern(rbuf[:n], received); i >= 0 {
						badAt = received + int64(i)
					}
				}
				received += int64(n)
				continue
			}
			if err == io.EOF || n == 0 {
				return
			}
		}
	})
	conn.OnClose(func(err error) {
		closed = true
		if err != nil {
			fmt.Println("connection closed with error:", err)
		}
	})

	// Let the transfer reach the halfway point, then fail the primary.
	if err := sc.RunUntil(func() bool { return received > total/2 }, time.Minute); err != nil {
		return err
	}
	fmt.Printf("t=%8.3fms  %d/%d bytes echoed — crashing the primary now\n",
		sc.Now().Seconds()*1e3, received, total)
	sc.Group.CrashPrimary()

	if err := sc.RunUntil(func() bool { return received == total }, 10*time.Minute); err != nil {
		return err
	}
	fmt.Printf("t=%8.3fms  final byte received; stream recovered through the secondary\n",
		sc.Now().Seconds()*1e3)
	if err := sc.RunUntil(func() bool { return closed }, 10*time.Minute); err != nil {
		return err
	}
	fmt.Printf("t=%8.3fms  connection closed cleanly (includes TIME-WAIT)\n", sc.Now().Seconds()*1e3)
	fmt.Printf("sent %d, received %d, corruption at %d (-1 = none)\n", sent, received, badAt)
	fmt.Printf("secondary bridge: %+v\n", sc.Group.SecondaryBridge().Stats())
	if received != total || badAt >= 0 {
		return fmt.Errorf("stream damaged across failover")
	}
	fmt.Println("the TCP connection survived the primary's failure transparently")
	return nil
}
