// Backend: the paper's section 7.2 scenario — the replicated server acts as
// a TCP *client* toward an unreplicated back-end server T (here a key-value
// store). Both replicas dial T; the bridges merge their SYNs and data so T
// sees a single ordinary connection from the primary's address. After a
// primary failure, the middle tier's client-facing connection *and* its
// server-initiated back-end connection both continue on the secondary.
//
// Run with: go run ./examples/backend
package main

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"tcpfailover"
	"tcpfailover/internal/apps"
	"tcpfailover/internal/netstack"
)

const frontendPort = 8000

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "backend:", err)
		os.Exit(1)
	}
}

func run() error {
	opts := tcpfailover.LANOptions()
	opts.ServerPorts = []uint16{frontendPort}
	// Connections the replicas open toward the back-end port are failover
	// connections too (the paper's port-set method, applied to peer ports).
	opts.PeerPorts = []uint16{apps.KVDefaultPort}
	sc, err := tcpfailover.NewScenario(opts)
	if err != nil {
		return err
	}

	// The unreplicated back end T lives across the router.
	kv, err := apps.NewKVServer(sc.Client.TCP(), apps.KVDefaultPort, map[string]string{
		"configured": "yes",
	})
	if err != nil {
		return err
	}
	// The replicated middle tier dials T once per client session.
	if err := sc.Group.OnEach(func(h *netstack.Host) error {
		_, err := apps.NewFrontend(h.TCP(), frontendPort, tcpfailover.ClientAddr, apps.KVDefaultPort)
		return err
	}); err != nil {
		return err
	}
	sc.Start()

	conn, err := sc.Client.TCP().Dial(sc.ServiceAddr(), frontendPort)
	if err != nil {
		return err
	}
	script := []string{
		"FETCH configured",
		"STORE user:1 alice",
		"FETCH user:1",
		"STORE user:2 bob",
		"FETCH user:2",
		"QUIT",
	}
	crashAfterReply := 2

	step, replies := 0, 0
	closed := false
	var out strings.Builder
	buf := make([]byte, 8192)
	advance := func() {
		if step < len(script) {
			fmt.Printf("t=%8.3fms  C> %s\n", sc.Now().Seconds()*1e3, script[step])
			_, _ = conn.Write([]byte(script[step] + "\n"))
			step++
		}
	}
	conn.OnEstablished(advance)
	conn.OnReadable(func() {
		for {
			n, rerr := conn.Read(buf)
			if n > 0 {
				for _, line := range strings.Split(strings.TrimRight(string(buf[:n]), "\n"), "\n") {
					fmt.Printf("t=%8.3fms  S: %s\n", sc.Now().Seconds()*1e3, line)
				}
				out.Write(buf[:n])
				for strings.Count(out.String(), "\n") > replies {
					replies++
					if replies == crashAfterReply && sc.Primary.Alive() {
						fmt.Printf("t=%8.3fms  *** primary crashes ***\n", sc.Now().Seconds()*1e3)
						sc.Group.CrashPrimary()
					}
					advance()
				}
				continue
			}
			if rerr == io.EOF {
				conn.Close()
			}
			return
		}
	})
	conn.OnClose(func(error) { closed = true })

	if err := sc.RunUntil(func() bool { return closed }, 10*time.Minute); err != nil {
		return fmt.Errorf("%w\ntranscript:\n%s", err, out.String())
	}
	fmt.Printf("\nback end processed %d requests and holds %d keys;\n", kv.Requests, len(kv.Data))
	fmt.Println("it never noticed that its 'client' was a replicated pair that failed over")
	return nil
}
