// FTP: the paper's real-world application (section 9). A replicated FTP
// server behind the bridge serves a client across a wide-area network. Each
// transfer uses a *server-initiated* data connection from port 20 — the
// section 7.2 establishment path — and the session continues across a
// primary failure that strikes between transfers.
//
// Run with: go run ./examples/ftp
package main

import (
	"fmt"
	"os"
	"time"

	"tcpfailover"
	"tcpfailover/internal/apps"
	"tcpfailover/internal/netstack"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ftp:", err)
		os.Exit(1)
	}
}

func run() error {
	opts := tcpfailover.WANOptions()
	opts.ServerPorts = []uint16{apps.FTPControlPort, apps.FTPDataPort}
	sc, err := tcpfailover.NewScenario(opts)
	if err != nil {
		return err
	}
	files := apps.DefaultFTPFiles()
	if err := sc.Group.OnEach(func(h *netstack.Host) error {
		_, err := apps.NewFTPServer(h.TCP(), files)
		return err
	}); err != nil {
		return err
	}
	sc.Start()

	cl, err := apps.NewFTPClient(sc.Client.TCP(), sc.Sched,
		tcpfailover.ClientAddr, sc.ServiceAddr())
	if err != nil {
		return err
	}
	// Model the user-space client's write-loop cost so put rates are
	// meaningful (see EXPERIMENTS.md).
	cl.PutPacing = apps.Pacing{Fixed: 100 * time.Microsecond, PerKB: 300 * time.Microsecond}

	report := func(op string) func(apps.FTPResult) {
		return func(r apps.FTPResult) {
			if r.Err != nil {
				fmt.Printf("t=%7.1fms  %s %-12s FAILED: %v\n",
					sc.Now().Seconds()*1e3, op, r.Name, r.Err)
				return
			}
			fmt.Printf("t=%7.1fms  %s %-12s %8d bytes  %8.2f KB/s  corrupt=%v\n",
				sc.Now().Seconds()*1e3, op, r.Name, r.Bytes, r.RateKBps, r.BadAt >= 0)
		}
	}

	cl.Login(func(r apps.FTPResult) {
		fmt.Printf("t=%7.1fms  logged in to the replicated server\n", sc.Now().Seconds()*1e3)
	})
	cl.Get("small.txt", report("GET"))
	cl.Get("medium.bin", func(r apps.FTPResult) {
		report("GET")(r)
		fmt.Printf("t=%7.1fms  *** primary crashes; session continues on the secondary ***\n",
			sc.Now().Seconds()*1e3)
		sc.Group.CrashPrimary()
	})
	cl.Put("report.dat", 50_000, report("PUT"))
	cl.Get("large.bin", report("GET"))
	done := false
	cl.Done = func() { done = true }
	cl.Quit()

	if err := sc.RunUntil(func() bool { return done }, time.Hour); err != nil {
		return err
	}
	fmt.Printf("t=%7.1fms  session closed; the control connection and every\n",
		sc.Now().Seconds()*1e3)
	fmt.Println("data connection survived (or were established after) the failover")
	return nil
}
