package tcpfailover_test

import (
	"io"
	"strings"
	"testing"
	"time"

	"tcpfailover"
	"tcpfailover/internal/apps"
	"tcpfailover/internal/netstack"
)

// ftpScenario builds a replicated FTP service (control port 21, data
// connections dialed from port 20).
func ftpScenario(t *testing.T, opts tcpfailover.Options) *tcpfailover.Scenario {
	t.Helper()
	opts.ServerPorts = []uint16{apps.FTPControlPort, apps.FTPDataPort}
	sc, err := tcpfailover.NewScenario(opts)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	install := func(h *netstack.Host) error {
		_, err := apps.NewFTPServer(h.TCP(), apps.DefaultFTPFiles())
		return err
	}
	if sc.Group != nil {
		if err := sc.Group.OnEach(install); err != nil {
			t.Fatalf("install ftp: %v", err)
		}
	} else if err := install(sc.Primary); err != nil {
		t.Fatalf("install ftp: %v", err)
	}
	sc.Start()
	return sc
}

func runFTPGetPut(t *testing.T, sc *tcpfailover.Scenario, crashAfterLogin bool) {
	t.Helper()
	cl, err := apps.NewFTPClient(sc.Client.TCP(), sc.Sched, tcpfailover.ClientAddr, sc.ServiceAddr())
	if err != nil {
		t.Fatalf("ftp client: %v", err)
	}
	var results []apps.FTPResult
	record := func(r apps.FTPResult) { results = append(results, r) }
	cl.Login(func(r apps.FTPResult) {
		if r.Err != nil {
			t.Errorf("login: %v", r.Err)
		}
		if crashAfterLogin {
			sc.Group.CrashPrimary()
		}
	})
	cl.Get("medium.bin", record)
	cl.Put("upload.bin", 20000, record)
	cl.Get("small.txt", record)
	done := false
	cl.Done = func() { done = true }
	cl.Quit()

	if err := sc.RunUntil(func() bool { return done }, 10*time.Minute); err != nil {
		t.Fatalf("run: %v (results=%+v)", err, results)
	}
	if len(results) != 3 {
		t.Fatalf("got %d transfer results, want 3: %+v", len(results), results)
	}
	wantBytes := []int64{18637, 20000, 1331}
	for i, r := range results {
		if r.Err != nil {
			t.Errorf("transfer %d (%s): %v", i, r.Name, r.Err)
		}
		if r.Bytes != wantBytes[i] {
			t.Errorf("transfer %d (%s): %d bytes, want %d", i, r.Name, r.Bytes, wantBytes[i])
		}
		if r.BadAt >= 0 {
			t.Errorf("transfer %d (%s): corruption at %d", i, r.Name, r.BadAt)
		}
	}
}

func TestFTPReplicatedFaultFree(t *testing.T) {
	sc := ftpScenario(t, tcpfailover.LANOptions())
	runFTPGetPut(t, sc, false)
	// The data connections are server-initiated through the bridge.
	if got := sc.Group.PrimaryBridge().Stats().ConnsOpened; got < 4 {
		t.Errorf("primary bridge tracked %d connections, want >= 4 (1 control + 3 data)", got)
	}
}

func TestFTPStandardBaseline(t *testing.T) {
	opts := tcpfailover.LANOptions()
	opts.Unreplicated = true
	sc := ftpScenario(t, opts)
	runFTPGetPut(t, sc, false)
}

func TestFTPFailoverDuringSession(t *testing.T) {
	sc := ftpScenario(t, tcpfailover.LANOptions())
	runFTPGetPut(t, sc, true)
	if sc.Group.SecondaryBridge().Active() {
		t.Error("secondary bridge still active after primary crash")
	}
}

func TestFTPOverWAN(t *testing.T) {
	sc := ftpScenario(t, tcpfailover.WANOptions())
	runFTPGetPut(t, sc, false)
}

// TestTwoTierBackend exercises section 7.2: the replicated middle tier
// opens server-initiated connections to an unreplicated back end running on
// the client-side host.
func TestTwoTierBackend(t *testing.T) {
	opts := tcpfailover.LANOptions()
	opts.ServerPorts = []uint16{8000}
	opts.PeerPorts = []uint16{apps.KVDefaultPort}
	sc, err := tcpfailover.NewScenario(opts)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	// The unreplicated back end T lives across the router, on the client
	// host (any unreplicated host works).
	if _, err := apps.NewKVServer(sc.Client.TCP(), apps.KVDefaultPort,
		map[string]string{"motd": "hello"}); err != nil {
		t.Fatalf("kv server: %v", err)
	}
	if err := sc.Group.OnEach(func(h *netstack.Host) error {
		_, err := apps.NewFrontend(h.TCP(), 8000, tcpfailover.ClientAddr, apps.KVDefaultPort)
		return err
	}); err != nil {
		t.Fatalf("install frontend: %v", err)
	}
	sc.Start()

	conn, err := sc.Client.TCP().Dial(sc.ServiceAddr(), 8000)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	var lines []string
	var lr strings.Builder
	buf := make([]byte, 4096)
	conn.OnEstablished(func() {
		_, _ = conn.Write([]byte("FETCH motd\nSTORE greet hi\nFETCH greet\nFETCH missing\nQUIT\n"))
	})
	closed := false
	conn.OnReadable(func() {
		for {
			n, rerr := conn.Read(buf)
			if n > 0 {
				lr.Write(buf[:n])
				continue
			}
			if rerr == io.EOF {
				conn.Close()
			}
			return
		}
	})
	conn.OnClose(func(error) { closed = true })

	if err := sc.RunUntil(func() bool { return closed }, 5*time.Minute); err != nil {
		t.Fatalf("run: %v (got %q)", err, lr.String())
	}
	lines = strings.Split(strings.TrimSpace(lr.String()), "\n")
	want := []string{"200 hello", "201", "200 hi", "404", "221"}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines %q, want %q", len(lines), lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d: got %q want %q", i, lines[i], want[i])
		}
	}
}

// TestStoreReplicated drives the paper's introductory online-store example
// through a failover.
func TestStoreReplicated(t *testing.T) {
	opts := tcpfailover.LANOptions()
	opts.ServerPorts = []uint16{8080}
	sc, err := tcpfailover.NewScenario(opts)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	if err := sc.Group.OnEach(func(h *netstack.Host) error {
		_, err := apps.NewStoreServer(h.TCP(), 8080, apps.DefaultCatalog())
		return err
	}); err != nil {
		t.Fatalf("install store: %v", err)
	}
	sc.Start()

	conn, err := sc.Client.TCP().Dial(sc.ServiceAddr(), 8080)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	var out strings.Builder
	buf := make([]byte, 4096)
	step := 0
	crashed := false
	var send func(s string)
	send = func(s string) { _, _ = conn.Write([]byte(s)) }
	conn.OnEstablished(func() { send("BROWSE keyboard\n") })
	closed := false
	conn.OnReadable(func() {
		for {
			n, rerr := conn.Read(buf)
			if n > 0 {
				out.Write(buf[:n])
				for strings.Count(out.String(), "\n") > step {
					step++
					switch step {
					case 1:
						if !crashed {
							crashed = true
							sc.Group.CrashPrimary()
						}
						send("BUY keyboard 2\n")
					case 2:
						send("BUY mouse 1\n")
					case 3:
						send("QUIT\n")
					}
				}
				continue
			}
			if rerr == io.EOF {
				conn.Close()
			}
			return
		}
	})
	conn.OnClose(func(error) { closed = true })

	if err := sc.RunUntil(func() bool { return closed }, 10*time.Minute); err != nil {
		t.Fatalf("run: %v (got %q)", err, out.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	want := []string{
		"200 keyboard 4999 120 mechanical keyboard",
		"201 ORDER 1000 keyboard 2 9998",
		"201 ORDER 1001 mouse 1 1999",
		"221 bye",
	}
	if len(lines) != len(want) {
		t.Fatalf("got lines %q, want %q", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d: got %q want %q", i, lines[i], want[i])
		}
	}
}

// TestStoreProtocolEdges drives the store's LIST output and malformed
// commands.
func TestStoreProtocolEdges(t *testing.T) {
	opts := tcpfailover.LANOptions()
	opts.ServerPorts = []uint16{8080}
	sc, err := tcpfailover.NewScenario(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Group.OnEach(func(h *netstack.Host) error {
		_, err := apps.NewStoreServer(h.TCP(), 8080, apps.DefaultCatalog())
		return err
	}); err != nil {
		t.Fatal(err)
	}
	sc.Start()

	conn, err := sc.Client.TCP().Dial(sc.ServiceAddr(), 8080)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	buf := make([]byte, 8192)
	closed := false
	conn.OnEstablished(func() {
		_, _ = conn.Write([]byte("LIST\nBROWSE\nBUY keyboard nonsense\nBUY keyboard 0\nFROBNICATE\nQUIT\n"))
	})
	conn.OnReadable(func() {
		for {
			n, rerr := conn.Read(buf)
			if n > 0 {
				out.Write(buf[:n])
				continue
			}
			if rerr == io.EOF {
				conn.Close()
			}
			return
		}
	})
	conn.OnClose(func(error) { closed = true })
	if err := sc.RunUntil(func() bool { return closed }, 10*time.Minute); err != nil {
		t.Fatalf("run: %v (got %q)", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"200 5 items", "keyboard", "cable", "\n.\n",
		"400 usage: BROWSE", "400 bad quantity", "400 unknown command", "221 bye"} {
		if !strings.Contains(got, want) {
			t.Errorf("transcript missing %q:\n%s", want, got)
		}
	}
	// "400 bad quantity" must appear twice (non-numeric and zero).
	if strings.Count(got, "400 bad quantity") != 2 {
		t.Errorf("bad-quantity rejections = %d, want 2", strings.Count(got, "400 bad quantity"))
	}
}

// TestKVProtocolEdges drives the back end's error replies through the
// replicated middle tier.
func TestKVProtocolEdges(t *testing.T) {
	opts := tcpfailover.LANOptions()
	opts.ServerPorts = []uint16{8000}
	opts.PeerPorts = []uint16{apps.KVDefaultPort}
	sc, err := tcpfailover.NewScenario(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := apps.NewKVServer(sc.Client.TCP(), apps.KVDefaultPort, nil); err != nil {
		t.Fatal(err)
	}
	if err := sc.Group.OnEach(func(h *netstack.Host) error {
		_, err := apps.NewFrontend(h.TCP(), 8000, tcpfailover.ClientAddr, apps.KVDefaultPort)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	sc.Start()

	conn, err := sc.Client.TCP().Dial(sc.ServiceAddr(), 8000)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	buf := make([]byte, 4096)
	closed := false
	conn.OnEstablished(func() {
		_, _ = conn.Write([]byte("FETCH missing\nGARBAGE\nSTORE a 1\nFETCH a\nQUIT\n"))
	})
	conn.OnReadable(func() {
		for {
			n, rerr := conn.Read(buf)
			if n > 0 {
				out.Write(buf[:n])
				continue
			}
			if rerr == io.EOF {
				conn.Close()
			}
			return
		}
	})
	conn.OnClose(func(error) { closed = true })
	if err := sc.RunUntil(func() bool { return closed }, 10*time.Minute); err != nil {
		t.Fatalf("run: %v (got %q)", err, out.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	want := []string{"404", "400 unknown command", "201", "200 1", "221"}
	if len(lines) != len(want) {
		t.Fatalf("lines %q, want %q", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d: %q, want %q", i, lines[i], want[i])
		}
	}
}
