package tcpfailover_test

import (
	"testing"
	"time"

	"tcpfailover"
	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/tcp"
)

// The paper's section 4 enumerates the places where message loss can occur
// and how the failover extension must handle each. These tests inject one
// targeted loss per case on a replicated echo connection and require the
// transfer to complete byte-exact.

// frameIsTCPData reports whether the frame carries a TCP segment with
// payload toward the given IP destination.
func frameIsTCPData(f ethernet.Frame, dst ipv4.Addr) bool {
	hdr, payload, err := ipv4.Unmarshal(f.Payload)
	if err != nil || hdr.Protocol != ipv4.ProtoTCP || hdr.Dst != dst {
		return false
	}
	if len(payload) < tcp.HeaderLen {
		return false
	}
	return len(tcp.RawPayload(payload)) > 0
}

// runLossCase runs a replicated echo transfer with the given loss injector
// installed once the stream is warmed up.
func runLossCase(t *testing.T, arm func(sc *tcpfailover.Scenario, fired *int)) {
	t.Helper()
	sc := newEchoScenario(t, tcpfailover.LANOptions())
	ec := startEchoClient(t, sc, 128*1024)

	if err := sc.RunUntil(func() bool { return ec.received > 16*1024 }, time.Minute); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	fired := 0
	arm(sc, &fired)
	if err := sc.RunUntil(func() bool { return ec.closed }, 10*time.Minute); err != nil {
		t.Fatalf("run: %v (sent=%d received=%d)", err, ec.sent, ec.received)
	}
	if fired == 0 {
		t.Fatal("loss injector never fired")
	}
	ec.check(t)
}

// Case 1: "The primary server does not receive a client segment m" — the
// secondary still does. The primary must not acknowledge until it receives
// a retransmission, and its own retransmitted reply is recognized by the
// bridge and sent immediately.
func TestLossCase1PrimaryDropsClientSegment(t *testing.T) {
	runLossCase(t, func(sc *tcpfailover.Scenario, fired *int) {
		primaryNIC := sc.Primary.Iface(0).NIC()
		sc.ServerLAN.SetDropRxFilter(func(dst *ethernet.NIC, f ethernet.Frame) bool {
			if *fired == 0 && dst == primaryNIC && frameIsTCPData(f, tcpfailover.PrimaryAddr) {
				*fired++
				return true
			}
			return false
		})
	})
}

// Case 2: "The secondary server drops the client segment although the
// primary server receives it."
func TestLossCase2SecondaryDropsClientSegment(t *testing.T) {
	runLossCase(t, func(sc *tcpfailover.Scenario, fired *int) {
		secondaryNIC := sc.Secondary.Iface(0).NIC()
		sc.ServerLAN.SetDropRxFilter(func(dst *ethernet.NIC, f ethernet.Frame) bool {
			if *fired == 0 && dst == secondaryNIC && frameIsTCPData(f, tcpfailover.PrimaryAddr) {
				*fired++
				return true
			}
			return false
		})
	})
}

// Case 3: "A client segment is lost on its way to the servers" — neither
// replica receives it; both retransmit their pending reply and the bridge
// sends it twice.
func TestLossCase3ClientSegmentLostOnWire(t *testing.T) {
	runLossCase(t, func(sc *tcpfailover.Scenario, fired *int) {
		sc.ServerLAN.SetDropTxFilter(func(f ethernet.Frame) bool {
			if *fired == 0 && frameIsTCPData(f, tcpfailover.PrimaryAddr) {
				*fired++
				return true
			}
			return false
		})
	})
}

// Case 4: "The secondary server's segment is dropped by the primary" — the
// diverted reply never reaches the bridge, so nothing goes to the client
// until both replicas retransmit.
func TestLossCase4DivertedSegmentDropped(t *testing.T) {
	runLossCase(t, func(sc *tcpfailover.Scenario, fired *int) {
		primaryNIC := sc.Primary.Iface(0).NIC()
		sc.ServerLAN.SetDropRxFilter(func(dst *ethernet.NIC, f ethernet.Frame) bool {
			if *fired > 0 || dst != primaryNIC {
				return false
			}
			hdr, payload, err := ipv4.Unmarshal(f.Payload)
			if err != nil || hdr.Protocol != ipv4.ProtoTCP ||
				hdr.Src != tcpfailover.SecondaryAddr || len(payload) < tcp.HeaderLen {
				return false
			}
			if len(tcp.RawPayload(payload)) == 0 {
				return false
			}
			*fired++
			return true
		})
	})
}

// Case 5: "The primary server's segment is lost on its way to the client."
// Both replicas retransmit; the bridge forwards both copies.
func TestLossCase5MergedSegmentLostTowardClient(t *testing.T) {
	var before int64
	var sc *tcpfailover.Scenario
	runLossCase(t, func(s *tcpfailover.Scenario, fired *int) {
		sc = s
		before = s.Group.PrimaryBridge().Stats().RetransmissionsForwarded
		s.ClientLink.SetDropTxFilter(func(f ethernet.Frame) bool {
			if *fired == 0 && frameIsTCPData(f, tcpfailover.ClientAddr) {
				*fired++
				return true
			}
			return false
		})
	})
	// The bridge must have recognized at least one server retransmission
	// ("the primary server bridge will send two copies of m to C").
	if got := sc.Group.PrimaryBridge().Stats().RetransmissionsForwarded; got <= before {
		t.Errorf("RetransmissionsForwarded = %d, want > %d", got, before)
	}
}

// TestLossSustainedRandom drives the replicated stream through sustained
// random loss on both LANs — every section 4 case occurs repeatedly.
func TestLossSustainedRandom(t *testing.T) {
	opts := tcpfailover.LANOptions()
	opts.ServerLAN.LossRate = 0.01
	opts.ClientLink.LossRate = 0.01
	sc := newEchoScenario(t, opts)
	ec := startEchoClient(t, sc, 256*1024)
	if err := sc.RunUntil(func() bool { return ec.closed }, 30*time.Minute); err != nil {
		t.Fatalf("run: %v (sent=%d received=%d)", err, ec.sent, ec.received)
	}
	ec.check(t)
	if sc.ServerLAN.Stats().Lost == 0 && sc.ClientLink.Stats().Lost == 0 {
		t.Error("no loss actually occurred")
	}
}
