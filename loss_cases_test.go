package tcpfailover_test

import (
	"testing"
	"time"

	"tcpfailover"
	"tcpfailover/internal/fault"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/tcp"
)

// The paper's section 4 enumerates the places where message loss can occur
// and how the failover extension must handle each. These tests inject one
// targeted loss per case — a fault.DropWhen model bound to the right link
// and direction — on a replicated echo connection and require the transfer
// to complete byte-exact.

// payloadIsTCPData reports whether the frame payload carries a TCP segment
// with data toward the given IP destination.
func payloadIsTCPData(p []byte, dst ipv4.Addr) bool {
	hdr, payload, err := ipv4.Unmarshal(p)
	if err != nil || hdr.Protocol != ipv4.ProtoTCP || hdr.Dst != dst {
		return false
	}
	if len(payload) < tcp.HeaderLen {
		return false
	}
	return len(tcp.RawPayload(payload)) > 0
}

// runLossCase runs a replicated echo transfer, arms the impairment arm
// returns once the stream is warmed up, and requires a byte-exact transfer
// with exactly one injected drop.
func runLossCase(t *testing.T, arm func(sc *tcpfailover.Scenario) fault.Impairment) *tcpfailover.Scenario {
	t.Helper()
	sc := newEchoScenario(t, tcpfailover.LANOptions())
	ec := startEchoClient(t, sc, 128*1024)

	if err := sc.RunUntil(func() bool { return ec.received > 16*1024 }, time.Minute); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	if err := sc.Faults.Impair(arm(sc)); err != nil {
		t.Fatalf("impair: %v", err)
	}
	if err := sc.RunUntil(func() bool { return ec.closed }, 10*time.Minute); err != nil {
		t.Fatalf("run: %v (sent=%d received=%d)", err, ec.sent, ec.received)
	}
	if got := sc.Faults.Stats().Dropped; got != 1 {
		t.Fatalf("injected drops = %d, want 1", got)
	}
	ec.check(t)
	return sc
}

// Case 1: "The primary server does not receive a client segment m" — the
// secondary still does. The primary must not acknowledge until it receives
// a retransmission, and its own retransmitted reply is recognized by the
// bridge and sent immediately.
func TestLossCase1PrimaryDropsClientSegment(t *testing.T) {
	runLossCase(t, func(sc *tcpfailover.Scenario) fault.Impairment {
		return fault.Impairment{
			Link: fault.LinkServerLAN, To: fault.RolePrimary,
			Models: []fault.Spec{fault.DropWhen(func(p []byte) bool {
				return payloadIsTCPData(p, tcpfailover.PrimaryAddr)
			}, 1)},
		}
	})
}

// Case 2: "The secondary server drops the client segment although the
// primary server receives it."
func TestLossCase2SecondaryDropsClientSegment(t *testing.T) {
	runLossCase(t, func(sc *tcpfailover.Scenario) fault.Impairment {
		return fault.Impairment{
			Link: fault.LinkServerLAN, To: fault.RoleSecondary,
			Models: []fault.Spec{fault.DropWhen(func(p []byte) bool {
				return payloadIsTCPData(p, tcpfailover.PrimaryAddr)
			}, 1)},
		}
	})
}

// Case 3: "A client segment is lost on its way to the servers" — a
// transmit-side drop, so neither replica receives it; both retransmit their
// pending reply and the bridge sends it twice.
func TestLossCase3ClientSegmentLostOnWire(t *testing.T) {
	runLossCase(t, func(sc *tcpfailover.Scenario) fault.Impairment {
		return fault.Impairment{
			Link: fault.LinkServerLAN,
			Models: []fault.Spec{fault.DropWhen(func(p []byte) bool {
				return payloadIsTCPData(p, tcpfailover.PrimaryAddr)
			}, 1)},
		}
	})
}

// Case 4: "The secondary server's segment is dropped by the primary" — the
// diverted reply never reaches the bridge, so nothing goes to the client
// until both replicas retransmit.
func TestLossCase4DivertedSegmentDropped(t *testing.T) {
	runLossCase(t, func(sc *tcpfailover.Scenario) fault.Impairment {
		return fault.Impairment{
			Link: fault.LinkServerLAN, From: fault.RoleSecondary, To: fault.RolePrimary,
			Models: []fault.Spec{fault.DropWhen(func(p []byte) bool {
				hdr, payload, err := ipv4.Unmarshal(p)
				if err != nil || hdr.Protocol != ipv4.ProtoTCP ||
					hdr.Src != tcpfailover.SecondaryAddr || len(payload) < tcp.HeaderLen {
					return false
				}
				return len(tcp.RawPayload(payload)) > 0
			}, 1)},
		}
	})
}

// Case 5: "The primary server's segment is lost on its way to the client."
// Both replicas retransmit; the bridge forwards both copies.
func TestLossCase5MergedSegmentLostTowardClient(t *testing.T) {
	var before int64
	sc := runLossCase(t, func(sc *tcpfailover.Scenario) fault.Impairment {
		before = sc.Group.PrimaryBridge().Stats().RetransmissionsForwarded
		return fault.Impairment{
			Link: fault.LinkClientLink,
			Models: []fault.Spec{fault.DropWhen(func(p []byte) bool {
				return payloadIsTCPData(p, tcpfailover.ClientAddr)
			}, 1)},
		}
	})
	// The bridge must have recognized at least one server retransmission
	// ("the primary server bridge will send two copies of m to C").
	if got := sc.Group.PrimaryBridge().Stats().RetransmissionsForwarded; got <= before {
		t.Errorf("RetransmissionsForwarded = %d, want > %d", got, before)
	}
}

// TestLossSustainedRandom drives the replicated stream through sustained
// random loss on both LANs — every section 4 case occurs repeatedly.
func TestLossSustainedRandom(t *testing.T) {
	opts := tcpfailover.LANOptions()
	opts.Faults = &fault.Plan{Impairments: []fault.Impairment{
		{Link: fault.LinkServerLAN, Models: []fault.Spec{fault.Bernoulli(0.01)}},
		{Link: fault.LinkClientLink, Models: []fault.Spec{fault.Bernoulli(0.01)}},
	}}
	sc := newEchoScenario(t, opts)
	ec := startEchoClient(t, sc, 256*1024)
	if err := sc.RunUntil(func() bool { return ec.closed }, 30*time.Minute); err != nil {
		t.Fatalf("run: %v (sent=%d received=%d)", err, ec.sent, ec.received)
	}
	ec.check(t)
	if sc.Faults.Stats().Dropped == 0 {
		t.Error("no loss actually occurred")
	}
}

// TestLossSustainedBursty repeats the sustained-loss transfer through a
// Gilbert–Elliott bursty channel, where consecutive losses defeat
// single-retransmission recovery paths.
func TestLossSustainedBursty(t *testing.T) {
	opts := tcpfailover.LANOptions()
	opts.Faults = &fault.Plan{Impairments: []fault.Impairment{
		{Link: fault.LinkServerLAN, Models: []fault.Spec{fault.BurstyLoss(0.01)}},
		{Link: fault.LinkClientLink, Models: []fault.Spec{fault.BurstyLoss(0.01)}},
	}}
	sc := newEchoScenario(t, opts)
	ec := startEchoClient(t, sc, 256*1024)
	if err := sc.RunUntil(func() bool { return ec.closed }, 30*time.Minute); err != nil {
		t.Fatalf("run: %v (sent=%d received=%d)", err, ec.sent, ec.received)
	}
	ec.check(t)
	if sc.Faults.Stats().Dropped == 0 {
		t.Error("no loss actually occurred")
	}
}
