package tcpfailover_test

import (
	"fmt"
	"math/rand"
	"testing"

	"tcpfailover/internal/replica"
)

// TestPropertyRandomizedSweep draws random (seed, crash point, role, loss)
// combinations and requires the exactly-once stream property for each. The
// combinations differ every run of the generator seed below but are fixed
// across CI runs — change sweepSeed to explore new corners.
func TestPropertyRandomizedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized sweep skipped in -short mode")
	}
	const sweepSeed = 20260704
	rng := rand.New(rand.NewSource(sweepSeed))
	for i := range 16 {
		seed := rng.Int63n(1 << 30)
		frac := 0.05 + 0.9*rng.Float64()
		role := replica.RolePrimary
		if rng.Intn(2) == 1 {
			role = replica.RoleSecondary
		}
		loss := 0.0
		if rng.Intn(2) == 1 {
			loss = 0.002 + 0.01*rng.Float64()
		}
		name := fmt.Sprintf("case%02d_seed%d_%s_at%.0f%%_loss%.3f", i, seed, role, frac*100, loss)
		t.Run(name, func(t *testing.T) {
			propertyRun(t, seed, frac, role, loss)
		})
	}
}
