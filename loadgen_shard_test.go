package tcpfailover_test

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"tcpfailover"
	"tcpfailover/internal/apps"
	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/fault"
	"tcpfailover/internal/loadgen"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/sim"
)

// TestLoadgenShardedDifferential extends the sharded byte-identity gate to
// the open-loop load generator: both cells run workload-zoo traffic against
// their HTTP service while cell 0's primary crashes mid-run. Partitioning
// the cells across 1 or 2 domain schedulers must not change a single event
// — per-stream digests, the merged metrics snapshot, and every generator
// counter (including the full latency histogram) must be identical. The
// generator makes this possible by pre-drawing each session's shape from
// its own split stream at the arrival instant, so no random draw depends on
// cross-cell event interleaving.
func TestLoadgenShardedDifferential(t *testing.T) {
	type result struct {
		digests  []sim.StreamDigest
		snapshot []byte
		stats    []loadgen.Stats
	}
	run := func(shards int) result {
		t.Helper()
		opts := tcpfailover.ShardedOptions{
			Cells:     2,
			Shards:    shards,
			Cell:      tcpfailover.LANOptions(),
			CrossLink: ethernet.XConfig{Latency: 500 * time.Microsecond},
			Digest:    true,
		}
		opts.Cell.ServerPorts = []uint16{80}
		ss, err := tcpfailover.NewSharded(opts)
		if err != nil {
			t.Fatalf("sharded scenario: %v", err)
		}
		for _, cell := range ss.Cells {
			cell.Stream.Use()
			if err := cell.Group.OnEach(func(h *netstack.Host) error {
				_, err := apps.NewHTTPServer(h.TCP(), 80)
				return err
			}); err != nil {
				t.Fatalf("cell %d install: %v", cell.Index, err)
			}
		}
		ss.Start()

		spec, err := loadgen.Zoo("web", 40)
		if err != nil {
			t.Fatal(err)
		}
		gens := make([]*loadgen.Generator, len(ss.Cells))
		for _, cell := range ss.Cells {
			cell.Stream.Use()
			gens[cell.Index] = loadgen.New(loadgen.Config{
				Sched: cell.Sched,
				Stack: cell.Client.TCP(),
				Addr:  cell.ServiceAddr(),
				Port:  80,
				Spec:  spec,
				Rand:  fault.NewRand(uint64(1000 + cell.Index)),
				Stop:  1200 * time.Millisecond,
			})
			gens[cell.Index].Start(0)
		}
		// Crash cell 0's primary mid-run; the takeover happens under load.
		cell0 := ss.Cells[0]
		cell0.Stream.Use()
		cell0.Sched.At(600*time.Millisecond, "test.crash", func() {
			cell0.Group.CrashPrimary()
		})

		if err := ss.RunUntil(2 * time.Second); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		r := result{digests: ss.Digests()}
		for _, g := range gens {
			r.stats = append(r.stats, g.Stats)
		}
		blob, err := json.Marshal(ss.MergedSnapshot())
		if err != nil {
			t.Fatal(err)
		}
		r.snapshot = blob
		return r
	}

	seq := run(1)
	par := run(2)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("open-loop sharded run differs between 1 and 2 shards")
		for i := range seq.stats {
			if !reflect.DeepEqual(seq.stats[i], par.stats[i]) {
				t.Errorf("cell %d stats:\nshards=1: %+v\nshards=2: %+v",
					i, statsLine(seq.stats[i]), statsLine(par.stats[i]))
			}
		}
		if !reflect.DeepEqual(seq.digests, par.digests) {
			t.Errorf("digests:\nshards=1: %v\nshards=2: %v", seq.digests, par.digests)
		}
	}
	// The differential must compare live traffic, including a completed
	// takeover on the crashed cell.
	for i, st := range seq.stats {
		if st.Arrivals == 0 || st.Completed == 0 {
			t.Errorf("cell %d generator idle: arrivals=%d completed=%d",
				i, st.Arrivals, st.Completed)
		}
	}
}

// statsLine summarizes a Stats for failure output without dumping the
// histogram's 1888 buckets.
func statsLine(s loadgen.Stats) string {
	b, _ := json.Marshal(map[string]int64{
		"arrivals": s.Arrivals, "dialErrors": s.DialErrors, "requests": s.Requests,
		"completed": s.Completed, "failed": s.Failed, "bytesIn": s.BytesIn,
		"latN": s.Lat.N(), "latMax": int64(s.Lat.Max()),
	})
	return string(b)
}
