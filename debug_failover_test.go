package tcpfailover_test

import (
	"os"
	"testing"
	"time"

	"tcpfailover"
	"tcpfailover/internal/trace"
)

// Failover debugging traces; enable with TCPFAILOVER_TRACE=1.

func TestDebugFailoverPrimary(t *testing.T) {
	if os.Getenv("TCPFAILOVER_TRACE") == "" {
		t.Skip("set TCPFAILOVER_TRACE=1 to dump a packet trace")
	}
	size := int64(64 * 1024)
	if os.Getenv("TCPFAILOVER_SIZE") != "" {
		size = 1024 * 1024
	}
	sc := newEchoScenario(t, tcpfailover.LANOptions())
	ec := startEchoClient(t, sc, size)
	warm := func() bool { return ec.received > 64*1024 }
	if os.Getenv("TCPFAILOVER_LATE") != "" {
		warm = func() bool { return ec.received > size/2 }
	}
	if err := sc.RunUntil(warm, 60*time.Second); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	t.Logf("crashing primary at %v (sent=%d received=%d)", sc.Now(), ec.sent, ec.received)
	tr := trace.New(os.Stderr)
	tr.Attach(sc.Client)
	tr.Attach(sc.Secondary)
	tr.Attach(sc.Router)
	sc.Group.CrashPrimary()
	_ = sc.RunUntil(func() bool { return ec.closed }, sc.Now()+300*time.Second)
	t.Logf("end at %v: sent=%d received=%d closed=%v err=%v taken=%d",
		sc.Now(), ec.sent, ec.received, ec.closed, ec.err,
		sc.Group.SecondaryBridge().Stats().TakenOver)
}

func TestDebugFailoverSecondary(t *testing.T) {
	if os.Getenv("TCPFAILOVER_TRACE") == "" {
		t.Skip("set TCPFAILOVER_TRACE=1 to dump a packet trace")
	}
	sc := newEchoScenario(t, tcpfailover.LANOptions())
	ec := startEchoClient(t, sc, 64*1024)
	if err := sc.RunUntil(func() bool { return ec.received > 64*1024 }, 60*time.Second); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	t.Logf("crashing secondary at %v (sent=%d received=%d)", sc.Now(), ec.sent, ec.received)
	tr := trace.New(os.Stderr)
	tr.Attach(sc.Client)
	tr.Attach(sc.Primary)
	sc.Group.CrashSecondary()
	_ = sc.RunUntil(func() bool { return ec.closed }, sc.Now()+3*time.Second)
	t.Logf("end at %v: sent=%d received=%d closed=%v err=%v degraded=%v",
		sc.Now(), ec.sent, ec.received, ec.closed, ec.err,
		sc.Group.PrimaryBridge().Degraded())
}
