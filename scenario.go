// Package tcpfailover is a faithful reproduction, as a deterministic
// user-space simulation, of "Transparent TCP Connection Failover" (Koch,
// Hortikar, Moser, Melliar-Smith; DSN 2003): a bridge sublayer between the
// TCP and IP layers of a replicated server that fails a TCP endpoint over
// from a primary to a secondary server transparently to the client and to
// the server application.
//
// The package exposes a scenario builder that reconstructs the paper's
// testbed (Figure 1): a client host behind a router, and a server LAN
// carrying the primary, the secondary (snooping in promiscuous mode), and
// the replication machinery. Everything below the applications — Ethernet,
// ARP, IPv4, TCP, the bridges, the fault detectors — is implemented in the
// internal packages from scratch on top of a discrete-event engine, so
// experiments run reproducibly and report microsecond-scale virtual-time
// measurements comparable to the paper's.
package tcpfailover

import (
	"errors"
	"fmt"
	"time"

	"tcpfailover/internal/arp"
	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/fault"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/obs"
	"tcpfailover/internal/replica"
	"tcpfailover/internal/sim"
	"tcpfailover/internal/tcp"
)

// Well-known scenario addresses (cell 0; see planCell for replicated cells).
var (
	ClientAddr    = ipv4.MustParseAddr("10.0.2.1")
	PrimaryAddr   = ipv4.MustParseAddr("10.0.1.1")
	SecondaryAddr = ipv4.MustParseAddr("10.0.1.2")
	TertiaryAddr  = ipv4.MustParseAddr("10.0.1.3")
	routerLANAddr = ipv4.MustParseAddr("10.0.1.254")
	routerWANAddr = ipv4.MustParseAddr("10.0.2.254")

	serverPrefix = ipv4.PrefixFrom(ipv4.MustParseAddr("10.0.1.0"), 24)
	clientPrefix = ipv4.PrefixFrom(ipv4.MustParseAddr("10.0.2.0"), 24)
	defaultRoute = ipv4.PrefixFrom(0, 0)
)

// cellPlan is the address and MAC plan for one testbed cell. The sharded
// builder (shard.go) replicates the paper's Figure 1 once per cell; cell i
// uses the 10.<i>.1.0/24 server subnet and 10.<i>.2.0/24 client subnet, so
// cell 0 is bit-identical to the historical single-cell plan above.
type cellPlan struct {
	index     int
	client    ipv4.Addr
	primary   ipv4.Addr
	secondary ipv4.Addr
	tertiary  ipv4.Addr
	routerLAN ipv4.Addr
	routerWAN ipv4.Addr
	serverPfx ipv4.Prefix
	clientPfx ipv4.Prefix

	macC, macP, macS, macT, macR1, macR2 ethernet.MAC
}

// maxCells bounds the cell index: the second address octet carries it, and
// octet 100 is reserved for the inter-cell trunk subnets.
const maxCells = 64

func planCell(i int) cellPlan {
	if i < 0 || i >= maxCells {
		panic(fmt.Sprintf("tcpfailover: cell index %d out of range [0,%d)", i, maxCells))
	}
	o := byte(i)
	return cellPlan{
		index:     i,
		client:    ipv4.AddrFrom4(10, o, 2, 1),
		primary:   ipv4.AddrFrom4(10, o, 1, 1),
		secondary: ipv4.AddrFrom4(10, o, 1, 2),
		tertiary:  ipv4.AddrFrom4(10, o, 1, 3),
		routerLAN: ipv4.AddrFrom4(10, o, 1, 254),
		routerWAN: ipv4.AddrFrom4(10, o, 2, 254),
		serverPfx: ipv4.PrefixFrom(ipv4.AddrFrom4(10, o, 1, 0), 24),
		clientPfx: ipv4.PrefixFrom(ipv4.AddrFrom4(10, o, 2, 0), 24),
		macC:      ethernet.MAC{2, 0, 0, o, 0, 0x0c},
		macP:      ethernet.MAC{2, 0, 0, o, 0, 0x01},
		macS:      ethernet.MAC{2, 0, 0, o, 0, 0x02},
		macT:      ethernet.MAC{2, 0, 0, o, 0, 0x03},
		macR1:     ethernet.MAC{2, 0, 0, o, 0, 0xf1},
		macR2:     ethernet.MAC{2, 0, 0, o, 0, 0xf2},
	}
}

// Options configures a Scenario.
type Options struct {
	// Seed drives the deterministic RNG (ISS choice, loss, jitter).
	Seed int64
	// Unreplicated builds a standard single-server scenario (the paper's
	// "standard TCP" baseline): no secondary, no bridges.
	Unreplicated bool
	// Backups selects the replication degree: 1 (default) builds the
	// paper's two-way pair; 2 builds the daisy-chained three-way group the
	// paper sketches as an extension (head <- middle <- tail).
	Backups int
	// HostProfile sets per-host processing costs. Zero value uses
	// DefaultProfile (calibrated against the paper's testbed).
	HostProfile netstack.Profile
	// ServerLAN configures the server-side Ethernet segment. Zero value is
	// 100 Mbit/s half-duplex.
	ServerLAN ethernet.Config
	// ClientLink configures the client-router link. Zero value is
	// 100 Mbit/s; WANOptions substitutes a slow lossy link.
	ClientLink ethernet.Config
	// TCP configures every host's TCP stack.
	TCP tcp.Config
	// ServerPorts lists the replicated service ports (failover-enabled).
	ServerPorts []uint16
	// PeerPorts marks server-initiated connections to these remote ports
	// as failover connections.
	PeerPorts []uint16
	// Replication carries the remaining replica.Config knobs.
	Replication replica.Config
	// RouterARPDelay models the router's ARP-table update latency, part of
	// the takeover window T.
	RouterARPDelay time.Duration
	// ColdARP leaves ARP caches empty; by default they are pre-warmed, as
	// in the paper's measurements.
	ColdARP bool
	// ARPAuth installs binding filters on every station's ARP modules,
	// pinning each scenario address to the MAC (or, for the service
	// address, the replica-group MACs) the cell plan assigns it. The
	// legitimate takeover announce still rebinds the service address; a
	// rogue station's forged gratuitous ARP is rejected and counted. Off by
	// default — classic unauthenticated ARP, as the paper's testbed ran.
	ARPAuth bool
	// StartDetectors starts heartbeat fault detectors (default true for
	// replicated scenarios). Disable for microbenchmarks that want a quiet
	// event queue.
	StartDetectors *bool
	// Faults declares seeded link impairments and a failure schedule (see
	// internal/fault). Impairments are installed at build time; the
	// schedule is armed by Start. Nil means a clean network — but
	// Scenario.Faults still exists, so impairments can be added mid-run.
	Faults *fault.Plan
	// CellIndex selects the cell's address/MAC plan in a sharded multi-cell
	// topology (see NewSharded). The default 0 is the historical single-cell
	// plan, so plain scenarios are unchanged.
	CellIndex int
	// Spans enables fleet span tracing: a per-connection lifecycle recorder
	// is attached to the client stack and the replica group, and the crash
	// schedule stamps the fleet failure mark. Off by default — the recorder
	// is pointer-free and alloc-free in the steady state, but the hooks
	// still cost a branch per segment event.
	Spans bool
	// SpanLimit bounds the live spans (LRU eviction beyond the cap, like
	// the bridge flow caches); 0 means unbounded.
	SpanLimit int
}

// LANOptions returns the paper's LAN testbed: 100 Mbit/s Ethernet
// everywhere, warm ARP caches.
func LANOptions() Options {
	return Options{
		Seed:        1,
		HostProfile: netstack.DefaultProfile(),
		ServerLAN:   ethernet.Config{HalfDuplex: true, CollisionProb: 0.03, Propagation: time.Microsecond},
		ClientLink:  ethernet.Config{HalfDuplex: true, CollisionProb: 0.03, Propagation: time.Microsecond},
		ServerPorts: []uint16{80},
	}
}

// WANOptions returns the paper's wide-area FTP environment: the client
// reaches the server site over a slow, jittery, lossy bottleneck.
func WANOptions() Options {
	o := LANOptions()
	o.ClientLink = ethernet.Config{
		BandwidthBps: 1_544_000, // T1-class bottleneck
		Propagation:  5 * time.Millisecond,
		LossRate:     0.002,
		Jitter:       4 * time.Millisecond,
	}
	return o
}

// Scenario is an assembled simulation of the paper's testbed.
type Scenario struct {
	Sched  *sim.Scheduler
	Client *netstack.Host
	// Primary is the (only) server in unreplicated scenarios.
	Primary   *netstack.Host
	Secondary *netstack.Host
	Router    *netstack.Host
	// Group is nil for unreplicated and chained scenarios.
	Group *replica.Group
	// Tertiary is the second backup in a chained scenario (Backups: 2).
	Tertiary *netstack.Host
	// Chain is non-nil for chained scenarios.
	Chain *replica.Chain

	ServerLAN  *ethernet.Segment
	ClientLink *ethernet.Segment

	// Faults manages the scenario's impairment injectors and partitions.
	// It is always non-nil; Options.Faults pre-populates it.
	Faults *fault.Set

	// Obs is the scenario's metrics registry. Every instrumented component
	// (scheduler, links, hosts, bridges, fault injectors) is attached at
	// build time, so steady-state updates are handle stores with no lookup.
	Obs *obs.Registry

	// Spans is the fleet span recorder, non-nil when Options.Spans is set:
	// per-connection lifecycle milestones recorded by the client stack and
	// the secondary bridge, plus the failure/detect/takeover fleet marks.
	Spans *obs.SpanRecorder

	opts          Options
	plan          cellPlan
	scheduleArmed bool
}

// ErrTimeout is returned by RunUntil when the condition does not hold
// before the deadline.
var ErrTimeout = errors.New("tcpfailover: condition not met before deadline")

// NewScenario builds the topology of the paper's Figure 1.
func NewScenario(opts Options) (*Scenario, error) {
	return newScenarioOn(sim.New(opts.Seed), opts)
}

// newScenarioOn builds one testbed cell on an existing scheduler. The
// sharded builder uses it to place several cells on one domain scheduler;
// the plain path hands it a fresh scheduler, which makes the two builds
// literally the same code.
func newScenarioOn(sched *sim.Scheduler, opts Options) (*Scenario, error) {
	if opts.HostProfile == (netstack.Profile{}) {
		opts.HostProfile = netstack.DefaultProfile()
	}
	plan := planCell(opts.CellIndex)
	sc := &Scenario{Sched: sched, opts: opts, plan: plan}

	sc.ServerLAN = ethernet.NewSegment(sched, opts.ServerLAN)
	sc.ClientLink = ethernet.NewSegment(sched, opts.ClientLink)

	sc.Router = netstack.NewHost(sched, "router", opts.HostProfile)
	sc.Router.SetForwarding(true)
	sc.Router.AttachIface(sc.ServerLAN, plan.macR1, plan.routerLAN, plan.serverPfx)  // if 0
	sc.Router.AttachIface(sc.ClientLink, plan.macR2, plan.routerWAN, plan.clientPfx) // if 1
	if opts.RouterARPDelay > 0 {
		sc.Router.SetARPConfig(0, arp.Config{ProcessingDelay: opts.RouterARPDelay})
	}

	sc.Client = netstack.NewHost(sched, "client", opts.HostProfile)
	sc.Client.SetTCPConfig(opts.TCP)
	sc.Client.AttachIface(sc.ClientLink, plan.macC, plan.client, plan.clientPfx)
	sc.Client.AddRoute(defaultRoute, plan.routerWAN, 0)

	sc.Primary = netstack.NewHost(sched, "primary", opts.HostProfile)
	sc.Primary.SetTCPConfig(opts.TCP)
	sc.Primary.AttachIface(sc.ServerLAN, plan.macP, plan.primary, plan.serverPfx)
	sc.Primary.AddRoute(defaultRoute, plan.routerLAN, 0)

	if !opts.Unreplicated {
		sc.Secondary = netstack.NewHost(sched, "secondary", opts.HostProfile)
		sc.Secondary.SetTCPConfig(opts.TCP)
		sc.Secondary.AttachIface(sc.ServerLAN, plan.macS, plan.secondary, plan.serverPfx)
		sc.Secondary.AddRoute(defaultRoute, plan.routerLAN, 0)

		cfg := opts.Replication
		cfg.ServerPorts = append(cfg.ServerPorts, opts.ServerPorts...)
		cfg.PeerPorts = append(cfg.PeerPorts, opts.PeerPorts...)
		switch opts.Backups {
		case 0, 1:
			group, err := replica.NewGroup(sc.Primary, sc.Secondary, cfg)
			if err != nil {
				return nil, fmt.Errorf("scenario: %w", err)
			}
			sc.Group = group
		case 2:
			sc.Tertiary = netstack.NewHost(sched, "tertiary", opts.HostProfile)
			sc.Tertiary.SetTCPConfig(opts.TCP)
			sc.Tertiary.AttachIface(sc.ServerLAN, plan.macT, plan.tertiary, plan.serverPfx)
			sc.Tertiary.AddRoute(defaultRoute, plan.routerLAN, 0)
			chain, err := replica.NewChain(sc.Primary, sc.Secondary, sc.Tertiary, cfg)
			if err != nil {
				return nil, fmt.Errorf("scenario: %w", err)
			}
			sc.Chain = chain
		default:
			return nil, fmt.Errorf("scenario: unsupported replication degree %d", opts.Backups)
		}
	}

	if !opts.ColdARP {
		sc.warmARP()
	}
	if opts.ARPAuth {
		sc.installARPAuth()
	}

	serverStations := map[fault.Role]*ethernet.NIC{
		fault.RoleRouter:  sc.Router.Iface(0).NIC(),
		fault.RolePrimary: sc.Primary.Iface(0).NIC(),
	}
	if sc.Secondary != nil {
		serverStations[fault.RoleSecondary] = sc.Secondary.Iface(0).NIC()
	}
	if sc.Tertiary != nil {
		serverStations[fault.RoleTertiary] = sc.Tertiary.Iface(0).NIC()
	}
	topo := fault.Topology{
		Links: map[fault.LinkID]*ethernet.Segment{
			fault.LinkServerLAN:  sc.ServerLAN,
			fault.LinkClientLink: sc.ClientLink,
		},
		Stations: map[fault.LinkID]map[fault.Role]*ethernet.NIC{
			fault.LinkServerLAN: serverStations,
			fault.LinkClientLink: {
				fault.RoleClient: sc.Client.Iface(0).NIC(),
				fault.RoleRouter: sc.Router.Iface(1).NIC(),
			},
		},
	}
	sc.Faults = fault.NewSet(sched, opts.Seed, topo)
	sc.Obs = obs.NewRegistry()
	sc.attachObs()
	if opts.Spans {
		sc.Spans = obs.NewSpanRecorder(opts.SpanLimit)
		sc.Spans.AttachObs(sc.Obs)
		sc.Client.TCP().AttachSpans(sc.Spans)
		if sc.Group != nil {
			sc.Group.AttachSpans(sc.Spans)
		}
	}
	if opts.Faults != nil {
		if err := sc.Faults.Apply(opts.Faults.Impairments); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		for i, step := range opts.Faults.Schedule {
			if err := sc.validateStep(step); err != nil {
				return nil, fmt.Errorf("scenario: schedule step %d: %w", i, err)
			}
		}
	}
	return sc, nil
}

// attachObs resolves every component's metric handles against the
// scenario registry. Runs once inside NewScenario, before any traffic, so
// connections and injectors created later inherit live handles.
func (sc *Scenario) attachObs() {
	reg := sc.Obs
	sc.Sched.AttachObs(reg)
	sc.ServerLAN.AttachObs(reg, "serverlan")
	sc.ClientLink.AttachObs(reg, "clientlink")
	for _, h := range []*netstack.Host{sc.Client, sc.Primary, sc.Secondary, sc.Tertiary, sc.Router} {
		if h != nil {
			h.AttachObs(reg)
		}
	}
	if sc.Group != nil {
		sc.Group.PrimaryBridge().AttachObs(reg, "primary")
		sc.Group.SecondaryBridge().AttachObs(reg, "secondary")
	}
	sc.Faults.AttachObs(reg)
}

// validateStep rejects schedule steps the assembled topology cannot honor,
// so misconfigured plans fail at build time rather than mid-run.
func (sc *Scenario) validateStep(step fault.Step) error {
	switch step.Op {
	case fault.OpCrashPrimary:
		return nil
	case fault.OpCrashSecondary:
		if sc.Secondary == nil {
			return errors.New("crash-secondary in an unreplicated scenario")
		}
	case fault.OpCrashTertiary:
		if sc.Tertiary == nil {
			return errors.New("crash-tertiary without a tertiary replica")
		}
	case fault.OpPartition, fault.OpHeal:
		if !sc.Faults.HasPartition(step.Arg) {
			return fmt.Errorf("%s names unknown partition %q", step.Op, step.Arg)
		}
	default:
		return fmt.Errorf("unknown op %q", step.Op)
	}
	return nil
}

// applyStep executes one failure-schedule step inside the event loop.
func (sc *Scenario) applyStep(step fault.Step) {
	switch step.Op {
	case fault.OpCrashPrimary:
		sc.Spans.MarkFailure(sc.Sched.Now())
		sc.Primary.Crash()
	case fault.OpCrashSecondary:
		sc.Secondary.Crash()
	case fault.OpCrashTertiary:
		sc.Tertiary.Crash()
	case fault.OpPartition:
		_ = sc.Faults.Partition(step.Arg)
	case fault.OpHeal:
		_ = sc.Faults.Heal(step.Arg)
	}
}

func (sc *Scenario) warmARP() {
	// "We made sure that the MAC addresses of all nodes were present in
	// the ARP caches" (paper, section 9).
	p := sc.plan
	sc.Client.Iface(0).ARP().Seed(p.routerWAN, p.macR2)
	sc.Router.Iface(1).ARP().Seed(p.client, p.macC)
	sc.Router.Iface(0).ARP().Seed(p.primary, p.macP)
	sc.Primary.Iface(0).ARP().Seed(p.routerLAN, p.macR1)
	if sc.Secondary != nil {
		sc.Router.Iface(0).ARP().Seed(p.secondary, p.macS)
		sc.Secondary.Iface(0).ARP().Seed(p.routerLAN, p.macR1)
		sc.Primary.Iface(0).ARP().Seed(p.secondary, p.macS)
		sc.Secondary.Iface(0).ARP().Seed(p.primary, p.macP)
	}
	if sc.Tertiary != nil {
		sc.Router.Iface(0).ARP().Seed(p.tertiary, p.macT)
		sc.Tertiary.Iface(0).ARP().Seed(p.routerLAN, p.macR1)
		sc.Tertiary.Iface(0).ARP().Seed(p.primary, p.macP)
		sc.Tertiary.Iface(0).ARP().Seed(p.secondary, p.macS)
		sc.Primary.Iface(0).ARP().Seed(p.tertiary, p.macT)
		sc.Secondary.Iface(0).ARP().Seed(p.tertiary, p.macT)
	}
}

// installARPAuth pins every planned address to its station's MAC on all ARP
// modules of the cell. The service address is authorized for the whole
// replica group, so the paper's takeover announce (the secondary claiming
// aP) still succeeds while a rogue station's forged gratuitous ARP is
// rejected. Addresses outside the plan stay unrestricted.
func (sc *Scenario) installARPAuth() {
	p := sc.plan
	serviceMACs := []ethernet.MAC{p.macP}
	if sc.Secondary != nil {
		serviceMACs = append(serviceMACs, p.macS)
	}
	if sc.Tertiary != nil {
		serviceMACs = append(serviceMACs, p.macT)
	}
	serverAuth := arp.AuthorizedBindings(map[ipv4.Addr][]ethernet.MAC{
		p.primary:   serviceMACs,
		p.secondary: {p.macS},
		p.tertiary:  {p.macT},
		p.routerLAN: {p.macR1},
	})
	clientAuth := arp.AuthorizedBindings(map[ipv4.Addr][]ethernet.MAC{
		p.client:    {p.macC},
		p.routerWAN: {p.macR2},
	})
	sc.Router.Iface(0).ARP().SetBindingFilter(serverAuth)
	sc.Router.Iface(1).ARP().SetBindingFilter(clientAuth)
	sc.Client.Iface(0).ARP().SetBindingFilter(clientAuth)
	sc.Primary.Iface(0).ARP().SetBindingFilter(serverAuth)
	if sc.Secondary != nil {
		sc.Secondary.Iface(0).ARP().SetBindingFilter(serverAuth)
	}
	if sc.Tertiary != nil {
		sc.Tertiary.Iface(0).ARP().SetBindingFilter(serverAuth)
	}
}

// Start begins replication (fault detectors) and arms the failure
// schedule. Call after installing the replicated applications.
func (sc *Scenario) Start() {
	if sc.opts.Faults != nil && !sc.scheduleArmed {
		sc.scheduleArmed = true
		for _, step := range sc.opts.Faults.Schedule {
			step := step
			sc.Sched.At(step.At, "fault."+string(step.Op), func() { sc.applyStep(step) })
		}
	}
	start := true
	if sc.opts.StartDetectors != nil {
		start = *sc.opts.StartDetectors
	}
	if !start {
		return
	}
	if sc.Group != nil {
		sc.Group.Start()
	}
	if sc.Chain != nil {
		sc.Chain.Start()
	}
}

// ServiceAddr returns the address clients connect to.
func (sc *Scenario) ServiceAddr() ipv4.Addr { return sc.plan.primary }

// Run executes the simulation for a span of virtual time.
func (sc *Scenario) Run(d time.Duration) error { return sc.Sched.RunFor(d) }

// RunUntil steps the simulation until cond holds or the deadline (absolute
// virtual time) passes.
func (sc *Scenario) RunUntil(cond func() bool, deadline time.Duration) error {
	for !cond() {
		if sc.Sched.Now() > deadline {
			return fmt.Errorf("%w (now=%v)", ErrTimeout, sc.Sched.Now())
		}
		if !sc.Sched.Step() {
			if cond() {
				return nil
			}
			return fmt.Errorf("%w: event queue empty at %v", ErrTimeout, sc.Sched.Now())
		}
	}
	return nil
}

// Now returns the current virtual time.
func (sc *Scenario) Now() time.Duration { return sc.Sched.Now() }
