package tcpfailover_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"tcpfailover"
	"tcpfailover/internal/apps"
	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/fault"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/sim"
)

// shardEchoRun drives a 4-cell sharded scenario with local and cross-cell
// echo traffic and returns its byte-identity witnesses: per-stream digests,
// the merged metrics snapshot, and the per-client byte counts.
type shardRunResult struct {
	digests  []sim.StreamDigest
	snapshot []byte
	received []int64
	executed int
}

func runShardedEcho(t *testing.T, cells, shards int, faults *fault.Plan, barrierAt time.Duration) shardRunResult {
	t.Helper()
	opts := tcpfailover.ShardedOptions{
		Cells:  cells,
		Shards: shards,
		Cell:   tcpfailover.LANOptions(),
		ConfigureCell: func(i int, o *tcpfailover.Options) {
			if i == 0 && faults != nil {
				o.Faults = faults
			}
		},
		CrossLink: ethernet.XConfig{Latency: 500 * time.Microsecond},
		Digest:    true,
	}
	ss, err := tcpfailover.NewSharded(opts)
	if err != nil {
		t.Fatalf("sharded scenario: %v", err)
	}

	// Echo service on every cell's replicated pair.
	for _, cell := range ss.Cells {
		cell.Stream.Use()
		install := func(h *netstack.Host) error {
			_, err := apps.NewEchoServer(h.TCP(), 80)
			return err
		}
		if err := cell.Group.OnEach(install); err != nil {
			t.Fatalf("cell %d install: %v", cell.Index, err)
		}
	}

	// Per cell: one local echo client, and one cross-cell client dialing the
	// next cell's service through the trunk ring.
	type client struct {
		received int64
		closed   bool
	}
	var clients []*client
	dial := func(cell *tcpfailover.Cell, to *tcpfailover.Cell, total int64) {
		cell.Stream.Use()
		conn, err := cell.Client.TCP().Dial(to.ServiceAddr(), 80)
		if err != nil {
			t.Fatalf("dial cell %d -> %d: %v", cell.Index, to.Index, err)
		}
		cl := &client{}
		clients = append(clients, cl)
		var sent int64
		chunk := make([]byte, 4096)
		pump := func() {
			for sent < total {
				n := total - sent
				if n > int64(len(chunk)) {
					n = int64(len(chunk))
				}
				apps.Pattern(chunk[:n], sent)
				m, werr := conn.Write(chunk[:n])
				if werr != nil || m == 0 {
					return
				}
				sent += int64(m)
			}
			conn.Close()
		}
		rbuf := make([]byte, 4096)
		conn.OnEstablished(pump)
		conn.OnWritable(pump)
		conn.OnReadable(func() {
			for {
				n, _ := conn.Read(rbuf)
				if n <= 0 {
					return
				}
				cl.received += int64(n)
			}
		})
		conn.OnClose(func(error) { cl.closed = true })
	}
	for i, cell := range ss.Cells {
		dial(cell, cell, 48*1024)
		dial(cell, ss.Cells[(i+1)%len(ss.Cells)], 24*1024)
	}
	ss.Start()

	done := func() bool {
		for _, cl := range clients {
			if !cl.closed {
				return false
			}
		}
		return true
	}
	if barrierAt > 0 {
		// Force a window barrier exactly at the requested instant (RunUntil
		// clamps the final window edge to its deadline).
		if err := ss.RunUntil(barrierAt); err != nil {
			t.Fatalf("run to barrier: %v", err)
		}
		if got := ss.Now(); got != barrierAt {
			t.Fatalf("barrier at %v, want %v", got, barrierAt)
		}
	}
	if err := ss.RunWhile(func() bool { return !done() }, 5*time.Minute); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !done() {
		for i, cl := range clients {
			if !cl.closed {
				t.Errorf("client %d not closed (received=%d)", i, cl.received)
			}
		}
		t.Fatal("traffic did not finish")
	}

	snap, err := json.Marshal(ss.MergedSnapshot())
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	res := shardRunResult{digests: ss.Digests(), snapshot: snap, executed: ss.Executed()}
	for _, cl := range clients {
		res.received = append(res.received, cl.received)
	}
	return res
}

// TestShardedDifferential is the tentpole's acceptance test: identical seeds
// through shards=1 (sequential) and shards=2/4 must produce byte-identical
// per-stream digests, merged metrics snapshots, and traffic outcomes.
func TestShardedDifferential(t *testing.T) {
	base := runShardedEcho(t, 4, 1, nil, 0)
	for _, shards := range []int{2, 4} {
		got := runShardedEcho(t, 4, shards, nil, 0)
		if !reflect.DeepEqual(got.digests, base.digests) {
			t.Errorf("shards=%d: stream digests diverge from sequential\n seq: %+v\n got: %+v",
				shards, base.digests, got.digests)
		}
		if string(got.snapshot) != string(base.snapshot) {
			t.Errorf("shards=%d: merged snapshot diverges from sequential", shards)
		}
		if !reflect.DeepEqual(got.received, base.received) {
			t.Errorf("shards=%d: client byte counts diverge: %v vs %v", shards, got.received, base.received)
		}
		if got.executed != base.executed {
			t.Errorf("shards=%d: executed %d events, sequential executed %d", shards, got.executed, base.executed)
		}
	}
}

// TestShardedCrashOnWindowBarrier pins the degenerate case of a failure
// schedule firing exactly on a window barrier: cell 0's primary crashes at
// an instant that is forced to be a window edge, and the failover must
// still complete byte-identically across shard counts.
func TestShardedCrashOnWindowBarrier(t *testing.T) {
	const crashAt = 100 * time.Millisecond
	plan := &fault.Plan{Schedule: []fault.Step{{At: crashAt, Op: fault.OpCrashPrimary}}}
	base := runShardedEcho(t, 4, 1, plan, crashAt)
	for _, shards := range []int{2, 4} {
		got := runShardedEcho(t, 4, shards, plan, crashAt)
		if !reflect.DeepEqual(got.digests, base.digests) {
			t.Errorf("shards=%d: digests diverge after barrier-aligned crash", shards)
		}
		if string(got.snapshot) != string(base.snapshot) {
			t.Errorf("shards=%d: merged snapshot diverges after barrier-aligned crash", shards)
		}
	}
}

// TestShardedSingleCell covers the degenerate all-hosts-in-one-domain
// partition: one cell, shards clamped to 1, no trunks.
func TestShardedSingleCell(t *testing.T) {
	res := runShardedEcho(t, 1, 8, nil, 0)
	if len(res.digests) == 0 {
		t.Fatal("no stream digests")
	}
	for _, r := range res.received {
		if r == 0 {
			t.Fatal("client received nothing")
		}
	}
}

// TestShardedZeroLatencyRejected: a zero-latency cross-domain link cannot
// support conservative lookahead; the builder must reject it with a clear
// error while still allowing the sequential (shards=1) fallback.
func TestShardedZeroLatencyRejected(t *testing.T) {
	opts := tcpfailover.ShardedOptions{
		Cells:  2,
		Shards: 2,
		Cell:   tcpfailover.LANOptions(),
	}
	_, err := tcpfailover.NewSharded(opts)
	if err == nil {
		t.Fatal("zero-latency cross-domain link accepted")
	}
	if !strings.Contains(err.Error(), "latency") {
		t.Errorf("unhelpful error: %v", err)
	}
	opts.Shards = 1
	if _, err := tcpfailover.NewSharded(opts); err != nil {
		t.Errorf("sequential fallback rejected: %v", err)
	}
}
