package tcpfailover_test

import (
	"errors"
	"testing"
	"time"

	"tcpfailover"
)

// Facade-level API behavior.

func TestScenarioRejectsBadReplicationDegree(t *testing.T) {
	opts := tcpfailover.LANOptions()
	opts.Backups = 5
	if _, err := tcpfailover.NewScenario(opts); err == nil {
		t.Fatal("Backups=5 accepted")
	}
}

func TestScenarioUnreplicatedHasNoGroup(t *testing.T) {
	opts := tcpfailover.LANOptions()
	opts.Unreplicated = true
	sc, err := tcpfailover.NewScenario(opts)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Group != nil || sc.Chain != nil || sc.Secondary != nil {
		t.Error("unreplicated scenario built replication machinery")
	}
	sc.Start() // must not panic with no detectors
}

func TestRunUntilTimesOut(t *testing.T) {
	sc, err := tcpfailover.NewScenario(tcpfailover.LANOptions())
	if err != nil {
		t.Fatal(err)
	}
	sc.Start()
	err = sc.RunUntil(func() bool { return false }, 50*time.Millisecond)
	if !errors.Is(err, tcpfailover.ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
	if sc.Now() < 50*time.Millisecond {
		t.Errorf("clock at %v, want past the deadline", sc.Now())
	}
}

func TestDetectorsCanBeDisabled(t *testing.T) {
	opts := tcpfailover.LANOptions()
	off := false
	opts.StartDetectors = &off
	sc, err := tcpfailover.NewScenario(opts)
	if err != nil {
		t.Fatal(err)
	}
	sc.Start()
	// With no detectors and no traffic the event queue drains completely.
	if err := sc.Sched.Run(); err != nil {
		t.Fatal(err)
	}
	if sc.Sched.PendingEvents() != 0 {
		t.Errorf("%d events pending in a quiet scenario", sc.Sched.PendingEvents())
	}
	// And no failover ever triggers.
	sc.Group.CrashPrimary()
	if err := sc.Sched.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !sc.Group.SecondaryBridge().Active() {
		t.Error("takeover ran despite detectors being disabled")
	}
}

func TestScenarioDeterminism(t *testing.T) {
	run := func() (time.Duration, int64) {
		sc := newEchoScenario(t, tcpfailover.LANOptions())
		ec := startEchoClient(t, sc, 64*1024)
		if err := sc.RunUntil(func() bool { return ec.closed }, 10*time.Minute); err != nil {
			t.Fatal(err)
		}
		return sc.Now(), sc.Group.PrimaryBridge().Stats().SegmentsToClient
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Errorf("runs diverged: (%v, %d) vs (%v, %d)", t1, s1, t2, s2)
	}
}

func TestWANOptionsShape(t *testing.T) {
	o := tcpfailover.WANOptions()
	if o.ClientLink.BandwidthBps >= 100_000_000 {
		t.Error("WAN link not a bottleneck")
	}
	if o.ClientLink.Propagation == 0 || o.ClientLink.LossRate == 0 {
		t.Error("WAN link missing latency/loss")
	}
	if o.ServerLAN.BandwidthBps != 0 && o.ServerLAN.BandwidthBps < 100_000_000 {
		t.Error("server LAN should stay fast")
	}
}
