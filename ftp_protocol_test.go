package tcpfailover_test

import (
	"io"
	"strings"
	"testing"
	"time"

	"tcpfailover"
	"tcpfailover/internal/apps"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/tcp"
)

// Protocol-level FTP server tests: error replies and the LIST command,
// driven by a hand-rolled control-connection client against the replicated
// server.

type ftpProber struct {
	conn   *tcp.Conn
	lines  []string
	buf    []byte
	script []string // commands issued one per terminal reply
	step   int
	closed bool
}

func startFTPProber(t *testing.T, sc *tcpfailover.Scenario, script []string) *ftpProber {
	t.Helper()
	conn, err := sc.Client.TCP().Dial(sc.ServiceAddr(), apps.FTPControlPort)
	if err != nil {
		t.Fatal(err)
	}
	p := &ftpProber{conn: conn, buf: make([]byte, 8192), script: script}
	var pending string
	conn.OnReadable(func() {
		for {
			n, rerr := conn.Read(p.buf)
			if n > 0 {
				pending += string(p.buf[:n])
				for {
					line, rest, ok := strings.Cut(pending, "\r\n")
					if !ok {
						break
					}
					pending = rest
					p.lines = append(p.lines, line)
					p.advance()
				}
				continue
			}
			if rerr == io.EOF {
				conn.Close()
			}
			return
		}
	})
	conn.OnClose(func(error) { p.closed = true })
	return p
}

// advance issues the next command after each reply that looks terminal
// (three-digit code other than 150).
func (p *ftpProber) advance() {
	last := p.lines[len(p.lines)-1]
	if len(last) < 3 || last[0] == ' ' || strings.HasPrefix(last, "150") {
		return
	}
	if p.step < len(p.script) {
		_, _ = p.conn.Write([]byte(p.script[p.step] + "\r\n"))
		p.step++
	}
}

func (p *ftpProber) hasReply(prefix string) bool {
	for _, l := range p.lines {
		if strings.HasPrefix(l, prefix) {
			return true
		}
	}
	return false
}

func TestFTPErrorReplies(t *testing.T) {
	sc := ftpScenario(t, tcpfailover.LANOptions())
	p := startFTPProber(t, sc, []string{
		"RETR nonexistent.bin", // 550 before any PORT
		"STOR upload.bin",      // 425: no PORT yet
		"NOOP",                 // 502: not implemented
		"PORT 1,2,3",           // 501: malformed
		"QUIT",
	})
	if err := sc.RunUntil(func() bool { return p.closed }, 10*time.Minute); err != nil {
		t.Fatalf("run: %v (lines=%q)", err, p.lines)
	}
	for _, want := range []string{"220", "550", "425", "502", "501", "221"} {
		if !p.hasReply(want) {
			t.Errorf("no %s reply; transcript: %q", want, p.lines)
		}
	}
}

func TestFTPListCommand(t *testing.T) {
	sc := ftpScenario(t, tcpfailover.LANOptions())
	p := startFTPProber(t, sc, []string{"LIST", "QUIT"})
	if err := sc.RunUntil(func() bool { return p.closed }, 10*time.Minute); err != nil {
		t.Fatalf("run: %v (lines=%q)", err, p.lines)
	}
	if !p.hasReply("226") {
		t.Fatalf("LIST did not complete: %q", p.lines)
	}
	names := apps.DefaultFTPFiles().Names()
	joined := strings.Join(p.lines, "\n")
	for _, n := range names {
		if !strings.Contains(joined, n) {
			t.Errorf("listing missing %q", n)
		}
	}
}

// TestStoreInsufficientStock drives the store's rejection path and verifies
// both replicas stay in step afterward (the connection continues).
func TestStoreInsufficientStock(t *testing.T) {
	opts := tcpfailover.LANOptions()
	opts.ServerPorts = []uint16{8080}
	sc, err := tcpfailover.NewScenario(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Group.OnEach(func(h *netstack.Host) error {
		_, err := apps.NewStoreServer(h.TCP(), 8080, apps.DefaultCatalog())
		return err
	}); err != nil {
		t.Fatal(err)
	}
	sc.Start()

	conn, err := sc.Client.TCP().Dial(sc.ServiceAddr(), 8080)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	buf := make([]byte, 4096)
	closed := false
	conn.OnEstablished(func() {
		_, _ = conn.Write([]byte("BUY monitor 9999\nBUY monitor 2\nBROWSE nothing\nQUIT\n"))
	})
	conn.OnReadable(func() {
		for {
			n, rerr := conn.Read(buf)
			if n > 0 {
				out.Write(buf[:n])
				continue
			}
			if rerr == io.EOF {
				conn.Close()
			}
			return
		}
	})
	conn.OnClose(func(error) { closed = true })
	if err := sc.RunUntil(func() bool { return closed }, 10*time.Minute); err != nil {
		t.Fatalf("run: %v (got %q)", err, out.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	want := []string{"409 insufficient stock", "201 ORDER 1000 monitor 2 49998", "404 no such item", "221 bye"}
	if len(lines) != len(want) {
		t.Fatalf("lines %q, want %q", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d: %q, want %q", i, lines[i], want[i])
		}
	}
}
