package tcpfailover_test

import (
	"io"
	"testing"
	"time"

	"tcpfailover"
	"tcpfailover/internal/apps"
	"tcpfailover/internal/core"
	"tcpfailover/internal/fault"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/tcp"
)

// TestCombinedSynUsesMinimumMSS: "The MSS field of that segment is set to
// the minimum of the MSS fields contained in the SYN segments that the TCP
// layers of the primary and secondary servers created" (section 7.1).
func TestCombinedSynUsesMinimumMSS(t *testing.T) {
	opts := tcpfailover.LANOptions()
	sc, err := tcpfailover.NewScenario(opts)
	if err != nil {
		t.Fatal(err)
	}
	// The secondary's TCP layer announces a smaller MSS than the primary's.
	sc.Secondary.SetTCPConfig(tcp.Config{MSS: 1000})
	if err := sc.Group.OnEach(func(h *netstack.Host) error {
		_, err := apps.NewEchoServer(h.TCP(), 80)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	sc.Start()

	conn, err := sc.Client.TCP().Dial(sc.ServiceAddr(), 80)
	if err != nil {
		t.Fatal(err)
	}
	established := false
	conn.OnEstablished(func() { established = true })
	if err := sc.RunUntil(func() bool { return established }, time.Minute); err != nil {
		t.Fatal(err)
	}
	// min(1460, 1000): the client may send at most the smaller of the two
	// replicas' announcements. (The 8-byte diversion headroom applies to
	// the secondary's *sending* MSS, which the client's clamped SYN governs.)
	if got := conn.MSS(); got != 1000 {
		t.Errorf("client effective MSS = %d, want 1000 (min of the replicas')", got)
	}
}

// TestDivergenceDetection violates the paper's per-connection determinism
// assumption on purpose: the two replicas produce different reply bytes,
// and the bridge's verification counts the divergence.
func TestDivergenceDetection(t *testing.T) {
	opts := tcpfailover.LANOptions()
	opts.ServerPorts = []uint16{9000}
	opts.Replication.Bridge = core.PrimaryConfig{VerifyReplicaOutput: true}
	sc, err := tcpfailover.NewScenario(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately different applications: each replica pushes a different
	// byte pattern.
	install := func(h *netstack.Host, fill byte) error {
		_, err := h.TCP().Listen(9000, func(c *tcp.Conn) {
			payload := make([]byte, 4096)
			for i := range payload {
				payload[i] = fill
			}
			_, _ = c.Write(payload)
			c.Close()
		})
		return err
	}
	if err := install(sc.Primary, 0xAA); err != nil {
		t.Fatal(err)
	}
	if err := install(sc.Secondary, 0xBB); err != nil {
		t.Fatal(err)
	}
	sc.Start()

	var diverged []core.TupleKey
	sc.Group.PrimaryBridge().OnDivergence = func(k core.TupleKey, seq tcp.Seq) {
		diverged = append(diverged, k)
	}
	conn, err := sc.Client.TCP().Dial(sc.ServiceAddr(), 9000)
	if err != nil {
		t.Fatal(err)
	}
	recv := apps.NewReceiver(conn, sc.Sched)
	if err := sc.RunUntil(func() bool { return recv.EOF }, time.Minute); err != nil {
		t.Fatal(err)
	}
	if sc.Group.PrimaryBridge().Stats().Divergences == 0 || len(diverged) == 0 {
		t.Error("replica divergence went undetected")
	}
}

// TestBridgeGarbageCollectsClosedConnections: after a clean close the
// bridge deletes its per-connection structures (section 8).
func TestBridgeGarbageCollectsClosedConnections(t *testing.T) {
	sc := newEchoScenario(t, tcpfailover.LANOptions())
	ec := startEchoClient(t, sc, 8192)
	if err := sc.RunUntil(func() bool { return ec.closed }, 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	ec.check(t)
	stats := sc.Group.PrimaryBridge().Stats()
	if stats.ConnsOpened == 0 || stats.ConnsClosed != stats.ConnsOpened {
		t.Errorf("bridge records: opened=%d closed=%d", stats.ConnsOpened, stats.ConnsClosed)
	}
	if got := sc.Group.PrimaryBridge().Conns(); got != 0 {
		t.Errorf("bridge still tracks %d connections", got)
	}
}

// TestLateFinFromSecondarySynthesizedAck: "When the bridge receives a FIN
// that S sent after the bridge removed all internal data structures
// associated with the connection, it creates an ACK and sends it back to
// S" (section 8). The secondary is made deaf to the client's final ACK, so
// it retransmits its FIN after the bridge has forgotten the connection.
func TestLateFinFromSecondarySynthesizedAck(t *testing.T) {
	sc := newEchoScenario(t, tcpfailover.LANOptions())
	ec := startEchoClient(t, sc, 8192)

	// Once the client has consumed the server stream (EOF seen), drop every
	// client frame at the secondary's NIC: the closing ACK never arrives.
	armed := false
	err := sc.Faults.Impair(fault.Impairment{
		Link: fault.LinkServerLAN, To: fault.RoleSecondary,
		Models: []fault.Spec{fault.DropWhen(func(p []byte) bool {
			if !armed {
				return false
			}
			hdr, _, err := ipv4.Unmarshal(p)
			return err == nil && hdr.Protocol == ipv4.ProtoTCP && hdr.Src == tcpfailover.ClientAddr
		}, 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.RunUntil(func() bool { return ec.eof }, 10*time.Minute); err != nil {
		t.Fatalf("stream: %v", err)
	}
	armed = true

	done := func() bool {
		return ec.closed && sc.Group.PrimaryBridge().Stats().LateFinAcks > 0
	}
	if err := sc.RunUntil(done, 30*time.Minute); err != nil {
		t.Fatalf("late-FIN handling: %v (closed=%v lateAcks=%d)",
			err, ec.closed, sc.Group.PrimaryBridge().Stats().LateFinAcks)
	}
	// The synthesized ACK must have terminated the secondary's connection.
	armed = false
	if err := sc.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	for _, c := range sc.Secondary.TCP().Conns() {
		if c.Tuple().RemoteAddr == tcpfailover.ClientAddr && c.State() != tcp.StateClosed {
			t.Errorf("secondary connection still in %v", c.State())
		}
	}
}

// TestEchoEOFServerCloses exercises the server-side close ordering: the
// client half-closes first; both replicas observe EOF, close, and their
// merged FIN reaches the client exactly once.
func TestTerminationClientClosesFirst(t *testing.T) {
	sc := newEchoScenario(t, tcpfailover.LANOptions())
	conn, err := sc.Client.TCP().Dial(sc.ServiceAddr(), 80)
	if err != nil {
		t.Fatal(err)
	}
	gotEOF := false
	closed := false
	conn.OnEstablished(func() {
		_, _ = conn.Write([]byte("solo message"))
		conn.Close() // immediate half-close
	})
	buf := make([]byte, 256)
	var echoed []byte
	conn.OnReadable(func() {
		for {
			n, rerr := conn.Read(buf)
			if n > 0 {
				echoed = append(echoed, buf[:n]...)
				continue
			}
			if rerr == io.EOF {
				gotEOF = true
			}
			return
		}
	})
	conn.OnClose(func(error) { closed = true })
	if err := sc.RunUntil(func() bool { return closed }, 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	if !gotEOF || string(echoed) != "solo message" {
		t.Errorf("eof=%v echoed=%q", gotEOF, echoed)
	}
}
