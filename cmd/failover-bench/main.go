// Command failover-bench regenerates every table and figure of the paper's
// evaluation (section 9) on the simulated testbed and prints each result
// next to the paper's published numbers. Absolute values depend on the
// calibration profile; the shapes and ratios are the reproduction target.
//
// Independent simulations fan out across the machine's CPUs; every result
// is a function of the per-simulation seeds only, so the output is
// identical for any worker count. With -json the full run — configuration,
// results, and per-experiment performance counters — is also written to
// BENCH_trajectory.json.
//
// Usage:
//
//	failover-bench [-experiment all|connsetup|fig3|fig4|fig5|fig6|ablate|failover|faultsweep|connscale|shardscale|memscale|failtimeline|adversary|slo|stallscale]
//	               [-list] [-conns N] [-reps N] [-stream BYTES] [-runs N]
//	               [-faultrates R1,R2,...] [-connscale N1,N2,...]
//	               [-shardscale N1,N2,...] [-shards S1,S2,...]
//	               [-memscale N1,N2,...]
//	               [-sloloads L1,L2,...] [-slowindow D] [-sloworkload NAME]
//	               [-stallscale N1,N2,...] [-json]
//	               [-metrics-out FILE] [-timeseries-out FILE]
//	               [-cpuprofile FILE] [-memprofile FILE] [-trace FILE]
//
// With -metrics-out, one instrumented failover scenario is run after the
// experiments and its metrics registry is written to FILE — JSON when the
// name ends in .json, Prometheus text exposition format otherwise.
//
// With -timeseries-out, a two-cell sharded scenario under open-loop web
// traffic is run with a mid-window primary crash, every cell's registry is
// sampled on a fixed sim-time grid, and the merged fleet timeseries is
// written to FILE — JSON when the name ends in .json, CSV otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strconv"
	"strings"
	"time"

	"tcpfailover/internal/bench"
)

// trajectoryFile is where -json writes the machine-readable run record.
const trajectoryFile = "BENCH_trajectory.json"

func main() {
	var (
		experiment = flag.String("experiment", "all",
			"which experiment to run: all, connsetup, fig3, fig4, fig5, fig6, ablate, failover, faultsweep, connscale, shardscale, memscale, failtimeline, adversary, slo, stallscale")
		list       = flag.Bool("list", false, "list the experiment names and exit")
		conns      = flag.Int("conns", 51, "connections for the setup-time experiment")
		reps       = flag.Int("reps", 5, "repetitions per data point")
		stream     = flag.Int64("stream", 100*1024*1024, "stream length for figure 5 (bytes)")
		runs       = flag.Int("runs", 9, "failover-latency runs")
		faultRates = flag.String("faultrates", "",
			"comma-separated loss rates for the fault sweep (default 0,0.005,0.01,0.02,0.05)")
		connScale = flag.String("connscale", "",
			"comma-separated connection counts for the connection-scale sweep (default 100,1000,10000)")
		shardScale = flag.String("shardscale", "",
			"comma-separated connection counts for the sharded scaling sweep (default 100000,1000000)")
		shards = flag.String("shards", "",
			"comma-separated shard counts for the sharded scaling sweep (default 1,2,4,8)")
		memScale = flag.String("memscale", "",
			"comma-separated connection counts for the memory-scale sweep (default 100000,500000,1000000)")
		sloLoads = flag.String("sloloads", "",
			"comma-separated offered loads for the SLO experiment, sessions/second (default 40,160,320)")
		sloWindow = flag.Duration("slowindow", 0,
			"measurement window of virtual time per SLO cell (default 8s)")
		sloWorkload = flag.String("sloworkload", "",
			"workload-zoo entry for the SLO experiment: web, flash, diurnal (default web)")
		stallScale = flag.String("stallscale", "",
			"comma-separated connection counts for the stall-attribution experiment (default 1000,10000,100000)")
		jsonOut    = flag.Bool("json", false, "also write "+trajectoryFile)
		metricsOut = flag.String("metrics-out", "",
			"write a metrics snapshot from one failover scenario to this file (.json or Prometheus text)")
		timeseriesOut = flag.String("timeseries-out", "",
			"write a sampled metrics timeseries from a sharded crash scenario to this file (.json or CSV)")
		workers    = flag.Int("workers", bench.Workers, "simulation worker goroutines")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceFile  = flag.String("trace", "", "write a runtime execution trace to this file")
	)
	flag.Parse()
	if *list {
		for _, name := range bench.ExperimentNames() {
			fmt.Println(name)
		}
		return
	}
	bench.Workers = *workers
	rates, err := parseRates(*faultRates)
	if err != nil {
		fmt.Fprintln(os.Stderr, "failover-bench:", err)
		os.Exit(1)
	}
	counts, err := parseCounts(*connScale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "failover-bench:", err)
		os.Exit(1)
	}
	shardConns, err := parseCounts(*shardScale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "failover-bench:", err)
		os.Exit(1)
	}
	shardCounts, err := parseCounts(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "failover-bench:", err)
		os.Exit(1)
	}
	memCounts, err := parseCounts(*memScale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "failover-bench:", err)
		os.Exit(1)
	}
	loads, err := parseLoads(*sloLoads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "failover-bench:", err)
		os.Exit(1)
	}
	stallCounts, err := parseCounts(*stallScale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "failover-bench:", err)
		os.Exit(1)
	}
	cfg := bench.Config{
		Experiments: []string{*experiment},
		Conns:       *conns,
		Reps:        *reps,
		Stream:      *stream,
		Runs:        *runs,
		FaultRates:  rates,
		ConnScale:   counts,
		ShardScale:  shardConns,
		ShardCounts: shardCounts,
		MemScale:    memCounts,
		SLOLoads:    loads,
		SLOWindow:   *sloWindow,
		SLOWorkload: *sloWorkload,
		StallScale:  stallCounts,
	}
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile, *traceFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "failover-bench:", err)
		os.Exit(1)
	}
	runErr := run(cfg, *jsonOut, *metricsOut, *timeseriesOut)
	if err := stopProfiles(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "failover-bench:", runErr)
		os.Exit(1)
	}
}

// startProfiles turns on the requested CPU profile and execution trace and
// returns a function that stops them and writes the heap profile. Profiling
// a run of -experiment connscale is the intended workflow for hot-path work:
// the connection-scale sweep is the workload the optimisation targets.
func startProfiles(cpu, mem, tr string) (func() error, error) {
	var cpuF, trF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuF = f
	}
	if tr != "" {
		f, err := os.Create(tr)
		if err != nil {
			return nil, err
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return nil, err
		}
		trF = f
	}
	return func() error {
		var first error
		if cpuF != nil {
			pprof.StopCPUProfile()
			first = cpuF.Close()
		}
		if trF != nil {
			trace.Stop()
			if err := trF.Close(); err != nil && first == nil {
				first = err
			}
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				if first == nil {
					first = err
				}
				return first
			}
			runtime.GC() // flush dead objects so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = err
			}
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}

func run(cfg bench.Config, jsonOut bool, metricsOut, timeseriesOut string) error {
	t, err := bench.RunAll(cfg)
	if err != nil {
		return err
	}
	r := &t.Results
	if r.ConnSetup != nil {
		connSetup(r.ConnSetup)
	}
	if r.Fig3Std != nil {
		figure3(r.Fig3Std, r.Fig3Fo)
	}
	if r.Fig4Std != nil {
		figure4(r.Fig4Std, r.Fig4Fo)
	}
	if r.Fig5 != nil {
		figure5(cfg.Stream, r.Fig5[0], r.Fig5[1])
	}
	if r.Fig6Std != nil {
		figure6(r.Fig6Std, r.Fig6Fo)
	}
	if r.Ablation != nil {
		ablate(cfg.Stream/4, r.Ablation)
	}
	if r.Failover != nil {
		failover(*r.Failover)
	}
	if r.FaultSweep != nil {
		faultSweep(r.FaultSweep)
	}
	if r.ConnScale != nil {
		connScaleOut(r.ConnScale)
	}
	if r.ShardScale != nil {
		shardScaleOut(r.ShardScale)
	}
	if r.MemScale != nil {
		memScaleOut(r.MemScale)
	}
	if r.Timeline != nil {
		timeline(*r.Timeline)
	}
	if r.Adversary != nil {
		adversaryOut(r.Adversary)
	}
	if r.SLO != nil {
		sloOut(r.SLO)
	}
	if r.StallScale != nil {
		stallScaleOut(r.StallScale)
	}
	if metricsOut != "" {
		if err := writeMetrics(metricsOut); err != nil {
			return err
		}
		fmt.Printf("wrote %s (metrics snapshot, one failover scenario)\n", metricsOut)
	}
	if timeseriesOut != "" {
		if err := writeTimeseries(timeseriesOut); err != nil {
			return err
		}
		fmt.Printf("wrote %s (sampled fleet timeseries, sharded crash scenario)\n", timeseriesOut)
	}
	if jsonOut {
		blob, err := json.MarshalIndent(t, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(trajectoryFile, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d experiments, %d workers)\n",
			trajectoryFile, len(t.Perf.Experiments), t.Perf.Workers)
	}
	return nil
}

func us(d time.Duration) string { return fmt.Sprintf("%.0f", float64(d.Nanoseconds())/1e3) }

func connSetup(results []bench.ConnSetupResult) {
	fmt.Println("=== E1: connection setup time (paper sec. 9) ===")
	fmt.Println("paper:    standard TCP median 294 us, max 603 us")
	fmt.Println("paper:    TCP Failover median 505 us, max 1193 us")
	for _, r := range results {
		fmt.Printf("measured: %-12s median %s us, max %s us (n=%d)\n",
			r.Mode, us(r.Median), us(r.Max), r.N)
	}
	fmt.Println()
}

func figure3(std, fo []bench.TransferPoint) {
	fmt.Println("=== E2: Figure 3, client-to-server send time ===")
	fmt.Println("(median time for the client application to send a message;")
	fmt.Println(" paper shape: sub-32KB region grows slowly due to the 64 KB")
	fmt.Println(" send buffer, larger messages grow at wire rate, failover above standard)")
	fmt.Printf("%12s %18s %18s %8s\n", "msg bytes", "standard TCP [us]", "TCP Failover [us]", "ratio")
	for i := range std {
		ratio := float64(fo[i].Median) / float64(std[i].Median)
		fmt.Printf("%12d %18s %18s %8.2f\n", std[i].Size, us(std[i].Median), us(fo[i].Median), ratio)
	}
	fmt.Println()
}

func figure4(std, fo []bench.TransferPoint) {
	fmt.Println("=== E3: Figure 4, server-to-client transfer time ===")
	fmt.Println("(client sends a 4-byte request; median time until the last byte")
	fmt.Println(" of the sized reply arrives; paper shape as figure 3)")
	fmt.Printf("%12s %18s %18s %8s\n", "reply bytes", "standard TCP [us]", "TCP Failover [us]", "ratio")
	for i := range std {
		ratio := float64(fo[i].Median) / float64(std[i].Median)
		fmt.Printf("%12d %18s %18s %8.2f\n", std[i].Size, us(std[i].Median), us(fo[i].Median), ratio)
	}
	fmt.Println()
}

func figure5(total int64, std, fo bench.RateResult) {
	fmt.Println("=== E4: Figure 5, send/receive rates for long streams ===")
	fmt.Printf("(streams of %d MB)\n", total/(1024*1024))
	fmt.Println("paper:    standard TCP  send 7833.70 KB/s   receive 8707.88 KB/s")
	fmt.Println("paper:    TCP Failover  send 5835.80 KB/s   receive 3510.03 KB/s")
	fmt.Printf("measured: %-13s send %8.2f KB/s   receive %8.2f KB/s\n", std.Mode, std.SendKBps, std.RecvKBps)
	fmt.Printf("measured: %-13s send %8.2f KB/s   receive %8.2f KB/s\n", fo.Mode, fo.SendKBps, fo.RecvKBps)
	fmt.Printf("ratios:   send %.2f (paper 0.74)   receive %.2f (paper 0.40)\n",
		fo.SendKBps/std.SendKBps, fo.RecvKBps/std.RecvKBps)
	fmt.Println()
}

func figure6(std, fo []bench.FTPPoint) {
	fmt.Println("=== E5: Figure 6, FTP get/put rates over a WAN [KB/s] ===")
	fmt.Println("paper (get std/fo, put std/fo):")
	fmt.Println("  0.2 KB:    8.75/8.75      512.38/536.05")
	fmt.Println("  1.3 KB:    59.03/59.03    2033.76/2036.87")
	fmt.Println("  18.2 KB:   90.41/70.74    3846.13/3890.42")
	fmt.Println("  144.9 KB:  156.80/138.35  219.52/200.31")
	fmt.Println("  1738.1 KB: 176.03/171.72  168.07/176.63")
	fmt.Printf("%12s %12s | %10s %10s | %10s %10s\n",
		"file", "size [KB]", "get std", "get fo", "put std", "put fo")
	for i := range std {
		fmt.Printf("%12s %12.1f | %10.2f %10.2f | %10.2f %10.2f\n",
			std[i].Name, std[i].FileKB, std[i].GetKBps, fo[i].GetKBps,
			std[i].PutKBps, fo[i].PutKBps)
	}
	fmt.Println()
}

func ablate(total int64, rows []bench.AblationRow) {
	fmt.Println("=== Ablations: design choices toggled one at a time ===")
	fmt.Printf("(figure-5 workload, %d MB streams)\n", total/(1024*1024))
	for _, r := range rows {
		fmt.Printf("%-42s send %8.2f KB/s   receive %8.2f KB/s\n", r.Name, r.SendKBps, r.RecvKBps)
	}
	fmt.Println()
}

// parseRates parses the -faultrates flag; empty means the default sweep.
func parseRates(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	rates := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 || v > 1 {
			return nil, fmt.Errorf("bad -faultrates entry %q (want 0..1)", p)
		}
		rates = append(rates, v)
	}
	return rates, nil
}

func faultSweep(points []bench.FaultPoint) {
	fmt.Println("=== E7 (extension): failover latency under link impairment ===")
	fmt.Println("(1 MB server-to-client stream over lossy links, primary crashed")
	fmt.Println(" mid-stream by the failure schedule; stall = longest post-crash")
	fmt.Println(" gap in the client's received-byte timeline)")
	fmt.Printf("%12s %8s %14s %14s %12s %8s %8s\n",
		"loss model", "rate", "stall med", "stall max", "rate [KB/s]", "intact", "drops")
	for _, p := range points {
		fmt.Printf("%12s %8.3f %14v %14v %12.2f %8v %8d\n",
			p.Model, p.Rate, p.StallMedian, p.StallMax, p.RecvKBps, p.AllIntact, p.Injected)
	}
	fmt.Println()
}

// parseCounts parses the -connscale flag; empty means the default sweep.
func parseCounts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	counts := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad -connscale entry %q (want a positive count)", p)
		}
		counts = append(counts, v)
	}
	return counts, nil
}

func connScaleOut(points []bench.ConnScalePoint) {
	fmt.Println("=== E8: simulator hot-path cost vs connection count ===")
	fmt.Println("(request/reply rounds across N concurrent failover connections;")
	fmt.Println(" host-side cost per carried LAN frame in the steady state —")
	fmt.Println(" targets: per-segment ns at 10k <= 1.5x the 100-conn cost,")
	fmt.Println(" and ~0 allocations per segment)")
	fmt.Printf("%8s %12s %14s %14s %12s\n",
		"conns", "segments", "ns/segment", "allocs/seg", "ratio")
	base := 0.0
	for i, p := range points {
		if i == 0 {
			base = p.MedianNsPerSegment
		}
		ratio := "-"
		if base > 0 && i > 0 {
			ratio = fmt.Sprintf("%.2f", p.MedianNsPerSegment/base)
		}
		fmt.Printf("%8d %12d %14.0f %14.5f %12s\n",
			p.Conns, p.Segments, p.MedianNsPerSegment, p.AllocsPerSegment, ratio)
	}
	fmt.Println()
}

func shardScaleOut(points []bench.ShardScalePoint) {
	fmt.Println("=== E10: sharded parallel scaling (byte-identical engine) ===")
	fmt.Println("(replicated testbed cells on a trunk ring, 1 in 8 connections")
	fmt.Println(" cross-cell; the shard count partitions the cells across domain")
	fmt.Println(" schedulers in conservative lockstep — results are byte-identical")
	fmt.Println(" for every shard count, so events/sec is directly comparable;")
	fmt.Println(" speedup/efficiency are vs the shards=1 point, per worker core)")
	for i, p := range points {
		if i > 0 && p.Conns != points[i-1].Conns {
			fmt.Println()
		}
		if i == 0 || p.Conns != points[i-1].Conns {
			fmt.Printf("%8s %6s %7s %8s %12s %12s %14s %14s %8s %6s\n",
				"conns", "cells", "shards", "workers", "rounds", "wall [ms]", "events/s", "ev/s/core", "speedup", "eff")
		}
		fmt.Printf("%8d %6d %7d %8d %12d %12.0f %14.0f %14.0f %8.2f %6.2f\n",
			p.Conns, p.Cells, p.Shards, p.Workers, p.Rounds, float64(p.WallNS)/1e6,
			p.EventsPerSec, p.EventsPerSecPerCore, p.Speedup, p.Efficiency)
	}
	fmt.Println()
}

func memScaleOut(points []bench.MemScalePoint) {
	fmt.Println("=== E13: memory layout at scale (map vs flowtab bridges) ===")
	fmt.Println("(N established failover connections held live on real bridges;")
	fmt.Println(" \"map\" allocates the pointer-per-connection layout the bridges")
	fmt.Println(" used before the flow-table rewrite, \"flowtab\" populates the")
	fmt.Println(" open-addressing tables and slab arenas; live objects/bytes are")
	fmt.Println(" runtime.GC deltas, forced-GC wall time shows the scan cost,")
	fmt.Println(" and the drive phase pushes client ACKs through the hot path)")
	fmt.Printf("%9s %8s %12s %12s %9s %8s %11s %12s %12s\n",
		"conns", "layout", "objects", "obj/conn", "bytes/c", "GC [ms]", "pause [us]", "ns/segment", "allocs/seg")
	for i, p := range points {
		if i > 0 && p.Conns != points[i-1].Conns {
			fmt.Println()
		}
		drive := "-"
		allocs := "-"
		if p.DriveSegments > 0 {
			drive = fmt.Sprintf("%.0f", p.DriveNsPerSegment)
			allocs = fmt.Sprintf("%.5f", p.DriveAllocsPerSegment)
		}
		fmt.Printf("%9d %8s %12d %12.4f %9.0f %8.2f %11.0f %12s %12s\n",
			p.Conns, p.Layout, p.LiveObjects, p.ObjectsPerConn, p.BytesPerConn,
			float64(p.ForcedGCNS)/1e6, float64(p.GCPauseNS)/1e3, drive, allocs)
	}
	fmt.Println()
}

func adversaryOut(points []bench.AdversaryPoint) {
	fmt.Println("=== E11 (extension): adversarial attack-outcome matrix ===")
	fmt.Println("(seeded in-LAN attacker vs a live connection: blind RST probes,")
	fmt.Println(" forged gratuitous-ARP takeover, stale-data ACK reflection, and a")
	fmt.Println(" spoofed SYN flood, against both topologies with the hardening")
	fmt.Println(" knobs off and on; every cell is a pure function of its seed)")
	fmt.Printf("%10s %10s %9s %16s %9s %10s %6s %7s %7s %7s\n",
		"attack", "topology", "hardened", "outcome", "injected", "delivered", "drops", "arpRej", "amp", "evict")
	for i, p := range points {
		if i > 0 && p.Attack != points[i-1].Attack {
			fmt.Println()
		}
		h := "off"
		if p.Hardened {
			h = "on"
		}
		fmt.Printf("%10s %10s %9s %16s %9d %10d %6d %7d %7.2f %7d\n",
			p.Attack, p.Topology, h, p.Outcome, p.Injected, p.Delivered,
			p.SeqDrops, p.ARPFiltered, p.Amplification, p.Evictions)
	}
	fmt.Println()
}

// parseLoads parses the -sloloads flag; empty means the default axis.
func parseLoads(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	loads := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad -sloloads entry %q (want a positive rate)", p)
		}
		loads = append(loads, v)
	}
	return loads, nil
}

func sloOut(points []bench.SLOPoint) {
	fmt.Println("=== E12 (extension): SLO under open-loop production traffic ===")
	fmt.Println("(workload-zoo sessions arrive open-loop — they do not wait for the")
	fmt.Println(" service — at the offered rate; goodput and client-visible request")
	fmt.Println(" latency per cell; in crash cells the primary fail-stops at the")
	fmt.Println(" middle of the measurement window)")
	fmt.Printf("%13s %6s %6s %8s %8s %7s %7s %12s %10s %10s %10s\n",
		"mode", "load/s", "crash", "requests", "complete", "failed", "refuse",
		"goodput KB/s", "p50", "p99", "p99.9")
	for i, p := range points {
		if i > 0 && p.Mode != points[i-1].Mode {
			fmt.Println()
		}
		crash := "-"
		if p.Crash {
			crash = "crash"
		}
		fmt.Printf("%13s %6g %6s %8d %8d %7d %7d %12.1f %10v %10v %10v\n",
			p.Mode, p.Load, crash, p.Requests, p.Completed, p.Failed, p.DialErrors,
			p.GoodputKBps, p.P50.Round(time.Microsecond),
			p.P99.Round(time.Microsecond), p.P999.Round(time.Microsecond))
	}
	fmt.Println()
}

func failover(r bench.FailoverResult) {
	fmt.Println("=== E6 (extension): failover latency, primary crash mid-stream ===")
	fmt.Println("(not measured in the paper; client-observed stall =")
	fmt.Println(" detection timeout + IP takeover + client RTO recovery)")
	fmt.Printf("measured: stall median %v, max %v over %d runs; streams intact: %v\n",
		r.StallMedian, r.StallMax, r.N, r.AllIntact)
	fmt.Println()
}

func timeline(r bench.TimelineResult) {
	fmt.Println("=== E9 (extension): failover timeline, phase breakdown ===")
	fmt.Println("(reconstructed from a client-side flight recorder plus the")
	fmt.Println(" detector/takeover hooks; medians over the crash runs)")
	fmt.Printf("%-24s %14s\n", "phase", "median")
	fmt.Printf("%-24s %14v\n", "detection", r.DetectionMedian)
	fmt.Printf("%-24s %14v\n", "takeover + ARP announce", r.AnnounceMedian)
	fmt.Printf("%-24s %14v\n", "redirection to client", r.ResumeMedian)
	fmt.Printf("%-24s %14v\n", "client ack turnaround", r.AckTurnaroundMedian)
	fmt.Printf("%-24s %14v (max %v, n=%d)\n", "total", r.TotalMedian, r.TotalMax, r.N)
	fmt.Println("sample run 0:")
	_ = r.Sample.WriteText(os.Stdout)
	fmt.Println()
}

func stallScaleOut(points []bench.StallScalePoint) {
	fmt.Println("=== E14 (extension): fleet-scale stall attribution ===")
	fmt.Println("(open-loop web sessions across testbed cells; every cell's primary")
	fmt.Println(" crashes mid-window; each connection's client-visible stall is read")
	fmt.Println(" from its lifecycle span and attributed per phase against the fleet")
	fmt.Println(" failure/detect/takeover marks; log-histogram percentiles, <=1/32")
	fmt.Println(" relative error; byte-identical for any worker or shard count)")
	for _, p := range points {
		fmt.Printf("conns %d (cells %d, %.1f sessions/s/cell, %v window): %d spans, %d stalled, digest %s\n",
			p.Conns, p.Cells, p.LoadPerCell, p.Window, p.Spans, p.Stalled, p.SpanDigest)
		fmt.Printf("  %-10s %12s %12s %12s %12s\n", "phase", "p50", "p99", "p99.9", "max")
		for _, row := range []struct {
			name string
			st   bench.StallPhaseStats
		}{
			{"total", p.Total}, {"precrash", p.PreCrash}, {"detection", p.Detection},
			{"announce", p.Announce}, {"resume", p.Resume}, {"recovery", p.Recovery},
		} {
			fmt.Printf("  %-10s %12v %12v %12v %12v\n", row.name,
				row.st.P50.Round(time.Microsecond), row.st.P99.Round(time.Microsecond),
				row.st.P999.Round(time.Microsecond), row.st.Max.Round(time.Microsecond))
		}
	}
	fmt.Println()
}

// writeTimeseries runs the sharded crash scenario and writes the merged,
// sampled fleet timeseries — JSON for .json files, CSV otherwise.
func writeTimeseries(path string) error {
	ts, err := bench.CollectTimeseries(0, 0)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = ts.WriteJSON(f)
	} else {
		err = ts.WriteCSV(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeMetrics runs the instrumented failover scenario and dumps its
// registry — JSON for .json files, Prometheus text otherwise.
func writeMetrics(path string) error {
	reg, err := bench.CollectMetrics()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = reg.WriteJSON(f)
	} else {
		err = reg.DumpText(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
