// Command pcapcheck verifies the framing of capture files written by the
// obs flight recorder (or anything else producing nanosecond pcap /
// pcapng with raw-IP packets). It is a pure-Go stand-in for "tcpdump -r"
// in environments without libpcap: CI uses it to prove that the files
// failover-trace -pcap writes are structurally sound.
//
// Usage:
//
//	pcapcheck file.pcap [file2.pcapng ...]
//
// The format is chosen by each file's leading magic number. Exit status is
// non-zero if any file fails verification.
package main

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"

	"tcpfailover/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: pcapcheck FILE...")
		os.Exit(2)
	}
	failed := false
	for _, path := range os.Args[1:] {
		n, format, err := checkFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcapcheck: %s: %v\n", path, err)
			failed = true
			continue
		}
		fmt.Printf("%s: ok, %s, %d packets\n", path, format, n)
	}
	if failed {
		os.Exit(1)
	}
}

func checkFile(path string) (packets int, format string, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, "", err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	magic, err := br.Peek(4)
	if err != nil {
		return 0, "", fmt.Errorf("reading magic: %w", err)
	}
	switch binary.LittleEndian.Uint32(magic) {
	case 0x0A0D0D0A:
		n, err := obs.VerifyPcapNG(br)
		return n, "pcapng", err
	default:
		n, err := obs.VerifyPcap(br)
		return n, "pcap", err
	}
}
