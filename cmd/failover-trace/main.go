// Command failover-trace runs a small replicated-echo scenario, crashes the
// primary mid-stream, and dumps the full annotated packet trace — the
// fastest way to watch the paper's protocol at work: the secondary snooping
// in promiscuous mode, its diverted segments carrying the
// original-destination option, the primary bridge's merged segments with
// min-ACK/min-window, the gratuitous-ARP takeover, and the client-driven
// recovery afterward.
//
// Usage:
//
//	failover-trace [-bytes N] [-crash-at N] [-no-crash] [-hosts client,primary,secondary,router] [-pcap out.pcap]
//
// With -pcap, every traced host also feeds the obs flight recorder and the
// capture is written as a standard pcap file (or pcapng when the file name
// ends in .pcapng), readable by tcpdump and Wireshark.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"tcpfailover"
	"tcpfailover/internal/apps"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/obs"
	"tcpfailover/internal/trace"
)

func main() {
	var (
		total   = flag.Int64("bytes", 16*1024, "bytes to echo through the connection")
		crashAt = flag.Int64("crash-at", -1, "crash the primary after this many echoed bytes (-1 = half)")
		noCrash = flag.Bool("no-crash", false, "fault-free run")
		hosts   = flag.String("hosts", "client,primary,secondary,router",
			"comma-separated hosts to trace")
		pcapOut = flag.String("pcap", "", "write the traced packets to this pcap (or .pcapng) file")
	)
	flag.Parse()
	if err := run(*total, *crashAt, *noCrash, *hosts, *pcapOut); err != nil {
		fmt.Fprintln(os.Stderr, "failover-trace:", err)
		os.Exit(1)
	}
}

func run(total, crashAt int64, noCrash bool, hosts, pcapOut string) error {
	opts := tcpfailover.LANOptions()
	opts.ServerPorts = []uint16{7}
	sc, err := tcpfailover.NewScenario(opts)
	if err != nil {
		return err
	}
	if err := sc.Group.OnEach(func(h *netstack.Host) error {
		_, err := apps.NewEchoServer(h.TCP(), 7)
		return err
	}); err != nil {
		return err
	}
	sc.Start()

	tr := trace.New(os.Stdout)
	byName := map[string]*netstack.Host{
		"client":    sc.Client,
		"primary":   sc.Primary,
		"secondary": sc.Secondary,
		"router":    sc.Router,
	}
	var rec *obs.Recorder
	if pcapOut != "" {
		// Generous bound: every traced event fits, so the file holds the
		// whole run rather than the tail.
		rec = obs.NewRecorder(1<<20, obs.DefaultSnapLen)
	}
	for _, name := range strings.Split(hosts, ",") {
		h, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return fmt.Errorf("unknown host %q", name)
		}
		tr.Attach(h)
		if rec != nil {
			h.AttachRecorder(rec)
		}
	}

	if crashAt < 0 {
		crashAt = total / 2
	}
	conn, err := sc.Client.TCP().Dial(sc.ServiceAddr(), 7)
	if err != nil {
		return err
	}
	var sent, received int64
	crashed := noCrash
	closed := false
	chunk := make([]byte, 8192)
	pump := func() {
		for sent < total {
			n := min(int64(len(chunk)), total-sent)
			apps.Pattern(chunk[:n], sent)
			m, err := conn.Write(chunk[:n])
			if err != nil || m == 0 {
				return
			}
			sent += int64(m)
		}
		conn.Close()
	}
	rbuf := make([]byte, 8192)
	conn.OnEstablished(pump)
	conn.OnWritable(pump)
	conn.OnReadable(func() {
		for {
			n, rerr := conn.Read(rbuf)
			if n > 0 {
				received += int64(n)
				continue
			}
			if rerr == io.EOF || n == 0 {
				return
			}
		}
	})
	conn.OnClose(func(error) { closed = true })

	if !crashed {
		if err := sc.RunUntil(func() bool { return received >= crashAt }, time.Minute); err != nil {
			return err
		}
		fmt.Printf("%12s ***           primary crashes (echoed %d bytes)\n",
			fmt.Sprintf("%.6f", sc.Now().Seconds()), received)
		sc.Group.CrashPrimary()
	}
	if err := sc.RunUntil(func() bool { return received == total }, 10*time.Minute); err != nil {
		return err
	}
	fmt.Printf("%12s ***           transfer complete (%d bytes, %d trace events)\n",
		fmt.Sprintf("%.6f", sc.Now().Seconds()), received, tr.Count())
	if err := sc.RunUntil(func() bool { return closed }, 10*time.Minute); err != nil {
		return err
	}
	fmt.Printf("%12s ***           connection closed\n", fmt.Sprintf("%.6f", sc.Now().Seconds()))
	if rec != nil {
		if err := writeCapture(pcapOut, rec); err != nil {
			return err
		}
		fmt.Printf("wrote %d packets to %s\n", rec.Len(), pcapOut)
	}
	return nil
}

func writeCapture(path string, rec *obs.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	recs := rec.Records()
	if strings.HasSuffix(path, ".pcapng") {
		err = obs.WritePcapNG(f, recs)
	} else {
		err = obs.WritePcap(f, recs)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
