// Command failover-trace runs a small replicated-echo scenario, crashes the
// primary mid-stream, and dumps the full annotated packet trace — the
// fastest way to watch the paper's protocol at work: the secondary snooping
// in promiscuous mode, its diverted segments carrying the
// original-destination option, the primary bridge's merged segments with
// min-ACK/min-window, the gratuitous-ARP takeover, and the client-driven
// recovery afterward.
//
// Usage:
//
//	failover-trace [-seed N] [-bytes N] [-crash-at N] [-no-crash]
//	               [-hosts client,primary,secondary,router]
//	               [-pcap out.pcap] [-perfetto out.json]
//
// With -pcap, every traced host also feeds the obs flight recorder and the
// capture is written as a standard pcap file (or pcapng when the file name
// ends in .pcapng), readable by tcpdump and Wireshark.
//
// With -perfetto, the run records per-connection lifecycle spans and a
// sampled metrics timeseries and writes them as Chrome trace-event JSON —
// load the file at ui.perfetto.dev to see the connection's setup and stall
// slices, the fleet failure/detect/takeover marks, and counter tracks.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"tcpfailover"
	"tcpfailover/internal/apps"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/obs"
	"tcpfailover/internal/trace"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "simulation seed (every run is a pure function of it)")
		total   = flag.Int64("bytes", 16*1024, "bytes to echo through the connection")
		crashAt = flag.Int64("crash-at", -1, "crash the primary after this many echoed bytes (-1 = half)")
		noCrash = flag.Bool("no-crash", false, "fault-free run")
		hosts   = flag.String("hosts", "client,primary,secondary,router",
			"comma-separated hosts to trace")
		pcapOut = flag.String("pcap", "", "write the traced packets to this pcap (or .pcapng) file")
		perfOut = flag.String("perfetto", "",
			"write connection spans and sampled metrics as Chrome trace-event JSON to this file")
	)
	flag.Parse()
	if err := run(*seed, *total, *crashAt, *noCrash, *hosts, *pcapOut, *perfOut); err != nil {
		fmt.Fprintln(os.Stderr, "failover-trace:", err)
		os.Exit(1)
	}
}

func run(seed, total, crashAt int64, noCrash bool, hosts, pcapOut, perfOut string) error {
	opts := tcpfailover.LANOptions()
	opts.Seed = seed
	opts.ServerPorts = []uint16{7}
	opts.Spans = perfOut != ""
	sc, err := tcpfailover.NewScenario(opts)
	if err != nil {
		return err
	}
	fmt.Printf("%12s ***           run header: seed=%d bytes=%d hosts=%s\n",
		fmt.Sprintf("%.6f", sc.Now().Seconds()), seed, total, hosts)
	if err := sc.Group.OnEach(func(h *netstack.Host) error {
		_, err := apps.NewEchoServer(h.TCP(), 7)
		return err
	}); err != nil {
		return err
	}
	sc.Start()

	tr := trace.New(os.Stdout)
	byName := map[string]*netstack.Host{
		"client":    sc.Client,
		"primary":   sc.Primary,
		"secondary": sc.Secondary,
		"router":    sc.Router,
	}
	var rec *obs.Recorder
	if pcapOut != "" {
		// Generous bound: every traced event fits, so the file holds the
		// whole run rather than the tail.
		rec = obs.NewRecorder(1<<20, obs.DefaultSnapLen)
	}
	for _, name := range strings.Split(hosts, ",") {
		h, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return fmt.Errorf("unknown host %q", name)
		}
		tr.Attach(h)
		if rec != nil {
			h.AttachRecorder(rec)
		}
	}

	if crashAt < 0 {
		crashAt = total / 2
	}
	conn, err := sc.Client.TCP().Dial(sc.ServiceAddr(), 7)
	if err != nil {
		return err
	}
	var sent, received int64
	crashed := noCrash
	closed := false
	chunk := make([]byte, 8192)
	pump := func() {
		for sent < total {
			n := min(int64(len(chunk)), total-sent)
			apps.Pattern(chunk[:n], sent)
			m, err := conn.Write(chunk[:n])
			if err != nil || m == 0 {
				return
			}
			sent += int64(m)
		}
		conn.Close()
	}
	rbuf := make([]byte, 8192)
	conn.OnEstablished(pump)
	conn.OnWritable(pump)
	conn.OnReadable(func() {
		for {
			n, rerr := conn.Read(rbuf)
			if n > 0 {
				received += int64(n)
				continue
			}
			if rerr == io.EOF || n == 0 {
				return
			}
		}
	})
	conn.OnClose(func(error) { closed = true })

	var sampler *obs.Sampler
	if perfOut != "" {
		// The sampler rides the simulation as an ordinary recurring event, so
		// every sample lands on the deterministic sim-time grid. Ticking stops
		// with the transfer: the long post-close quiet period would otherwise
		// wrap the ring past the failover window the trace is about.
		const period = 10 * time.Millisecond
		sampler = obs.NewSampler(sc.Obs, period, 4096)
		var tick func()
		tick = func() {
			sampler.Sample(sc.Now())
			if received < total {
				sc.Sched.After(period, "obs.sample", tick)
			}
		}
		sc.Sched.After(period, "obs.sample", tick)
	}

	if !crashed {
		if err := sc.RunUntil(func() bool { return received >= crashAt }, time.Minute); err != nil {
			return err
		}
		fmt.Printf("%12s ***           primary crashes (echoed %d bytes)\n",
			fmt.Sprintf("%.6f", sc.Now().Seconds()), received)
		sc.Spans.MarkFailure(sc.Now())
		sc.Group.CrashPrimary()
	}
	if err := sc.RunUntil(func() bool { return received == total }, 10*time.Minute); err != nil {
		return err
	}
	fmt.Printf("%12s ***           transfer complete (%d bytes, %d trace events)\n",
		fmt.Sprintf("%.6f", sc.Now().Seconds()), received, tr.Count())
	if err := sc.RunUntil(func() bool { return closed }, 10*time.Minute); err != nil {
		return err
	}
	fmt.Printf("%12s ***           connection closed\n", fmt.Sprintf("%.6f", sc.Now().Seconds()))
	if rec != nil {
		if err := writeCapture(pcapOut, rec); err != nil {
			return err
		}
		fmt.Printf("wrote %d packets to %s\n", rec.Len(), pcapOut)
	}
	if perfOut != "" {
		sampler.Sample(sc.Now()) // close the counter tracks at the end of the run
		if err := writePerfetto(perfOut, sc.Spans, sampler.Timeseries()); err != nil {
			return err
		}
		fmt.Printf("wrote %d connection spans to %s\n", sc.Spans.Len(), perfOut)
	}
	return nil
}

func writePerfetto(path string, spans *obs.SpanRecorder, ts *obs.Timeseries) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = obs.WritePerfetto(f, spans, ts)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func writeCapture(path string, rec *obs.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	recs := rec.Records()
	if strings.HasSuffix(path, ".pcapng") {
		err = obs.WritePcapNG(f, recs)
	} else {
		err = obs.WritePcap(f, recs)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
