package tcpfailover_test

// One testing.B benchmark per table and figure of the paper's section 9
// (plus the failover-latency extension). The simulation runs in virtual
// time, so wall-clock ns/op measures simulator cost; the numbers the paper
// reports are attached as custom metrics (virtual microseconds / KB/s) via
// b.ReportMetric. The cmd/failover-bench tool prints the same experiments
// as full paper-style tables.

import (
	"testing"
	"time"

	"tcpfailover/internal/bench"
)

// E1 — connection setup time (paper: std 294 us, failover 505 us median).
func BenchmarkConnectionSetupStandard(b *testing.B) {
	benchConnSetup(b, bench.Standard)
}

func BenchmarkConnectionSetupFailover(b *testing.B) {
	benchConnSetup(b, bench.Failover)
}

func benchConnSetup(b *testing.B, mode bench.Mode) {
	for b.Loop() {
		r, err := bench.ConnectionSetup(mode, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Median.Microseconds()), "virt-us/conn")
	}
}

// E2 — Figure 3, client-to-server send time (one representative size per
// region: buffered and wire-bound).
func BenchmarkClientToServerSend32KStandard(b *testing.B) {
	benchC2S(b, bench.Standard, 32*1024)
}

func BenchmarkClientToServerSend32KFailover(b *testing.B) {
	benchC2S(b, bench.Failover, 32*1024)
}

func BenchmarkClientToServerSend1MStandard(b *testing.B) {
	benchC2S(b, bench.Standard, 1024*1024)
}

func BenchmarkClientToServerSend1MFailover(b *testing.B) {
	benchC2S(b, bench.Failover, 1024*1024)
}

func benchC2S(b *testing.B, mode bench.Mode, size int64) {
	for b.Loop() {
		pts, err := bench.ClientToServerSend(mode, []int64{size}, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(pts[0].Median.Microseconds()), "virt-us/msg")
	}
	b.SetBytes(size)
}

// E3 — Figure 4, server-to-client transfer time.
func BenchmarkServerToClient64KStandard(b *testing.B) {
	benchS2C(b, bench.Standard, 64*1024)
}

func BenchmarkServerToClient64KFailover(b *testing.B) {
	benchS2C(b, bench.Failover, 64*1024)
}

func benchS2C(b *testing.B, mode bench.Mode, size int64) {
	for b.Loop() {
		pts, err := bench.ServerToClientTransfer(mode, []int64{size}, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(pts[0].Median.Microseconds()), "virt-us/reply")
	}
	b.SetBytes(size)
}

// E4 — Figure 5, sustained stream rates (scaled-down streams per iteration;
// the full 100 MB run lives in cmd/failover-bench).
func BenchmarkStreamRateStandard(b *testing.B) {
	benchStream(b, bench.Standard)
}

func BenchmarkStreamRateFailover(b *testing.B) {
	benchStream(b, bench.Failover)
}

func benchStream(b *testing.B, mode bench.Mode) {
	const size = 4 * 1024 * 1024
	for b.Loop() {
		r, err := bench.StreamRates(mode, size)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SendKBps, "virt-send-KB/s")
		b.ReportMetric(r.RecvKBps, "virt-recv-KB/s")
	}
	b.SetBytes(2 * size)
}

// E5 — Figure 6, FTP over the WAN (one rep of the full file set).
func BenchmarkFTPOverWANStandard(b *testing.B) {
	benchFTP(b, bench.Standard)
}

func BenchmarkFTPOverWANFailover(b *testing.B) {
	benchFTP(b, bench.Failover)
}

func benchFTP(b *testing.B, mode bench.Mode) {
	for b.Loop() {
		pts, err := bench.FTPRates(mode, 1)
		if err != nil {
			b.Fatal(err)
		}
		// Report the largest file's get rate, the paper's steady-state row.
		b.ReportMetric(pts[len(pts)-1].GetKBps, "virt-get-KB/s")
	}
}

// E6 — extension: failover latency.
func BenchmarkFailoverLatency(b *testing.B) {
	for b.Loop() {
		r, err := bench.FailoverLatency(1)
		if err != nil {
			b.Fatal(err)
		}
		if !r.AllIntact {
			b.Fatal("stream damaged across failover")
		}
		b.ReportMetric(float64(r.StallMedian.Milliseconds()), "virt-stall-ms")
	}
}

// E12 — extension: open-loop SLO (one failover crash cell at moderate load).
func BenchmarkSLOFailoverCrash(b *testing.B) {
	for b.Loop() {
		pts, err := bench.SLO("web", []float64{60}, 2*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Mode == bench.Failover && p.Crash {
				b.ReportMetric(float64(p.P99.Microseconds()), "virt-p99-us")
				b.ReportMetric(p.GoodputKBps, "virt-goodput-KB/s")
			}
		}
	}
}
