package tcpfailover_test

import (
	"testing"
	"time"

	"tcpfailover"
	"tcpfailover/internal/fault"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/tcp"
)

// The fault subsystem's corrupt model flips a single bit per frame — the
// kind of damage that slips past the (unmodelled) Ethernet CRC. The IPv4
// header checksum and the TCP pseudo-header checksum are then the last
// line of defense: a corrupted payload must never reach an application.

// TestCorruptionAlwaysCaughtByChecksums is the wire-level property across
// 1000 seeded trials: a random single-bit flip anywhere in a TCP/IPv4
// datagram is always rejected by one of the two checksums. Ones-complement
// sums detect every single-bit error, so zero escapes are expected.
func TestCorruptionAlwaysCaughtByChecksums(t *testing.T) {
	src, dst := tcpfailover.ClientAddr, tcpfailover.PrimaryAddr
	for trial := 0; trial < 1000; trial++ {
		rng := fault.NewRand(uint64(trial))
		payload := make([]byte, 1+rng.Intn(1400))
		for i := range payload {
			payload[i] = byte(rng.Uint64())
		}
		seg := &tcp.Segment{
			SrcPort: 40000, DstPort: 80,
			Seq:     tcp.Seq(rng.Uint64()),
			Ack:     tcp.Seq(rng.Uint64()),
			Flags:   tcp.FlagACK | tcp.FlagPSH,
			Window:  uint16(rng.Uint64()),
			Payload: payload,
		}
		dgram := ipv4.Marshal(ipv4.Header{TTL: 64, Protocol: ipv4.ProtoTCP, Src: src, Dst: dst},
			tcp.Marshal(src, dst, seg))

		// The same single-bit flip the fault injector applies.
		bit := rng.Intn(len(dgram) * 8)
		dgram[bit/8] ^= 1 << (bit % 8)

		hdr, tcpBytes, err := ipv4.Unmarshal(dgram)
		if err != nil {
			continue // caught by the IPv4 header checksum (or version check)
		}
		if _, err := tcp.Unmarshal(hdr.Src, hdr.Dst, tcpBytes, true); err != nil {
			continue // caught by the TCP checksum
		}
		t.Fatalf("trial %d: flipped bit %d escaped both checksums", trial, bit)
	}
}

// TestCorruptedLinkStreamIntact runs a replicated echo transfer over a
// client link that corrupts one bit in 2%% of all frames. Every corrupted
// segment must be discarded at a checksum and recovered by retransmission;
// the application-observed stream stays byte-exact.
func TestCorruptedLinkStreamIntact(t *testing.T) {
	opts := tcpfailover.LANOptions()
	opts.Faults = &fault.Plan{Impairments: []fault.Impairment{
		{Link: fault.LinkClientLink, Models: []fault.Spec{fault.Corrupt(0.02)}},
	}}
	sc := newEchoScenario(t, opts)
	ec := startEchoClient(t, sc, 128*1024)
	if err := sc.RunUntil(func() bool { return ec.closed }, 30*time.Minute); err != nil {
		t.Fatalf("run: %v (sent=%d received=%d)", err, ec.sent, ec.received)
	}
	ec.check(t)
	if got := sc.Faults.Stats().Corrupted; got == 0 {
		t.Error("no corruption was actually injected")
	}
}

// TestCorruptedServerLANStreamIntact corrupts frames on the server LAN,
// where the secondary snoops promiscuously: a corrupted snooped segment is
// translated like any other but must still die at the secondary TCP's
// checksum verification, never corrupting replica state visible to the
// client.
func TestCorruptedServerLANStreamIntact(t *testing.T) {
	opts := tcpfailover.LANOptions()
	opts.Faults = &fault.Plan{Impairments: []fault.Impairment{
		{Link: fault.LinkServerLAN, Models: []fault.Spec{fault.Corrupt(0.01)}},
	}}
	sc := newEchoScenario(t, opts)
	ec := startEchoClient(t, sc, 128*1024)
	if err := sc.RunUntil(func() bool { return ec.closed }, 30*time.Minute); err != nil {
		t.Fatalf("run: %v (sent=%d received=%d)", err, ec.sent, ec.received)
	}
	ec.check(t)
	if got := sc.Faults.Stats().Corrupted; got == 0 {
		t.Error("no corruption was actually injected")
	}
}
