package tcpfailover_test

import (
	"testing"
	"time"

	"tcpfailover"
	"tcpfailover/internal/apps"
	"tcpfailover/internal/core"
	"tcpfailover/internal/netstack"
)

// The paper implements two methods of marking failover connections
// (section 7): a per-socket option and a port set. The port set is what
// every other test uses; this test exercises the per-socket method — one
// specific connection on an otherwise unprotected port is enabled, and only
// that connection survives the failover.
func TestPerSocketFailoverEnabling(t *testing.T) {
	opts := tcpfailover.LANOptions()
	opts.ServerPorts = nil // nothing enabled by port
	sc, err := tcpfailover.NewScenario(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Group.OnEach(func(h *netstack.Host) error {
		_, err := apps.NewEchoServer(h.TCP(), 7070)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	sc.Start()

	// The client's deterministic stack allocates ephemeral ports from
	// 49152, so the application can register its connection up front —
	// the moral equivalent of setting the socket option before connect.
	sc.Group.Selector().EnableTuple(core.MakeTupleKey(tcpfailover.ClientAddr, 49152, 7070))

	protected := startEchoClientPort(t, sc, 96*1024, 7070) // gets port 49152
	if err := sc.RunUntil(func() bool { return protected.received > 16*1024 }, time.Minute); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	// The second connection (port 49153) is NOT enabled: it talks to the
	// primary alone, like any ordinary TCP connection.
	unprotected := startEchoClientPort(t, sc, 96*1024, 7070)
	if err := sc.RunUntil(func() bool { return unprotected.received > 16*1024 }, time.Minute); err != nil {
		t.Fatalf("unprotected warm-up: %v", err)
	}

	sc.Group.CrashPrimary()

	// The protected connection completes byte-exact.
	if err := sc.RunUntil(func() bool { return protected.closed }, 30*time.Minute); err != nil {
		t.Fatalf("protected run: %v (received=%d)", err, protected.received)
	}
	protected.check(t)

	// The unprotected connection dies with the primary (reset by the
	// promoted secondary, or a retransmission timeout).
	if err := sc.RunUntil(func() bool { return unprotected.closed }, 30*time.Minute); err != nil {
		t.Fatalf("unprotected run: %v", err)
	}
	if unprotected.err == nil && unprotected.received == 96*1024 {
		t.Error("unprotected connection survived the crash; selector leaked protection")
	}
}
