package tcpfailover_test

import (
	"os"
	"testing"
	"time"

	"tcpfailover"
	"tcpfailover/internal/trace"
)

// TestDebugChain dumps the first moments of a chained echo exchange.
func TestDebugChain(t *testing.T) {
	if os.Getenv("TCPFAILOVER_TRACE") == "" {
		t.Skip("set TCPFAILOVER_TRACE=1 to dump a packet trace")
	}
	sc := newChainEchoScenario(t, tcpfailover.LANOptions())
	tr := trace.New(os.Stderr)
	tr.Attach(sc.Client)
	tr.Attach(sc.Primary)
	tr.Attach(sc.Secondary)
	tr.Attach(sc.Tertiary)
	ec := startEchoClient(t, sc, 196608)
	if os.Getenv("TCPFAILOVER_CRASH") != "" {
		_ = sc.RunUntil(func() bool { return ec.received > 48*1024 }, time.Minute)
		pos := 2
		t.Logf("crashing position %d at %v (received=%d)", pos, sc.Sched.Now(), ec.received)
		sc.Chain.Crash(pos)
	}
	_ = sc.RunUntil(func() bool { return ec.closed }, 30*time.Second)
	t.Logf("sent=%d received=%d closed=%v headMatched=%d midMatched=%d",
		ec.sent, ec.received, ec.closed,
		sc.Chain.HeadBridge().Stats().BytesMatched,
		sc.Chain.MiddleBridge().Primary().Stats().BytesMatched)
	t.Logf("midPB stats: %+v degraded=%v", sc.Chain.MiddleBridge().Primary().Stats(), sc.Chain.MiddleBridge().Primary().Degraded())
	t.Logf("headPB stats: %+v degraded=%v", sc.Chain.HeadBridge().Stats(), sc.Chain.HeadBridge().Degraded())
	for _, h := range sc.Chain.Hosts() {
		for _, c := range h.TCP().Conns() {
			t.Logf("%s conn %v state=%v buffered=%d sendq=%d sendfree=%d", h.Name(), c.Tuple(), c.State(), c.Buffered(), c.SendQueued(), c.SendFree())
		}
		st := h.TCP().Stats()
		t.Logf("%s tcp stats: %+v", h.Name(), st)
	}
}
