package tcpfailover_test

import (
	"testing"
	"time"

	"tcpfailover"
	"tcpfailover/internal/fault"
)

// These tests drive replica failures through the declarative failure
// schedule (Options.Faults.Schedule) instead of imperative CrashPrimary
// calls: the crash is an event inside the simulation, armed at build time,
// so the whole faulty run is reproducible from the scenario options alone.

// scheduledScenario builds a replicated echo scenario whose failure
// schedule is the given steps.
func scheduledScenario(t *testing.T, steps ...fault.Step) *tcpfailover.Scenario {
	t.Helper()
	opts := tcpfailover.LANOptions()
	opts.Faults = &fault.Plan{Schedule: steps}
	return newEchoScenario(t, opts)
}

// TestScheduleCrashPrimaryBeforeHandshake crashes the primary before the
// client ever dials. By the time the client connects, the secondary must
// have taken over the service address, and the connection runs entirely on
// the promoted replica.
func TestScheduleCrashPrimaryBeforeHandshake(t *testing.T) {
	sc := scheduledScenario(t, fault.Step{At: time.Millisecond, Op: fault.OpCrashPrimary})
	// Run past detection (50 ms heartbeat timeout) and takeover.
	if err := sc.Run(120 * time.Millisecond); err != nil {
		t.Fatalf("pre-dial run: %v", err)
	}
	ec := startEchoClient(t, sc, 64*1024)
	if err := sc.RunUntil(func() bool { return ec.closed }, 30*time.Minute); err != nil {
		t.Fatalf("run: %v (sent=%d received=%d)", err, ec.sent, ec.received)
	}
	ec.check(t)
}

// TestScheduleCrashPrimaryDuringHandshake schedules the crash inside the
// failover connection-setup window (~550 us), so the primary dies between
// the client's SYN and the combined SYN-ACK. The client's SYN
// retransmissions must land on the promoted secondary and the stream
// complete bit-compatibly.
func TestScheduleCrashPrimaryDuringHandshake(t *testing.T) {
	sc := scheduledScenario(t, fault.Step{At: 300 * time.Microsecond, Op: fault.OpCrashPrimary})
	ec := startEchoClient(t, sc, 64*1024)
	if err := sc.RunUntil(func() bool { return ec.closed }, 30*time.Minute); err != nil {
		t.Fatalf("run: %v (sent=%d received=%d)", err, ec.sent, ec.received)
	}
	ec.check(t)
}

// TestScheduleCrashPrimaryMidStream crashes the primary at a fixed virtual
// time in the middle of the transfer; the connection must be taken over
// and the stream delivered exactly once.
func TestScheduleCrashPrimaryMidStream(t *testing.T) {
	sc := scheduledScenario(t, fault.Step{At: 30 * time.Millisecond, Op: fault.OpCrashPrimary})
	ec := startEchoClient(t, sc, 192*1024)
	if err := sc.RunUntil(func() bool { return ec.closed }, 30*time.Minute); err != nil {
		t.Fatalf("run: %v (sent=%d received=%d)", err, ec.sent, ec.received)
	}
	ec.check(t)
	if got := sc.Group.SecondaryBridge().Stats().TakenOver; got == 0 {
		t.Error("secondary bridge reports no connections taken over")
	}
}

// TestScheduleCrashSecondaryDegradedFlush crashes the secondary mid-stream.
// The primary bridge is then holding primary output bytes with no matching
// secondary copy; degraded mode must flush them to the client rather than
// wait forever (section 6).
func TestScheduleCrashSecondaryDegradedFlush(t *testing.T) {
	sc := scheduledScenario(t, fault.Step{At: 30 * time.Millisecond, Op: fault.OpCrashSecondary})
	ec := startEchoClient(t, sc, 192*1024)
	if err := sc.RunUntil(func() bool { return ec.closed }, 30*time.Minute); err != nil {
		t.Fatalf("run: %v (sent=%d received=%d)", err, ec.sent, ec.received)
	}
	ec.check(t)
	if !sc.Group.PrimaryBridge().Degraded() {
		t.Error("primary bridge did not degrade after secondary failure")
	}
}

// TestSchedulePartitionThenHeal cuts both directions between the primary
// and the secondary for 25 ms — shorter than the 50 ms detection timeout —
// then heals. Neither replica may declare the other dead: no takeover, no
// degradation, and the client stream is unaffected beyond retransmission
// delay.
func TestSchedulePartitionThenHeal(t *testing.T) {
	opts := tcpfailover.LANOptions()
	opts.Faults = &fault.Plan{
		Impairments: []fault.Impairment{
			{Link: fault.LinkServerLAN, From: fault.RolePrimary, To: fault.RoleSecondary,
				Models: []fault.Spec{fault.PartitionGate("p-to-s", false)}},
			{Link: fault.LinkServerLAN, From: fault.RoleSecondary, To: fault.RolePrimary,
				Models: []fault.Spec{fault.PartitionGate("s-to-p", false)}},
		},
		Schedule: []fault.Step{
			{At: 10 * time.Millisecond, Op: fault.OpPartition, Arg: "p-to-s"},
			{At: 10 * time.Millisecond, Op: fault.OpPartition, Arg: "s-to-p"},
			{At: 35 * time.Millisecond, Op: fault.OpHeal, Arg: "p-to-s"},
			{At: 35 * time.Millisecond, Op: fault.OpHeal, Arg: "s-to-p"},
		},
	}
	sc := newEchoScenario(t, opts)
	ec := startEchoClient(t, sc, 192*1024)
	if err := sc.RunUntil(func() bool { return ec.closed }, 30*time.Minute); err != nil {
		t.Fatalf("run: %v (sent=%d received=%d)", err, ec.sent, ec.received)
	}
	ec.check(t)
	if got := sc.Group.SecondaryBridge().Stats().TakenOver; got != 0 {
		t.Errorf("TakenOver = %d during a sub-timeout partition, want 0", got)
	}
	if sc.Group.PrimaryBridge().Degraded() {
		t.Error("primary bridge degraded during a sub-timeout partition")
	}
	if sc.Faults.Stats().Dropped == 0 {
		t.Error("partition dropped nothing")
	}
}

// TestScheduleCascade layers a cascading failure: the network first loses
// frames on both links, then the primary crashes; later the tertiary
// depth-2 extension is not in play, so the promoted secondary finishes the
// stream alone through the lossy network.
func TestScheduleCascade(t *testing.T) {
	opts := tcpfailover.LANOptions()
	opts.Faults = &fault.Plan{
		Impairments: []fault.Impairment{
			{Link: fault.LinkServerLAN, Models: []fault.Spec{fault.Bernoulli(0.005)}},
			{Link: fault.LinkClientLink, Models: []fault.Spec{fault.Bernoulli(0.005)}},
		},
		Schedule: []fault.Step{
			{At: 30 * time.Millisecond, Op: fault.OpCrashPrimary},
		},
	}
	sc := newEchoScenario(t, opts)
	ec := startEchoClient(t, sc, 128*1024)
	if err := sc.RunUntil(func() bool { return ec.closed }, 30*time.Minute); err != nil {
		t.Fatalf("run: %v (sent=%d received=%d)", err, ec.sent, ec.received)
	}
	ec.check(t)
}

// TestScheduleValidation pins the build-time rejection of schedules the
// topology cannot honor.
func TestScheduleValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*tcpfailover.Options)
	}{
		{"crash-secondary unreplicated", func(o *tcpfailover.Options) {
			o.Unreplicated = true
			o.Faults = &fault.Plan{Schedule: []fault.Step{{Op: fault.OpCrashSecondary}}}
		}},
		{"crash-tertiary without tertiary", func(o *tcpfailover.Options) {
			o.Faults = &fault.Plan{Schedule: []fault.Step{{Op: fault.OpCrashTertiary}}}
		}},
		{"unknown partition", func(o *tcpfailover.Options) {
			o.Faults = &fault.Plan{Schedule: []fault.Step{{Op: fault.OpPartition, Arg: "nonesuch"}}}
		}},
		{"unknown op", func(o *tcpfailover.Options) {
			o.Faults = &fault.Plan{Schedule: []fault.Step{{Op: "reboot"}}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := tcpfailover.LANOptions()
			tc.mut(&opts)
			if _, err := tcpfailover.NewScenario(opts); err == nil {
				t.Error("invalid schedule accepted at build time")
			}
		})
	}
}
