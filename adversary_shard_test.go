package tcpfailover_test

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"tcpfailover"
	"tcpfailover/internal/adversary"
	"tcpfailover/internal/apps"
	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/sim"
)

// TestAdversaryShardedDifferential extends the sharded byte-identity gate
// to the attack machinery: a rogue station on cell 0's server LAN runs a
// forged-ARP takeover and a spoofed SYN flood against the live service
// while both cells carry streams. Partitioning the cells across 1 or 2
// domain schedulers must not change a single event: per-stream digests,
// the merged metrics snapshot, delivered bytes, and the attacker's own
// counters must be byte-identical — forged frames are drawn from the
// station seed before the event loop runs, never from execution order.
func TestAdversaryShardedDifferential(t *testing.T) {
	type result struct {
		digests   []sim.StreamDigest
		snapshot  []byte
		received  []int64
		injected  int64
		snooped   int64
		unicastRx int64
	}
	run := func(shards int) result {
		t.Helper()
		opts := tcpfailover.ShardedOptions{
			Cells:     2,
			Shards:    shards,
			Cell:      tcpfailover.LANOptions(),
			CrossLink: ethernet.XConfig{Latency: 500 * time.Microsecond},
			Digest:    true,
		}
		opts.Cell.ServerPorts = []uint16{80}
		ss, err := tcpfailover.NewSharded(opts)
		if err != nil {
			t.Fatalf("sharded scenario: %v", err)
		}
		const total = 256 * 1024
		for _, cell := range ss.Cells {
			cell.Stream.Use()
			if err := cell.Group.OnEach(func(h *netstack.Host) error {
				_, err := apps.NewPushServer(h.TCP(), 80, total)
				return err
			}); err != nil {
				t.Fatalf("cell %d install: %v", cell.Index, err)
			}
		}
		ss.Start()

		// The rogue station snoops cell 0's server LAN and attacks its
		// service address mid-stream.
		cell0 := ss.Cells[0]
		cell0.Stream.Use()
		st := adversary.Attach(cell0.Sched, cell0.ServerLAN,
			ethernet.MAC{2, 0, 0, 0, 0, 0xad}, 99)
		adversary.ARPTakeover{Victim: cell0.ServiceAddr(), Start: 30 * time.Millisecond}.Launch(st)
		srcs := make([]ipv4.Addr, 16)
		for i := range srcs {
			srcs[i] = ipv4.AddrFrom4(10, 99, 9, byte(1+i))
		}
		adversary.SYNFlood{Target: cell0.ServiceAddr(), Port: 80,
			Sources: srcs, Count: 64, Start: 40 * time.Millisecond}.Launch(st)

		var recvs []*apps.Receiver
		for _, cell := range ss.Cells {
			cell.Stream.Use()
			conn, err := cell.Client.TCP().Dial(cell.ServiceAddr(), 80)
			if err != nil {
				t.Fatalf("dial cell %d: %v", cell.Index, err)
			}
			recvs = append(recvs, apps.NewReceiver(conn, cell.Sched))
		}
		if err := ss.RunUntil(400 * time.Millisecond); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		r := result{
			digests:   ss.Digests(),
			injected:  st.Injected,
			snooped:   st.Snooped,
			unicastRx: st.UnicastRx,
		}
		for _, recv := range recvs {
			r.received = append(r.received, recv.Received)
		}
		blob, err := json.Marshal(ss.MergedSnapshot())
		if err != nil {
			t.Fatal(err)
		}
		r.snapshot = blob
		return r
	}

	seq := run(1)
	par := run(2)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("adversarial sharded run differs between 1 and 2 shards:\n"+
			"shards=1: injected=%d snooped=%d unicastRx=%d received=%v digests=%v\n"+
			"shards=2: injected=%d snooped=%d unicastRx=%d received=%v digests=%v",
			seq.injected, seq.snooped, seq.unicastRx, seq.received, seq.digests,
			par.injected, par.snooped, par.unicastRx, par.received, par.digests)
	}
	if seq.injected == 0 || seq.snooped == 0 {
		t.Errorf("attacker inactive: injected=%d snooped=%d", seq.injected, seq.snooped)
	}
	// The ARP takeover must actually tilt cell 0's traffic into the rogue
	// station, or the differential is comparing an idle attacker.
	if seq.unicastRx == 0 {
		t.Errorf("takeover drew no victim traffic (unicastRx=0)")
	}
}
