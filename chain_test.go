package tcpfailover_test

import (
	"fmt"
	"testing"
	"time"

	"tcpfailover"
	"tcpfailover/internal/apps"
	"tcpfailover/internal/netstack"
)

// Three-way daisy-chained replication (the paper's section 1 extension):
// head <- middle <- tail. The same exactly-once byte-stream property must
// hold through any single failure — and through failure cascades, since a
// shortened chain is just the paper's two-way system.

func newChainEchoScenario(t *testing.T, opts tcpfailover.Options) *tcpfailover.Scenario {
	t.Helper()
	opts.Backups = 2
	sc, err := tcpfailover.NewScenario(opts)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	if err := sc.Chain.OnEach(func(h *netstack.Host) error {
		_, err := apps.NewEchoServer(h.TCP(), 80)
		return err
	}); err != nil {
		t.Fatalf("install echo: %v", err)
	}
	sc.Start()
	return sc
}

func TestChainFaultFree(t *testing.T) {
	sc := newChainEchoScenario(t, tcpfailover.LANOptions())
	ec := startEchoClient(t, sc, 128*1024)
	if err := sc.RunUntil(func() bool { return ec.closed }, 10*time.Minute); err != nil {
		t.Fatalf("run: %v (sent=%d received=%d)", err, ec.sent, ec.received)
	}
	ec.check(t)

	// All three stages did their part: the tail diverted to the middle,
	// the middle merged and diverted to the head, the head merged for the
	// client.
	if n := sc.Chain.TailBridge().Stats().DivertedOut; n == 0 {
		t.Error("tail diverted nothing")
	}
	if n := sc.Chain.MiddleBridge().Stats().DivertedOut; n == 0 {
		t.Error("middle diverted nothing")
	}
	// Matched-byte counters undercount slightly (retransmitted overlaps are
	// forwarded via the fast path), so require the bulk, not the total.
	if n := sc.Chain.MiddleBridge().Primary().Stats().BytesMatched; n < 64*1024 {
		t.Errorf("middle matched only %d bytes", n)
	}
	if n := sc.Chain.HeadBridge().Stats().BytesMatched; n < 64*1024 {
		t.Errorf("head matched only %d bytes", n)
	}
}

func TestChainSingleFailures(t *testing.T) {
	names := []string{"head", "middle", "tail"}
	for pos := range 3 {
		t.Run(names[pos], func(t *testing.T) {
			sc := newChainEchoScenario(t, tcpfailover.LANOptions())
			ec := startEchoClient(t, sc, 192*1024)
			if err := sc.RunUntil(func() bool { return ec.received > 48*1024 }, time.Minute); err != nil {
				t.Fatalf("warm-up: %v", err)
			}
			sc.Chain.Crash(pos)
			if err := sc.RunUntil(func() bool { return ec.closed }, 30*time.Minute); err != nil {
				t.Fatalf("run: %v (sent=%d received=%d)", err, ec.sent, ec.received)
			}
			ec.check(t)
		})
	}
}

func TestChainCascadingFailures(t *testing.T) {
	// Every ordered pair of distinct crash positions: the chain shortens
	// to two-way after the first failure and must survive the second.
	for first := range 3 {
		for second := range 3 {
			if first == second {
				continue
			}
			t.Run(fmt.Sprintf("crash_%d_then_%d", first, second), func(t *testing.T) {
				sc := newChainEchoScenario(t, tcpfailover.LANOptions())
				ec := startEchoClient(t, sc, 256*1024)
				if err := sc.RunUntil(func() bool { return ec.received > 32*1024 }, time.Minute); err != nil {
					t.Fatalf("warm-up: %v", err)
				}
				sc.Chain.Crash(first)
				if err := sc.RunUntil(func() bool { return ec.received > 128*1024 },
					30*time.Minute); err != nil {
					t.Fatalf("after first crash: %v (received=%d)", err, ec.received)
				}
				sc.Chain.Crash(second)
				if err := sc.RunUntil(func() bool { return ec.closed }, 60*time.Minute); err != nil {
					t.Fatalf("after second crash: %v (sent=%d received=%d)",
						err, ec.sent, ec.received)
				}
				ec.check(t)
			})
		}
	}
}

func TestChainFailoverCallbacks(t *testing.T) {
	sc := newChainEchoScenario(t, tcpfailover.LANOptions())
	var failed []int
	sc.Chain.OnFailover = func(pos int) { failed = append(failed, pos) }
	ec := startEchoClient(t, sc, 64*1024)
	if err := sc.RunUntil(func() bool { return ec.received > 16*1024 }, time.Minute); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	sc.Chain.Crash(0)
	if err := sc.RunUntil(func() bool { return len(failed) > 0 }, time.Minute); err != nil {
		t.Fatalf("detection: %v", err)
	}
	if failed[0] != 0 {
		t.Errorf("failover position = %d, want 0", failed[0])
	}
	if sc.Chain.MiddleBridge().Active() {
		t.Error("middle bridge still diverting after promotion")
	}
	if !sc.Secondary.Owns(tcpfailover.PrimaryAddr) {
		t.Error("promoted middle does not own the service address")
	}
}
