package tcpfailover_test

import (
	"fmt"
	"testing"
	"time"

	"tcpfailover"
	"tcpfailover/internal/replica"
)

// The system's core guarantee, tested as a property: no matter when a
// server fails — and regardless of concurrent packet loss — the client's
// byte stream is delivered exactly once, in order, and the connection
// closes cleanly.

func propertyRun(t *testing.T, seed int64, crashFrac float64, crashRole replica.Role, lossRate float64) {
	t.Helper()
	opts := tcpfailover.LANOptions()
	opts.Seed = seed
	opts.ServerLAN.LossRate = lossRate
	opts.ClientLink.LossRate = lossRate
	sc := newEchoScenario(t, opts)

	const total = 192 * 1024
	ec := startEchoClient(t, sc, total)
	crashAt := int64(float64(total) * crashFrac)
	if err := sc.RunUntil(func() bool { return ec.received >= crashAt }, 10*time.Minute); err != nil {
		t.Fatalf("warm-up to %d: %v (received=%d)", crashAt, err, ec.received)
	}
	switch crashRole {
	case replica.RolePrimary:
		sc.Group.CrashPrimary()
	case replica.RoleSecondary:
		sc.Group.CrashSecondary()
	}
	if err := sc.RunUntil(func() bool { return ec.closed }, 30*time.Minute); err != nil {
		t.Fatalf("completion: %v (sent=%d received=%d)", err, ec.sent, ec.received)
	}
	ec.check(t)
}

func TestPropertyFailoverSweepPrimary(t *testing.T) {
	fracs := []float64{0.02, 0.2, 0.5, 0.8, 0.95}
	for i, frac := range fracs {
		t.Run(fmt.Sprintf("crash_at_%.0f%%", frac*100), func(t *testing.T) {
			propertyRun(t, int64(100+i), frac, replica.RolePrimary, 0)
		})
	}
}

func TestPropertyFailoverSweepSecondary(t *testing.T) {
	fracs := []float64{0.02, 0.2, 0.5, 0.8, 0.95}
	for i, frac := range fracs {
		t.Run(fmt.Sprintf("crash_at_%.0f%%", frac*100), func(t *testing.T) {
			propertyRun(t, int64(200+i), frac, replica.RoleSecondary, 0)
		})
	}
}

func TestPropertyFailoverUnderLoss(t *testing.T) {
	// Failover while the network is independently dropping frames: the
	// takeover window and ordinary loss recovery compound.
	for i, role := range []replica.Role{replica.RolePrimary, replica.RoleSecondary} {
		t.Run(role.String(), func(t *testing.T) {
			propertyRun(t, int64(300+i), 0.4, role, 0.01)
		})
	}
}

// TestFailoverDuringHandshake crashes the primary immediately after the
// client's SYN is sent, before the connection can establish. The client's
// SYN retransmissions must eventually connect to the promoted secondary.
func TestFailoverDuringHandshake(t *testing.T) {
	sc := newEchoScenario(t, tcpfailover.LANOptions())
	ec := startEchoClient(t, sc, 4096)
	sc.Group.CrashPrimary() // before any packet processing
	if err := sc.RunUntil(func() bool { return ec.closed }, 30*time.Minute); err != nil {
		t.Fatalf("run: %v (sent=%d received=%d)", err, ec.sent, ec.received)
	}
	ec.check(t)
}

// TestFailoverWithRouterARPDelay exercises the paper's interval T: the
// router's ARP table update lags the gratuitous announcement, so segments
// sent during T are lost and recovered by retransmission (section 5).
func TestFailoverWithRouterARPDelay(t *testing.T) {
	opts := tcpfailover.LANOptions()
	opts.RouterARPDelay = 20 * time.Millisecond
	sc := newEchoScenario(t, opts)
	ec := startEchoClient(t, sc, 192*1024)
	if err := sc.RunUntil(func() bool { return ec.received > 64*1024 }, time.Minute); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	sc.Group.CrashPrimary()
	if err := sc.RunUntil(func() bool { return ec.closed }, 30*time.Minute); err != nil {
		t.Fatalf("run: %v (received=%d)", err, ec.received)
	}
	ec.check(t)
}

// TestColdARPConnection covers connection setup without pre-warmed caches:
// the ARP protocol itself must resolve every hop.
func TestColdARPConnection(t *testing.T) {
	opts := tcpfailover.LANOptions()
	opts.ColdARP = true
	sc := newEchoScenario(t, opts)
	ec := startEchoClient(t, sc, 8192)
	if err := sc.RunUntil(func() bool { return ec.closed }, 10*time.Minute); err != nil {
		t.Fatalf("run: %v", err)
	}
	ec.check(t)
}

// TestManyConcurrentConnections puts several replicated connections through
// a failover at once.
func TestManyConcurrentConnections(t *testing.T) {
	sc := newEchoScenario(t, tcpfailover.LANOptions())
	const conns = 8
	const each = 48 * 1024
	clients := make([]*echoClient, conns)
	for i := range clients {
		clients[i] = startEchoClient(t, sc, each)
	}
	progressed := func() bool {
		for _, ec := range clients {
			if ec.received < each/4 {
				return false
			}
		}
		return true
	}
	if err := sc.RunUntil(progressed, 10*time.Minute); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	sc.Group.CrashPrimary()
	allClosed := func() bool {
		for _, ec := range clients {
			if !ec.closed {
				return false
			}
		}
		return true
	}
	if err := sc.RunUntil(allClosed, 30*time.Minute); err != nil {
		for i, ec := range clients {
			t.Logf("conn %d: sent=%d received=%d closed=%v", i, ec.sent, ec.received, ec.closed)
		}
		t.Fatalf("completion: %v", err)
	}
	for i, ec := range clients {
		if ec.received != each || ec.badAt >= 0 || ec.err != nil {
			t.Errorf("conn %d: received=%d badAt=%d err=%v", i, ec.received, ec.badAt, ec.err)
		}
	}
	if got := sc.Group.SecondaryBridge().Stats().TakenOver; got != conns {
		t.Errorf("TakenOver = %d, want %d", got, conns)
	}
}
