package tcpfailover_test

import (
	"io"
	"testing"
	"time"

	"tcpfailover"
	"tcpfailover/internal/apps"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/tcp"
)

// newEchoScenario builds a replicated (or standard) echo service on port 80.
func newEchoScenario(t *testing.T, opts tcpfailover.Options) *tcpfailover.Scenario {
	t.Helper()
	sc, err := tcpfailover.NewScenario(opts)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	install := func(h *netstack.Host) error {
		_, err := apps.NewEchoServer(h.TCP(), 80)
		return err
	}
	if sc.Group != nil {
		if err := sc.Group.OnEach(install); err != nil {
			t.Fatalf("install echo: %v", err)
		}
	} else {
		if err := install(sc.Primary); err != nil {
			t.Fatalf("install echo: %v", err)
		}
	}
	sc.Start()
	return sc
}

// echoClient drives a client connection that sends total bytes and expects
// them echoed back.
type echoClient struct {
	conn     *tcp.Conn
	total    int64
	sent     int64
	received int64
	badAt    int64
	eof      bool
	closed   bool
	err      error
}

func startEchoClient(t *testing.T, sc *tcpfailover.Scenario, total int64) *echoClient {
	t.Helper()
	return startEchoClientPort(t, sc, total, 80)
}

func startEchoClientPort(t *testing.T, sc *tcpfailover.Scenario, total int64, port uint16) *echoClient {
	t.Helper()
	conn, err := sc.Client.TCP().Dial(sc.ServiceAddr(), port)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	ec := &echoClient{conn: conn, total: total, badAt: -1}
	chunk := make([]byte, 16*1024)
	pump := func() {
		for ec.sent < ec.total {
			n := int64(len(chunk))
			if ec.total-ec.sent < n {
				n = ec.total - ec.sent
			}
			apps.Pattern(chunk[:n], ec.sent)
			m, werr := conn.Write(chunk[:n])
			if werr != nil {
				return
			}
			if m == 0 {
				return
			}
			ec.sent += int64(m)
		}
		conn.Close()
	}
	rbuf := make([]byte, 16*1024)
	conn.OnEstablished(pump)
	conn.OnWritable(pump)
	conn.OnReadable(func() {
		for {
			n, rerr := conn.Read(rbuf)
			if n > 0 {
				if ec.badAt < 0 {
					if i := apps.VerifyPattern(rbuf[:n], ec.received); i >= 0 {
						ec.badAt = ec.received + int64(i)
					}
				}
				ec.received += int64(n)
				continue
			}
			if rerr == io.EOF {
				ec.eof = true
			}
			return
		}
	})
	conn.OnClose(func(err error) {
		ec.closed = true
		ec.err = err
	})
	return ec
}

func (ec *echoClient) check(t *testing.T) {
	t.Helper()
	if ec.sent != ec.total {
		t.Errorf("client sent %d of %d bytes", ec.sent, ec.total)
	}
	if ec.received != ec.total {
		t.Errorf("client received %d of %d echoed bytes", ec.received, ec.total)
	}
	if ec.badAt >= 0 {
		t.Errorf("echoed stream corrupted at offset %d", ec.badAt)
	}
	if !ec.closed {
		t.Error("connection did not close")
	}
	if ec.err != nil {
		t.Errorf("connection closed with error: %v", ec.err)
	}
}

func TestReplicatedEchoFaultFree(t *testing.T) {
	sc := newEchoScenario(t, tcpfailover.LANOptions())
	ec := startEchoClient(t, sc, 200*1024)
	if err := sc.RunUntil(func() bool { return ec.closed }, 5*time.Minute); err != nil {
		t.Fatalf("run: %v (sent=%d received=%d)", err, ec.sent, ec.received)
	}
	ec.check(t)

	pstats := sc.Group.PrimaryBridge().Stats()
	if pstats.BytesMatched < 200*1024 {
		t.Errorf("primary bridge matched %d bytes, want >= %d", pstats.BytesMatched, 200*1024)
	}
	sstats := sc.Group.SecondaryBridge().Stats()
	if sstats.SnoopedIn == 0 || sstats.DivertedOut == 0 {
		t.Errorf("secondary bridge inactive: %+v", sstats)
	}
}

func TestStandardEchoBaseline(t *testing.T) {
	opts := tcpfailover.LANOptions()
	opts.Unreplicated = true
	sc := newEchoScenario(t, opts)
	ec := startEchoClient(t, sc, 200*1024)
	if err := sc.RunUntil(func() bool { return ec.closed }, 5*time.Minute); err != nil {
		t.Fatalf("run: %v", err)
	}
	ec.check(t)
}

func TestFailoverPrimaryMidStream(t *testing.T) {
	sc := newEchoScenario(t, tcpfailover.LANOptions())
	ec := startEchoClient(t, sc, 512*1024)

	// Let the transfer get going, then kill the primary.
	if err := sc.RunUntil(func() bool { return ec.received > 64*1024 }, 60*time.Second); err != nil {
		t.Fatalf("warm-up: %v (received=%d)", err, ec.received)
	}
	sc.Group.CrashPrimary()

	if err := sc.RunUntil(func() bool { return ec.closed }, 10*time.Minute); err != nil {
		t.Fatalf("post-failover run: %v (sent=%d received=%d eof=%v)",
			err, ec.sent, ec.received, ec.eof)
	}
	ec.check(t)
	if got := sc.Group.SecondaryBridge().Stats().TakenOver; got == 0 {
		t.Error("secondary bridge reports no connections taken over")
	}
}

func TestFailoverSecondaryMidStream(t *testing.T) {
	sc := newEchoScenario(t, tcpfailover.LANOptions())
	ec := startEchoClient(t, sc, 512*1024)

	if err := sc.RunUntil(func() bool { return ec.received > 64*1024 }, 60*time.Second); err != nil {
		t.Fatalf("warm-up: %v (received=%d)", err, ec.received)
	}
	sc.Group.CrashSecondary()

	if err := sc.RunUntil(func() bool { return ec.closed }, 10*time.Minute); err != nil {
		t.Fatalf("post-failure run: %v (sent=%d received=%d eof=%v)",
			err, ec.sent, ec.received, ec.eof)
	}
	ec.check(t)
	if !sc.Group.PrimaryBridge().Degraded() {
		t.Error("primary bridge did not degrade after secondary failure")
	}
}
