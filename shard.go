package tcpfailover

import (
	"fmt"
	"time"

	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/obs"
	"tcpfailover/internal/sim"
)

// Sharded multi-cell topologies.
//
// NewSharded replicates the paper's Figure 1 testbed into C independent
// cells — client, router, primary, secondary each on their own subnets (see
// planCell) — joins the routers into a ring of trunk links, and partitions
// the cells across N domain schedulers advanced in conservative lockstep by
// a sim.ShardGroup. Every cell's events live in its own sim stream and every
// trunk's deliveries in its own mailbox streams, so the simulation's results
// are byte-identical for every value of Shards (including 1): the shard
// count is purely a wall-clock parallelism knob.

// ShardedOptions configures a sharded multi-cell scenario.
type ShardedOptions struct {
	// Cells is the number of testbed cells (≥ 1).
	Cells int
	// Shards is the number of domain schedulers the cells are partitioned
	// across. Clamped to [1, Cells]. Shards=1 is the sequential engine.
	Shards int
	// Workers caps the goroutines driving domains each window; 0 means
	// min(Shards, GOMAXPROCS). The bench harness lowers it to compose with
	// its own per-config worker fan-out.
	Workers int
	// Cell is the per-cell scenario template. Cell.Seed is the base seed:
	// cell i runs with a seed mixed deterministically from (Seed, i).
	// Cell.CellIndex is ignored (assigned per cell).
	Cell Options
	// ConfigureCell, when set, may adjust each cell's options (after the
	// index and seed are assigned, before the cell is built).
	ConfigureCell func(i int, o *Options)
	// CrossLink configures the inter-router trunk links. Latency must be
	// positive when Shards > 1 — it bounds the lockstep lookahead.
	CrossLink ethernet.XConfig
	// Digest enables per-stream execution digests on every domain (the
	// byte-identity witness used by the differential tests). Off by default:
	// it hashes every event name on the hot path.
	Digest bool
}

// Cell is one replicated testbed cell inside a sharded scenario.
type Cell struct {
	*Scenario
	// Stream is the cell's event stream (id = cell index + 1).
	Stream *sim.Stream
	// Domain is the scheduler the cell is partitioned onto.
	Domain *sim.Scheduler
	// Index is the cell index, also the CellIndex of its address plan.
	Index int
}

// ShardedScenario is a partitioned multi-cell simulation.
type ShardedScenario struct {
	Group *sim.ShardGroup
	Cells []*Cell
	Links []*ethernet.XLink

	opts ShardedOptions
}

// cellSeed mixes the base seed with the cell index (splitmix64-style) so
// cells are decorrelated but each cell's seed is a pure function of
// (base, i) — identical in every partition.
func cellSeed(base int64, i int) int64 {
	x := uint64(base) + uint64(i+1)*0x9E3779B97F4A7C15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int64(x)
}

// trunkNet is the /24 for trunk link k (between cell k and cell (k+1)%C):
// 10.100.<k>.0, router k east side .1, router k+1 west side .2.
func trunkEastAddr(k int) ipv4.Addr { return ipv4.AddrFrom4(10, 100, byte(k), 1) }
func trunkWestAddr(k int) ipv4.Addr { return ipv4.AddrFrom4(10, 100, byte(k), 2) }
func trunkPrefix(k int) ipv4.Prefix {
	return ipv4.PrefixFrom(ipv4.AddrFrom4(10, 100, byte(k), 0), 24)
}

func routerEastMAC(i int) ethernet.MAC { return ethernet.MAC{2, 0, 0x66, byte(i), 0, 1} }
func routerWestMAC(i int) ethernet.MAC { return ethernet.MAC{2, 0, 0x66, byte(i), 0, 2} }
func trunkEastMAC(k int) ethernet.MAC  { return ethernet.MAC{2, 0, 0x77, byte(k), 0, 1} }
func trunkWestMAC(k int) ethernet.MAC  { return ethernet.MAC{2, 0, 0x77, byte(k), 0, 2} }

// Router interface indexes in a sharded cell (0/1 are LAN/WAN as always).
const (
	ifEast = 2
	ifWest = 3
)

// NewSharded builds a partitioned multi-cell scenario.
func NewSharded(opts ShardedOptions) (*ShardedScenario, error) {
	c := opts.Cells
	if c < 1 {
		return nil, fmt.Errorf("tcpfailover: sharded scenario needs at least 1 cell, got %d", c)
	}
	if c > maxCells {
		return nil, fmt.Errorf("tcpfailover: at most %d cells, got %d", maxCells, c)
	}
	shards := opts.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > c {
		shards = c
	}
	if c > 1 && shards > 1 && opts.CrossLink.Latency <= 0 {
		return nil, fmt.Errorf("tcpfailover: cross-domain trunk latency must be positive with shards=%d (zero-latency links serialize the simulation; run with Shards=1)", shards)
	}

	// Domain schedulers. Every domain gets the same base seed — domain
	// stream 0 is never used for simulation work; all real work runs in
	// per-cell and per-mailbox streams.
	domains := make([]*sim.Scheduler, shards)
	for d := range domains {
		domains[d] = sim.New(opts.Cell.Seed)
		if opts.Digest {
			domains[d].EnableDigest()
		}
	}
	group := sim.NewShardGroup(domains...)
	if opts.Workers > 0 {
		group.SetWorkers(opts.Workers)
	}

	ss := &ShardedScenario{Group: group, opts: opts}

	// Build cells, each under its own stream on its domain. dom(i) is the
	// contiguous block partition i*shards/c.
	for i := 0; i < c; i++ {
		dom := domains[i*shards/c]
		st := dom.NewStream(sim.StreamID(i+1), cellSeed(opts.Cell.Seed, i))
		st.Use()
		o := opts.Cell
		o.CellIndex = i
		o.Seed = cellSeed(opts.Cell.Seed, i)
		if opts.ConfigureCell != nil {
			opts.ConfigureCell(i, &o)
		}
		sc, err := newScenarioOn(dom, o)
		if err != nil {
			return nil, fmt.Errorf("tcpfailover: cell %d: %w", i, err)
		}
		ss.Cells = append(ss.Cells, &Cell{Scenario: sc, Stream: st, Domain: dom, Index: i})
	}

	// Scheduler-level metrics (timer arms) are per *domain*, not per cell:
	// their values depend on the partition, so they must not leak into the
	// per-cell registries that MergedSnapshot aggregates. Detach them.
	for _, d := range domains {
		d.AttachObs(nil)
	}

	if c > 1 {
		if err := ss.linkRing(); err != nil {
			return nil, err
		}
	}
	return ss, nil
}

// linkRing joins the cell routers into a ring of trunk links and installs
// shortest-path routes for every foreign cell prefix.
func (ss *ShardedScenario) linkRing() error {
	c := len(ss.Cells)
	east := make([]*ethernet.Segment, c) // east[k]: stub for link k, in dom(cell k)
	west := make([]*ethernet.Segment, c) // west[k]: stub for link k, in dom(cell k+1)
	bw := ss.opts.CrossLink.BandwidthBps
	if bw == 0 {
		bw = 10_000_000_000
	}
	stubCfg := ethernet.Config{BandwidthBps: bw}
	for k := 0; k < c; k++ {
		east[k] = ethernet.NewSegment(ss.Cells[k].Domain, stubCfg)
		west[k] = ethernet.NewSegment(ss.Cells[(k+1)%c].Domain, stubCfg)
	}

	// Router interfaces: iface 2 east (link i), iface 3 west (link i-1).
	for i, cell := range ss.Cells {
		cell.Router.AttachIface(east[i], routerEastMAC(i), trunkEastAddr(i), trunkPrefix(i))
		kw := (i - 1 + c) % c
		cell.Router.AttachIface(west[kw], routerWestMAC(i), trunkWestAddr(kw), trunkPrefix(kw))
	}

	// Trunks: one XLink per ring edge, built in ascending order so mailbox
	// stream ids are identical for every partition.
	for k := 0; k < c; k++ {
		j := (k + 1) % c
		l, err := ethernet.ConnectDomains(ss.Group,
			ss.Cells[k].Domain, east[k], trunkEastMAC(k),
			ss.Cells[j].Domain, west[k], trunkWestMAC(k),
			ss.opts.CrossLink, cellSeed(ss.opts.Cell.Seed, 1000+k))
		if err != nil {
			return fmt.Errorf("tcpfailover: trunk %d: %w", k, err)
		}
		ss.Links = append(ss.Links, l)
	}

	// Routes and trunk ARP. Foreign prefixes route around the ring the
	// short way; ties (d == c/2 exactly) go east. Trunk-adjacent ARP is
	// always pre-seeded — the trunks are infrastructure, not part of the
	// cell's measured cold-start behavior.
	for i, cell := range ss.Cells {
		next := (i + 1) % c
		prev := (i - 1 + c) % c
		cell.Router.Iface(ifEast).ARP().Seed(trunkWestAddr(i), routerWestMAC(next))
		cell.Router.Iface(ifWest).ARP().Seed(trunkEastAddr(prev), routerEastMAC(prev))
		for j := range ss.Cells {
			if j == i {
				continue
			}
			d := (j - i + c) % c
			p := planCell(j)
			if 2*d <= c {
				cell.Router.AddRoute(p.serverPfx, trunkWestAddr(i), ifEast)
				cell.Router.AddRoute(p.clientPfx, trunkWestAddr(i), ifEast)
			} else {
				cell.Router.AddRoute(p.serverPfx, trunkEastAddr(prev), ifWest)
				cell.Router.AddRoute(p.clientPfx, trunkEastAddr(prev), ifWest)
			}
		}
	}
	return nil
}

// Start starts every cell (detectors, fault schedules), each under its own
// stream.
func (ss *ShardedScenario) Start() {
	for _, cell := range ss.Cells {
		cell.Stream.Use()
		cell.Scenario.Start()
	}
}

// RunUntil advances the whole group to t (half-open: events exactly at t
// wait for a later call; see sim.ShardGroup.RunUntil).
func (ss *ShardedScenario) RunUntil(t time.Duration) error { return ss.Group.RunUntil(t) }

// RunWhile advances the group while cond holds, up to the deadline. cond is
// evaluated at window barriers, where it may safely read any cell's state.
func (ss *ShardedScenario) RunWhile(cond func() bool, until time.Duration) error {
	return ss.Group.RunWhile(cond, until)
}

// Now returns the group's virtual time.
func (ss *ShardedScenario) Now() time.Duration { return ss.Group.Now() }

// Executed returns total events executed across all domains.
func (ss *ShardedScenario) Executed() int { return ss.Group.Executed() }

// MergedSnapshot aggregates every cell's metrics registry (obs.MergeRegistries)
// in cell order. The result is partition-independent: shard-engine metrics
// (window counts, cross-domain posts) are deliberately excluded — read them
// from Group directly.
func (ss *ShardedScenario) MergedSnapshot() []obs.Sample {
	regs := make([]*obs.Registry, 0, len(ss.Cells))
	for _, cell := range ss.Cells {
		regs = append(regs, cell.Obs)
	}
	return obs.MergeRegistries(regs...)
}

// Digests returns the per-stream execution digests across all domains,
// ordered by stream id. Requires ShardedOptions.Digest.
func (ss *ShardedScenario) Digests() []sim.StreamDigest { return ss.Group.StreamDigests() }
