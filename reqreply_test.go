package tcpfailover_test

import (
	"testing"
	"time"

	"tcpfailover"
	"tcpfailover/internal/apps"
	"tcpfailover/internal/netstack"
)

// TestReqReplySequentialRequests drives several requests over one
// connection against the replicated request/reply server, with a failover
// between two of them.
func TestReqReplySequentialRequests(t *testing.T) {
	opts := tcpfailover.LANOptions()
	opts.ServerPorts = []uint16{9000}
	sc, err := tcpfailover.NewScenario(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Group.OnEach(func(h *netstack.Host) error {
		_, err := apps.NewReqReplyServer(h.TCP(), 9000)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	sc.Start()

	cl, err := apps.NewReqReplyClient(sc.Client.TCP(), sc.Sched, sc.ServiceAddr(), 9000)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int64{100, 40_000, 5_000, 250_000, 64}
	var elapsed []time.Duration
	var issue func(i int)
	issue = func(i int) {
		if i >= len(sizes) {
			return
		}
		if i == 2 {
			sc.Group.CrashPrimary() // between replies 2 and 3
		}
		cl.Request(sizes[i], func(e time.Duration) {
			elapsed = append(elapsed, e)
			issue(i + 1)
		})
	}
	issue(0)

	if err := sc.RunUntil(func() bool { return len(elapsed) == len(sizes) },
		30*time.Minute); err != nil {
		t.Fatalf("run: %v (completed %d of %d)", err, len(elapsed), len(sizes))
	}
	for i, e := range elapsed {
		if e <= 0 {
			t.Errorf("request %d reported non-positive elapsed %v", i, e)
		}
	}
	// The large reply necessarily takes longer than the tiny ones.
	if elapsed[3] < elapsed[4] {
		t.Errorf("250 KB reply (%v) faster than 64 B reply (%v)", elapsed[3], elapsed[4])
	}
}
