package checksum

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSumKnownVector(t *testing.T) {
	// RFC 1071 example data: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2 before
	// complement (checksum = ^0xddf2 = 0x220d).
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Sum(b); got != 0x220d {
		t.Errorf("Sum = %#04x, want 0x220d", got)
	}
}

func TestSumOddLength(t *testing.T) {
	// Odd trailing byte is padded with zero.
	if got, want := Sum([]byte{0xab}), ^uint16(0xab00); got != want {
		t.Errorf("Sum odd = %#04x, want %#04x", got, want)
	}
}

func TestSumEmpty(t *testing.T) {
	if got := Sum(nil); got != 0xffff {
		t.Errorf("Sum(nil) = %#04x, want 0xffff", got)
	}
}

// TestSumSplitInvariance: summing data split across chunks at any boundary
// equals summing it whole — including odd split points, which exercise the
// carry-byte path.
func TestSumSplitInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(data []byte, splitRaw uint) bool {
		if len(data) == 0 {
			return true
		}
		split := int(splitRaw % uint(len(data)))
		whole := Sum(data)
		parts := Sum(data[:split], data[split:])
		return whole == parts
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestVerifyEmbedded: embedding the checksum in the data makes the total
// sum verify to zero, the property receivers rely on.
func TestVerifyEmbedded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for range 200 {
		n := 8 + rng.Intn(100)*2
		b := make([]byte, n)
		rng.Read(b)
		b[4], b[5] = 0, 0 // checksum field
		cs := Sum(b)
		b[4], b[5] = byte(cs>>8), byte(cs)
		if Sum(b) != 0 {
			t.Fatalf("embedded checksum does not verify (n=%d)", n)
		}
	}
}

// TestUpdateEquivalence: the incremental single-word update matches a full
// recomputation — the property the paper's bridges rely on (section 3.1).
func TestUpdateEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for range 500 {
		n := 2 + rng.Intn(50)*2
		b := make([]byte, n)
		rng.Read(b)
		old := Sum(b)
		off := rng.Intn(n/2) * 2
		oldWord := uint16(b[off])<<8 | uint16(b[off+1])
		newWord := uint16(rng.Intn(65536))
		b[off], b[off+1] = byte(newWord>>8), byte(newWord)
		want := Sum(b)
		if got := Update(old, oldWord, newWord); got != want {
			t.Fatalf("Update = %#04x, full recompute = %#04x", got, want)
		}
	}
}

// TestUpdateBytesEquivalence: replacing an even-aligned byte range
// incrementally matches full recomputation, including length changes.
func TestUpdateBytesEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for range 500 {
		pre := make([]byte, rng.Intn(20)*2)
		oldMid := make([]byte, rng.Intn(20)*2)
		newMid := make([]byte, rng.Intn(20)*2)
		post := make([]byte, rng.Intn(20)*2)
		for _, b := range [][]byte{pre, oldMid, newMid, post} {
			rng.Read(b)
		}
		oldSum := Sum(pre, oldMid, post)
		want := Sum(pre, newMid, post)
		if got := UpdateBytes(oldSum, oldMid, newMid); got != want {
			t.Fatalf("UpdateBytes = %#04x, want %#04x (lens %d->%d)",
				got, want, len(oldMid), len(newMid))
		}
	}
}

// TestUpdateUint32Equivalence covers the address/sequence-number patches.
func TestUpdateUint32Equivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for range 500 {
		n := 4 + rng.Intn(50)*2
		b := make([]byte, n)
		rng.Read(b)
		old := Sum(b)
		off := rng.Intn((n-4)/2+1) * 2
		oldVal := uint32(b[off])<<24 | uint32(b[off+1])<<16 | uint32(b[off+2])<<8 | uint32(b[off+3])
		newVal := rng.Uint32()
		b[off] = byte(newVal >> 24)
		b[off+1] = byte(newVal >> 16)
		b[off+2] = byte(newVal >> 8)
		b[off+3] = byte(newVal)
		want := Sum(b)
		if got := UpdateUint32(old, oldVal, newVal); got != want {
			t.Fatalf("UpdateUint32 = %#04x, want %#04x", got, want)
		}
	}
}
