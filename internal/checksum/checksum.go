// Package checksum implements the Internet checksum (RFC 1071) together
// with the incremental-update technique (RFC 1624) that the paper's bridges
// rely on: "it is not necessary to recompute the checksum from scratch.
// Instead, we subtract the original bytes from the checksum, and add the new
// bytes to the checksum" (paper, section 3.1).
package checksum

// Sum computes the Internet checksum over the concatenation of the given
// byte slices: the one's-complement of the one's-complement sum of all
// 16-bit words. A trailing odd byte is padded with zero, as RFC 1071
// specifies; this is handled correctly even when the odd byte falls at a
// slice boundary.
func Sum(chunks ...[]byte) uint16 {
	var sum uint32
	odd := false
	var carryByte byte
	for _, b := range chunks {
		i := 0
		if odd && len(b) > 0 {
			sum += uint32(carryByte)<<8 | uint32(b[0])
			i = 1
			odd = false
		}
		n := len(b)
		for ; i+1 < n; i += 2 {
			sum += uint32(b[i])<<8 | uint32(b[i+1])
		}
		if i < n {
			carryByte = b[i]
			odd = true
		}
	}
	if odd {
		sum += uint32(carryByte) << 8
	}
	return ^fold(sum)
}

// fold reduces a 32-bit partial sum to 16 bits with end-around carry.
func fold(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return uint16(sum)
}

// Update returns the checksum that results from replacing the 16-bit word
// old with the 16-bit word new in data whose checksum was oldSum, using the
// RFC 1624 equation 3 form (HC' = ~(~HC + ~m + m')). Both words must be
// aligned on the same even/odd boundary they occupied in the original data.
func Update(oldSum, oldWord, newWord uint16) uint16 {
	sum := uint32(^oldSum&0xffff) + uint32(^oldWord&0xffff) + uint32(newWord)
	return ^fold(sum)
}

// UpdateBytes incrementally adjusts oldSum for an in-place replacement of
// oldBytes with newBytes at an even (16-bit aligned) offset. The slices may
// have different lengths; odd-length slices are zero-padded, matching how
// they contribute to a full recomputation when they terminate the data.
func UpdateBytes(oldSum uint16, oldBytes, newBytes []byte) uint16 {
	sum := uint32(^oldSum & 0xffff)
	for i := 0; i < len(oldBytes); i += 2 {
		w := uint32(oldBytes[i]) << 8
		if i+1 < len(oldBytes) {
			w |= uint32(oldBytes[i+1])
		}
		sum += uint32(^uint16(w)) & 0xffff
	}
	for i := 0; i < len(newBytes); i += 2 {
		w := uint32(newBytes[i]) << 8
		if i+1 < len(newBytes) {
			w |= uint32(newBytes[i+1])
		}
		sum += w
	}
	return ^fold(sum)
}

// UpdateUint32 incrementally adjusts oldSum for replacing a 32-bit value
// (e.g. an IPv4 address or TCP sequence number) at an even offset.
func UpdateUint32(oldSum uint16, oldVal, newVal uint32) uint16 {
	sum := Update(oldSum, uint16(oldVal>>16), uint16(newVal>>16))
	return Update(sum, uint16(oldVal), uint16(newVal))
}
