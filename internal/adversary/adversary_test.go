package adversary

import (
	"testing"
	"time"

	"tcpfailover/internal/arp"
	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/sim"
	"tcpfailover/internal/tcp"
)

var (
	macA     = ethernet.MAC{2, 0, 0, 0, 0, 0xaa}
	macB     = ethernet.MAC{2, 0, 0, 0, 0, 0xbb}
	macRogue = ethernet.MAC{2, 0, 0, 0, 0, 0xee}
	addrA    = ipv4.MustParseAddr("10.0.1.1")
	addrB    = ipv4.MustParseAddr("10.0.1.2")
)

// sendIPv4 puts a minimal IPv4 datagram from a to b's MAC on the wire.
func sendIPv4(t *testing.T, nic *ethernet.NIC, dstMAC ethernet.MAC, src, dst ipv4.Addr) {
	t.Helper()
	dgram := ipv4.Marshal(ipv4.Header{TTL: 64, Protocol: ipv4.ProtoTCP, Src: src, Dst: dst},
		tcp.Marshal(src, dst, &tcp.Segment{SrcPort: 1, DstPort: 2, Flags: tcp.FlagACK}))
	if err := nic.Send(ethernet.Frame{Dst: dstMAC, Type: ethernet.TypeIPv4, Payload: dgram}); err != nil {
		t.Fatalf("send: %v", err)
	}
}

func TestStationLearnsBindings(t *testing.T) {
	sched := sim.New(1)
	seg := ethernet.NewSegment(sched, ethernet.Config{})
	na := seg.Attach(macA)
	nb := seg.Attach(macB)
	nb.SetHandler(func(f ethernet.Frame) {
		if f.Buf != nil {
			f.Buf.Release()
		}
	})
	st := Attach(sched, seg, macRogue, 42)

	sendIPv4(t, na, macB, addrA, addrB)
	if err := sched.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if st.Snooped == 0 {
		t.Fatal("station snooped nothing")
	}
	if m, ok := st.MACFor(addrA); !ok || m != macA {
		t.Fatalf("sender binding not learned: %v %v", m, ok)
	}
	if m, ok := st.MACFor(addrB); !ok || m != macB {
		t.Fatalf("next-hop binding not learned: %v %v", m, ok)
	}
}

func TestInjectTCPSpoofsAllLayers(t *testing.T) {
	sched := sim.New(1)
	seg := ethernet.NewSegment(sched, ethernet.Config{})
	na := seg.Attach(macA)
	nb := seg.Attach(macB)
	var got []ethernet.Frame
	var payloads [][]byte
	nb.SetHandler(func(f ethernet.Frame) {
		got = append(got, f)
		payloads = append(payloads, append([]byte(nil), f.Payload...))
		if f.Buf != nil {
			f.Buf.Release()
		}
	})
	st := Attach(sched, seg, macRogue, 42)
	sendIPv4(t, na, macB, addrA, addrB) // teach the station the bindings

	sched.After(10*time.Millisecond, "attack", func() {
		if !st.InjectTCP(addrA, addrB, &tcp.Segment{SrcPort: 7, DstPort: 9, Seq: 99, Flags: tcp.FlagRST}) {
			t.Error("InjectTCP refused with learned bindings")
		}
	})
	if err := sched.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || st.Injected != 1 {
		t.Fatalf("victim saw %d frames, injected=%d", len(got), st.Injected)
	}
	forged, fb := got[1], payloads[1]
	if forged.Src != macA {
		t.Errorf("L2 source not spoofed: %v", forged.Src)
	}
	if src := ipv4.GetAddr(fb[12:16]); src != addrA {
		t.Errorf("L3 source not spoofed: %v", src)
	}
	seg2 := fb[ipv4.HeaderLen:]
	if tcp.ComputeChecksum(addrA, addrB, seg2) != 0 {
		t.Error("forged segment has a bad checksum")
	}
	if !tcp.RawFlags(seg2).Has(tcp.FlagRST) || tcp.RawSeq(seg2) != 99 {
		t.Errorf("forged segment mangled: flags=%v seq=%v", tcp.RawFlags(seg2), tcp.RawSeq(seg2))
	}
}

func TestInjectGratuitousARP(t *testing.T) {
	sched := sim.New(1)
	seg := ethernet.NewSegment(sched, ethernet.Config{})
	nb := seg.Attach(macB)
	var got [][]byte
	nb.SetHandler(func(f ethernet.Frame) {
		if f.Type == ethernet.TypeARP {
			got = append(got, append([]byte(nil), f.Payload...))
		}
		if f.Buf != nil {
			f.Buf.Release()
		}
	})
	st := Attach(sched, seg, macRogue, 42)
	sched.After(time.Millisecond, "attack", func() { st.InjectGratuitousARP(addrA) })
	if err := sched.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("victim saw %d ARP frames", len(got))
	}
	pkt, err := arp.Unmarshal(got[0])
	if err != nil {
		t.Fatal(err)
	}
	if pkt.Op != arp.OpRequest || pkt.SenderIP != addrA || pkt.TargetIP != addrA || pkt.SenderMAC != macRogue {
		t.Errorf("not the takeover announce: %+v", pkt)
	}
}

// TestAttackDeterminism checks that the same seed produces byte-identical
// forged frames, independent of anything else on the segment.
func TestAttackDeterminism(t *testing.T) {
	capture := func(extraTraffic bool) [][]byte {
		sched := sim.New(1)
		seg := ethernet.NewSegment(sched, ethernet.Config{})
		na := seg.Attach(macA)
		nb := seg.Attach(macB)
		var frames [][]byte
		nb.SetHandler(func(f ethernet.Frame) {
			if f.Src == macA || f.Src == macRogue {
				// keep only forged + teaching frames, in arrival order
				frames = append(frames, append([]byte(nil), f.Payload...))
			}
			if f.Buf != nil {
				f.Buf.Release()
			}
		})
		st := Attach(sched, seg, macRogue, 7)
		sendIPv4(t, na, macB, addrA, addrB)
		RSTInjection{Src: addrA, Dst: addrB, SrcPort: 1, DstPort: 2,
			Probes: 4, Start: 5 * time.Millisecond}.Launch(st)
		AckStorm{Src: addrA, Dst: addrB, SrcPort: 1, DstPort: 2,
			Segments: 4, Start: 20 * time.Millisecond}.Launch(st)
		if extraTraffic {
			sched.After(12*time.Millisecond, "noise", func() {
				sendIPv4(t, na, macB, addrA, addrB)
			})
		}
		if err := sched.RunFor(time.Second); err != nil {
			t.Fatal(err)
		}
		return frames
	}
	quiet, noisy := capture(false), capture(true)
	if len(quiet) != 9 || len(noisy) != 10 {
		t.Fatalf("frame counts: quiet=%d noisy=%d", len(quiet), len(noisy))
	}
	// The 8 forged frames must be identical whether or not unrelated
	// traffic interleaved: drop the noise frame (index 5: it lands between
	// the RST probes and the storm) and compare.
	trimmed := append(append([][]byte(nil), noisy[:5]...), noisy[6:]...)
	for i := range quiet {
		if string(quiet[i]) != string(trimmed[i]) {
			t.Fatalf("frame %d differs with interleaved traffic", i)
		}
	}
}
