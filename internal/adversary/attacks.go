// The attack models: composable, seeded, scheduled into the event loop at
// Launch time. Every random draw happens inside Launch — before any event
// runs — so the forged frames are a pure function of the station seed and
// the attack parameters, independent of event interleaving, worker count,
// and shard layout.
package adversary

import (
	"time"

	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/tcp"
)

// Outcome classifies what an attack did to the measured connection.
type Outcome string

// Attack outcomes reported in the E11 matrix.
const (
	// OutcomeIntact: the connection survived and the workload completed.
	OutcomeIntact Outcome = "intact"
	// OutcomeReset: an endpoint's TCP connection was torn down by a forged
	// segment (standard TCP's blind-RST failure mode).
	OutcomeReset Outcome = "reset"
	// OutcomeWedged: the endpoints survive but the bridge's per-connection
	// state was destroyed, so the stream stalls forever — the failover
	// topology's blind-RST failure mode, strictly worse than a clean reset
	// because the client is never told.
	OutcomeWedged Outcome = "wedged"
	// OutcomeHijacked: a forged gratuitous ARP rebound the service address
	// to the rogue station, which now receives the victim's traffic.
	OutcomeHijacked Outcome = "hijacked"
	// OutcomeAmplified: forged stale-data segments made the victim reflect
	// acknowledgment traffic at the (spoofed) client — an ACK-storm
	// amplification primitive.
	OutcomeAmplified Outcome = "amplified"
	// OutcomeExhausted: a spoofed SYN flood grew per-connection state
	// without bound (flow tables tracked ~every flood entry).
	OutcomeExhausted Outcome = "state-exhausted"
)

// Attack is a scheduled attacker behavior. Launch must be called before
// the event loop reaches Start: it pre-draws all randomness and registers
// timed injections with the scheduler.
type Attack interface {
	Launch(st *Station)
}

// RSTInjection forges connection-killing RST probes from Src toward Dst
// with uniformly random sequence numbers: the blind off-path teardown
// attack of RFC 5961's threat model. Against the unhardened bridge any
// probe wipes the tracked connection; against an unhardened endpoint each
// probe lands in the acceptable half-space with probability ~1/2; with
// strict validation a probe must hit a 2^16-wide window in a 2^32 space.
type RSTInjection struct {
	Src, Dst         ipv4.Addr
	SrcPort, DstPort uint16
	Probes           int           // default 8
	Start            time.Duration // absolute virtual time of the first probe
	Spacing          time.Duration // default 1ms
}

// Launch schedules the probes.
func (a RSTInjection) Launch(st *Station) {
	probes, spacing := a.Probes, a.Spacing
	if probes == 0 {
		probes = 8
	}
	if spacing == 0 {
		spacing = time.Millisecond
	}
	rng := st.Rand("rst")
	for i := 0; i < probes; i++ {
		seq := tcp.Seq(rng.Uint64())
		ack := tcp.Seq(rng.Uint64())
		st.sched.At(a.Start+time.Duration(i)*spacing, "adversary.rst", func() {
			st.InjectTCP(a.Src, a.Dst, &tcp.Segment{
				SrcPort: a.SrcPort,
				DstPort: a.DstPort,
				Seq:     seq,
				Ack:     ack,
				Flags:   tcp.FlagRST | tcp.FlagACK,
			})
		})
	}
}

// ARPTakeover forges gratuitous ARP announcements claiming Victim for the
// rogue station's MAC — the paper's own takeover mechanism turned against
// it. On an unauthenticated LAN the router rebinds the service address and
// the live connection's client-bound path tilts into the attacker.
type ARPTakeover struct {
	Victim    ipv4.Addr
	Start     time.Duration
	Announces int           // default 3
	Spacing   time.Duration // default 10ms
}

// Launch schedules the announcements.
func (a ARPTakeover) Launch(st *Station) {
	n, spacing := a.Announces, a.Spacing
	if n == 0 {
		n = 3
	}
	if spacing == 0 {
		spacing = 10 * time.Millisecond
	}
	for i := 0; i < n; i++ {
		st.sched.At(a.Start+time.Duration(i)*spacing, "adversary.arp", func() {
			st.InjectGratuitousARP(a.Victim)
		})
	}
}

// AckStorm forges stale data segments from Src toward Dst with random
// sequence numbers and a small garbage payload. A receiver that answers
// old data with a duplicate acknowledgment — which plain TCP must, and the
// unhardened bridge does from its own state — reflects a frame at the
// spoofed source per hit, turning the victim into an ACK amplifier aimed
// at whoever the attacker names as Src.
type AckStorm struct {
	Src, Dst         ipv4.Addr
	SrcPort, DstPort uint16
	Segments         int           // default 64
	PayloadLen       int           // default 32
	Start            time.Duration
	Spacing          time.Duration // default 200µs
}

// Launch schedules the storm.
func (a AckStorm) Launch(st *Station) {
	n, plen, spacing := a.Segments, a.PayloadLen, a.Spacing
	if n == 0 {
		n = 64
	}
	if plen == 0 {
		plen = 32
	}
	if spacing == 0 {
		spacing = 200 * time.Microsecond
	}
	rng := st.Rand("ackstorm")
	payload := make([]byte, plen)
	for i := range payload {
		payload[i] = byte(rng.Uint64())
	}
	for i := 0; i < n; i++ {
		seq := tcp.Seq(rng.Uint64())
		ack := tcp.Seq(rng.Uint64())
		st.sched.At(a.Start+time.Duration(i)*spacing, "adversary.ackstorm", func() {
			st.InjectTCP(a.Src, a.Dst, &tcp.Segment{
				SrcPort: a.SrcPort,
				DstPort: a.DstPort,
				Seq:     seq,
				Ack:     ack,
				Flags:   tcp.FlagACK | tcp.FlagPSH,
				Window:  65535,
				Payload: payload,
			})
		})
	}
}

// SYNFlood sprays connection-request segments at Target:Port from spoofed,
// unroutable sources, churning the victim's per-connection tables: every
// distinct (source, port) tuple costs the bridges a flow entry and the
// server's TCP layer an embryonic connection, while the SYN-ACKs die on
// the way to addresses that answer to nobody.
type SYNFlood struct {
	Target  ipv4.Addr
	Port    uint16
	Sources []ipv4.Addr   // spoofed source pool, cycled; must be non-empty
	Count   int           // default 256
	Start   time.Duration
	Spacing time.Duration // default 200µs
}

// Launch schedules the flood.
func (a SYNFlood) Launch(st *Station) {
	count, spacing := a.Count, a.Spacing
	if count == 0 {
		count = 256
	}
	if spacing == 0 {
		spacing = 200 * time.Microsecond
	}
	rng := st.Rand("synflood")
	for i := 0; i < count; i++ {
		src := a.Sources[i%len(a.Sources)]
		srcPort := uint16(20000 + i)
		seq := tcp.Seq(rng.Uint64())
		st.sched.At(a.Start+time.Duration(i)*spacing, "adversary.synflood", func() {
			st.InjectTCP(src, a.Target, &tcp.Segment{
				SrcPort: srcPort,
				DstPort: a.Port,
				Seq:     seq,
				Flags:   tcp.FlagSYN,
				Window:  65535,
				Options: []tcp.Option{tcp.MSSOption(1460)},
			})
		})
	}
}
