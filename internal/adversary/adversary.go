// Package adversary models an attacker station on one of the testbed's
// Ethernet segments: a rogue NIC that snoops the medium promiscuously,
// learns the L2/L3 bindings of the stations around it, and injects forged
// frames — TCP segments with spoofed addresses and gratuitous ARP
// announcements — without participating in any protocol itself.
//
// The attacker is deliberately *off-path with respect to sequence numbers*:
// snooping is used only for address, port, and MAC discovery, while every
// forged sequence number is drawn from a seeded splittable PRNG. That is
// the classic blind in-LAN threat model the hardening knobs
// (tcp.Config.StrictSeqValidation, core.PrimaryConfig.ValidateSeq,
// arp SetBindingFilter, the bridge flow caps) are measured against in
// experiment E11. Everything is a function of the seed, so attack outcomes
// are reproducible and shard-invariant like every other experiment.
package adversary

import (
	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/fault"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/sim"
	"tcpfailover/internal/tcp"
)

// Station is a rogue NIC attached to a segment. It snoops in promiscuous
// mode from the moment it is attached, and exposes raw injection
// primitives the attack models in attacks.go are built from.
type Station struct {
	sched *sim.Scheduler
	nic   *ethernet.NIC
	rng   *fault.Rand

	// macs is the learned IP-to-MAC map, harvested from snooped IPv4
	// traffic: the source side of a frame reveals the sender's binding and
	// the destination side the L2 next hop toward that address — exactly
	// what an attacker needs to aim forged unicast frames.
	macs map[ipv4.Addr]ethernet.MAC
	// flows records, per snooped TCP destination (addr, port), the last
	// peer seen talking to it — how the attacker discovers a victim
	// connection's ephemeral port without guessing.
	flows map[flowKey]Peer

	// Injected counts frames this station forged onto the wire.
	Injected int64
	// UnicastRx counts frames addressed to the rogue MAC itself — after a
	// successful ARP takeover, the victim's traffic shows up here.
	UnicastRx int64
	// Snooped counts every frame overheard on the segment.
	Snooped int64
}

// Attach places a rogue station with the given MAC on seg. The seed drives
// every random choice the station's attacks make; two stations with equal
// seeds forge identical frames.
func Attach(sched *sim.Scheduler, seg *ethernet.Segment, mac ethernet.MAC, seed uint64) *Station {
	st := &Station{
		sched: sched,
		rng:   fault.NewRand(seed),
		macs:  make(map[ipv4.Addr]ethernet.MAC),
		flows: make(map[flowKey]Peer),
	}
	st.nic = seg.Attach(mac)
	st.nic.SetPromiscuous(true)
	st.nic.SetHandler(st.onFrame)
	return st
}

// MAC returns the rogue station's own hardware address.
func (st *Station) MAC() ethernet.MAC { return st.nic.MAC() }

// Rand derives an independent, label-split random stream from the
// station's seed, so each attack's draws are stable regardless of what
// else runs.
func (st *Station) Rand(label string) *fault.Rand { return st.rng.Split(label) }

// MACFor returns the learned hardware address for ip.
func (st *Station) MACFor(ip ipv4.Addr) (ethernet.MAC, bool) {
	m, ok := st.macs[ip]
	return m, ok
}

// flowKey identifies a snooped TCP destination.
type flowKey struct {
	addr ipv4.Addr
	port uint16
}

// Peer is the remote end of a snooped connection.
type Peer struct {
	Addr ipv4.Addr
	Port uint16
}

// PeerOf returns the last snooped peer of the service at (addr, port) —
// the victim connection an attack should aim at.
func (st *Station) PeerOf(addr ipv4.Addr, port uint16) (Peer, bool) {
	p, ok := st.flows[flowKey{addr, port}]
	return p, ok
}

// onFrame is the promiscuous snoop path: harvest bindings, count, release.
func (st *Station) onFrame(f ethernet.Frame) {
	st.Snooped++
	if f.Dst == st.nic.MAC() {
		st.UnicastRx++
	}
	if f.Type == ethernet.TypeIPv4 && len(f.Payload) >= ipv4.HeaderLen {
		src := ipv4.GetAddr(f.Payload[12:16])
		dst := ipv4.GetAddr(f.Payload[16:20])
		if !src.IsZero() && f.Src != (ethernet.MAC{}) {
			st.macs[src] = f.Src
		}
		if !dst.IsZero() && f.Dst != ethernet.Broadcast && f.Dst != (ethernet.MAC{}) {
			// The frame's L2 destination is the next hop toward dst on this
			// segment (the station itself or a router), which is exactly
			// where a forged frame for dst must be aimed.
			st.macs[dst] = f.Dst
		}
		// Every datagram in this simulation carries a 20-byte IPv4 header
		// (no IP options), so the TCP ports sit right behind it.
		if f.Payload[9] == ipv4.ProtoTCP && len(f.Payload) >= ipv4.HeaderLen+4 {
			t := f.Payload[ipv4.HeaderLen:]
			srcPort := uint16(t[0])<<8 | uint16(t[1])
			dstPort := uint16(t[2])<<8 | uint16(t[3])
			st.flows[flowKey{dst, dstPort}] = Peer{Addr: src, Port: srcPort}
		}
	}
	if f.Buf != nil {
		f.Buf.Release()
	}
}

// InjectTCP forges a TCP segment inside an IPv4 datagram with the given
// (spoofed) addresses and puts it on the wire, aimed at the learned next
// hop for dst. The L2 source is the spoofed sender's learned MAC when
// known, so the frame is indistinguishable from the victim's at every
// layer. Reports false when no next hop for dst has been snooped yet.
func (st *Station) InjectTCP(src, dst ipv4.Addr, seg *tcp.Segment) bool {
	dstMAC, ok := st.macs[dst]
	if !ok {
		return false
	}
	srcMAC, ok := st.macs[src]
	if !ok {
		srcMAC = st.nic.MAC()
	}
	payload := tcp.Marshal(src, dst, seg)
	dgram := ipv4.Marshal(ipv4.Header{
		TTL:      64,
		Protocol: ipv4.ProtoTCP,
		Src:      src,
		Dst:      dst,
	}, payload)
	if st.nic.Inject(ethernet.Frame{
		Dst:     dstMAC,
		Src:     srcMAC,
		Type:    ethernet.TypeIPv4,
		Payload: dgram,
	}) != nil {
		return false
	}
	st.Injected++
	return true
}

// InjectRaw puts an arbitrary TCP-protocol payload on the wire (used by
// the fuzzing harness to hit the bridges' raw-header parsing with
// attacker-controlled bytes).
func (st *Station) InjectRaw(src, dst ipv4.Addr, dstMAC ethernet.MAC, tcpBytes []byte) bool {
	dgram := ipv4.Marshal(ipv4.Header{
		TTL:      64,
		Protocol: ipv4.ProtoTCP,
		Src:      src,
		Dst:      dst,
	}, tcpBytes)
	if st.nic.Inject(ethernet.Frame{
		Dst:     dstMAC,
		Src:     st.nic.MAC(),
		Type:    ethernet.TypeIPv4,
		Payload: dgram,
	}) != nil {
		return false
	}
	st.Injected++
	return true
}

// InjectGratuitousARP broadcasts a forged gratuitous ARP claiming ip for
// the rogue station's own MAC — the exact frame the paper's legitimate IP
// takeover uses, which is why unauthenticated ARP lets any station steal a
// live connection's address.
func (st *Station) InjectGratuitousARP(ip ipv4.Addr) bool {
	return st.InjectARPAs(ip, st.nic.MAC())
}

// InjectARPAs broadcasts a gratuitous ARP binding ip to an arbitrary MAC.
func (st *Station) InjectARPAs(ip ipv4.Addr, mac ethernet.MAC) bool {
	pkt := marshalGratuitousARP(ip, mac)
	if st.nic.Inject(ethernet.Frame{
		Dst:     ethernet.Broadcast,
		Src:     mac,
		Type:    ethernet.TypeARP,
		Payload: pkt,
	}) != nil {
		return false
	}
	st.Injected++
	return true
}

// marshalGratuitousARP renders an ARP request with sender == target == ip,
// duplicated here rather than importing internal/arp so the attacker
// plausibly forges the bytes itself.
func marshalGratuitousARP(ip ipv4.Addr, mac ethernet.MAC) []byte {
	b := make([]byte, 28)
	b[0], b[1] = 0, 1 // hardware type: Ethernet
	b[2], b[3] = 0x08, 0x00
	b[4], b[5] = 6, 4
	b[6], b[7] = 0, 1 // OpRequest
	copy(b[8:14], mac[:])
	ipv4.PutAddr(b[14:18], ip)
	ipv4.PutAddr(b[24:28], ip)
	return b
}
