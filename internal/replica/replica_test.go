package replica_test

import (
	"testing"
	"time"

	"tcpfailover/internal/core"
	"tcpfailover/internal/detect"
	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/replica"
	"tcpfailover/internal/sim"
)

// pairHosts builds two hosts on one LAN for group wiring tests.
func pairHosts(t *testing.T) (*sim.Scheduler, *netstack.Host, *netstack.Host) {
	t.Helper()
	sched := sim.New(1)
	seg := ethernet.NewSegment(sched, ethernet.Config{})
	prefix := ipv4.PrefixFrom(ipv4.MustParseAddr("10.0.1.0"), 24)
	p := netstack.NewHost(sched, "p", netstack.DefaultProfile())
	p.AttachIface(seg, ethernet.MAC{2, 0, 0, 0, 0, 1}, ipv4.MustParseAddr("10.0.1.1"), prefix)
	s := netstack.NewHost(sched, "s", netstack.DefaultProfile())
	s.AttachIface(seg, ethernet.MAC{2, 0, 0, 0, 0, 2}, ipv4.MustParseAddr("10.0.1.2"), prefix)
	return sched, p, s
}

func TestGroupWiring(t *testing.T) {
	_, p, s := pairHosts(t)
	g, err := replica.NewGroup(p, s, replica.Config{ServerPorts: []uint16{80}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Primary() != p || g.Secondary() != s {
		t.Error("host accessors wrong")
	}
	if g.ServiceAddr() != ipv4.MustParseAddr("10.0.1.1") {
		t.Errorf("service addr = %v", g.ServiceAddr())
	}
	if !s.Iface(0).NIC().Promiscuous() {
		t.Error("secondary NIC not promiscuous after group construction")
	}
	if g.PrimaryBridge() == nil || g.SecondaryBridge() == nil {
		t.Fatal("bridges not installed")
	}
	key := core.MakeTupleKey(ipv4.MustParseAddr("10.0.2.1"), 49152, 80)
	if !g.Selector().Match(key) {
		t.Error("server port not enabled in the selector")
	}
}

func TestGroupRequiresAddresses(t *testing.T) {
	sched := sim.New(1)
	seg := ethernet.NewSegment(sched, ethernet.Config{})
	prefix := ipv4.PrefixFrom(ipv4.MustParseAddr("10.0.1.0"), 24)
	p := netstack.NewHost(sched, "p", netstack.DefaultProfile())
	p.AttachIface(seg, ethernet.MAC{2, 0, 0, 0, 0, 1}, 0, prefix) // no address
	s := netstack.NewHost(sched, "s", netstack.DefaultProfile())
	s.AttachIface(seg, ethernet.MAC{2, 0, 0, 0, 0, 2}, ipv4.MustParseAddr("10.0.1.2"), prefix)
	if _, err := replica.NewGroup(p, s, replica.Config{}); err == nil {
		t.Fatal("group construction succeeded without a primary address")
	}
}

func TestOnFailoverCallbacks(t *testing.T) {
	sched, p, s := pairHosts(t)
	cfg := replica.Config{
		ServerPorts: []uint16{80},
		Detect:      detect.Config{Period: 5 * time.Millisecond, Timeout: 20 * time.Millisecond},
	}
	g, err := replica.NewGroup(p, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var failed []replica.Role
	g.OnFailover = func(r replica.Role) { failed = append(failed, r) }
	g.Start()
	g.Start() // idempotent
	if err := sched.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(failed) != 0 {
		t.Fatalf("failover callbacks with healthy hosts: %v", failed)
	}

	g.CrashPrimary()
	if err := sched.RunUntil(300 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(failed) != 1 || failed[0] != replica.RolePrimary {
		t.Fatalf("failover callbacks = %v, want [primary]", failed)
	}
	if g.SecondaryBridge().Active() {
		t.Error("secondary bridge still active after takeover")
	}
	if !s.Owns(ipv4.MustParseAddr("10.0.1.1")) {
		t.Error("secondary did not take over the primary's address")
	}
	g.Stop()
}

func TestSecondaryFailureDegradesPrimary(t *testing.T) {
	sched, p, s := pairHosts(t)
	cfg := replica.Config{
		ServerPorts: []uint16{80},
		Detect:      detect.Config{Period: 5 * time.Millisecond, Timeout: 20 * time.Millisecond},
	}
	g, err := replica.NewGroup(p, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var failed []replica.Role
	g.OnFailover = func(r replica.Role) { failed = append(failed, r) }
	g.Start()
	if err := sched.RunUntil(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	g.CrashSecondary()
	if err := sched.RunUntil(300 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(failed) != 1 || failed[0] != replica.RoleSecondary {
		t.Fatalf("failover callbacks = %v, want [secondary]", failed)
	}
	if !g.PrimaryBridge().Degraded() {
		t.Error("primary bridge not degraded")
	}
}

func TestOnEachPropagatesErrors(t *testing.T) {
	_, p, s := pairHosts(t)
	g, err := replica.NewGroup(p, s, replica.Config{})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	if err := g.OnEach(func(h *netstack.Host) error {
		calls++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("OnEach ran %d times, want 2", calls)
	}
	wantErr := g.OnEach(func(h *netstack.Host) error {
		if h == s {
			return ipv4.ErrTruncated // any sentinel
		}
		return nil
	})
	if wantErr == nil {
		t.Error("OnEach swallowed the error")
	}
}

func TestRoleString(t *testing.T) {
	if replica.RolePrimary.String() != "primary" || replica.RoleSecondary.String() != "secondary" {
		t.Error("role names wrong")
	}
}
