// Package replica orchestrates a two-way actively replicated TCP server:
// it installs the primary and secondary bridges, runs the fault detectors
// in both directions, and triggers the paper's failover procedures. The
// server application is instantiated identically on both hosts (active
// replication) and must behave deterministically on a per-connection basis,
// as the paper requires.
package replica

import (
	"fmt"

	"tcpfailover/internal/core"
	"tcpfailover/internal/detect"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/obs"
)

// Config assembles a Group.
type Config struct {
	// ServerPorts are the replicated service's listening ports (the
	// paper's port-set method of marking failover connections).
	ServerPorts []uint16
	// PeerPorts mark server-initiated connections toward these remote
	// ports as failover connections (section 7.2).
	PeerPorts []uint16
	// Detect tunes the fault detectors.
	Detect detect.Config
	// Bridge tunes the primary bridge.
	Bridge core.PrimaryConfig
	// SecondaryMaxFlows bounds the secondary bridge's flow cache (LRU
	// eviction beyond the cap); 0 means unbounded.
	SecondaryMaxFlows int
	// IfIndexPrimary / IfIndexSecondary are the server-LAN interfaces.
	IfIndexPrimary   int
	IfIndexSecondary int
}

// Role identifies a group member.
type Role int

// Group member roles.
const (
	RolePrimary Role = iota + 1
	RoleSecondary
)

// String names the role.
func (r Role) String() string {
	if r == RolePrimary {
		return "primary"
	}
	return "secondary"
}

// Group is a replicated server pair.
type Group struct {
	primary   *netstack.Host
	secondary *netstack.Host
	aP, aS    ipv4.Addr

	sel *core.Selector
	pb  *core.PrimaryBridge
	sb  *core.SecondaryBridge

	detectOnPrimary   *detect.Detector // watches the secondary
	detectOnSecondary *detect.Detector // watches the primary

	// OnFailover, if set, is invoked after a failover procedure completes;
	// the argument is the role that failed.
	OnFailover func(failed Role)

	// OnPrimaryFailureDetected, if set, runs the moment the secondary's
	// fault detector declares the primary failed — before the takeover
	// procedure starts. The failover timeline analyzer timestamps its
	// detection phase here.
	OnPrimaryFailureDetected func()

	// spans, when attached, receives the detector-fired fleet mark the
	// instant the secondary declares the primary dead — independent of any
	// OnPrimaryFailureDetected callback a harness may also install.
	spans *obs.SpanRecorder

	started bool
}

// NewGroup wires the bridges onto the two hosts. The primary address aP is
// the service address clients connect to; aS is the secondary's own
// address.
func NewGroup(primary, secondary *netstack.Host, cfg Config) (*Group, error) {
	aP := primary.Iface(cfg.IfIndexPrimary).Addr()
	aS := secondary.Iface(cfg.IfIndexSecondary).Addr()
	if aP.IsZero() || aS.IsZero() {
		return nil, fmt.Errorf("replica: interfaces must have addresses (aP=%s aS=%s)", aP, aS)
	}
	sel := core.NewSelector()
	for _, p := range cfg.ServerPorts {
		sel.EnableServerPort(p)
	}
	for _, p := range cfg.PeerPorts {
		sel.EnablePeerPort(p)
	}
	g := &Group{
		primary:   primary,
		secondary: secondary,
		aP:        aP,
		aS:        aS,
		sel:       sel,
	}
	g.pb = core.NewPrimaryBridge(primary, aP, aS, sel, cfg.Bridge)
	g.sb = core.NewSecondaryBridge(secondary, cfg.IfIndexSecondary, aP, aS, sel)
	g.sb.SetFlowLimit(cfg.SecondaryMaxFlows)
	g.detectOnPrimary = detect.New(primary, aP, aS, cfg.Detect, func() {
		g.pb.HandleSecondaryFailure()
		if g.OnFailover != nil {
			g.OnFailover(RoleSecondary)
		}
	})
	g.detectOnSecondary = detect.New(secondary, aS, aP, cfg.Detect, func() {
		g.spans.MarkDetect(g.secondary.Scheduler().Now())
		if g.OnPrimaryFailureDetected != nil {
			g.OnPrimaryFailureDetected()
		}
		_ = g.sb.Takeover()
		if g.OnFailover != nil {
			g.OnFailover(RolePrimary)
		}
	})
	return g, nil
}

// Start begins heartbeat exchange. Call after the replicated applications
// are installed on both hosts.
func (g *Group) Start() {
	if g.started {
		return
	}
	g.started = true
	g.detectOnPrimary.Start()
	g.detectOnSecondary.Start()
}

// Stop halts the fault detectors (the bridges stay installed).
func (g *Group) Stop() {
	g.detectOnPrimary.Stop()
	g.detectOnSecondary.Stop()
}

// Primary returns the primary host.
func (g *Group) Primary() *netstack.Host { return g.primary }

// Secondary returns the secondary host.
func (g *Group) Secondary() *netstack.Host { return g.secondary }

// ServiceAddr returns the address clients connect to (the primary's).
func (g *Group) ServiceAddr() ipv4.Addr { return g.aP }

// Selector exposes the failover-connection selector (to enable individual
// connections, the paper's socket-option method).
func (g *Group) Selector() *core.Selector { return g.sel }

// AttachSpans installs the fleet span recorder on the group: the detector
// mark lands here, and the secondary bridge is wired for the per-flow
// first-diverted milestone and the takeover mark.
func (g *Group) AttachSpans(r *obs.SpanRecorder) {
	g.spans = r
	g.sb.AttachSpans(r)
}

// PrimaryBridge exposes the primary bridge (stats, tests).
func (g *Group) PrimaryBridge() *core.PrimaryBridge { return g.pb }

// SecondaryBridge exposes the secondary bridge (stats, tests).
func (g *Group) SecondaryBridge() *core.SecondaryBridge { return g.sb }

// OnEach runs f on both hosts — the way a deterministic replicated
// application is installed.
func (g *Group) OnEach(f func(h *netstack.Host) error) error {
	if err := f(g.primary); err != nil {
		return fmt.Errorf("primary: %w", err)
	}
	if err := f(g.secondary); err != nil {
		return fmt.Errorf("secondary: %w", err)
	}
	return nil
}

// CrashPrimary fail-stops the primary host; the secondary's fault detector
// will notice and run the takeover procedure.
func (g *Group) CrashPrimary() { g.primary.Crash() }

// CrashSecondary fail-stops the secondary host; the primary's fault
// detector will notice and degrade to single-server operation.
func (g *Group) CrashSecondary() { g.secondary.Crash() }
