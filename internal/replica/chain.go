package replica

import (
	"fmt"

	"tcpfailover/internal/core"
	"tcpfailover/internal/detect"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/netstack"
)

// Chain is a three-way daisy-chained replication group — the paper's
// suggested extension beyond two-way replication (section 1): the tail
// diverts to the middle, the middle merges and diverts to the head, and the
// head merges and talks to the client. Failures shorten the chain:
//
//   - head fails  -> the middle is promoted (section 5 takeover) and the
//     chain becomes head'=middle with backup tail;
//   - middle fails -> the tail re-attaches its diversion to the head; the
//     head keeps matching (the stream and its sequence space are identical,
//     since the client was synchronized to the tail's sequence numbers all
//     along);
//   - tail fails  -> the middle degrades per section 6 and keeps feeding
//     its own stream to the head.
//
// After one failure the chain behaves exactly like a two-way Group, so a
// second failure is survived as well. The failure-routing logic lives in
// this controller; a production deployment would replicate it on each node
// (driven by the same mesh of fault detectors).
type Chain struct {
	hosts [3]*netstack.Host
	addrs [3]ipv4.Addr

	sel  *core.Selector
	head *core.PrimaryBridge
	mid  *core.MiddleBridge
	tail *core.SecondaryBridge

	alive     [3]bool
	detectors []*detect.Detector

	// OnFailover is invoked after a reconfiguration completes; the argument
	// is the chain position (0 = head) that failed.
	OnFailover func(position int)

	started bool
}

// NewChain wires a head, middle, and tail. cfg.IfIndexPrimary applies to
// the head, cfg.IfIndexSecondary to both backups.
func NewChain(head, middle, tail *netstack.Host, cfg Config) (*Chain, error) {
	c := &Chain{
		hosts: [3]*netstack.Host{head, middle, tail},
		alive: [3]bool{true, true, true},
	}
	c.addrs[0] = head.Iface(cfg.IfIndexPrimary).Addr()
	c.addrs[1] = middle.Iface(cfg.IfIndexSecondary).Addr()
	c.addrs[2] = tail.Iface(cfg.IfIndexSecondary).Addr()
	for i, a := range c.addrs {
		if a.IsZero() {
			return nil, fmt.Errorf("replica: chain host %d has no address", i)
		}
	}
	c.sel = core.NewSelector()
	for _, p := range cfg.ServerPorts {
		c.sel.EnableServerPort(p)
	}
	for _, p := range cfg.PeerPorts {
		c.sel.EnablePeerPort(p)
	}
	// Head matches its own output against the middle's merged stream.
	c.head = core.NewPrimaryBridge(head, c.addrs[0], c.addrs[1], c.sel, cfg.Bridge)
	// Middle translates client traffic, matches against the tail, diverts
	// the merged stream to the head.
	c.mid = core.NewMiddleBridge(middle, cfg.IfIndexSecondary,
		c.addrs[0], c.addrs[1], c.addrs[2], c.sel, cfg.Bridge)
	// Tail is an ordinary secondary whose diversion targets the middle.
	c.tail = core.NewSecondaryBridge(tail, cfg.IfIndexSecondary, c.addrs[0], c.addrs[2], c.sel)
	c.tail.SetUpstream(c.addrs[1])

	// A full mesh of fault detectors: every node watches every other; the
	// controller routes each failure according to the current chain shape.
	for i := range 3 {
		for j := range 3 {
			if i == j {
				continue
			}
			watcher, watched := i, j
			d := detect.New(c.hosts[watcher], c.addrs[watcher], c.addrs[watched], cfg.Detect,
				func() { c.onFailure(watched) })
			c.detectors = append(c.detectors, d)
		}
	}
	return c, nil
}

// Start begins heartbeat exchange; call after the replicated applications
// are installed on all three hosts.
func (c *Chain) Start() {
	if c.started {
		return
	}
	c.started = true
	for _, d := range c.detectors {
		d.Start()
	}
}

// Stop halts the fault detectors.
func (c *Chain) Stop() {
	for _, d := range c.detectors {
		d.Stop()
	}
}

// ServiceAddr returns the address clients connect to.
func (c *Chain) ServiceAddr() ipv4.Addr { return c.addrs[0] }

// Selector exposes the failover-connection selector.
func (c *Chain) Selector() *core.Selector { return c.sel }

// Hosts returns the chain members in order (head, middle, tail).
func (c *Chain) Hosts() []*netstack.Host { return c.hosts[:] }

// HeadBridge exposes the head's matching bridge.
func (c *Chain) HeadBridge() *core.PrimaryBridge { return c.head }

// MiddleBridge exposes the middle's composed bridge.
func (c *Chain) MiddleBridge() *core.MiddleBridge { return c.mid }

// TailBridge exposes the tail's secondary bridge.
func (c *Chain) TailBridge() *core.SecondaryBridge { return c.tail }

// OnEach runs f on all three hosts (application installation).
func (c *Chain) OnEach(f func(h *netstack.Host) error) error {
	for i, h := range c.hosts {
		if err := f(h); err != nil {
			return fmt.Errorf("chain host %d: %w", i, err)
		}
	}
	return nil
}

// Crash fail-stops the host at the given chain position.
func (c *Chain) Crash(position int) { c.hosts[position].Crash() }

// onFailure routes a detected failure according to the current topology.
// Detectors on every surviving node fire; the reconfiguration itself is
// idempotent.
func (c *Chain) onFailure(position int) {
	if !c.alive[position] {
		return
	}
	c.alive[position] = false
	switch position {
	case 0: // head died: the middle is promoted and the tail re-targets
		// its diversion to the service address the middle now owns. If the
		// middle is already gone, the tail takes over directly.
		if c.alive[1] {
			_ = c.mid.PromoteToHead()
			c.tail.SetUpstream(c.addrs[0])
		} else if c.alive[2] {
			_ = c.tail.Takeover()
		}
	case 1: // middle died: the tail re-attaches to the head — unless the
		// head is already gone (promoted middle), in which case the tail
		// performs the final takeover.
		if c.alive[0] {
			c.tail.SetUpstream(c.addrs[0])
			c.head.SetMatchingPeer(c.addrs[2])
		} else if c.alive[2] {
			_ = c.tail.Takeover()
		}
	case 2: // tail died: whichever node was feeding on it degrades.
		if c.alive[1] {
			c.mid.HandleTailFailure()
		} else if c.alive[0] {
			c.head.HandleSecondaryFailure()
		}
	}
	// A middle loss leaves the head matching the tail's stream; a tail
	// loss after a promotion leaves the promoted middle alone.
	if !c.alive[1] && !c.alive[2] && c.alive[0] {
		c.head.HandleSecondaryFailure()
	}
	if !c.alive[0] && !c.alive[2] && c.alive[1] {
		c.mid.HandleTailFailure()
	}
	if c.OnFailover != nil {
		c.OnFailover(position)
	}
}
