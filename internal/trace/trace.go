// Package trace captures annotated packet traces from simulated hosts in a
// tcpdump-like text format. It is used by the failover-trace tool, by
// examples that want to show the protocol in action, and for debugging.
package trace

import (
	"fmt"
	"io"
	"time"

	"tcpfailover/internal/fault"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/tcp"
)

// Tracer collects packet events from any number of hosts.
type Tracer struct {
	w     io.Writer
	count int
}

// New creates a tracer writing to w.
func New(w io.Writer) *Tracer { return &Tracer{w: w} }

// Attach installs the tracer on a host's packet tap. dir is "rx" or "tx"
// from the host's viewpoint. The tap list fans out, so a tracer coexists
// with other observers (the obs flight recorder, tests) on the same host.
func (t *Tracer) Attach(h *netstack.Host) {
	name := h.Name()
	sched := h.Scheduler()
	h.AddPacketTap(func(dir string, hdr ipv4.Header, payload []byte) {
		t.count++
		fmt.Fprintf(t.w, "%12s %-9s %-2s %s\n", fmtTime(sched.Now()), name, dir,
			Format(hdr, payload))
	})
}

// AttachFaults subscribes the tracer to a fault set, so injected
// impairments (drops, delays, duplicates, bit flips) appear inline with
// the packet timeline, marked "!!". There is one fault set per scenario,
// so this claims the set's single event observer.
func (t *Tracer) AttachFaults(s *fault.Set) {
	s.SetOnEvent(func(e fault.Event) {
		t.count++
		fmt.Fprintf(t.w, "%12s %-9s !! fault: %s by %s (%d bytes)\n",
			fmtTime(e.Now), e.Link, e.Kind, e.Model, e.Size)
	})
}

// Count returns the number of events traced.
func (t *Tracer) Count() int { return t.count }

func fmtTime(d time.Duration) string {
	return fmt.Sprintf("%.6f", d.Seconds())
}

// Format renders one datagram tcpdump-style.
func Format(hdr ipv4.Header, payload []byte) string {
	switch hdr.Protocol {
	case ipv4.ProtoTCP:
		if len(payload) < tcp.HeaderLen {
			return fmt.Sprintf("%s > %s: TCP <truncated>", hdr.Src, hdr.Dst)
		}
		flags := tcp.RawFlags(payload)
		dataLen := len(payload) - tcp.RawHeaderLen(payload)
		s := fmt.Sprintf("%s.%d > %s.%d: Flags [%s], seq %d",
			hdr.Src, tcp.RawSrcPort(payload), hdr.Dst, tcp.RawDstPort(payload),
			flags, uint32(tcp.RawSeq(payload)))
		if dataLen > 0 {
			s += fmt.Sprintf(":%d", uint32(tcp.RawSeq(payload))+uint32(dataLen))
		}
		if flags.Has(tcp.FlagACK) {
			s += fmt.Sprintf(", ack %d", uint32(tcp.RawAck(payload)))
		}
		s += fmt.Sprintf(", win %d", tcp.RawWindow(payload))
		if seg, err := tcp.Unmarshal(hdr.Src, hdr.Dst, payload, false); err == nil {
			if mss, ok := seg.MSS(); ok {
				s += fmt.Sprintf(", mss %d", mss)
			}
			if orig, ok := seg.OrigDst(); ok {
				s += fmt.Sprintf(", origdst %s", orig)
			}
		}
		if dataLen > 0 {
			s += fmt.Sprintf(", length %d", dataLen)
		}
		return s
	case ipv4.ProtoHeartbeat:
		return fmt.Sprintf("%s > %s: heartbeat", hdr.Src, hdr.Dst)
	default:
		return fmt.Sprintf("%s > %s: proto %d, length %d", hdr.Src, hdr.Dst, hdr.Protocol, len(payload))
	}
}
