package trace

import (
	"testing"

	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/tcp"
)

// TestFormatGolden pins the exact rendering of every Format branch: the
// tcpdump-style TCP line (flags, seq ranges, ack, window, options, data
// length), the truncated-TCP fallback, heartbeats, and unknown protocols.
// The trace output doubles as documentation of the wire protocol, so
// changes here should be deliberate.
func TestFormatGolden(t *testing.T) {
	client := ipv4.MustParseAddr("10.0.2.1")
	server := ipv4.MustParseAddr("10.0.1.1")
	tcpHdr := func(src, dst ipv4.Addr) ipv4.Header {
		return ipv4.Header{Protocol: ipv4.ProtoTCP, Src: src, Dst: dst}
	}

	cases := []struct {
		name    string
		hdr     ipv4.Header
		payload []byte
		want    string
	}{
		{
			name: "syn with mss",
			hdr:  tcpHdr(client, server),
			payload: tcp.Marshal(client, server, &tcp.Segment{
				SrcPort: 49152, DstPort: 80, Seq: 1000,
				Flags: tcp.FlagSYN, Window: 65535,
				Options: []tcp.Option{tcp.MSSOption(1460)},
			}),
			want: "10.0.2.1.49152 > 10.0.1.1.80: Flags [S], seq 1000, win 65535, mss 1460",
		},
		{
			name: "synack with mss and origdst",
			hdr:  tcpHdr(server, client),
			payload: tcp.Marshal(server, client, &tcp.Segment{
				SrcPort: 80, DstPort: 49152, Seq: 300, Ack: 1001,
				Flags: tcp.FlagSYN | tcp.FlagACK, Window: 8192,
				Options: []tcp.Option{tcp.MSSOption(1000), tcp.OrigDstOption(server)},
			}),
			want: "10.0.1.1.80 > 10.0.2.1.49152: Flags [S.], seq 300, ack 1001, win 8192, mss 1000, origdst 10.0.1.1",
		},
		{
			name: "data segment with seq range and length",
			hdr:  tcpHdr(client, server),
			payload: tcp.Marshal(client, server, &tcp.Segment{
				SrcPort: 49152, DstPort: 80, Seq: 1001, Ack: 301,
				Flags: tcp.FlagACK | tcp.FlagPSH, Window: 4096,
				Payload: []byte("hello"),
			}),
			want: "10.0.2.1.49152 > 10.0.1.1.80: Flags [P.], seq 1001:1006, ack 301, win 4096, length 5",
		},
		{
			name: "pure ack",
			hdr:  tcpHdr(client, server),
			payload: tcp.Marshal(client, server, &tcp.Segment{
				SrcPort: 49152, DstPort: 80, Seq: 1006, Ack: 301,
				Flags: tcp.FlagACK, Window: 4096,
			}),
			want: "10.0.2.1.49152 > 10.0.1.1.80: Flags [.], seq 1006, ack 301, win 4096",
		},
		{
			name: "rst without ack",
			hdr:  tcpHdr(server, client),
			payload: tcp.Marshal(server, client, &tcp.Segment{
				SrcPort: 80, DstPort: 49152, Seq: 301,
				Flags: tcp.FlagRST, Window: 0,
			}),
			want: "10.0.1.1.80 > 10.0.2.1.49152: Flags [R], seq 301, win 0",
		},
		{
			name: "fin ack",
			hdr:  tcpHdr(client, server),
			payload: tcp.Marshal(client, server, &tcp.Segment{
				SrcPort: 49152, DstPort: 80, Seq: 1006, Ack: 301,
				Flags: tcp.FlagFIN | tcp.FlagACK, Window: 4096,
			}),
			want: "10.0.2.1.49152 > 10.0.1.1.80: Flags [F.], seq 1006, ack 301, win 4096",
		},
		{
			name:    "truncated tcp",
			hdr:     tcpHdr(client, server),
			payload: make([]byte, 4),
			want:    "10.0.2.1 > 10.0.1.1: TCP <truncated>",
		},
		{
			name:    "heartbeat",
			hdr:     ipv4.Header{Protocol: ipv4.ProtoHeartbeat, Src: client, Dst: server},
			payload: nil,
			want:    "10.0.2.1 > 10.0.1.1: heartbeat",
		},
		{
			name:    "unknown protocol",
			hdr:     ipv4.Header{Protocol: 17, Src: client, Dst: server},
			payload: make([]byte, 8),
			want:    "10.0.2.1 > 10.0.1.1: proto 17, length 8",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Format(c.hdr, c.payload); got != c.want {
				t.Errorf("Format mismatch\ngot:  %s\nwant: %s", got, c.want)
			}
		})
	}
}
