package trace

import (
	"strings"
	"testing"

	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/tcp"
)

func TestFormatTCPSegment(t *testing.T) {
	src := ipv4.MustParseAddr("10.0.2.1")
	dst := ipv4.MustParseAddr("10.0.1.1")
	seg := &tcp.Segment{
		SrcPort: 49152,
		DstPort: 80,
		Seq:     1000,
		Ack:     2000,
		Flags:   tcp.FlagSYN | tcp.FlagACK,
		Window:  65535,
		Options: []tcp.Option{tcp.MSSOption(1460), tcp.OrigDstOption(src)},
		Payload: []byte("xyz"),
	}
	raw := tcp.Marshal(src, dst, seg)
	got := Format(ipv4.Header{Protocol: ipv4.ProtoTCP, Src: src, Dst: dst}, raw)

	for _, want := range []string{
		"10.0.2.1.49152 > 10.0.1.1.80",
		"Flags [S.]",
		"seq 1000:1003",
		"ack 2000",
		"win 65535",
		"mss 1460",
		"origdst 10.0.2.1",
		"length 3",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("Format output %q missing %q", got, want)
		}
	}
}

func TestFormatHeartbeatAndUnknown(t *testing.T) {
	src := ipv4.MustParseAddr("10.0.1.1")
	dst := ipv4.MustParseAddr("10.0.1.2")
	hb := Format(ipv4.Header{Protocol: ipv4.ProtoHeartbeat, Src: src, Dst: dst}, nil)
	if !strings.Contains(hb, "heartbeat") {
		t.Errorf("heartbeat format: %q", hb)
	}
	other := Format(ipv4.Header{Protocol: 17, Src: src, Dst: dst}, make([]byte, 8))
	if !strings.Contains(other, "proto 17") {
		t.Errorf("unknown proto format: %q", other)
	}
	trunc := Format(ipv4.Header{Protocol: ipv4.ProtoTCP, Src: src, Dst: dst}, make([]byte, 4))
	if !strings.Contains(trunc, "truncated") {
		t.Errorf("truncated format: %q", trunc)
	}
}
