package tcp

import (
	"testing"
	"time"
)

// TestWindowUpdateAfterRead: a receiver whose application drains a
// previously full buffer must advertise the opening so the sender resumes
// without waiting for probes.
func TestWindowUpdateAfterRead(t *testing.T) {
	p := newPair(t, Config{RecvBufSize: 8192})
	c, s := p.connect(t, 80)

	total := 32 * 1024
	data := make([]byte, total)
	sent := 0
	pump := func() {
		for sent < total {
			n, _ := c.Write(data[sent:])
			if n == 0 {
				return
			}
			sent += n
		}
	}
	c.OnWritable(pump)
	pump()
	// Fill the receiver.
	p.runUntil(t, func() bool { return s.Buffered() == 8192 }, 10*time.Second)
	stalledAt := p.sched.Now()

	// The application reads everything; the window update alone must
	// revive the transfer promptly (well under the minimum RTO).
	buf := make([]byte, 8192)
	var got int
	drain := func() {
		for {
			n, _ := s.Read(buf)
			if n == 0 {
				return
			}
			got += n
		}
	}
	s.OnReadable(drain)
	drain()
	p.runUntil(t, func() bool { return got >= 16*1024 }, 10*time.Second)
	if wait := p.sched.Now() - stalledAt; wait > 150*time.Millisecond {
		t.Errorf("transfer revived after %v, want a prompt window update (< min RTO)", wait)
	}
}

// TestNagleCoalescesSmallWrites: with Nagle enabled, a burst of tiny writes
// while data is in flight produces far fewer segments than writes.
func TestNagleCoalescesSmallWrites(t *testing.T) {
	countSegments := func(disableNagle bool) int {
		p := newPair(t, Config{DisableNagle: disableNagle})
		c, s := p.connect(t, 80)
		buf := make([]byte, 4096)
		got := 0
		s.OnReadable(func() {
			for {
				n, _ := s.Read(buf)
				if n == 0 {
					return
				}
				got += n
			}
		})
		before := p.toBCount
		// 50 one-byte writes, spaced closer than the RTT.
		for i := range 50 {
			i := i
			p.sched.After(time.Duration(i)*50*time.Microsecond, "write", func() {
				_, _ = c.Write([]byte{byte(i)})
			})
		}
		p.runUntil(t, func() bool { return got == 50 }, 30*time.Second)
		return p.toBCount - before
	}
	withNagle := countSegments(false)
	withoutNagle := countSegments(true)
	if withNagle >= withoutNagle {
		t.Errorf("Nagle sent %d segments, nodelay sent %d; expected coalescing",
			withNagle, withoutNagle)
	}
	if withNagle > 20 {
		t.Errorf("Nagle sent %d segments for 50 tiny writes, expected strong coalescing", withNagle)
	}
}
