package tcp

import (
	"bytes"
	"reflect"
	"testing"

	"tcpfailover/internal/ipv4"
)

// FuzzWireRoundTrip feeds arbitrary bytes to the segment parser and checks
// the parse → marshal → parse round trip: whatever Unmarshal accepts,
// Marshal must re-encode into a checksum-valid segment that parses back to
// the identical Segment. The parser must reject or accept — never panic —
// and the raw accessors must agree with the parsed header fields.
func FuzzWireRoundTrip(f *testing.F) {
	src, dst := ipv4.Addr(0x0a000001), ipv4.Addr(0x0a000002)
	seed := func(s *Segment) {
		f.Add(uint32(src), uint32(dst), Marshal(src, dst, s))
	}
	seed(&Segment{SrcPort: 49152, DstPort: 9000, Seq: 1, Flags: FlagSYN,
		Window: 65535, Options: []Option{MSSOption(1460)}})
	seed(&Segment{SrcPort: 9000, DstPort: 49152, Seq: 100, Ack: 2,
		Flags: FlagACK | FlagPSH, Window: 8192, Payload: []byte("hello")})
	seed(&Segment{SrcPort: 9000, DstPort: 49152, Seq: 7, Ack: 3,
		Flags: FlagACK | FlagFIN, Window: 1,
		Options: []Option{OrigDstOption(ipv4.Addr(0x0a000003))}})
	f.Add(uint32(1), uint32(2), []byte{0, 1, 2})
	f.Add(uint32(0), uint32(0), bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, srcU, dstU uint32, b []byte) {
		src, dst := ipv4.Addr(srcU), ipv4.Addr(dstU)
		seg, err := Unmarshal(src, dst, b, false)
		if err != nil {
			return // rejected without panicking: fine
		}
		// The raw in-place accessors must agree with the parser.
		if RawSrcPort(b) != seg.SrcPort || RawDstPort(b) != seg.DstPort {
			t.Fatalf("raw ports %d,%d != parsed %d,%d",
				RawSrcPort(b), RawDstPort(b), seg.SrcPort, seg.DstPort)
		}

		wire := Marshal(src, dst, seg)
		if ComputeChecksum(src, dst, wire) != 0 {
			t.Fatalf("Marshal produced an invalid checksum: % x", wire)
		}
		seg2, err := Unmarshal(src, dst, wire, true)
		if err != nil {
			t.Fatalf("re-parse of marshaled segment failed: %v (wire % x)", err, wire)
		}
		// Clear fields that legitimately differ in representation: the
		// re-marshaled payload is a fresh slice.
		if !bytes.Equal(seg.Payload, seg2.Payload) {
			t.Fatalf("payload changed: % x -> % x", seg.Payload, seg2.Payload)
		}
		seg.Payload, seg2.Payload = nil, nil
		if !reflect.DeepEqual(seg, seg2) {
			t.Fatalf("segment changed across round trip:\n first %+v\nsecond %+v", seg, seg2)
		}
	})
}
