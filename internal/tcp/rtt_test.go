package tcp

import (
	"testing"
	"time"
)

func TestRTTFirstSampleSeedsEstimate(t *testing.T) {
	r := newRTTEstimator(time.Second, 200*time.Millisecond, time.Minute)
	if r.RTO() != time.Second {
		t.Errorf("initial RTO = %v", r.RTO())
	}
	r.sample(100 * time.Millisecond)
	if r.SRTT() != 100*time.Millisecond {
		t.Errorf("SRTT = %v, want the first sample", r.SRTT())
	}
	// RTO = srtt + 4*rttvar = 100 + 200 = 300ms.
	if r.RTO() != 300*time.Millisecond {
		t.Errorf("RTO = %v, want 300ms", r.RTO())
	}
}

func TestRTTSmoothingConverges(t *testing.T) {
	r := newRTTEstimator(time.Second, time.Millisecond, time.Minute)
	for range 100 {
		r.sample(50 * time.Millisecond)
	}
	if d := r.SRTT() - 50*time.Millisecond; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("SRTT = %v, want ~50ms", r.SRTT())
	}
	if r.RTO() > 100*time.Millisecond {
		t.Errorf("RTO = %v, want tight around a steady RTT", r.RTO())
	}
}

func TestRTTBackoffDoublesAndClamps(t *testing.T) {
	r := newRTTEstimator(time.Second, 200*time.Millisecond, 8*time.Second)
	for range 10 {
		r.backoff()
	}
	if r.RTO() != 8*time.Second {
		t.Errorf("RTO = %v, want clamped at max", r.RTO())
	}
}

func TestRTTMinClamp(t *testing.T) {
	r := newRTTEstimator(time.Second, 200*time.Millisecond, time.Minute)
	r.sample(time.Microsecond)
	if r.RTO() != 200*time.Millisecond {
		t.Errorf("RTO = %v, want min clamp 200ms", r.RTO())
	}
}

func TestRTTNonPositiveSample(t *testing.T) {
	r := newRTTEstimator(time.Second, time.Millisecond, time.Minute)
	r.sample(0) // must not panic or produce zero estimates
	if r.SRTT() <= 0 {
		t.Errorf("SRTT = %v after zero sample", r.SRTT())
	}
}
