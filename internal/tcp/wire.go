// Package tcp is a user-space implementation of the Transmission Control
// Protocol (RFC 793) for the simulated network: segment wire format with
// options, checksums over the IPv4 pseudo-header, the full connection state
// machine, sliding-window flow control, RTT estimation with exponential
// retransmission backoff, Reno-style congestion control, delayed
// acknowledgments, and half-close semantics.
//
// The package also exposes the raw-segment accessors the failover bridges
// need: reading and patching header fields of marshaled segments in place
// with incremental checksum updates (paper section 3.1), and inserting or
// removing the "original destination" header option the secondary bridge
// uses to divert its output to the primary.
package tcp

import (
	"errors"

	"tcpfailover/internal/checksum"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/netbuf"
)

// Flags is the TCP control-flag set.
type Flags uint8

// Flag values.
const (
	FlagFIN Flags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// Has reports whether all flags in f2 are set.
func (f Flags) Has(f2 Flags) bool { return f&f2 == f2 }

// String renders the flags tcpdump-style.
func (f Flags) String() string {
	s := ""
	for _, fl := range []struct {
		f Flags
		c string
	}{{FlagSYN, "S"}, {FlagFIN, "F"}, {FlagRST, "R"}, {FlagPSH, "P"}, {FlagACK, "."}, {FlagURG, "U"}} {
		if f.Has(fl.f) {
			s += fl.c
		}
	}
	if s == "" {
		return "none"
	}
	return s
}

// Option kinds.
const (
	OptEnd     = 0
	OptNOP     = 1
	OptMSS     = 2
	OptOrigDst = 253 // RFC 3692 experimental kind, carries the paper's "original destination address" option
)

// Option is a TCP header option.
type Option struct {
	Kind byte
	Data []byte
}

// HeaderLen is the length of the option-less TCP header.
const HeaderLen = 20

// MaxOptionLen bounds the options area (data offset is 4 bits of words).
const MaxOptionLen = 40

// Segment is a parsed TCP segment.
type Segment struct {
	SrcPort uint16
	DstPort uint16
	Seq     Seq
	Ack     Seq
	Flags   Flags
	Window  uint16
	Urgent  uint16
	Options []Option
	Payload []byte
}

// Len returns the amount of sequence space the segment occupies: payload
// bytes plus one for SYN and one for FIN.
func (s *Segment) Len() int {
	n := len(s.Payload)
	if s.Flags.Has(FlagSYN) {
		n++
	}
	if s.Flags.Has(FlagFIN) {
		n++
	}
	return n
}

// MSS returns the value of the maximum-segment-size option, if present.
func (s *Segment) MSS() (uint16, bool) {
	for _, o := range s.Options {
		if o.Kind == OptMSS && len(o.Data) == 2 {
			return uint16(o.Data[0])<<8 | uint16(o.Data[1]), true
		}
	}
	return 0, false
}

// OrigDst returns the original-destination option value, if present.
func (s *Segment) OrigDst() (ipv4.Addr, bool) {
	for _, o := range s.Options {
		if o.Kind == OptOrigDst && len(o.Data) == 4 {
			return ipv4.GetAddr(o.Data), true
		}
	}
	return 0, false
}

// MSSOption builds a maximum-segment-size option.
func MSSOption(mss uint16) Option {
	return Option{Kind: OptMSS, Data: []byte{byte(mss >> 8), byte(mss)}}
}

// OrigDstOption builds an original-destination option.
func OrigDstOption(a ipv4.Addr) Option {
	d := make([]byte, 4)
	ipv4.PutAddr(d, a)
	return Option{Kind: OptOrigDst, Data: d}
}

// Errors returned by Unmarshal and the raw accessors.
var (
	ErrTruncated   = errors.New("tcp: truncated segment")
	ErrBadOffset   = errors.New("tcp: bad data offset")
	ErrBadChecksum = errors.New("tcp: bad checksum")
	ErrBadOption   = errors.New("tcp: malformed option")
)

func optionsWireLen(opts []Option) int {
	n := 0
	for _, o := range opts {
		if o.Kind == OptEnd || o.Kind == OptNOP {
			n++
		} else {
			n += 2 + len(o.Data)
		}
	}
	return (n + 3) &^ 3 // pad to 32-bit boundary
}

// Marshal renders the segment in wire format with the checksum computed
// over the pseudo-header for src/dst.
func Marshal(src, dst ipv4.Addr, s *Segment) []byte {
	optLen := optionsWireLen(s.Options)
	hdrLen := HeaderLen + optLen
	b := make([]byte, hdrLen+len(s.Payload))
	putU16(b[0:], s.SrcPort)
	putU16(b[2:], s.DstPort)
	putU32(b[4:], uint32(s.Seq))
	putU32(b[8:], uint32(s.Ack))
	b[12] = byte(hdrLen/4) << 4
	b[13] = byte(s.Flags)
	putU16(b[14:], s.Window)
	putU16(b[18:], s.Urgent)
	off := HeaderLen
	for _, o := range s.Options {
		if o.Kind == OptEnd || o.Kind == OptNOP {
			b[off] = o.Kind
			off++
			continue
		}
		b[off] = o.Kind
		b[off+1] = byte(2 + len(o.Data))
		copy(b[off+2:], o.Data)
		off += 2 + len(o.Data)
	}
	for off < hdrLen {
		b[off] = OptNOP
		off++
	}
	copy(b[hdrLen:], s.Payload)
	cs := ComputeChecksum(src, dst, b)
	putU16(b[16:], cs)
	return b
}

// MarshalReserve writes the segment's header and options into pkt and
// extends the buffer by payloadLen further bytes, returning that payload
// region for the caller to fill directly (s.Payload is ignored). The
// checksum field is left zero; call SealChecksum once the payload is
// written. This is the zero-copy path: the send buffer's bytes are peeked
// straight into the packet buffer, and every header byte is written
// explicitly because the store is pooled.
func MarshalReserve(pkt *netbuf.Buffer, s *Segment, payloadLen int) []byte {
	optLen := optionsWireLen(s.Options)
	hdrLen := HeaderLen + optLen
	b := pkt.Extend(hdrLen + payloadLen)
	putU16(b[0:], s.SrcPort)
	putU16(b[2:], s.DstPort)
	putU32(b[4:], uint32(s.Seq))
	putU32(b[8:], uint32(s.Ack))
	b[12] = byte(hdrLen/4) << 4
	b[13] = byte(s.Flags)
	putU16(b[14:], s.Window)
	putU16(b[16:], 0) // checksum: see SealChecksum
	putU16(b[18:], s.Urgent)
	off := HeaderLen
	for _, o := range s.Options {
		if o.Kind == OptEnd || o.Kind == OptNOP {
			b[off] = o.Kind
			off++
			continue
		}
		b[off] = o.Kind
		b[off+1] = byte(2 + len(o.Data))
		copy(b[off+2:], o.Data)
		off += 2 + len(o.Data)
	}
	for off < hdrLen {
		b[off] = OptNOP
		off++
	}
	return b[hdrLen:]
}

// SealChecksum computes and stores the checksum of a marshaled segment
// whose checksum field is currently zero.
func SealChecksum(src, dst ipv4.Addr, b []byte) {
	putU16(b[16:], ComputeChecksum(src, dst, b))
}

// Unmarshal parses a wire-format segment. If verify is true the checksum is
// validated against the pseudo-header. The returned payload aliases b.
func Unmarshal(src, dst ipv4.Addr, b []byte, verify bool) (*Segment, error) {
	s := new(Segment)
	if err := UnmarshalInto(src, dst, b, verify, s); err != nil {
		return nil, err
	}
	return s, nil
}

// UnmarshalInto parses a wire-format segment into s, overwriting every
// field; the caller may reuse one Segment across calls (the stack's input
// path does, keeping the per-segment receive cost off the heap). Option
// data is still copied, but only option-bearing segments — SYNs — pay for
// it. The payload aliases b.
func UnmarshalInto(src, dst ipv4.Addr, b []byte, verify bool, s *Segment) error {
	if len(b) < HeaderLen {
		return ErrTruncated
	}
	hdrLen := int(b[12]>>4) * 4
	if hdrLen < HeaderLen || hdrLen > len(b) {
		return ErrBadOffset
	}
	if verify && ComputeChecksum(src, dst, b) != 0 {
		return ErrBadChecksum
	}
	*s = Segment{
		SrcPort: getU16(b[0:]),
		DstPort: getU16(b[2:]),
		Seq:     Seq(getU32(b[4:])),
		Ack:     Seq(getU32(b[8:])),
		Flags:   Flags(b[13]),
		Window:  getU16(b[14:]),
		Urgent:  getU16(b[18:]),
		Payload: b[hdrLen:],
		Options: s.Options[:0],
	}
	opts := b[HeaderLen:hdrLen]
	for len(opts) > 0 {
		kind := opts[0]
		switch kind {
		case OptEnd:
			opts = nil
		case OptNOP:
			opts = opts[1:]
		default:
			if len(opts) < 2 {
				return ErrBadOption
			}
			l := int(opts[1])
			if l < 2 || l > len(opts) {
				return ErrBadOption
			}
			data := make([]byte, l-2)
			copy(data, opts[2:l])
			s.Options = append(s.Options, Option{Kind: kind, Data: data})
			opts = opts[l:]
		}
	}
	return nil
}

// ComputeChecksum computes the TCP checksum of a marshaled segment over the
// IPv4 pseudo-header. Computing it over a segment whose checksum field is
// already filled yields zero for a valid segment.
func ComputeChecksum(src, dst ipv4.Addr, b []byte) uint16 {
	var pseudo [12]byte
	ipv4.PutAddr(pseudo[0:4], src)
	ipv4.PutAddr(pseudo[4:8], dst)
	pseudo[9] = ipv4.ProtoTCP
	putU16(pseudo[10:], uint16(len(b)))
	return checksum.Sum(pseudo[:], b)
}

func putU16(b []byte, v uint16) { b[0] = byte(v >> 8); b[1] = byte(v) }
func putU32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}
func getU16(b []byte) uint16 { return uint16(b[0])<<8 | uint16(b[1]) }
func getU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
