package tcp

// Segment arrival processing (RFC 793 section 3.9, "SEGMENT ARRIVES").

import (
	"tcpfailover/internal/obs"
	"tcpfailover/internal/sim"
)

func (c *Conn) input(seg *Segment) {
	if sp := c.stack.spans; sp != nil && sp.TakeoverMarked() {
		// First segment reaching this endpoint after the secondary's
		// takeover: the moment redirected traffic starts flowing again.
		// Pre-takeover the hook costs one predictable branch.
		sp.Mark(c.tuple.SpanKey(), obs.SpanFirstAfterTakeover, c.stack.sched.Now())
	}
	switch c.state {
	case StateClosed:
		return
	case StateSynSent:
		c.inputSynSent(seg)
		return
	}

	acceptable := c.segAcceptable(seg)
	if seg.Flags.Has(FlagRST) {
		if c.stack.cfg.StrictSeqValidation {
			if !c.strictSeqOK(seg.Seq) {
				return // blind RST outside the window (RFC 5961 spirit)
			}
		} else if !acceptable {
			return // out-of-window RSTs are ignored (blind-reset protection)
		}
		switch c.state {
		case StateSynReceived:
			// Passive open returns to LISTEN: just drop the embryo.
			c.destroy(ErrConnRefused)
		case StateTimeWait, StateLastAck, StateClosing:
			c.destroy(nil)
		default:
			c.destroy(ErrConnReset)
		}
		return
	}

	if seg.Flags.Has(FlagSYN) && seg.Seq.Geq(c.rcvNxt) {
		if c.stack.cfg.StrictSeqValidation && !c.strictSeqOK(seg.Seq) {
			// A SYN anywhere in the upper half-space would reset the
			// connection under the legacy test; strict mode only honors a
			// SYN that actually lands in the window.
			return
		}
		// SYN in the window is an error; reset.
		rst := &Segment{Flags: FlagRST | FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt}
		c.emit(rst)
		c.destroy(ErrConnReset)
		return
	}

	if !seg.Flags.Has(FlagACK) {
		return
	}

	if c.state == StateSynReceived {
		if c.sndUna.Leq(seg.Ack) && seg.Ack.Leq(c.sndNxt) {
			c.state = StateEstablished
			c.setSndWnd(int(seg.Window))
			c.sndWl1 = seg.Seq
			c.sndWl2 = seg.Ack
			c.stopRexmt()
			if sp := c.stack.spans; sp != nil {
				sp.Mark(c.tuple.SpanKey(), obs.SpanEstablished, c.stack.sched.Now())
			}
			if c.listener != nil && c.listener.onAccept != nil {
				c.listener.onAccept(c)
			}
			if c.onEstablished != nil {
				c.onEstablished()
			}
		} else {
			c.stack.sendRST(c.tuple, seg)
			return
		}
	}

	// The acknowledgment and window fields are processed even for
	// sequence-unacceptable segments: after retransmission rollbacks or a
	// failover gap against a zero window, the peer's acknowledgments may
	// only ever arrive in such segments, and discarding them gridlocks the
	// connection (see segAcceptable).
	if !c.processAck(seg) {
		return
	}
	if !acceptable {
		if seg.Len() > 0 {
			// Answer data we cannot accept with a duplicate ACK so the
			// peer resynchronizes; pure ACKs are not answered (answering
			// them is how two desynchronized endpoints start an ACK war).
			c.sendAck()
		}
		if c.state != StateClosed {
			c.flushOutput()
		}
		return
	}
	c.processPayload(seg)
	c.processFin(seg)
	if c.state != StateClosed {
		c.flushOutput()
	}
}

func (c *Conn) inputSynSent(seg *Segment) {
	if seg.Flags.Has(FlagACK) {
		if seg.Ack.Leq(c.iss) || seg.Ack.Greater(c.sndNxt) {
			if !seg.Flags.Has(FlagRST) {
				c.stack.sendRST(c.tuple, seg)
			}
			return
		}
	}
	if seg.Flags.Has(FlagRST) {
		if seg.Flags.Has(FlagACK) {
			c.destroy(ErrConnRefused)
		}
		return
	}
	if !seg.Flags.Has(FlagSYN) {
		return
	}
	c.irs = seg.Seq
	c.rcvNxt = seg.Seq.Add(1)
	if mss, ok := seg.MSS(); ok {
		c.mss = min(c.mss, int(mss))
		if !c.stack.cfg.DisableCongestion {
			c.cwnd = c.stack.cfg.InitialCwndSegs * c.mss
		}
	}
	c.setSndWnd(int(seg.Window))
	c.sndWl1 = seg.Seq
	c.sndWl2 = seg.Ack
	if seg.Flags.Has(FlagACK) {
		c.sndUna = seg.Ack
		c.sampleRTT(seg.Ack)
	}
	if c.sndUna.Greater(c.iss) {
		c.state = StateEstablished
		if sp := c.stack.spans; sp != nil {
			sp.Mark(c.tuple.SpanKey(), obs.SpanEstablished, c.stack.sched.Now())
		}
		c.stopRexmt()
		c.sendAck()
		if c.onEstablished != nil {
			c.onEstablished()
		}
		c.processPayload(seg)
		c.processFin(seg)
		if c.state != StateClosed {
			c.flushOutput()
		}
		return
	}
	// Simultaneous open.
	c.state = StateSynReceived
	c.sendSYN(true)
}

// segAcceptable implements the window acceptability test the way BSD
// stacks do rather than RFC 793's literal four cases: any segment that
// begins at or before rcvNxt is acceptable — the duplicate prefix is
// trimmed away, but the ACK and window fields are processed. Zero-window
// probes, in-order data arriving at a full buffer, and old-sequence pure
// ACKs (which appear after retransmission rollbacks) all carry
// acknowledgments that must not be discarded; a strict-RFC receiver pair
// can otherwise ACK-war or gridlock forever. Segments beginning beyond
// rcvNxt are accepted only if they overlap the receive window.
// strictSeqOK is the tightened acceptability test StrictSeqValidation
// applies to RST and SYN segments: exactly rcvNxt (the common case for a
// legitimate peer, and the only acceptable value against a closed window)
// or inside the receive window.
func (c *Conn) strictSeqOK(seq Seq) bool {
	return seq == c.rcvNxt || seq.InWindow(c.rcvNxt, c.rcvBuf.Free())
}

func (c *Conn) segAcceptable(seg *Segment) bool {
	if seg.Seq.Leq(c.rcvNxt) {
		return true
	}
	wnd := c.rcvBuf.Free()
	return seg.Seq.InWindow(c.rcvNxt, wnd)
}

// processAck handles the acknowledgment field; it reports whether segment
// processing should continue.
func (c *Conn) processAck(seg *Segment) bool {
	ack := seg.Ack
	if ack.Greater(c.sndMaxSeq) {
		// Ack for data never sent.
		c.sendAck()
		return false
	}
	if ack.Greater(c.sndUna) {
		c.handleNewAck(ack)
	} else if ack == c.sndUna && seg.Len() == 0 && int(seg.Window) == c.sndWnd &&
		c.sndNxt != c.sndUna {
		c.handleDupAck()
	}

	// Window update (RFC 793 ordering rule).
	if c.sndWl1.Less(seg.Seq) || (c.sndWl1 == seg.Seq && c.sndWl2.Leq(ack)) {
		oldWnd := c.sndWnd
		c.setSndWnd(int(seg.Window))
		c.sndWl1 = seg.Seq
		c.sndWl2 = ack
		if c.sndWnd > 0 && c.persistTimer.Pending() {
			c.persistTimer.Stop()
			c.persistTimer = sim.Timer{}
		}
		if c.sndWnd > oldWnd {
			c.trySend()
		}
	}

	finAcked := c.finSent && ack.Greater(c.finSeq)
	switch c.state {
	case StateFinWait1:
		if finAcked {
			c.state = StateFinWait2
		}
	case StateClosing:
		if finAcked {
			c.enterTimeWait()
		}
	case StateLastAck:
		if finAcked {
			c.destroy(nil)
			return false
		}
	case StateTimeWait:
		// A retransmitted FIN: re-ack and restart 2 MSL.
		if seg.Flags.Has(FlagFIN) {
			c.sendAck()
			c.enterTimeWait()
		}
		return false
	}
	return true
}

func (c *Conn) handleNewAck(ack Seq) {
	acked := ack.Diff(c.sndUna)
	consume := ack.Diff(c.sndDataStart)
	if consume > c.sndBuf.Len() {
		consume = c.sndBuf.Len() // SYN/FIN consume sequence space, not buffer
	}
	if consume > 0 {
		c.sndBuf.Consume(consume)
		c.sndDataStart = c.sndDataStart.Add(consume)
	}
	c.sndUna = ack
	if c.sndNxt.Less(c.sndUna) {
		c.sndNxt = c.sndUna // an ack beyond a rolled-back sndNxt restores it
	}
	c.rtxCount = 0
	c.sampleRTT(ack)

	if !c.stack.cfg.DisableCongestion {
		if c.fastRecovery {
			c.cwnd = c.ssthresh
			c.fastRecovery = false
		} else if c.cwnd < c.ssthresh {
			c.cwnd += min(acked, c.mss)
		} else {
			c.cwnd += max(c.mss*c.mss/c.cwnd, 1)
		}
	}
	c.dupAcks = 0

	if c.sndUna == c.sndMaxSeq {
		c.stopRexmt()
	} else {
		c.armRexmt()
	}
	if c.onWritable != nil && c.sndBuf.Free() > 0 {
		c.onWritable()
	}
}

func (c *Conn) handleDupAck() {
	c.stack.stats.DupAcksIn++
	c.stack.m.dupAcks.Inc()
	if c.stack.cfg.DisableCongestion {
		return
	}
	c.dupAcks++
	switch {
	case c.dupAcks == 3:
		// Fast retransmit (Reno).
		c.stack.stats.FastRetransmits++
		c.stack.m.fastRetransmits.Inc()
		flight := c.sndNxt.Diff(c.sndUna)
		c.ssthresh = max(flight/2, 2*c.mss)
		c.retransmitOne()
		c.cwnd = c.ssthresh + 3*c.mss
		c.fastRecovery = true
	case c.dupAcks > 3:
		c.cwnd += c.mss
		c.trySend()
	}
}

// retransmitOne resends the segment at the left edge of the send window.
func (c *Conn) retransmitOne() {
	off := c.sndUna.Diff(c.sndDataStart)
	n := min(c.mss, c.sndBuf.Len()-off)
	seg := &Segment{
		Seq:    c.sndUna,
		Ack:    c.rcvNxt,
		Flags:  FlagACK,
		Window: c.advertisedWindow(),
	}
	if n > 0 {
		c.timing = false // Karn
		c.stack.stats.Retransmissions++
		c.stack.m.retransmissions.Inc()
		c.stack.spans.Retransmit(c.tuple.SpanKey())
		c.emitData(seg, off, n)
		return
	}
	if c.finSent && c.finSeq == c.sndUna {
		seg.Flags |= FlagFIN
		c.timing = false // Karn
		c.stack.stats.Retransmissions++
		c.stack.m.retransmissions.Inc()
		c.stack.spans.Retransmit(c.tuple.SpanKey())
		c.emit(seg)
	}
}

func (c *Conn) sampleRTT(ack Seq) {
	if c.timing && ack.Geq(c.timedSeq) {
		c.rto.sample(c.stack.sched.Now() - c.timedAt)
		c.timing = false
	}
}

// processPayload trims the segment text to the receive window and delivers
// in-order bytes to the receive buffer.
func (c *Conn) processPayload(seg *Segment) {
	if len(seg.Payload) == 0 {
		return
	}
	switch c.state {
	case StateEstablished, StateFinWait1, StateFinWait2:
	default:
		return // text after CLOSE is ignored
	}
	payload := seg.Payload
	start := seg.Seq
	if seg.Flags.Has(FlagSYN) {
		start = start.Add(1)
	}
	// Trim the already-received prefix.
	if start.Less(c.rcvNxt) {
		skip := c.rcvNxt.Diff(start)
		if skip >= len(payload) {
			c.ackNowFlag = true // pure duplicate: ack immediately
			return
		}
		payload = payload[skip:]
		start = c.rcvNxt
	}
	// Trim to the window.
	limit := c.rcvNxt.Add(c.rcvBuf.Free())
	if start.Add(len(payload)).Greater(limit) {
		keep := limit.Diff(start)
		if keep <= 0 {
			c.ackNowFlag = true
			return
		}
		payload = payload[:keep]
	}

	if start == c.rcvNxt {
		n := c.rcvBuf.Write(payload)
		c.rcvNxt = c.rcvNxt.Add(n)
		if more := c.reasm.pop(c.rcvNxt); len(more) > 0 {
			m := c.rcvBuf.Write(more)
			c.rcvNxt = c.rcvNxt.Add(m)
			if m < len(more) {
				c.reasm.insert(c.rcvNxt, more[m:])
			}
		}
		c.ackPendingSegs++
		if seg.Flags.Has(FlagPSH) {
			// A pushed segment ends a burst; holding its acknowledgment
			// for the delayed-ack timer would stall Nagle-bound senders.
			c.ackNowFlag = true
		}
		if len(payload) >= c.mss {
			// Full-sized segments count toward ack-every-N; small ones ride
			// the delayed-ack timer.
		} else {
			c.ackPendingSegs = max(c.ackPendingSegs, 1)
		}
		if !c.reasm.empty() {
			c.ackNowFlag = true
		}
		if sp := c.stack.spans; sp != nil {
			sp.Progress(c.tuple.SpanKey(), c.stack.sched.Now())
		}
		if c.onReadable != nil {
			c.onReadable()
		}
	} else {
		// Out of order: stash and send an immediate duplicate ACK.
		c.reasm.insert(start, payload)
		c.ackNowFlag = true
	}
}

// processFin handles the FIN bit once all preceding data is in.
func (c *Conn) processFin(seg *Segment) {
	if seg.Flags.Has(FlagFIN) {
		fs := seg.Seq.Add(len(seg.Payload))
		if seg.Flags.Has(FlagSYN) {
			fs = fs.Add(1)
		}
		if !c.remoteFinValid || fs.Less(c.remoteFinSeq) {
			c.remoteFinSeq = fs
			c.remoteFinValid = true
		}
	}
	if !c.remoteFinValid || c.peerFinRcvd || c.remoteFinSeq != c.rcvNxt {
		return
	}
	switch c.state {
	case StateEstablished, StateSynReceived:
		c.state = StateCloseWait
	case StateFinWait1:
		// Our FIN not yet acked (else we'd be in FIN-WAIT-2).
		c.state = StateClosing
	case StateFinWait2:
		defer c.enterTimeWait()
	default:
		return
	}
	c.rcvNxt = c.rcvNxt.Add(1)
	c.peerFinRcvd = true
	c.ackNowFlag = true
	if c.onReadable != nil {
		c.onReadable() // EOF is now observable
	}
}
