package tcp

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"tcpfailover/internal/flowtab"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/netbuf"
	"tcpfailover/internal/obs"
	"tcpfailover/internal/sim"
)

// State is a TCP connection state (RFC 793 section 3.2).
type State int

// Connection states.
const (
	StateClosed State = iota + 1
	StateListen
	StateSynSent
	StateSynReceived
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateClosing
	StateLastAck
	StateTimeWait
)

var stateNames = map[State]string{
	StateClosed:      "CLOSED",
	StateListen:      "LISTEN",
	StateSynSent:     "SYN-SENT",
	StateSynReceived: "SYN-RECEIVED",
	StateEstablished: "ESTABLISHED",
	StateFinWait1:    "FIN-WAIT-1",
	StateFinWait2:    "FIN-WAIT-2",
	StateCloseWait:   "CLOSE-WAIT",
	StateClosing:     "CLOSING",
	StateLastAck:     "LAST-ACK",
	StateTimeWait:    "TIME-WAIT",
}

// String returns the RFC 793 state name.
func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Errors surfaced through the socket API.
var (
	ErrConnReset      = errors.New("tcp: connection reset by peer")
	ErrConnRefused    = errors.New("tcp: connection refused")
	ErrTimeout        = errors.New("tcp: retransmission limit exceeded")
	ErrClosed         = errors.New("tcp: connection closed")
	ErrPortInUse      = errors.New("tcp: port already in use")
	ErrAborted        = errors.New("tcp: connection aborted")
	ErrNoRoute        = errors.New("tcp: no local address")
	ErrBufferTooSmall = errors.New("tcp: window too small for MSS")
)

// Config tunes a Stack. The zero value selects defaults matching the
// paper's testbed era: 1460-byte MSS, 64 KB buffers, 200 ms delayed-ack
// timer, Reno congestion control.
type Config struct {
	MSS               int           // default 1460
	SendBufSize       int           // default 65535 (the paper's 64 KB send buffer)
	RecvBufSize       int           // default 65535
	DelayedAckTimeout time.Duration // default 200 ms (BSD heritage)
	AckEveryN         int           // ack every Nth full segment; default 2
	InitialRTO        time.Duration // default 1 s
	MinRTO            time.Duration // default 200 ms
	MaxRTO            time.Duration // default 60 s
	MaxRetries        int           // default 12 retransmissions before abort
	TimeWaitDuration  time.Duration // default 60 s (2 MSL compressed)
	DisableNagle      bool
	DisableCongestion bool // fixed cwnd = send buffer (for controlled experiments)
	InitialCwndSegs   int  // default 2 segments
	// StrictSeqValidation tightens the acceptability test for connection-
	// killing segments, in the spirit of RFC 5961: a RST is honored only
	// when its sequence number is exactly rcvNxt or inside the receive
	// window, and a SYN resets an established connection only from inside
	// the window — instead of the historical half-space tests, under which
	// a blind off-path probe succeeds with probability ~1/2. Off by
	// default: the paper's stack predates blind-reset hardening, and the
	// adversary experiment (E11) measures the exposure both ways.
	StrictSeqValidation bool
	// ISS generates initial sequence numbers; default draws from the
	// scheduler RNG. The primary and secondary draw different values, which
	// is precisely what the bridge's Delta-seq machinery compensates for.
	ISS func(rng *rand.Rand) Seq
}

func (c Config) withDefaults() Config {
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.SendBufSize == 0 {
		c.SendBufSize = 65535
	}
	if c.RecvBufSize == 0 {
		c.RecvBufSize = 65535
	}
	if c.DelayedAckTimeout == 0 {
		c.DelayedAckTimeout = 200 * time.Millisecond
	}
	if c.AckEveryN == 0 {
		c.AckEveryN = 2
	}
	if c.InitialRTO == 0 {
		c.InitialRTO = time.Second
	}
	if c.MinRTO == 0 {
		c.MinRTO = 200 * time.Millisecond
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 60 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 12
	}
	if c.TimeWaitDuration == 0 {
		c.TimeWaitDuration = 60 * time.Second
	}
	if c.InitialCwndSegs == 0 {
		c.InitialCwndSegs = 2
	}
	if c.ISS == nil {
		c.ISS = func(rng *rand.Rand) Seq { return Seq(rng.Uint32()) }
	}
	return c
}

// Output transmits a marshaled TCP segment toward dst. The netstack
// installs this; on the replicated servers the bridge interposes here.
// Ownership of pkt transfers to the callee unconditionally — even on
// error — which must eventually Release it (or hand it on).
type Output func(src, dst ipv4.Addr, pkt *netbuf.Buffer) error

// Tuple identifies a connection by its four-tuple.
type Tuple struct {
	LocalAddr  ipv4.Addr
	LocalPort  uint16
	RemoteAddr ipv4.Addr
	RemotePort uint16
}

// String renders the tuple as "l:lp -> r:rp".
func (t Tuple) String() string {
	return fmt.Sprintf("%s:%d->%s:%d", t.LocalAddr, t.LocalPort, t.RemoteAddr, t.RemotePort)
}

// key packs the remote endpoint and local port into a uint64 map key. The
// packed key is what makes segment demultiplexing a single fast-path map
// probe at 10k connections: a 12-byte struct key forces the runtime through
// the generic hash/equal route, an 8-byte integer key takes the fast64 one.
// LocalAddr is deliberately left out — a stack nearly always owns one
// address, so conns that differ only there (possible around Rebind during
// IP takeover) share a key and are told apart by the collision chain.
func (t Tuple) key() uint64 {
	return uint64(t.RemoteAddr)<<32 | uint64(t.RemotePort)<<16 | uint64(t.LocalPort)
}

// SpanKey packs the tuple into the canonical span-recorder key: the
// client-side endpoint plus the service port. Evaluated on the client's
// tuple this is clientAddr<<32|clientPort<<16|servicePort — exactly what
// the secondary bridge computes from a diverted segment's addresses on its
// outbound path (core.MakeTupleKey(dst, dstPort, srcPort)), so both sides
// address the same span without any translation table.
func (t Tuple) SpanKey() uint64 {
	return uint64(t.LocalAddr)<<32 | uint64(t.LocalPort)<<16 | uint64(t.RemotePort)
}

// Stack is one host's TCP layer. It is event-driven: all methods must be
// called from the simulation loop.
type Stack struct {
	sched  *sim.Scheduler
	cfg    Config
	output Output
	rng    *rand.Rand

	// localAddr resolves the local address to use toward a destination;
	// provided by the netstack (consults the routing table).
	localAddr func(dst ipv4.Addr) (ipv4.Addr, bool)

	listeners map[uint16]*Listener
	// conns indexes connections by Tuple.key(), mapping each key to the
	// head of an index-linked chain of connSlot records in chains; conns
	// differing only in LocalAddr share a key and are told apart by the
	// chain. The table and slab together replace the old map[uint64]*Conn:
	// a million-connection demux is a handful of flat allocations, and the
	// only per-connection heap object left is the *Conn itself (which
	// application code retains long-term, so it cannot live in a slab whose
	// backing array moves on growth).
	conns    flowtab.Table
	chains   flowtab.Slab[connSlot]
	nconns   int
	nextPort uint16

	// inSeg is the scratch segment Input parses into; handlers never retain
	// the pointer, so reusing it keeps segment receive allocation-free.
	inSeg Segment

	stats Stats
	m     stackMetrics

	// spans, when non-nil, records per-connection lifecycle milestones
	// (SYN sent, established, payload progress, retransmits, zero-window
	// stalls) into the fleet span recorder. All SpanRecorder methods are
	// nil-receiver safe, so the hooks cost one predictable branch when
	// tracing is off.
	spans *obs.SpanRecorder
}

// Stats aggregates stack-wide counters.
type Stats struct {
	SegmentsIn      int64
	SegmentsOut     int64
	BadChecksums    int64
	RSTsSent        int64
	Retransmissions int64
	DupAcksIn       int64
	FastRetransmits int64
}

// NewStack creates a TCP layer.
func NewStack(sched *sim.Scheduler, cfg Config, output Output,
	localAddr func(dst ipv4.Addr) (ipv4.Addr, bool)) *Stack {
	return &Stack{
		sched:     sched,
		cfg:       cfg.withDefaults(),
		output:    output,
		rng:       sched.Rand(),
		localAddr: localAddr,
		listeners: make(map[uint16]*Listener),
		nextPort:  49152,
		m:         newStackMetrics(nil, ""),
	}
}

// Config returns the stack configuration (after defaulting).
func (s *Stack) Config() Config { return s.cfg }

// Stats returns a copy of the stack counters.
func (s *Stack) Stats() Stats { return s.stats }

// SetOutput replaces the transmit function (used when installing a bridge
// after stack construction).
func (s *Stack) SetOutput(o Output) { s.output = o }

// Listener accepts incoming connections on a port.
type Listener struct {
	stack    *Stack
	port     uint16
	onAccept func(*Conn)
	closed   bool
}

// Listen starts accepting connections on port. The accept callback is
// invoked when a connection reaches ESTABLISHED.
func (s *Stack) Listen(port uint16, onAccept func(*Conn)) (*Listener, error) {
	if _, ok := s.listeners[port]; ok {
		return nil, fmt.Errorf("%w: %d", ErrPortInUse, port)
	}
	l := &Listener{stack: s, port: port, onAccept: onAccept}
	s.listeners[port] = l
	return l, nil
}

// Close stops accepting new connections. Established connections survive.
func (l *Listener) Close() {
	if !l.closed {
		l.closed = true
		delete(l.stack.listeners, l.port)
	}
}

// Port returns the listening port.
func (l *Listener) Port() uint16 { return l.port }

// Dial opens a connection to raddr:rport. The connection is returned
// immediately in SYN-SENT; OnEstablished / OnClose callbacks report the
// outcome.
func (s *Stack) Dial(raddr ipv4.Addr, rport uint16) (*Conn, error) {
	laddr, ok := s.localAddr(raddr)
	if !ok {
		return nil, fmt.Errorf("%w: dial %s", ErrNoRoute, raddr)
	}
	var c *Conn
	for range 65536 {
		t := Tuple{LocalAddr: laddr, LocalPort: s.allocPort(), RemoteAddr: raddr, RemotePort: rport}
		if s.findConn(t) == nil {
			c = s.newConn(t)
			break
		}
	}
	if c == nil {
		// Every ephemeral port to this destination is taken. Failing loudly
		// beats the alternative — inserting a duplicate tuple whose segments
		// demultiplex to the older connection and wedge both handshakes.
		return nil, fmt.Errorf("%w: no free ephemeral port to %s:%d", ErrPortInUse, raddr, rport)
	}
	c.state = StateSynSent
	s.insertConn(c)
	if s.spans != nil {
		s.spans.Mark(c.tuple.SpanKey(), obs.SpanSynSent, s.sched.Now())
	}
	c.sendSYN(false)
	return c, nil
}

// DialFrom opens a connection with an explicit local port (used by
// applications like FTP that must originate from a well-known port).
func (s *Stack) DialFrom(lport uint16, raddr ipv4.Addr, rport uint16) (*Conn, error) {
	laddr, ok := s.localAddr(raddr)
	if !ok {
		return nil, fmt.Errorf("%w: dial %s", ErrNoRoute, raddr)
	}
	t := Tuple{LocalAddr: laddr, LocalPort: lport, RemoteAddr: raddr, RemotePort: rport}
	if s.findConn(t) != nil {
		return nil, fmt.Errorf("%w: %s", ErrPortInUse, t)
	}
	c := s.newConn(t)
	c.state = StateSynSent
	s.insertConn(c)
	if s.spans != nil {
		s.spans.Mark(c.tuple.SpanKey(), obs.SpanSynSent, s.sched.Now())
	}
	c.sendSYN(false)
	return c, nil
}

func (s *Stack) allocPort() uint16 {
	p := s.nextPort
	s.nextPort++
	if s.nextPort < 49152 {
		s.nextPort = 49152
	}
	return p
}

// connSlot is one link of a demux chain: the connection plus the index of
// the next slot sharing the same packed key (-1 = end of chain).
type connSlot struct {
	c    *Conn
	next int32
}

// findConn returns the connection for a tuple, or nil. The chain beyond the
// first hop is populated only by connections sharing a key, which requires
// two local addresses — in the steady state every probe resolves on the
// table hit itself.
func (s *Stack) findConn(t Tuple) *Conn {
	i, ok := s.conns.Get(t.key())
	if !ok {
		return nil
	}
	for n := int32(i); n >= 0; {
		slot := s.chains.At(uint32(n))
		if slot.c.tuple == t {
			return slot.c
		}
		n = slot.next
	}
	return nil
}

// insertConn indexes c under its tuple's key, prepending to the chain.
func (s *Stack) insertConn(c *Conn) {
	k := c.tuple.key()
	head := int32(-1)
	if i, ok := s.conns.Get(k); ok {
		head = int32(i)
	}
	idx := s.chains.Alloc()
	slot := s.chains.At(idx)
	slot.c = c
	slot.next = head
	s.conns.Put(k, idx)
	s.nconns++
}

// deleteConn unlinks c (by identity) from its chain. It reports whether c
// was indexed.
func (s *Stack) deleteConn(c *Conn) bool {
	k := c.tuple.key()
	i, ok := s.conns.Get(k)
	if !ok {
		return false
	}
	prev := int32(-1)
	for n := int32(i); n >= 0; {
		slot := s.chains.At(uint32(n))
		if slot.c != c {
			prev, n = n, slot.next
			continue
		}
		next := slot.next
		switch {
		case prev >= 0:
			s.chains.At(uint32(prev)).next = next
		case next >= 0:
			s.conns.Put(k, uint32(next))
		default:
			s.conns.Delete(k)
		}
		s.chains.Free(uint32(n))
		s.nconns--
		return true
	}
	return false
}

// Conns returns the current connections (copy), in slab slot order.
func (s *Stack) Conns() []*Conn {
	out := make([]*Conn, 0, s.nconns)
	s.chains.Range(func(_ uint32, slot *connSlot) { out = append(out, slot.c) })
	return out
}

// Lookup finds the connection for a tuple.
func (s *Stack) Lookup(t Tuple) (*Conn, bool) {
	c := s.findConn(t)
	return c, c != nil
}

// Rebind re-keys a connection to a new local address. The secondary bridge
// calls this during IP takeover, when the connections the secondary's TCP
// layer established under its own address must continue under the failed
// primary's address (paper section 5, step 5).
func (s *Stack) Rebind(t Tuple, newLocal ipv4.Addr) error {
	c := s.findConn(t)
	if c == nil {
		return fmt.Errorf("tcp: rebind: no connection %s", t)
	}
	nt := t
	nt.LocalAddr = newLocal
	if s.findConn(nt) != nil {
		return fmt.Errorf("%w: rebind target %s", ErrPortInUse, nt)
	}
	s.deleteConn(c)
	c.tuple = nt
	s.insertConn(c)
	return nil
}

// Input delivers a marshaled segment that IP (or the bridge) addressed to
// this stack. src and dst are the datagram addresses used for checksum
// verification and demultiplexing.
func (s *Stack) Input(src, dst ipv4.Addr, b []byte) {
	s.stats.SegmentsIn++
	s.m.segmentsIn.Inc()
	// Parse into the stack's scratch segment: input handlers read fields and
	// copy payload bytes but never retain the *Segment, so one struct serves
	// every arriving segment without allocating.
	seg := &s.inSeg
	if err := UnmarshalInto(src, dst, b, true, seg); err != nil {
		s.stats.BadChecksums++
		s.m.badChecksums.Inc()
		return
	}
	t := Tuple{LocalAddr: dst, LocalPort: seg.DstPort, RemoteAddr: src, RemotePort: seg.SrcPort}
	if c := s.findConn(t); c != nil {
		c.input(seg)
		return
	}
	if l, ok := s.listeners[seg.DstPort]; ok && !l.closed && seg.Flags.Has(FlagSYN) && !seg.Flags.Has(FlagACK) {
		s.accept(l, t, seg)
		return
	}
	// No matching endpoint: RST unless the arriving segment is itself a RST.
	if !seg.Flags.Has(FlagRST) {
		s.sendRST(t, seg)
	}
}

func (s *Stack) accept(l *Listener, t Tuple, syn *Segment) {
	c := s.newConn(t)
	c.state = StateSynReceived
	c.listener = l
	s.insertConn(c)
	c.irs = syn.Seq
	c.rcvNxt = syn.Seq.Add(1)
	c.setSndWnd(int(syn.Window))
	if mss, ok := syn.MSS(); ok {
		c.mss = min(c.mss, int(mss))
	}
	c.sendSYN(true)
}

// sendRST answers an unmatched segment per RFC 793.
func (s *Stack) sendRST(t Tuple, seg *Segment) {
	s.stats.RSTsSent++
	rst := &Segment{
		SrcPort: t.LocalPort,
		DstPort: t.RemotePort,
		Flags:   FlagRST,
	}
	if seg.Flags.Has(FlagACK) {
		rst.Seq = seg.Ack
	} else {
		rst.Flags |= FlagACK
		rst.Ack = seg.Seq.Add(seg.Len())
	}
	pkt := netbuf.Get()
	MarshalReserve(pkt, rst, 0)
	SealChecksum(t.LocalAddr, t.RemoteAddr, pkt.Bytes())
	s.stats.SegmentsOut++
	s.m.segmentsOut.Inc()
	_ = s.output(t.LocalAddr, t.RemoteAddr, pkt)
}

func (s *Stack) removeConn(c *Conn) {
	s.deleteConn(c)
}
