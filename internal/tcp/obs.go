package tcp

import (
	"fmt"

	"tcpfailover/internal/obs"
)

// stackMetrics are the stack's pre-resolved observability handles. The
// struct is always populated — with discard handles when no registry is
// attached — so the hot paths increment unconditionally: no nil checks,
// no map lookups, no allocation.
type stackMetrics struct {
	segmentsIn       obs.Counter
	segmentsOut      obs.Counter
	badChecksums     obs.Counter
	retransmissions  obs.Counter
	dupAcks          obs.Counter
	fastRetransmits  obs.Counter
	zeroWindowStalls obs.Counter
	ringGrows        obs.Counter
}

// series appends a host label to a metric name when the host is known.
func series(name, host string) string {
	if host == "" {
		return name
	}
	return fmt.Sprintf("%s{host=%q}", name, host)
}

func newStackMetrics(reg *obs.Registry, host string) stackMetrics {
	return stackMetrics{
		segmentsIn:       reg.Counter(series("tcp_segments_in_total", host)),
		segmentsOut:      reg.Counter(series("tcp_segments_out_total", host)),
		badChecksums:     reg.Counter(series("tcp_bad_checksums_total", host)),
		retransmissions:  reg.Counter(series("tcp_retransmissions_total", host)),
		dupAcks:          reg.Counter(series("tcp_dup_acks_total", host)),
		fastRetransmits:  reg.Counter(series("tcp_fast_retransmits_total", host)),
		zeroWindowStalls: reg.Counter(series("tcp_zero_window_stalls_total", host)),
		ringGrows:        reg.Counter(series("tcp_ring_grows_total", host)),
	}
}

// AttachObs resolves the stack's metric handles against reg, labeled with
// the host name. Call once at scenario build time; connections created
// before the call keep their ring-growth handles (rings resolve theirs at
// connection creation), everything else switches immediately.
func (s *Stack) AttachObs(reg *obs.Registry, host string) {
	s.m = newStackMetrics(reg, host)
}

// AttachSpans installs a per-connection lifecycle span recorder on the
// stack. Call at scenario build time, before traffic; pass nil to detach.
// The stack marks SYN-sent on dial, established/first-byte/progress from
// the input path, and attributes retransmissions and zero-window stalls to
// the owning flow's span.
func (s *Stack) AttachSpans(r *obs.SpanRecorder) {
	s.spans = r
}

// Spans returns the recorder installed by AttachSpans (nil when tracing is
// off).
func (s *Stack) Spans() *obs.SpanRecorder { return s.spans }
