package tcp

import (
	"testing"
	"time"

	"tcpfailover/internal/fault"
)

// Property tests for Config.StrictSeqValidation, the endpoint half of the
// blind-RST hardening (RFC 5961 §3.2 shape): 1000 seeded trials per
// configuration, drawing forged sequence numbers from the same stream, so
// the off/on pair isolates the defense. Off, a blind RST is accepted
// anywhere in the receive half-space (~1/2 of the sequence space); on, it
// must hit the exact rcvNxt or land inside the receive window.
func TestPropEndpointBlindRST(t *testing.T) {
	for _, tc := range []struct {
		name   string
		strict bool
	}{
		{"off-attack-succeeds", false},
		{"on-attack-defeated", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := fault.NewRand(0x5eed).Split("endpoint-rst")
			killed := 0
			for i := 0; i < propRSTTrials; i++ {
				p := newPair(t, Config{StrictSeqValidation: tc.strict})
				client, server := p.connect(t, 80)
				died := false
				server.OnClose(func(err error) {
					if err != nil {
						died = true
					}
				})
				// Forge a client->server RST with a random sequence number,
				// spoofing the established connection's exact 4-tuple.
				tup := client.Tuple()
				raw := Marshal(p.aAddr, p.bAddr, &Segment{
					SrcPort: tup.LocalPort,
					DstPort: tup.RemotePort,
					Seq:     Seq(rng.Uint64()),
					Ack:     Seq(rng.Uint64()),
					Flags:   FlagRST | FlagACK,
				})
				p.b.Input(p.aAddr, p.bAddr, raw)
				_ = p.sched.RunFor(50 * time.Millisecond)
				if died || server.State() == StateClosed {
					killed++
				}
			}
			if !tc.strict {
				// Binomial(1000, ~1/2): the half-space acceptance must show.
				if killed < 400 || killed > 600 {
					t.Errorf("lenient endpoint: %d/%d blind RSTs killed the connection, want ~500", killed, propRSTTrials)
				}
			} else if killed > 3 {
				t.Errorf("strict endpoint: %d/%d blind RSTs killed the connection", killed, propRSTTrials)
			}
		})
	}
}

// TestPropEndpointBlindSYN covers the companion rule: an in-flight forged
// SYN must not reset an established connection when strict validation is
// on (off, a SYN in the acceptable range tears the connection down).
func TestPropEndpointBlindSYN(t *testing.T) {
	for _, tc := range []struct {
		name   string
		strict bool
	}{
		{"off-attack-succeeds", false},
		{"on-attack-defeated", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := fault.NewRand(0x5eed).Split("endpoint-syn")
			killed := 0
			for i := 0; i < propRSTTrials; i++ {
				p := newPair(t, Config{StrictSeqValidation: tc.strict})
				client, server := p.connect(t, 80)
				died := false
				server.OnClose(func(err error) {
					if err != nil {
						died = true
					}
				})
				tup := client.Tuple()
				raw := Marshal(p.aAddr, p.bAddr, &Segment{
					SrcPort: tup.LocalPort,
					DstPort: tup.RemotePort,
					Seq:     Seq(rng.Uint64()),
					Flags:   FlagSYN,
					Window:  65535,
				})
				p.b.Input(p.aAddr, p.bAddr, raw)
				_ = p.sched.RunFor(50 * time.Millisecond)
				if died || server.State() == StateClosed {
					killed++
				}
			}
			if !tc.strict {
				if killed < 400 || killed > 600 {
					t.Errorf("lenient endpoint: %d/%d blind SYNs killed the connection, want ~500", killed, propRSTTrials)
				}
			} else if killed > 3 {
				t.Errorf("strict endpoint: %d/%d blind SYNs killed the connection", killed, propRSTTrials)
			}
		})
	}
}

const propRSTTrials = 1000
