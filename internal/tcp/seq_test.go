package tcp

import (
	"testing"
	"testing/quick"
)

func TestSeqComparisonsNearWraparound(t *testing.T) {
	const top = ^Seq(0) // 2^32 - 1
	tests := []struct {
		a, b Seq
		less bool
	}{
		{0, 1, true},
		{1, 0, false},
		{top, 0, true},            // wraparound: 2^32-1 < 0
		{top - 100, top, true},    //
		{0, top, false},           //
		{2_000_000_000, 1, false}, // within half the space
	}
	for _, tc := range tests {
		if got := tc.a.Less(tc.b); got != tc.less {
			t.Errorf("%d.Less(%d) = %v, want %v", tc.a, tc.b, got, tc.less)
		}
	}
}

func TestSeqAddDiffInverse(t *testing.T) {
	f := func(s uint32, n int16) bool {
		a := Seq(s)
		b := a.Add(int(n))
		return b.Diff(a) == int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSeqOrderingTrichotomy(t *testing.T) {
	f := func(x, y uint32) bool {
		a, b := Seq(x), Seq(y)
		if a == b {
			return a.Leq(b) && a.Geq(b) && !a.Less(b) && !a.Greater(b)
		}
		// Exactly one of Less/Greater (except at the ambiguous antipode).
		if a.Diff(b) == -2147483648 {
			return true
		}
		return a.Less(b) != a.Greater(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestInWindow(t *testing.T) {
	start := Seq(4294967000) // near wraparound
	if !start.InWindow(start, 10) {
		t.Error("start not in its own window")
	}
	if !start.Add(500).InWindow(start, 1000) {
		t.Error("wrapped sequence not in window")
	}
	if start.Add(1000).InWindow(start, 1000) {
		t.Error("window end should be exclusive")
	}
	if start.InWindow(start, 0) {
		t.Error("empty window contains nothing")
	}
}

func TestMinMaxSeq(t *testing.T) {
	a, b := Seq(^uint32(0)-5), Seq(3) // b is "after" a across the wrap
	if MinSeq(a, b) != a || MaxSeq(a, b) != b {
		t.Errorf("Min/Max across wraparound wrong: min=%d max=%d", MinSeq(a, b), MaxSeq(a, b))
	}
	if MinSeq(b, a) != a || MaxSeq(b, a) != b {
		t.Error("Min/Max not symmetric")
	}
}
