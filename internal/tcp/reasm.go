package tcp

// reassembly holds out-of-order segment payloads until the receive window's
// left edge catches up. Blocks are kept sorted and non-overlapping; inserts
// are trimmed against existing blocks, preferring already-held data (TCP
// receivers keep the first copy of a byte).
type reassembly struct {
	blocks []reasmBlock
}

type reasmBlock struct {
	seq  Seq
	data []byte
}

func (b reasmBlock) end() Seq { return b.seq.Add(len(b.data)) }

// insert stores payload at seq, copying the data.
func (ra *reassembly) insert(seq Seq, payload []byte) {
	if len(payload) == 0 {
		return
	}
	data := make([]byte, len(payload))
	copy(data, payload)
	nb := reasmBlock{seq: seq, data: data}

	// A fresh slice: splitting the new block around an existing one appends
	// two elements per element read, which would corrupt an aliased
	// in-place rebuild.
	out := make([]reasmBlock, 0, len(ra.blocks)+2)
	inserted := false
	for _, blk := range ra.blocks {
		switch {
		case nb.data == nil || blk.end().Leq(nb.seq):
			out = append(out, blk)
		case nb.end().Leq(blk.seq):
			if !inserted {
				out = append(out, nb)
				inserted = true
			}
			out = append(out, blk)
		default:
			// Overlap: trim the new block against the existing one.
			if nb.seq.Less(blk.seq) {
				left := reasmBlock{seq: nb.seq, data: nb.data[:blk.seq.Diff(nb.seq)]}
				out = append(out, left)
			}
			out = append(out, blk)
			if nb.end().Greater(blk.end()) {
				nb = reasmBlock{seq: blk.end(), data: nb.data[blk.end().Diff(nb.seq):]}
			} else {
				nb.data = nil
				inserted = true
			}
		}
	}
	if nb.data != nil && !inserted {
		out = append(out, nb)
	}
	ra.blocks = out
}

// pop removes and returns data contiguous with next, advancing through as
// many blocks as connect. It returns nil when the first block is not
// adjacent.
func (ra *reassembly) pop(next Seq) []byte {
	var out []byte
	for len(ra.blocks) > 0 {
		blk := ra.blocks[0]
		if blk.seq.Greater(next) {
			break
		}
		if blk.end().Leq(next) { // fully duplicate
			ra.blocks = ra.blocks[1:]
			continue
		}
		out = append(out, blk.data[next.Diff(blk.seq):]...)
		next = blk.end()
		ra.blocks = ra.blocks[1:]
	}
	return out
}

// discardBeyond drops any buffered bytes at or beyond limit (used when the
// receive window shrinks below previously accepted data; rare).
func (ra *reassembly) discardBeyond(limit Seq) {
	out := ra.blocks[:0]
	for _, blk := range ra.blocks {
		if blk.seq.Geq(limit) {
			continue
		}
		if blk.end().Greater(limit) {
			blk.data = blk.data[:limit.Diff(blk.seq)]
		}
		out = append(out, blk)
	}
	ra.blocks = out
}

// empty reports whether no out-of-order data is held.
func (ra *reassembly) empty() bool { return len(ra.blocks) == 0 }
