package tcp

import (
	"tcpfailover/internal/checksum"
	"tcpfailover/internal/ipv4"
)

// This file implements the raw-segment surgery the failover bridges
// perform. The bridges sit below the TCP layer and operate on marshaled
// segments; all mutators maintain the TCP checksum incrementally rather
// than recomputing it (paper section 3.1: "we subtract the original bytes
// from the checksum, and add the new bytes").

// Raw field readers. All assume a well-formed segment (len >= HeaderLen).

// RawSrcPort reads the source port of a marshaled segment.
func RawSrcPort(b []byte) uint16 { return getU16(b[0:]) }

// RawDstPort reads the destination port of a marshaled segment.
func RawDstPort(b []byte) uint16 { return getU16(b[2:]) }

// RawSeq reads the sequence number of a marshaled segment.
func RawSeq(b []byte) Seq { return Seq(getU32(b[4:])) }

// RawAck reads the acknowledgment number of a marshaled segment.
func RawAck(b []byte) Seq { return Seq(getU32(b[8:])) }

// RawFlags reads the control flags of a marshaled segment.
func RawFlags(b []byte) Flags { return Flags(b[13]) }

// RawWindow reads the advertised window of a marshaled segment.
func RawWindow(b []byte) uint16 { return getU16(b[14:]) }

// RawChecksum reads the checksum field of a marshaled segment.
func RawChecksum(b []byte) uint16 { return getU16(b[16:]) }

// RawHeaderLen returns the header length (including options) in bytes.
func RawHeaderLen(b []byte) int { return int(b[12]>>4) * 4 }

// RawPayload returns the payload of a marshaled segment (aliases b).
func RawPayload(b []byte) []byte { return b[RawHeaderLen(b):] }

// RawSegLen returns the sequence space the marshaled segment occupies.
func RawSegLen(b []byte) int {
	n := len(b) - RawHeaderLen(b)
	f := RawFlags(b)
	if f.Has(FlagSYN) {
		n++
	}
	if f.Has(FlagFIN) {
		n++
	}
	return n
}

func patchU16(b []byte, off int, v uint16) {
	old := getU16(b[off:])
	if old == v {
		return
	}
	putU16(b[off:], v)
	putU16(b[16:], checksum.Update(RawChecksum(b), old, v))
}

func patchU32(b []byte, off int, v uint32) {
	old := getU32(b[off:])
	if old == v {
		return
	}
	putU32(b[off:], v)
	putU16(b[16:], checksum.UpdateUint32(RawChecksum(b), old, v))
}

// SetRawSeq patches the sequence number, updating the checksum
// incrementally. The primary bridge uses it to subtract the sequence-number
// offset Delta-seq from segments produced by its own TCP layer.
func SetRawSeq(b []byte, v Seq) { patchU32(b, 4, uint32(v)) }

// SetRawAck patches the acknowledgment number incrementally.
func SetRawAck(b []byte, v Seq) { patchU32(b, 8, uint32(v)) }

// SetRawWindow patches the advertised window incrementally.
func SetRawWindow(b []byte, v uint16) { patchU16(b, 14, v) }

// SetRawDstPort patches the destination port incrementally.
func SetRawDstPort(b []byte, v uint16) { patchU16(b, 2, v) }

// SetRawSrcPort patches the source port incrementally.
func SetRawSrcPort(b []byte, v uint16) { patchU16(b, 0, v) }

// patchBytes overwrites b[off:off+len(newBytes)] and adjusts the checksum
// incrementally, handling arbitrary (odd) alignment by updating whole
// aligned 16-bit words.
func patchBytes(b []byte, off int, newBytes []byte) {
	start := off &^ 1
	end := (off + len(newBytes) + 1) &^ 1
	if end > len(b) {
		end = len(b)
	}
	old := append([]byte(nil), b[start:end]...)
	copy(b[off:], newBytes)
	putU16(b[16:], checksum.UpdateBytes(RawChecksum(b), old, b[start:end]))
}

// ClampRawMSS reduces the value of the MSS option in a marshaled SYN
// segment by reduce (to no less than 64 bytes), updating the checksum
// incrementally. The secondary bridge applies it to snooped SYNs so the
// segments its TCP layer later emits leave room for the 8-byte
// original-destination option the diversion adds — otherwise diverted
// full-MSS segments would exceed the link MTU. It reports whether an MSS
// option was found.
func ClampRawMSS(b []byte, reduce uint16) bool {
	hdrLen := RawHeaderLen(b)
	opts := b[HeaderLen:hdrLen]
	i := 0
	for i < len(opts) {
		switch opts[i] {
		case OptEnd:
			return false
		case OptNOP:
			i++
		default:
			if i+1 >= len(opts) {
				return false
			}
			l := int(opts[i+1])
			if l < 2 || i+l > len(opts) {
				return false
			}
			if opts[i] == OptMSS && l == 4 {
				off := HeaderLen + i + 2
				old := getU16(b[off:])
				v := old - reduce
				if old < reduce+64 {
					v = 64
				}
				if v != old {
					patchBytes(b, off, []byte{byte(v >> 8), byte(v)})
				}
				return true
			}
			i += l
		}
	}
	return false
}

// PatchPseudoAddr adjusts the checksum of a marshaled segment for a change
// of an address in the IPv4 pseudo-header (the address itself lives in the
// IP header, not in the segment). The secondary bridge uses this when it
// rewrites the destination address of incoming and outgoing datagrams.
func PatchPseudoAddr(b []byte, oldAddr, newAddr ipv4.Addr) {
	putU16(b[16:], checksum.UpdateUint32(RawChecksum(b), uint32(oldAddr), uint32(newAddr)))
}

// InsertOrigDstOption returns a copy of the marshaled segment with an
// original-destination option appended to the header, patching the data
// offset, and updating the checksum incrementally for the inserted bytes
// and the changed offset word. The secondary bridge applies this to every
// segment it diverts to the primary so the primary bridge can recover the
// client address (paper section 3.1).
func InsertOrigDstOption(b []byte, orig ipv4.Addr) ([]byte, error) {
	const optLen = 8 // kind, len, addr(4), plus 2 NOP pad
	hdrLen := RawHeaderLen(b)
	if hdrLen-HeaderLen+optLen > MaxOptionLen {
		return nil, ErrBadOption
	}
	out := make([]byte, len(b)+optLen)
	copy(out, b[:hdrLen])
	// Option: NOP NOP kind len addr — keep 4-byte alignment with leading pads.
	opt := out[hdrLen : hdrLen+optLen]
	opt[0] = OptNOP
	opt[1] = OptNOP
	opt[2] = OptOrigDst
	opt[3] = 6
	ipv4.PutAddr(opt[4:8], orig)
	copy(out[hdrLen+optLen:], b[hdrLen:])

	sum := RawChecksum(out)
	// Data offset grows by optLen/4 words; patch the offset/flags word.
	oldOffWord := getU16(out[12:])
	out[12] = byte((hdrLen+optLen)/4) << 4
	sum = checksum.Update(sum, oldOffWord, getU16(out[12:]))
	// The inserted option bytes join the checksummed data at an even offset.
	sum = checksum.UpdateBytes(sum, nil, opt)
	// The pseudo-header TCP-length field grows by optLen.
	sum = checksum.Update(sum, uint16(len(b)), uint16(len(out)))
	putU16(out[16:], sum)
	return out, nil
}

// StripOrigDstOption returns a copy of the marshaled segment with the
// original-destination option (and its alignment pads) removed, restoring
// the header the secondary's TCP layer produced. It reports the option
// value. The second return is false when no option is present.
func StripOrigDstOption(b []byte) ([]byte, ipv4.Addr, bool) {
	hdrLen := RawHeaderLen(b)
	opts := b[HeaderLen:hdrLen]
	// Find the NOP NOP kind len addr block written by InsertOrigDstOption.
	i := 0
	start, end := -1, -1
	var addr ipv4.Addr
	for i < len(opts) {
		switch opts[i] {
		case OptEnd:
			i = len(opts)
		case OptNOP:
			i++
		default:
			if i+1 >= len(opts) {
				return b, 0, false
			}
			l := int(opts[i+1])
			if l < 2 || i+l > len(opts) {
				return b, 0, false
			}
			if opts[i] == OptOrigDst && l == 6 {
				addr = ipv4.GetAddr(opts[i+2 : i+6])
				start, end = i, i+l
				// Include the two alignment NOPs preceding the option.
				for start > 0 && opts[start-1] == OptNOP && end-start < 8 {
					start--
				}
			}
			i += l
		}
	}
	if start < 0 {
		return b, 0, false
	}
	removed := end - start
	absStart := HeaderLen + start
	absEnd := HeaderLen + end
	out := make([]byte, len(b)-removed)
	copy(out, b[:absStart])
	copy(out[absStart:], b[absEnd:])

	sum := RawChecksum(out)
	oldOffWord := getU16(b[12:])
	out[12] = byte((hdrLen-removed)/4) << 4
	sum = checksum.Update(sum, oldOffWord, getU16(out[12:]))
	sum = checksum.UpdateBytes(sum, b[absStart:absEnd], nil)
	sum = checksum.Update(sum, uint16(len(b)), uint16(len(out)))
	putU16(out[16:], sum)
	return out, addr, true
}
