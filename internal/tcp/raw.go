package tcp

import (
	"bytes"

	"tcpfailover/internal/checksum"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/netbuf"
)

// This file implements the raw-segment surgery the failover bridges
// perform. The bridges sit below the TCP layer and operate on marshaled
// segments; all mutators maintain the TCP checksum incrementally rather
// than recomputing it (paper section 3.1: "we subtract the original bytes
// from the checksum, and add the new bytes").

// Raw field readers. All assume a well-formed segment (len >= HeaderLen).

// RawSrcPort reads the source port of a marshaled segment.
func RawSrcPort(b []byte) uint16 { return getU16(b[0:]) }

// RawDstPort reads the destination port of a marshaled segment.
func RawDstPort(b []byte) uint16 { return getU16(b[2:]) }

// RawSeq reads the sequence number of a marshaled segment.
func RawSeq(b []byte) Seq { return Seq(getU32(b[4:])) }

// RawAck reads the acknowledgment number of a marshaled segment.
func RawAck(b []byte) Seq { return Seq(getU32(b[8:])) }

// RawFlags reads the control flags of a marshaled segment.
func RawFlags(b []byte) Flags { return Flags(b[13]) }

// RawWindow reads the advertised window of a marshaled segment.
func RawWindow(b []byte) uint16 { return getU16(b[14:]) }

// RawChecksum reads the checksum field of a marshaled segment.
func RawChecksum(b []byte) uint16 { return getU16(b[16:]) }

// RawHeaderLen returns the header length (including options) in bytes.
func RawHeaderLen(b []byte) int { return int(b[12]>>4) * 4 }

// RawSane reports whether a marshaled segment's data offset is consistent
// with its length: at least HeaderLen and not beyond the segment. The
// bridges call it before any other Raw accessor on bytes taken off the
// wire — the raw readers index by the offset nibble, so an attacker-forged
// offset (below 5, or pointing past a truncated segment) would otherwise
// read out of bounds. UnmarshalInto performs the equivalent check for the
// endpoint stacks; the bridges sit below them and must not trust the frame
// either.
func RawSane(b []byte) bool {
	if len(b) < HeaderLen {
		return false
	}
	hl := RawHeaderLen(b)
	return hl >= HeaderLen && hl <= len(b)
}

// RawPayload returns the payload of a marshaled segment (aliases b).
func RawPayload(b []byte) []byte { return b[RawHeaderLen(b):] }

// RawSegLen returns the sequence space the marshaled segment occupies.
func RawSegLen(b []byte) int {
	n := len(b) - RawHeaderLen(b)
	f := RawFlags(b)
	if f.Has(FlagSYN) {
		n++
	}
	if f.Has(FlagFIN) {
		n++
	}
	return n
}

func patchU16(b []byte, off int, v uint16) {
	old := getU16(b[off:])
	if old == v {
		return
	}
	putU16(b[off:], v)
	putU16(b[16:], checksum.Update(RawChecksum(b), old, v))
}

func patchU32(b []byte, off int, v uint32) {
	old := getU32(b[off:])
	if old == v {
		return
	}
	putU32(b[off:], v)
	putU16(b[16:], checksum.UpdateUint32(RawChecksum(b), old, v))
}

// SetRawSeq patches the sequence number, updating the checksum
// incrementally. The primary bridge uses it to subtract the sequence-number
// offset Delta-seq from segments produced by its own TCP layer.
func SetRawSeq(b []byte, v Seq) { patchU32(b, 4, uint32(v)) }

// SetRawAck patches the acknowledgment number incrementally.
func SetRawAck(b []byte, v Seq) { patchU32(b, 8, uint32(v)) }

// SetRawWindow patches the advertised window incrementally.
func SetRawWindow(b []byte, v uint16) { patchU16(b, 14, v) }

// SetRawDstPort patches the destination port incrementally.
func SetRawDstPort(b []byte, v uint16) { patchU16(b, 2, v) }

// SetRawSrcPort patches the source port incrementally.
func SetRawSrcPort(b []byte, v uint16) { patchU16(b, 0, v) }

// patchBytes overwrites b[off:off+len(newBytes)] and adjusts the checksum
// incrementally, handling arbitrary (odd) alignment by updating whole
// aligned 16-bit words.
func patchBytes(b []byte, off int, newBytes []byte) {
	start := off &^ 1
	end := (off + len(newBytes) + 1) &^ 1
	if end > len(b) {
		end = len(b)
	}
	old := append([]byte(nil), b[start:end]...)
	copy(b[off:], newBytes)
	putU16(b[16:], checksum.UpdateBytes(RawChecksum(b), old, b[start:end]))
}

// ClampRawMSS reduces the value of the MSS option in a marshaled SYN
// segment by reduce (to no less than 64 bytes), updating the checksum
// incrementally. The secondary bridge applies it to snooped SYNs so the
// segments its TCP layer later emits leave room for the 8-byte
// original-destination option the diversion adds — otherwise diverted
// full-MSS segments would exceed the link MTU. It reports whether an MSS
// option was found.
func ClampRawMSS(b []byte, reduce uint16) bool {
	if !RawSane(b) {
		return false
	}
	hdrLen := RawHeaderLen(b)
	opts := b[HeaderLen:hdrLen]
	i := 0
	for i < len(opts) {
		switch opts[i] {
		case OptEnd:
			return false
		case OptNOP:
			i++
		default:
			if i+1 >= len(opts) {
				return false
			}
			l := int(opts[i+1])
			if l < 2 || i+l > len(opts) {
				return false
			}
			if opts[i] == OptMSS && l == 4 {
				off := HeaderLen + i + 2
				old := getU16(b[off:])
				v := old - reduce
				if old < reduce+64 {
					v = 64
				}
				if v != old {
					patchBytes(b, off, []byte{byte(v >> 8), byte(v)})
				}
				return true
			}
			i += l
		}
	}
	return false
}

// PatchPseudoAddr adjusts the checksum of a marshaled segment for a change
// of an address in the IPv4 pseudo-header (the address itself lives in the
// IP header, not in the segment). The secondary bridge uses this when it
// rewrites the destination address of incoming and outgoing datagrams.
func PatchPseudoAddr(b []byte, oldAddr, newAddr ipv4.Addr) {
	putU16(b[16:], checksum.UpdateUint32(RawChecksum(b), uint32(oldAddr), uint32(newAddr)))
}

// InsertOrigDstOption returns a copy of the marshaled segment with an
// original-destination option appended to the header, patching the data
// offset, and updating the checksum incrementally for the inserted bytes
// and the changed offset word. The secondary bridge applies this to every
// segment it diverts to the primary so the primary bridge can recover the
// client address (paper section 3.1).
func InsertOrigDstOption(b []byte, orig ipv4.Addr) ([]byte, error) {
	const optLen = 8 // kind, len, addr(4), plus 2 NOP pad
	hdrLen := RawHeaderLen(b)
	if hdrLen-HeaderLen+optLen > MaxOptionLen {
		return nil, ErrBadOption
	}
	out := make([]byte, len(b)+optLen)
	copy(out, b[:hdrLen])
	// Option: NOP NOP kind len addr — keep 4-byte alignment with leading pads.
	opt := out[hdrLen : hdrLen+optLen]
	opt[0] = OptNOP
	opt[1] = OptNOP
	opt[2] = OptOrigDst
	opt[3] = 6
	ipv4.PutAddr(opt[4:8], orig)
	copy(out[hdrLen+optLen:], b[hdrLen:])

	sum := RawChecksum(out)
	// Data offset grows by optLen/4 words; patch the offset/flags word.
	oldOffWord := getU16(out[12:])
	out[12] = byte((hdrLen+optLen)/4) << 4
	sum = checksum.Update(sum, oldOffWord, getU16(out[12:]))
	// The inserted option bytes join the checksummed data at an even offset.
	sum = checksum.UpdateBytes(sum, nil, opt)
	// The pseudo-header TCP-length field grows by optLen.
	sum = checksum.Update(sum, uint16(len(b)), uint16(len(out)))
	putU16(out[16:], sum)
	return out, nil
}

// AppendOrigDstOption builds the diverted form of a marshaled segment
// directly into a pooled packet buffer: header, then the 8-byte
// original-destination option block, then payload, with the data offset
// patched and the checksum updated incrementally. It is the zero-allocation
// equivalent of InsertOrigDstOption for the secondary's steady-state divert
// path; opt is the flow's precomputed option block (see OrigDstOptionBlock)
// whose byte sum the caller may also precompute.
func AppendOrigDstOption(pkt *netbuf.Buffer, b []byte, opt *[8]byte) ([]byte, error) {
	const optLen = 8
	hdrLen := RawHeaderLen(b)
	if hdrLen-HeaderLen+optLen > MaxOptionLen {
		return nil, ErrBadOption
	}
	out := pkt.Extend(len(b) + optLen)
	copy(out, b[:hdrLen])
	copy(out[hdrLen:], opt[:])
	copy(out[hdrLen+optLen:], b[hdrLen:])

	sum := RawChecksum(out)
	oldOffWord := getU16(out[12:])
	out[12] = byte((hdrLen+optLen)/4) << 4
	sum = checksum.Update(sum, oldOffWord, getU16(out[12:]))
	sum = checksum.UpdateBytes(sum, nil, opt[:])
	sum = checksum.Update(sum, uint16(len(b)), uint16(len(out)))
	putU16(out[16:], sum)
	return out, nil
}

// OrigDstOptionBlock fills opt with the NOP NOP kind len addr block that
// AppendOrigDstOption inserts, so a per-flow cache can precompute it once.
func OrigDstOptionBlock(opt *[8]byte, orig ipv4.Addr) {
	opt[0] = OptNOP
	opt[1] = OptNOP
	opt[2] = OptOrigDst
	opt[3] = 6
	ipv4.PutAddr(opt[4:8], orig)
}

// HasOrigDstOption reports whether the marshaled segment carries the
// original-destination option, without copying or modifying it. The
// primary's demultiplexer uses it to classify a datagram before the
// checksum verification that must precede the in-place strip.
func HasOrigDstOption(b []byte) bool {
	_, _, _, ok := findOrigDstOption(b)
	return ok
}

// StripOrigDstOption returns a copy of the marshaled segment with the
// original-destination option (and its alignment pads) removed, restoring
// the header the secondary's TCP layer produced. It reports the option
// value. The second return is false when no option is present.
func StripOrigDstOption(b []byte) ([]byte, ipv4.Addr, bool) {
	absStart, absEnd, addr, ok := findOrigDstOption(b)
	if !ok {
		return b, 0, false
	}
	hdrLen := RawHeaderLen(b)
	removed := absEnd - absStart
	out := make([]byte, len(b)-removed)
	copy(out, b[:absStart])
	copy(out[absStart:], b[absEnd:])

	sum := RawChecksum(out)
	oldOffWord := getU16(b[12:])
	out[12] = byte((hdrLen-removed)/4) << 4
	sum = checksum.Update(sum, oldOffWord, getU16(out[12:]))
	sum = checksum.UpdateBytes(sum, b[absStart:absEnd], nil)
	sum = checksum.Update(sum, uint16(len(b)), uint16(len(out)))
	putU16(out[16:], sum)
	return out, addr, true
}

// StripOrigDstOptionInPlace removes the original-destination option without
// copying the segment: the header bytes before the option shift forward
// over it and the stripped segment — a tail slice of b — is returned. The
// caller must own b (the primary's inbound hook does: each receiver gets a
// private copy of the frame). This is the zero-allocation strip for the
// divert-merge steady state.
func StripOrigDstOptionInPlace(b []byte) ([]byte, ipv4.Addr, bool) {
	absStart, absEnd, addr, ok := findOrigDstOption(b)
	if !ok {
		return b, 0, false
	}
	hdrLen := RawHeaderLen(b)
	removed := absEnd - absStart
	// Capture the removed bytes and old offset word before the shift
	// overwrites them (removed <= 8, see findOrigDstOption).
	var gone [8]byte
	copy(gone[:], b[absStart:absEnd])
	oldOffWord := getU16(b[12:])

	copy(b[removed:absEnd], b[:absStart])
	out := b[removed:]

	sum := RawChecksum(out)
	out[12] = byte((hdrLen-removed)/4) << 4
	sum = checksum.Update(sum, oldOffWord, getU16(out[12:]))
	sum = checksum.UpdateBytes(sum, gone[:removed], nil)
	sum = checksum.Update(sum, uint16(len(b)), uint16(len(out)))
	putU16(out[16:], sum)
	return out, addr, true
}

// findOrigDstOption locates the NOP NOP kind len addr block written by
// InsertOrigDstOption, returning the absolute [start, end) byte range
// (including alignment pads, at most 8 bytes) and the option value.
func findOrigDstOption(b []byte) (absStart, absEnd int, addr ipv4.Addr, ok bool) {
	if !RawSane(b) {
		return 0, 0, 0, false
	}
	hdrLen := RawHeaderLen(b)
	opts := b[HeaderLen:hdrLen]
	i := 0
	start, end := -1, -1
	for i < len(opts) {
		switch opts[i] {
		case OptEnd:
			i = len(opts)
		case OptNOP:
			i++
		default:
			if i+1 >= len(opts) {
				return 0, 0, 0, false
			}
			l := int(opts[i+1])
			if l < 2 || i+l > len(opts) {
				return 0, 0, 0, false
			}
			if opts[i] == OptOrigDst && l == 6 {
				addr = ipv4.GetAddr(opts[i+2 : i+6])
				start, end = i, i+l
				// Include the two alignment NOPs preceding the option.
				for start > 0 && opts[start-1] == OptNOP && end-start < 8 {
					start--
				}
			}
			i += l
		}
	}
	if start < 0 {
		return 0, 0, 0, false
	}
	return HeaderLen + start, HeaderLen + end, addr, true
}

// CanCoalesceRaw reports whether marshaled segment next can be GRO-merged
// onto tail: both are pure in-order data segments (only ACK/PSH flags) with
// identical ports and option bytes, and next continues tail's sequence run
// exactly. Bare acks are not merged — they carry no payload and their
// timing matters to the sender's RTT estimator.
func CanCoalesceRaw(tail, next []byte) bool {
	if len(tail) < HeaderLen || len(next) < HeaderLen {
		return false
	}
	hl := RawHeaderLen(tail)
	if hl < HeaderLen || hl > len(tail) || hl != RawHeaderLen(next) || hl > len(next) {
		return false
	}
	if len(next) == hl {
		return false
	}
	if RawSrcPort(tail) != RawSrcPort(next) || RawDstPort(tail) != RawDstPort(next) {
		return false
	}
	const mergeable = FlagACK | FlagPSH
	if RawFlags(tail)&^mergeable != 0 || RawFlags(next)&^mergeable != 0 {
		return false
	}
	if hl > HeaderLen && !bytes.Equal(tail[HeaderLen:hl], next[HeaderLen:hl]) {
		return false
	}
	return RawSeq(tail).Add(len(tail)-hl) == RawSeq(next)
}

// FinishCoalesceRaw fixes up a GRO-merged segment after next's payload
// bytes have been appended to tail (which now includes them): the merged
// segment carries the later segment's acknowledgment, window, and PSH bit,
// and the checksum is recomputed for the new length.
func FinishCoalesceRaw(src, dst ipv4.Addr, tail, next []byte) {
	putU32(tail[8:], uint32(RawAck(next)))
	putU16(tail[14:], RawWindow(next))
	tail[13] |= byte(RawFlags(next) & FlagPSH)
	putU16(tail[16:], 0)
	putU16(tail[16:], ComputeChecksum(src, dst, tail))
}
