package tcp

import "time"

// rttEstimator implements the Jacobson/Karels smoothed RTT estimate and the
// retransmission timeout derived from it (RFC 6298 constants).
type rttEstimator struct {
	srtt   time.Duration
	rttvar time.Duration
	rto    time.Duration
	seeded bool

	minRTO time.Duration
	maxRTO time.Duration
}

func newRTTEstimator(initial, minRTO, maxRTO time.Duration) *rttEstimator {
	return &rttEstimator{rto: initial, minRTO: minRTO, maxRTO: maxRTO}
}

// sample folds a new round-trip measurement into the estimate.
func (r *rttEstimator) sample(m time.Duration) {
	if m <= 0 {
		m = time.Microsecond
	}
	if !r.seeded {
		r.srtt = m
		r.rttvar = m / 2
		r.seeded = true
	} else {
		d := r.srtt - m
		if d < 0 {
			d = -d
		}
		r.rttvar = (3*r.rttvar + d) / 4
		r.srtt = (7*r.srtt + m) / 8
	}
	r.rto = r.srtt + max(4*r.rttvar, time.Millisecond)
	r.clamp()
}

// backoff doubles the RTO after a retransmission timeout (Karn).
func (r *rttEstimator) backoff() {
	r.rto *= 2
	r.clamp()
}

func (r *rttEstimator) clamp() {
	if r.rto < r.minRTO {
		r.rto = r.minRTO
	}
	if r.rto > r.maxRTO {
		r.rto = r.maxRTO
	}
}

// RTO returns the current retransmission timeout.
func (r *rttEstimator) RTO() time.Duration { return r.rto }

// SRTT returns the smoothed round-trip estimate (zero before any sample).
func (r *rttEstimator) SRTT() time.Duration { return r.srtt }
