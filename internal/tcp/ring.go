package tcp

import "tcpfailover/internal/obs"

// ring is a byte ring buffer with a fixed logical capacity and a lazily
// grown physical buffer. The send buffer keeps unacknowledged and unsent
// bytes (consumed as acknowledgments arrive); the receive buffer keeps
// in-order bytes awaiting the application. Window arithmetic everywhere
// uses the logical capacity (Cap/Free), so growth is invisible to the
// protocol: a connection that only ever buffers a few bytes — one side of
// most request/reply conversations — never pays for its configured
// capacity. At 10 000 connections across three stacks that is the
// difference between rings dominating the working set and rings being a
// rounding error.
type ring struct {
	buf   []byte // physical storage, len(buf) <= capacity
	cap   int    // logical capacity: the window the peer may fill
	start int
	size  int
	grows obs.Counter // counts grow() calls; resolved at ring creation
}

// ringMinAlloc is the smallest physical buffer; below this, doubling churn
// outweighs the memory saved.
const ringMinAlloc = 64

func newRing(capacity int, grows obs.Counter) *ring {
	return &ring{cap: capacity, grows: grows}
}

// Len returns the number of buffered bytes.
func (r *ring) Len() int { return r.size }

// Free returns the remaining logical capacity.
func (r *ring) Free() int { return r.cap - r.size }

// Cap returns the logical capacity.
func (r *ring) Cap() int { return r.cap }

// grow ensures the physical buffer holds need bytes, unrolling the current
// contents to offset 0. Doubling amortizes the copies; the logical capacity
// bounds the growth, so a ring never allocates more than it advertises.
func (r *ring) grow(need int) {
	r.grows.Inc()
	c := len(r.buf)
	if c == 0 {
		c = ringMinAlloc
	}
	for c < need {
		c *= 2
	}
	c = min(c, r.cap)
	nb := make([]byte, c)
	if r.size > 0 {
		first := copy(nb, r.buf[r.start:min(r.start+r.size, len(r.buf))])
		if first < r.size {
			copy(nb[first:], r.buf[:r.size-first])
		}
	}
	r.buf = nb
	r.start = 0
}

// Write appends up to len(p) bytes, returning how many were accepted.
func (r *ring) Write(p []byte) int {
	n := min(len(p), r.Free())
	if n == 0 {
		return 0
	}
	if r.size+n > len(r.buf) {
		r.grow(r.size + n)
	}
	end := (r.start + r.size) % len(r.buf)
	first := copy(r.buf[end:], p[:n])
	if first < n {
		copy(r.buf, p[first:n])
	}
	r.size += n
	return n
}

// Peek copies up to len(p) bytes starting at logical offset off without
// consuming them, returning the number copied.
func (r *ring) Peek(off int, p []byte) int {
	if off >= r.size {
		return 0
	}
	n := min(len(p), r.size-off)
	pos := (r.start + off) % len(r.buf)
	first := copy(p[:n], r.buf[pos:])
	if first < n {
		copy(p[first:n], r.buf)
	}
	return n
}

// Consume discards n bytes from the front. n must not exceed Len.
func (r *ring) Consume(n int) {
	if n > r.size {
		n = r.size
	}
	if n == 0 {
		return
	}
	r.start = (r.start + n) % len(r.buf)
	r.size -= n
	if r.size == 0 {
		r.start = 0
	}
}

// Read copies and consumes up to len(p) bytes.
func (r *ring) Read(p []byte) int {
	n := r.Peek(0, p)
	r.Consume(n)
	return n
}
