package tcp

// ring is a fixed-capacity byte ring buffer. The send buffer keeps
// unacknowledged and unsent bytes (consumed as acknowledgments arrive); the
// receive buffer keeps in-order bytes awaiting the application.
type ring struct {
	buf   []byte
	start int
	size  int
}

func newRing(capacity int) *ring { return &ring{buf: make([]byte, capacity)} }

// Len returns the number of buffered bytes.
func (r *ring) Len() int { return r.size }

// Free returns the remaining capacity.
func (r *ring) Free() int { return len(r.buf) - r.size }

// Cap returns the total capacity.
func (r *ring) Cap() int { return len(r.buf) }

// Write appends up to len(p) bytes, returning how many were accepted.
func (r *ring) Write(p []byte) int {
	n := min(len(p), r.Free())
	end := (r.start + r.size) % len(r.buf)
	first := copy(r.buf[end:], p[:n])
	if first < n {
		copy(r.buf, p[first:n])
	}
	r.size += n
	return n
}

// Peek copies up to len(p) bytes starting at logical offset off without
// consuming them, returning the number copied.
func (r *ring) Peek(off int, p []byte) int {
	if off >= r.size {
		return 0
	}
	n := min(len(p), r.size-off)
	pos := (r.start + off) % len(r.buf)
	first := copy(p[:n], r.buf[pos:])
	if first < n {
		copy(p[first:n], r.buf)
	}
	return n
}

// Consume discards n bytes from the front. n must not exceed Len.
func (r *ring) Consume(n int) {
	if n > r.size {
		n = r.size
	}
	r.start = (r.start + n) % len(r.buf)
	r.size -= n
	if r.size == 0 {
		r.start = 0
	}
}

// Read copies and consumes up to len(p) bytes.
func (r *ring) Read(p []byte) int {
	n := r.Peek(0, p)
	r.Consume(n)
	return n
}
