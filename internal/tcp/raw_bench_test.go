package tcp

import (
	"math/rand"
	"testing"

	"tcpfailover/internal/ipv4"
)

// The paper's section 3.1 justifies incremental checksum maintenance:
// "it is not necessary to recompute the checksum from scratch". These
// benchmarks quantify that design choice on the operations the bridges
// perform per segment.

func benchSegment(payload int) []byte {
	rng := rand.New(rand.NewSource(1))
	s := &Segment{
		SrcPort: 80,
		DstPort: 49152,
		Seq:     Seq(rng.Uint32()),
		Ack:     Seq(rng.Uint32()),
		Flags:   FlagACK | FlagPSH,
		Window:  65535,
		Payload: make([]byte, payload),
	}
	rng.Read(s.Payload)
	return Marshal(srcA, dstA, s)
}

// BenchmarkIncrementalVsFullChecksum/incremental is the bridge's per-patch
// cost; /full is what a naive implementation would pay per 1452-byte
// segment.
func BenchmarkIncrementalVsFullChecksum(b *testing.B) {
	raw := benchSegment(1452)
	b.Run("incremental", func(b *testing.B) {
		v := Seq(0)
		for b.Loop() {
			SetRawAck(raw, v)
			v++
		}
	})
	b.Run("full", func(b *testing.B) {
		for b.Loop() {
			putU16(raw[16:], 0)
			cs := ComputeChecksum(srcA, dstA, raw)
			putU16(raw[16:], cs)
		}
	})
}

func BenchmarkPatchPseudoAddr(b *testing.B) {
	raw := benchSegment(1452)
	other := ipv4.MustParseAddr("10.0.1.2")
	from, to := dstA, other
	for b.Loop() {
		PatchPseudoAddr(raw, from, to)
		from, to = to, from
	}
}

func BenchmarkInsertStripOrigDst(b *testing.B) {
	raw := benchSegment(1024)
	for b.Loop() {
		diverted, err := InsertOrigDstOption(raw, srcA)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, ok := StripOrigDstOption(diverted); !ok {
			b.Fatal("strip failed")
		}
	}
	b.SetBytes(int64(len(raw)))
}

func BenchmarkMarshalUnmarshal(b *testing.B) {
	seg := &Segment{
		SrcPort: 80, DstPort: 49152, Seq: 1, Ack: 2,
		Flags: FlagACK, Window: 65535, Payload: make([]byte, 1452),
	}
	b.Run("marshal", func(b *testing.B) {
		for b.Loop() {
			_ = Marshal(srcA, dstA, seg)
		}
		b.SetBytes(1452)
	})
	raw := Marshal(srcA, dstA, seg)
	b.Run("unmarshal-verify", func(b *testing.B) {
		for b.Loop() {
			if _, err := Unmarshal(srcA, dstA, raw, true); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(1452)
	})
}
