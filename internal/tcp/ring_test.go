package tcp

import (
	"bytes"
	"math/rand"
	"testing"

	"tcpfailover/internal/obs"
)

// discard is a detached counter for ring construction in tests.
func discard() obs.Counter { return (*obs.Registry)(nil).Counter("test") }

func TestRingBasicOps(t *testing.T) {
	r := newRing(8, discard())
	if r.Cap() != 8 || r.Len() != 0 || r.Free() != 8 {
		t.Fatalf("fresh ring: cap=%d len=%d free=%d", r.Cap(), r.Len(), r.Free())
	}
	if n := r.Write([]byte("abcde")); n != 5 {
		t.Fatalf("Write = %d, want 5", n)
	}
	if n := r.Write([]byte("fghij")); n != 3 {
		t.Fatalf("overflow Write = %d, want 3 (capacity)", n)
	}
	got := make([]byte, 4)
	if n := r.Read(got); n != 4 || string(got) != "abcd" {
		t.Fatalf("Read = %d %q", n, got[:n])
	}
	// Wraparound write.
	if n := r.Write([]byte("wxyz")); n != 4 {
		t.Fatalf("wrap Write = %d, want 4", n)
	}
	rest := make([]byte, 16)
	n := r.Read(rest)
	if string(rest[:n]) != "efghwxyz" {
		t.Fatalf("drained %q, want efghwxyz", rest[:n])
	}
}

func TestRingPeekDoesNotConsume(t *testing.T) {
	r := newRing(16, discard())
	r.Write([]byte("hello world"))
	p := make([]byte, 5)
	if n := r.Peek(6, p); n != 5 || string(p) != "world" {
		t.Fatalf("Peek(6) = %d %q", n, p[:n])
	}
	if r.Len() != 11 {
		t.Errorf("Peek consumed data: len=%d", r.Len())
	}
	if n := r.Peek(11, p); n != 0 {
		t.Errorf("Peek past end = %d, want 0", n)
	}
	r.Consume(6)
	if n := r.Peek(0, p); n != 5 || string(p) != "world" {
		t.Fatalf("after Consume, Peek(0) = %q", p[:n])
	}
}

// TestRingAgainstReference drives random operations against a simple slice
// model.
func TestRingAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := newRing(64, discard())
	var ref []byte
	for i := range 5000 {
		switch rng.Intn(3) {
		case 0: // write
			p := make([]byte, rng.Intn(40))
			rng.Read(p)
			n := r.Write(p)
			wantN := min(len(p), 64-len(ref))
			if n != wantN {
				t.Fatalf("op %d: Write accepted %d, want %d", i, n, wantN)
			}
			ref = append(ref, p[:n]...)
		case 1: // read
			p := make([]byte, rng.Intn(40))
			n := r.Read(p)
			wantN := min(len(p), len(ref))
			if n != wantN || !bytes.Equal(p[:n], ref[:wantN]) {
				t.Fatalf("op %d: Read got %q want %q", i, p[:n], ref[:wantN])
			}
			ref = ref[wantN:]
		case 2: // peek at random offset
			if len(ref) == 0 {
				continue
			}
			off := rng.Intn(len(ref))
			p := make([]byte, rng.Intn(20)+1)
			n := r.Peek(off, p)
			wantN := min(len(p), len(ref)-off)
			if n != wantN || !bytes.Equal(p[:n], ref[off:off+wantN]) {
				t.Fatalf("op %d: Peek(%d) got %q want %q", i, off, p[:n], ref[off:off+wantN])
			}
		}
		if r.Len() != len(ref) {
			t.Fatalf("op %d: len %d != ref %d", i, r.Len(), len(ref))
		}
	}
}

func TestRingConsumeClamps(t *testing.T) {
	r := newRing(8, discard())
	r.Write([]byte("ab"))
	r.Consume(100) // must not panic or corrupt
	if r.Len() != 0 || r.Free() != 8 {
		t.Errorf("after over-consume: len=%d free=%d", r.Len(), r.Free())
	}
}
