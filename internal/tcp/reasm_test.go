package tcp

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestReassemblyInOrderPop(t *testing.T) {
	var ra reassembly
	ra.insert(100, []byte("abc"))
	ra.insert(103, []byte("def"))
	got := ra.pop(100)
	if string(got) != "abcdef" {
		t.Fatalf("pop = %q", got)
	}
	if !ra.empty() {
		t.Error("not empty after full pop")
	}
}

func TestReassemblyGapBlocksPop(t *testing.T) {
	var ra reassembly
	ra.insert(105, []byte("later"))
	if got := ra.pop(100); got != nil {
		t.Fatalf("pop across gap returned %q", got)
	}
	ra.insert(100, []byte("early"))
	if got := ra.pop(100); string(got) != "earlylater" {
		t.Fatalf("pop = %q", got)
	}
}

func TestReassemblyOverlapPrefersExisting(t *testing.T) {
	var ra reassembly
	ra.insert(100, []byte("AAAA"))
	ra.insert(98, []byte("bbbbbb")) // overlaps [100,104): keep existing AAAA
	got := ra.pop(98)
	if string(got) != "bbAAAA" {
		t.Fatalf("pop = %q, want bbAAAA", got)
	}
}

func TestReassemblyDuplicateIgnored(t *testing.T) {
	var ra reassembly
	ra.insert(100, []byte("data"))
	ra.insert(100, []byte("DATA"))
	if got := ra.pop(100); string(got) != "data" {
		t.Fatalf("pop = %q", got)
	}
}

func TestReassemblyPopSkipsStaleBlocks(t *testing.T) {
	var ra reassembly
	ra.insert(90, []byte("old"))
	ra.insert(100, []byte("new"))
	if got := ra.pop(100); string(got) != "new" {
		t.Fatalf("pop = %q", got)
	}
}

func TestReassemblyDiscardBeyond(t *testing.T) {
	var ra reassembly
	ra.insert(100, []byte("abcdef"))
	ra.discardBeyond(103)
	if got := ra.pop(100); string(got) != "abc" {
		t.Fatalf("pop = %q after discard", got)
	}
}

// TestReassemblyRandomizedEquivalence: inserting random overlapping chunks
// of a known stream in random order always reconstructs the stream.
func TestReassemblyRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := range 200 {
		stream := make([]byte, 500+rng.Intn(500))
		for i := range stream {
			stream[i] = byte(rng.Intn(256))
		}
		base := Seq(rng.Uint32())
		var ra reassembly
		// Random overlapping cover of the stream.
		for range 200 {
			start := rng.Intn(len(stream))
			end := min(start+1+rng.Intn(80), len(stream))
			ra.insert(base.Add(start), stream[start:end])
		}
		// Guarantee full coverage.
		for off := 0; off < len(stream); off += 64 {
			end := min(off+64, len(stream))
			ra.insert(base.Add(off), stream[off:end])
		}
		got := ra.pop(base)
		if !bytes.Equal(got, stream) {
			t.Fatalf("trial %d: reconstructed %d bytes, want %d (equal=%v)",
				trial, len(got), len(stream), bytes.Equal(got, stream))
		}
	}
}
