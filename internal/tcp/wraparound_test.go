package tcp

import (
	"bytes"
	"io"
	"math/rand"

	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/netbuf"
	"testing"
	"time"
)

// Connections whose sequence numbers cross the 2^32 boundary mid-stream —
// the classic source of modular-arithmetic bugs in every layer that touches
// sequence numbers.

func issNear(v uint32) func(rng *rand.Rand) Seq {
	return func(*rand.Rand) Seq { return Seq(v) }
}

func transferAcross(t *testing.T, cfg Config, total int) {
	t.Helper()
	p := newPair(t, cfg)
	c, s := p.connect(t, 80)

	var got []byte
	buf := make([]byte, 65536)
	s.OnReadable(func() {
		for {
			n, err := s.Read(buf)
			if n > 0 {
				got = append(got, buf[:n]...)
				continue
			}
			if err == io.EOF {
				s.Close()
			}
			return
		}
	})
	want := make([]byte, total)
	for i := range want {
		want[i] = byte(i * 7)
	}
	sent := 0
	pump := func() {
		for sent < total {
			n, _ := c.Write(want[sent:])
			if n == 0 {
				return
			}
			sent += n
		}
		c.Close()
	}
	c.OnWritable(pump)
	pump()
	p.runUntil(t, func() bool { return len(got) == total && s.State() != StateEstablished },
		30*time.Second)
	if !bytes.Equal(got, want) {
		t.Fatalf("stream damaged across wraparound (%d bytes)", len(got))
	}
}

func TestSequenceWraparoundMidStream(t *testing.T) {
	// The sender's ISS sits just below 2^32, so sequence numbers wrap
	// within the first few segments.
	cfg := Config{ISS: issNear(0xffffffff - 3000)}
	transferAcross(t, cfg, 64*1024)
}

func TestSequenceWraparoundAtSynExactly(t *testing.T) {
	// ISS = 2^32 - 1: the SYN itself consumes the last sequence number.
	cfg := Config{ISS: issNear(0xffffffff)}
	transferAcross(t, cfg, 16*1024)
}

func TestSequenceWraparoundWithLoss(t *testing.T) {
	cfg := Config{ISS: issNear(0xffffffff - 2000)}
	p := newPair(t, cfg)
	c, s := p.connect(t, 80)
	// Drop every 5th data segment: retransmissions must handle wrapped
	// comparisons too.
	count := 0
	p.dropToB = func(seg []byte) bool {
		if len(RawPayload(seg)) > 0 {
			count++
			return count%5 == 0
		}
		return false
	}
	var got int
	buf := make([]byte, 65536)
	s.OnReadable(func() {
		for {
			n, _ := s.Read(buf)
			if n == 0 {
				return
			}
			got += n
		}
	})
	total := 32 * 1024
	data := make([]byte, total)
	sent := 0
	pump := func() {
		for sent < total {
			n, _ := c.Write(data[sent:])
			if n == 0 {
				return
			}
			sent += n
		}
	}
	c.OnWritable(pump)
	pump()
	p.runUntil(t, func() bool { return got == total }, 60*time.Second)
}

// TestSimultaneousOpen: both endpoints dial each other; the SYNs cross and
// RFC 793's simultaneous-open path must converge to one connection.
func TestSimultaneousOpen(t *testing.T) {
	p := newPair(t, Config{})
	ca, err := p.a.DialFrom(5000, p.bAddr, 6000)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := p.b.DialFrom(6000, p.aAddr, 5000)
	if err != nil {
		t.Fatal(err)
	}
	aEst, bEst := false, false
	ca.OnEstablished(func() { aEst = true })
	cb.OnEstablished(func() { bEst = true })
	p.runUntil(t, func() bool { return aEst && bEst }, 10*time.Second)
	if ca.State() != StateEstablished || cb.State() != StateEstablished {
		t.Fatalf("states: %v / %v", ca.State(), cb.State())
	}
	// Data flows both ways on the simultaneously opened connection.
	var atB []byte
	buf := make([]byte, 64)
	cb.OnReadable(func() {
		n, _ := cb.Read(buf)
		atB = append(atB, buf[:n]...)
	})
	if _, err := ca.Write([]byte("crossed")); err != nil {
		t.Fatal(err)
	}
	p.runUntil(t, func() bool { return string(atB) == "crossed" }, 10*time.Second)
}

// TestHeavyReordering delivers segments through a pipe that randomly delays
// them, forcing deep out-of-order reassembly.
func TestHeavyReordering(t *testing.T) {
	p := newPair(t, Config{})
	rng := rand.New(rand.NewSource(99))
	// Replace a->b transport with randomized delay (0.1ms - 3ms).
	p.a.SetOutput(func(src, dst ipv4.Addr, pkt *netbuf.Buffer) error {
		defer pkt.Release()
		cp := append([]byte(nil), pkt.Bytes()...)
		d := time.Duration(100+rng.Intn(2900)) * time.Microsecond
		p.sched.After(d, "reorder.ab", func() { p.b.Input(src, dst, cp) })
		return nil
	})
	c, s := p.connect(t, 80)
	var got int
	buf := make([]byte, 65536)
	s.OnReadable(func() {
		for {
			n, _ := s.Read(buf)
			if n == 0 {
				return
			}
			got += n
		}
	})
	total := 128 * 1024
	data := make([]byte, total)
	sent := 0
	pump := func() {
		for sent < total {
			n, _ := c.Write(data[sent:])
			if n == 0 {
				return
			}
			sent += n
		}
	}
	c.OnWritable(pump)
	pump()
	p.runUntil(t, func() bool { return got == total }, 60*time.Second)
}

// TestRetransmissionLimitAborts: a peer that vanishes mid-connection leads
// to ErrTimeout after MaxRetries.
func TestRetransmissionLimitAborts(t *testing.T) {
	p := newPair(t, Config{MaxRetries: 4, MaxRTO: time.Second})
	c, _ := p.connect(t, 80)
	p.dropToB = func([]byte) bool { return true } // peer unreachable
	var gotErr error
	closed := false
	c.OnClose(func(err error) { closed, gotErr = true, err })
	if _, err := c.Write([]byte("into the void")); err != nil {
		t.Fatal(err)
	}
	p.runUntil(t, func() bool { return closed }, 2*time.Minute)
	if gotErr != ErrTimeout {
		t.Errorf("close error = %v, want ErrTimeout", gotErr)
	}
}
