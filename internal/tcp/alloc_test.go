package tcp

import (
	"encoding/binary"
	"testing"
	"time"

	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/netbuf"
)

// TestSteadyStateSendZeroAllocs pins down the hot send path: with the
// connection established and the window open, queueing a payload, emitting
// the segment, and processing the returning ACK must not allocate. The
// peer's ACKs are hand-encoded into a reused buffer so the harness itself
// stays off the heap.
func TestSteadyStateSendZeroAllocs(t *testing.T) {
	p := newPair(t, Config{})
	c, _ := p.connect(t, 80)

	// Swap in an output that just recycles the packet: the measured loop
	// acknowledges the data itself, so nothing needs to reach stack b.
	p.a.output = func(src, dst ipv4.Addr, pkt *netbuf.Buffer) error {
		pkt.Release()
		return nil
	}
	// Drain handshake stragglers (delayed ACKs, pipe deliveries).
	p.runUntil(t, func() bool { return p.sched.PendingEvents() <= 2 }, time.Second)

	payload := make([]byte, 512)
	ack := make([]byte, HeaderLen)
	sendAndAck := func() {
		if _, err := c.Write(payload); err != nil {
			t.Fatal(err)
		}
		// Acknowledge everything outstanding with a hand-built pure ACK.
		ack[0] = byte(80 >> 8)
		binary.BigEndian.PutUint16(ack[0:2], 80)                // src port (peer)
		binary.BigEndian.PutUint16(ack[2:4], c.tuple.LocalPort) // dst port
		binary.BigEndian.PutUint32(ack[4:8], uint32(c.rcvNxt))  // seq
		binary.BigEndian.PutUint32(ack[8:12], uint32(c.sndNxt)) // ack
		ack[12] = byte(HeaderLen/4) << 4                        // data offset
		ack[13] = byte(FlagACK)
		binary.BigEndian.PutUint16(ack[14:16], 65535) // window
		binary.BigEndian.PutUint16(ack[16:18], 0)     // checksum (sealed below)
		binary.BigEndian.PutUint16(ack[18:20], 0)     // urgent
		SealChecksum(p.bAddr, p.aAddr, ack)
		p.a.Input(p.bAddr, p.aAddr, ack)
		if c.sndUna != c.sndNxt {
			t.Fatalf("ACK not consumed: sndUna %v, sndNxt %v", c.sndUna, c.sndNxt)
		}
	}
	sendAndAck() // warm pools and ring growth outside the measurement

	if allocs := testing.AllocsPerRun(200, sendAndAck); allocs > 0 {
		t.Errorf("steady-state send allocates %.1f times per segment, want 0", allocs)
	}
}
