package tcp

import (
	"math/rand"
	"testing"

	"tcpfailover/internal/ipv4"
)

// checkValid verifies a raw segment's checksum under the given addresses.
func checkValid(t *testing.T, src, dst ipv4.Addr, raw []byte) {
	t.Helper()
	if ComputeChecksum(src, dst, raw) != 0 {
		t.Fatalf("checksum invalid after patch")
	}
}

func TestRawAccessorsMatchMarshal(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for range 200 {
		s := randomSegment(rng)
		raw := Marshal(srcA, dstA, s)
		if RawSrcPort(raw) != s.SrcPort || RawDstPort(raw) != s.DstPort ||
			RawSeq(raw) != s.Seq || RawAck(raw) != s.Ack ||
			RawFlags(raw) != s.Flags || RawWindow(raw) != s.Window {
			t.Fatal("raw accessors disagree with marshaled fields")
		}
		if len(RawPayload(raw)) != len(s.Payload) {
			t.Fatal("RawPayload length mismatch")
		}
		if RawSegLen(raw) != s.Len() {
			t.Fatalf("RawSegLen = %d, want %d", RawSegLen(raw), s.Len())
		}
	}
}

// TestRawPatchesKeepChecksumValid is the core incremental-update property
// from the paper's section 3.1: every in-place field patch must leave the
// segment's checksum valid without a full recomputation.
func TestRawPatchesKeepChecksumValid(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for range 300 {
		s := randomSegment(rng)
		raw := Marshal(srcA, dstA, s)

		newSeq := Seq(rng.Uint32())
		SetRawSeq(raw, newSeq)
		checkValid(t, srcA, dstA, raw)
		if RawSeq(raw) != newSeq {
			t.Fatal("SetRawSeq did not take")
		}

		newAck := Seq(rng.Uint32())
		SetRawAck(raw, newAck)
		checkValid(t, srcA, dstA, raw)

		SetRawWindow(raw, uint16(rng.Intn(65536)))
		checkValid(t, srcA, dstA, raw)

		SetRawSrcPort(raw, uint16(rng.Intn(65536)))
		SetRawDstPort(raw, uint16(rng.Intn(65536)))
		checkValid(t, srcA, dstA, raw)
	}
}

// TestPatchPseudoAddr mirrors the secondary bridge's address translation:
// after rewriting the IP destination and patching, the checksum verifies
// under the new pseudo-header.
func TestPatchPseudoAddr(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	aS := ipv4.MustParseAddr("10.0.1.2")
	for range 200 {
		s := randomSegment(rng)
		raw := Marshal(srcA, dstA, s)
		PatchPseudoAddr(raw, dstA, aS)
		checkValid(t, srcA, aS, raw)
	}
}

// TestInsertStripOrigDstRoundTrip covers the diversion option: insertion
// must keep the checksum valid (after the pseudo-destination patch) and
// stripping must restore byte-identical original segments.
func TestInsertStripOrigDstRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	aP := dstA
	aS := ipv4.MustParseAddr("10.0.1.2")
	client := srcA
	for range 300 {
		s := randomSegment(rng)
		// The secondary's TCP layer never emits original-destination
		// options itself; drop any the generator added.
		opts := s.Options[:0]
		for _, o := range s.Options {
			if o.Kind != OptOrigDst {
				opts = append(opts, o)
			}
		}
		s.Options = opts
		// Secondary output: headed for the client, from aS.
		orig := Marshal(aS, client, s)

		diverted, err := InsertOrigDstOption(orig, client)
		if err != nil {
			t.Fatal(err)
		}
		PatchPseudoAddr(diverted, client, aP)
		checkValid(t, aS, aP, diverted)
		if got, ok := mustSeg(t, aS, aP, diverted).OrigDst(); !ok || got != client {
			t.Fatalf("OrigDst = %v %v", got, ok)
		}
		// Payload preserved.
		if string(RawPayload(diverted)) != string(s.Payload) {
			t.Fatal("payload damaged by insertion")
		}

		// Primary inbound: strip and verify the client address comes back.
		stripped, gotOrig, ok := StripOrigDstOption(diverted)
		if !ok {
			t.Fatal("option not found on diverted segment")
		}
		if gotOrig != client {
			t.Fatalf("stripped orig = %v, want %v", gotOrig, client)
		}
		PatchPseudoAddr(stripped, aP, client)
		checkValid(t, aS, client, stripped)
		if len(stripped) != len(orig) {
			t.Fatalf("stripped length %d, want %d", len(stripped), len(orig))
		}
		if RawSeq(stripped) != s.Seq || RawAck(stripped) != s.Ack ||
			string(RawPayload(stripped)) != string(s.Payload) {
			t.Fatal("stripped segment fields damaged")
		}
	}
}

func mustSeg(t *testing.T, src, dst ipv4.Addr, raw []byte) *Segment {
	t.Helper()
	s, err := Unmarshal(src, dst, raw, false)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStripWithoutOptionReportsFalse(t *testing.T) {
	raw := Marshal(srcA, dstA, &Segment{Flags: FlagACK, Options: []Option{MSSOption(1460)}})
	out, _, ok := StripOrigDstOption(raw)
	if ok {
		t.Error("reported an option on a segment without one")
	}
	if len(out) != len(raw) {
		t.Error("segment modified despite no option")
	}
}

func TestClampRawMSS(t *testing.T) {
	s := &Segment{Flags: FlagSYN, Options: []Option{MSSOption(1460)}}
	raw := Marshal(srcA, dstA, s)
	if !ClampRawMSS(raw, 8) {
		t.Fatal("MSS option not found")
	}
	checkValid(t, srcA, dstA, raw)
	if mss, _ := mustSeg(t, srcA, dstA, raw).MSS(); mss != 1452 {
		t.Errorf("clamped MSS = %d, want 1452", mss)
	}

	// Clamping never goes below the 64-byte floor.
	s = &Segment{Flags: FlagSYN, Options: []Option{MSSOption(70)}}
	raw = Marshal(srcA, dstA, s)
	ClampRawMSS(raw, 8)
	checkValid(t, srcA, dstA, raw)
	if mss, _ := mustSeg(t, srcA, dstA, raw).MSS(); mss != 64 {
		t.Errorf("floored MSS = %d, want 64", mss)
	}

	// Segment without an MSS option.
	raw = Marshal(srcA, dstA, &Segment{Flags: FlagACK})
	if ClampRawMSS(raw, 8) {
		t.Error("reported an MSS option on a bare segment")
	}
}

func TestInsertOrigDstRejectsFullHeader(t *testing.T) {
	// Fill the options area to the 40-byte maximum (10 x 4-byte MSS).
	opts := make([]Option, 10)
	for i := range opts {
		opts[i] = MSSOption(1460)
	}
	raw := Marshal(srcA, dstA, &Segment{Flags: FlagSYN, Options: opts})
	if _, err := InsertOrigDstOption(raw, srcA); err == nil {
		t.Error("insertion into a full header succeeded")
	}
}
