package tcp

// Seq is a TCP sequence number. All comparisons are modular (RFC 793
// section 3.3): a sequence number is "less than" another when the signed
// 32-bit difference is negative, which makes the arithmetic correct across
// the 2^32 wraparound.
type Seq uint32

// Less reports s < t in modular arithmetic.
func (s Seq) Less(t Seq) bool { return int32(s-t) < 0 }

// Leq reports s <= t in modular arithmetic.
func (s Seq) Leq(t Seq) bool { return int32(s-t) <= 0 }

// Greater reports s > t in modular arithmetic.
func (s Seq) Greater(t Seq) bool { return int32(s-t) > 0 }

// Geq reports s >= t in modular arithmetic.
func (s Seq) Geq(t Seq) bool { return int32(s-t) >= 0 }

// Add advances the sequence number by n bytes.
func (s Seq) Add(n int) Seq { return s + Seq(int32(n)) }

// Diff returns the signed distance s - t.
func (s Seq) Diff(t Seq) int { return int(int32(s - t)) }

// InWindow reports whether s lies in [start, start+size).
func (s Seq) InWindow(start Seq, size int) bool {
	return start.Leq(s) && s.Less(start.Add(size))
}

// MaxSeq returns the larger of two sequence numbers in modular order.
func MaxSeq(a, b Seq) Seq {
	if a.Geq(b) {
		return a
	}
	return b
}

// MinSeq returns the smaller of two sequence numbers in modular order. The
// primary bridge uses it to forward min(ackP, ackS) to the client.
func MinSeq(a, b Seq) Seq {
	if a.Leq(b) {
		return a
	}
	return b
}
