package tcp

import (
	"io"
	"time"

	"tcpfailover/internal/netbuf"
	"tcpfailover/internal/sim"
)

// Conn is one TCP connection endpoint. The API is event-driven and
// non-blocking: Read and Write transfer whatever the buffers allow, and the
// OnReadable / OnWritable / OnEstablished / OnClose callbacks signal
// progress. All methods must be called from the simulation event loop.
type Conn struct {
	stack    *Stack
	tuple    Tuple
	state    State
	listener *Listener // non-nil for passively opened connections

	// UserData is free space for the owning application.
	UserData any

	// Send sequence variables (RFC 793 3.2).
	iss          Seq
	sndUna       Seq
	sndNxt       Seq
	sndMaxSeq    Seq // highest sequence number ever sent (BSD's snd_max)
	sndWnd       int
	maxSndWnd    int // largest window the peer has advertised
	sndWl1       Seq
	sndWl2       Seq
	sndBuf       *ring
	sndDataStart Seq // sequence number of sndBuf byte 0
	finQueued    bool
	finSent      bool
	finSeq       Seq

	// Receive sequence variables.
	irs            Seq
	rcvNxt         Seq
	rcvBuf         *ring
	reasm          reassembly
	remoteFinSeq   Seq
	remoteFinValid bool
	peerFinRcvd    bool

	// Congestion control (Reno).
	mss          int
	cwnd         int
	ssthresh     int
	dupAcks      int
	fastRecovery bool

	// Acknowledgment strategy.
	ackPendingSegs int
	ackNowFlag     bool
	lastWndSent    int

	// RTT measurement (one segment timed at a time; Karn's rule).
	rto      *rttEstimator
	timing   bool
	timedSeq Seq
	timedAt  time.Duration

	// Timers.
	rexmtTimer    sim.Timer
	delackTimer   sim.Timer
	timeWaitTimer sim.Timer
	persistTimer  sim.Timer
	rtxCount      int
	persistCount  int

	// Callbacks.
	onEstablished func()
	onReadable    func()
	onWritable    func()
	onClose       func(error)

	closed   bool
	closeErr error
}

func (s *Stack) newConn(t Tuple) *Conn {
	c := &Conn{
		stack:       s,
		tuple:       t,
		state:       StateClosed,
		iss:         s.cfg.ISS(s.rng),
		sndBuf:      newRing(s.cfg.SendBufSize, s.m.ringGrows),
		rcvBuf:      newRing(s.cfg.RecvBufSize, s.m.ringGrows),
		mss:         s.cfg.MSS,
		ssthresh:    65535,
		rto:         newRTTEstimator(s.cfg.InitialRTO, s.cfg.MinRTO, s.cfg.MaxRTO),
		lastWndSent: s.cfg.RecvBufSize,
	}
	c.sndUna = c.iss
	c.sndNxt = c.iss
	c.sndMaxSeq = c.iss
	c.sndDataStart = c.iss.Add(1)
	c.cwnd = s.cfg.InitialCwndSegs * c.mss
	if s.cfg.DisableCongestion {
		c.cwnd = s.cfg.SendBufSize
	}
	return c
}

// --- public accessors -----------------------------------------------------

// Tuple returns the connection four-tuple.
func (c *Conn) Tuple() Tuple { return c.tuple }

// State returns the current connection state.
func (c *Conn) State() State { return c.state }

// Err returns the terminal error, if the connection has failed.
func (c *Conn) Err() error { return c.closeErr }

// MSS returns the effective maximum segment size.
func (c *Conn) MSS() int { return c.mss }

// OnEstablished sets the callback fired when the connection reaches
// ESTABLISHED.
func (c *Conn) OnEstablished(f func()) { c.onEstablished = f }

// OnReadable sets the callback fired when new data (or EOF) is available.
func (c *Conn) OnReadable(f func()) { c.onReadable = f }

// OnWritable sets the callback fired when send-buffer space frees up.
func (c *Conn) OnWritable(f func()) { c.onWritable = f }

// OnClose sets the callback fired exactly once when the connection is fully
// terminated; err is nil for a clean close.
func (c *Conn) OnClose(f func(error)) { c.onClose = f }

// Buffered returns the number of receive-buffer bytes available to Read.
func (c *Conn) Buffered() int { return c.rcvBuf.Len() }

// SendFree returns the send-buffer space available to Write.
func (c *Conn) SendFree() int { return c.sndBuf.Free() }

// SendQueued returns the bytes in the send buffer not yet acknowledged.
func (c *Conn) SendQueued() int { return c.sndBuf.Len() }

// --- application API -------------------------------------------------------

// Write copies up to len(p) bytes into the send buffer and starts
// transmission. It returns the number of bytes accepted; zero means the
// buffer is full (wait for OnWritable).
func (c *Conn) Write(p []byte) (int, error) {
	switch c.state {
	case StateEstablished, StateCloseWait, StateSynSent, StateSynReceived:
	default:
		if c.closeErr != nil {
			return 0, c.closeErr
		}
		return 0, ErrClosed
	}
	if c.finQueued {
		return 0, ErrClosed
	}
	n := c.sndBuf.Write(p)
	if c.state == StateEstablished || c.state == StateCloseWait {
		c.trySend()
	}
	return n, nil
}

// Read copies buffered data into p. It returns (0, nil) when no data is
// available yet and (0, io.EOF) after the peer's FIN has been consumed.
func (c *Conn) Read(p []byte) (int, error) {
	n := c.rcvBuf.Read(p)
	if n > 0 {
		c.maybeSendWindowUpdate()
		return n, nil
	}
	if c.peerFinRcvd {
		return 0, io.EOF
	}
	if c.closeErr != nil {
		return 0, c.closeErr
	}
	return 0, nil
}

// Close closes the sending direction after all buffered data drains (a
// half-close; the peer may keep sending). The connection terminates fully
// once both directions are closed.
func (c *Conn) Close() {
	if c.finQueued {
		return
	}
	switch c.state {
	case StateSynSent:
		c.destroy(nil)
		return
	case StateSynReceived, StateEstablished:
		c.finQueued = true
		c.state = StateFinWait1
		c.trySend()
	case StateCloseWait:
		c.finQueued = true
		c.state = StateLastAck
		c.trySend()
	default:
		// Already closing or closed.
	}
}

// Abort resets the connection immediately, notifying the peer with RST.
func (c *Conn) Abort() {
	switch c.state {
	case StateClosed:
		return
	case StateSynSent, StateListen:
	default:
		rst := &Segment{Flags: FlagRST | FlagACK, Seq: c.sndNxt, Ack: c.rcvNxt}
		c.emit(rst)
	}
	c.destroy(ErrAborted)
}

// --- segment transmission ---------------------------------------------------

// emit marshals a control segment (whose Payload, if any, is copied) into a
// pooled buffer and hands ownership to the stack output.
func (c *Conn) emit(seg *Segment) {
	seg.SrcPort = c.tuple.LocalPort
	seg.DstPort = c.tuple.RemotePort
	pkt := netbuf.Get()
	copy(MarshalReserve(pkt, seg, len(seg.Payload)), seg.Payload)
	SealChecksum(c.tuple.LocalAddr, c.tuple.RemoteAddr, pkt.Bytes())
	c.stack.stats.SegmentsOut++
	c.stack.m.segmentsOut.Inc()
	_ = c.stack.output(c.tuple.LocalAddr, c.tuple.RemoteAddr, pkt)
}

// emitData marshals seg plus n bytes of send-buffer data starting at ring
// offset off. The payload is peeked directly into the pooled packet buffer:
// the steady-state send path writes each byte once and allocates nothing.
func (c *Conn) emitData(seg *Segment, off, n int) {
	seg.SrcPort = c.tuple.LocalPort
	seg.DstPort = c.tuple.RemotePort
	pkt := netbuf.Get()
	c.sndBuf.Peek(off, MarshalReserve(pkt, seg, n))
	SealChecksum(c.tuple.LocalAddr, c.tuple.RemoteAddr, pkt.Bytes())
	c.stack.stats.SegmentsOut++
	c.stack.m.segmentsOut.Inc()
	_ = c.stack.output(c.tuple.LocalAddr, c.tuple.RemoteAddr, pkt)
}

// setSndWnd records a peer window advertisement, tracking the maximum for
// the silly-window-avoidance threshold.
func (c *Conn) setSndWnd(w int) {
	c.sndWnd = w
	if w > c.maxSndWnd {
		c.maxSndWnd = w
	}
}

func (c *Conn) advertisedWindow() uint16 {
	w := c.rcvBuf.Free()
	if w > 65535 {
		w = 65535
	}
	return uint16(w)
}

func (c *Conn) sendSYN(withAck bool) {
	seg := &Segment{
		Seq:     c.iss,
		Flags:   FlagSYN,
		Window:  c.advertisedWindow(),
		Options: []Option{MSSOption(uint16(c.stack.cfg.MSS))},
	}
	if withAck {
		seg.Flags |= FlagACK
		seg.Ack = c.rcvNxt
	}
	c.sndNxt = c.iss.Add(1)
	c.sndMaxSeq = MaxSeq(c.sndMaxSeq, c.sndNxt)
	c.emit(seg)
	c.armRexmt()
	if !c.timing {
		c.timing = true
		c.timedSeq = c.sndNxt
		c.timedAt = c.stack.sched.Now()
	}
}

// trySend transmits as much pending data (and a queued FIN) as the send
// window, congestion window, and MSS permit. It returns the number of
// segments emitted.
func (c *Conn) trySend() int {
	switch c.state {
	case StateEstablished, StateCloseWait, StateFinWait1, StateClosing, StateLastAck:
	default:
		return 0
	}
	sent := 0
	for {
		dataEnd := c.sndDataStart.Add(c.sndBuf.Len())
		if c.finSent && c.sndNxt.Greater(c.finSeq) {
			break // everything through the FIN has been (re)sent
		}
		unsent := dataEnd.Diff(c.sndNxt)
		if unsent < 0 {
			unsent = 0
		}
		wnd := c.sndWnd
		if !c.stack.cfg.DisableCongestion && c.cwnd < wnd {
			wnd = c.cwnd
		}
		inFlight := c.sndNxt.Diff(c.sndUna)
		avail := wnd - inFlight
		if avail < 0 {
			avail = 0
		}
		n := min(unsent, c.mss, avail)
		// The FIN rides the segment that drains the buffer; after an RTO
		// rollback it is re-sent when sndNxt reaches its position again.
		sendFin := c.finQueued && n == unsent &&
			(!c.finSent || c.sndNxt.Add(n) == c.finSeq)
		if n <= 0 && !(sendFin && unsent == 0) {
			break
		}
		// Sender-side silly-window avoidance (RFC 1122 4.2.3.4): send a
		// sub-MSS, sub-buffer segment only when it covers at least half
		// the peer's largest-ever window; otherwise hold until the window
		// opens (the persist machinery overrides a permanent hold).
		if n < c.mss && n < unsent && n < max(c.maxSndWnd/2, 1) {
			break
		}
		// Nagle: hold small segments while data is in flight.
		if n > 0 && n < c.mss && inFlight > 0 && !sendFin &&
			!c.stack.cfg.DisableNagle && n == unsent {
			break
		}
		// Zero-window: let the persist timer probe.
		if n == 0 && sendFin && avail == 0 && inFlight > 0 {
			break
		}
		seg := &Segment{
			Seq:    c.sndNxt,
			Ack:    c.rcvNxt,
			Flags:  FlagACK,
			Window: c.advertisedWindow(),
		}
		off := c.sndNxt.Diff(c.sndDataStart)
		if n > 0 {
			// PSH marks the end of a burst: either the buffer drains, or
			// Nagle is about to hold a sub-MSS remainder until this segment
			// is acknowledged — the receiver should acknowledge promptly.
			if n == unsent || (unsent-n < c.mss && !c.stack.cfg.DisableNagle) {
				seg.Flags |= FlagPSH
			}
		}
		c.sndNxt = c.sndNxt.Add(n)
		segLen := n
		if sendFin {
			seg.Flags |= FlagFIN
			segLen++
			if !c.finSent {
				c.finSent = true
				c.finSeq = c.sndNxt
			}
			c.sndNxt = c.finSeq.Add(1)
		}
		c.sndMaxSeq = MaxSeq(c.sndMaxSeq, c.sndNxt)
		c.emitData(seg, off, n)
		sent++
		c.clearAckPending()
		if !c.timing && segLen > 0 {
			c.timing = true
			c.timedSeq = c.sndNxt
			c.timedAt = c.stack.sched.Now()
		}
		if segLen > 0 {
			c.armRexmt()
		}
	}
	c.maybeArmPersist()
	return sent
}

func (c *Conn) sendAck() {
	seg := &Segment{
		Seq:    c.sndNxt,
		Ack:    c.rcvNxt,
		Flags:  FlagACK,
		Window: c.advertisedWindow(),
	}
	c.emit(seg)
	c.clearAckPending()
}

func (c *Conn) clearAckPending() {
	c.ackPendingSegs = 0
	c.ackNowFlag = false
	c.delackTimer.Stop()
	c.delackTimer = sim.Timer{}
	c.lastWndSent = c.rcvBuf.Free()
}

// flushOutput runs at the end of input processing: it piggybacks pending
// acknowledgments on data if possible, otherwise emits or schedules a pure
// ACK.
func (c *Conn) flushOutput() {
	sent := c.trySend()
	if sent > 0 {
		return
	}
	if c.ackNowFlag || c.ackPendingSegs >= c.stack.cfg.AckEveryN {
		c.sendAck()
		return
	}
	if c.ackPendingSegs > 0 && !c.delackTimer.Pending() {
		c.delackTimer = c.stack.sched.AfterArg(c.stack.cfg.DelayedAckTimeout, "tcp.delack", connDelack, c)
	}
}

// maybeSendWindowUpdate advertises newly freed receive buffer after the
// application reads, mimicking the "window update" segments real stacks
// send to restart a stalled sender.
func (c *Conn) maybeSendWindowUpdate() {
	if c.state != StateEstablished && c.state != StateFinWait1 && c.state != StateFinWait2 {
		return
	}
	free := c.rcvBuf.Free()
	if free-c.lastWndSent >= min(2*c.mss, c.rcvBuf.Cap()/2) {
		c.sendAck()
	}
}

// --- timers ------------------------------------------------------------------

// connRexmt and connDelack are scheduled via AfterArg with the connection as
// the argument: a top-level function plus a pointer argument schedules
// without allocating, unlike a closure or method value, which matters
// because the retransmission timer is re-armed for every data segment sent.
func connRexmt(v any) { v.(*Conn).onRexmtTimeout() }

func connDelack(v any) {
	c := v.(*Conn)
	c.delackTimer = sim.Timer{}
	if c.state != StateClosed {
		c.sendAck()
	}
}

func (c *Conn) armRexmt() {
	c.rexmtTimer.Stop()
	c.rexmtTimer = c.stack.sched.AfterArg(c.rto.RTO(), "tcp.rexmt", connRexmt, c)
}

func (c *Conn) stopRexmt() {
	c.rexmtTimer.Stop()
	c.rexmtTimer = sim.Timer{}
	c.rtxCount = 0
}

func (c *Conn) onRexmtTimeout() {
	c.rexmtTimer = sim.Timer{}
	if c.state == StateClosed || c.state == StateTimeWait {
		return
	}
	if c.sndUna == c.sndMaxSeq && c.state != StateSynSent && c.state != StateSynReceived {
		return // stale timer: everything sent has been acknowledged
	}
	c.rtxCount++
	if c.rtxCount > c.stack.cfg.MaxRetries {
		c.destroy(ErrTimeout)
		return
	}
	c.stack.stats.Retransmissions++
	c.stack.m.retransmissions.Inc()
	c.stack.spans.Retransmit(c.tuple.SpanKey())
	c.rto.backoff()
	c.timing = false // Karn: do not time retransmitted segments
	c.dupAcks = 0
	c.fastRecovery = false
	if !c.stack.cfg.DisableCongestion {
		flight := c.sndNxt.Diff(c.sndUna)
		c.ssthresh = max(flight/2, 2*c.mss)
		c.cwnd = c.mss
	}
	switch c.state {
	case StateSynSent:
		c.sendSYN(false)
		return
	case StateSynReceived:
		c.sendSYN(true)
		return
	}
	// Roll back and resend from the left window edge (snd_max keeps the
	// high-water mark so later acknowledgments remain recognizable).
	c.sndNxt = c.sndUna
	if c.trySend() == 0 && c.sndUna != c.sndMaxSeq {
		// The peer's window (possibly zero) blocks regular transmission,
		// but unacknowledged data exists: force the front segment out as a
		// probe. The receiver trims it to its window yet must process the
		// acknowledgment, which is what breaks zero-window gridlocks after
		// a failover gap.
		c.retransmitOne()
	}
	c.armRexmt()
}

// maybeArmPersist arms the persist timer whenever data is pending but
// nothing is in flight and trySend declined to transmit — a zero window or
// a silly-window hold. The probe doubles as BSD's SWS override.
func (c *Conn) maybeArmPersist() {
	dataEnd := c.sndDataStart.Add(c.sndBuf.Len())
	unsent := dataEnd.Diff(c.sndNxt)
	if unsent > 0 && c.sndNxt == c.sndUna && !c.persistTimer.Pending() && !c.rexmtTimer.Pending() {
		c.persistCount = 0
		c.stack.m.zeroWindowStalls.Inc()
		c.stack.spans.ZeroWindow(c.tuple.SpanKey())
		c.armPersist()
	}
}

func (c *Conn) armPersist() {
	d := c.rto.RTO() * time.Duration(1<<min(c.persistCount, 6))
	c.persistTimer = c.stack.sched.After(d, "tcp.persist", func() {
		c.persistTimer = sim.Timer{}
		if c.state == StateClosed {
			return
		}
		// If regular transmission has resumed, stand down.
		if c.trySend() > 0 || c.sndNxt != c.sndUna {
			return
		}
		// Window probe / SWS override: force out data starting at the
		// first unacknowledged byte — one byte into a zero window, or as
		// much as the sub-MSS window allows. The receiver trims it to its
		// window but must process the ACK field.
		off := c.sndUna.Diff(c.sndDataStart)
		if off < 0 {
			off = 0
		}
		if off < c.sndBuf.Len() {
			n := min(c.sndBuf.Len()-off, c.mss, max(c.sndWnd, 1))
			seg := &Segment{
				Seq:    c.sndUna,
				Ack:    c.rcvNxt,
				Flags:  FlagACK | FlagPSH,
				Window: c.advertisedWindow(),
			}
			c.sndNxt = MaxSeq(c.sndNxt, c.sndUna.Add(n))
			c.sndMaxSeq = MaxSeq(c.sndMaxSeq, c.sndNxt)
			c.emitData(seg, off, n)
			c.armRexmt()
			return
		}
		c.persistCount++
		c.armPersist()
	})
}

func (c *Conn) enterTimeWait() {
	c.state = StateTimeWait
	c.stopRexmt()
	c.timeWaitTimer.Stop()
	c.timeWaitTimer = c.stack.sched.After(c.stack.cfg.TimeWaitDuration, "tcp.timewait", func() {
		c.timeWaitTimer = sim.Timer{}
		c.destroy(nil)
	})
}

// destroy tears the connection down and fires OnClose exactly once.
func (c *Conn) destroy(err error) {
	if c.closed {
		return
	}
	c.closed = true
	c.closeErr = err
	c.state = StateClosed
	for _, t := range []sim.Timer{c.rexmtTimer, c.delackTimer, c.timeWaitTimer, c.persistTimer} {
		t.Stop()
	}
	c.stack.removeConn(c)
	if c.onClose != nil {
		c.onClose(err)
	}
}
