package tcp

import (
	"bytes"
	"math/rand"
	"testing"

	"tcpfailover/internal/ipv4"
)

var (
	srcA = ipv4.MustParseAddr("10.0.2.1")
	dstA = ipv4.MustParseAddr("10.0.1.1")
)

func randomSegment(rng *rand.Rand) *Segment {
	s := &Segment{
		SrcPort: uint16(rng.Intn(65536)),
		DstPort: uint16(rng.Intn(65536)),
		Seq:     Seq(rng.Uint32()),
		Ack:     Seq(rng.Uint32()),
		Flags:   Flags(rng.Intn(64)),
		Window:  uint16(rng.Intn(65536)),
		Payload: make([]byte, rng.Intn(200)),
	}
	rng.Read(s.Payload)
	if rng.Intn(2) == 0 {
		s.Options = append(s.Options, MSSOption(uint16(rng.Intn(65536))))
	}
	if rng.Intn(3) == 0 {
		s.Options = append(s.Options, OrigDstOption(ipv4.Addr(rng.Uint32())))
	}
	return s
}

func segmentsEqual(a, b *Segment) bool {
	if a.SrcPort != b.SrcPort || a.DstPort != b.DstPort || a.Seq != b.Seq ||
		a.Ack != b.Ack || a.Flags != b.Flags || a.Window != b.Window ||
		!bytes.Equal(a.Payload, b.Payload) {
		return false
	}
	am, aok := a.MSS()
	bm, bok := b.MSS()
	if aok != bok || am != bm {
		return false
	}
	ao, aook := a.OrigDst()
	bo, book := b.OrigDst()
	return aook == book && ao == bo
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for range 500 {
		s := randomSegment(rng)
		raw := Marshal(srcA, dstA, s)
		got, err := Unmarshal(srcA, dstA, raw, true)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !segmentsEqual(s, got) {
			t.Fatalf("round trip mismatch:\n%+v\n%+v", s, got)
		}
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for range 200 {
		s := randomSegment(rng)
		raw := Marshal(srcA, dstA, s)
		// Flip one random bit.
		i := rng.Intn(len(raw))
		raw[i] ^= 1 << uint(rng.Intn(8))
		if _, err := Unmarshal(srcA, dstA, raw, true); err == nil {
			// A flipped bit in a NOP pad can escape the offset check but
			// never the checksum.
			t.Fatalf("corruption at byte %d not detected", i)
		}
	}
}

func TestChecksumCoversPseudoHeader(t *testing.T) {
	s := &Segment{SrcPort: 1, DstPort: 2, Flags: FlagACK}
	raw := Marshal(srcA, dstA, s)
	if _, err := Unmarshal(srcA, dstA, raw, true); err != nil {
		t.Fatalf("valid segment rejected: %v", err)
	}
	// The same bytes with a different pseudo-header destination must fail —
	// this is why the bridges patch the checksum when translating addresses.
	other := ipv4.MustParseAddr("10.0.1.2")
	if _, err := Unmarshal(srcA, other, raw, true); err == nil {
		t.Error("segment accepted under the wrong destination address")
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	if _, err := Unmarshal(srcA, dstA, make([]byte, 10), false); err == nil {
		t.Error("short segment accepted")
	}
	raw := Marshal(srcA, dstA, &Segment{Flags: FlagACK})
	raw[12] = 3 << 4 // data offset below minimum
	if _, err := Unmarshal(srcA, dstA, raw, false); err == nil {
		t.Error("bad data offset accepted")
	}
	raw = Marshal(srcA, dstA, &Segment{Flags: FlagACK})
	raw[12] = 15 << 4 // offset beyond segment
	if _, err := Unmarshal(srcA, dstA, raw, false); err == nil {
		t.Error("oversized data offset accepted")
	}
}

func TestSegLenCountsSynFin(t *testing.T) {
	tests := []struct {
		flags   Flags
		payload int
		want    int
	}{
		{FlagACK, 0, 0},
		{FlagSYN, 0, 1},
		{FlagFIN | FlagACK, 0, 1},
		{FlagSYN | FlagFIN, 0, 2},
		{FlagACK | FlagPSH, 7, 7},
		{FlagFIN | FlagACK, 7, 8},
	}
	for _, tc := range tests {
		s := &Segment{Flags: tc.flags, Payload: make([]byte, tc.payload)}
		if got := s.Len(); got != tc.want {
			t.Errorf("Len(%v,%d) = %d, want %d", tc.flags, tc.payload, got, tc.want)
		}
	}
}

func TestFlagsString(t *testing.T) {
	if got := (FlagSYN | FlagACK).String(); got != "S." {
		t.Errorf("SYN|ACK = %q", got)
	}
	if got := Flags(0).String(); got != "none" {
		t.Errorf("zero flags = %q", got)
	}
}

func TestOptionsSkipUnknown(t *testing.T) {
	// An unknown option with valid length must be preserved in parsing and
	// not break MSS extraction after it.
	s := &Segment{
		Flags: FlagSYN,
		Options: []Option{
			{Kind: 99, Data: []byte{1, 2, 3}},
			MSSOption(1460),
		},
	}
	raw := Marshal(srcA, dstA, s)
	got, err := Unmarshal(srcA, dstA, raw, true)
	if err != nil {
		t.Fatal(err)
	}
	if mss, ok := got.MSS(); !ok || mss != 1460 {
		t.Errorf("MSS after unknown option: %d %v", mss, ok)
	}
}
