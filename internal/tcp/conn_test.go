package tcp

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/netbuf"
	"tcpfailover/internal/sim"
)

// pair wires two stacks together through the scheduler with a fixed
// one-way delay and controllable loss, bypassing the full netstack — pure
// TCP state-machine testing.
type pair struct {
	sched    *sim.Scheduler
	a, b     *Stack
	aAddr    ipv4.Addr
	bAddr    ipv4.Addr
	delay    time.Duration
	dropToB  func(seg []byte) bool
	dropToA  func(seg []byte) bool
	toBCount int
	toACount int
}

func newPair(t *testing.T, cfg Config) *pair {
	t.Helper()
	p := &pair{
		sched: sim.New(1),
		aAddr: ipv4.MustParseAddr("10.0.0.1"),
		bAddr: ipv4.MustParseAddr("10.0.0.2"),
		delay: 500 * time.Microsecond,
	}
	p.a = NewStack(p.sched, cfg, func(src, dst ipv4.Addr, pkt *netbuf.Buffer) error {
		defer pkt.Release()
		p.toBCount++
		if p.dropToB != nil && p.dropToB(pkt.Bytes()) {
			return nil
		}
		cp := append([]byte(nil), pkt.Bytes()...)
		p.sched.After(p.delay, "pipe.ab", func() { p.b.Input(src, dst, cp) })
		return nil
	}, func(ipv4.Addr) (ipv4.Addr, bool) { return p.aAddr, true })
	p.b = NewStack(p.sched, cfg, func(src, dst ipv4.Addr, pkt *netbuf.Buffer) error {
		defer pkt.Release()
		p.toACount++
		if p.dropToA != nil && p.dropToA(pkt.Bytes()) {
			return nil
		}
		cp := append([]byte(nil), pkt.Bytes()...)
		p.sched.After(p.delay, "pipe.ba", func() { p.a.Input(src, dst, cp) })
		return nil
	}, func(ipv4.Addr) (ipv4.Addr, bool) { return p.bAddr, true })
	return p
}

// connect establishes a connection from a to b:port and returns both ends.
func (p *pair) connect(t *testing.T, port uint16) (client, server *Conn) {
	t.Helper()
	if _, err := p.b.Listen(port, func(c *Conn) { server = c }); err != nil {
		t.Fatal(err)
	}
	c, err := p.a.Dial(p.bAddr, port)
	if err != nil {
		t.Fatal(err)
	}
	established := false
	c.OnEstablished(func() { established = true })
	p.runUntil(t, func() bool { return established && server != nil }, time.Second)
	return c, server
}

func (p *pair) runUntil(t *testing.T, cond func() bool, max time.Duration) {
	t.Helper()
	deadline := p.sched.Now() + max
	for !cond() {
		if p.sched.Now() > deadline {
			t.Fatalf("condition not met by %v", max)
		}
		if !p.sched.Step() {
			if cond() {
				return
			}
			t.Fatalf("event queue empty at %v before condition", p.sched.Now())
		}
	}
}

func TestHandshakeStates(t *testing.T) {
	p := newPair(t, Config{})
	c, s := p.connect(t, 80)
	if c.State() != StateEstablished || s.State() != StateEstablished {
		t.Fatalf("states after handshake: %v / %v", c.State(), s.State())
	}
	if c.MSS() != 1460 || s.MSS() != 1460 {
		t.Errorf("negotiated MSS %d/%d", c.MSS(), s.MSS())
	}
}

func TestMSSNegotiationTakesMinimum(t *testing.T) {
	p := newPair(t, Config{})
	// Rebuild b with a smaller MSS.
	small := Config{MSS: 536}
	p.b = NewStack(p.sched, small, func(src, dst ipv4.Addr, pkt *netbuf.Buffer) error {
		defer pkt.Release()
		cp := append([]byte(nil), pkt.Bytes()...)
		p.sched.After(p.delay, "pipe.ba", func() { p.a.Input(src, dst, cp) })
		return nil
	}, func(ipv4.Addr) (ipv4.Addr, bool) { return p.bAddr, true })
	c, s := p.connect(t, 80)
	if c.MSS() != 536 || s.MSS() != 536 {
		t.Errorf("negotiated MSS %d/%d, want 536", c.MSS(), s.MSS())
	}
}

func TestDataTransferBothDirections(t *testing.T) {
	p := newPair(t, Config{})
	c, s := p.connect(t, 80)

	var atServer, atClient []byte
	buf := make([]byte, 4096)
	s.OnReadable(func() {
		for {
			n, _ := s.Read(buf)
			if n == 0 {
				return
			}
			atServer = append(atServer, buf[:n]...)
		}
	})
	c.OnReadable(func() {
		for {
			n, _ := c.Read(buf)
			if n == 0 {
				return
			}
			atClient = append(atClient, buf[:n]...)
		}
	})
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	p.runUntil(t, func() bool {
		return string(atServer) == "ping" && string(atClient) == "pong"
	}, time.Second)
}

func TestGracefulCloseStateWalk(t *testing.T) {
	p := newPair(t, Config{TimeWaitDuration: 10 * time.Millisecond})
	c, s := p.connect(t, 80)

	var cClosed, sClosed bool
	var cErr, sErr error
	c.OnClose(func(err error) { cClosed, cErr = true, err })
	s.OnClose(func(err error) { sClosed, sErr = true, err })
	sSawEOF := false
	s.OnReadable(func() {
		if _, err := s.Read(make([]byte, 1)); err == io.EOF {
			sSawEOF = true
			s.Close()
		}
	})
	c.Close() // active close on the client

	p.runUntil(t, func() bool { return cClosed && sClosed }, time.Second)
	if !sSawEOF {
		t.Error("server never observed EOF")
	}
	if cErr != nil || sErr != nil {
		t.Errorf("close errors: %v / %v", cErr, sErr)
	}
}

func TestHalfCloseAllowsContinuedTransfer(t *testing.T) {
	p := newPair(t, Config{TimeWaitDuration: 10 * time.Millisecond})
	c, s := p.connect(t, 80)

	var atClient []byte
	buf := make([]byte, 4096)
	gotEOF := false
	c.OnReadable(func() {
		for {
			n, err := c.Read(buf)
			if n > 0 {
				atClient = append(atClient, buf[:n]...)
				continue
			}
			if err == io.EOF {
				gotEOF = true
			}
			return
		}
	})
	// Client half-closes immediately; server keeps sending afterward.
	c.Close()
	serverSends := func() {
		sEOF := false
		s.OnReadable(func() {
			if _, err := s.Read(make([]byte, 16)); err == io.EOF && !sEOF {
				sEOF = true
				if _, err := s.Write([]byte("late data after client FIN")); err != nil {
					t.Errorf("server write in CLOSE-WAIT: %v", err)
				}
				s.Close()
			}
		})
	}
	serverSends()
	p.runUntil(t, func() bool { return gotEOF }, time.Second)
	if string(atClient) != "late data after client FIN" {
		t.Errorf("client got %q", atClient)
	}
	if c.State() != StateTimeWait && c.State() != StateClosed {
		t.Errorf("client state %v after full close", c.State())
	}
}

func TestSimultaneousClose(t *testing.T) {
	p := newPair(t, Config{TimeWaitDuration: 10 * time.Millisecond})
	c, s := p.connect(t, 80)
	var cClosed, sClosed bool
	c.OnClose(func(error) { cClosed = true })
	s.OnClose(func(error) { sClosed = true })
	c.Close()
	s.Close() // both FINs cross in flight
	p.runUntil(t, func() bool { return cClosed && sClosed }, 5*time.Second)
}

func TestConnectionRefusedGetsRST(t *testing.T) {
	p := newPair(t, Config{})
	c, err := p.a.Dial(p.bAddr, 9999) // nobody listens
	if err != nil {
		t.Fatal(err)
	}
	var gotErr error
	closed := false
	c.OnClose(func(err error) { closed, gotErr = true, err })
	p.runUntil(t, func() bool { return closed }, time.Second)
	if gotErr != ErrConnRefused {
		t.Errorf("close error = %v, want ErrConnRefused", gotErr)
	}
}

func TestAbortSendsRST(t *testing.T) {
	p := newPair(t, Config{})
	c, s := p.connect(t, 80)
	var sErr error
	sClosed := false
	s.OnClose(func(err error) { sClosed, sErr = true, err })
	c.Abort()
	if c.Err() != ErrAborted {
		t.Errorf("aborter error = %v", c.Err())
	}
	p.runUntil(t, func() bool { return sClosed }, time.Second)
	if sErr != ErrConnReset {
		t.Errorf("peer error = %v, want ErrConnReset", sErr)
	}
}

func TestRetransmissionRecoversSingleLoss(t *testing.T) {
	p := newPair(t, Config{})
	c, s := p.connect(t, 80)
	var atServer []byte
	buf := make([]byte, 4096)
	s.OnReadable(func() {
		for {
			n, _ := s.Read(buf)
			if n == 0 {
				return
			}
			atServer = append(atServer, buf[:n]...)
		}
	})
	// Drop the first data segment toward the server.
	dropped := false
	p.dropToB = func(seg []byte) bool {
		if !dropped && len(RawPayload(seg)) > 0 {
			dropped = true
			return true
		}
		return false
	}
	want := []byte("must arrive despite the loss")
	if _, err := c.Write(want); err != nil {
		t.Fatal(err)
	}
	p.runUntil(t, func() bool { return bytes.Equal(atServer, want) }, 5*time.Second)
	if !dropped {
		t.Fatal("loss injector never fired")
	}
	if p.a.Stats().Retransmissions == 0 {
		t.Error("no retransmissions recorded")
	}
}

func TestFastRetransmitOnDupAcks(t *testing.T) {
	p := newPair(t, Config{})
	c, s := p.connect(t, 80)
	var got int
	buf := make([]byte, 65536)
	s.OnReadable(func() {
		for {
			n, _ := s.Read(buf)
			if n == 0 {
				return
			}
			got += n
		}
	})
	// Drop exactly one mid-stream segment so later segments generate dup
	// acks (the stream is long enough for 3 duplicates).
	seen := 0
	p.dropToB = func(seg []byte) bool {
		if len(RawPayload(seg)) > 0 {
			seen++
			return seen == 8
		}
		return false
	}
	data := make([]byte, 30000)
	sent := 0
	pump := func() {
		for sent < len(data) {
			n, _ := c.Write(data[sent:])
			if n == 0 {
				return
			}
			sent += n
		}
	}
	c.OnWritable(pump)
	pump()
	p.runUntil(t, func() bool { return got == len(data) }, 5*time.Second)
	if p.a.Stats().FastRetransmits == 0 {
		t.Error("loss recovered without fast retransmit (RTO only)")
	}
	// Fast retransmit should beat the minimum RTO.
	if p.sched.Now() >= 200*time.Millisecond {
		t.Errorf("recovery took %v, want < min RTO via fast retransmit", p.sched.Now())
	}
}

func TestZeroWindowAndPersistProbe(t *testing.T) {
	p := newPair(t, Config{RecvBufSize: 4096})
	c, s := p.connect(t, 80)
	// The server application reads nothing: the 4 KB window fills and the
	// client must stall, then recover once the app drains.
	data := make([]byte, 16384)
	sent := 0
	pump := func() {
		for sent < len(data) {
			n, _ := c.Write(data[sent:])
			if n == 0 {
				return
			}
			sent += n
		}
	}
	c.OnWritable(pump)
	pump()
	p.runUntil(t, func() bool { return s.Buffered() == 4096 }, 5*time.Second)

	// Drain after a long stall; the persist machinery must revive the flow.
	var got int
	p.sched.After(2*time.Second, "drain", func() {
		buf := make([]byte, 4096)
		var drain func()
		drain = func() {
			for {
				n, _ := s.Read(buf)
				if n == 0 {
					return
				}
				got += n
			}
		}
		s.OnReadable(drain)
		drain()
	})
	p.runUntil(t, func() bool { return got == len(data) }, 120*time.Second)
}

func TestDelayedAckCoalesces(t *testing.T) {
	p := newPair(t, Config{DisableNagle: true})
	c, s := p.connect(t, 80)
	_ = s
	before := p.toACount
	// A single small segment: the ack should wait for the delayed-ack
	// timer rather than being sent immediately.
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	p.runUntil(t, func() bool { return s.Buffered() == 1 }, time.Second)
	ackedImmediately := p.toACount > before
	if ackedImmediately {
		t.Skip("segment carried PSH; immediate ack is the configured policy")
	}
	now := p.sched.Now()
	p.runUntil(t, func() bool { return p.toACount > before }, time.Second)
	if p.sched.Now()-now < 100*time.Millisecond {
		t.Errorf("ack arrived after %v, want delayed-ack timeout", p.sched.Now()-now)
	}
}

func TestPortsAndTuples(t *testing.T) {
	p := newPair(t, Config{})
	c, s := p.connect(t, 80)
	ct, st := c.Tuple(), s.Tuple()
	if ct.RemotePort != 80 || st.LocalPort != 80 {
		t.Errorf("ports: %v / %v", ct, st)
	}
	if ct.LocalPort != st.RemotePort {
		t.Errorf("ephemeral port mismatch: %v / %v", ct, st)
	}
	if ct.LocalAddr != p.aAddr || ct.RemoteAddr != p.bAddr {
		t.Errorf("client tuple addresses: %v", ct)
	}
}

func TestListenerRejectsDuplicatePort(t *testing.T) {
	p := newPair(t, Config{})
	if _, err := p.b.Listen(80, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.b.Listen(80, nil); err == nil {
		t.Error("duplicate listen succeeded")
	}
}

func TestListenerCloseStopsAccepting(t *testing.T) {
	p := newPair(t, Config{})
	l, err := p.b.Listen(80, func(*Conn) { t.Error("accepted after close") })
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	c, err := p.a.Dial(p.bAddr, 80)
	if err != nil {
		t.Fatal(err)
	}
	refused := false
	c.OnClose(func(err error) { refused = err == ErrConnRefused })
	p.runUntil(t, func() bool { return refused }, time.Second)
}

func TestRebindMovesConnection(t *testing.T) {
	p := newPair(t, Config{})
	c, s := p.connect(t, 80)
	_ = c
	newLocal := ipv4.MustParseAddr("10.0.0.99")
	if err := p.b.Rebind(s.Tuple(), newLocal); err != nil {
		t.Fatal(err)
	}
	if s.Tuple().LocalAddr != newLocal {
		t.Errorf("tuple local = %v", s.Tuple().LocalAddr)
	}
	if _, ok := p.b.Lookup(s.Tuple()); !ok {
		t.Error("connection not reachable under the new tuple")
	}
	if err := p.b.Rebind(s.Tuple(), newLocal); err == nil {
		t.Error("rebind onto itself should conflict")
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	p := newPair(t, Config{})
	c, _ := p.connect(t, 80)
	c.Close()
	if _, err := c.Write([]byte("x")); err == nil {
		t.Error("write after close succeeded")
	}
}

// TestRTORollbackAckBeyondSndNxt reproduces the failover-adjacent bug where
// an acknowledgment arriving after an RTO rollback covers data beyond the
// rolled-back sndNxt; it must be accepted (snd_max semantics), not treated
// as an ack of unsent data.
func TestRTORollbackAckBeyondSndNxt(t *testing.T) {
	p := newPair(t, Config{})
	c, s := p.connect(t, 80)
	var got int
	buf := make([]byte, 65536)
	s.OnReadable(func() {
		for {
			n, _ := s.Read(buf)
			if n == 0 {
				return
			}
			got += n
		}
	})
	// Drop every ACK from the server for a while so the client RTOs and
	// rolls back, while the server actually has the data.
	blocked := true
	p.dropToA = func(seg []byte) bool { return blocked && len(RawPayload(seg)) == 0 }
	p.sched.After(700*time.Millisecond, "unblock", func() { blocked = false })

	data := make([]byte, 8000)
	if _, err := c.Write(data); err != nil {
		t.Fatal(err)
	}
	p.runUntil(t, func() bool { return got == len(data) && c.SendQueued() == 0 }, 30*time.Second)
}

// TestDialEphemeralPortExhaustion: once every ephemeral port to a
// destination is in use, Dial must fail with ErrPortInUse rather than
// silently inserting a duplicate tuple (whose segments would demultiplex to
// the older connection and wedge both handshakes).
func TestDialEphemeralPortExhaustion(t *testing.T) {
	p := newPair(t, Config{})
	const ephemeralPorts = 65536 - 49152
	for i := 0; i < ephemeralPorts; i++ {
		if _, err := p.a.Dial(p.bAddr, 80); err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
	}
	if _, err := p.a.Dial(p.bAddr, 80); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("dial past port space: err = %v, want ErrPortInUse", err)
	}
	// A different destination has its own tuple space.
	if _, err := p.a.Dial(p.bAddr, 81); err != nil {
		t.Fatalf("dial to a fresh destination port: %v", err)
	}
}
