package bench

import (
	"bytes"
	"testing"
	"time"
)

// TestCollectTimeseriesShape checks the -timeseries-out workload samples a
// regular grid and actually sees traffic: some counter must be increasing.
func TestCollectTimeseriesShape(t *testing.T) {
	ts, err := CollectTimeseries(200*time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.TimesNs) == 0 || len(ts.Series) == 0 {
		t.Fatalf("empty timeseries: %d rows, %d series", len(ts.TimesNs), len(ts.Series))
	}
	for i := 1; i < len(ts.TimesNs); i++ {
		if ts.TimesNs[i]-ts.TimesNs[i-1] != int64(200*time.Millisecond) {
			t.Fatalf("irregular grid at row %d: %d -> %d", i, ts.TimesNs[i-1], ts.TimesNs[i])
		}
	}
	moved := false
	for _, col := range ts.Series {
		if col.Values[0] != col.Values[len(col.Values)-1] {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("no series changed over the run — the sampler saw no traffic")
	}
	// The eviction-bounded span recorder exports through the same registry;
	// its active-span gauge must be present and populated by the load.
	found := false
	for _, col := range ts.Series {
		if col.Name == "obs_spans_active" {
			found = true
			if col.Values[len(col.Values)-1] == 0 {
				t.Error("obs_spans_active never rose above zero under load")
			}
		}
	}
	if !found {
		t.Error("obs_spans_active series missing from the sampled registry")
	}
}

// TestCollectTimeseriesIdenticalAcrossShardCounts gates the merge: cells
// sample their own registries on a shared sim-time grid, so the merged
// fleet view must be byte-identical however the cells are packed onto
// shards or bench workers.
func TestCollectTimeseriesIdenticalAcrossShardCounts(t *testing.T) {
	run := func(workers, shards int) []byte {
		old := Workers
		Workers = workers
		defer func() { Workers = old }()
		ts, err := CollectTimeseries(200*time.Millisecond, shards)
		if err != nil {
			t.Fatalf("workers=%d shards=%d: %v", workers, shards, err)
		}
		var buf bytes.Buffer
		if err := ts.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := run(1, 1)
	for _, c := range []struct{ workers, shards int }{{4, 1}, {4, 2}} {
		got := run(c.workers, c.shards)
		if !bytes.Equal(base, got) {
			t.Errorf("timeseries differs at workers=%d shards=%d:\n--- base ---\n%s\n--- got ---\n%s",
				c.workers, c.shards, base, got)
		}
	}
}
