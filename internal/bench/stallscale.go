package bench

import (
	"fmt"
	"time"

	"tcpfailover"
	"tcpfailover/internal/apps"
	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/fault"
	"tcpfailover/internal/loadgen"
	"tcpfailover/internal/metrics"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/obs"
)

// --- E14: fleet-scale stall attribution ------------------------------------------
//
// E9 decomposes the client-visible failover stall (detection, ARP announce,
// redirection, ACK turnaround) for ONE hand-driven connection. E14 asks the
// question at fleet scale: when the primary crashes mid-window under
// open-loop web traffic at 1k/10k/100k connections, what stall does EACH
// connection see, and where does its time go? Every connection's stall is
// computed from its recorded lifecycle span (internal/obs.SpanRecorder) and
// attributed per phase against the fleet failure/detect/takeover marks;
// phase and total distributions are aggregated into log-bucketed histograms
// whose p50/p99/p999/max land in BENCH_trajectory.json. All values are
// functions of the seeds only — byte-identical for any bench worker count
// and any shard count (the shard axis is purely a wall-clock knob and is
// deliberately absent from the output).

// DefaultStallScale is the connection-count axis of E14: the approximate
// number of sessions arriving during the measurement window, spread over
// enough testbed cells to stay below per-cell LAN saturation.
var DefaultStallScale = []int{1000, 10000, 100000}

// DefaultStallWindow is E14's per-point measurement window of virtual time.
const DefaultStallWindow = 8 * time.Second

// stallWarmup and stallDrain bracket the window like E12: arrivals run
// unmeasured for the warmup, and in-flight work gets the drain to recover
// after the crash before the point is scored.
const (
	stallWarmup = time.Second
	stallDrain  = 2 * time.Second
)

// stallWorkload is the workload-zoo entry E14 drives.
const stallWorkload = "web"

// stallCells maps a connection count to a cell count: one cell per 1000
// connections, clamped to [2, 64] (two cells so the sharded engine is
// always exercised; 64 is the address plan's ceiling). The per-cell load
// stays well under the ~270 sessions/s LAN saturation of the web workload.
func stallCells(conns int) int {
	c := conns / 1000
	if c < 2 {
		c = 2
	}
	if c > 64 {
		c = 64
	}
	return c
}

// StallPhaseStats are the log-histogram percentiles of one stall phase
// across the fleet (completed stalls only). The histogram's relative
// quantile error is bounded by 1/32 (internal/metrics.LogHistogram).
type StallPhaseStats struct {
	P50  time.Duration `json:"p50_ns"`
	P99  time.Duration `json:"p99_ns"`
	P999 time.Duration `json:"p999_ns"`
	Max  time.Duration `json:"max_ns"`
}

func stallStats(h *metrics.LogHistogram) StallPhaseStats {
	return StallPhaseStats{
		P50:  h.PercentileDuration(50),
		P99:  h.PercentileDuration(99),
		P999: h.PercentileDuration(99.9),
		Max:  h.PercentileDuration(100),
	}
}

// StallScalePoint is one connection-count point of E14. The shard count is
// deliberately not recorded: it must not influence a single byte here.
type StallScalePoint struct {
	Conns       int           `json:"conns"`
	Cells       int           `json:"cells"`
	Workload    string        `json:"workload"`
	LoadPerCell float64       `json:"sessions_per_sec_per_cell"`
	Window      time.Duration `json:"window_ns"`

	// Spans is the number of connection spans recorded across the fleet;
	// Stalled is how many of them completed a measurable failover stall
	// (recovered after the crash with a pre-takeover anchor).
	Spans   int64 `json:"spans"`
	Stalled int64 `json:"stalled"`

	// SpanDigest folds every cell's span-recorder digest (in cell order)
	// into one fleet hash — the determinism gates compare it across worker
	// and shard counts.
	SpanDigest string `json:"span_digest"`

	Total     StallPhaseStats `json:"total"`
	PreCrash  StallPhaseStats `json:"precrash"`
	Detection StallPhaseStats `json:"detection"`
	Announce  StallPhaseStats `json:"announce"`
	Resume    StallPhaseStats `json:"resume"`
	Recovery  StallPhaseStats `json:"recovery"`
}

// StallScale runs E14: for each connection count, a sharded multi-cell
// simulation under open-loop web traffic whose every cell crashes its
// primary mid-window (a correlated fleet failure), scored from the span
// recorders. shards <= 0 selects min(cells, Workers) per point; any value
// produces byte-identical results.
func StallScale(conns []int, shards int) ([]StallScalePoint, error) {
	if len(conns) == 0 {
		conns = DefaultStallScale
	}
	out := make([]StallScalePoint, len(conns))
	for i, n := range conns {
		p, _, err := runStallScale(i, n, DefaultStallWindow, shards)
		if err != nil {
			return nil, fmt.Errorf("stallscale %d conns: %w", n, err)
		}
		out[i] = p
	}
	return out, nil
}

// runStallScale executes one E14 point. It also returns the exact total
// stall of every scored connection (cell order, span-key order within a
// cell), which the percentile cross-check test compares against the
// histogram estimates.
func runStallScale(idx, conns int, window time.Duration, shards int) (StallScalePoint, []time.Duration, error) {
	if window <= 0 {
		window = DefaultStallWindow
	}
	cells := stallCells(conns)
	if shards <= 0 {
		shards = min(cells, Workers)
	}
	stop := stallWarmup + window
	horizon := stop + stallDrain
	crashAt := stallWarmup + window/2
	load := float64(conns) / (float64(cells) * window.Seconds())

	cellOpts := tcpfailover.LANOptions()
	cellOpts.Seed = int64(14000 + 100*idx)
	cellOpts.ServerPorts = []uint16{benchPort}
	cellOpts.Spans = true
	cellOpts.Faults = &fault.Plan{
		Schedule: []fault.Step{{At: crashAt, Op: fault.OpCrashPrimary}},
	}
	ss, err := tcpfailover.NewSharded(tcpfailover.ShardedOptions{
		Cells:     cells,
		Shards:    shards,
		Workers:   Workers,
		Cell:      cellOpts,
		CrossLink: ethernet.XConfig{Latency: 500 * time.Microsecond},
	})
	if err != nil {
		return StallScalePoint{}, nil, err
	}
	for _, cell := range ss.Cells {
		cell.Stream.Use()
		if err := cell.Group.OnEach(func(h *netstack.Host) error {
			_, err := apps.NewHTTPServer(h.TCP(), benchPort)
			return err
		}); err != nil {
			return StallScalePoint{}, nil, fmt.Errorf("cell %d install: %w", cell.Index, err)
		}
	}
	ss.Start()

	spec, err := loadgen.Zoo(stallWorkload, load)
	if err != nil {
		return StallScalePoint{}, nil, err
	}
	for _, cell := range ss.Cells {
		cell.Stream.Use()
		loadgen.New(loadgen.Config{
			Sched:       cell.Sched,
			Stack:       cell.Client.TCP(),
			Addr:        cell.ServiceAddr(),
			Port:        benchPort,
			Spec:        spec,
			Rand:        fault.NewRand(uint64(cellOpts.Seed) + uint64(cell.Index)),
			Stop:        stop,
			MeasureFrom: stallWarmup,
		}).Start(0)
	}
	if err := ss.RunUntil(horizon); err != nil {
		return StallScalePoint{}, nil, err
	}

	p := StallScalePoint{
		Conns:       conns,
		Cells:       cells,
		Workload:    stallWorkload,
		LoadPerCell: load,
		Window:      window,
	}
	var total, precrash, detection, announce, resume, recovery metrics.LogHistogram
	var exact []time.Duration
	digests := make([]uint64, 0, cells)
	for _, cell := range ss.Cells {
		rec := cell.Scenario.Spans
		digests = append(digests, rec.Digest())
		for _, sp := range rec.Spans() {
			p.Spans++
			st, ok := rec.Stall(&sp)
			if !ok {
				continue
			}
			p.Stalled++
			exact = append(exact, st.Total)
			total.ObserveDuration(st.Total)
			precrash.ObserveDuration(st.PreCrash)
			detection.ObserveDuration(st.Detection)
			announce.ObserveDuration(st.Announce)
			resume.ObserveDuration(st.Resume)
			recovery.ObserveDuration(st.Recovery)
		}
	}
	p.SpanDigest = fmt.Sprintf("%016x", obs.MergeSpanDigests(digests))
	p.Total = stallStats(&total)
	p.PreCrash = stallStats(&precrash)
	p.Detection = stallStats(&detection)
	p.Announce = stallStats(&announce)
	p.Resume = stallStats(&resume)
	p.Recovery = stallStats(&recovery)
	addShardEvents(ss)
	return p, exact, nil
}
