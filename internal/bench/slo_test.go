package bench

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// sloSmall is an SLO workload small enough for unit tests: two loads, a
// short window, every (mode, crash) cell still exercised.
func sloSmall() ([]float64, time.Duration) {
	return []float64{20, 60}, 2 * time.Second
}

// TestSLOSmoke runs the small grid once and checks each cell's accounting
// invariants and the experiment's headline claim: the failover crash cell
// must complete about as many requests as its no-crash twin (standard TCP
// loses the rest of the window), and the crash must show up in the tail.
func TestSLOSmoke(t *testing.T) {
	loads, window := sloSmall()
	points, err := SLO("web", loads, window)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2*len(loads)*2 {
		t.Fatalf("got %d cells, want %d", len(points), 2*len(loads)*2)
	}
	byCell := map[[3]any]SLOPoint{}
	for _, p := range points {
		if p.Requests < 0 || p.Completed+p.Failed+p.Outstanding != p.Requests {
			t.Errorf("%s load %g crash=%v: %d completed + %d failed + %d outstanding != %d requests",
				p.Mode, p.Load, p.Crash, p.Completed, p.Failed, p.Outstanding, p.Requests)
		}
		if p.Completed > 0 && (p.P50 <= 0 || p.P99 < p.P50 || p.P999 < p.P99) {
			t.Errorf("%s load %g crash=%v: non-monotone percentiles p50=%v p99=%v p999=%v",
				p.Mode, p.Load, p.Crash, p.P50, p.P99, p.P999)
		}
		if p.Arrivals == 0 || p.Requests == 0 {
			t.Errorf("%s load %g crash=%v: no traffic (arrivals=%d requests=%d)",
				p.Mode, p.Load, p.Crash, p.Arrivals, p.Requests)
		}
		byCell[[3]any{p.Mode, p.Load, p.Crash}] = p
	}
	for _, load := range loads {
		stdCrash := byCell[[3]any{Standard, load, true}]
		stdOK := byCell[[3]any{Standard, load, false}]
		foCrash := byCell[[3]any{Failover, load, true}]
		foOK := byCell[[3]any{Failover, load, false}]
		// Standard TCP loses the post-crash half of the window: its crash
		// cell must complete well under its no-crash twin.
		if stdCrash.Completed*3 > stdOK.Completed*2 {
			t.Errorf("load %g: standard crash completed %d of %d no-crash — crash had no effect?",
				load, stdCrash.Completed, stdOK.Completed)
		}
		// The failover pair keeps serving: within 25%% of its no-crash twin.
		if foCrash.Completed*4 < foOK.Completed*3 {
			t.Errorf("load %g: failover crash completed %d vs %d no-crash — service did not survive",
				load, foCrash.Completed, foOK.Completed)
		}
		// The crash is not free: it must be visible in the failover tail.
		if foCrash.Max <= foOK.P50 {
			t.Errorf("load %g: failover crash max latency %v under no-crash p50 %v — no takeover stall?",
				load, foCrash.Max, foOK.P50)
		}
	}
}

// TestSLOIdenticalAcrossWorkerCounts gates the open-loop experiment's
// determinism: every cell is a pure function of its seed, so the marshalled
// results must be byte-identical for any worker count.
func TestSLOIdenticalAcrossWorkerCounts(t *testing.T) {
	loads, window := sloSmall()
	run := func(workers int) []byte {
		old := Workers
		Workers = workers
		defer func() { Workers = old }()
		points, err := SLO("web", loads, window)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		blob, err := json.MarshalIndent(points, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	serial := run(1)
	parallel := run(4)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("SLO results differ between 1 and 4 workers:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestSLOUnknownWorkload checks the argument paths fail cleanly.
func TestSLOUnknownWorkload(t *testing.T) {
	if _, err := SLO("nope", []float64{1}, time.Second); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
