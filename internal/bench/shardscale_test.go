package bench

import (
	"reflect"
	"testing"

	"tcpfailover/internal/sim"
)

// TestShardScaleDeterministicAcrossShardCounts is the E10 determinism gate
// (CI runs it under -race on every push): the same seed through the E10
// workload at shards 1, 2, and 4 must produce byte-identical per-stream
// execution digests — the shard count may only change wall-clock numbers.
// The three simulations run through parallelEachBudget with a cost of 4
// cores each, the composition rule the sharded engine imposes on the bench
// harness: concurrent simulations x shard workers stays within the Workers
// budget, and results land in config order regardless of completion order.
func TestShardScaleDeterministicAcrossShardCounts(t *testing.T) {
	shardCounts := []int{1, 2, 4}
	const conns = 64 // 8 cells x 8 connections, one of them cross-cell
	points := make([]ShardScalePoint, len(shardCounts))
	digs := make([][]sim.StreamDigest, len(shardCounts))
	if err := parallelEachBudget(len(shardCounts), 4, func(i int) error {
		p, d, err := shardScalePoint(42, conns, shardCounts[i], 0, true)
		if err != nil {
			return err
		}
		points[i] = p
		digs[i] = d
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(digs[0]) == 0 {
		t.Fatal("sequential run produced no stream digests")
	}
	for i := 1; i < len(shardCounts); i++ {
		if !reflect.DeepEqual(digs[i], digs[0]) {
			t.Errorf("shards=%d: per-stream digests diverge from shards=1:\n seq: %+v\n got: %+v",
				shardCounts[i], digs[0], digs[i])
		}
	}
	if points[2].Shards != 4 {
		t.Errorf("requested 4 shards, built %d", points[2].Shards)
	}
	if points[2].CrossPosts == 0 {
		t.Error("4-shard run buffered no cross-domain deliveries; the gate is not exercising the trunks")
	}
	if points[0].CrossPosts != 0 {
		t.Errorf("sequential run reports %d cross-domain posts, want 0", points[0].CrossPosts)
	}
}

// TestShardScaleSteadyStateAllocs is the allocation gate for the sharded
// hot path: buffered cross-domain posts, barrier drains, explicit-key heap
// injection, and trunk frame relay must all be allocation-free in the steady
// state, just like the sequential path E8 gates. Workers is pinned to 1 so
// the measurement sees the per-event path, not the per-window goroutine
// launches (a per-window constant that amortizes to nothing at real
// connection counts but not at this test's 256).
func TestShardScaleSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the gate only means anything in a plain build")
	}
	p, _, err := shardScalePoint(43, 256, 4, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if p.Events == 0 || p.Rounds == 0 {
		t.Fatalf("empty measurement: %+v", p)
	}
	if p.CrossPosts == 0 {
		t.Fatal("no cross-domain deliveries; the gate is not exercising the sharded path")
	}
	// Same bar as E8's gate, denominated in events (~7 events per segment):
	// a real per-event or per-delivery allocation shows up as >= 1.0.
	if p.AllocsPerEvent >= 0.01 {
		t.Errorf("sharded steady-state allocations regressed: %.4f allocs/event (want < 0.01)",
			p.AllocsPerEvent)
	}
}
