package bench

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"
	"time"
)

// stallSmallConns is an E14 point small enough for unit tests: two cells,
// ~150 sessions per cell over a 2s window, every phase of the stall
// attribution still exercised by the mid-window crash.
const stallSmallConns = 300

func stallSmall(t *testing.T, shards int) (StallScalePoint, []time.Duration) {
	t.Helper()
	p, exact, err := runStallScale(0, stallSmallConns, 2*time.Second, shards)
	if err != nil {
		t.Fatal(err)
	}
	return p, exact
}

// TestStallScaleSmoke runs the small point once and checks the experiment's
// basic shape: spans were recorded, a nonempty subset of them completed a
// measurable failover stall, and the per-phase breakdown is sane.
func TestStallScaleSmoke(t *testing.T) {
	p, exact := stallSmall(t, 1)
	if p.Cells != 2 {
		t.Errorf("got %d cells, want 2", p.Cells)
	}
	if p.Spans == 0 {
		t.Fatal("no spans recorded")
	}
	if p.Stalled == 0 {
		t.Fatal("no connection completed a measurable stall — the crash is invisible")
	}
	if p.Stalled > p.Spans {
		t.Errorf("stalled %d > spans %d", p.Stalled, p.Spans)
	}
	if int64(len(exact)) != p.Stalled {
		t.Errorf("exact stall list has %d entries, point reports %d stalled", len(exact), p.Stalled)
	}
	for _, s := range []struct {
		name string
		st   StallPhaseStats
	}{
		{"total", p.Total}, {"precrash", p.PreCrash}, {"detection", p.Detection},
		{"announce", p.Announce}, {"resume", p.Resume}, {"recovery", p.Recovery},
	} {
		// P50..P999 report bucket upper bounds and are monotone; Max is the
		// exact maximum, which a bucket bound may overshoot by up to 1/32.
		if s.st.P50 < 0 || s.st.P99 < s.st.P50 || s.st.P999 < s.st.P99 {
			t.Errorf("%s: non-monotone percentiles %+v", s.name, s.st)
		}
		if s.st.Max+s.st.Max/32+1 < s.st.P999 {
			t.Errorf("%s: exact max %v more than one sub-bucket under p999 %v", s.name, s.st.Max, s.st.P999)
		}
	}
	// The stall is dominated by detection + recovery; a crash mid-window
	// must make the fleet-wide worst total comparable to the detector's
	// declaration time (heartbeats are lost for tens of milliseconds).
	if p.Total.Max < time.Millisecond {
		t.Errorf("worst-case total stall %v implausibly small for a primary crash", p.Total.Max)
	}
	if p.SpanDigest == "" || p.SpanDigest == "0000000000000000" {
		t.Errorf("empty span digest %q", p.SpanDigest)
	}
}

// TestStallScalePercentilesMatchExact is the satellite cross-check: the
// point's log-histogram total percentiles must bracket the exact order
// statistics computed from every scored connection's stall. The histogram
// reports its bucket's inclusive upper bound, so each estimate is >= the
// exact nearest-rank value and overshoots by at most 1/32 (one sub-bucket).
func TestStallScalePercentilesMatchExact(t *testing.T) {
	p, exact := stallSmall(t, 1)
	sorted := append([]time.Duration(nil), exact...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := len(sorted)
	if n == 0 {
		t.Fatal("no exact stalls to cross-check")
	}
	nearestRank := func(pct float64) time.Duration {
		rank := int(float64(n-1)*pct/100.0) + 1
		return sorted[rank-1]
	}
	for _, c := range []struct {
		name  string
		pct   float64
		got   time.Duration
		exact bool
	}{
		{"p50", 50, p.Total.P50, false},
		{"p99", 99, p.Total.P99, false},
		{"p999", 99.9, p.Total.P999, false},
		{"max", 100, p.Total.Max, true},
	} {
		want := nearestRank(c.pct)
		if c.exact {
			if c.got != want {
				t.Errorf("total %s: histogram %v != exact %v (max is exact by construction)", c.name, c.got, want)
			}
			continue
		}
		if c.got < want {
			t.Errorf("total %s: histogram %v undershoots exact %v", c.name, c.got, want)
		}
		if limit := want + want/32 + 1; c.got > limit {
			t.Errorf("total %s: histogram %v overshoots exact %v beyond one sub-bucket (%v)",
				c.name, c.got, want, limit)
		}
	}
}

// TestStallScaleIdenticalAcrossWorkerAndShardCounts is the E14 determinism
// gate (CI runs it under -race): the marshalled point — span digest
// included — must be byte-identical for any bench worker count and any
// shard count, and so must the exact per-connection stall list. The shard
// axis is purely a wall-clock knob.
func TestStallScaleIdenticalAcrossWorkerAndShardCounts(t *testing.T) {
	type cfg struct{ workers, shards int }
	cfgs := []cfg{{1, 1}, {4, 1}, {4, 2}}
	blobs := make([][]byte, len(cfgs))
	exacts := make([][]time.Duration, len(cfgs))
	for i, c := range cfgs {
		old := Workers
		Workers = c.workers
		p, exact := stallSmall(t, c.shards)
		Workers = old
		blob, err := json.MarshalIndent(p, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		blobs[i] = blob
		exacts[i] = exact
	}
	for i := 1; i < len(cfgs); i++ {
		if !bytes.Equal(blobs[i], blobs[0]) {
			t.Errorf("workers=%d shards=%d diverges from workers=1 shards=1:\n--- base ---\n%s\n--- got ---\n%s",
				cfgs[i].workers, cfgs[i].shards, blobs[0], blobs[i])
		}
		if len(exacts[i]) != len(exacts[0]) {
			t.Errorf("workers=%d shards=%d: %d exact stalls vs %d",
				cfgs[i].workers, cfgs[i].shards, len(exacts[i]), len(exacts[0]))
			continue
		}
		for j := range exacts[0] {
			if exacts[i][j] != exacts[0][j] {
				t.Errorf("workers=%d shards=%d: exact stall %d = %v, want %v",
					cfgs[i].workers, cfgs[i].shards, j, exacts[i][j], exacts[0][j])
				break
			}
		}
	}
}
