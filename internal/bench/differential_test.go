package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"tcpfailover/internal/sim"
)

// TestResultsIdenticalAcrossTimerBackends is the differential gate for the
// timing wheel: the wheel only stages events — execution order is always
// decided by the (when, seq) heap — so a full benchmark run must produce
// byte-identical results whether schedulers use the wheel or the plain
// heap. Any divergence means the wheel changed event order, which would
// silently invalidate every deterministic result in the suite. CI runs this
// under -race together with the worker-count test, covering both axes
// (backend × parallelism) of the determinism contract.
func TestResultsIdenticalAcrossTimerBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment twice")
	}
	run := func(b sim.Backend) []byte {
		old := sim.DefaultBackend()
		sim.SetDefaultBackend(b)
		defer sim.SetDefaultBackend(old)
		traj, err := RunAll(smallConfig())
		if err != nil {
			t.Fatalf("backend=%v: %v", b, err)
		}
		blob, err := json.MarshalIndent(traj.Results, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	wheel := run(sim.BackendWheel)
	heap := run(sim.BackendHeap)
	if !bytes.Equal(wheel, heap) {
		t.Errorf("results differ between wheel and heap timer backends:\n--- wheel ---\n%s\n--- heap ---\n%s",
			wheel, heap)
	}
}
