package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"tcpfailover/internal/netbuf"
)

// smallConfig is a workload small enough to run twice in a unit test but
// still covering every experiment family's fan-out shape.
func smallConfig() Config {
	return Config{
		Experiments: []string{"connsetup", "fig3", "fig5", "failover"},
		Conns:       3,
		Reps:        2,
		Stream:      256 * 1024,
		Runs:        2,
		Sizes:       []int64{64, 4096},
	}
}

// TestResultsIdenticalAcrossWorkerCounts is the harness's core invariant:
// every simulation is fully determined by its seed, and aggregation happens
// in config order, so the marshalled results must be byte-identical whether
// the simulations ran serially or fanned out across goroutines.
func TestResultsIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment twice")
	}
	run := func(workers int) []byte {
		old := Workers
		Workers = workers
		defer func() { Workers = old }()
		traj, err := RunAll(smallConfig())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		blob, err := json.MarshalIndent(traj.Results, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	serial := run(1)
	parallel := run(4)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("results differ between 1 and 4 workers:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestNoBufferLeaksAcrossExperiments runs a workload under netbuf's
// leak accounting. Simulations end with packets still in flight (owned by
// queued events), so exact-zero is only checkable per released buffer:
// the live count must never go negative — a double release would panic
// first — and the count of buffers leaked per simulation must stay small
// and bounded, not proportional to the bytes transferred.
func TestNoBufferLeaksAcrossExperiments(t *testing.T) {
	netbuf.SetLeakCheck(true)
	defer netbuf.SetLeakCheck(false)

	const total = 512 * 1024
	if _, err := StreamRates(Standard, total); err != nil {
		t.Fatal(err)
	}
	if _, err := StreamRates(Failover, total); err != nil {
		t.Fatal(err)
	}
	// ~700 buffers would correspond to one windowful of in-flight segments
	// per abandoned simulation; a copy leak on the data path would scale
	// with the ~1400 segments of payload instead.
	if live := netbuf.Live(); live < 0 || live > 100 {
		t.Errorf("live buffers after experiments = %d, want a small non-negative residue", live)
	}
}
