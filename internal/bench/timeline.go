package bench

import (
	"fmt"
	"time"

	"tcpfailover"
	"tcpfailover/internal/apps"
	"tcpfailover/internal/metrics"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/obs"
)

// --- E9 (extension): failover timeline reconstruction --------------------------

// TimelineResult reports E9: the failover window decomposed into the
// phases of obs.Timeline, medians over N crash runs. Sample is run 0's
// full timeline; everything here is a function of the seeds only, so the
// marshalled result is byte-identical across runs — the determinism test
// pins that down.
type TimelineResult struct {
	N                   int           `json:"n"`
	DetectionMedian     time.Duration `json:"detection_median_ns"`
	AnnounceMedian      time.Duration `json:"announce_median_ns"`
	ResumeMedian        time.Duration `json:"resume_median_ns"`
	AckTurnaroundMedian time.Duration `json:"ack_turnaround_median_ns"`
	TotalMedian         time.Duration `json:"total_median_ns"`
	TotalMax            time.Duration `json:"total_max_ns"`
	Sample              obs.Timeline  `json:"sample"`
}

// FailoverTimeline crashes the primary mid-stream n times and reconstructs
// each failover's phase timeline from a flight recorder on the client plus
// the detector/takeover hooks. The router is given a non-zero ARP-table
// update delay so the redirection phase is visible in the breakdown.
func FailoverTimeline(n int) (TimelineResult, error) {
	const total = 512 * 1024
	timelines := make([]obs.Timeline, n)
	err := parallelEach(n, func(i int) error {
		opts := tcpfailover.LANOptions()
		opts.Seed = int64(9000 + i)
		opts.ServerPorts = []uint16{benchPort}
		opts.RouterARPDelay = 500 * time.Microsecond
		sc, err := tcpfailover.NewScenario(opts)
		if err != nil {
			return err
		}
		if err := sc.Group.OnEach(func(h *netstack.Host) error {
			_, err := apps.NewPushServer(h.TCP(), benchPort, total)
			return err
		}); err != nil {
			return err
		}
		// The timeline only needs the tail of the capture (takeover onward),
		// so a modest ring that wraps during the bulk transfer is fine.
		rec := obs.NewRecorder(4096, 64)
		sc.Client.AttachRecorder(rec)
		var marks obs.Marks
		sc.Group.OnPrimaryFailureDetected = func() { marks.DetectorFired = sc.Now() }
		sc.Group.SecondaryBridge().OnTakeover = func() { marks.TakeoverDone = sc.Now() }
		sc.Start()
		conn, err := sc.Client.TCP().Dial(sc.ServiceAddr(), benchPort)
		if err != nil {
			return err
		}
		recv := apps.NewReceiver(conn, sc.Sched)

		crashAt := int64(total/4) + int64(i)*int64(total/(2*n))
		crashed := false
		for !recv.EOF {
			if !sc.Sched.Step() {
				return fmt.Errorf("run %d: queue empty (received=%d)", i, recv.Received)
			}
			if !crashed && recv.Received >= crashAt {
				crashed = true
				marks.FailureInjected = sc.Now()
				sc.Group.CrashPrimary()
			}
			if sc.Now() > time.Hour {
				return fmt.Errorf("run %d: timeout (received=%d)", i, recv.Received)
			}
		}
		if recv.BadAt >= 0 || recv.Received != total {
			return fmt.Errorf("run %d: stream not intact (received=%d bad=%d)",
				i, recv.Received, recv.BadAt)
		}
		tl, err := obs.Analyze(rec.Records(), marks, sc.ServiceAddr())
		if err != nil {
			return fmt.Errorf("run %d: %w", i, err)
		}
		timelines[i] = tl
		addEvents(sc)
		return nil
	})
	if err != nil {
		return TimelineResult{}, err
	}
	var detection, announce, resume, ack, totals metrics.Durations
	for _, tl := range timelines {
		detection.Add(tl.Detection())
		announce.Add(tl.Announce())
		resume.Add(tl.Resume())
		ack.Add(tl.AckTurnaround())
		totals.Add(tl.Total())
	}
	return TimelineResult{
		N:                   n,
		DetectionMedian:     detection.Median(),
		AnnounceMedian:      announce.Median(),
		ResumeMedian:        resume.Median(),
		AckTurnaroundMedian: ack.Median(),
		TotalMedian:         totals.Median(),
		TotalMax:            totals.Max(),
		Sample:              timelines[0],
	}, nil
}

// CollectMetrics runs one instrumented failover scenario (fixed seed,
// primary crashed mid-stream) and returns its metrics registry — the
// workload behind failover-bench -metrics-out. The snapshot is a function
// of the seed only.
func CollectMetrics() (*obs.Registry, error) {
	const total = 256 * 1024
	opts := tcpfailover.LANOptions()
	opts.Seed = 424242
	opts.ServerPorts = []uint16{benchPort}
	sc, err := tcpfailover.NewScenario(opts)
	if err != nil {
		return nil, err
	}
	if err := sc.Group.OnEach(func(h *netstack.Host) error {
		_, err := apps.NewPushServer(h.TCP(), benchPort, total)
		return err
	}); err != nil {
		return nil, err
	}
	sc.Start()
	conn, err := sc.Client.TCP().Dial(sc.ServiceAddr(), benchPort)
	if err != nil {
		return nil, err
	}
	recv := apps.NewReceiver(conn, sc.Sched)
	crashed := false
	for !recv.EOF {
		if !sc.Sched.Step() {
			return nil, fmt.Errorf("collect-metrics: queue empty (received=%d)", recv.Received)
		}
		if !crashed && recv.Received >= total/2 {
			crashed = true
			sc.Group.CrashPrimary()
		}
		if sc.Now() > time.Hour {
			return nil, fmt.Errorf("collect-metrics: timeout (received=%d)", recv.Received)
		}
	}
	return sc.Obs, nil
}
