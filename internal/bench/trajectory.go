package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// Config selects which experiments RunAll executes and with what workload
// parameters. It mirrors the failover-bench command-line flags.
type Config struct {
	// Experiments names the experiments to run: connscale, shardscale,
	// memscale, connsetup, fig3, fig4, fig5, fig6, ablate, failover,
	// faultsweep, failtimeline, adversary, slo, stallscale.
	// Empty or containing "all" runs everything. Execution order is always
	// the canonical order above, regardless of the order named here.
	Experiments []string `json:"experiments"`
	Conns       int      `json:"conns"`  // connections for E1
	Reps        int      `json:"reps"`   // repetitions per data point (E2, E3, E5)
	Stream      int64    `json:"stream"` // stream bytes for E4 (ablations use a quarter)
	Runs        int      `json:"runs"`   // failover-latency runs (E6, E7)
	// Sizes overrides the message-size sweep for figures 3 and 4;
	// nil means Figure3Sizes.
	Sizes []int64 `json:"sizes,omitempty"`
	// FaultRates overrides the loss-rate axis of the fault sweep (E7);
	// nil means DefaultFaultRates.
	FaultRates []float64 `json:"fault_rates,omitempty"`
	// ConnScale overrides the connection-count sweep of E8; nil means
	// DefaultConnScale.
	ConnScale []int `json:"conn_scale,omitempty"`
	// ShardScale overrides the connection-count axis of E10; nil means
	// DefaultShardScale.
	ShardScale []int `json:"shard_scale,omitempty"`
	// ShardCounts overrides the shard-count axis of E10; nil means
	// DefaultShardCounts.
	ShardCounts []int `json:"shard_counts,omitempty"`
	// MemScale overrides the connection-count sweep of E13; nil means
	// DefaultMemScale.
	MemScale []int `json:"mem_scale,omitempty"`
	// SLOLoads overrides the offered-load axis of E12 (sessions/second);
	// nil means DefaultSLOLoads.
	SLOLoads []float64 `json:"slo_loads,omitempty"`
	// SLOWindow overrides E12's per-cell measurement window of virtual
	// time; zero means DefaultSLOWindow.
	SLOWindow time.Duration `json:"slo_window_ns,omitempty"`
	// SLOWorkload names the workload-zoo entry E12 drives; empty means
	// DefaultSLOWorkload.
	SLOWorkload string `json:"slo_workload,omitempty"`
	// StallScale overrides the connection-count axis of E14; nil means
	// DefaultStallScale.
	StallScale []int `json:"stall_scale,omitempty"`
}

// experimentOrder is the canonical execution order; results are emitted in
// this order no matter how Config.Experiments is spelled. connscale runs
// first: it is the one experiment that measures the simulator's own
// wall-clock cost, and running it before the others dirty the heap keeps
// its cache and TLB behaviour representative of a process that is actually
// serving 10k connections rather than one that just churned through eight
// other workloads (measured: ~15% inflation at the 10k point when it runs
// last, even after returning the dirtied heap to the OS).
// shardscale follows immediately: it too measures the simulator's own
// wall-clock cost and wants a heap that has not been churned by the
// virtual-time experiments; memscale follows for the same reason (its cells
// measure the process's own heap, and each cell re-settles it first).
var experimentOrder = []string{"connscale", "shardscale", "memscale", "connsetup", "fig3", "fig4", "fig5", "fig6", "ablate", "failover", "faultsweep", "failtimeline", "adversary", "slo", "stallscale"}

// ExperimentNames lists the valid experiment names in canonical execution
// order (plus the "all" pseudo-name accepted by Config.Experiments).
func ExperimentNames() []string {
	return append([]string(nil), experimentOrder...)
}

// enabled expands Config.Experiments into a membership set, rejecting
// unknown names.
func (c Config) enabled() (map[string]bool, error) {
	set := make(map[string]bool, len(experimentOrder))
	names := c.Experiments
	if len(names) == 0 {
		names = []string{"all"}
	}
	for _, name := range names {
		if name == "all" {
			for _, e := range experimentOrder {
				set[e] = true
			}
			continue
		}
		known := false
		for _, e := range experimentOrder {
			known = known || e == name
		}
		if !known {
			return nil, fmt.Errorf("unknown experiment %q (valid: %s, all)",
				name, strings.Join(experimentOrder, ", "))
		}
		set[name] = true
	}
	return set, nil
}

// Results holds every experiment's outputs in config order. All values are
// functions of the simulation seeds only, so for a fixed Config the
// marshalled Results are byte-identical regardless of the worker count —
// the determinism test pins this down.
type Results struct {
	ConnSetup  []ConnSetupResult `json:"conn_setup,omitempty"` // standard, then failover
	Fig3Std    []TransferPoint   `json:"fig3_standard,omitempty"`
	Fig3Fo     []TransferPoint   `json:"fig3_failover,omitempty"`
	Fig4Std    []TransferPoint   `json:"fig4_standard,omitempty"`
	Fig4Fo     []TransferPoint   `json:"fig4_failover,omitempty"`
	Fig5       []RateResult      `json:"fig5,omitempty"` // standard, then failover
	Fig6Std    []FTPPoint        `json:"fig6_standard,omitempty"`
	Fig6Fo     []FTPPoint        `json:"fig6_failover,omitempty"`
	Ablation   []AblationRow     `json:"ablation,omitempty"`
	Failover   *FailoverResult   `json:"failover,omitempty"`
	FaultSweep []FaultPoint      `json:"fault_sweep,omitempty"`
	Timeline   *TimelineResult   `json:"timeline,omitempty"`
	Adversary  []AdversaryPoint  `json:"adversary,omitempty"`
	SLO        []SLOPoint        `json:"slo,omitempty"`
	StallScale []StallScalePoint `json:"stall_scale,omitempty"`
	// ConnScale, ShardScale, and MemScale are the Results members with
	// host-dependent fields (wall-clock, heap, and allocation counters);
	// the determinism test compares the experiments above, which are
	// functions of the seeds only.
	ConnScale  []ConnScalePoint  `json:"conn_scale,omitempty"`
	ShardScale []ShardScalePoint `json:"shard_scale,omitempty"`
	MemScale   []MemScalePoint   `json:"mem_scale,omitempty"`
}

// ExperimentPerf records one experiment's host-side cost: wall-clock time,
// completed simulations, heap allocations, and executed simulation events.
// Unlike Results these vary run to run; they are the perf_opt trajectory.
type ExperimentPerf struct {
	Name         string  `json:"name"`
	WallNS       int64   `json:"wall_ns"`
	Sims         int64   `json:"sims"`
	NsPerSim     int64   `json:"ns_per_sim"`
	Allocs       int64   `json:"allocs"`
	Events       int64   `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// Perf aggregates the per-experiment cost figures.
type Perf struct {
	Workers     int              `json:"workers"`
	GoMaxProcs  int              `json:"gomaxprocs"`
	WallNS      int64            `json:"wall_ns"`
	Experiments []ExperimentPerf `json:"experiments"`
}

// Trajectory is the machine-readable record of one failover-bench run:
// the configuration, the (deterministic) experiment results, and the
// (host-dependent) performance counters.
type Trajectory struct {
	Config  Config  `json:"config"`
	Results Results `json:"results"`
	Perf    Perf    `json:"perf"`
}

// measure runs one experiment under the perf counters and appends its
// ExperimentPerf row. Allocations are the process-wide Mallocs delta — an
// upper bound that includes harness overhead, which is exactly what the
// optimisation trajectory should charge for.
func (t *Trajectory) measure(name string, fn func() error) error {
	ev0, sims0 := eventTally.Load(), simTally.Load()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	err := fn()
	wall := time.Since(start)
	runtime.ReadMemStats(&ms1)
	p := ExperimentPerf{
		Name:   name,
		WallNS: wall.Nanoseconds(),
		Sims:   simTally.Load() - sims0,
		Allocs: int64(ms1.Mallocs - ms0.Mallocs),
		Events: eventTally.Load() - ev0,
	}
	if p.Sims > 0 {
		p.NsPerSim = p.WallNS / p.Sims
	}
	if wall > 0 {
		p.EventsPerSec = float64(p.Events) / wall.Seconds()
	}
	t.Perf.Experiments = append(t.Perf.Experiments, p)
	return err
}

// RunAll executes the configured experiments in canonical order and returns
// the full trajectory. Each experiment internally fans its independent
// simulations across Workers goroutines.
func RunAll(cfg Config) (*Trajectory, error) {
	want, err := cfg.enabled()
	if err != nil {
		return nil, err
	}
	sizes := cfg.Sizes
	if sizes == nil {
		sizes = Figure3Sizes
	}
	t := &Trajectory{Config: cfg}
	t.Perf.Workers = Workers
	t.Perf.GoMaxProcs = runtime.GOMAXPROCS(0)
	allStart := time.Now()

	if want["connscale"] {
		if err := t.measure("connscale", func() error {
			var err error
			t.Results.ConnScale, err = ConnScale(cfg.ConnScale)
			return err
		}); err != nil {
			return nil, err
		}
	}
	if want["shardscale"] {
		if err := t.measure("shardscale", func() error {
			var err error
			t.Results.ShardScale, err = ShardScale(cfg.ShardScale, cfg.ShardCounts)
			return err
		}); err != nil {
			return nil, err
		}
	}
	if want["memscale"] {
		if err := t.measure("memscale", func() error {
			var err error
			t.Results.MemScale, err = MemScale(cfg.MemScale)
			return err
		}); err != nil {
			return nil, err
		}
	}
	if want["connsetup"] {
		if err := t.measure("connsetup", func() error {
			for _, mode := range []Mode{Standard, Failover} {
				r, err := ConnectionSetup(mode, cfg.Conns)
				if err != nil {
					return fmt.Errorf("connsetup %s: %w", mode, err)
				}
				t.Results.ConnSetup = append(t.Results.ConnSetup, r)
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if want["fig3"] {
		if err := t.measure("fig3", func() error {
			var err error
			if t.Results.Fig3Std, err = ClientToServerSend(Standard, sizes, cfg.Reps); err != nil {
				return fmt.Errorf("fig3 standard: %w", err)
			}
			if t.Results.Fig3Fo, err = ClientToServerSend(Failover, sizes, cfg.Reps); err != nil {
				return fmt.Errorf("fig3 failover: %w", err)
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if want["fig4"] {
		if err := t.measure("fig4", func() error {
			var err error
			if t.Results.Fig4Std, err = ServerToClientTransfer(Standard, sizes, cfg.Reps); err != nil {
				return fmt.Errorf("fig4 standard: %w", err)
			}
			if t.Results.Fig4Fo, err = ServerToClientTransfer(Failover, sizes, cfg.Reps); err != nil {
				return fmt.Errorf("fig4 failover: %w", err)
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if want["fig5"] {
		if err := t.measure("fig5", func() error {
			std, err := StreamRates(Standard, cfg.Stream)
			if err != nil {
				return fmt.Errorf("fig5 standard: %w", err)
			}
			fo, err := StreamRates(Failover, cfg.Stream)
			if err != nil {
				return fmt.Errorf("fig5 failover: %w", err)
			}
			t.Results.Fig5 = []RateResult{std, fo}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if want["fig6"] {
		if err := t.measure("fig6", func() error {
			var err error
			if t.Results.Fig6Std, err = FTPRates(Standard, cfg.Reps); err != nil {
				return fmt.Errorf("fig6 standard: %w", err)
			}
			if t.Results.Fig6Fo, err = FTPRates(Failover, cfg.Reps); err != nil {
				return fmt.Errorf("fig6 failover: %w", err)
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if want["ablate"] {
		if err := t.measure("ablate", func() error {
			var err error
			t.Results.Ablation, err = Ablation(cfg.Stream / 4)
			return err
		}); err != nil {
			return nil, err
		}
	}
	if want["failover"] {
		if err := t.measure("failover", func() error {
			r, err := FailoverLatency(cfg.Runs)
			if err != nil {
				return err
			}
			t.Results.Failover = &r
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if want["faultsweep"] {
		if err := t.measure("faultsweep", func() error {
			var err error
			t.Results.FaultSweep, err = FaultSweep(cfg.FaultRates, cfg.Runs)
			return err
		}); err != nil {
			return nil, err
		}
	}
	if want["failtimeline"] {
		if err := t.measure("failtimeline", func() error {
			r, err := FailoverTimeline(cfg.Runs)
			if err != nil {
				return err
			}
			t.Results.Timeline = &r
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if want["adversary"] {
		if err := t.measure("adversary", func() error {
			var err error
			t.Results.Adversary, err = AdversaryMatrix()
			return err
		}); err != nil {
			return nil, err
		}
	}
	if want["slo"] {
		if err := t.measure("slo", func() error {
			var err error
			t.Results.SLO, err = SLO(cfg.SLOWorkload, cfg.SLOLoads, cfg.SLOWindow)
			return err
		}); err != nil {
			return nil, err
		}
	}
	if want["stallscale"] {
		if err := t.measure("stallscale", func() error {
			var err error
			t.Results.StallScale, err = StallScale(cfg.StallScale, 0)
			return err
		}); err != nil {
			return nil, err
		}
	}
	t.Perf.WallNS = time.Since(allStart).Nanoseconds()
	return t, nil
}
