package bench

import (
	"fmt"
	"time"

	"tcpfailover"
	"tcpfailover/internal/apps"
	"tcpfailover/internal/fault"
	"tcpfailover/internal/metrics"
	"tcpfailover/internal/netstack"
)

// --- E7 (extension): failover latency under link impairment ---------------------

// DefaultFaultRates is the loss-rate axis of the fault sweep.
var DefaultFaultRates = []float64{0, 0.005, 0.01, 0.02, 0.05}

// faultSweepModels are the loss channels the sweep exercises per rate:
// independent (Bernoulli) and bursty (Gilbert–Elliott) loss.
var faultSweepModels = []string{"bernoulli", "bursty"}

// FaultPoint is one (loss model, loss rate) cell of the fault sweep.
type FaultPoint struct {
	Model       string        `json:"model"`
	Rate        float64       `json:"rate"`
	N           int           `json:"n"`
	StallMedian time.Duration `json:"stall_median_ns"`
	StallMax    time.Duration `json:"stall_max_ns"`
	RecvKBps    float64       `json:"recv_kbps"` // median across runs
	AllIntact   bool          `json:"all_intact"`
	Injected    int64         `json:"faults_injected"` // frames dropped across runs
}

// FaultSweep crosses frame-loss rates with failover times: for every
// (model, rate) cell it runs a server-to-client stream through lossy links
// (both the server LAN and the client link), crashes the primary at a
// different point in each run via the failure schedule, and reports the
// client-observed post-crash stall and overall throughput. The zero-rate
// row reproduces E6 on a clean network; the rest show how loss stretches
// the recovery window (lost retransmissions push the client into
// exponential RTO backoff on top of the detection timeout).
func FaultSweep(rates []float64, runs int) ([]FaultPoint, error) {
	if len(rates) == 0 {
		rates = DefaultFaultRates
	}
	const total = 1024 * 1024
	type cell struct {
		model string
		rate  float64
	}
	cells := make([]cell, 0, len(faultSweepModels)*len(rates))
	for _, m := range faultSweepModels {
		for _, r := range rates {
			cells = append(cells, cell{m, r})
		}
	}

	type runOut struct {
		stall    time.Duration
		kbps     float64
		intact   bool
		injected int64
	}
	outs := make([]runOut, len(cells)*runs)
	err := parallelEach(len(outs), func(j int) error {
		c, run := cells[j/runs], j%runs

		// Loss on every transmission of both links; the same rate hits data,
		// ACKs, replication traffic, and heartbeats alike.
		var imps []fault.Impairment
		if c.rate > 0 {
			spec := fault.Bernoulli(c.rate)
			if c.model == "bursty" {
				spec = fault.BurstyLoss(c.rate)
			}
			imps = []fault.Impairment{
				{Link: fault.LinkServerLAN, Models: []fault.Spec{spec}},
				{Link: fault.LinkClientLink, Models: []fault.Spec{spec}},
			}
		}
		// The failover-time axis: spread the crash over the transfer.
		crashAt := 20*time.Millisecond +
			time.Duration(run)*60*time.Millisecond/time.Duration(runs)

		opts := tcpfailover.LANOptions()
		opts.Seed = int64(7000 + j)
		opts.ServerPorts = []uint16{benchPort}
		opts.Faults = &fault.Plan{
			Impairments: imps,
			Schedule:    []fault.Step{{At: crashAt, Op: fault.OpCrashPrimary}},
		}
		sc, err := tcpfailover.NewScenario(opts)
		if err != nil {
			return err
		}
		if err := sc.Group.OnEach(func(h *netstack.Host) error {
			_, err := apps.NewPushServer(h.TCP(), benchPort, total)
			return err
		}); err != nil {
			return err
		}
		sc.Start()
		conn, err := sc.Client.TCP().Dial(sc.ServiceAddr(), benchPort)
		if err != nil {
			return err
		}
		recv := apps.NewReceiver(conn, sc.Sched)
		var established time.Duration
		conn.OnEstablished(func() { established = sc.Now() })
		// Severe loss can exhaust TCP's retransmission budget (MaxRetries)
		// and abort the connection; that is a legitimate outcome of the
		// harshest cells, recorded as a non-intact run rather than a bench
		// failure.
		died := false
		conn.OnClose(func(err error) {
			if err != nil {
				died = true
			}
		})

		// Walk the event loop watching the received-byte timeline; the
		// stall is the longest post-crash gap between progress events.
		// A sender that exhausts its retransmission budget aborts with a
		// single RST; if loss eats that RST the receiving client has
		// nothing to retransmit and hangs silently, so a no-progress
		// window longer than the sender's entire backoff sequence
		// (~0.2 s doubling to the 60 s MaxRTO over MaxRetries ≈ 4.7
		// virtual minutes) also declares the run dead.
		const deadAfter = 10 * time.Minute
		var lastProgress, maxGap time.Duration
		var prevReceived int64
		for !recv.EOF && !died {
			if !sc.Sched.Step() {
				return fmt.Errorf("%s rate %g run %d: queue empty (received=%d)",
					c.model, c.rate, run, recv.Received)
			}
			if recv.Received != prevReceived {
				if lastProgress > crashAt {
					if gap := sc.Now() - lastProgress; gap > maxGap {
						maxGap = gap
					}
				}
				prevReceived = recv.Received
				lastProgress = sc.Now()
			}
			if sc.Now()-lastProgress > deadAfter {
				break
			}
			if sc.Now() > time.Hour {
				return fmt.Errorf("%s rate %g run %d: timeout (received=%d)",
					c.model, c.rate, run, recv.Received)
			}
		}
		end := recv.EOFAt
		if !recv.EOF {
			// Connection died mid-stream: the rate runs to the last byte
			// that arrived. The terminal silence is not a stall (nothing
			// recovered), it is the run's non-intact verdict.
			end = lastProgress
		}
		outs[j] = runOut{
			stall:    maxGap,
			kbps:     metrics.RateKBps(recv.Received, end-established),
			intact:   recv.EOF && recv.BadAt < 0 && recv.Received == total,
			injected: sc.Faults.Stats().Dropped,
		}
		addEvents(sc)
		return nil
	})
	if err != nil {
		return nil, err
	}

	points := make([]FaultPoint, 0, len(cells))
	for ci, c := range cells {
		var stalls metrics.Durations
		var kbps metrics.Floats
		p := FaultPoint{Model: c.model, Rate: c.rate, N: runs, AllIntact: true}
		for _, o := range outs[ci*runs : (ci+1)*runs] {
			stalls.Add(o.stall)
			kbps.Add(o.kbps)
			p.AllIntact = p.AllIntact && o.intact
			p.Injected += o.injected
		}
		p.StallMedian = stalls.Median()
		p.StallMax = stalls.Max()
		p.RecvKBps = kbps.Median()
		points = append(points, p)
	}
	return points, nil
}
