package bench

import "testing"

// TestMemScaleGates is the memory-layout regression gate for the flow-table
// rewrite (CI runs it on every push). At a small connection count it checks
// the structural claims E13 makes at a million connections:
//
//   - the flowtab layout keeps the GC-scannable object count per connection
//     far below one (the tables and arenas are O(1) objects total, so the
//     quotient shrinks with N; anything near 1.0 means a per-connection
//     heap object crept back in),
//   - the old map layout costs at least 2x as many live objects per
//     connection (the issue's acceptance bar — in practice the ratio is
//     in the hundreds),
//   - the drive phase stays allocation-free, mirroring the E8 gate.
//
// Heap counters are exact (runtime.ReadMemStats after runtime.GC), so the
// thresholds are structural, not timing-noise-prone; wall-clock fields are
// reported but never gated.
func TestMemScaleGates(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; heap-object counts only mean anything in a plain build")
	}
	pts, err := MemScale([]int{20_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2 (map, flowtab)", len(pts))
	}
	var mp, ft *MemScalePoint
	for i := range pts {
		switch pts[i].Layout {
		case "map":
			mp = &pts[i]
		case "flowtab":
			ft = &pts[i]
		}
	}
	if mp == nil || ft == nil {
		t.Fatalf("missing layout cell: %+v", pts)
	}
	if ft.ObjectsPerConn >= 1.0 {
		t.Errorf("flowtab layout holds %.4f live objects per connection (want << 1; a per-connection heap object is back)",
			ft.ObjectsPerConn)
	}
	if mp.ObjectsPerConn < 2*ft.ObjectsPerConn || mp.ObjectsPerConn < 1.0 {
		t.Errorf("map/flowtab live-object ratio collapsed: map %.4f vs flowtab %.4f objects/conn (want >= 2x and map >= 1)",
			mp.ObjectsPerConn, ft.ObjectsPerConn)
	}
	// GC budget, relative so host noise cancels: collecting the flowtab
	// heap must not cost more than collecting the map heap — it has two
	// orders of magnitude fewer objects to scan. 1.5x headroom absorbs
	// scheduling jitter; a real regression (per-connection objects back on
	// the heap) lands at map-level cost or worse.
	if ft.ForcedGCNS > mp.ForcedGCNS*3/2 {
		t.Errorf("forced GC over the flowtab heap took %.2fms vs %.2fms for the map heap (want <= 1.5x)",
			float64(ft.ForcedGCNS)/1e6, float64(mp.ForcedGCNS)/1e6)
	}
	if ft.DriveSegments == 0 {
		t.Fatalf("flowtab cell measured no drive segments: %+v", ft)
	}
	if ft.DriveAllocsPerSegment >= 0.01 {
		t.Errorf("drive phase allocations regressed: %.4f allocs/segment (want < 0.01)",
			ft.DriveAllocsPerSegment)
	}
	if ft.DriveNsPerSegment <= 0 {
		t.Errorf("drive ns/segment = %v, want > 0", ft.DriveNsPerSegment)
	}
}
