package bench

import (
	"time"

	"tcpfailover"
	"tcpfailover/internal/apps"
	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/fault"
	"tcpfailover/internal/loadgen"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/obs"
)

// DefaultTimeseriesPeriod is the sampling period behind
// failover-bench -timeseries-out.
const DefaultTimeseriesPeriod = 100 * time.Millisecond

// CollectTimeseries runs a two-cell sharded scenario under open-loop web
// traffic, crashes every primary mid-window, and samples each cell's
// metrics registry on a fixed sim-time grid — the workload behind
// failover-bench -timeseries-out. The per-cell columnar rings are merged
// into one fleet timeseries (values summed, grids aligned), so the output
// is a function of the seeds only: byte-identical for any worker or shard
// count. shards <= 0 selects min(cells, Workers).
func CollectTimeseries(period time.Duration, shards int) (*obs.Timeseries, error) {
	if period <= 0 {
		period = DefaultTimeseriesPeriod
	}
	const (
		cells  = 2
		load   = 50.0 // sessions/s/cell
		warmup = 500 * time.Millisecond
		window = 3 * time.Second
		drain  = time.Second
	)
	stop := warmup + window
	horizon := stop + drain
	crashAt := warmup + window/2
	if shards <= 0 {
		shards = min(cells, Workers)
	}

	cellOpts := tcpfailover.LANOptions()
	cellOpts.Seed = 43434
	cellOpts.ServerPorts = []uint16{benchPort}
	cellOpts.Spans = true
	cellOpts.Faults = &fault.Plan{
		Schedule: []fault.Step{{At: crashAt, Op: fault.OpCrashPrimary}},
	}
	ss, err := tcpfailover.NewSharded(tcpfailover.ShardedOptions{
		Cells:     cells,
		Shards:    shards,
		Workers:   Workers,
		Cell:      cellOpts,
		CrossLink: ethernet.XConfig{Latency: 500 * time.Microsecond},
	})
	if err != nil {
		return nil, err
	}
	for _, cell := range ss.Cells {
		cell.Stream.Use()
		if err := cell.Group.OnEach(func(h *netstack.Host) error {
			_, err := apps.NewHTTPServer(h.TCP(), benchPort)
			return err
		}); err != nil {
			return nil, err
		}
	}
	ss.Start()

	spec, err := loadgen.Zoo("web", load)
	if err != nil {
		return nil, err
	}
	rows := int(horizon / period)
	samplers := make([]*obs.Sampler, len(ss.Cells))
	for i, cell := range ss.Cells {
		cell.Stream.Use()
		loadgen.New(loadgen.Config{
			Sched:       cell.Sched,
			Stack:       cell.Client.TCP(),
			Addr:        cell.ServiceAddr(),
			Port:        benchPort,
			Spec:        spec,
			Rand:        fault.NewRand(uint64(cellOpts.Seed) + uint64(cell.Index)),
			Stop:        stop,
			MeasureFrom: warmup,
		}).Start(0)
		// Every cell samples on the same sim-time grid (a merge requirement),
		// armed as ordinary scheduler events: obs cannot depend on sim, so
		// the simulation drives the sampler, not the other way around.
		s := obs.NewSampler(cell.Obs, period, rows)
		samplers[i] = s
		for k := 1; k <= rows; k++ {
			t := time.Duration(k) * period
			if t >= horizon {
				break
			}
			cell.Sched.AtArg(t, "obs.sample", func(arg any) {
				s.Sample(arg.(time.Duration))
			}, t)
		}
	}
	if err := ss.RunUntil(horizon); err != nil {
		return nil, err
	}
	parts := make([]*obs.Timeseries, len(samplers))
	for i, s := range samplers {
		parts[i] = s.Timeseries()
	}
	return obs.MergeTimeseries(parts...)
}
