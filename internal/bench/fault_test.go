package bench

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestFaultSweepDeterministicAcrossWorkerCounts pins the fault subsystem's
// core guarantee end to end: every impairment draws randomness from a
// stream derived only from the simulation seed, so a faulty run is
// byte-identical no matter how the simulations are scheduled across
// goroutines.
func TestFaultSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sweep twice")
	}
	run := func(workers int) []byte {
		old := Workers
		Workers = workers
		defer func() { Workers = old }()
		points, err := FaultSweep([]float64{0, 0.02}, 2)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		blob, err := json.MarshalIndent(points, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	serial := run(1)
	parallel := run(4)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("fault sweep differs between 1 and 4 workers:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestFaultSweepShape sanity-checks the sweep's physics on a tiny grid:
// loss injects drops, streams survive intact, and the lossy cells cannot
// outrun the clean one.
func TestFaultSweepShape(t *testing.T) {
	points, err := FaultSweep([]float64{0, 0.02}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4 (2 models x 2 rates)", len(points))
	}
	byKey := make(map[string]FaultPoint, len(points))
	for _, p := range points {
		byKey[p.Model+"@"+time.Duration(int64(p.Rate*1000)).String()] = p
		if !p.AllIntact {
			t.Errorf("%s rate %g: stream not intact", p.Model, p.Rate)
		}
		if p.Rate == 0 && p.Injected != 0 {
			t.Errorf("%s rate 0 injected %d drops", p.Model, p.Injected)
		}
		if p.Rate > 0 && p.Injected == 0 {
			t.Errorf("%s rate %g injected no drops", p.Model, p.Rate)
		}
	}
	for _, model := range faultSweepModels {
		var clean, lossy FaultPoint
		for _, p := range points {
			if p.Model != model {
				continue
			}
			if p.Rate == 0 {
				clean = p
			} else {
				lossy = p
			}
		}
		if lossy.RecvKBps >= clean.RecvKBps {
			t.Errorf("%s: lossy rate %.2f KB/s not below clean %.2f KB/s",
				model, lossy.RecvKBps, clean.RecvKBps)
		}
	}
}
