package bench

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"tcpfailover"
	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/sim"
	"tcpfailover/internal/tcp"
)

// --- E10: sharded parallel scaling -------------------------------------------
//
// E8 measures the sequential engine's per-segment cost; E10 measures what the
// sharded engine buys on top of it. The workload replicates the paper's
// testbed into eight cells joined by a trunk ring (tcpfailover.NewSharded),
// spreads the connection count across the cells — one client in eight dials
// the *next* cell's service, so every trunk carries real cross-domain TCP —
// and sweeps the shard count at a fixed connection count. Because the sharded
// engine is byte-identical for every shard count (the differential tests pin
// this), the executed event sequence is one fixed workload and events/sec is
// directly comparable across the sweep: speedup and parallel efficiency fall
// straight out of the ratios.
//
// Like E8, the points run sequentially on an otherwise quiet process; the
// shard workers themselves are the parallelism being measured. On a
// single-core host every point degenerates to the sequential engine plus
// window bookkeeping — the sweep then measures lockstep overhead, not
// speedup, and EventsPerSecPerCore is the honest cross-host comparison.

// DefaultShardScale is the connection-count axis of experiment E10.
var DefaultShardScale = []int{100_000, 1_000_000}

// DefaultShardCounts is the shard-count axis of experiment E10.
var DefaultShardCounts = []int{1, 2, 4, 8}

const (
	// ssCells is the base number of replicated testbed cells (and hence the
	// maximum useful shard count). Eight keeps every shard count in the
	// default sweep an exact divisor: every domain holds the same number of
	// cells, so the load imbalance between domains is the workload's own,
	// not the partition's. The cell count doubles (staying a multiple of 8)
	// whenever the per-cell connection count would crowd the client's
	// ephemeral port space — see ssMaxConnsPerCell.
	ssCells = 8
	// ssMaxConnsPerCell caps connections per cell: each cell's client host
	// dials every connection from one address, and the ephemeral range is
	// 16384 ports (49152-65535). At 10^6 connections the cell count scales
	// to 64 (15625 conns/cell); past 64*16000 the client stacks genuinely
	// run out of ports and Dial reports it.
	ssMaxConnsPerCell = 16000
	// ssCrossDiv: one connection in eight is cross-cell. Enough that every
	// window exchanges real traffic across every trunk; few enough that the
	// workload stays dominated by the per-cell hot path E8 calibrates.
	ssCrossDiv = 8
	// ssTrunkLatency is the inter-cell trunk latency and therefore the
	// conservative lookahead: domains synchronize at least once per 200 us
	// of virtual time. Think-time traffic (250 ms cadence) is insensitive
	// to it; the lockstep cost it sets is part of what E10 measures.
	ssTrunkLatency = 200 * time.Microsecond
	// ssWarmupRounds/ssMeasureRounds are per-connection request/reply
	// rounds before/inside the measured span. Lower than E8's: at 10^6
	// connections a single round is ~25M events, plenty for a stable
	// events/sec figure.
	ssWarmupRounds  = 2
	ssMeasureRounds = 2
	// ssPointRepeats repeats each point's measured span, keeping the repeat
	// with the highest events/sec — same rationale as csPointRepeats: the
	// fastest repeat is the best estimate of intrinsic cost on a shared
	// host.
	ssPointRepeats = 2
)

// ShardScalePoint reports one (connection count, shard count) cell of
// experiment E10. Rounds and Events are functions of the seed and the virtual
// poll instants only — identical across shard counts for a fixed Conns (the
// shardscale determinism gate pins this); WallNS and the derived rates are
// host-dependent. CrossPosts is a partition diagnostic (zero when shards=1:
// nothing crosses a domain boundary). Speedup and Efficiency compare against
// the shards=1 point of the same sweep: Efficiency = Speedup / Workers, where
// Workers is the number of goroutines actually driving domains
// (min(shards, GOMAXPROCS)) — on a 1-core host it is 1 and Efficiency
// measures pure lockstep overhead.
type ShardScalePoint struct {
	Conns               int     `json:"conns"`
	Cells               int     `json:"cells"`
	Shards              int     `json:"shards"`
	Workers             int     `json:"workers"`
	Rounds              int64   `json:"rounds"`
	Events              int64   `json:"events"`
	CrossPosts          int64   `json:"cross_posts"`
	WallNS              int64   `json:"wall_ns"`
	EventsPerSec        float64 `json:"events_per_sec"`
	EventsPerSecPerCore float64 `json:"events_per_sec_per_core"`
	AllocsPerEvent      float64 `json:"allocs_per_event"`
	Speedup             float64 `json:"speedup_vs_sequential"`
	Efficiency          float64 `json:"parallel_efficiency"`
}

// ShardScale runs E10: for each connection count, sweep the shard counts and
// derive speedup/efficiency against the sweep's shards=1 point.
func ShardScale(counts, shardCounts []int) ([]ShardScalePoint, error) {
	if len(counts) == 0 {
		counts = DefaultShardScale
	}
	if len(shardCounts) == 0 {
		shardCounts = DefaultShardCounts
	}
	out := make([]ShardScalePoint, 0, len(counts)*len(shardCounts))
	for i, n := range counts {
		seqEPS := 0.0
		for _, s := range shardCounts {
			p, _, err := shardScalePoint(int64(9000+i), n, s, 0, false)
			if err != nil {
				return nil, fmt.Errorf("shardscale %d conns x %d shards: %w", n, s, err)
			}
			if p.Shards == 1 {
				seqEPS = p.EventsPerSec
			}
			if seqEPS > 0 {
				p.Speedup = p.EventsPerSec / seqEPS
				p.Efficiency = p.Speedup / float64(p.Workers)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// shardScalePoint builds one sharded multi-cell scenario, distributes conns
// across the cells (one in ssCrossDiv dialing the next cell), warms every
// connection up, then measures events/sec over ssPointRepeats spans of
// ssMeasureRounds rounds per connection. workers=0 means the group default,
// min(shards, GOMAXPROCS); the alloc gate pins it to 1 to measure the
// per-event hot path without the per-window goroutine launches. With digest
// set the per-stream execution digests are returned for byte-identity checks.
func shardScalePoint(seed int64, conns, shards, workers int, digest bool) (ShardScalePoint, []sim.StreamDigest, error) {
	debug.FreeOSMemory()
	cells := ssCells
	if cells > conns {
		cells = conns
	}
	for cells < 64 && conns/cells > ssMaxConnsPerCell {
		cells *= 2
	}
	perCell := conns / cells
	opts := tcpfailover.ShardedOptions{
		Cells:     cells,
		Shards:    shards,
		Workers:   workers,
		Cell:      connScaleOptions(seed),
		CrossLink: ethernet.XConfig{BandwidthBps: 10_000_000_000, Latency: ssTrunkLatency},
		Digest:    digest,
	}
	ss, err := tcpfailover.NewSharded(opts)
	if err != nil {
		return ShardScalePoint{}, nil, err
	}

	// One harness per cell: harness state (rounds counter, shared scratch and
	// reply buffers) is only ever touched by its own cell's events, which all
	// run on the cell's domain goroutine.
	hs := make([]*csHarness, len(ss.Cells))
	for ci, cell := range ss.Cells {
		h := &csHarness{sched: cell.Domain, scratch: make([]byte, 2048), reply: make([]byte, csReplyBytes)}
		for i := range h.reply {
			h.reply[i] = byte(i)
		}
		hs[ci] = h
		cell.Stream.Use()
		if err := installOnServers(cell.Scenario, func(host *netstack.Host) error {
			_, err := host.TCP().Listen(benchPort, func(c *tcp.Conn) {
				srv := &csServerConn{h: h, c: c}
				c.OnReadable(srv.pump)
				c.OnWritable(srv.pump)
			})
			return err
		}); err != nil {
			return ShardScalePoint{}, nil, err
		}
	}
	ss.Start()

	// Staggered dials, scheduled under each cell's stream. The first
	// perCell/ssCrossDiv clients of each cell dial the next cell's service
	// through the trunk ring; the rest stay local.
	for ci, cell := range ss.Cells {
		h := hs[ci]
		self := cell.Scenario
		cross := 0
		if len(ss.Cells) > 1 {
			cross = perCell / ssCrossDiv
		}
		next := ss.Cells[(ci+1)%len(ss.Cells)].Scenario
		cell.Stream.Use()
		for i := 0; i < perCell; i++ {
			addr := self.ServiceAddr()
			if i < cross {
				addr = next.ServiceAddr()
			}
			cell.Domain.At(cell.Domain.Now()+time.Duration(i)*csDialStagger, "shardscale.dial", func() {
				conn, err := self.Client.TCP().Dial(addr, benchPort)
				if err != nil {
					h.fail(fmt.Errorf("dial: %w", err))
					return
				}
				cl := &csClient{h: h, c: conn}
				conn.OnEstablished(cl.send)
				conn.OnReadable(cl.readable)
				conn.OnWritable(cl.flush)
			})
		}
	}

	total := func() int64 {
		var t int64
		for _, h := range hs {
			t += h.rounds
		}
		return t
	}
	firstErr := func() error {
		for _, h := range hs {
			if h.err != nil {
				return h.err
			}
		}
		return nil
	}
	const deadline = 10 * time.Minute // virtual time
	runTo := func(target int64) error {
		cond := func() bool { return firstErr() == nil && total() < target }
		if err := ss.RunWhile(cond, deadline); err != nil {
			return err
		}
		if err := firstErr(); err != nil {
			return err
		}
		if total() < target {
			return fmt.Errorf("virtual deadline before %d rounds (got %d)", target, total())
		}
		return nil
	}

	nConns := int64(perCell) * int64(len(ss.Cells))
	if err := runTo(nConns * ssWarmupRounds); err != nil {
		return ShardScalePoint{}, nil, fmt.Errorf("warmup: %w", err)
	}
	// As in E8: collect the setup phase's garbage outside the measured spans.
	runtime.GC()

	p := ShardScalePoint{
		Conns:   int(nConns),
		Cells:   len(ss.Cells),
		Shards:  len(ss.Group.Domains()),
		Workers: ss.Group.Workers(),
	}
	var ms0, ms1 runtime.MemStats
	for rep := 0; rep < ssPointRepeats; rep++ {
		r0 := total()
		ev0 := ss.Executed()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		err := runTo(r0 + nConns*ssMeasureRounds)
		wall := time.Since(start)
		runtime.ReadMemStats(&ms1)
		if err != nil {
			return ShardScalePoint{}, nil, fmt.Errorf("measure: %w", err)
		}
		events := int64(ss.Executed() - ev0)
		if events <= 0 || wall <= 0 {
			return ShardScalePoint{}, nil, fmt.Errorf("empty measured span (%d events in %v)", events, wall)
		}
		eps := float64(events) / wall.Seconds()
		if rep == 0 || eps > p.EventsPerSec {
			p.Rounds = total() - r0
			p.Events = events
			p.WallNS = wall.Nanoseconds()
			p.EventsPerSec = eps
			p.AllocsPerEvent = float64(ms1.Mallocs-ms0.Mallocs) / float64(events)
		}
	}
	p.CrossPosts = ss.Group.CrossPosts()
	p.EventsPerSecPerCore = p.EventsPerSec / float64(p.Workers)
	addShardEvents(ss)
	var digs []sim.StreamDigest
	if digest {
		digs = ss.Digests()
	}
	return p, digs, nil
}
