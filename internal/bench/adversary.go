package bench

import (
	"fmt"
	"time"

	"tcpfailover"
	"tcpfailover/internal/adversary"
	"tcpfailover/internal/apps"
	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/tcp"
)

// --- E11: adversarial attack-outcome matrix ----------------------------------

// adversaryAttacks is the attack axis of the matrix, in report order.
var adversaryAttacks = []string{"rst", "arp", "ackstorm", "synflood"}

// rogueMAC is the attacker station's hardware address — outside every cell
// plan, so no legitimate station answers for it.
var rogueMAC = ethernet.MAC{2, 0, 0, 0, 0, 0xad}

// AdversaryPoint is one cell of the attack-outcome matrix: one attack
// against one topology (standard TCP vs. the failover bridge pair), with
// the hardening knobs off or on. Every field is a function of virtual time
// and the seed, so the matrix is byte-identical across worker and shard
// counts like every other experiment.
type AdversaryPoint struct {
	Attack   string `json:"attack"`
	Topology string `json:"topology"` // "standard" | "failover"
	Hardened bool   `json:"hardened"`
	Outcome  string `json:"outcome"`

	Injected  int64 `json:"frames_injected"`  // frames the attacker forged
	Delivered int64 `json:"bytes_delivered"`  // client payload progress
	SeqDrops  int64 `json:"seq_invalid_drops"` // bridge in-window validation
	ARPFiltered int64 `json:"arp_rejected"`   // bindings the ARP filter refused

	Reflected     int64   `json:"reflected_frames"` // ackstorm: frames at the client
	Amplification float64 `json:"amplification"`    // ackstorm: reflected/injected

	BridgeConns   int   `json:"bridge_conns"`   // primary bridge table at end
	BridgeFlows   int   `json:"bridge_flows"`   // secondary flow cache at end
	EndpointConns int   `json:"endpoint_conns"` // primary host's TCP table at end
	Evictions     int64 `json:"evictions"`      // LRU evictions (both bridges)
	AttackerRx    int64 `json:"attacker_unicast_rx"`

	VirtualMS float64 `json:"virtual_ms"`
}

// AdversaryMatrix runs the E11 adversarial suite: four seeded attack
// models — blind RST injection, forged gratuitous-ARP takeover, stale-data
// ACK-storm reflection, and a spoofed SYN flood — each against both the
// standard-TCP baseline and the failover topology, with the hardening
// knobs (strict endpoint sequence validation, bridge in-window validation,
// ARP-announce authentication, bounded LRU flow tables) off and on.
// 4 attacks x 2 topologies x 2 hardening states = 16 cells.
func AdversaryMatrix() ([]AdversaryPoint, error) {
	type cell struct {
		attack             string
		failover, hardened bool
	}
	var cells []cell
	for _, a := range adversaryAttacks {
		for _, fo := range []bool{false, true} {
			for _, h := range []bool{false, true} {
				cells = append(cells, cell{a, fo, h})
			}
		}
	}
	points := make([]AdversaryPoint, len(cells))
	err := parallelEach(len(cells), func(j int) error {
		c := cells[j]
		p, err := runAdversaryCell(c.attack, c.failover, c.hardened, int64(11000+j))
		if err != nil {
			return fmt.Errorf("adversary %s/%v/hardened=%v: %w", c.attack, c.failover, c.hardened, err)
		}
		points[j] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// runAdversaryCell builds one scenario, wires the workload and the rogue
// station, launches the attack mid-stream, and classifies the outcome.
func runAdversaryCell(attack string, failover, hardened bool, seed int64) (AdversaryPoint, error) {
	const total = 1 << 20  // push-workload bytes
	const echoBytes = 64   // echo-workload request size
	const floodCount = 256 // synflood SYNs
	const stormSegs = 64   // ackstorm forged segments
	const flowCap = 64     // hardened bridge table bound

	opts := tcpfailover.LANOptions()
	opts.Seed = seed
	opts.ServerPorts = []uint16{benchPort}
	opts.Unreplicated = !failover
	if hardened {
		opts.TCP.StrictSeqValidation = true
		opts.ARPAuth = true
		opts.Replication.Bridge.ValidateSeq = true
		opts.Replication.Bridge.MaxConns = flowCap
		opts.Replication.SecondaryMaxFlows = flowCap
	}
	sc, err := tcpfailover.NewScenario(opts)
	if err != nil {
		return AdversaryPoint{}, err
	}

	echo := attack == "ackstorm"
	install := func(h *netstack.Host) error {
		if echo {
			_, err := apps.NewEchoServer(h.TCP(), benchPort)
			return err
		}
		_, err := apps.NewPushServer(h.TCP(), benchPort, total)
		return err
	}
	if failover {
		if err := sc.Group.OnEach(install); err != nil {
			return AdversaryPoint{}, err
		}
	} else if err := install(sc.Primary); err != nil {
		return AdversaryPoint{}, err
	}
	sc.Start()

	// The rogue station snoops the server LAN from t=0; by the time the
	// attack fires it has learned the victim MACs, the next hop toward the
	// client, and the connection's ephemeral port.
	st := adversary.Attach(sc.Sched, sc.ServerLAN, rogueMAC, uint64(seed))

	conn, err := sc.Client.TCP().Dial(sc.ServiceAddr(), benchPort)
	if err != nil {
		return AdversaryPoint{}, err
	}
	recv := apps.NewReceiver(conn, sc.Sched)
	died := false
	conn.OnClose(func(err error) {
		if err != nil {
			died = true
		}
	})
	if echo {
		req := make([]byte, echoBytes)
		apps.Pattern(req, 0)
		conn.OnEstablished(func() { _, _ = conn.Write(req) })
	}

	service := sc.ServiceAddr()
	clientNIC := sc.Client.Iface(0).NIC()
	attackAt := 25 * time.Millisecond
	var measureEnd time.Duration // ackstorm/synflood: run at least this far
	var rxBase, injBase int64

	switch attack {
	case "rst":
		// The probe parameters need the snooped ephemeral port, so the
		// launch itself is an event: everything after it is still a pure
		// function of the seed.
		sc.Sched.At(attackAt, "adversary.launch", func() {
			peer, ok := st.PeerOf(service, benchPort)
			if !ok {
				return
			}
			adversary.RSTInjection{
				Src: peer.Addr, SrcPort: peer.Port,
				Dst: service, DstPort: benchPort,
				Start: attackAt + time.Millisecond,
			}.Launch(st)
		})
	case "arp":
		adversary.ARPTakeover{Victim: service, Start: attackAt}.Launch(st)
	case "ackstorm":
		stormStart := 50 * time.Millisecond
		measureEnd = stormStart + stormSegs*200*time.Microsecond + 300*time.Millisecond
		sc.Sched.At(stormStart, "adversary.launch", func() {
			rxBase = clientNIC.RxFrames()
			injBase = st.Injected
			peer, ok := st.PeerOf(service, benchPort)
			if !ok {
				return
			}
			adversary.AckStorm{
				Src: peer.Addr, SrcPort: peer.Port,
				Dst: service, DstPort: benchPort,
				Segments: stormSegs,
				Start:    stormStart + time.Millisecond,
			}.Launch(st)
		})
	case "synflood":
		srcs := make([]ipv4.Addr, 64)
		for i := range srcs {
			// An unrouted subnet: the SYN-ACKs die at the router and the
			// spoofed sources never answer, so embryonic state persists.
			srcs[i] = ipv4.AddrFrom4(10, 0, 9, byte(1+i))
		}
		adversary.SYNFlood{
			Target: service, Port: benchPort,
			Sources: srcs, Count: floodCount, Start: attackAt,
		}.Launch(st)
		measureEnd = attackAt + floodCount*200*time.Microsecond + 100*time.Millisecond
	}

	// Walk the event loop watching client progress. A stall longer than
	// stallAfter means the stream is dead even though nobody said so — the
	// signature of a wedged bridge or a hijacked address.
	const stallAfter = 5 * time.Second
	var lastProgress time.Duration
	var prevReceived int64
	stalled := false
	wantBytes := int64(total)
	if echo {
		wantBytes = echoBytes
	}
	done := func() bool {
		if echo {
			return recv.Received >= echoBytes && sc.Now() >= measureEnd
		}
		return recv.EOF
	}
	for !done() && !died {
		if !sc.Sched.Step() {
			break
		}
		if recv.Received != prevReceived {
			prevReceived = recv.Received
			lastProgress = sc.Now()
		}
		if sc.Now()-lastProgress > stallAfter {
			stalled = true
			break
		}
		if sc.Now() > time.Hour {
			return AdversaryPoint{}, fmt.Errorf("timeout at %v (received=%d)", sc.Now(), recv.Received)
		}
	}
	// Keep stepping until the attack and its aftermath are fully on the
	// books (the stream can finish before the flood does).
	for sc.Now() < measureEnd && !died {
		if !sc.Sched.Step() {
			break
		}
	}

	p := AdversaryPoint{
		Attack:     attack,
		Topology:   "standard",
		Hardened:   hardened,
		Injected:   st.Injected,
		Delivered:  recv.Received,
		AttackerRx: st.UnicastRx,
		VirtualMS:  float64(sc.Now()) / float64(time.Millisecond),
	}
	if failover {
		p.Topology = "failover"
		pb, sb := sc.Group.PrimaryBridge(), sc.Group.SecondaryBridge()
		p.SeqDrops = pb.Stats().SeqInvalidDrops
		p.BridgeConns = pb.Conns()
		p.BridgeFlows = sb.Flows()
		p.Evictions = pb.Stats().ConnsEvicted + sb.Stats().FlowsEvicted
	}
	p.EndpointConns = len(sc.Primary.TCP().Conns())
	for _, m := range []interface{ RejectedBindings() int64 }{
		sc.Router.Iface(0).ARP(), sc.Router.Iface(1).ARP(),
		sc.Client.Iface(0).ARP(), sc.Primary.Iface(0).ARP(),
	} {
		p.ARPFiltered += m.RejectedBindings()
	}
	if sc.Secondary != nil {
		p.ARPFiltered += sc.Secondary.Iface(0).ARP().RejectedBindings()
	}
	if attack == "ackstorm" {
		p.Reflected = clientNIC.RxFrames() - rxBase
		if inj := st.Injected - injBase; inj > 0 {
			p.Amplification = float64(p.Reflected) / float64(inj)
		}
	}

	completed := recv.Received >= wantBytes && recv.BadAt < 0 && !died
	established := 0
	for _, c := range sc.Primary.TCP().Conns() {
		if c.State() == tcp.StateEstablished {
			established++
		}
	}
	switch attack {
	case "rst":
		switch {
		case died:
			p.Outcome = string(adversary.OutcomeReset)
		case completed:
			p.Outcome = string(adversary.OutcomeIntact)
		case failover && p.BridgeConns == 0:
			// Bridge state gone, endpoints in limbo, client never told.
			p.Outcome = string(adversary.OutcomeWedged)
		case !failover && established == 0:
			// The forged RST tore the server endpoint down.
			p.Outcome = string(adversary.OutcomeReset)
		default:
			p.Outcome = string(adversary.OutcomeWedged)
		}
	case "arp":
		switch {
		case completed:
			p.Outcome = string(adversary.OutcomeIntact)
		case st.UnicastRx > 0:
			// The victim's traffic is arriving at the rogue MAC.
			p.Outcome = string(adversary.OutcomeHijacked)
		default:
			p.Outcome = string(adversary.OutcomeWedged)
		}
	case "ackstorm":
		if p.Amplification >= 0.25 {
			p.Outcome = string(adversary.OutcomeAmplified)
		} else {
			p.Outcome = string(adversary.OutcomeIntact)
		}
	case "synflood":
		grown := p.BridgeConns
		if !failover {
			grown = p.EndpointConns
		}
		if grown >= floodCount*3/4 {
			p.Outcome = string(adversary.OutcomeExhausted)
		} else {
			p.Outcome = string(adversary.OutcomeIntact)
		}
	}
	_ = stalled
	addEvents(sc)
	return p, nil
}
