package bench

import (
	"runtime"
	"sync"
	"sync/atomic"

	"tcpfailover"
)

// Workers is the number of goroutines experiments fan their independent
// simulations across. Each simulation is single-threaded and fully
// determined by its seed, so results are identical for any worker count;
// only wall-clock time changes. Tests pin it to compare.
var Workers = runtime.NumCPU()

// parallelEach runs fn(0), …, fn(n-1) across min(Workers, n) goroutines and
// waits for all of them. Callers communicate results through index-addressed
// slots, and the error reported is the lowest-indexed one, so the outcome is
// independent of scheduling.
func parallelEach(n int, fn func(i int) error) error {
	return parallelEachBudget(n, 1, fn)
}

// parallelEachBudget is parallelEach for simulations that are themselves
// parallel: costPerSim is the number of cores one simulation occupies (its
// shard-worker count), and the fan-out is limited to Workers/costPerSim
// concurrent simulations so that simulations x shard workers never exceeds
// the Workers budget (GOMAXPROCS by default). Aggregation stays config-order:
// results land in index-addressed slots and the lowest-indexed error wins,
// exactly as in parallelEach, so mixing sharded and sequential simulations
// never reorders the output.
func parallelEachBudget(n, costPerSim int, fn func(i int) error) error {
	if costPerSim < 1 {
		costPerSim = 1
	}
	w := Workers / costPerSim
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for range w {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// eventTally and simTally accumulate the number of simulation events
// executed and simulations completed across all experiments (and workers);
// the trajectory records per-experiment deltas as throughput figures.
var (
	eventTally atomic.Int64
	simTally   atomic.Int64
)

// addEvents credits a finished simulation's executed events to the tallies.
func addEvents(sc *tcpfailover.Scenario) {
	eventTally.Add(int64(sc.Sched.Executed()))
	simTally.Add(1)
}

// addShardEvents is addEvents for a sharded simulation: one simulation, with
// events summed across its domain schedulers.
func addShardEvents(ss *tcpfailover.ShardedScenario) {
	eventTally.Add(int64(ss.Executed()))
	simTally.Add(1)
}
