package bench

import (
	"runtime"
	"sync"
	"sync/atomic"

	"tcpfailover"
)

// Workers is the number of goroutines experiments fan their independent
// simulations across. Each simulation is single-threaded and fully
// determined by its seed, so results are identical for any worker count;
// only wall-clock time changes. Tests pin it to compare.
var Workers = runtime.NumCPU()

// parallelEach runs fn(0), …, fn(n-1) across min(Workers, n) goroutines and
// waits for all of them. Callers communicate results through index-addressed
// slots, and the error reported is the lowest-indexed one, so the outcome is
// independent of scheduling.
func parallelEach(n int, fn func(i int) error) error {
	w := Workers
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for range w {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// eventTally and simTally accumulate the number of simulation events
// executed and simulations completed across all experiments (and workers);
// the trajectory records per-experiment deltas as throughput figures.
var (
	eventTally atomic.Int64
	simTally   atomic.Int64
)

// addEvents credits a finished simulation's executed events to the tallies.
func addEvents(sc *tcpfailover.Scenario) {
	eventTally.Add(int64(sc.Sched.Executed()))
	simTally.Add(1)
}
