package bench

import "testing"

// TestConnScaleSteadyStateAllocs is the allocation regression gate for the
// connection-scale hot path (CI runs it on every push). In the measured
// steady state — connections established, buffers pooled, timers recycling
// through the wheel — the simulator must not allocate per segment; the
// harness itself contributes a handful of per-batch allocations (runTo
// closures, MemStats bookkeeping), so the per-segment quotient over
// thousands of segments must stay far below one.
func TestConnScaleSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the gate only means anything in a plain build")
	}
	pts, err := ConnScale([]int{50})
	if err != nil {
		t.Fatal(err)
	}
	p := pts[0]
	if p.Segments == 0 || p.Rounds == 0 {
		t.Fatalf("empty measurement: %+v", p)
	}
	// 0.01 allocs/segment = one allocation per hundred segments; a real
	// per-segment allocation on any hot path shows up as >= 1.0.
	if p.AllocsPerSegment >= 0.01 {
		t.Errorf("steady-state allocations regressed: %.4f allocs/segment (want < 0.01)",
			p.AllocsPerSegment)
	}
	if p.MedianNsPerSegment <= 0 {
		t.Errorf("median ns/segment = %v, want > 0", p.MedianNsPerSegment)
	}
}

// TestConnScaleTracingSteadyStateAllocs is the tracing allocation gate (CI
// runs it on every push): the same E8 steady-state workload with the fleet
// span recorder attached — every in-order delivery touching a span slot,
// every segment branching on the takeover mark — must allocate exactly as
// little as the untraced run. Span storage is table+slab, so once the
// connection set is established the recorder's hot path is index-addressed
// stores only.
func TestConnScaleTracingSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the gate only means anything in a plain build")
	}
	p, spans, err := connScalePoint(8100, 50, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.Segments == 0 || p.Rounds == 0 {
		t.Fatalf("empty measurement: %+v", p)
	}
	if spans != 50 {
		t.Fatalf("recorded %d spans, want one per connection (50)", spans)
	}
	if p.AllocsPerSegment >= 0.01 {
		t.Errorf("tracing added steady-state allocations: %.4f allocs/segment (want < 0.01)",
			p.AllocsPerSegment)
	}
}
