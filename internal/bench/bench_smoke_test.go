package bench

import (
	"testing"
	"time"
)

// Smoke tests: every experiment of the harness runs end-to-end with minimal
// parameters, so the benchmark code cannot rot while only go test runs in
// CI. Result sanity (not calibration) is asserted.

func TestConnectionSetupSmoke(t *testing.T) {
	for _, mode := range []Mode{Standard, Failover} {
		r, err := ConnectionSetup(mode, 3)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if r.Median <= 0 || r.Max < r.Median || r.Min > r.Median {
			t.Errorf("%v: implausible stats %+v", mode, r)
		}
		if r.Median > 5*time.Millisecond {
			t.Errorf("%v: connection setup %v, want sub-millisecond scale", mode, r.Median)
		}
	}
}

func TestConnectionSetupFailoverSlower(t *testing.T) {
	std, err := ConnectionSetup(Standard, 3)
	if err != nil {
		t.Fatal(err)
	}
	fo, err := ConnectionSetup(Failover, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fo.Median <= std.Median {
		t.Errorf("failover setup (%v) not slower than standard (%v)", fo.Median, std.Median)
	}
	// The paper's ratio is 1.72x; hold the reproduction within a loose band.
	ratio := float64(fo.Median) / float64(std.Median)
	if ratio < 1.2 || ratio > 2.5 {
		t.Errorf("setup ratio %.2f outside [1.2, 2.5]", ratio)
	}
}

func TestClientToServerSendSmoke(t *testing.T) {
	sizes := []int64{1024, 131072}
	pts, err := ClientToServerSend(Failover, sizes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Median <= 0 || pts[1].Median <= pts[0].Median {
		t.Errorf("implausible curve: %+v", pts)
	}
}

func TestServerToClientTransferSmoke(t *testing.T) {
	pts, err := ServerToClientTransfer(Standard, []int64{4096}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Median <= 0 || pts[0].Median > 100*time.Millisecond {
		t.Errorf("4 KB reply took %v", pts[0].Median)
	}
}

func TestStreamRatesSmoke(t *testing.T) {
	std, err := StreamRates(Standard, 2*1024*1024)
	if err != nil {
		t.Fatal(err)
	}
	fo, err := StreamRates(Failover, 2*1024*1024)
	if err != nil {
		t.Fatal(err)
	}
	if std.SendKBps <= 0 || std.RecvKBps <= 0 {
		t.Fatalf("zero standard rates: %+v", std)
	}
	// The paper's headline asymmetry: the receive direction suffers more.
	if !(fo.RecvKBps < fo.SendKBps) {
		t.Errorf("failover recv (%.0f) not below send (%.0f)", fo.RecvKBps, fo.SendKBps)
	}
	if !(fo.SendKBps < std.SendKBps) {
		t.Errorf("failover send (%.0f) not below standard (%.0f)", fo.SendKBps, std.SendKBps)
	}
}

func TestFTPRatesSmoke(t *testing.T) {
	pts, err := FTPRates(Failover, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("%d points, want 5 files", len(pts))
	}
	for _, p := range pts {
		if p.GetKBps <= 0 || p.PutKBps <= 0 {
			t.Errorf("%s: zero rate %+v", p.Name, p)
		}
	}
	// Gets grow toward the WAN plateau.
	if !(pts[0].GetKBps < pts[len(pts)-1].GetKBps) {
		t.Errorf("tiny-file get (%.1f) not below large-file get (%.1f)",
			pts[0].GetKBps, pts[len(pts)-1].GetKBps)
	}
}

func TestAblationSmoke(t *testing.T) {
	rows, err := Ablation(2 * 1024 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d ablation rows, want 5", len(rows))
	}
	for _, r := range rows {
		if r.SendKBps <= 0 || r.RecvKBps <= 0 {
			t.Errorf("%s: zero rates", r.Name)
		}
	}
}

func TestFailoverLatencySmoke(t *testing.T) {
	r, err := FailoverLatency(2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.AllIntact {
		t.Error("stream damaged across failover")
	}
	if r.StallMedian <= 0 || r.StallMedian > 5*time.Second {
		t.Errorf("stall median %v implausible", r.StallMedian)
	}
}
