package bench

import (
	"os"
	"testing"
	"time"

	"tcpfailover"
	"tcpfailover/internal/apps"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/trace"
)

// TestDebugStream reproduces stream-rate runs with an optional packet
// trace (TCPFAILOVER_TRACE=1).
func TestDebugStream(t *testing.T) {
	if os.Getenv("TCPFAILOVER_TRACE") == "" {
		t.Skip("set TCPFAILOVER_TRACE=1 to debug")
	}
	sc, err := scenario(Standard, 4000, benchPort)
	if err != nil {
		t.Fatal(err)
	}
	if err := installOnServers(sc, func(h *netstack.Host) error {
		_, err := apps.NewSinkServer(h.TCP(), benchPort)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	sc.Start()
	tr := trace.New(os.Stderr)
	tr.Attach(sc.Client)
	tr.Attach(sc.Primary)
	bt, err := apps.NewBulkSend(sc.Client.TCP(), sc.Sched, sc.ServiceAddr(), benchPort, 1024*1024)
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	bt.OnClosed = func(error) { closed = true }
	err = sc.RunUntil(func() bool { return closed }, 10*time.Minute)
	t.Logf("err=%v now=%v sent=%d done=%v state=%v", err, sc.Now(), bt.Sent, bt.Done, bt.Conn.State())
	_ = tcpfailover.ClientAddr
}

func TestDebugStreamRates(t *testing.T) {
	if os.Getenv("TCPFAILOVER_TRACE") == "" {
		t.Skip("set TCPFAILOVER_TRACE=1 to debug")
	}
	r, err := StreamRates(Standard, 16*1024*1024)
	t.Logf("r=%+v err=%v", r, err)
}

func TestDebugReqReply(t *testing.T) {
	if os.Getenv("TCPFAILOVER_TRACE") == "" {
		t.Skip("set TCPFAILOVER_TRACE=1 to debug")
	}
	sc, err := scenario(Standard, 3000, benchPort)
	if err != nil {
		t.Fatal(err)
	}
	if err := installOnServers(sc, func(h *netstack.Host) error {
		_, err := apps.NewReqReplyServer(h.TCP(), benchPort)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	sc.Start()
	tr := trace.New(os.Stderr)
	tr.Attach(sc.Client)
	tr.Attach(sc.Primary)
	cl, err := apps.NewReqReplyClient(sc.Client.TCP(), sc.Sched, sc.ServiceAddr(), benchPort)
	if err != nil {
		t.Fatal(err)
	}
	done := false
	var elapsed time.Duration
	cl.Request(4096, func(e time.Duration) { elapsed = e; done = true })
	_ = sc.RunUntil(func() bool { return done }, time.Minute)
	t.Logf("elapsed=%v", elapsed)
}
