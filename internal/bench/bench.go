// Package bench implements the paper's evaluation (section 9) as
// reproducible experiments over the simulated testbed, plus an extension
// experiment measuring failover latency. Each experiment builds fresh
// scenarios, drives the workload in virtual time, and reports statistics in
// the units the paper uses. The cmd/failover-bench tool prints each result
// next to the paper's published numbers; bench_test.go exposes each as a
// testing.B benchmark.
package bench

import (
	"fmt"
	"time"

	"tcpfailover"
	"tcpfailover/internal/apps"
	"tcpfailover/internal/metrics"
	"tcpfailover/internal/netstack"
)

// Mode selects the baseline or the replicated system.
type Mode int

// Modes.
const (
	Standard Mode = iota + 1 // unreplicated server, plain TCP
	Failover                 // replicated server behind the bridges
)

// String names the mode the way the paper's tables do.
func (m Mode) String() string {
	if m == Standard {
		return "standard TCP"
	}
	return "TCP Failover"
}

// MarshalJSON writes the mode's name rather than its ordinal, so the
// trajectory file is readable without this package's constants.
func (m Mode) MarshalJSON() ([]byte, error) {
	return []byte(`"` + m.String() + `"`), nil
}

// Figure3Sizes are the paper's message lengths (64 bytes to 1 MByte).
var Figure3Sizes = []int64{
	64, 256, 1024, 4096, 16384, 32768, 65536,
	131072, 262144, 524288, 1048576,
}

// SendPacing models the send(2) call cost on the paper's client (system
// call entry plus user-to-kernel copy); it shapes the sub-buffer-size
// region of Figure 3.
var SendPacing = apps.Pacing{Fixed: 20 * time.Microsecond, PerKB: 10 * time.Microsecond}

// FTPPutPacing models the user-space FTP client's write-loop cost, which
// dominates the paper's figure 6 put rates for files that fit in the send
// buffer (calibrated; see EXPERIMENTS.md).
var FTPPutPacing = apps.Pacing{Fixed: 100 * time.Microsecond, PerKB: 300 * time.Microsecond}

const benchPort = 9000

// scenario builds a LAN scenario for the mode with an echo-style port
// reserved for the experiment apps.
func scenario(mode Mode, seed int64, ports ...uint16) (*tcpfailover.Scenario, error) {
	opts := tcpfailover.LANOptions()
	opts.Seed = seed
	opts.Unreplicated = mode == Standard
	opts.ServerPorts = ports
	return tcpfailover.NewScenario(opts)
}

// installOnServers runs the installer on the server host(s).
func installOnServers(sc *tcpfailover.Scenario, install func(h *netstack.Host) error) error {
	if sc.Chain != nil {
		return sc.Chain.OnEach(install)
	}
	if sc.Group != nil {
		return sc.Group.OnEach(install)
	}
	return install(sc.Primary)
}

// --- E1: connection setup time ----------------------------------------------

// ConnSetupResult reports experiment E1.
type ConnSetupResult struct {
	Mode   Mode          `json:"mode"`
	N      int           `json:"n"`
	Median time.Duration `json:"median_ns"`
	Max    time.Duration `json:"max_ns"`
	Min    time.Duration `json:"min_ns"`
}

// ConnectionSetup measures the client-observed connect() latency over n
// connections with warm ARP caches (paper section 9, first measurement).
// The n independent simulations run across Workers goroutines; each is
// fully determined by its seed, so the result is the same for any worker
// count.
func ConnectionSetup(mode Mode, n int) (ConnSetupResult, error) {
	durs := make([]time.Duration, n)
	err := parallelEach(n, func(i int) error {
		sc, err := scenario(mode, int64(1000+i), benchPort)
		if err != nil {
			return err
		}
		if err := installOnServers(sc, func(h *netstack.Host) error {
			_, err := apps.NewSinkServer(h.TCP(), benchPort)
			return err
		}); err != nil {
			return err
		}
		sc.Start()
		// Let heartbeats settle so detector traffic is steady-state.
		if err := sc.Run(5 * time.Millisecond); err != nil {
			return err
		}
		start := sc.Now()
		conn, err := sc.Client.TCP().Dial(sc.ServiceAddr(), benchPort)
		if err != nil {
			return err
		}
		established := time.Duration(0)
		conn.OnEstablished(func() { established = sc.Now() })
		if err := sc.RunUntil(func() bool { return established > 0 }, start+5*time.Second); err != nil {
			return fmt.Errorf("connection %d: %w", i, err)
		}
		durs[i] = established - start
		conn.Abort()
		addEvents(sc)
		return nil
	})
	if err != nil {
		return ConnSetupResult{}, err
	}
	var d metrics.Durations
	for _, v := range durs {
		d.Add(v)
	}
	return ConnSetupResult{Mode: mode, N: n, Median: d.Median(), Max: d.Max(), Min: d.Min()}, nil
}

// --- E2: Figure 3, client-to-server send time --------------------------------

// TransferPoint is one curve point of Figures 3 and 4.
type TransferPoint struct {
	Size   int64         `json:"size"`
	Median time.Duration `json:"median_ns"`
}

// ClientToServerSend measures, per message size, the time for the client
// application to pass a message to the stack (the paper's Figure 3): "the
// send call returns when the application has passed the last byte to the
// stack, not when the last byte has been put on the wire."
func ClientToServerSend(mode Mode, sizes []int64, reps int) ([]TransferPoint, error) {
	// Flatten the size × rep grid into independent jobs; each simulation's
	// outcome depends only on (mode, size, seed), so the fan-out preserves
	// the sequential results exactly.
	durs := make([]time.Duration, len(sizes)*reps)
	err := parallelEach(len(durs), func(j int) error {
		size, rep := sizes[j/reps], j%reps
		sc, err := scenario(mode, int64(2000+rep), benchPort)
		if err != nil {
			return err
		}
		if err := installOnServers(sc, func(h *netstack.Host) error {
			_, err := apps.NewSinkServer(h.TCP(), benchPort)
			return err
		}); err != nil {
			return err
		}
		sc.Start()
		tr, err := apps.NewBulkSendPaced(sc.Client.TCP(), sc.Sched,
			sc.ServiceAddr(), benchPort, size, SendPacing)
		if err != nil {
			return err
		}
		if err := sc.RunUntil(func() bool { return tr.Done || tr.Err != nil },
			10*time.Minute); err != nil {
			return fmt.Errorf("size %d rep %d: %w", size, rep, err)
		}
		if tr.Err != nil {
			return fmt.Errorf("size %d rep %d: %w", size, rep, tr.Err)
		}
		durs[j] = tr.SendDone - tr.Established
		addEvents(sc)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]TransferPoint, 0, len(sizes))
	for si, size := range sizes {
		var d metrics.Durations
		for _, v := range durs[si*reps : (si+1)*reps] {
			d.Add(v)
		}
		out = append(out, TransferPoint{Size: size, Median: d.Median()})
	}
	return out, nil
}

// --- E3: Figure 4, server-to-client transfer ---------------------------------

// ServerToClientTransfer measures, per reply size, the time from the client
// starting to send a 4-byte request until it receives the last byte of the
// reply (the paper's Figure 4).
func ServerToClientTransfer(mode Mode, sizes []int64, reps int) ([]TransferPoint, error) {
	durs := make([]time.Duration, len(sizes)*reps)
	err := parallelEach(len(durs), func(j int) error {
		size, rep := sizes[j/reps], j%reps
		sc, err := scenario(mode, int64(3000+rep), benchPort)
		if err != nil {
			return err
		}
		if err := installOnServers(sc, func(h *netstack.Host) error {
			_, err := apps.NewReqReplyServer(h.TCP(), benchPort)
			return err
		}); err != nil {
			return err
		}
		sc.Start()
		cl, err := apps.NewReqReplyClient(sc.Client.TCP(), sc.Sched,
			sc.ServiceAddr(), benchPort)
		if err != nil {
			return err
		}
		var elapsed time.Duration
		done := false
		cl.Request(size, func(e time.Duration) {
			elapsed = e
			done = true
		})
		if err := sc.RunUntil(func() bool { return done }, 10*time.Minute); err != nil {
			return fmt.Errorf("size %d rep %d: %w", size, rep, err)
		}
		durs[j] = elapsed
		cl.Conn.Abort()
		addEvents(sc)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]TransferPoint, 0, len(sizes))
	for si, size := range sizes {
		var d metrics.Durations
		for _, v := range durs[si*reps : (si+1)*reps] {
			d.Add(v)
		}
		out = append(out, TransferPoint{Size: size, Median: d.Median()})
	}
	return out, nil
}

// --- E4: Figure 5, stream rates ----------------------------------------------

// RateResult reports experiment E4 for one mode.
type RateResult struct {
	Mode       Mode          `json:"mode"`
	Bytes      int64         `json:"bytes"`
	SendKBps   float64       `json:"send_kbps"` // client-to-server
	RecvKBps   float64       `json:"recv_kbps"` // server-to-client
	SendElapse time.Duration `json:"send_elapse_ns"`
	RecvElapse time.Duration `json:"recv_elapse_ns"`
}

// StreamRates measures sustained send and receive rates with streams of
// total bytes (the paper's Figure 5 uses 100 MBytes).
func StreamRates(mode Mode, total int64) (RateResult, error) {
	return streamRates(mode, total, nil)
}

// streamRates is StreamRates with an optional scenario-option mutator,
// which the ablation experiment uses to toggle individual design choices.
func streamRates(mode Mode, total int64, mutate func(*tcpfailover.Options)) (RateResult, error) {
	res := RateResult{Mode: mode, Bytes: total}

	build := func(seed int64) (*tcpfailover.Scenario, error) {
		opts := tcpfailover.LANOptions()
		opts.Seed = seed
		opts.Unreplicated = mode == Standard
		opts.ServerPorts = []uint16{benchPort}
		if mutate != nil {
			mutate(&opts)
		}
		return tcpfailover.NewScenario(opts)
	}

	// The two directions are independent simulations (seeds 4000 and 4001)
	// writing disjoint fields of res; run them on separate workers.
	// parallelEach reports the lowest-indexed error, so a send-direction
	// failure wins, matching the old sequential order.
	err := parallelEach(2, func(dir int) error {
		if dir == 0 {
			// Send direction: client -> server.
			sc, err := build(4000)
			if err != nil {
				return err
			}
			var sink *apps.SinkServer
			if err := installOnServers(sc, func(h *netstack.Host) error {
				s, err := apps.NewSinkServer(h.TCP(), benchPort)
				if sink == nil {
					sink = s
				}
				return err
			}); err != nil {
				return err
			}
			sc.Start()
			tr, err := apps.NewBulkSend(sc.Client.TCP(), sc.Sched, sc.ServiceAddr(), benchPort, total)
			if err != nil {
				return err
			}
			if err := sc.RunUntil(func() bool { return sink.Received >= total || tr.Err != nil },
				24*time.Hour); err != nil {
				return fmt.Errorf("send stream: %w", err)
			}
			if tr.Err != nil {
				return fmt.Errorf("send stream: %w", tr.Err)
			}
			// Rate over the whole transfer: connection established until the
			// server application has consumed the last byte.
			res.SendElapse = sc.Now() - tr.Established
			res.SendKBps = metrics.RateKBps(total, res.SendElapse)
			addEvents(sc)
			return nil
		}

		// Receive direction: server -> client.
		sc2, err := build(4001)
		if err != nil {
			return err
		}
		if err := installOnServers(sc2, func(h *netstack.Host) error {
			_, err := apps.NewPushServer(h.TCP(), benchPort, total)
			return err
		}); err != nil {
			return err
		}
		sc2.Start()
		conn, err := sc2.Client.TCP().Dial(sc2.ServiceAddr(), benchPort)
		if err != nil {
			return err
		}
		recv := apps.NewReceiver(conn, sc2.Sched)
		var established2 time.Duration
		conn.OnEstablished(func() { established2 = sc2.Now() })
		if err := sc2.RunUntil(func() bool { return recv.EOF }, 24*time.Hour); err != nil {
			return fmt.Errorf("recv stream: %w", err)
		}
		if recv.BadAt >= 0 {
			return fmt.Errorf("recv stream corrupted at %d", recv.BadAt)
		}
		res.RecvElapse = recv.EOFAt - established2
		res.RecvKBps = metrics.RateKBps(recv.Received, res.RecvElapse)
		addEvents(sc2)
		return nil
	})
	return res, err
}

// --- E5: Figure 6, FTP over a WAN ---------------------------------------------

// FTPPoint is one row of the paper's Figure 6.
type FTPPoint struct {
	Name    string  `json:"name"`
	FileKB  float64 `json:"file_kb"`
	GetKBps float64 `json:"get_kbps"`
	PutKBps float64 `json:"put_kbps"`
}

// FTPRates transfers the paper's file set over the WAN profile and reports
// median get and put rates as indicated by the FTP client.
func FTPRates(mode Mode, reps int) ([]FTPPoint, error) {
	files := apps.DefaultFTPFiles()
	names := files.Names()

	// Each rep is one full FTP session in its own simulation; collect each
	// rep's rates in a private slot, then merge in rep order so the median
	// input sequence matches the sequential run.
	type repRates struct {
		get, put map[string]float64
		gotGet   map[string]bool
		gotPut   map[string]bool
	}
	slots := make([]repRates, reps)
	err := parallelEach(reps, func(rep int) error {
		opts := tcpfailover.WANOptions()
		opts.Seed = int64(5000 + rep)
		opts.Unreplicated = mode == Standard
		opts.ServerPorts = []uint16{apps.FTPControlPort, apps.FTPDataPort}
		sc, err := tcpfailover.NewScenario(opts)
		if err != nil {
			return err
		}
		if err := installOnServers(sc, func(h *netstack.Host) error {
			_, err := apps.NewFTPServer(h.TCP(), files)
			return err
		}); err != nil {
			return err
		}
		sc.Start()
		cl, err := apps.NewFTPClient(sc.Client.TCP(), sc.Sched,
			tcpfailover.ClientAddr, sc.ServiceAddr())
		if err != nil {
			return err
		}
		slot := &slots[rep]
		slot.get = make(map[string]float64, len(names))
		slot.put = make(map[string]float64, len(names))
		slot.gotGet = make(map[string]bool, len(names))
		slot.gotPut = make(map[string]bool, len(names))
		cl.PutPacing = FTPPutPacing
		cl.Login(nil)
		for _, name := range names {
			n := name
			cl.Get(n, func(r apps.FTPResult) {
				if r.Err == nil && r.BadAt < 0 {
					slot.get[n], slot.gotGet[n] = r.RateKBps, true
				}
			})
			cl.Put("up-"+n, files[n], func(r apps.FTPResult) {
				if r.Err == nil {
					slot.put[n], slot.gotPut[n] = r.RateKBps, true
				}
			})
		}
		done := false
		cl.Done = func() { done = true }
		cl.Quit()
		if err := sc.RunUntil(func() bool { return done }, 24*time.Hour); err != nil {
			return fmt.Errorf("ftp rep %d: %w", rep, err)
		}
		addEvents(sc)
		return nil
	})
	if err != nil {
		return nil, err
	}

	getRates := make(map[string][]float64, len(names))
	putRates := make(map[string][]float64, len(names))
	for _, slot := range slots {
		for _, name := range names {
			if slot.gotGet[name] {
				getRates[name] = append(getRates[name], slot.get[name])
			}
			if slot.gotPut[name] {
				putRates[name] = append(putRates[name], slot.put[name])
			}
		}
	}

	out := make([]FTPPoint, 0, len(names))
	for _, name := range names {
		var get, put metrics.Floats
		for _, v := range getRates[name] {
			get.Add(v)
		}
		for _, v := range putRates[name] {
			put.Add(v)
		}
		out = append(out, FTPPoint{
			Name:    name,
			FileKB:  float64(files[name]) / 1024.0,
			GetKBps: get.Median(),
			PutKBps: put.Median(),
		})
	}
	return out, nil
}

// --- Ablations: design choices toggled one at a time ---------------------------

// AblationRow is one configuration's stream rates.
type AblationRow struct {
	Name     string  `json:"name"`
	SendKBps float64 `json:"send_kbps"`
	RecvKBps float64 `json:"recv_kbps"`
}

// Ablation reruns the Figure 5 workload with individual design choices
// switched off, quantifying their contribution (DESIGN.md section 5).
func Ablation(total int64) ([]AblationRow, error) {
	configs := []struct {
		name   string
		mode   Mode
		mutate func(*tcpfailover.Options)
	}{
		{"standard TCP (reference)", Standard, nil},
		{"failover (default)", Failover, nil},
		{"failover, free bridge CPU", Failover, func(o *tcpfailover.Options) {
			o.HostProfile = netstack.DefaultProfile()
			o.HostProfile.BridgeDelay = time.Microsecond
			o.HostProfile.BridgeInbound = 0
		}},
		{"failover, full-duplex LAN (no collisions)", Failover, func(o *tcpfailover.Options) {
			o.ServerLAN.HalfDuplex = false
			o.ServerLAN.CollisionProb = 0
			o.ClientLink.HalfDuplex = false
			o.ClientLink.CollisionProb = 0
		}},
		{"three-way daisy chain (extension)", Failover, func(o *tcpfailover.Options) {
			o.Backups = 2
		}},
	}
	out := make([]AblationRow, len(configs))
	err := parallelEach(len(configs), func(ci int) error {
		cfg := configs[ci]
		r, err := streamRates(cfg.mode, total, cfg.mutate)
		if err != nil {
			return fmt.Errorf("ablation %q: %w", cfg.name, err)
		}
		out[ci] = AblationRow{Name: cfg.name, SendKBps: r.SendKBps, RecvKBps: r.RecvKBps}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// --- E6 (extension): failover latency ------------------------------------------

// FailoverResult reports the extension experiment: client-observed service
// interruption when the primary crashes mid-stream.
type FailoverResult struct {
	N           int           `json:"n"`
	StallMedian time.Duration `json:"stall_median_ns"`
	StallMax    time.Duration `json:"stall_max_ns"`
	AllIntact   bool          `json:"all_intact"` // every byte delivered exactly once, in order
}

// FailoverLatency crashes the primary at n different points during a
// server-to-client stream and measures the longest gap in the client's
// received-byte timeline around the failure.
func FailoverLatency(n int) (FailoverResult, error) {
	const total = 2 * 1024 * 1024
	gaps := make([]time.Duration, n)
	intactSlots := make([]bool, n)
	err := parallelEach(n, func(i int) error {
		opts := tcpfailover.LANOptions()
		opts.Seed = int64(6000 + i)
		opts.ServerPorts = []uint16{benchPort}
		sc, err := tcpfailover.NewScenario(opts)
		if err != nil {
			return err
		}
		if err := sc.Group.OnEach(func(h *netstack.Host) error {
			_, err := apps.NewPushServer(h.TCP(), benchPort, total)
			return err
		}); err != nil {
			return err
		}
		sc.Start()
		conn, err := sc.Client.TCP().Dial(sc.ServiceAddr(), benchPort)
		if err != nil {
			return err
		}
		recv := apps.NewReceiver(conn, sc.Sched)

		crashAt := int64(total/10) + int64(i)*int64(total/(2*n)) // spread crash points
		var lastProgress, maxGap time.Duration
		var prevReceived int64
		crashed := false
		for !recv.EOF {
			if !sc.Sched.Step() {
				return fmt.Errorf("run %d: queue empty (received=%d)", i, recv.Received)
			}
			if recv.Received != prevReceived {
				if lastProgress > 0 && crashed {
					if gap := sc.Now() - lastProgress; gap > maxGap {
						maxGap = gap
					}
				}
				prevReceived = recv.Received
				lastProgress = sc.Now()
			}
			if !crashed && recv.Received >= crashAt {
				crashed = true
				sc.Group.CrashPrimary()
				lastProgress = sc.Now()
			}
			if sc.Now() > time.Hour {
				return fmt.Errorf("run %d: timeout (received=%d)", i, recv.Received)
			}
		}
		intactSlots[i] = recv.BadAt < 0 && recv.Received == total
		gaps[i] = maxGap
		addEvents(sc)
		return nil
	})
	if err != nil {
		return FailoverResult{}, err
	}
	var stalls metrics.Durations
	intact := true
	for i := range n {
		stalls.Add(gaps[i])
		intact = intact && intactSlots[i]
	}
	return FailoverResult{
		N:           n,
		StallMedian: stalls.Median(),
		StallMax:    stalls.Max(),
		AllIntact:   intact,
	}, nil
}
