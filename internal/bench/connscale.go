package bench

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"tcpfailover"
	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/metrics"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/sim"
	"tcpfailover/internal/tcp"
)

// --- E8: connection-scale hot path -------------------------------------------
//
// The paper's evaluation drives one connection at a time; a production
// failover pair carries thousands. E8 measures the simulator's own hot-path
// cost — not virtual-time results — as the connection count grows: per-LAN-
// frame host nanoseconds and heap allocations while 100, 1 000, and 10 000
// concurrent request/reply connections run through the failover pair in the
// steady state. A flat ns/segment curve and zero allocs/segment are the
// acceptance targets for the timer-wheel, flow-cache, and batched-delivery
// work; the CI smoke gates on the alloc figure.

// DefaultConnScale is the connection-count sweep for experiment E8.
var DefaultConnScale = []int{100, 1000, 10000}

// ConnScalePoint reports one connection count of experiment E8. Rounds,
// Segments, and Events are functions of the seed only; WallNS,
// MedianNsPerSegment, and AllocsPerSegment are host-dependent performance
// counters (like Perf, unlike the rest of Results).
type ConnScalePoint struct {
	Conns              int     `json:"conns"`
	Rounds             int64   `json:"rounds"`   // measured request/reply rounds
	Segments           int64   `json:"segments"` // frames carried during measurement
	Events             int64   `json:"events"`   // scheduler events during measurement
	WallNS             int64   `json:"wall_ns"`
	MedianNsPerSegment float64 `json:"median_ns_per_segment"`
	AllocsPerSegment   float64 `json:"allocs_per_segment"`
}

const (
	csReqBytes     = 4   // request: fixed-size tokens, content ignored
	csReplyBytes   = 256 // reply per round
	csWarmupRounds = 4   // per-connection rounds before measurement
	csBatches      = 5   // measured batches of one round per connection
	csDialStagger  = 5 * time.Microsecond
	// csThink is each connection's pause between rounds. The workload is
	// open-loop on purpose: with back-to-back rounds every connection keeps
	// a frame queued on the LAN forever, and the benchmark would measure a
	// simulated congestion backlog instead of the per-connection hot path.
	// Thinking connections instead hold pending timers — think, delayed
	// ack, retransmission — which is precisely the 10k-connection timer
	// churn the timing wheel exists for.
	csThink = 250 * time.Millisecond
)

// ConnScale runs E8 for each connection count. The points run sequentially
// on the calling goroutine — unlike the other experiments there is no
// worker fan-out, because wall-clock and allocation measurements of the
// simulator itself need an otherwise quiet process.
func ConnScale(counts []int) ([]ConnScalePoint, error) {
	if len(counts) == 0 {
		counts = DefaultConnScale
	}
	out := make([]ConnScalePoint, 0, len(counts))
	for i, n := range counts {
		p, _, err := connScalePoint(int64(8000+i), n, false)
		if err != nil {
			return nil, fmt.Errorf("connscale %d conns: %w", n, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// csHarness is the shared state of one E8 simulation. The request/reply
// applications below are leaner cousins of internal/apps: with 10 000
// connections across three hosts, per-connection 32 KB copy buffers would
// dominate the footprint, so every connection of a scenario shares one
// scratch buffer (the event loop is single-threaded) and the servers share
// one constant reply block (both replicas must produce identical bytes).
type csHarness struct {
	sched   *sim.Scheduler
	scratch []byte
	reply   []byte
	req     [csReqBytes]byte
	rounds  int64 // completed rounds across all connections
	err     error
}

func (h *csHarness) fail(err error) {
	if h.err == nil {
		h.err = err
	}
}

// csServerConn answers each 4-byte request with csReplyBytes of the shared
// reply block (the reqReplyConn protocol with a fixed reply size).
type csServerConn struct {
	h      *csHarness
	c      *tcp.Conn
	reqGot int // bytes consumed toward the current request token
	toSend int // reply bytes still owed
}

func (s *csServerConn) pump() {
	for {
		for s.toSend > 0 {
			n := min(s.toSend, csReplyBytes)
			m, err := s.c.Write(s.h.reply[:n])
			if err != nil {
				return // client aborted; the scenario is winding down
			}
			s.toSend -= m
			if m < n {
				return // send buffer full; OnWritable resumes
			}
		}
		n, err := s.c.Read(s.h.scratch)
		if n == 0 {
			if err != nil {
				s.c.Abort()
			}
			return
		}
		s.reqGot += n
		for s.reqGot >= csReqBytes {
			s.reqGot -= csReqBytes
			s.toSend += csReplyBytes
		}
	}
}

// csClient issues one request per completed round, counting rounds into the
// harness.
type csClient struct {
	h       *csHarness
	c       *tcp.Conn
	got     int // reply bytes received toward the current round
	pending int // request bytes not yet accepted by the send buffer
}

func (cl *csClient) send() {
	cl.pending += csReqBytes
	cl.flush()
}

func (cl *csClient) flush() {
	if cl.pending == 0 {
		return
	}
	n, err := cl.c.Write(cl.h.req[:cl.pending])
	if err != nil {
		cl.h.fail(fmt.Errorf("client write: %w", err))
		return
	}
	cl.pending -= n
}

func (cl *csClient) readable() {
	for {
		n, err := cl.c.Read(cl.h.scratch)
		if n == 0 {
			if err != nil {
				cl.h.fail(fmt.Errorf("client read: %w", err))
			}
			return
		}
		cl.got += n
		for cl.got >= csReplyBytes {
			cl.got -= csReplyBytes
			cl.h.rounds++
			// Think, then issue the next request. AfterArg with a
			// top-level function keeps the per-round timer allocation-free
			// (a method-value closure would allocate).
			cl.h.sched.AfterArg(csThink, "connscale.think", csClientThink, cl)
		}
	}
}

func csClientThink(v any) { v.(*csClient).send() }

// connScaleOptions is the E8 scenario configuration: failover pair, cheap
// fixed per-packet host costs with batched (NAPI/GRO) delivery, quiet
// 10 Gbit/s full-duplex links so the wire never queues at 10 000
// connections, small TCP buffers so that many connections fit, and no
// detector traffic. The small MSS keeps the reply at one segment while
// still exercising the bridges' per-segment paths. The 1 ms delayed ack
// keeps ack timing (and hence RTT estimates and retransmission deadlines)
// far away from the think-time cadence.
func connScaleOptions(seed int64) tcpfailover.Options {
	opts := tcpfailover.LANOptions()
	opts.Seed = seed
	opts.ServerPorts = []uint16{benchPort}
	opts.HostProfile = netstack.Profile{
		StackIngress:  2 * time.Microsecond,
		StackEgress:   2 * time.Microsecond,
		ForwardDelay:  time.Microsecond,
		BridgeDelay:   2 * time.Microsecond,
		BridgeInbound: time.Microsecond,
		NAPIBudget:    8,
	}
	link := ethernet.Config{BandwidthBps: 10_000_000_000, Propagation: time.Microsecond}
	opts.ServerLAN = link
	opts.ClientLink = link
	opts.TCP = tcp.Config{
		MSS:               536,
		SendBufSize:       1024,
		RecvBufSize:       1024,
		DelayedAckTimeout: time.Millisecond,
		DisableNagle:      true,
	}
	noDetectors := false
	opts.StartDetectors = &noDetectors
	return opts
}

// csMinBatchRounds floors the rounds in one measured batch. One round per
// connection is plenty at 10k connections (~70k frames per batch), but at
// 100 it is under a millisecond of wall time — small enough for scheduler
// noise to swing the batch median by several percent, and the 100-count
// point is the denominator of E8's scaling ratio. Small counts therefore
// run several rounds per connection per batch.
const csMinBatchRounds = 800

// csPointRepeats repeats each point's measured phase, keeping the repeat
// with the lowest batch-median ns/segment. External interference — another
// tenant hammering the shared cache — inflates only the large-working-set
// points (the 100-connection point fits in cache and never moves), and it
// comes and goes on a timescale of seconds; the fastest repeat is therefore
// the best estimate of the simulator's intrinsic per-segment cost, which is
// what E8's scaling ratio is meant to gate.
const csPointRepeats = 3

// connScalePoint builds one failover scenario, dials n connections, lets
// every connection complete csWarmupRounds rounds, then measures csBatches
// batches of rounds: wall time and Mallocs per LAN frame, the scheduler
// event count, and the per-batch median ns/frame. With spans, the fleet
// span recorder is attached so the tracing gate can prove lifecycle
// recording adds no steady-state allocations; the second return is the
// number of spans it recorded.
func connScalePoint(seed int64, n int, spans bool) (ConnScalePoint, int, error) {
	// Hand back whatever earlier points (or, when a caller runs connscale
	// after other experiments) left on the heap before building this
	// point's working set: at 10k connections the simulation state runs to
	// tens of megabytes, and laying it out across an already-fragmented
	// heap costs measurable extra cache and TLB misses in the measured
	// batches. RunAll additionally orders connscale first for this reason.
	debug.FreeOSMemory()
	opts := connScaleOptions(seed)
	opts.Spans = spans
	sc, err := tcpfailover.NewScenario(opts)
	if err != nil {
		return ConnScalePoint{}, 0, err
	}
	h := &csHarness{sched: sc.Sched, scratch: make([]byte, 2048), reply: make([]byte, csReplyBytes)}
	for i := range h.reply {
		h.reply[i] = byte(i)
	}
	if err := installOnServers(sc, func(host *netstack.Host) error {
		_, err := host.TCP().Listen(benchPort, func(c *tcp.Conn) {
			s := &csServerConn{h: h, c: c}
			c.OnReadable(s.pump)
			c.OnWritable(s.pump)
		})
		return err
	}); err != nil {
		return ConnScalePoint{}, 0, err
	}
	sc.Start()

	// Stagger the dials so connection setup is a ramp, not a thundering
	// herd of simultaneous SYNs.
	for i := 0; i < n; i++ {
		sc.Sched.At(sc.Now()+time.Duration(i)*csDialStagger, "connscale.dial", func() {
			conn, err := sc.Client.TCP().Dial(sc.ServiceAddr(), benchPort)
			if err != nil {
				h.fail(fmt.Errorf("dial: %w", err))
				return
			}
			cl := &csClient{h: h, c: conn}
			conn.OnEstablished(cl.send)
			conn.OnReadable(cl.readable)
			conn.OnWritable(cl.flush)
		})
	}

	const deadline = 10 * time.Minute // virtual time
	frames := func() int64 {
		return sc.ServerLAN.Stats().Frames + sc.ClientLink.Stats().Frames
	}
	runTo := func(target int64) error {
		if err := sc.RunUntil(func() bool { return h.err != nil || h.rounds >= target }, deadline); err != nil {
			return err
		}
		return h.err
	}

	warmTarget := int64(n) * csWarmupRounds
	if err := runTo(warmTarget); err != nil {
		return ConnScalePoint{}, 0, fmt.Errorf("warmup: %w", err)
	}
	// Flush the setup phase's garbage now so no collection runs inside the
	// measured batches (the steady state itself allocates nothing).
	runtime.GC()

	batchRounds := int64(n)
	if batchRounds < csMinBatchRounds {
		batchRounds = ((csMinBatchRounds + int64(n) - 1) / int64(n)) * int64(n)
	}
	var best ConnScalePoint
	done := warmTarget
	var ms0, ms1 runtime.MemStats
	for rep := 0; rep < csPointRepeats; rep++ {
		p := ConnScalePoint{Conns: n}
		var perFrame metrics.Floats
		var allocs int64
		ev0 := sc.Sched.Executed()
		for b := 1; b <= csBatches; b++ {
			target := done + int64(b)*batchRounds
			f0 := frames()
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			err := runTo(target)
			wall := time.Since(start)
			runtime.ReadMemStats(&ms1)
			if err != nil {
				return ConnScalePoint{}, 0, fmt.Errorf("batch %d: %w", b, err)
			}
			df := frames() - f0
			if df <= 0 {
				return ConnScalePoint{}, 0, fmt.Errorf("batch %d: no frames carried", b)
			}
			p.Segments += df
			p.WallNS += wall.Nanoseconds()
			allocs += int64(ms1.Mallocs - ms0.Mallocs)
			perFrame.Add(float64(wall.Nanoseconds()) / float64(df))
		}
		done += csBatches * batchRounds
		p.Rounds = csBatches * batchRounds
		p.Events = int64(sc.Sched.Executed() - ev0)
		p.MedianNsPerSegment = perFrame.Median()
		p.AllocsPerSegment = float64(allocs) / float64(p.Segments)
		if rep == 0 || p.MedianNsPerSegment < best.MedianNsPerSegment {
			best = p
		}
	}
	addEvents(sc)
	return best, sc.Spans.Len(), nil
}
