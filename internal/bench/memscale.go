package bench

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"tcpfailover/internal/core"
	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/netbuf"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/sim"
	"tcpfailover/internal/tcp"
)

// --- E13: memory footprint and GC cost at scale ------------------------------
//
// E8 and E10 measure per-segment CPU cost as the connection count grows; E13
// measures what the connection *state* costs the runtime. Two layouts are
// populated to the same connection count and measured identically:
//
//   - "map": a faithful model of the containers the repository used before
//     the flowtab conversion — a map entry pointing at a heap-allocated
//     per-connection record which itself owns two heap-allocated output
//     queues on the primary, plus a heap flow record and a re-key tuple
//     entry on the secondary. The model really allocates that layout and
//     the garbage collector really traces it; nothing is simulated.
//   - "flowtab": the real bridges as they are now — a PrimaryBridge and a
//     SecondaryBridge driven through their interposition hooks until n
//     connections are established, with all per-connection state living in
//     open-addressing tables over slab arenas.
//
// For each cell the experiment reports live heap objects and bytes
// attributable to the population (after a settling collection), the wall
// time and stop-the-world pause of one forced collection at full
// population — the GC scan cost the layout imposes on a running process —
// and, for the real bridges, a drive phase: steady-state client ACKs pushed
// through the primary's demultiplex-and-translate path, reported as
// ns/segment and allocs/segment. The CI gate asserts the map layout holds
// at least twice as many GC-scanned objects per connection as flowtab.

// DefaultMemScale is the connection-count sweep for experiment E13.
var DefaultMemScale = []int{100_000, 500_000, 1_000_000}

// MemScalePoint reports one (layout, connection count) cell of E13. All
// fields are host-dependent performance counters (like ConnScalePoint).
type MemScalePoint struct {
	Conns  int    `json:"conns"`
	Layout string `json:"layout"` // "map" (pre-conversion model) or "flowtab" (real bridges)

	LiveObjects    int64   `json:"live_objects"` // heap objects added by the population
	LiveBytes      int64   `json:"live_bytes"`   // heap bytes added by the population
	ObjectsPerConn float64 `json:"objects_per_conn"`
	BytesPerConn   float64 `json:"bytes_per_conn"`

	PopulateNS int64 `json:"populate_ns"`
	ForcedGCNS int64 `json:"forced_gc_ns"` // wall time of one collection at full population
	GCPauseNS  int64 `json:"gc_pause_ns"`  // stop-the-world pause of that collection

	// Drive phase (flowtab cells only): client ACKs through the primary
	// bridge's lookup-and-translate path, round-robin over all connections.
	DriveSegments         int64   `json:"drive_segments,omitempty"`
	DriveNsPerSegment     float64 `json:"drive_ns_per_segment,omitempty"`
	DriveAllocsPerSegment float64 `json:"drive_allocs_per_segment,omitempty"`
}

// MemScale runs E13 for each connection count. Like ConnScale, the cells run
// sequentially on the calling goroutine: heap and wall-clock measurements of
// the process itself need an otherwise quiet process.
func MemScale(counts []int) ([]MemScalePoint, error) {
	if len(counts) == 0 {
		counts = DefaultMemScale
	}
	out := make([]MemScalePoint, 0, 2*len(counts))
	for _, n := range counts {
		p, err := memScaleMapCell(n)
		if err != nil {
			return nil, fmt.Errorf("memscale map %d conns: %w", n, err)
		}
		out = append(out, p)
		p, err = memScaleFlowtabCell(n)
		if err != nil {
			return nil, fmt.Errorf("memscale flowtab %d conns: %w", n, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// msSettle returns the process to a quiet, collected state and samples it.
func msSettle(ms *runtime.MemStats) {
	debug.FreeOSMemory()
	runtime.GC()
	runtime.ReadMemStats(ms)
}

// msFinish fills the measurement fields common to both layouts: the live
// heap delta against the pre-population sample, and the cost of one forced
// collection at full population.
func msFinish(p *MemScalePoint, ms0 *runtime.MemStats) {
	var ms1 runtime.MemStats
	runtime.GC() // settle: free the population phase's transient garbage
	runtime.ReadMemStats(&ms1)
	p.LiveObjects = int64(ms1.HeapObjects) - int64(ms0.HeapObjects)
	p.LiveBytes = int64(ms1.HeapAlloc) - int64(ms0.HeapAlloc)
	p.ObjectsPerConn = float64(p.LiveObjects) / float64(p.Conns)
	p.BytesPerConn = float64(p.LiveBytes) / float64(p.Conns)
	pause0 := ms1.PauseTotalNs
	start := time.Now()
	runtime.GC()
	p.ForcedGCNS = time.Since(start).Nanoseconds()
	runtime.ReadMemStats(&ms1)
	p.GCPauseNS = int64(ms1.PauseTotalNs - pause0)
}

// --- the "map" baseline: the seed's per-connection layout --------------------

// msQueueModel mirrors the seed's heap-allocated byteQueue: three slice
// headers and two scalars.
type msQueueModel struct {
	floor   uint32
	bytes   int
	blocks  []byte
	scratch []byte
	spare   []byte
}

// msPconnModel mirrors the seed's *pconn: a heap record owning two heap
// queues, LRU pointers, and the sequence/acknowledgment scalar block.
type msPconnModel struct {
	key              uint64
	pq, sq           *msQueueModel
	lruPrev, lruNext *msPconnModel
	scalars          [18]uint32
}

// msSflowModel mirrors the seed's *sflow.
type msSflowModel struct {
	gen              uint64
	match            bool
	opt              [8]byte
	key              uint64
	lruPrev, lruNext *msSflowModel
}

// msTupleModel mirrors the tcp.Tuple the seed's secondary kept per
// connection in a second map.
type msTupleModel struct {
	localAddr, remoteAddr   uint32
	localPort, remotePort uint16
}

// memScaleMapCell populates the pre-conversion layout to n connections.
func memScaleMapCell(n int) (MemScalePoint, error) {
	p := MemScalePoint{Conns: n, Layout: "map"}
	var ms0 runtime.MemStats
	msSettle(&ms0)
	start := time.Now()
	pconns := make(map[uint64]*msPconnModel)
	flows := make(map[uint64]*msSflowModel)
	rekey := make(map[uint64]msTupleModel)
	for i := 0; i < n; i++ {
		key := uint64(0x0B00_0000+i)<<32 | uint64(49152)<<16 | uint64(benchPort)
		pconns[key] = &msPconnModel{key: key, pq: &msQueueModel{}, sq: &msQueueModel{}}
		flows[key] = &msSflowModel{key: key, match: true}
		rekey[key] = msTupleModel{remoteAddr: uint32(key >> 32), localPort: benchPort, remotePort: 49152}
	}
	p.PopulateNS = time.Since(start).Nanoseconds()
	msFinish(&p, &ms0)
	runtime.KeepAlive(pconns)
	runtime.KeepAlive(flows)
	runtime.KeepAlive(rekey)
	return p, nil
}

// --- the "flowtab" cell: the real bridges ------------------------------------

// msFixture is a pair of bridge hosts driven directly through their hooks —
// no TCP stacks and no wire, so what the cell measures is bridge state, not
// endpoint buffers.
type msFixture struct {
	pri *core.PrimaryBridge
	sec *core.SecondaryBridge
	aP  ipv4.Addr
	aS  ipv4.Addr
}

const msClientBase = 0x0B00_0000 // 11.0.0.0: the synthetic client address block

func newMsFixture() *msFixture {
	f := &msFixture{
		aP: ipv4.MustParseAddr("10.0.1.1"),
		aS: ipv4.MustParseAddr("10.0.1.2"),
	}
	sched := sim.New(1)
	lan := ethernet.NewSegment(sched, ethernet.Config{})
	prefix := ipv4.PrefixFrom(ipv4.MustParseAddr("10.0.1.0"), 24)

	priHost := netstack.NewHost(sched, "p", netstack.DefaultProfile())
	priHost.AttachIface(lan, ethernet.MAC{2, 0, 0, 0, 0, 1}, f.aP, prefix)
	priSel := core.NewSelector()
	priSel.EnableServerPort(benchPort)
	f.pri = core.NewPrimaryBridge(priHost, f.aP, f.aS, priSel, core.PrimaryConfig{})
	// Emitted client-bound segments (the combined SYNs) go nowhere.
	f.pri.SetEmitFunc(func(_ ipv4.Addr, pkt *netbuf.Buffer) { pkt.Release() })

	secHost := netstack.NewHost(sched, "s", netstack.DefaultProfile())
	secHost.AttachIface(lan, ethernet.MAC{2, 0, 0, 0, 0, 2}, f.aS, prefix)
	secSel := core.NewSelector()
	secSel.EnableServerPort(benchPort)
	f.sec = core.NewSecondaryBridge(secHost, 0, f.aP, f.aS, secSel)
	return f
}

// establish walks connection i (distinct client address, fixed ports)
// through the three segments that take the primary's record to the
// established state, and snoops the client SYN on the secondary.
func (f *msFixture) establish(i int) error {
	aC := ipv4.Addr(msClientBase + uint32(i))
	hdrToP := ipv4.Header{Protocol: ipv4.ProtoTCP, Src: aC, Dst: f.aP}

	// Client SYN, seen by both bridges.
	syn := tcp.Marshal(aC, f.aP, &tcp.Segment{
		SrcPort: 49152, DstPort: benchPort, Seq: 1000, Flags: tcp.FlagSYN,
		Window: 65535, Options: []tcp.Option{tcp.MSSOption(1460)},
	})
	if v, _, _ := f.pri.Inbound(0, hdrToP, syn); v != netstack.VerdictPass {
		return fmt.Errorf("conn %d: client SYN verdict %v", i, v)
	}
	snoop := tcp.Marshal(aC, f.aP, &tcp.Segment{
		SrcPort: 49152, DstPort: benchPort, Seq: 1000, Flags: tcp.FlagSYN,
		Window: 65535, Options: []tcp.Option{tcp.MSSOption(1460)},
	})
	if v, _, _ := f.sec.Inbound(0, ipv4.Header{Protocol: ipv4.ProtoTCP, Src: aC, Dst: f.aP}, snoop); v != netstack.VerdictDeliver {
		return fmt.Errorf("conn %d: snooped SYN verdict %v", i, v)
	}

	// The primary TCP layer's SYN-ACK, held by the bridge.
	synAckP := tcp.Marshal(f.aP, aC, &tcp.Segment{
		SrcPort: benchPort, DstPort: 49152, Seq: 50_000_000, Ack: 1001,
		Flags: tcp.FlagSYN | tcp.FlagACK, Window: 60000,
		Options: []tcp.Option{tcp.MSSOption(1460)},
	})
	if !f.pri.Outbound(f.aP, aC, synAckP) {
		return fmt.Errorf("conn %d: primary SYN-ACK not consumed", i)
	}

	// The secondary's SYN-ACK, diverted to the primary with the orig-dst
	// option; completes establishment and emits the combined SYN.
	synAckS := tcp.Marshal(f.aS, aC, &tcp.Segment{
		SrcPort: benchPort, DstPort: 49152, Seq: 90_000_000, Ack: 1001,
		Flags: tcp.FlagSYN | tcp.FlagACK, Window: 60000,
		Options: []tcp.Option{tcp.MSSOption(1460)},
	})
	div, err := tcp.InsertOrigDstOption(synAckS, aC)
	if err != nil {
		return err
	}
	tcp.PatchPseudoAddr(div, aC, f.aP)
	if v, _, _ := f.pri.Inbound(0, ipv4.Header{Protocol: ipv4.ProtoTCP, Src: f.aS, Dst: f.aP}, div); v != netstack.VerdictDrop {
		return fmt.Errorf("conn %d: diverted SYN-ACK verdict %v", i, v)
	}
	return nil
}

// memScaleDriveFloor keeps small cells' timing out of the noise floor; large
// cells cap at three full sweeps over the connection set.
const (
	memScaleDriveFloor = 100_000
	memScaleDriveCap   = 3_000_000
)

// memScaleFlowtabCell populates the real bridges to n connections.
func memScaleFlowtabCell(n int) (MemScalePoint, error) {
	p := MemScalePoint{Conns: n, Layout: "flowtab"}
	var ms0 runtime.MemStats
	msSettle(&ms0)
	start := time.Now()
	f := newMsFixture()
	for i := 0; i < n; i++ {
		if err := f.establish(i); err != nil {
			return p, err
		}
	}
	p.PopulateNS = time.Since(start).Nanoseconds()
	if got := f.pri.Conns(); got != n {
		return p, fmt.Errorf("primary tracks %d conns, want %d", got, n)
	}
	if got := f.sec.Flows(); got != n {
		return p, fmt.Errorf("secondary caches %d flows, want %d", got, n)
	}
	msFinish(&p, &ms0)

	// Drive phase: steady-state client ACKs round-robin over every
	// connection — a pure demultiplex-and-translate workload. The frame is
	// prebuilt once; the bridge patches the acknowledgment in place, so it
	// is re-set each iteration. The client path verifies no checksum (the
	// endpoint stack does), so the patched frame needs no reseal.
	segs := min(max(memScaleDriveFloor, 3*n), memScaleDriveCap)
	frame := tcp.Marshal(ipv4.Addr(msClientBase), f.aP, &tcp.Segment{
		SrcPort: 49152, DstPort: benchPort, Seq: 1001, Ack: 90_000_500,
		Flags: tcp.FlagACK, Window: 65535,
	})
	hdr := ipv4.Header{Protocol: ipv4.ProtoTCP, Dst: f.aP}
	var msA, msB runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msA)
	dStart := time.Now()
	for s, i := 0, 0; s < segs; s++ {
		hdr.Src = ipv4.Addr(msClientBase + uint32(i))
		tcp.SetRawAck(frame, 90_000_500)
		if v, _, _ := f.pri.Inbound(0, hdr, frame); v != netstack.VerdictPass {
			return p, fmt.Errorf("drive segment %d: verdict %v", s, v)
		}
		if i++; i == n {
			i = 0
		}
	}
	dWall := time.Since(dStart)
	runtime.ReadMemStats(&msB)
	p.DriveSegments = int64(segs)
	p.DriveNsPerSegment = float64(dWall.Nanoseconds()) / float64(segs)
	p.DriveAllocsPerSegment = float64(msB.Mallocs-msA.Mallocs) / float64(segs)
	runtime.KeepAlive(f)
	return p, nil
}
