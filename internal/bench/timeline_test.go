package bench

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestFailoverTimelineDeterministic is the E9 gate: at a fixed seed set the
// reconstructed timelines — and therefore the marshalled result and the
// rendered phase breakdown — must be byte-identical across runs and worker
// counts.
func TestFailoverTimelineDeterministic(t *testing.T) {
	run := func(workers int) (TimelineResult, string) {
		old := Workers
		Workers = workers
		defer func() { Workers = old }()
		r, err := FailoverTimeline(3)
		if err != nil {
			t.Fatalf("FailoverTimeline(workers=%d): %v", workers, err)
		}
		blob, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return r, string(blob)
	}
	r1, blob1 := run(1)
	_, blob2 := run(4)
	if blob1 != blob2 {
		t.Fatalf("timeline results differ across worker counts:\n%s\n%s", blob1, blob2)
	}
	_, blob3 := run(4)
	if blob2 != blob3 {
		t.Fatalf("timeline results differ across identical runs:\n%s\n%s", blob2, blob3)
	}

	var sb1, sb2 strings.Builder
	if err := r1.Sample.WriteText(&sb1); err != nil {
		t.Fatal(err)
	}
	if err := r1.Sample.WriteText(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb1.String() != sb2.String() {
		t.Fatalf("WriteText not deterministic:\n%s\n%s", sb1.String(), sb2.String())
	}
}

// TestFailoverTimelineShape checks the reconstruction against the known
// structure of a LAN failover: detection is bounded by the detector timeout
// plus one check period, the ARP announce is synchronous with the takeover
// procedure, and every phase timestamp is ordered.
func TestFailoverTimelineShape(t *testing.T) {
	r, err := FailoverTimeline(3)
	if err != nil {
		t.Fatal(err)
	}
	tl := r.Sample
	if !(tl.FailureInjected < tl.DetectorFired &&
		tl.DetectorFired <= tl.TakeoverDone &&
		tl.TakeoverDone < tl.FirstServerSegment &&
		tl.FirstServerSegment < tl.ClientAckResumed) {
		t.Fatalf("milestones out of order: %+v", tl)
	}
	// LANOptions detector: 10 ms period, 50 ms timeout -> detection lands
	// in (timeout, timeout+period] plus sub-ms delivery jitter.
	if d := r.DetectionMedian; d < 40*time.Millisecond || d > 70*time.Millisecond {
		t.Errorf("detection median %v outside the detector's timeout window", d)
	}
	if r.AnnounceMedian > time.Millisecond {
		t.Errorf("announce median %v: the gratuitous ARP should go out with the takeover", r.AnnounceMedian)
	}
	if r.TotalMedian <= r.DetectionMedian {
		t.Errorf("total %v not greater than detection %v", r.TotalMedian, r.DetectionMedian)
	}
}

// TestCollectMetricsSnapshot checks the -metrics-out workload: the failover
// scenario must produce a registry whose core counters saw traffic.
func TestCollectMetricsSnapshot(t *testing.T) {
	reg, err := CollectMetrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		`tcp_segments_in_total{host="client"}`,
		`tcp_segments_out_total{host="client"}`,
		`bridge_snooped_in_total{host="secondary"}`,
		`bridge_diverted_out_total{host="secondary"}`,
		`bridge_bytes_matched_total{host="primary"}`,
	} {
		v, ok := reg.Lookup(name)
		if !ok {
			t.Errorf("series %s missing from registry", name)
			continue
		}
		if v <= 0 {
			t.Errorf("series %s = %d, want > 0", name, v)
		}
	}
	var sb strings.Builder
	if err := reg.DumpText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "# TYPE tcp_segments_in_total counter") {
		t.Error("DumpText missing TYPE line for tcp_segments_in_total")
	}
}
