package bench

import (
	"fmt"
	"time"

	"tcpfailover"
	"tcpfailover/internal/apps"
	"tcpfailover/internal/fault"
	"tcpfailover/internal/loadgen"
	"tcpfailover/internal/metrics"
	"tcpfailover/internal/netstack"
)

// --- E12 (extension): SLO under open-loop production traffic --------------------

// The paper's evaluation drives one connection at a time. E12 asks the
// question an operator would: with production-shaped traffic arriving
// open-loop — sessions keep coming whether or not the service answers — what
// goodput and client-visible tail latency does each system deliver, and what
// happens to the tail when the primary crashes mid-storm? Standard TCP with
// a crashed server turns every arrival into a failure; the failover pair
// turns the crash into a latency bulge whose size is the detection timeout.

// DefaultSLOLoads is the offered-load axis in sessions/second. The web
// workload moves ~45 KB per session, so the LAN (12.5 MB/s) saturates near
// 270 sessions/s: the axis spans light load, heavy load, and past-saturation.
var DefaultSLOLoads = []float64{40, 160, 320}

// DefaultSLOWindow is the measurement window of virtual time per cell.
const DefaultSLOWindow = 8 * time.Second

// DefaultSLOWorkload names the workload-zoo entry E12 drives.
const DefaultSLOWorkload = "web"

// sloWarmup is virtual time before the measurement window: arrivals run but
// are not measured, so the window sees a steady-state connection population.
const sloWarmup = time.Second

// sloDrain is virtual time after arrivals stop, letting in-flight requests
// finish (or fail) before the cell is scored.
const sloDrain = 2 * time.Second

// SLOPoint is one (mode, offered load, crash) cell of E12.
type SLOPoint struct {
	Mode     Mode    `json:"mode"`
	Workload string  `json:"workload"`
	Load     float64 `json:"offered_sessions_per_sec"`
	Crash    bool    `json:"crash"`

	// Arrivals and DialErrors cover the whole run; the request counters
	// cover requests issued inside the measurement window.
	Arrivals    int64 `json:"arrivals"`
	DialErrors  int64 `json:"dial_errors"`
	Requests    int64 `json:"requests"`
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`
	Outstanding int64 `json:"outstanding"`

	// GoodputKBps is verified body bytes delivered for measured requests,
	// over the measurement window.
	GoodputKBps float64 `json:"goodput_kbps"`

	// Client-visible request latency percentiles (issue to last body byte;
	// a session's first request includes connection setup). Completed
	// requests only — refusals and dead connections are counted above, not
	// folded into the latency distribution.
	P50  time.Duration `json:"p50_ns"`
	P99  time.Duration `json:"p99_ns"`
	P999 time.Duration `json:"p999_ns"`
	Max  time.Duration `json:"max_ns"`
}

// SLO runs the open-loop load experiment: modes x loads x {no-crash, crash},
// each cell an independent simulation. In crash cells the primary fail-stops
// at the middle of the measurement window. Results are functions of the
// seeds only — byte-identical for any bench worker count.
func SLO(workload string, loads []float64, window time.Duration) ([]SLOPoint, error) {
	if workload == "" {
		workload = DefaultSLOWorkload
	}
	if len(loads) == 0 {
		loads = DefaultSLOLoads
	}
	if window <= 0 {
		window = DefaultSLOWindow
	}
	if _, err := loadgen.Zoo(workload, 1); err != nil {
		return nil, err
	}

	type cell struct {
		mode  Mode
		load  float64
		crash bool
	}
	cells := make([]cell, 0, 4*len(loads))
	for _, mode := range []Mode{Standard, Failover} {
		for _, load := range loads {
			for _, crash := range []bool{false, true} {
				cells = append(cells, cell{mode, load, crash})
			}
		}
	}

	stop := sloWarmup + window
	horizon := stop + sloDrain
	crashAt := sloWarmup + window/2

	out := make([]SLOPoint, len(cells))
	err := parallelEach(len(cells), func(j int) error {
		c := cells[j]
		opts := tcpfailover.LANOptions()
		opts.Seed = int64(12000 + j)
		opts.Unreplicated = c.mode == Standard
		opts.ServerPorts = []uint16{benchPort}
		if c.crash {
			opts.Faults = &fault.Plan{
				Schedule: []fault.Step{{At: crashAt, Op: fault.OpCrashPrimary}},
			}
		}
		sc, err := tcpfailover.NewScenario(opts)
		if err != nil {
			return err
		}
		if err := installOnServers(sc, func(h *netstack.Host) error {
			_, err := apps.NewHTTPServer(h.TCP(), benchPort)
			return err
		}); err != nil {
			return err
		}
		sc.Start()

		spec, err := loadgen.Zoo(workload, c.load)
		if err != nil {
			return err
		}
		gen := loadgen.New(loadgen.Config{
			Sched:       sc.Sched,
			Stack:       sc.Client.TCP(),
			Addr:        sc.ServiceAddr(),
			Port:        benchPort,
			Spec:        spec,
			Rand:        fault.NewRand(uint64(opts.Seed)),
			Stop:        stop,
			MeasureFrom: sloWarmup,
		})
		gen.Start(0)
		if err := sc.Sched.RunUntil(horizon); err != nil {
			return fmt.Errorf("slo %s load %g crash=%v: %w", c.mode, c.load, c.crash, err)
		}

		st := &gen.Stats
		out[j] = SLOPoint{
			Mode:        c.mode,
			Workload:    workload,
			Load:        c.load,
			Crash:       c.crash,
			Arrivals:    st.Arrivals,
			DialErrors:  st.DialErrors,
			Requests:    st.Requests,
			Completed:   st.Completed,
			Failed:      st.Failed,
			Outstanding: st.Outstanding(),
			GoodputKBps: metrics.RateKBps(st.BytesIn, window),
			P50:         st.Lat.PercentileDuration(50),
			P99:         st.Lat.PercentileDuration(99),
			P999:        st.Lat.PercentileDuration(99.9),
			Max:         st.Lat.PercentileDuration(100),
		}
		addEvents(sc)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
