package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestAdversaryMatrixDeterministicAcrossWorkerCounts is E11's half of the
// repo-wide guarantee: every forged frame is drawn from seed-derived
// streams before the event loop runs, so the full attack-outcome matrix is
// byte-identical no matter how the 16 cells are scheduled across
// goroutines.
func TestAdversaryMatrixDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the matrix twice")
	}
	run := func(workers int) []byte {
		old := Workers
		Workers = workers
		defer func() { Workers = old }()
		points, err := AdversaryMatrix()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		blob, err := json.MarshalIndent(points, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	serial := run(1)
	parallel := run(4)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("adversary matrix differs between 1 and 4 workers:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestAdversaryMatrixOutcomes pins the shape of the matrix: each attack
// succeeds somewhere with the hardening off and every hardened cell is
// intact. The exact expected outcome per cell is asserted so a regression
// in either an attack model or a defense flips a named cell, not a vague
// aggregate.
func TestAdversaryMatrixOutcomes(t *testing.T) {
	points, err := AdversaryMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 16 {
		t.Fatalf("got %d cells, want 16", len(points))
	}
	want := map[[3]string]string{
		{"rst", "standard", "off"}:      "reset",
		{"rst", "standard", "on"}:       "intact",
		{"rst", "failover", "off"}:      "wedged",
		{"rst", "failover", "on"}:       "intact",
		{"arp", "standard", "off"}:      "hijacked",
		{"arp", "standard", "on"}:       "intact",
		{"arp", "failover", "off"}:      "hijacked",
		{"arp", "failover", "on"}:       "intact",
		{"ackstorm", "standard", "off"}: "amplified",
		{"ackstorm", "standard", "on"}:  "amplified", // RFC dup-ACKs: strict seq validation covers RST/SYN only
		{"ackstorm", "failover", "off"}: "amplified",
		{"ackstorm", "failover", "on"}:  "intact",
		{"synflood", "standard", "off"}: "state-exhausted",
		{"synflood", "standard", "on"}:  "state-exhausted", // SYN cookies are out of scope
		{"synflood", "failover", "off"}: "state-exhausted",
		{"synflood", "failover", "on"}:  "intact",
	}
	for _, p := range points {
		h := "off"
		if p.Hardened {
			h = "on"
		}
		key := [3]string{p.Attack, p.Topology, h}
		t.Logf("%-8s %-8s hardened=%-3s -> %-15s injected=%d delivered=%d seqDrops=%d arpRejected=%d amp=%.2f bridgeConns=%d bridgeFlows=%d endpointConns=%d evictions=%d attackerRx=%d",
			p.Attack, p.Topology, h, p.Outcome, p.Injected, p.Delivered, p.SeqDrops,
			p.ARPFiltered, p.Amplification, p.BridgeConns, p.BridgeFlows, p.EndpointConns,
			p.Evictions, p.AttackerRx)
		if w, ok := want[key]; !ok {
			t.Errorf("unexpected cell %v", key)
		} else if p.Outcome != w {
			t.Errorf("%v: outcome %q, want %q", key, p.Outcome, w)
		}
	}
	// The defenses must leave evidence, not just a verdict.
	for _, p := range points {
		if !p.Hardened {
			continue
		}
		switch {
		case p.Attack == "rst" && p.Topology == "failover" && p.SeqDrops == 0:
			t.Errorf("hardened failover rst cell dropped nothing")
		case p.Attack == "arp" && p.ARPFiltered == 0:
			t.Errorf("hardened arp/%s cell rejected no bindings", p.Topology)
		case p.Attack == "synflood" && p.Topology == "failover" && p.Evictions == 0:
			t.Errorf("hardened failover synflood cell evicted nothing")
		}
	}
}
