// Package ethernet models shared 100 Mbit/s-class Ethernet segments with
// promiscuous-mode NICs, the substrate the paper's secondary server uses to
// snoop client traffic. A Segment is a broadcast medium (hub): every
// attached NIC observes every frame, and a NIC in promiscuous mode delivers
// frames addressed to other stations up its stack.
//
// The timing model charges each frame its serialization delay (frame bits /
// bandwidth, including preamble, CRC, and inter-frame gap) plus propagation
// delay. The medium is half-duplex by default: a sender must wait for the
// medium to free up, and contended access can suffer CSMA/CD-style
// collisions with binary exponential backoff. Collisions are what give
// standard TCP its non-linear transfer times in the paper's Figure 4.
package ethernet

import (
	"errors"
	"fmt"
	"time"

	"tcpfailover/internal/netbuf"
	"tcpfailover/internal/obs"
	"tcpfailover/internal/sim"
)

// MAC is a 48-bit Ethernet hardware address.
type MAC [6]byte

// Broadcast is the all-stations MAC address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String formats the address in the usual colon-separated hex form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether the address is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == Broadcast }

// EtherType identifies the payload protocol of a frame.
type EtherType uint16

// EtherType values used by the simulation.
const (
	TypeIPv4 EtherType = 0x0800
	TypeARP  EtherType = 0x0806
)

// Frame is an Ethernet frame. Payload aliasing follows the usual simulation
// convention: senders must not modify the payload after Send.
//
// Buf, when non-nil, is the pooled buffer backing Payload. Ownership
// transfers with the frame: Send takes it unconditionally (releasing it on
// every error and loss path), and a receive handler owns the Buf of each
// frame delivered to it — it must Release the buffer (or hand it on) once
// done, and may patch Payload in place, since every station receives its
// own copy of the bits. Frames built with a bare Payload and nil Buf are
// copied into a pooled buffer by Send.
type Frame struct {
	Dst     MAC
	Src     MAC
	Type    EtherType
	Payload []byte
	Buf     *netbuf.Buffer
}

// release drops the frame's pooled buffer, if any.
func (f *Frame) release() {
	if f.Buf != nil {
		f.Buf.Release()
		f.Buf = nil
	}
}

// Wire-format constants (bytes).
const (
	headerBytes   = 14 // dst + src + ethertype
	crcBytes      = 4
	minFrameBytes = 64 // minimum frame incl. header and CRC
	preambleBytes = 8  // preamble + SFD
	ifgBytes      = 12 // inter-frame gap, charged as time on the wire
	maxPayload    = 1500
)

// ErrFrameTooLarge is returned by Send for payloads above the Ethernet MTU.
var ErrFrameTooLarge = errors.New("ethernet: frame payload exceeds MTU")

// ErrNotAttached is returned by Send when a NIC has no segment.
var ErrNotAttached = errors.New("ethernet: nic not attached to a segment")

// wireBytes returns the number of byte-times the frame occupies the medium.
func wireBytes(payloadLen int) int {
	n := payloadLen + headerBytes + crcBytes
	if n < minFrameBytes {
		n = minFrameBytes
	}
	return n + preambleBytes + ifgBytes
}

// Config describes a segment's physical characteristics.
type Config struct {
	// BandwidthBps is the raw bit rate. Default 100 Mbit/s.
	BandwidthBps int64
	// Propagation is the one-way signal delay across the segment.
	Propagation time.Duration
	// LossRate is the probability that a frame is lost on the wire.
	LossRate float64
	// Jitter adds a uniformly random extra delivery delay in [0, Jitter),
	// modeling competing traffic on shared infrastructure (the paper's WAN).
	Jitter time.Duration
	// HalfDuplex enables contention: senders wait for a free medium and
	// deferred transmissions may collide.
	HalfDuplex bool
	// CollisionProb is the probability that a deferred (contended)
	// transmission suffers a collision and backs off. Only meaningful when
	// HalfDuplex is set.
	CollisionProb float64
	// SlotTime is the backoff quantum; defaults to 51.2 us (10/100 Mbit
	// Ethernet slot time).
	SlotTime time.Duration
}

func (c Config) withDefaults() Config {
	if c.BandwidthBps == 0 {
		c.BandwidthBps = 100_000_000
	}
	if c.SlotTime == 0 {
		c.SlotTime = 512 * 100 * time.Nanosecond // 51.2 us
	}
	return c
}

// Stats aggregates segment counters.
type Stats struct {
	Frames     int64
	Bytes      int64
	Collisions int64
	Lost       int64
}

// Segment is a shared broadcast medium.
type Segment struct {
	sched *sim.Scheduler
	cfg   Config
	nics  []*NIC

	busyUntil time.Duration
	stats     Stats

	// Free list of delivery events and a reusable receiver list: the
	// per-frame hot path schedules delivery without allocating.
	deliverFree []*deliverEvent
	recvScratch []*NIC

	// impair, when set, judges every frame: at transmission (drop, extra
	// delay, duplication, in-place corruption) and once per receiving NIC
	// (asymmetric drop). internal/fault provides the standard
	// implementation; the segment only applies verdicts.
	impair Impairer

	// dropTx / dropRx are legacy boolean loss filters, kept as a thin shim
	// for code that predates the fault subsystem. New code should attach
	// impairment models through internal/fault instead.
	dropTx func(f Frame) bool
	dropRx func(dst *NIC, f Frame) bool

	// Observability handles (discard slots until AttachObs).
	mFrames     obs.Counter
	mCollisions obs.Counter
	mLost       obs.Counter
}

// TxVerdict is an Impairer's decision about one transmitted frame.
type TxVerdict struct {
	// Drop loses the frame on the wire: no station receives it.
	Drop bool
	// Delay defers delivery beyond the medium's own serialization,
	// propagation, and jitter.
	Delay time.Duration
	// Duplicates delivers this many extra copies of the frame.
	Duplicates int
}

// Impairer is the segment's fault-injection hook (see internal/fault).
type Impairer interface {
	// Tx is consulted once per frame at transmission time. It may patch
	// f.Payload in place (bit corruption): Send has already copied the
	// payload into a pooled buffer, and every receiver gets its own copy
	// of the corrupted bits, exactly as on a physical medium.
	Tx(src *NIC, f Frame) TxVerdict
	// Rx is consulted once per (receiver, frame) pair for frames that
	// survived transmission; returning true loses the frame at that
	// station only (e.g. dropped by the secondary but received by the
	// primary, the paper's second loss case).
	Rx(dst *NIC, f Frame) bool
}

// SetImpairer installs the segment's fault-injection hook (nil to clear).
func (s *Segment) SetImpairer(imp Impairer) { s.impair = imp }

// SetDropTxFilter installs a transmit-side loss injector (nil to clear).
//
// Deprecated shim: this predates internal/fault; prefer a fault.DropWhen
// impairment, which composes with the other models and is counted in the
// injected-fault stats.
func (s *Segment) SetDropTxFilter(f func(Frame) bool) { s.dropTx = f }

// SetDropRxFilter installs a receive-side loss injector (nil to clear); it
// sees each (receiver, frame) pair.
//
// Deprecated shim: this predates internal/fault; prefer a fault.DropWhen
// impairment bound with To, which composes with the other models and is
// counted in the injected-fault stats.
func (s *Segment) SetDropRxFilter(f func(dst *NIC, frame Frame) bool) { s.dropRx = f }

// NewSegment creates a segment managed by sched.
func NewSegment(sched *sim.Scheduler, cfg Config) *Segment {
	var nilReg *obs.Registry
	return &Segment{sched: sched, cfg: cfg.withDefaults(),
		mFrames:     nilReg.Counter("link_frames_total"),
		mCollisions: nilReg.Counter("link_collisions_total"),
		mLost:       nilReg.Counter("link_lost_total"),
	}
}

// AttachObs resolves the segment's metric handles against reg, labeling
// each series with the link name. Call once at scenario build time.
func (s *Segment) AttachObs(reg *obs.Registry, link string) {
	s.mFrames = reg.Counter(fmt.Sprintf("link_frames_total{link=%q}", link))
	s.mCollisions = reg.Counter(fmt.Sprintf("link_collisions_total{link=%q}", link))
	s.mLost = reg.Counter(fmt.Sprintf("link_lost_total{link=%q}", link))
}

// Stats returns a copy of the segment counters.
func (s *Segment) Stats() Stats { return s.stats }

// Config returns the segment configuration.
func (s *Segment) Config() Config { return s.cfg }

// Attach creates a NIC with the given MAC address connected to the segment.
func (s *Segment) Attach(mac MAC) *NIC {
	nic := &NIC{mac: mac, seg: s, up: true}
	s.nics = append(s.nics, nic)
	return nic
}

// serialization returns the time a payload of the given length occupies the
// medium.
func (s *Segment) serialization(payloadLen int) time.Duration {
	bits := int64(wireBytes(payloadLen)) * 8
	return time.Duration(bits * int64(time.Second) / s.cfg.BandwidthBps)
}

// transmit schedules delivery of a frame from src. It implements the
// simplified contention model described in the package comment.
func (s *Segment) transmit(src *NIC, f Frame) {
	now := s.sched.Now()
	start := now
	attempts := 0
	for {
		if start < s.busyUntil {
			start = s.busyUntil
			// Deferred transmission: contended access may collide.
			if s.cfg.HalfDuplex && s.cfg.CollisionProb > 0 &&
				s.sched.Rand().Float64() < s.cfg.CollisionProb && attempts < 10 {
				attempts++
				s.stats.Collisions++
				s.mCollisions.Inc()
				slots := s.sched.Rand().Intn(1 << min(attempts, 10))
				start += s.serialization(0) + time.Duration(slots)*s.cfg.SlotTime
				continue
			}
		}
		break
	}
	ser := s.serialization(len(f.Payload))
	s.busyUntil = start + ser
	s.stats.Frames++
	s.mFrames.Inc()
	s.stats.Bytes += int64(wireBytes(len(f.Payload)))

	if s.cfg.LossRate > 0 && s.sched.Rand().Float64() < s.cfg.LossRate {
		s.stats.Lost++
		s.mLost.Inc()
		f.release()
		return
	}
	if s.dropTx != nil && s.dropTx(f) {
		s.stats.Lost++
		s.mLost.Inc()
		f.release()
		return
	}
	var verdict TxVerdict
	if s.impair != nil {
		verdict = s.impair.Tx(src, f)
		if verdict.Drop {
			s.stats.Lost++
			s.mLost.Inc()
			f.release()
			return
		}
	}
	delivery := s.busyUntil + s.cfg.Propagation + verdict.Delay
	if s.cfg.Jitter > 0 {
		delivery += time.Duration(s.sched.Rand().Int63n(int64(s.cfg.Jitter)))
	}
	// Duplicates ride the medium back-to-back behind the original; each
	// copy gets its own pooled buffer so per-receiver ownership rules hold.
	for k := 1; k <= verdict.Duplicates; k++ {
		cp := f
		cp.Buf = f.Buf.Clone()
		cp.Payload = cp.Buf.Bytes()
		dev := s.getDeliverEvent()
		dev.src, dev.f = src, cp
		s.sched.AtArg(delivery+time.Duration(k)*ser, "ether.deliver", runDeliver, dev)
	}
	ev := s.getDeliverEvent()
	ev.src, ev.f = src, f
	s.sched.AtArg(delivery, "ether.deliver", runDeliver, ev)
}

// deliverEvent carries one in-flight frame from transmit to deliver through
// the scheduler without a per-frame closure allocation.
type deliverEvent struct {
	seg *Segment
	src *NIC
	f   Frame
}

func (s *Segment) getDeliverEvent() *deliverEvent {
	if n := len(s.deliverFree); n > 0 {
		ev := s.deliverFree[n-1]
		s.deliverFree = s.deliverFree[:n-1]
		return ev
	}
	return &deliverEvent{seg: s}
}

func runDeliver(v any) {
	ev := v.(*deliverEvent)
	s, src, f := ev.seg, ev.src, ev.f
	ev.src, ev.f = nil, Frame{}
	s.deliverFree = append(s.deliverFree, ev)
	s.deliver(src, f)
}

func (s *Segment) deliver(src *NIC, f Frame) {
	// First pass: decide who receives the frame (loss injectors fire once
	// per station). Second pass: every station receives its own copy of the
	// bits, exactly as on a physical medium, so receivers (e.g. the
	// failover bridges) may patch their copy in place. The last receiver is
	// handed the original buffer; the rest get pooled clones.
	recv := s.recvScratch[:0]
	for _, nic := range s.nics {
		if nic == src || !nic.up || nic.handler == nil {
			continue
		}
		if f.Dst == nic.mac || f.Dst.IsBroadcast() || nic.promiscuous {
			if s.dropRx != nil && s.dropRx(nic, f) {
				s.stats.Lost++
				continue
			}
			if s.impair != nil && s.impair.Rx(nic, f) {
				s.stats.Lost++
				continue
			}
			recv = append(recv, nic)
		}
	}
	s.recvScratch = recv[:0]
	if len(recv) == 0 {
		f.release()
		return
	}
	for _, nic := range recv[:len(recv)-1] {
		cp := f
		if f.Buf != nil {
			cp.Buf = f.Buf.Clone()
			cp.Payload = cp.Buf.Bytes()
		} else {
			cp.Payload = make([]byte, len(f.Payload))
			copy(cp.Payload, f.Payload)
		}
		nic.handler(cp)
	}
	nic := recv[len(recv)-1]
	if f.Buf == nil {
		cp := make([]byte, len(f.Payload))
		copy(cp, f.Payload)
		f.Payload = cp
	}
	nic.handler(f)
}

// NIC is a network interface attached to a segment.
type NIC struct {
	mac         MAC
	seg         *Segment
	promiscuous bool
	up          bool
	handler     func(Frame)

	txFrames int64
	rxFrames int64
}

// MAC returns the interface hardware address.
func (n *NIC) MAC() MAC { return n.mac }

// SetPromiscuous enables or disables promiscuous receive mode. The paper's
// secondary server enables it to snoop client segments addressed to the
// primary, and disables it as step 2 of the failover procedure.
func (n *NIC) SetPromiscuous(on bool) { n.promiscuous = on }

// Promiscuous reports whether promiscuous mode is enabled.
func (n *NIC) Promiscuous() bool { return n.promiscuous }

// SetUp administratively enables or disables the interface. A downed NIC
// neither sends nor receives; it models a crashed host.
func (n *NIC) SetUp(up bool) { n.up = up }

// Up reports whether the interface is enabled.
func (n *NIC) Up() bool { return n.up }

// SetHandler installs the receive callback. The handler runs inside the
// simulation event loop.
func (n *NIC) SetHandler(h func(Frame)) {
	n.handler = func(f Frame) {
		n.rxFrames++
		h(f)
	}
}

// Send transmits a frame. The frame's Src is overwritten with the NIC's
// address. Ownership of f.Buf (if any) transfers to Send unconditionally:
// it is released on every error and drop path, so callers must not touch
// the frame after Send returns.
func (n *NIC) Send(f Frame) error {
	return n.send(f, true)
}

// Inject transmits a frame without overwriting its source address: the
// frame appears on the segment as coming from whoever built it. Bridging
// stations use it — the cross-domain trunk relays overheard frames onto the
// remote segment with the original sender's MAC intact, so ARP caches and
// snooping stacks on both sides see one transparent L2 network. Ownership
// rules match Send.
func (n *NIC) Inject(f Frame) error {
	return n.send(f, false)
}

func (n *NIC) send(f Frame, overwriteSrc bool) error {
	if n.seg == nil {
		f.release()
		return ErrNotAttached
	}
	if len(f.Payload) > maxPayload {
		f.release()
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(f.Payload))
	}
	if !n.up {
		f.release()
		return nil // silently dropped, like a cable pull
	}
	if f.Buf == nil {
		// Defensive copy into a pooled buffer: the sender keeps its slice,
		// and delivery can hand the buffer itself to the final receiver.
		f.Buf = netbuf.From(f.Payload)
		f.Payload = f.Buf.Bytes()
	}
	if overwriteSrc {
		f.Src = n.mac
	}
	n.txFrames++
	n.seg.transmit(n, f)
	return nil
}

// TxFrames returns the number of frames sent by this NIC.
func (n *NIC) TxFrames() int64 { return n.txFrames }

// RxFrames returns the number of frames delivered to this NIC.
func (n *NIC) RxFrames() int64 { return n.rxFrames }
