package ethernet

import (
	"testing"
	"time"

	"tcpfailover/internal/sim"
)

// TestXLinkRelay: a frame sent on one segment appears on the remote segment
// (in another domain) with its source MAC preserved, after at least the
// trunk latency.
func TestXLinkRelay(t *testing.T) {
	const latency = 2 * time.Millisecond
	a, b := sim.New(1), sim.New(2)
	g := sim.NewShardGroup(a, b)
	segA := NewSegment(a, Config{})
	segB := NewSegment(b, Config{})
	if _, err := ConnectDomains(g, a, segA, MAC{2, 0, 0, 0, 0, 0xa0},
		b, segB, MAC{2, 0, 0, 0, 0, 0xb0}, XConfig{Latency: latency}, 1); err != nil {
		t.Fatal(err)
	}
	srcMAC := MAC{2, 0, 0, 0, 0, 1}
	dstMAC := MAC{2, 0, 0, 0, 0, 2}
	src := segA.Attach(srcMAC)
	dst := segB.Attach(dstMAC)
	var got *Frame
	var at time.Duration
	dst.SetHandler(func(f Frame) {
		cp := f
		got = &cp
		at = b.Now()
		f.Buf.Release()
	})
	st := a.NewStream(1, 1)
	st.Use()
	a.At(time.Millisecond, "send", func() {
		if err := src.Send(Frame{Dst: dstMAC, Type: TypeIPv4, Payload: []byte("hello")}); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	if err := g.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("frame never crossed the trunk")
	}
	if got.Src != srcMAC {
		t.Errorf("relayed frame Src %v, want original sender %v", got.Src, srcMAC)
	}
	if at < time.Millisecond+latency {
		t.Errorf("frame arrived at %v, before send time + trunk latency", at)
	}
	if string(got.Payload) != "hello" {
		t.Errorf("payload %q", got.Payload)
	}
}

// TestXLinkZeroLatencyCrossDomain: rejected with a clear error.
func TestXLinkZeroLatencyCrossDomain(t *testing.T) {
	a, b := sim.New(1), sim.New(2)
	g := sim.NewShardGroup(a, b)
	segA := NewSegment(a, Config{})
	segB := NewSegment(b, Config{})
	if _, err := ConnectDomains(g, a, segA, MAC{2, 0, 0, 0, 0, 0xa0},
		b, segB, MAC{2, 0, 0, 0, 0, 0xb0}, XConfig{}, 1); err == nil {
		t.Fatal("zero-latency cross-domain trunk accepted")
	}
}
