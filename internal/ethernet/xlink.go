package ethernet

import (
	"fmt"
	"sync"
	"time"

	"tcpfailover/internal/sim"
)

// Cross-domain trunk links.
//
// An XLink joins two Ethernet segments that may live in different domains of
// a sharded simulation (sim.ShardGroup). Each side attaches a promiscuous
// trunk NIC to its segment; every frame it overhears is relayed
// store-and-forward to the remote segment through a sim.Mailbox and
// re-transmitted there with NIC.Inject, preserving the original source MAC —
// stations on both sides see one transparent L2 path. The relay pays the
// trunk's own serialization (at XConfig.BandwidthBps) plus XConfig.Latency,
// which is the latency the shard group's conservative lookahead is derived
// from: a frame overheard at time t cannot appear remotely before
// t + Latency, so the link's declared latency is exactly the lockstep
// window's safety margin.
//
// Segments bridged by an XLink should be two-station stubs (one router, one
// trunk NIC): broadcast delivery skips the transmitting NIC, so a two-station
// stub cannot echo a relayed frame back through the trunk, and no spanning
// tree is needed.

// XConfig describes a trunk link's physical characteristics.
type XConfig struct {
	// BandwidthBps is the trunk bit rate. Default 10 Gbit/s.
	BandwidthBps int64
	// Latency is the one-way store-and-forward delay. It must be positive
	// when the link crosses a domain boundary — it bounds the group's
	// conservative lookahead (zero-latency links only work sequentially).
	Latency time.Duration
}

func (c XConfig) withDefaults() XConfig {
	if c.BandwidthBps == 0 {
		c.BandwidthBps = 10_000_000_000
	}
	return c
}

// XLink is a bidirectional trunk between two segments.
type XLink struct {
	a, b *xTrunk
}

// xTrunk is one direction's relay endpoint: the promiscuous NIC on the local
// segment and the mailbox toward the remote one.
type xTrunk struct {
	sched     *sim.Scheduler
	nic       *NIC
	mb        *sim.Mailbox
	peer      *xTrunk
	bw        int64
	lat       time.Duration
	busyUntil time.Duration
	forwarded int64
}

// ConnectDomains bridges segment a (managed by aSched) and segment b
// (managed by bSched) with a trunk, registering one mailbox per direction in
// group g. The MACs name the trunk NICs; they never appear as a frame
// source. The seed feeds the two rx streams (seed and seed+1). aSched and
// bSched may be the same scheduler — the trunk then relays within one
// domain, byte-identically to the cross-domain case.
func ConnectDomains(g *sim.ShardGroup, aSched *sim.Scheduler, a *Segment, aMAC MAC,
	bSched *sim.Scheduler, b *Segment, bMAC MAC, cfg XConfig, seed int64) (*XLink, error) {
	cfg = cfg.withDefaults()
	mbAB, err := g.NewMailbox(aSched, bSched, cfg.Latency, seed)
	if err != nil {
		return nil, fmt.Errorf("ethernet: trunk a->b: %w", err)
	}
	mbBA, err := g.NewMailbox(bSched, aSched, cfg.Latency, seed+1)
	if err != nil {
		return nil, fmt.Errorf("ethernet: trunk b->a: %w", err)
	}
	ta := &xTrunk{sched: aSched, mb: mbAB, bw: cfg.BandwidthBps, lat: cfg.Latency}
	tb := &xTrunk{sched: bSched, mb: mbBA, bw: cfg.BandwidthBps, lat: cfg.Latency}
	ta.peer, tb.peer = tb, ta
	ta.nic = a.Attach(aMAC)
	ta.nic.SetPromiscuous(true)
	ta.nic.SetHandler(ta.forward)
	tb.nic = b.Attach(bMAC)
	tb.nic.SetPromiscuous(true)
	tb.nic.SetHandler(tb.forward)
	return &XLink{a: ta, b: tb}, nil
}

// Forwarded returns the frames relayed in each direction (a->b, b->a).
func (l *XLink) Forwarded() (ab, ba int64) { return l.a.forwarded, l.b.forwarded }

// forward relays one overheard frame: serialize it onto the trunk (with
// store-and-forward contention against earlier relays) and post delivery to
// the remote domain. The frame's pooled buffer travels with it; the window
// barrier's happens-before edge makes the cross-goroutine handoff safe.
func (t *xTrunk) forward(f Frame) {
	start := t.sched.Now()
	if start < t.busyUntil {
		start = t.busyUntil
	}
	bits := int64(wireBytes(len(f.Payload))) * 8
	t.busyUntil = start + time.Duration(bits*int64(time.Second)/t.bw)
	t.forwarded++
	xf := xferPool.Get().(*xfer)
	xf.t = t.peer
	xf.f = f
	t.mb.Post(t.busyUntil+t.lat, "xlink.deliver", runXDeliver, xf)
}

// xfer carries one in-flight frame between domains without a per-frame
// closure. Pooled with sync.Pool because it is acquired in the source domain
// and recycled in the destination one.
type xfer struct {
	t *xTrunk
	f Frame
}

var xferPool = sync.Pool{New: func() any { return new(xfer) }}

// runXDeliver executes in the destination domain (under the mailbox's rx
// stream): the frame goes onto the remote segment with its source MAC
// intact.
func runXDeliver(v any) {
	xf := v.(*xfer)
	t, f := xf.t, xf.f
	xf.t, xf.f = nil, Frame{}
	xferPool.Put(xf)
	_ = t.nic.Inject(f)
}
