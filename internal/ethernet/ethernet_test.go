package ethernet

import (
	"testing"
	"time"

	"tcpfailover/internal/sim"
)

func testSegment(cfg Config) (*sim.Scheduler, *Segment) {
	s := sim.New(1)
	return s, NewSegment(s, cfg)
}

type rxRecord struct {
	frames []Frame
}

func attach(seg *Segment, mac MAC) (*NIC, *rxRecord) {
	nic := seg.Attach(mac)
	rec := &rxRecord{}
	nic.SetHandler(func(f Frame) { rec.frames = append(rec.frames, f) })
	return nic, rec
}

var (
	macA = MAC{2, 0, 0, 0, 0, 1}
	macB = MAC{2, 0, 0, 0, 0, 2}
	macC = MAC{2, 0, 0, 0, 0, 3}
)

func TestUnicastDelivery(t *testing.T) {
	sched, seg := testSegment(Config{})
	a, _ := attach(seg, macA)
	_, rb := attach(seg, macB)
	_, rc := attach(seg, macC)

	if err := a.Send(Frame{Dst: macB, Type: TypeIPv4, Payload: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rb.frames) != 1 {
		t.Fatalf("B received %d frames, want 1", len(rb.frames))
	}
	if rb.frames[0].Src != macA {
		t.Errorf("Src = %v, want %v", rb.frames[0].Src, macA)
	}
	if len(rc.frames) != 0 {
		t.Errorf("C received %d frames, want 0 (not promiscuous)", len(rc.frames))
	}
}

func TestBroadcastReachesAll(t *testing.T) {
	sched, seg := testSegment(Config{})
	a, ra := attach(seg, macA)
	_, rb := attach(seg, macB)
	_, rc := attach(seg, macC)
	if err := a.Send(Frame{Dst: Broadcast, Type: TypeARP, Payload: []byte("who-has")}); err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ra.frames) != 0 {
		t.Error("sender received its own broadcast")
	}
	if len(rb.frames) != 1 || len(rc.frames) != 1 {
		t.Errorf("broadcast delivery: B=%d C=%d, want 1 each", len(rb.frames), len(rc.frames))
	}
}

// TestPromiscuousSnooping is the property the paper's secondary depends on:
// a promiscuous NIC receives frames addressed to other stations.
func TestPromiscuousSnooping(t *testing.T) {
	sched, seg := testSegment(Config{})
	a, _ := attach(seg, macA)
	_, rb := attach(seg, macB)
	nicC, rc := attach(seg, macC)
	nicC.SetPromiscuous(true)

	if err := a.Send(Frame{Dst: macB, Type: TypeIPv4, Payload: []byte("secret")}); err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rb.frames) != 1 {
		t.Fatalf("B received %d, want 1", len(rb.frames))
	}
	if len(rc.frames) != 1 {
		t.Fatalf("promiscuous C received %d, want 1", len(rc.frames))
	}

	// Disabling promiscuous mode (failover step 2) stops the snooping.
	nicC.SetPromiscuous(false)
	if err := a.Send(Frame{Dst: macB, Type: TypeIPv4, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rc.frames) != 1 {
		t.Errorf("C received %d after disabling promiscuous mode, want still 1", len(rc.frames))
	}
}

// TestReceiversGetPrivateCopies: each station may patch its copy in place
// (the bridges do) without affecting other receivers.
func TestReceiversGetPrivateCopies(t *testing.T) {
	sched, seg := testSegment(Config{})
	a, _ := attach(seg, macA)
	nicB := seg.Attach(macB)
	nicC := seg.Attach(macC)
	nicC.SetPromiscuous(true)
	var atB, atC []byte
	nicB.SetHandler(func(f Frame) {
		f.Payload[0] = 'X' // mutate in place
		atB = f.Payload
	})
	nicC.SetHandler(func(f Frame) { atC = f.Payload })

	if err := a.Send(Frame{Dst: macB, Type: TypeIPv4, Payload: []byte("abc")}); err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if string(atB) != "Xbc" {
		t.Errorf("B's copy = %q", atB)
	}
	if string(atC) != "abc" {
		t.Errorf("C's copy = %q, mutated by B's handler", atC)
	}
}

func TestSerializationTiming(t *testing.T) {
	sched, seg := testSegment(Config{BandwidthBps: 100_000_000, Propagation: time.Microsecond})
	a, _ := attach(seg, macA)
	nicB := seg.Attach(macB)
	var deliveredAt time.Duration
	nicB.SetHandler(func(Frame) { deliveredAt = sched.Now() })

	payload := make([]byte, 1000)
	if err := a.Send(Frame{Dst: macB, Type: TypeIPv4, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	// 1000 + 18 header/crc + 20 preamble/IFG = 1038 bytes = 8304 bits at
	// 100 Mbit/s = 83.04 us, plus 1 us propagation.
	want := 83040*time.Nanosecond + time.Microsecond
	if deliveredAt != want {
		t.Errorf("delivered at %v, want %v", deliveredAt, want)
	}
}

func TestMediumSerializesTransmissions(t *testing.T) {
	sched, seg := testSegment(Config{BandwidthBps: 100_000_000})
	a, _ := attach(seg, macA)
	b, _ := attach(seg, macB)
	nicC := seg.Attach(macC)
	var times []time.Duration
	nicC.SetHandler(func(Frame) { times = append(times, sched.Now()) })

	p := make([]byte, 1480)
	_ = a.Send(Frame{Dst: macC, Type: TypeIPv4, Payload: p})
	_ = b.Send(Frame{Dst: macC, Type: TypeIPv4, Payload: p})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 {
		t.Fatalf("received %d frames, want 2", len(times))
	}
	ser := 1518 * 8 * time.Nanosecond * 10 // (1480+38) bytes at 100 Mbit/s
	if times[1]-times[0] < ser {
		t.Errorf("second frame arrived %v after first, want >= %v (no overlap on the medium)",
			times[1]-times[0], ser)
	}
}

func TestLossRateDropsFrames(t *testing.T) {
	sched, seg := testSegment(Config{LossRate: 1.0})
	a, _ := attach(seg, macA)
	_, rb := attach(seg, macB)
	for range 10 {
		_ = a.Send(Frame{Dst: macB, Type: TypeIPv4, Payload: []byte("x")})
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rb.frames) != 0 {
		t.Errorf("received %d frames despite 100%% loss", len(rb.frames))
	}
	if seg.Stats().Lost != 10 {
		t.Errorf("Lost = %d, want 10", seg.Stats().Lost)
	}
}

func TestCollisionsDelayContendedAccess(t *testing.T) {
	cfg := Config{HalfDuplex: true, CollisionProb: 1.0}
	sched, seg := testSegment(cfg)
	a, _ := attach(seg, macA)
	b, _ := attach(seg, macB)
	_, rc := attach(seg, macC)
	p := make([]byte, 1000)
	_ = a.Send(Frame{Dst: macC, Type: TypeIPv4, Payload: p})
	_ = b.Send(Frame{Dst: macC, Type: TypeIPv4, Payload: p}) // contends
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rc.frames) != 2 {
		t.Fatalf("received %d frames, want 2 (collisions delay, not drop)", len(rc.frames))
	}
	if seg.Stats().Collisions == 0 {
		t.Error("no collisions recorded despite certain contention")
	}
}

func TestMTUEnforced(t *testing.T) {
	_, seg := testSegment(Config{})
	a, _ := attach(seg, macA)
	err := a.Send(Frame{Dst: macB, Type: TypeIPv4, Payload: make([]byte, 1501)})
	if err == nil {
		t.Fatal("expected MTU error")
	}
}

func TestDownNICNeitherSendsNorReceives(t *testing.T) {
	sched, seg := testSegment(Config{})
	a, _ := attach(seg, macA)
	nicB, rb := attach(seg, macB)
	nicB.SetUp(false)
	_ = a.Send(Frame{Dst: macB, Type: TypeIPv4, Payload: []byte("x")})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rb.frames) != 0 {
		t.Error("down NIC received a frame")
	}
	if err := nicB.Send(Frame{Dst: macA, Type: TypeIPv4, Payload: []byte("y")}); err != nil {
		t.Errorf("send on down NIC should silently drop, got %v", err)
	}
	if nicB.TxFrames() != 0 {
		t.Error("down NIC counted a transmitted frame")
	}
}

func TestDropFilters(t *testing.T) {
	sched, seg := testSegment(Config{})
	a, _ := attach(seg, macA)
	_, rb := attach(seg, macB)
	nicC, rc := attach(seg, macC)
	nicC.SetPromiscuous(true)

	// Rx filter: lose the frame at C only.
	seg.SetDropRxFilter(func(dst *NIC, f Frame) bool { return dst == nicC })
	_ = a.Send(Frame{Dst: macB, Type: TypeIPv4, Payload: []byte("x")})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rb.frames) != 1 || len(rc.frames) != 0 {
		t.Errorf("rx filter: B=%d C=%d, want 1/0", len(rb.frames), len(rc.frames))
	}

	// Tx filter: lose the frame for everyone.
	seg.SetDropRxFilter(nil)
	seg.SetDropTxFilter(func(Frame) bool { return true })
	_ = a.Send(Frame{Dst: macB, Type: TypeIPv4, Payload: []byte("y")})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rb.frames) != 1 {
		t.Errorf("tx filter: B received %d, want still 1", len(rb.frames))
	}
}

func TestMACString(t *testing.T) {
	if got := macA.String(); got != "02:00:00:00:00:01" {
		t.Errorf("MAC.String() = %q", got)
	}
	if !Broadcast.IsBroadcast() {
		t.Error("Broadcast.IsBroadcast() = false")
	}
}
