package fault

import (
	"fmt"
	"time"
)

// LinkID names an Ethernet segment of the scenario topology.
type LinkID string

// The standard scenario links.
const (
	LinkServerLAN  LinkID = "server-lan"
	LinkClientLink LinkID = "client-link"
)

// Role names a host of the scenario topology for directional bindings.
type Role string

// Standard scenario roles. RoleAny (the empty string) matches any station.
const (
	RoleAny       Role = ""
	RoleClient    Role = "client"
	RoleRouter    Role = "router"
	RolePrimary   Role = "primary"
	RoleSecondary Role = "secondary"
	RoleTertiary  Role = "tertiary"
)

// Impairment binds a chain of models to one link, optionally restricted to
// one direction of traffic on the shared medium:
//
//   - From restricts the chain to frames transmitted by that role's NIC;
//     it runs at transmit time, so a dropped frame is lost to every
//     station (the paper's "lost on the wire" cases).
//   - To restricts the chain to frames received by that role's NIC; it
//     runs per receiver, so a frame can be lost at one station and
//     received by another (the paper's asymmetric loss cases). Receive-
//     side chains can only drop: delay, duplication, and corruption act on
//     the shared medium and are therefore transmit-side only.
//
// Models apply in order; their random streams derive from the simulation
// seed, the link, and the chain position.
type Impairment struct {
	Link   LinkID
	From   Role
	To     Role
	Models []Spec
}

// rxOnlyKinds are the model kinds allowed on receive-side chains.
var rxOnlyKinds = map[Kind]bool{
	KindBernoulli:      true,
	KindGilbertElliott: true,
	KindDropWhen:       true,
	KindPartition:      true,
}

// validate rejects impairments the injector cannot honor.
func (imp Impairment) validate() error {
	if imp.Link == "" {
		return fmt.Errorf("fault: impairment needs a link")
	}
	if len(imp.Models) == 0 {
		return fmt.Errorf("fault: impairment on %s has no models", imp.Link)
	}
	if imp.To != RoleAny {
		for _, s := range imp.Models {
			if !rxOnlyKinds[s.Kind] {
				return fmt.Errorf("fault: model %q cannot run on the receive side (To: %q); only loss and partitions can", s.Kind, imp.To)
			}
		}
	}
	return nil
}

// Op is a failure-schedule operation.
type Op string

// Schedule operations. The crash ops fail-stop a replica host; partition
// and heal toggle a named PartitionGate.
const (
	OpCrashPrimary   Op = "crash-primary"
	OpCrashSecondary Op = "crash-secondary"
	OpCrashTertiary  Op = "crash-tertiary"
	OpPartition      Op = "partition"
	OpHeal           Op = "heal"
)

// Step is one failure-schedule entry: at absolute virtual time At, apply
// Op. Arg names the partition for OpPartition / OpHeal.
type Step struct {
	At  time.Duration
	Op  Op
	Arg string
}

// Plan is a complete declarative fault scenario: link impairments plus a
// failure schedule. A Plan contains no live state; the scenario compiles
// it against its topology (and seed) at build time.
type Plan struct {
	Impairments []Impairment
	Schedule    []Step
}
