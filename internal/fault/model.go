package fault

import (
	"time"
)

// Verdict accumulates the fate of one frame as it passes through a chain of
// models. Models fold their effects in; the injector applies the combined
// result to the Ethernet segment.
type Verdict struct {
	// Drop discards the frame.
	Drop bool
	// Delay is extra delivery delay beyond the medium's own timing.
	Delay time.Duration
	// Duplicates is the number of extra copies to deliver.
	Duplicates int
	// FlipBits lists payload bit offsets to invert (corruption). The
	// injector patches the payload in place before delivery.
	FlipBits []int
}

// Model is one impairment applied to frames crossing a link in one
// direction. Models are stateful (burst state, token buckets, hit counts)
// and own a private PRNG stream, so a chain's behaviour is a function of
// the simulation seed and the frame sequence alone.
type Model interface {
	// Name identifies the model in stats and trace events.
	Name() string
	// Judge folds the model's effect on one frame into v. payload is the
	// frame payload (an IP datagram or ARP packet); models must not modify
	// it — corruption is requested via v.FlipBits and applied centrally.
	Judge(now time.Duration, payload []byte, v *Verdict)
}

// --- loss ---------------------------------------------------------------

// bernoulli drops each frame independently with fixed probability.
type bernoulli struct {
	p   float64
	rng *Rand
}

func (m *bernoulli) Name() string { return "bernoulli" }

func (m *bernoulli) Judge(_ time.Duration, _ []byte, v *Verdict) {
	if m.p > 0 && m.rng.Float64() < m.p {
		v.Drop = true
	}
}

// gilbertElliott is the classic two-state burst-loss channel: a good state
// with low loss and a bad state with high loss, with per-frame transition
// probabilities between them. Mean burst length is 1/badToGood frames.
type gilbertElliott struct {
	goodToBad, badToGood float64
	goodLoss, badLoss    float64
	bad                  bool
	rng                  *Rand
}

func (m *gilbertElliott) Name() string { return "gilbert-elliott" }

func (m *gilbertElliott) Judge(_ time.Duration, _ []byte, v *Verdict) {
	if m.bad {
		if m.rng.Float64() < m.badToGood {
			m.bad = false
		}
	} else if m.rng.Float64() < m.goodToBad {
		m.bad = true
	}
	loss := m.goodLoss
	if m.bad {
		loss = m.badLoss
	}
	if loss > 0 && m.rng.Float64() < loss {
		v.Drop = true
	}
}

// dropWhen drops frames matching a caller predicate, up to a limit. It is
// the programmable model the paper's section 4 loss cases use to lose one
// specific segment at one specific station.
type dropWhen struct {
	match func(payload []byte) bool
	times int // 0 = unlimited
	hits  int
}

func (m *dropWhen) Name() string { return "drop-when" }

func (m *dropWhen) Judge(_ time.Duration, payload []byte, v *Verdict) {
	if m.times > 0 && m.hits >= m.times {
		return
	}
	if m.match == nil || m.match(payload) {
		m.hits++
		v.Drop = true
	}
}

// --- timing -------------------------------------------------------------

// jitter adds a fixed base delay plus a uniform random component, modeling
// cross traffic on shared infrastructure.
type jitter struct {
	base, spread time.Duration
	rng          *Rand
}

func (m *jitter) Name() string { return "delay" }

func (m *jitter) Judge(_ time.Duration, _ []byte, v *Verdict) {
	v.Delay += m.base + m.rng.Durationn(m.spread)
}

// reorder holds a random subset of frames back by a fixed interval, so
// later frames overtake them on delivery — netem-style reordering.
type reorder struct {
	p    float64
	hold time.Duration
	rng  *Rand
}

func (m *reorder) Name() string { return "reorder" }

func (m *reorder) Judge(_ time.Duration, _ []byte, v *Verdict) {
	if m.p > 0 && m.rng.Float64() < m.p {
		v.Delay += m.hold
	}
}

// rateLimit shapes the direction to a byte rate with a virtual queue: each
// frame waits behind the backlog, and frames that would wait longer than
// the queue bound are tail-dropped. It models a slow bottleneck (the
// paper's WAN) independent of the segment's own bandwidth.
type rateLimit struct {
	bps      int64
	maxQueue time.Duration
	nextFree time.Duration
}

func (m *rateLimit) Name() string { return "rate-limit" }

func (m *rateLimit) Judge(now time.Duration, payload []byte, v *Verdict) {
	ser := time.Duration(int64(len(payload)) * 8 * int64(time.Second) / m.bps)
	start := now
	if m.nextFree > start {
		start = m.nextFree
	}
	if wait := start - now; m.maxQueue > 0 && wait > m.maxQueue {
		v.Drop = true
		return
	}
	m.nextFree = start + ser
	v.Delay += (start - now) + ser
}

// --- content ------------------------------------------------------------

// duplicate delivers extra copies of random frames.
type duplicate struct {
	p      float64
	copies int
	rng    *Rand
}

func (m *duplicate) Name() string { return "duplicate" }

func (m *duplicate) Judge(_ time.Duration, _ []byte, v *Verdict) {
	if m.p > 0 && m.rng.Float64() < m.p {
		v.Duplicates += m.copies
	}
}

// corrupt flips one random payload bit in a random subset of frames. The
// flip models corruption that slipped past the Ethernet CRC, so the IPv4
// and TCP checksums are the last line of defense — exactly the property
// the corruption tests pin down.
type corrupt struct {
	p   float64
	rng *Rand
}

func (m *corrupt) Name() string { return "corrupt" }

func (m *corrupt) Judge(_ time.Duration, payload []byte, v *Verdict) {
	if len(payload) == 0 || m.p <= 0 || m.rng.Float64() >= m.p {
		return
	}
	v.FlipBits = append(v.FlipBits, m.rng.Intn(len(payload)*8))
}

// --- partitions ---------------------------------------------------------

// Partition is a named on/off gate: while active, every frame in the
// bound direction is dropped. The failure schedule toggles partitions by
// name (OpPartition / OpHeal), and tests may toggle them directly.
type Partition struct {
	name   string
	active bool
}

// Name returns the partition's schedule name.
func (m *Partition) Name() string { return "partition:" + m.name }

// Judge drops the frame while the partition is active.
func (m *Partition) Judge(_ time.Duration, _ []byte, v *Verdict) {
	if m.active {
		v.Drop = true
	}
}

// SetActive engages or heals the partition.
func (m *Partition) SetActive(on bool) { m.active = on }

// Active reports whether the partition is engaged.
func (m *Partition) Active() bool { return m.active }
