// Package fault is the deterministic network-impairment and failure-
// schedule subsystem. It provides composable, seeded impairment models —
// Bernoulli and Gilbert–Elliott (bursty) loss, reordering, duplication,
// bit corruption, delay jitter, token-bucket rate limiting, and directional
// link partitions — that attach per-link and per-direction to
// internal/ethernet segments, plus a declarative failure schedule (crash
// the primary at t, partition then heal, cascading faults) that drives
// replica failures through the scenario API instead of ad-hoc test code.
//
// All randomness flows from the simulation seed through a splittable PRNG:
// every model instance owns a private stream derived from
// (seed, link, impairment index, model index), so a faulty run is
// byte-for-byte reproducible regardless of how many other components
// consume the scheduler's RNG and regardless of the benchmark harness's
// worker count.
package fault

import (
	"hash/fnv"
	"time"
)

// Rand is a small splittable PRNG (SplitMix64 core). Unlike math/rand it
// can derive independent child streams from string labels, which is how
// each impairment model gets randomness that does not interleave with any
// other consumer of the simulation seed.
type Rand struct {
	state uint64
}

// NewRand returns a stream seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next value of the stream (SplitMix64).
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives an independent child stream keyed by label. Splitting
// advances the parent by one draw, so repeated splits with the same label
// yield distinct streams; two parents with equal state and equal split
// sequences yield identical children.
func (r *Rand) Split(label string) *Rand {
	h := fnv.New64a()
	h.Write([]byte(label))
	return NewRand(mix(r.Uint64() ^ h.Sum64()))
}

// mix finalizes a seed so that related inputs (sequential counters, similar
// labels) land in unrelated states.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 33)) * 0xff51afd7ed558ccd
	z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53
	return z ^ (z >> 33)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	return int(r.Uint64() % uint64(n))
}

// Durationn returns a uniform duration in [0, d); zero when d <= 0.
func (r *Rand) Durationn(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(r.Uint64() % uint64(d))
}
