package fault

import (
	"fmt"

	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/obs"
	"tcpfailover/internal/sim"
)

// Topology maps the plan's symbolic names onto the assembled network: the
// segments impairments can bind to, and per link, the NIC each role
// transmits and receives on (a router has one NIC per link it joins). The
// scenario builder fills this in; tests with bespoke topologies can too.
type Topology struct {
	Links    map[LinkID]*ethernet.Segment
	Stations map[LinkID]map[Role]*ethernet.NIC
}

// Set is the live fault state of one simulation: the per-link injectors,
// the named partitions, and the seed-derived randomness impairments are
// compiled against. A Set accepts impairments both at build time (from
// Options.Faults) and mid-run (tests arming a targeted loss after
// warm-up); either way every model's random stream derives only from the
// simulation seed and the order of Impair calls, which is itself
// deterministic.
type Set struct {
	sched      *sim.Scheduler
	rng        *Rand
	topo       Topology
	injectors  map[LinkID]*Injector
	partitions map[string]*Partition
	nextChain  int

	// onEvent forwards injected-fault events (trace integration).
	onEvent func(Event)

	// reg, when set, labels and resolves per-link injector counters;
	// injectors created later attach themselves on creation.
	reg *obs.Registry
}

// NewSet creates an empty fault set for the topology. seed must be the
// simulation seed, so that fault randomness is reproducible alongside
// everything else.
func NewSet(sched *sim.Scheduler, seed int64, topo Topology) *Set {
	return &Set{
		sched:      sched,
		rng:        NewRand(mix(uint64(seed))).Split("fault"),
		topo:       topo,
		injectors:  make(map[LinkID]*Injector),
		partitions: make(map[string]*Partition),
	}
}

// AttachObs resolves per-link fault counters (drops, delays) against reg
// for every existing injector, and for injectors created afterwards.
func (s *Set) AttachObs(reg *obs.Registry) {
	s.reg = reg
	for _, inj := range s.injectors {
		inj.attachObs(reg)
	}
}

// SetOnEvent installs an observer for every injected fault across all
// links (nil to clear). The trace facility uses this.
func (s *Set) SetOnEvent(f func(Event)) {
	s.onEvent = f
	for _, inj := range s.injectors {
		inj.onEvent = f
	}
}

// injector returns (creating on demand) the injector for link.
func (s *Set) injector(link LinkID) (*Injector, error) {
	if inj, ok := s.injectors[link]; ok {
		return inj, nil
	}
	seg, ok := s.topo.Links[link]
	if !ok || seg == nil {
		return nil, fmt.Errorf("fault: no such link %q in this topology", link)
	}
	inj := newInjector(s.sched, link, seg)
	inj.onEvent = s.onEvent
	if s.reg != nil {
		inj.attachObs(s.reg)
	}
	s.injectors[link] = inj
	return inj, nil
}

// nic resolves a role to its NIC on the given link; RoleAny resolves to
// nil (any station).
func (s *Set) nic(link LinkID, r Role) (*ethernet.NIC, error) {
	if r == RoleAny {
		return nil, nil
	}
	nic, ok := s.topo.Stations[link][r]
	if !ok || nic == nil {
		return nil, fmt.Errorf("fault: role %q is not attached to link %q", r, link)
	}
	return nic, nil
}

// Impair compiles one impairment and installs it, effective immediately.
// Each model in the chain gets a private random stream derived from the
// simulation seed, the link, and the chain position.
func (s *Set) Impair(imp Impairment) error {
	if err := imp.validate(); err != nil {
		return err
	}
	inj, err := s.injector(imp.Link)
	if err != nil {
		return err
	}
	from, err := s.nic(imp.Link, imp.From)
	if err != nil {
		return err
	}
	to, err := s.nic(imp.Link, imp.To)
	if err != nil {
		return err
	}
	chainRng := s.rng.Split(fmt.Sprintf("%s/%d", imp.Link, s.nextChain))
	s.nextChain++
	b := &binding{from: from, to: to}
	for i, spec := range imp.Models {
		m, err := spec.build(chainRng.Split(fmt.Sprintf("%d/%s", i, spec.Kind)))
		if err != nil {
			return err
		}
		if p, ok := m.(*Partition); ok {
			if _, dup := s.partitions[p.name]; dup {
				return fmt.Errorf("fault: duplicate partition name %q", p.name)
			}
			s.partitions[p.name] = p
		}
		b.models = append(b.models, m)
	}
	if to != nil {
		inj.rx = append(inj.rx, b)
	} else {
		inj.tx = append(inj.tx, b)
	}
	return nil
}

// Apply installs every impairment of the plan.
func (s *Set) Apply(imps []Impairment) error {
	for i, imp := range imps {
		if err := s.Impair(imp); err != nil {
			return fmt.Errorf("impairment %d: %w", i, err)
		}
	}
	return nil
}

// Partition engages the named partition.
func (s *Set) Partition(name string) error { return s.setPartition(name, true) }

// Heal disengages the named partition.
func (s *Set) Heal(name string) error { return s.setPartition(name, false) }

func (s *Set) setPartition(name string, on bool) error {
	p, ok := s.partitions[name]
	if !ok {
		return fmt.Errorf("fault: no partition named %q", name)
	}
	p.SetActive(on)
	return nil
}

// HasPartition reports whether a partition with the name exists; the
// scenario uses it to validate schedules at build time.
func (s *Set) HasPartition(name string) bool {
	_, ok := s.partitions[name]
	return ok
}

// Stats aggregates the counters of every link's injector.
func (s *Set) Stats() Stats {
	var out Stats
	for _, inj := range s.injectors {
		out.add(inj.stats)
	}
	return out
}

// LinkStats returns one link's counters (zero if nothing bound there).
func (s *Set) LinkStats(link LinkID) Stats {
	if inj, ok := s.injectors[link]; ok {
		return inj.stats
	}
	return Stats{}
}
