package fault

import (
	"fmt"
	"time"

	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/obs"
	"tcpfailover/internal/sim"
)

// Stats counts faults an injector actually applied (as opposed to model
// parameters, which are probabilities).
type Stats struct {
	// Examined counts frames a chain judged.
	Examined int64
	// Dropped counts frames discarded (loss models, partitions, rate-limit
	// tail drops).
	Dropped int64
	// Delayed counts frames that picked up extra delivery delay.
	Delayed int64
	// Duplicated counts extra copies delivered.
	Duplicated int64
	// Corrupted counts bit flips applied.
	Corrupted int64
	// ExtraDelay is the sum of injected delays.
	ExtraDelay time.Duration
}

// add folds o into s.
func (s *Stats) add(o Stats) {
	s.Examined += o.Examined
	s.Dropped += o.Dropped
	s.Delayed += o.Delayed
	s.Duplicated += o.Duplicated
	s.Corrupted += o.Corrupted
	s.ExtraDelay += o.ExtraDelay
}

// Event describes one injected fault, for the trace facility.
type Event struct {
	Now   time.Duration
	Link  LinkID
	Kind  string // "drop", "delay", "duplicate", "corrupt"
	Model string
	Size  int // frame payload bytes
}

// binding is one compiled Impairment: a model chain plus its directional
// constraints, resolved to NICs.
type binding struct {
	from, to *ethernet.NIC // nil = any station
	models   []Model
}

// Injector attaches to one ethernet.Segment and implements its Impairer
// hook by running the compiled chains. Transmit-side chains (To: RoleAny)
// may drop, delay, duplicate, and corrupt; receive-side chains run once
// per (receiver, frame) pair and may only drop.
type Injector struct {
	sched *sim.Scheduler
	link  LinkID
	tx    []*binding
	rx    []*binding
	stats Stats

	// Observability handles (discard slots until attachObs).
	mDropped obs.Counter
	mDelayed obs.Counter

	// onEvent, when set, observes every injected fault.
	onEvent func(Event)
}

// newInjector creates an injector for the link and installs it on seg.
func newInjector(sched *sim.Scheduler, link LinkID, seg *ethernet.Segment) *Injector {
	inj := &Injector{sched: sched, link: link}
	inj.attachObs(nil)
	seg.SetImpairer(inj)
	return inj
}

// attachObs resolves the injector's per-link counters against reg.
func (inj *Injector) attachObs(reg *obs.Registry) {
	inj.mDropped = reg.Counter(fmt.Sprintf("fault_drops_total{link=%q}", inj.link))
	inj.mDelayed = reg.Counter(fmt.Sprintf("fault_delays_total{link=%q}", inj.link))
}

// Stats returns a copy of the injector's counters.
func (inj *Injector) Stats() Stats { return inj.stats }

// event reports one applied fault.
func (inj *Injector) event(kind, model string, size int) {
	if inj.onEvent != nil {
		inj.onEvent(Event{Now: inj.sched.Now(), Link: inj.link, Kind: kind, Model: model, Size: size})
	}
}

// judge runs b's chain over the frame and returns the verdict plus the
// name of the model that dropped it (for attribution).
func (b *binding) judge(now time.Duration, payload []byte) (Verdict, string) {
	var v Verdict
	for _, m := range b.models {
		m.Judge(now, payload, &v)
		if v.Drop {
			return v, m.Name()
		}
	}
	return v, ""
}

// Tx implements ethernet.Impairer. It runs every transmit-side chain whose
// From matches the sender, applies corruption in place, and returns the
// combined verdict.
func (inj *Injector) Tx(src *ethernet.NIC, f ethernet.Frame) ethernet.TxVerdict {
	var out ethernet.TxVerdict
	now := inj.sched.Now()
	for _, b := range inj.tx {
		if b.from != nil && b.from != src {
			continue
		}
		inj.stats.Examined++
		v, dropper := b.judge(now, f.Payload)
		if v.Drop {
			inj.stats.Dropped++
			inj.mDropped.Inc()
			inj.event("drop", dropper, len(f.Payload))
			out.Drop = true
			return out
		}
		for _, bit := range v.FlipBits {
			f.Payload[bit/8] ^= 1 << (bit % 8)
			inj.stats.Corrupted++
			inj.event("corrupt", "corrupt", len(f.Payload))
		}
		if v.Delay > 0 {
			inj.stats.Delayed++
			inj.mDelayed.Inc()
			inj.stats.ExtraDelay += v.Delay
			inj.event("delay", "delay", len(f.Payload))
			out.Delay += v.Delay
		}
		if v.Duplicates > 0 {
			inj.stats.Duplicated += int64(v.Duplicates)
			inj.event("duplicate", "duplicate", len(f.Payload))
			out.Duplicates += v.Duplicates
		}
	}
	return out
}

// Rx implements ethernet.Impairer: it runs every receive-side chain whose
// To matches the receiver (and From, if set, the original sender) and
// reports whether this receiver loses the frame.
func (inj *Injector) Rx(dst *ethernet.NIC, f ethernet.Frame) bool {
	now := inj.sched.Now()
	for _, b := range inj.rx {
		if b.to != dst {
			continue
		}
		if b.from != nil && b.from.MAC() != f.Src {
			continue
		}
		inj.stats.Examined++
		if v, dropper := b.judge(now, f.Payload); v.Drop {
			inj.stats.Dropped++
			inj.mDropped.Inc()
			inj.event("drop", dropper, len(f.Payload))
			return true
		}
	}
	return false
}
