package fault

import (
	"testing"
	"time"

	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/sim"
)

// testNet is a two-station segment with a fault set bound to it.
type testNet struct {
	sched *sim.Scheduler
	seg   *ethernet.Segment
	a, b  *ethernet.NIC
	set   *Set
	gotB  int
	lastB []byte
	timeB []time.Duration
}

const testLink LinkID = "test-link"

func newTestNet(t *testing.T, seed int64) *testNet {
	t.Helper()
	n := &testNet{sched: sim.New(seed)}
	n.seg = ethernet.NewSegment(n.sched, ethernet.Config{})
	n.a = n.seg.Attach(ethernet.MAC{2, 0, 0, 0, 0, 0xa})
	n.b = n.seg.Attach(ethernet.MAC{2, 0, 0, 0, 0, 0xb})
	n.b.SetHandler(func(f ethernet.Frame) {
		n.gotB++
		n.lastB = append([]byte(nil), f.Payload...)
		n.timeB = append(n.timeB, n.sched.Now())
		f.Buf.Release()
	})
	n.set = NewSet(n.sched, seed, Topology{
		Links: map[LinkID]*ethernet.Segment{testLink: n.seg},
		Stations: map[LinkID]map[Role]*ethernet.NIC{
			testLink: {RoleClient: n.a, RoleRouter: n.b},
		},
	})
	return n
}

func (n *testNet) send(t *testing.T, payload []byte) {
	t.Helper()
	if err := n.a.Send(ethernet.Frame{Dst: n.b.MAC(), Type: ethernet.TypeIPv4, Payload: payload}); err != nil {
		t.Fatalf("send: %v", err)
	}
}

func TestInjectorDropAndStats(t *testing.T) {
	n := newTestNet(t, 1)
	if err := n.set.Impair(Impairment{Link: testLink, Models: []Spec{Bernoulli(1.0)}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		n.send(t, []byte{1, 2, 3})
	}
	if err := n.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if n.gotB != 0 {
		t.Errorf("receiver got %d frames through a 100%% loss model", n.gotB)
	}
	st := n.set.Stats()
	if st.Dropped != 10 || st.Examined != 10 {
		t.Errorf("stats = %+v, want 10 examined, 10 dropped", st)
	}
	if lost := n.seg.Stats().Lost; lost != 10 {
		t.Errorf("segment counted %d lost, want 10", lost)
	}
}

func TestInjectorDirectionalRxDrop(t *testing.T) {
	// Loss bound To the b station must not affect other receivers.
	n := newTestNet(t, 1)
	c := n.seg.Attach(ethernet.MAC{2, 0, 0, 0, 0, 0xc})
	c.SetPromiscuous(true)
	gotC := 0
	c.SetHandler(func(f ethernet.Frame) { gotC++; f.Buf.Release() })
	err := n.set.Impair(Impairment{Link: testLink, From: RoleClient, To: RoleRouter,
		Models: []Spec{Bernoulli(1.0)}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		n.send(t, []byte{9})
	}
	if err := n.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if n.gotB != 0 {
		t.Errorf("bound receiver got %d frames", n.gotB)
	}
	if gotC != 5 {
		t.Errorf("promiscuous bystander got %d of 5 frames", gotC)
	}
}

func TestInjectorDuplicateAndCorrupt(t *testing.T) {
	n := newTestNet(t, 1)
	if err := n.set.Impair(Impairment{Link: testLink, Models: []Spec{Duplicate(1.0, 1)}}); err != nil {
		t.Fatal(err)
	}
	n.send(t, []byte{1, 2, 3, 4})
	if err := n.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if n.gotB != 2 {
		t.Errorf("receiver got %d copies, want 2 (original + duplicate)", n.gotB)
	}
	if st := n.set.Stats(); st.Duplicated != 1 {
		t.Errorf("stats = %+v, want 1 duplicated", st)
	}

	n2 := newTestNet(t, 2)
	if err := n2.set.Impair(Impairment{Link: testLink, Models: []Spec{Corrupt(1.0)}}); err != nil {
		t.Fatal(err)
	}
	orig := []byte{0, 0, 0, 0}
	n2.send(t, append([]byte(nil), orig...))
	if err := n2.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if n2.gotB != 1 {
		t.Fatalf("receiver got %d frames, want 1", n2.gotB)
	}
	diff := 0
	for i := range orig {
		for bit := 0; bit < 8; bit++ {
			if (n2.lastB[i]^orig[i])&(1<<bit) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Errorf("delivered payload differs in %d bits, want exactly 1", diff)
	}
	if st := n2.set.Stats(); st.Corrupted != 1 {
		t.Errorf("stats = %+v, want 1 corrupted", st)
	}
}

func TestInjectorDelay(t *testing.T) {
	base := newTestNet(t, 1)
	base.send(t, make([]byte, 100))
	if err := base.sched.Run(); err != nil {
		t.Fatal(err)
	}
	delayed := newTestNet(t, 1)
	if err := delayed.set.Impair(Impairment{Link: testLink,
		Models: []Spec{Delay(3*time.Millisecond, 0)}}); err != nil {
		t.Fatal(err)
	}
	delayed.send(t, make([]byte, 100))
	if err := delayed.sched.Run(); err != nil {
		t.Fatal(err)
	}
	got := delayed.timeB[0] - base.timeB[0]
	if got != 3*time.Millisecond {
		t.Errorf("injected delay = %v, want 3ms", got)
	}
}

func TestInjectorEventsAndPartition(t *testing.T) {
	n := newTestNet(t, 1)
	if err := n.set.Impair(Impairment{Link: testLink,
		Models: []Spec{PartitionGate("split", false)}}); err != nil {
		t.Fatal(err)
	}
	var events []Event
	n.set.SetOnEvent(func(e Event) { events = append(events, e) })

	n.send(t, []byte{1})
	if err := n.set.Partition("split"); err != nil {
		t.Fatal(err)
	}
	n.send(t, []byte{2})
	if err := n.set.Heal("split"); err != nil {
		t.Fatal(err)
	}
	n.send(t, []byte{3})
	if err := n.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if n.gotB != 2 {
		t.Errorf("receiver got %d frames, want 2 (one partitioned away)", n.gotB)
	}
	if len(events) != 1 || events[0].Kind != "drop" || events[0].Model != "partition:split" {
		t.Errorf("events = %+v, want one partition drop", events)
	}
	if err := n.set.Partition("nonesuch"); err == nil {
		t.Error("engaging an unknown partition succeeded")
	}
}

// TestInjectorDeterminism pins the core guarantee: two simulations with the
// same seed and same frame sequence inject byte-identical faults.
func TestInjectorDeterminism(t *testing.T) {
	run := func() (Stats, []byte) {
		n := newTestNet(t, 99)
		err := n.set.Impair(Impairment{Link: testLink, Models: []Spec{
			Bernoulli(0.2), Corrupt(0.5), Duplicate(0.3, 1), Delay(0, time.Millisecond),
		}})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			n.send(t, []byte{byte(i), byte(i >> 8), 7, 7})
		}
		if err := n.sched.Run(); err != nil {
			t.Fatal(err)
		}
		return n.set.Stats(), n.lastB
	}
	s1, last1 := run()
	s2, last2 := run()
	if s1 != s2 {
		t.Errorf("stats differ across identical runs:\n%+v\n%+v", s1, s2)
	}
	if string(last1) != string(last2) {
		t.Errorf("final delivered payload differs: %x vs %x", last1, last2)
	}
}
