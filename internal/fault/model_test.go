package fault

import (
	"testing"
	"time"
)

// judgeN runs n frames of the given size through a freshly built spec and
// returns the verdicts.
func judgeN(t *testing.T, spec Spec, n int, size int) []Verdict {
	t.Helper()
	m, err := spec.build(NewRand(1).Split("test"))
	if err != nil {
		t.Fatalf("build %q: %v", spec.Kind, err)
	}
	payload := make([]byte, size)
	out := make([]Verdict, n)
	now := time.Duration(0)
	for i := range out {
		m.Judge(now, payload, &out[i])
		now += time.Millisecond
	}
	return out
}

func countDrops(vs []Verdict) int {
	n := 0
	for _, v := range vs {
		if v.Drop {
			n++
		}
	}
	return n
}

func TestBernoulliRate(t *testing.T) {
	drops := countDrops(judgeN(t, Bernoulli(0.1), 20000, 100))
	if drops < 1700 || drops > 2300 {
		t.Errorf("bernoulli(0.1) dropped %d of 20000, want ~2000", drops)
	}
}

func TestGilbertElliottBursts(t *testing.T) {
	// An average 2% GE channel must drop in bursts: the conditional
	// probability that the frame after a drop is also dropped must be far
	// above the marginal rate.
	vs := judgeN(t, BurstyLoss(0.02), 100000, 100)
	drops := countDrops(vs)
	if drops < 1200 || drops > 2800 {
		t.Fatalf("bursty(0.02) dropped %d of 100000, want ~2000", drops)
	}
	pairs, after := 0, 0
	for i := 1; i < len(vs); i++ {
		if vs[i-1].Drop {
			pairs++
			if vs[i].Drop {
				after++
			}
		}
	}
	cond := float64(after) / float64(pairs)
	if cond < 0.08 {
		t.Errorf("P(drop|previous drop) = %.3f, want >> 0.02 (bursty)", cond)
	}
}

func TestDropWhenTimes(t *testing.T) {
	hit := 0
	spec := DropWhen(func(p []byte) bool { hit++; return true }, 3)
	vs := judgeN(t, spec, 10, 10)
	if got := countDrops(vs); got != 3 {
		t.Errorf("drop-when(times=3) dropped %d of 10", got)
	}
}

func TestDelayAndReorder(t *testing.T) {
	vs := judgeN(t, Delay(time.Millisecond, time.Millisecond), 100, 10)
	for i, v := range vs {
		if v.Delay < time.Millisecond || v.Delay >= 2*time.Millisecond {
			t.Fatalf("frame %d delay %v outside [1ms, 2ms)", i, v.Delay)
		}
	}
	vs = judgeN(t, Reorder(0.5, 10*time.Millisecond), 1000, 10)
	held := 0
	for _, v := range vs {
		switch v.Delay {
		case 0:
		case 10 * time.Millisecond:
			held++
		default:
			t.Fatalf("reorder produced unexpected delay %v", v.Delay)
		}
	}
	if held < 400 || held > 600 {
		t.Errorf("reorder(0.5) held %d of 1000", held)
	}
}

func TestRateLimitShapesAndDrops(t *testing.T) {
	// 1000-byte frames at 1 MB/s take 8 ms each; frames arriving
	// back-to-back at t=0 queue behind each other until the 20 ms queue
	// bound tail-drops them.
	m, err := RateLimit(1_000_000, 20*time.Millisecond).build(NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1000)
	var vs [6]Verdict
	for i := range vs {
		m.Judge(0, payload, &vs[i])
	}
	ser := 8 * time.Millisecond
	for i, want := range []time.Duration{ser, 2 * ser, 3 * ser} {
		if vs[i].Drop || vs[i].Delay != want {
			t.Errorf("frame %d: delay %v drop %v, want %v", i, vs[i].Delay, vs[i].Drop, want)
		}
	}
	// Frame 3 would wait 24 ms > 20 ms: tail drop, and so on.
	for i := 3; i < 6; i++ {
		if !vs[i].Drop {
			t.Errorf("frame %d not tail-dropped (delay %v)", i, vs[i].Delay)
		}
	}
}

func TestDuplicateAndCorrupt(t *testing.T) {
	vs := judgeN(t, Duplicate(1.0, 2), 10, 10)
	for i, v := range vs {
		if v.Duplicates != 2 {
			t.Fatalf("frame %d got %d duplicates, want 2", i, v.Duplicates)
		}
	}
	vs = judgeN(t, Corrupt(1.0), 100, 10)
	for i, v := range vs {
		if len(v.FlipBits) != 1 {
			t.Fatalf("frame %d got %d flips, want 1", i, len(v.FlipBits))
		}
		if bit := v.FlipBits[0]; bit < 0 || bit >= 80 {
			t.Fatalf("frame %d flip bit %d outside payload", i, bit)
		}
	}
}

func TestPartitionToggle(t *testing.T) {
	m, err := PartitionGate("split", false).build(NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	p := m.(*Partition)
	var v Verdict
	p.Judge(0, nil, &v)
	if v.Drop {
		t.Error("healed partition dropped a frame")
	}
	p.SetActive(true)
	v = Verdict{}
	p.Judge(0, nil, &v)
	if !v.Drop {
		t.Error("active partition passed a frame")
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := RateLimit(0, 0).build(NewRand(1)); err == nil {
		t.Error("rate-limit with zero rate built")
	}
	if _, err := (Spec{Kind: KindPartition}).build(NewRand(1)); err == nil {
		t.Error("nameless partition built")
	}
	if _, err := (Spec{Kind: "bogus"}).build(NewRand(1)); err == nil {
		t.Error("unknown kind built")
	}
	imp := Impairment{Link: LinkServerLAN, To: RoleSecondary, Models: []Spec{Corrupt(1)}}
	if err := imp.validate(); err == nil {
		t.Error("receive-side corruption accepted")
	}
	imp = Impairment{Link: LinkServerLAN, To: RoleSecondary, Models: []Spec{Bernoulli(0.1)}}
	if err := imp.validate(); err != nil {
		t.Errorf("receive-side loss rejected: %v", err)
	}
}
