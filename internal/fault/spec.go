package fault

import (
	"fmt"
	"time"
)

// Kind discriminates impairment model specifications.
type Kind string

// Model kinds.
const (
	KindBernoulli      Kind = "bernoulli"
	KindGilbertElliott Kind = "gilbert-elliott"
	KindDropWhen       Kind = "drop-when"
	KindDelay          Kind = "delay"
	KindReorder        Kind = "reorder"
	KindRateLimit      Kind = "rate-limit"
	KindDuplicate      Kind = "duplicate"
	KindCorrupt        Kind = "corrupt"
	KindPartition      Kind = "partition"
)

// Spec is the declarative description of one impairment model. Use the
// constructor helpers (Bernoulli, GilbertElliott, …) rather than filling
// fields by hand; Build interprets only the fields its Kind uses.
type Spec struct {
	Kind Kind

	// Rate is the per-frame probability for Bernoulli loss, duplication,
	// corruption, and reordering.
	Rate float64

	// Gilbert–Elliott channel parameters.
	GoodToBad, BadToGood float64
	GoodLoss, BadLoss    float64

	// Delay is the fixed extra latency (KindDelay); Jitter the uniform
	// random component on top.
	Delay, Jitter time.Duration

	// Hold is how long a reordered frame is held back.
	Hold time.Duration

	// Copies is the number of extra copies a duplication event delivers.
	Copies int

	// Bps and MaxQueue parameterize the token-bucket rate limiter.
	Bps      int64
	MaxQueue time.Duration

	// Name identifies a partition to the failure schedule; Active is its
	// initial state.
	Name   string
	Active bool

	// Match and Times parameterize KindDropWhen: drop frames whose payload
	// satisfies Match (nil matches everything), at most Times times
	// (0 = unlimited).
	Match func(payload []byte) bool
	Times int
}

// Bernoulli drops each frame independently with probability rate.
func Bernoulli(rate float64) Spec { return Spec{Kind: KindBernoulli, Rate: rate} }

// GilbertElliott is bursty loss: a two-state channel with the given
// per-frame transition probabilities and per-state loss rates.
func GilbertElliott(goodToBad, badToGood, goodLoss, badLoss float64) Spec {
	return Spec{Kind: KindGilbertElliott,
		GoodToBad: goodToBad, BadToGood: badToGood, GoodLoss: goodLoss, BadLoss: badLoss}
}

// BurstyLoss derives a Gilbert–Elliott spec from a target average loss
// rate, with bursts of ~10 frames (goodToBad 0.01, badToGood 0.1) and a
// lossless good state. The bad-state loss is capped at 1.
func BurstyLoss(avgRate float64) Spec {
	const goodToBad, badToGood = 0.01, 0.1
	badShare := goodToBad / (goodToBad + badToGood) // stationary P(bad)
	badLoss := avgRate / badShare
	if badLoss > 1 {
		badLoss = 1
	}
	return GilbertElliott(goodToBad, badToGood, 0, badLoss)
}

// DropWhen drops frames whose payload satisfies match, at most times times
// (0 = unlimited). The targeted loss cases of the paper's section 4 are
// built from this.
func DropWhen(match func(payload []byte) bool, times int) Spec {
	return Spec{Kind: KindDropWhen, Match: match, Times: times}
}

// Delay adds base extra latency plus a uniform random component in
// [0, jitter) to every frame.
func Delay(base, jitter time.Duration) Spec {
	return Spec{Kind: KindDelay, Delay: base, Jitter: jitter}
}

// Reorder holds a fraction rate of frames back by hold, letting later
// frames overtake them.
func Reorder(rate float64, hold time.Duration) Spec {
	return Spec{Kind: KindReorder, Rate: rate, Hold: hold}
}

// RateLimit shapes the direction to bps with a virtual queue; frames that
// would wait longer than maxQueue are dropped (0 = unbounded queue).
func RateLimit(bps int64, maxQueue time.Duration) Spec {
	return Spec{Kind: KindRateLimit, Bps: bps, MaxQueue: maxQueue}
}

// Duplicate delivers copies extra copies of a fraction rate of frames.
func Duplicate(rate float64, copies int) Spec {
	return Spec{Kind: KindDuplicate, Rate: rate, Copies: copies}
}

// Corrupt flips one random bit in a fraction rate of frames.
func Corrupt(rate float64) Spec { return Spec{Kind: KindCorrupt, Rate: rate} }

// PartitionGate is a named directional partition, initially healed unless
// active; the failure schedule toggles it with OpPartition / OpHeal.
func PartitionGate(name string, active bool) Spec {
	return Spec{Kind: KindPartition, Name: name, Active: active}
}

// build instantiates the model. rng is the model's private stream; the
// returned partition (if any) must be registered for schedule lookup.
func (s Spec) build(rng *Rand) (Model, error) {
	switch s.Kind {
	case KindBernoulli:
		return &bernoulli{p: s.Rate, rng: rng}, nil
	case KindGilbertElliott:
		return &gilbertElliott{goodToBad: s.GoodToBad, badToGood: s.BadToGood,
			goodLoss: s.GoodLoss, badLoss: s.BadLoss, rng: rng}, nil
	case KindDropWhen:
		return &dropWhen{match: s.Match, times: s.Times}, nil
	case KindDelay:
		return &jitter{base: s.Delay, spread: s.Jitter, rng: rng}, nil
	case KindReorder:
		return &reorder{p: s.Rate, hold: s.Hold, rng: rng}, nil
	case KindRateLimit:
		if s.Bps <= 0 {
			return nil, fmt.Errorf("fault: rate-limit needs a positive byte rate, got %d", s.Bps)
		}
		return &rateLimit{bps: s.Bps, maxQueue: s.MaxQueue}, nil
	case KindDuplicate:
		copies := s.Copies
		if copies <= 0 {
			copies = 1
		}
		return &duplicate{p: s.Rate, copies: copies, rng: rng}, nil
	case KindCorrupt:
		return &corrupt{p: s.Rate, rng: rng}, nil
	case KindPartition:
		if s.Name == "" {
			return nil, fmt.Errorf("fault: partition needs a name")
		}
		return &Partition{name: s.Name, active: s.Active}, nil
	default:
		return nil, fmt.Errorf("fault: unknown model kind %q", s.Kind)
	}
}
