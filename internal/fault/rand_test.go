package fault

import "testing"

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seed diverge at draw %d", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	// Children of the same parent under different labels must be distinct
	// streams; the same (seed, label) path must reproduce.
	p1, p2 := NewRand(7), NewRand(7)
	c1a := p1.Split("a")
	c2a := p2.Split("a")
	for i := 0; i < 100; i++ {
		if c1a.Uint64() != c2a.Uint64() {
			t.Fatalf("same split path diverges at draw %d", i)
		}
	}
	x := NewRand(7).Split("a")
	y := NewRand(7).Split("b")
	same := 0
	for i := 0; i < 64; i++ {
		if x.Uint64() == y.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams split under different labels collide on %d of 64 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}
