package netstack_test

import (
	"bytes"
	"io"
	"testing"
	"time"

	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/sim"
	"tcpfailover/internal/tcp"
)

// testNet is a two-host LAN used across netstack tests.
type testNet struct {
	sched  *sim.Scheduler
	seg    *ethernet.Segment
	a, b   *netstack.Host
	aAddr  ipv4.Addr
	bAddr  ipv4.Addr
	prefix ipv4.Prefix
}

func newTestNet(t *testing.T, segCfg ethernet.Config) *testNet {
	t.Helper()
	sched := sim.New(1)
	seg := ethernet.NewSegment(sched, segCfg)
	n := &testNet{
		sched:  sched,
		seg:    seg,
		aAddr:  ipv4.MustParseAddr("10.0.0.1"),
		bAddr:  ipv4.MustParseAddr("10.0.0.2"),
		prefix: ipv4.PrefixFrom(ipv4.MustParseAddr("10.0.0.0"), 24),
	}
	n.a = netstack.NewHost(sched, "a", netstack.DefaultProfile())
	n.b = netstack.NewHost(sched, "b", netstack.DefaultProfile())
	n.a.AttachIface(seg, ethernet.MAC{2, 0, 0, 0, 0, 1}, n.aAddr, n.prefix)
	n.b.AttachIface(seg, ethernet.MAC{2, 0, 0, 0, 0, 2}, n.bAddr, n.prefix)
	return n
}

func TestTCPHandshakeAndEcho(t *testing.T) {
	n := newTestNet(t, ethernet.Config{})

	var serverGot []byte
	_, err := n.b.TCP().Listen(80, func(c *tcp.Conn) {
		buf := make([]byte, 4096)
		c.OnReadable(func() {
			for {
				m, err := c.Read(buf)
				if m > 0 {
					serverGot = append(serverGot, buf[:m]...)
					if _, werr := c.Write(buf[:m]); werr != nil {
						t.Errorf("server write: %v", werr)
					}
				}
				if err == io.EOF {
					c.Close()
					return
				}
				if m == 0 {
					return
				}
			}
		})
	})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}

	msg := []byte("hello, replicated world")
	var clientGot []byte
	var established, closed bool
	conn, err := n.a.TCP().Dial(n.bAddr, 80)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	conn.OnEstablished(func() {
		established = true
		if _, err := conn.Write(msg); err != nil {
			t.Errorf("client write: %v", err)
		}
	})
	buf := make([]byte, 4096)
	conn.OnReadable(func() {
		for {
			m, err := conn.Read(buf)
			if m > 0 {
				clientGot = append(clientGot, buf[:m]...)
				if len(clientGot) >= len(msg) {
					conn.Close()
				}
			}
			if err == io.EOF || m == 0 {
				return
			}
		}
	})
	conn.OnClose(func(err error) {
		closed = true
		if err != nil {
			t.Errorf("client close err: %v", err)
		}
	})

	// The active closer lingers in TIME_WAIT for 60 s (2 MSL) before OnClose
	// fires, so run past it. (Shorter horizons used to work only because the
	// old scheduler could overshoot RunUntil past canceled events.)
	if err := n.sched.RunUntil(90 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !established {
		t.Fatal("connection never established")
	}
	if !bytes.Equal(serverGot, msg) {
		t.Errorf("server got %q, want %q", serverGot, msg)
	}
	if !bytes.Equal(clientGot, msg) {
		t.Errorf("client got %q, want %q", clientGot, msg)
	}
	if !closed {
		t.Error("client connection did not close cleanly")
	}
}

func TestTCPBulkTransferWithLoss(t *testing.T) {
	n := newTestNet(t, ethernet.Config{LossRate: 0.02})

	const total = 256 * 1024
	want := make([]byte, total)
	for i := range want {
		want[i] = byte(i * 31)
	}

	var got []byte
	_, err := n.b.TCP().Listen(9000, func(c *tcp.Conn) {
		buf := make([]byte, 8192)
		c.OnReadable(func() {
			for {
				m, err := c.Read(buf)
				if m > 0 {
					got = append(got, buf[:m]...)
				}
				if err == io.EOF {
					c.Close()
					return
				}
				if m == 0 {
					return
				}
			}
		})
	})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}

	conn, err := n.a.TCP().Dial(n.bAddr, 9000)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	sent := 0
	pump := func() {
		for sent < total {
			m, err := conn.Write(want[sent:])
			if err != nil {
				t.Errorf("write: %v", err)
				return
			}
			if m == 0 {
				return
			}
			sent += m
		}
		conn.Close()
	}
	conn.OnEstablished(pump)
	conn.OnWritable(pump)

	if err := n.sched.RunUntil(120 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if sent != total {
		t.Fatalf("only queued %d of %d bytes", sent, total)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("receiver got %d bytes, want %d; content equal=%v",
			len(got), len(want), bytes.Equal(got, want))
	}
}
