// Package netstack assembles simulated hosts: NICs, ARP, IPv4 routing and
// forwarding, and a TCP layer, wired together the way the paper describes —
// with an interposition point between TCP and IP where the failover bridge
// sublayer lives. Routers are hosts with forwarding enabled; they operate
// purely at the IP layer and have no knowledge of TCP.
package netstack

import (
	"errors"
	"fmt"
	"time"

	"tcpfailover/internal/arp"
	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/netbuf"
	"tcpfailover/internal/obs"
	"tcpfailover/internal/sim"
	"tcpfailover/internal/tcp"
)

// Profile models per-packet host processing costs. These calibrate the
// simulation against the paper's testbed, where stack-traversal time (not
// wire time) dominates small-packet latency.
type Profile struct {
	// StackIngress is charged between frame arrival and protocol processing
	// (NIC interrupt, driver, IP input).
	StackIngress time.Duration
	// StackEgress is charged between a send decision and frame transmission
	// (system call, IP output, driver).
	StackEgress time.Duration
	// ForwardDelay is a router's per-datagram forwarding cost.
	ForwardDelay time.Duration
	// BridgeDelay is the bridge sublayer's per-segment cost on the send
	// path (segment construction, checksum updates).
	BridgeDelay time.Duration
	// BridgeInbound is the bridge sublayer's per-segment cost on the
	// receive path (demultiplexing, address translation, queue matching);
	// charged only on hosts with an inbound hook installed.
	BridgeInbound time.Duration
	// JitterMax adds a uniformly random extra delay in [0, JitterMax) to
	// each ingress/egress charge, modeling OS scheduling noise. Without it
	// the simulation is so deterministic that medians equal maxima.
	JitterMax time.Duration
	// CopyPerKB is the per-kilobyte processing cost (checksum plus copy)
	// added to every ingress/egress/bridge charge. On the paper's 566 MHz
	// servers this, not the 100 Mbit/s wire, bounds bulk throughput.
	CopyPerKB time.Duration
	// NAPIBudget enables batched frame delivery when > 1: a TCP frame
	// arriving while an earlier same-flow frame still awaits its ingress
	// completion joins that pending delivery — coalesced byte-for-byte into
	// the pending segment when GRO conditions hold (see tcp.CanCoalesceRaw),
	// otherwise chained — up to NAPIBudget frames per delivery. Each frame
	// still pays its full ingress CPU charge; batching only defers delivery
	// of earlier frames to the batch's completion, like interrupt
	// coalescing. 0 (the default) preserves per-frame delivery exactly.
	NAPIBudget int
}

// perByteCost returns the size-dependent part of a packet's service time.
func (p Profile) perByteCost(payloadLen int) time.Duration {
	if p.CopyPerKB <= 0 {
		return 0
	}
	return time.Duration(int64(p.CopyPerKB) * int64(payloadLen) / 1024)
}

// DefaultProfile approximates the paper's 566 MHz Pentium III servers;
// values are calibrated so the standard-TCP connection setup time lands
// near the paper's 294 us median (see EXPERIMENTS.md).
func DefaultProfile() Profile {
	return Profile{
		StackIngress:  40 * time.Microsecond,
		StackEgress:   40 * time.Microsecond,
		ForwardDelay:  15 * time.Microsecond,
		BridgeDelay:   60 * time.Microsecond,
		BridgeInbound: 35 * time.Microsecond,
		JitterMax:     8 * time.Microsecond,
		CopyPerKB:     68 * time.Microsecond,
	}
}

// InVerdict is an inbound hook's decision.
type InVerdict int

// Inbound hook decisions.
const (
	// VerdictPass continues normal processing with the original datagram.
	VerdictPass InVerdict = iota + 1
	// VerdictDeliver delivers the (possibly rewritten) datagram to the
	// local stack even if its destination is not a local address.
	VerdictDeliver
	// VerdictDrop discards the datagram.
	VerdictDrop
)

// InboundHook inspects every received TCP datagram — including frames
// captured promiscuously — before normal IP processing. It may rewrite the
// header and payload (the secondary bridge's address translation) or
// consume the datagram (the primary bridge's demultiplexer).
type InboundHook func(ifIndex int, hdr ipv4.Header, payload []byte) (InVerdict, ipv4.Header, []byte)

// OutboundHook interposes on segments the local TCP layer emits, before IP
// encapsulation. Returning true consumes the segment (the bridge will emit
// its own datagrams instead).
type OutboundHook func(src, dst ipv4.Addr, segment []byte) bool

// ErrHostDown is returned when sending from a crashed host.
var ErrHostDown = errors.New("netstack: host is down")

// ErrNoRoute is returned when no route matches a destination.
var ErrNoRoute = errors.New("netstack: no route to host")

// Iface is one attached network interface.
type Iface struct {
	host  *Host
	index int
	nic   *ethernet.NIC
	arp   *arp.Module
	addrs []ipv4.Addr
}

// NIC exposes the underlying Ethernet interface (promiscuous control).
func (i *Iface) NIC() *ethernet.NIC { return i.nic }

// ARP exposes the interface's ARP module (cache seeding, announcements).
func (i *Iface) ARP() *arp.Module { return i.arp }

// Index returns the interface index within its host.
func (i *Iface) Index() int { return i.index }

// Addrs returns the interface's addresses.
func (i *Iface) Addrs() []ipv4.Addr {
	out := make([]ipv4.Addr, len(i.addrs))
	copy(out, i.addrs)
	return out
}

// Addr returns the interface's primary address.
func (i *Iface) Addr() ipv4.Addr {
	if len(i.addrs) == 0 {
		return 0
	}
	return i.addrs[0]
}

// Host is a simulated computer.
type Host struct {
	name    string
	sched   *sim.Scheduler
	profile Profile

	ifaces     []*Iface
	routes     ipv4.Table
	forwarding bool
	alive      bool
	ipID       uint16

	tcpCfg   tcp.Config
	tcpStack *tcp.Stack

	inHook    InboundHook
	outHook   OutboundHook
	protocols map[uint8][]func(hdr ipv4.Header, payload []byte)

	// The host CPU is a single serial resource (the paper's servers are
	// uniprocessors): receive and transmit processing contend for it.
	cpuBusyUntil time.Duration

	// Free list of packet events: every scheduled stack crossing (ingress,
	// egress, forward) reuses these instead of allocating a closure.
	pktFree []*pktEvent

	// inPend tracks, per TCP flow, the ingress delivery still awaiting its
	// completion time, so NAPI batching (Profile.NAPIBudget) can coalesce
	// later same-flow frames into it. Nil until the first batched frame.
	inPend map[flowKey]*pktEvent

	// taps observe every datagram the host receives (post-ingress-delay)
	// and sends. A fan-out list, not a single func: the trace facility, the
	// obs flight recorder, and tests can all watch one host at once.
	taps []PacketTapFunc

	// napiBatch records the frame count of each batched TCP ingress
	// delivery (a discard handle until AttachObs).
	napiBatch obs.Histogram
	// obsReg, when set, is handed to the TCP stack at creation.
	obsReg *obs.Registry
}

// PacketTapFunc observes one datagram from the host's viewpoint; dir is
// "rx" or "tx".
type PacketTapFunc func(dir string, hdr ipv4.Header, payload []byte)

// AddPacketTap appends a packet observer. Taps run in attachment order and
// must not retain the payload slice past the call (it may be a pooled
// buffer's bytes).
func (h *Host) AddPacketTap(f PacketTapFunc) { h.taps = append(h.taps, f) }

// AttachRecorder taps the host into an obs flight recorder: every datagram
// the host receives or sends is captured (the recorder copies, so the
// pooled payload is not retained).
func (h *Host) AttachRecorder(rec *obs.Recorder) {
	name, sched := h.name, h.sched
	h.AddPacketTap(func(dir string, hdr ipv4.Header, payload []byte) {
		rec.Record(sched.Now(), name, dir, hdr, payload)
	})
}

// tap fans one datagram out to every attached observer.
func (h *Host) tap(dir string, hdr ipv4.Header, payload []byte) {
	for _, f := range h.taps {
		f(dir, hdr, payload)
	}
}

// NewHost creates a host.
func NewHost(sched *sim.Scheduler, name string, profile Profile) *Host {
	return &Host{
		name:      name,
		sched:     sched,
		profile:   profile,
		alive:     true,
		protocols: make(map[uint8][]func(ipv4.Header, []byte)),
		napiBatch: (*obs.Registry)(nil).Histogram("net_napi_batch_frames", napiBatchBounds),
	}
}

// napiBatchBounds bucket the NAPI delivery sizes; the top bucket is wide
// open so oversized budgets still land somewhere meaningful.
var napiBatchBounds = []int64{1, 2, 4, 8, 16, 32}

// AttachObs resolves the host's metric handles against reg (labeled with
// the host's name). The TCP stack's handles attach when the stack is
// created — AttachObs deliberately does not create it, so SetTCPConfig
// calls after scenario construction still take effect.
func (h *Host) AttachObs(reg *obs.Registry) {
	h.obsReg = reg
	h.napiBatch = reg.Histogram(
		fmt.Sprintf("net_napi_batch_frames{host=%q}", h.name), napiBatchBounds)
	if h.tcpStack != nil {
		h.tcpStack.AttachObs(reg, h.name)
	}
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Scheduler returns the simulation scheduler.
func (h *Host) Scheduler() *sim.Scheduler { return h.sched }

// Profile returns the host's processing-cost profile.
func (h *Host) Profile() Profile { return h.profile }

// Alive reports whether the host is running.
func (h *Host) Alive() bool { return h.alive }

// SetForwarding turns the host into a router.
func (h *Host) SetForwarding(on bool) { h.forwarding = on }

// SetTCPConfig sets the TCP configuration; it must be called before the
// first use of TCP.
func (h *Host) SetTCPConfig(cfg tcp.Config) { h.tcpCfg = cfg }

// TCP returns the host's TCP stack, creating it on first use.
func (h *Host) TCP() *tcp.Stack {
	if h.tcpStack == nil {
		h.tcpStack = tcp.NewStack(h.sched, h.tcpCfg, h.tcpOutput, h.sourceAddrFor)
		if h.obsReg != nil {
			h.tcpStack.AttachObs(h.obsReg, h.name)
		}
	}
	return h.tcpStack
}

// AttachIface connects the host to a segment with the given MAC and primary
// address, installing an on-link route for the prefix.
func (h *Host) AttachIface(seg *ethernet.Segment, mac ethernet.MAC, addr ipv4.Addr, prefix ipv4.Prefix) *Iface {
	nic := seg.Attach(mac)
	ifc := &Iface{host: h, index: len(h.ifaces), nic: nic}
	if !addr.IsZero() {
		ifc.addrs = append(ifc.addrs, addr)
	}
	ifc.arp = arp.New(h.sched, nic, arp.Config{},
		func(ip ipv4.Addr) bool { return h.alive && ifc.hasAddr(ip) },
		func() ipv4.Addr { return ifc.Addr() })
	nic.SetHandler(func(f ethernet.Frame) { h.frameIn(ifc, f) })
	h.ifaces = append(h.ifaces, ifc)
	h.routes.Add(ipv4.Route{Dst: prefix, IfIndex: ifc.index})
	return ifc
}

// SetARPConfig replaces an interface's ARP module configuration (used to
// model the router's ARP-processing latency).
func (h *Host) SetARPConfig(ifIndex int, cfg arp.Config) {
	ifc := h.ifaces[ifIndex]
	ifc.arp = arp.New(h.sched, ifc.nic, cfg,
		func(ip ipv4.Addr) bool { return h.alive && ifc.hasAddr(ip) },
		func() ipv4.Addr { return ifc.Addr() })
}

func (i *Iface) hasAddr(a ipv4.Addr) bool {
	for _, x := range i.addrs {
		if x == a {
			return true
		}
	}
	return false
}

// Iface returns the interface at index.
func (h *Host) Iface(index int) *Iface { return h.ifaces[index] }

// Ifaces returns all interfaces.
func (h *Host) Ifaces() []*Iface { return h.ifaces }

// AddAddress adds an address to an interface (IP takeover).
func (h *Host) AddAddress(ifIndex int, addr ipv4.Addr) {
	ifc := h.ifaces[ifIndex]
	if !ifc.hasAddr(addr) {
		ifc.addrs = append(ifc.addrs, addr)
	}
}

// RemoveAddress removes an address from an interface.
func (h *Host) RemoveAddress(ifIndex int, addr ipv4.Addr) {
	ifc := h.ifaces[ifIndex]
	for i, x := range ifc.addrs {
		if x == addr {
			ifc.addrs = append(ifc.addrs[:i], ifc.addrs[i+1:]...)
			return
		}
	}
}

// AddRoute installs a route.
func (h *Host) AddRoute(dst ipv4.Prefix, nextHop ipv4.Addr, ifIndex int) {
	h.routes.Add(ipv4.Route{Dst: dst, NextHop: nextHop, IfIndex: ifIndex})
}

// Owns reports whether addr is local to the host.
func (h *Host) Owns(addr ipv4.Addr) bool {
	for _, ifc := range h.ifaces {
		if ifc.hasAddr(addr) {
			return true
		}
	}
	return false
}

// SetInboundHook installs the bridge's inbound interposition point.
func (h *Host) SetInboundHook(hook InboundHook) { h.inHook = hook }

// SetOutboundHook installs the bridge's outbound interposition point.
func (h *Host) SetOutboundHook(hook OutboundHook) { h.outHook = hook }

// RegisterProtocol installs a handler for a non-TCP IP protocol (the fault
// detector's heartbeats use this). Multiple handlers per protocol are
// supported; each receives every datagram.
func (h *Host) RegisterProtocol(proto uint8, handler func(hdr ipv4.Header, payload []byte)) {
	h.protocols[proto] = append(h.protocols[proto], handler)
}

// Crash stops the host: interfaces go down and all future I/O is dropped.
// It models fail-stop host or process failure.
func (h *Host) Crash() {
	h.alive = false
	for _, ifc := range h.ifaces {
		ifc.nic.SetUp(false)
	}
}

// Restart brings a crashed host's interfaces back up. (Reintegration of the
// replication protocol is out of scope, as in the paper; this only restores
// basic connectivity.)
func (h *Host) Restart() {
	h.alive = true
	for _, ifc := range h.ifaces {
		ifc.nic.SetUp(true)
	}
}

// --- receive path -----------------------------------------------------------

// pktEvent carries one datagram across a scheduled stack crossing (ingress,
// egress, forward) without a per-packet closure allocation. Events live on
// the host's free list; buf is the pooled buffer backing payload, if any.
//
// With NAPI batching, an ingress pktEvent can head a chain: later same-flow
// frames link in through next, tail points at the chain's last element, and
// timer re-arms the head's delivery to the latest frame's ingress
// completion. Only the head is registered in the host's pending-flow table.
type pktEvent struct {
	h       *Host
	ifc     *Iface
	hdr     ipv4.Header
	payload []byte
	buf     *netbuf.Buffer

	next    *pktEvent
	tail    *pktEvent
	chained int
	timer   sim.Timer
	key     flowKey
	pending bool // head of a chain registered in h.inPend
}

// flowKey identifies a TCP flow at ingress for NAPI batching.
type flowKey struct {
	src, dst     ipv4.Addr
	sport, dport uint16
}

func (h *Host) getPktEvent() *pktEvent {
	if n := len(h.pktFree); n > 0 {
		e := h.pktFree[n-1]
		h.pktFree = h.pktFree[:n-1]
		return e
	}
	return &pktEvent{h: h}
}

func (h *Host) putPktEvent(e *pktEvent) {
	e.ifc, e.hdr, e.payload, e.buf = nil, ipv4.Header{}, nil, nil
	e.next, e.tail, e.chained = nil, nil, 0
	e.timer, e.key, e.pending = sim.Timer{}, flowKey{}, false
	h.pktFree = append(h.pktFree, e)
}

func releaseBuf(b *netbuf.Buffer) {
	if b != nil {
		b.Release()
	}
}

func (h *Host) frameIn(ifc *Iface, f ethernet.Frame) {
	if !h.alive {
		f.Buf.Release() // handler owns the delivered frame's buffer
		return
	}
	switch f.Type {
	case ethernet.TypeARP:
		ifc.arp.HandleFrame(f) // releases the buffer after parsing
	case ethernet.TypeIPv4:
		hdr, payload, err := ipv4.Unmarshal(f.Payload)
		if err != nil {
			f.Buf.Release()
			return
		}
		if h.profile.NAPIBudget > 1 && hdr.Protocol == ipv4.ProtoTCP && len(payload) >= tcp.HeaderLen {
			h.batchedIn(ifc, hdr, payload, f.Buf)
			return
		}
		e := h.getPktEvent()
		e.ifc, e.hdr, e.payload, e.buf = ifc, hdr, payload, f.Buf
		h.sched.AtArg(h.chargeIngress(len(payload)), "ip.input", runIPInput, e)
	default:
		f.Buf.Release()
	}
}

// batchedIn is frameIn's TCP ingress path under NAPI batching. A frame whose
// flow already has a delivery pending joins it — GRO-merged into the pending
// tail segment when the byte-level conditions hold, otherwise chained — and
// the pending delivery is re-armed to the new ingress completion time.
// Otherwise the frame becomes a new pending chain head. CPU charging is
// identical to the unbatched path; only delivery grouping changes, and all
// decisions are functions of simulation state, so determinism is preserved.
func (h *Host) batchedIn(ifc *Iface, hdr ipv4.Header, payload []byte, buf *netbuf.Buffer) {
	key := flowKey{src: hdr.Src, dst: hdr.Dst,
		sport: tcp.RawSrcPort(payload), dport: tcp.RawDstPort(payload)}
	if head := h.inPend[key]; head != nil && head.ifc == ifc && head.chained < h.profile.NAPIBudget {
		head.chained++
		when := h.chargeIngress(len(payload))
		t := head.tail
		// GRO byte merge: append the new payload onto the pending tail
		// segment when it continues the sequence run, header shapes match,
		// and the merged packet still fits the tail's pooled store.
		hl := tcp.RawHeaderLen(payload)
		if t.buf != nil && t.buf.Len() == ipv4.HeaderLen+len(t.payload) &&
			t.buf.Room() >= len(payload)-hl && tcp.CanCoalesceRaw(t.payload, payload) {
			copy(t.buf.Extend(len(payload)-hl), payload[hl:])
			t.payload = t.buf.Bytes()[ipv4.HeaderLen:]
			tcp.FinishCoalesceRaw(hdr.Src, hdr.Dst, t.payload, payload)
			buf.Release()
		} else {
			e := h.getPktEvent()
			e.ifc, e.hdr, e.payload, e.buf = ifc, hdr, payload, buf
			t.next = e
			head.tail = e
		}
		head.timer.Stop()
		head.timer = h.sched.AtArg(when, "ip.input", runIPInput, head)
		return
	}
	e := h.getPktEvent()
	e.ifc, e.hdr, e.payload, e.buf = ifc, hdr, payload, buf
	e.tail, e.chained, e.key, e.pending = e, 1, key, true
	if h.inPend == nil {
		h.inPend = make(map[flowKey]*pktEvent)
	}
	h.inPend[key] = e
	e.timer = h.sched.AtArg(h.chargeIngress(len(payload)), "ip.input", runIPInput, e)
}

func runIPInput(v any) {
	e := v.(*pktEvent)
	h := e.h
	if e.pending {
		delete(h.inPend, e.key)
		h.napiBatch.Observe(int64(e.chained))
	}
	for e != nil {
		next := e.next
		ifc, hdr, payload, buf := e.ifc, e.hdr, e.payload, e.buf
		h.putPktEvent(e)
		h.ipInput(ifc, hdr, payload, buf)
		e = next
	}
}

// ipInput owns buf, the pooled buffer backing payload (nil when the caller
// retains ownership); every path either releases it or hands it on. Protocol
// input below this point copies whatever it keeps.
func (h *Host) ipInput(ifc *Iface, hdr ipv4.Header, payload []byte, buf *netbuf.Buffer) {
	if !h.alive {
		releaseBuf(buf)
		return
	}
	if len(h.taps) > 0 {
		h.tap("rx", hdr, payload)
	}
	if h.inHook != nil && hdr.Protocol == ipv4.ProtoTCP {
		verdict, nh, np := h.inHook(ifc.index, hdr, payload)
		switch verdict {
		case VerdictDrop:
			releaseBuf(buf)
			return
		case VerdictDeliver:
			h.deliverLocal(nh, np)
			releaseBuf(buf)
			return
		}
	}
	if h.Owns(hdr.Dst) {
		h.deliverLocal(hdr, payload)
		releaseBuf(buf)
		return
	}
	if h.forwarding {
		h.forward(hdr, payload, buf)
		return
	}
	releaseBuf(buf)
}

func (h *Host) deliverLocal(hdr ipv4.Header, payload []byte) {
	switch hdr.Protocol {
	case ipv4.ProtoTCP:
		h.TCP().Input(hdr.Src, hdr.Dst, payload)
	default:
		for _, handler := range h.protocols[hdr.Protocol] {
			if handler != nil {
				handler(hdr, payload)
			}
		}
	}
}

// forward queues a datagram for router transmission. It takes ownership of
// buf; when the buffer holds exactly the received datagram, the IP header is
// trimmed off in place (reclaiming it as headroom for the rewritten header)
// and the payload is forwarded without a copy.
func (h *Host) forward(hdr ipv4.Header, payload []byte, buf *netbuf.Buffer) {
	if hdr.TTL <= 1 {
		releaseBuf(buf)
		return
	}
	hdr.TTL--
	e := h.getPktEvent()
	e.hdr = hdr
	if buf != nil && buf.Len() == ipv4.HeaderLen+len(payload) {
		buf.TrimFront(ipv4.HeaderLen)
		e.buf = buf
	} else {
		e.buf = netbuf.From(payload)
		releaseBuf(buf)
	}
	h.sched.AtArg(h.chargeEgress(h.profile.ForwardDelay, 0), "ip.forward", runTransmit, e)
}

// chargeIngress reserves the ingress path for one packet and returns the
// time processing completes. Hosts running a bridge pay its inbound
// per-segment cost on every received TCP datagram.
func (h *Host) chargeIngress(payloadLen int) time.Duration {
	service := h.profile.StackIngress + h.profile.perByteCost(payloadLen)
	if h.inHook != nil {
		service += h.profile.BridgeInbound
	}
	start := max(h.sched.Now(), h.cpuBusyUntil)
	h.cpuBusyUntil = start + service + h.jitter()
	return h.cpuBusyUntil
}

// chargeEgress reserves the egress path for one packet with the given
// service time and returns the completion time.
func (h *Host) chargeEgress(service time.Duration, payloadLen int) time.Duration {
	start := max(h.sched.Now(), h.cpuBusyUntil)
	h.cpuBusyUntil = start + service + h.profile.perByteCost(payloadLen) + h.jitter()
	return h.cpuBusyUntil
}

func (h *Host) jitter() time.Duration {
	if h.profile.JitterMax <= 0 {
		return 0
	}
	return time.Duration(h.sched.Rand().Int63n(int64(h.profile.JitterMax)))
}

// --- send path ----------------------------------------------------------------

// tcpOutput is the TCP stack's Output: the bridge hook interposes here,
// exactly between the TCP layer and the IP layer. It owns pkt.
func (h *Host) tcpOutput(src, dst ipv4.Addr, pkt *netbuf.Buffer) error {
	if !h.alive {
		pkt.Release()
		return ErrHostDown
	}
	if h.outHook != nil && h.outHook(src, dst, pkt.Bytes()) {
		pkt.Release()
		return nil
	}
	return h.sendPacket(src, dst, ipv4.ProtoTCP, pkt, h.profile.StackEgress, "ip.output")
}

// SendIP emits a locally originated datagram, charging the stack-egress
// processing cost. The payload is copied; the caller keeps its slice.
func (h *Host) SendIP(src, dst ipv4.Addr, proto uint8, payload []byte) error {
	if !h.alive {
		return ErrHostDown
	}
	return h.sendPacket(src, dst, proto, netbuf.From(payload), h.profile.StackEgress, "ip.output")
}

// SendIPFast emits a datagram with only the bridge processing cost; the
// bridges use it for segments that never traverse the full local stack. The
// payload is copied; the caller keeps its slice.
func (h *Host) SendIPFast(src, dst ipv4.Addr, proto uint8, payload []byte) error {
	if !h.alive {
		return ErrHostDown
	}
	return h.sendPacket(src, dst, proto, netbuf.From(payload), h.profile.BridgeDelay, "bridge.output")
}

// SendIPFastBuf is SendIPFast without the copy: it takes ownership of pkt,
// a pooled buffer the bridge marshaled its segment into directly. This is
// the bridges' zero-allocation steady-state emit path.
func (h *Host) SendIPFastBuf(src, dst ipv4.Addr, proto uint8, pkt *netbuf.Buffer) error {
	if !h.alive {
		pkt.Release()
		return ErrHostDown
	}
	return h.sendPacket(src, dst, proto, pkt, h.profile.BridgeDelay, "bridge.output")
}

// sendPacket queues a locally originated datagram for transmission, taking
// ownership of pkt (the IP payload; headers are prepended in transmit).
func (h *Host) sendPacket(src, dst ipv4.Addr, proto uint8, pkt *netbuf.Buffer, service time.Duration, what string) error {
	hdr := ipv4.Header{ID: h.ipID, TTL: ipv4.DefaultTTL, Protocol: proto, Src: src, Dst: dst}
	h.ipID++
	e := h.getPktEvent()
	e.hdr, e.buf = hdr, pkt
	h.sched.AtArg(h.chargeEgress(service, pkt.Len()), what, runTransmit, e)
	return nil
}

func runTransmit(v any) {
	e := v.(*pktEvent)
	h, hdr, pkt := e.h, e.hdr, e.buf
	h.putPktEvent(e)
	h.transmit(hdr, pkt)
}

// transmit owns pkt, which holds the IP payload; the IPv4 header is
// prepended into its headroom in place and the same buffer rides the frame
// down to the Ethernet layer.
func (h *Host) transmit(hdr ipv4.Header, pkt *netbuf.Buffer) {
	if !h.alive {
		pkt.Release()
		return
	}
	if len(h.taps) > 0 {
		h.tap("tx", hdr, pkt.Bytes())
	}
	route, ok := h.routes.Lookup(hdr.Dst)
	if !ok {
		pkt.Release()
		return
	}
	ifc := h.ifaces[route.IfIndex]
	nextHop := hdr.Dst
	if !route.NextHop.IsZero() {
		nextHop = route.NextHop
	}
	ipv4.PrependHeader(pkt, hdr)
	if mac, ok := ifc.arp.Lookup(nextHop); ok {
		// Warm ARP cache: send without the resolver closure.
		_ = ifc.nic.Send(ethernet.Frame{Dst: mac, Type: ethernet.TypeIPv4, Payload: pkt.Bytes(), Buf: pkt})
		return
	}
	ifc.arp.Resolve(nextHop, func(mac ethernet.MAC, err error) {
		if err != nil || !h.alive {
			pkt.Release()
			return
		}
		_ = ifc.nic.Send(ethernet.Frame{Dst: mac, Type: ethernet.TypeIPv4, Payload: pkt.Bytes(), Buf: pkt})
	})
}

// sourceAddrFor picks the local address for a destination by routing.
func (h *Host) sourceAddrFor(dst ipv4.Addr) (ipv4.Addr, bool) {
	route, ok := h.routes.Lookup(dst)
	if !ok {
		return 0, false
	}
	a := h.ifaces[route.IfIndex].Addr()
	return a, !a.IsZero()
}

// String identifies the host in traces.
func (h *Host) String() string { return fmt.Sprintf("host(%s)", h.name) }
