package netstack_test

import (
	"io"
	"testing"

	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/netbuf"
	"tcpfailover/internal/tcp"
)

// TestNoBufferLeaks runs a lossy transfer end to end, lets both connections
// close, and then drains the scheduler to empty: every pooled packet buffer
// acquired along the way — including clones for multi-receiver delivery,
// retransmissions, and frames dropped by the lossy segment — must have been
// released exactly once. A missed release shows up as Live() > 0; a double
// release panics inside the run.
func TestNoBufferLeaks(t *testing.T) {
	netbuf.SetLeakCheck(true)
	defer netbuf.SetLeakCheck(false)

	n := newTestNet(t, ethernet.Config{LossRate: 0.05})

	const total = 64 * 1024
	payload := make([]byte, total)
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := n.b.TCP().Listen(7000, func(c *tcp.Conn) {
		buf := make([]byte, 8192)
		c.OnReadable(func() {
			for {
				m, err := c.Read(buf)
				if err == io.EOF {
					c.Close()
					return
				}
				if m == 0 {
					return
				}
			}
		})
	}); err != nil {
		t.Fatal(err)
	}
	conn, err := n.a.TCP().Dial(n.bAddr, 7000)
	if err != nil {
		t.Fatal(err)
	}
	sent := 0
	pump := func() {
		for sent < total {
			m, err := conn.Write(payload[sent:])
			if err != nil {
				t.Errorf("write: %v", err)
				return
			}
			if m == 0 {
				return
			}
			sent += m
		}
		conn.Close()
	}
	conn.OnEstablished(pump)
	conn.OnWritable(pump)

	// Drain everything: data, retransmissions, FIN handshakes, TIME_WAIT.
	for n.sched.Step() {
	}
	if sent != total {
		t.Fatalf("only queued %d of %d bytes", sent, total)
	}
	if live := netbuf.Live(); live != 0 {
		t.Errorf("%d packet buffers still live after the event queue drained, want 0", live)
	}
}
