package netstack_test

import (
	"testing"

	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/sim"
	"tcpfailover/internal/tcp"
)

// BenchmarkPacketPath measures the full per-segment cost of the simulated
// stack: TCP segmentation and marshaling, IP encapsulation, Ethernet
// delivery, and receive-side processing, for a bulk one-way transfer between
// two hosts on one LAN. allocs/op tracks the packet path's buffer traffic;
// ns/op is simulator cost per transferred chunk.
func BenchmarkPacketPath(b *testing.B) {
	const chunk = 256 * 1024
	b.ReportAllocs()
	b.SetBytes(chunk)
	for i := 0; i < b.N; i++ {
		sched := sim.New(7)
		lan := ethernet.NewSegment(sched, ethernet.Config{})
		prefix := ipv4.PrefixFrom(ipv4.MustParseAddr("10.0.0.0"), 24)
		aS := ipv4.MustParseAddr("10.0.0.1")
		aC := ipv4.MustParseAddr("10.0.0.2")

		srv := netstack.NewHost(sched, "srv", netstack.DefaultProfile())
		ifS := srv.AttachIface(lan, ethernet.MAC{2, 0, 0, 0, 0, 1}, aS, prefix)
		cli := netstack.NewHost(sched, "cli", netstack.DefaultProfile())
		ifC := cli.AttachIface(lan, ethernet.MAC{2, 0, 0, 0, 0, 2}, aC, prefix)
		ifS.ARP().Seed(aC, ifC.NIC().MAC())
		ifC.ARP().Seed(aS, ifS.NIC().MAC())

		received := 0
		_, err := srv.TCP().Listen(9000, func(c *tcp.Conn) {
			buf := make([]byte, 64*1024)
			c.OnReadable(func() {
				for {
					n, _ := c.Read(buf)
					if n == 0 {
						break
					}
					received += n
				}
			})
		})
		if err != nil {
			b.Fatal(err)
		}

		conn, err := cli.TCP().Dial(aS, 9000)
		if err != nil {
			b.Fatal(err)
		}
		payload := make([]byte, 32*1024)
		sent := 0
		pump := func() {
			for sent < chunk {
				n := min(chunk-sent, len(payload))
				w, err := conn.Write(payload[:n])
				if err != nil {
					b.Fatal(err)
				}
				if w == 0 {
					return
				}
				sent += w
			}
		}
		conn.OnEstablished(pump)
		conn.OnWritable(pump)
		if err := sched.Run(); err != nil {
			b.Fatal(err)
		}
		if received != chunk {
			b.Fatalf("received %d of %d bytes", received, chunk)
		}
	}
}
