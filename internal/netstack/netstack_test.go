package netstack_test

import (
	"testing"
	"time"

	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/sim"
	"tcpfailover/internal/tcp"
)

// routedNet is a two-LAN topology with a router, mirroring the scenario
// shape but built by hand for netstack-level tests.
type routedNet struct {
	sched  *sim.Scheduler
	lan1   *ethernet.Segment
	lan2   *ethernet.Segment
	h1     *netstack.Host // on lan1
	h2     *netstack.Host // on lan2
	router *netstack.Host
	a1, a2 ipv4.Addr
}

func newRoutedNet(t *testing.T) *routedNet {
	t.Helper()
	sched := sim.New(1)
	n := &routedNet{
		sched: sched,
		lan1:  ethernet.NewSegment(sched, ethernet.Config{}),
		lan2:  ethernet.NewSegment(sched, ethernet.Config{}),
		a1:    ipv4.MustParseAddr("10.0.1.1"),
		a2:    ipv4.MustParseAddr("10.0.2.1"),
	}
	p1 := ipv4.PrefixFrom(ipv4.MustParseAddr("10.0.1.0"), 24)
	p2 := ipv4.PrefixFrom(ipv4.MustParseAddr("10.0.2.0"), 24)
	r1 := ipv4.MustParseAddr("10.0.1.254")
	r2 := ipv4.MustParseAddr("10.0.2.254")

	n.router = netstack.NewHost(sched, "r", netstack.DefaultProfile())
	n.router.SetForwarding(true)
	n.router.AttachIface(n.lan1, ethernet.MAC{2, 0, 0, 0, 0, 0xf1}, r1, p1)
	n.router.AttachIface(n.lan2, ethernet.MAC{2, 0, 0, 0, 0, 0xf2}, r2, p2)

	n.h1 = netstack.NewHost(sched, "h1", netstack.DefaultProfile())
	n.h1.AttachIface(n.lan1, ethernet.MAC{2, 0, 0, 0, 0, 1}, n.a1, p1)
	n.h1.AddRoute(ipv4.PrefixFrom(0, 0), r1, 0)

	n.h2 = netstack.NewHost(sched, "h2", netstack.DefaultProfile())
	n.h2.AttachIface(n.lan2, ethernet.MAC{2, 0, 0, 0, 0, 2}, n.a2, p2)
	n.h2.AddRoute(ipv4.PrefixFrom(0, 0), r2, 0)
	return n
}

const testProto = 200

func TestForwardingAcrossRouter(t *testing.T) {
	n := newRoutedNet(t)
	var got []byte
	var gotHdr ipv4.Header
	n.h2.RegisterProtocol(testProto, func(hdr ipv4.Header, payload []byte) {
		gotHdr = hdr
		got = append([]byte(nil), payload...)
	})
	if err := n.h1.SendIP(n.a1, n.a2, testProto, []byte("across the router")); err != nil {
		t.Fatal(err)
	}
	if err := n.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "across the router" {
		t.Fatalf("h2 received %q", got)
	}
	if gotHdr.TTL != ipv4.DefaultTTL-1 {
		t.Errorf("TTL = %d, want decremented once", gotHdr.TTL)
	}
	if gotHdr.Src != n.a1 || gotHdr.Dst != n.a2 {
		t.Errorf("addresses: %v -> %v", gotHdr.Src, gotHdr.Dst)
	}
}

func TestTTLExpiryDropsDatagram(t *testing.T) {
	n := newRoutedNet(t)
	// Second router in a loop is overkill; instead point h1's default route
	// back at itself via the router and give the datagram TTL 1 by sending
	// through two hops: craft with a direct low-TTL injection.
	received := false
	n.h2.RegisterProtocol(testProto, func(ipv4.Header, []byte) { received = true })

	// Host-originated datagrams start at TTL 64; verify the router drops
	// TTL<=1 by delivering one directly onto lan1 addressed through it.
	raw := ipv4.Marshal(ipv4.Header{TTL: 1, Protocol: testProto, Src: n.a1, Dst: n.a2}, []byte("x"))
	nic := n.h1.Iface(0).NIC()
	if err := nic.Send(ethernet.Frame{
		Dst:     ethernet.MAC{2, 0, 0, 0, 0, 0xf1},
		Type:    ethernet.TypeIPv4,
		Payload: raw,
	}); err != nil {
		t.Fatal(err)
	}
	if err := n.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if received {
		t.Error("TTL-1 datagram was forwarded")
	}
}

func TestNonForwardingHostDropsTransit(t *testing.T) {
	n := newRoutedNet(t)
	// h1 receives a datagram addressed to h2 (promiscuous-style direct
	// injection); without forwarding enabled it must not relay it.
	received := false
	n.h2.RegisterProtocol(testProto, func(ipv4.Header, []byte) { received = true })
	raw := ipv4.Marshal(ipv4.Header{TTL: 64, Protocol: testProto, Src: n.a1, Dst: n.a2}, []byte("x"))
	// Deliver directly to h1's NIC MAC so h1's IP layer sees a non-local dst.
	r := n.router.Iface(0).NIC()
	if err := r.Send(ethernet.Frame{
		Dst:     ethernet.MAC{2, 0, 0, 0, 0, 1},
		Type:    ethernet.TypeIPv4,
		Payload: raw,
	}); err != nil {
		t.Fatal(err)
	}
	if err := n.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if received {
		t.Error("non-forwarding host relayed a transit datagram")
	}
}

func TestInboundHookRewritesAndDelivers(t *testing.T) {
	// The secondary-bridge pattern: promiscuous NIC + inbound hook that
	// rewrites a foreign destination to a local one.
	sched := sim.New(1)
	lan := ethernet.NewSegment(sched, ethernet.Config{})
	prefix := ipv4.PrefixFrom(ipv4.MustParseAddr("10.0.1.0"), 24)
	aP := ipv4.MustParseAddr("10.0.1.1")
	aS := ipv4.MustParseAddr("10.0.1.2")

	sender := netstack.NewHost(sched, "sender", netstack.DefaultProfile())
	sender.AttachIface(lan, ethernet.MAC{2, 0, 0, 0, 0, 1}, aP, prefix)

	snooper := netstack.NewHost(sched, "snooper", netstack.DefaultProfile())
	snooper.AttachIface(lan, ethernet.MAC{2, 0, 0, 0, 0, 2}, aS, prefix)
	snooper.Iface(0).NIC().SetPromiscuous(true)

	// A third host owns aP so the datagram is legitimately addressed there.
	target := netstack.NewHost(sched, "target", netstack.DefaultProfile())
	target.AttachIface(lan, ethernet.MAC{2, 0, 0, 0, 0, 3}, ipv4.MustParseAddr("10.0.1.3"), prefix)
	_ = target

	var delivered []byte
	snooper.RegisterProtocol(ipv4.ProtoTCP, nil) // not used; hook handles
	snooper.SetInboundHook(func(ifIndex int, hdr ipv4.Header, payload []byte) (netstack.InVerdict, ipv4.Header, []byte) {
		if hdr.Dst == aP {
			hdr.Dst = aS
			delivered = append([]byte(nil), payload...)
			return netstack.VerdictDrop, hdr, payload // drop after recording
		}
		return netstack.VerdictPass, hdr, payload
	})

	seg := tcp.Marshal(ipv4.MustParseAddr("10.0.1.3"), aP, &tcp.Segment{SrcPort: 1, DstPort: 2, Flags: tcp.FlagACK})
	if err := sender.SendIP(ipv4.MustParseAddr("10.0.1.3"), aP, ipv4.ProtoTCP, seg); err != nil {
		t.Fatal(err)
	}
	// Seed ARP so the unicast resolves.
	sender.Iface(0).ARP().Seed(aP, ethernet.MAC{2, 0, 0, 0, 0, 1})
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(delivered) == 0 {
		t.Fatal("promiscuous inbound hook never saw the snooped datagram")
	}
}

func TestOutboundHookConsumesSegments(t *testing.T) {
	n := newRoutedNet(t)
	consumed := 0
	n.h1.SetOutboundHook(func(src, dst ipv4.Addr, segment []byte) bool {
		consumed++
		return true // swallow everything
	})
	if _, err := n.h1.TCP().Dial(n.a2, 80); err != nil {
		t.Fatal(err)
	}
	if err := n.sched.RunUntil(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if consumed == 0 {
		t.Error("outbound hook never saw the SYN")
	}
	if n.lan1.Stats().Frames != 0 {
		t.Errorf("%d frames escaped despite the hook consuming all output", n.lan1.Stats().Frames)
	}
}

func TestCrashStopsAllIO(t *testing.T) {
	n := newRoutedNet(t)
	got := 0
	n.h2.RegisterProtocol(testProto, func(ipv4.Header, []byte) { got++ })
	n.h1.Crash()
	if err := n.h1.SendIP(n.a1, n.a2, testProto, []byte("x")); err == nil {
		t.Error("SendIP from crashed host succeeded")
	}
	if err := n.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Error("crashed host emitted traffic")
	}
	if n.h1.Alive() {
		t.Error("Alive() after Crash()")
	}
	n.h1.Restart()
	if err := n.h1.SendIP(n.a1, n.a2, testProto, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := n.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("after restart got %d datagrams, want 1", got)
	}
}

func TestAddRemoveAddress(t *testing.T) {
	n := newRoutedNet(t)
	alias := ipv4.MustParseAddr("10.0.1.99")
	if n.h1.Owns(alias) {
		t.Fatal("owns alias before adding")
	}
	n.h1.AddAddress(0, alias)
	if !n.h1.Owns(alias) {
		t.Fatal("does not own alias after adding")
	}
	n.h1.AddAddress(0, alias) // idempotent
	n.h1.RemoveAddress(0, alias)
	if n.h1.Owns(alias) {
		t.Fatal("owns alias after removal")
	}
	// The primary address survives alias churn.
	if !n.h1.Owns(n.a1) {
		t.Fatal("lost primary address")
	}
}

func TestHostChargesSerializeCPU(t *testing.T) {
	// Two datagrams sent back-to-back leave at least StackEgress apart.
	n := newRoutedNet(t)
	var times []time.Duration
	n.h2.RegisterProtocol(testProto, func(ipv4.Header, []byte) {
		times = append(times, n.sched.Now())
	})
	_ = n.h1.SendIP(n.a1, n.a2, testProto, make([]byte, 1000))
	_ = n.h1.SendIP(n.a1, n.a2, testProto, make([]byte, 1000))
	if err := n.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 {
		t.Fatalf("received %d datagrams", len(times))
	}
	minGap := n.h1.Profile().StackEgress
	if gap := times[1] - times[0]; gap < minGap {
		t.Errorf("datagrams %v apart, want >= %v (serial egress)", gap, minGap)
	}
}
