package netbuf

import (
	"bytes"
	"testing"
)

func TestExtendPrependRoundTrip(t *testing.T) {
	b := Get()
	defer b.Release()
	copy(b.Extend(5), "world")
	copy(b.Prepend(6), "hello ")
	if got := string(b.Bytes()); got != "hello world" {
		t.Fatalf("Bytes() = %q", got)
	}
	if b.Len() != 11 {
		t.Fatalf("Len() = %d", b.Len())
	}
}

func TestPrependBeyondHeadroomPanics(t *testing.T) {
	b := Get()
	defer b.Release()
	defer func() {
		if recover() == nil {
			t.Error("Prepend past headroom did not panic")
		}
	}()
	b.Prepend(Headroom + 1)
}

func TestOversizeExtendGrows(t *testing.T) {
	b := Get()
	big := b.Extend(4 * payloadRoom)
	for i := range big {
		big[i] = byte(i)
	}
	if b.Len() != 4*payloadRoom {
		t.Fatalf("Len() = %d", b.Len())
	}
	b.Release() // grown store must not poison the pool
	c := Get()
	defer c.Release()
	if cap(c.store) != storeSize {
		t.Errorf("pool handed out a grown store (cap %d)", cap(c.store))
	}
}

func TestCloneIsIndependent(t *testing.T) {
	b := From([]byte("original"))
	c := b.Clone()
	b.Bytes()[0] = 'X'
	if !bytes.Equal(c.Bytes(), []byte("original")) {
		t.Errorf("clone aliases original: %q", c.Bytes())
	}
	c.Prepend(4) // clone has its own headroom
	b.Release()
	c.Release()
}

func TestDoubleReleasePanics(t *testing.T) {
	b := Get()
	b.Release()
	defer func() {
		if recover() == nil {
			t.Error("double Release did not panic")
		}
	}()
	b.Release()
}

func TestLeakCheckCountsLiveBuffers(t *testing.T) {
	SetLeakCheck(true)
	defer SetLeakCheck(false)
	a, b := Get(), Get()
	if Live() != 2 {
		t.Fatalf("Live() = %d, want 2", Live())
	}
	a.Release()
	b.Release()
	if Live() != 0 {
		t.Fatalf("Live() = %d after releases, want 0", Live())
	}
}

func TestGetSteadyStateZeroAlloc(t *testing.T) {
	for i := 0; i < 64; i++ {
		Get().Release()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		b := Get()
		b.Extend(1460)
		b.Prepend(Headroom)
		b.Release()
	})
	// Tolerate the rare pool refill after a concurrent GC; steady state is 0.
	if allocs > 0.05 {
		t.Errorf("pooled get/release allocates %.2f per packet, want ~0", allocs)
	}
}
