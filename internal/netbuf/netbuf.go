// Package netbuf provides pooled packet buffers with headroom for the
// simulated network's hot path. A TCP payload is written once into a Buffer;
// the TCP header is written in front of it in the same allocation, and the
// IPv4 header is later prepended in place into the reserved headroom — the
// three per-layer copies of the original stack collapse onto one buffer.
// The Ethernet layer carries the same buffer to each receiver, handing the
// original to the last matching station and pooled clones to the others.
//
// Ownership rules (enforced by the leak-check mode, see SetLeakCheck):
//
//   - Whoever holds a *Buffer owns it and must either pass ownership on or
//     Release it. Passing a Buffer to tcp.Output, Host.sendPacket, or
//     ethernet's NIC.Send transfers ownership unconditionally — even when
//     those calls return an error.
//   - The Ethernet receive handler owns the buffer of every delivered
//     frame; netstack releases it once protocol input returns. Protocol
//     input (TCP, bridges, heartbeats) must therefore copy any bytes it
//     wants to keep — they all do, which is what makes single-buffer
//     delivery safe.
//   - Release must be called exactly once; a double Release panics.
//
// Buffers come from a sync.Pool because the parallel benchmark harness runs
// independent simulations on separate goroutines; within one simulation all
// use is single-threaded.
package netbuf

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Headroom is the space reserved in front of the data for headers prepended
// in place. It covers the IPv4 header (the Ethernet header travels as frame
// fields, not bytes); ipv4 asserts at compile time that its header fits.
const Headroom = 20

// payloadRoom accommodates a full Ethernet payload (1500 bytes MTU) with a
// little slack for oversized experiments.
const payloadRoom = 1536

// storeSize is the capacity of pooled backing stores. Buffers that grow
// beyond it are dropped at Release instead of repooled.
const storeSize = Headroom + payloadRoom

// Buffer is a packet buffer: a backing store with a data window [off, end).
// New buffers start with the window empty at Headroom, so Prepend can move
// the front edge backward without copying.
type Buffer struct {
	store    []byte
	off, end int
	released bool
}

var pool = sync.Pool{
	New: func() any {
		return &Buffer{store: make([]byte, storeSize), off: Headroom, end: Headroom}
	},
}

// leakCheck, when enabled, tracks the number of live (acquired, unreleased)
// buffers so tests can assert that a whole simulation leaks nothing.
var (
	leakCheck atomic.Bool
	live      atomic.Int64
)

// SetLeakCheck enables or disables live-buffer accounting and resets the
// counter. Intended for tests; the counter costs two atomic ops per buffer
// when enabled.
func SetLeakCheck(on bool) {
	leakCheck.Store(on)
	live.Store(0)
}

// Live returns the number of buffers acquired but not yet released since
// leak checking was enabled.
func Live() int64 { return live.Load() }

// Get returns an empty buffer with Headroom bytes of front reserve.
func Get() *Buffer {
	b := pool.Get().(*Buffer)
	b.off, b.end = Headroom, Headroom
	b.released = false
	if leakCheck.Load() {
		live.Add(1)
	}
	return b
}

// From returns a pooled buffer whose data is a copy of p (with headroom).
func From(p []byte) *Buffer {
	b := Get()
	copy(b.Extend(len(p)), p)
	return b
}

// Release returns the buffer to the pool. The caller must not touch the
// buffer or any slice obtained from it afterwards. Releasing twice panics:
// with pooling, a double release aliases two live packets onto one store.
func (b *Buffer) Release() {
	if b.released {
		panic("netbuf: buffer released twice")
	}
	b.released = true
	if leakCheck.Load() {
		live.Add(-1)
	}
	if cap(b.store) != storeSize {
		return // grown past pool size; let the GC take it
	}
	pool.Put(b)
}

// Bytes returns the current data window. The slice aliases the buffer.
func (b *Buffer) Bytes() []byte { return b.store[b.off:b.end] }

// Len returns the data length.
func (b *Buffer) Len() int { return b.end - b.off }

// Room returns how many bytes Extend can add before the store would have to
// be reallocated (and the buffer would fall out of the pool). GRO-style
// coalescing uses this to merge only when the merged packet stays pooled.
func (b *Buffer) Room() int { return len(b.store) - b.end }

// Extend grows the data window by n bytes at the back and returns the new
// region for the caller to fill (its prior contents are undefined — callers
// must overwrite every byte). It reallocates only for oversized packets.
func (b *Buffer) Extend(n int) []byte {
	if b.end+n > len(b.store) {
		grown := make([]byte, b.end+n+payloadRoom)
		copy(grown, b.store[:b.end])
		b.store = grown
	}
	b.end += n
	return b.store[b.end-n : b.end]
}

// Prepend grows the data window by n bytes at the front, into the headroom,
// and returns the new region. It panics if the headroom is exhausted —
// that is a layering bug, not a runtime condition.
func (b *Buffer) Prepend(n int) []byte {
	if n > b.off {
		panic(fmt.Sprintf("netbuf: prepend %d bytes with %d headroom", n, b.off))
	}
	b.off -= n
	return b.store[b.off : b.off+n]
}

// TrimFront drops n bytes from the front of the data window, reclaiming
// them as headroom. A forwarding router strips the received IP header this
// way and prepends the rewritten one in place, forwarding without a copy.
func (b *Buffer) TrimFront(n int) {
	if n > b.Len() {
		panic(fmt.Sprintf("netbuf: trim %d bytes of %d", n, b.Len()))
	}
	b.off += n
}

// Clone returns an independent pooled copy of the buffer's data (with fresh
// headroom).
func (b *Buffer) Clone() *Buffer {
	c := Get()
	copy(c.Extend(b.Len()), b.Bytes())
	return c
}
