package detect_test

import (
	"testing"
	"time"

	"tcpfailover/internal/detect"
	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/sim"
)

type duo struct {
	sched *sim.Scheduler
	a, b  *netstack.Host
	aAddr ipv4.Addr
	bAddr ipv4.Addr
}

func newDuo(t *testing.T) *duo {
	t.Helper()
	sched := sim.New(1)
	seg := ethernet.NewSegment(sched, ethernet.Config{})
	prefix := ipv4.PrefixFrom(ipv4.MustParseAddr("10.0.1.0"), 24)
	d := &duo{
		sched: sched,
		aAddr: ipv4.MustParseAddr("10.0.1.1"),
		bAddr: ipv4.MustParseAddr("10.0.1.2"),
	}
	d.a = netstack.NewHost(sched, "a", netstack.DefaultProfile())
	d.a.AttachIface(seg, ethernet.MAC{2, 0, 0, 0, 0, 1}, d.aAddr, prefix)
	d.b = netstack.NewHost(sched, "b", netstack.DefaultProfile())
	d.b.AttachIface(seg, ethernet.MAC{2, 0, 0, 0, 0, 2}, d.bAddr, prefix)
	return d
}

func TestNoFalsePositiveWhileAlive(t *testing.T) {
	d := newDuo(t)
	cfg := detect.Config{Period: 10 * time.Millisecond, Timeout: 50 * time.Millisecond}
	fired := false
	da := detect.New(d.a, d.aAddr, d.bAddr, cfg, func() { fired = true })
	db := detect.New(d.b, d.bAddr, d.aAddr, cfg, func() { fired = true })
	da.Start()
	db.Start()
	if err := d.sched.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("fault detector fired with both hosts healthy")
	}
	da.Stop()
	db.Stop()
}

func TestDetectsCrashWithinTimeout(t *testing.T) {
	d := newDuo(t)
	cfg := detect.Config{Period: 10 * time.Millisecond, Timeout: 50 * time.Millisecond}
	var firedAt time.Duration
	da := detect.New(d.a, d.aAddr, d.bAddr, cfg, func() { firedAt = d.sched.Now() })
	db := detect.New(d.b, d.bAddr, d.aAddr, cfg, func() {})
	da.Start()
	db.Start()
	if err := d.sched.RunUntil(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	crashAt := d.sched.Now()
	d.b.Crash()
	if err := d.sched.RunUntil(crashAt + time.Second); err != nil {
		t.Fatal(err)
	}
	if firedAt == 0 {
		t.Fatal("crash never detected")
	}
	latency := firedAt - crashAt
	if latency < cfg.Timeout || latency > cfg.Timeout+3*cfg.Period {
		t.Errorf("detection latency %v, want within [%v, %v]",
			latency, cfg.Timeout, cfg.Timeout+3*cfg.Period)
	}
	if !da.Fired() {
		t.Error("Fired() = false after detection")
	}
	da.Stop()
}

func TestOnFailureRunsOnce(t *testing.T) {
	d := newDuo(t)
	cfg := detect.Config{Period: 5 * time.Millisecond, Timeout: 20 * time.Millisecond}
	count := 0
	da := detect.New(d.a, d.aAddr, d.bAddr, cfg, func() { count++ })
	da.Start() // peer never starts: failure is certain
	if err := d.sched.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("onFailure ran %d times, want exactly 1", count)
	}
}

func TestStopSilencesDetector(t *testing.T) {
	d := newDuo(t)
	cfg := detect.Config{Period: 5 * time.Millisecond, Timeout: 20 * time.Millisecond}
	fired := false
	da := detect.New(d.a, d.aAddr, d.bAddr, cfg, func() { fired = true })
	da.Start()
	da.Stop()
	if err := d.sched.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("stopped detector fired")
	}
}

func TestCrashedHostDetectorGoesQuiet(t *testing.T) {
	// A detector on a crashed host must not keep firing events forever.
	d := newDuo(t)
	cfg := detect.Config{Period: 5 * time.Millisecond, Timeout: 20 * time.Millisecond}
	fired := false
	da := detect.New(d.a, d.aAddr, d.bAddr, cfg, func() { fired = true })
	db := detect.New(d.b, d.bAddr, d.aAddr, cfg, func() {})
	da.Start()
	db.Start()
	if err := d.sched.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	d.a.Crash() // the watching host itself dies
	if err := d.sched.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("detector on the crashed host declared the (healthy) peer failed")
	}
}
