// Package detect implements the fault detector the paper's system employs
// to detect the failure of a server process or server host (section 2). It
// exchanges periodic heartbeats over a raw IP protocol on the server LAN
// and declares the peer failed when no heartbeat arrives within the
// timeout. Detection latency adds directly to the failover window T.
package detect

import (
	"time"

	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/sim"
)

// Config tunes a detector.
type Config struct {
	// Period between heartbeats. Default 10 ms.
	Period time.Duration
	// Timeout without heartbeats before declaring failure. Default 50 ms.
	Timeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Period == 0 {
		c.Period = 10 * time.Millisecond
	}
	if c.Timeout == 0 {
		c.Timeout = 50 * time.Millisecond
	}
	return c
}

// Detector watches one peer from one host.
type Detector struct {
	host      *netstack.Host
	sched     *sim.Scheduler
	localAddr ipv4.Addr
	peerAddr  ipv4.Addr
	cfg       Config
	onFailure func()

	lastHeard time.Duration
	seq       uint64
	started   bool
	stopped   bool
	fired     bool

	sendTimer  sim.Timer
	checkTimer sim.Timer
}

// New creates a detector on host watching peerAddr. onFailure runs once,
// inside the simulation loop, when the peer is declared failed.
func New(host *netstack.Host, localAddr, peerAddr ipv4.Addr, cfg Config, onFailure func()) *Detector {
	return &Detector{
		host:      host,
		sched:     host.Scheduler(),
		localAddr: localAddr,
		peerAddr:  peerAddr,
		cfg:       cfg.withDefaults(),
		onFailure: onFailure,
	}
}

// Start registers the heartbeat protocol handler and begins the exchange.
func (d *Detector) Start() {
	if d.started {
		return
	}
	d.started = true
	d.lastHeard = d.sched.Now()
	d.host.RegisterProtocol(ipv4.ProtoHeartbeat, func(hdr ipv4.Header, payload []byte) {
		if hdr.Src == d.peerAddr {
			d.lastHeard = d.sched.Now()
		}
	})
	d.sendHeartbeat()
	d.scheduleCheck()
}

// Stop halts the detector.
func (d *Detector) Stop() {
	d.stopped = true
	d.sendTimer.Stop()
	d.checkTimer.Stop()
}

// Fired reports whether failure has been declared.
func (d *Detector) Fired() bool { return d.fired }

func (d *Detector) sendHeartbeat() {
	if d.stopped || !d.host.Alive() {
		return
	}
	payload := []byte{
		byte(d.seq >> 56), byte(d.seq >> 48), byte(d.seq >> 40), byte(d.seq >> 32),
		byte(d.seq >> 24), byte(d.seq >> 16), byte(d.seq >> 8), byte(d.seq),
	}
	d.seq++
	_ = d.host.SendIP(d.localAddr, d.peerAddr, ipv4.ProtoHeartbeat, payload)
	d.sendTimer = d.sched.After(d.cfg.Period, "detect.heartbeat", d.sendHeartbeat)
}

func (d *Detector) scheduleCheck() {
	if d.stopped || d.fired {
		return
	}
	d.checkTimer = d.sched.After(d.cfg.Period, "detect.check", func() {
		if d.stopped || d.fired || !d.host.Alive() {
			return
		}
		if d.sched.Now()-d.lastHeard > d.cfg.Timeout {
			d.fired = true
			d.onFailure()
			return
		}
		d.scheduleCheck()
	})
}
