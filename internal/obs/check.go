package obs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Pure-Go capture-file framing verification, used by the CI pcap smoke job
// (no tcpdump/tshark in the runner image) and by pcapcheck. The checks are
// structural: magic and version, record framing that lands exactly on EOF,
// and every packet parseable as an IPv4 datagram.

// ErrBadCapture wraps all framing verification failures.
var ErrBadCapture = errors.New("obs: bad capture file")

func badf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadCapture, fmt.Sprintf(format, args...))
}

// checkRawIP validates one captured packet as an IPv4 datagram.
func checkRawIP(pkt []byte) error {
	if len(pkt) < 20 {
		return badf("packet shorter than an IPv4 header (%d bytes)", len(pkt))
	}
	if pkt[0]>>4 != 4 {
		return badf("IP version %d, want 4", pkt[0]>>4)
	}
	if ihl := int(pkt[0]&0x0f) * 4; ihl < 20 {
		return badf("IHL %d below minimum", ihl)
	}
	if totalLen := int(binary.BigEndian.Uint16(pkt[2:4])); totalLen != len(pkt) {
		return badf("IP total length %d != captured %d", totalLen, len(pkt))
	}
	return nil
}

// VerifyPcap checks a classic pcap stream and returns its packet count.
func VerifyPcap(r io.Reader) (int, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, badf("global header: %v", err)
	}
	le := binary.LittleEndian
	if magic := le.Uint32(hdr[0:]); magic != pcapMagicNano {
		return 0, badf("magic %#x, want %#x (nanosecond pcap)", magic, pcapMagicNano)
	}
	if maj, minor := le.Uint16(hdr[4:]), le.Uint16(hdr[6:]); maj != 2 || minor != 4 {
		return 0, badf("version %d.%d, want 2.4", maj, minor)
	}
	if lt := le.Uint32(hdr[20:]); lt != linktypeRaw {
		return 0, badf("linktype %d, want %d (LINKTYPE_RAW)", lt, linktypeRaw)
	}
	snap := le.Uint32(hdr[16:])
	n := 0
	var rh [16]byte
	for {
		if _, err := io.ReadFull(r, rh[:]); err == io.EOF {
			return n, nil
		} else if err != nil {
			return n, badf("record %d header: %v", n, err)
		}
		incl := le.Uint32(rh[8:])
		orig := le.Uint32(rh[12:])
		if incl > snap {
			return n, badf("record %d: captured %d exceeds snaplen %d", n, incl, snap)
		}
		if incl > orig {
			return n, badf("record %d: captured %d exceeds original %d", n, incl, orig)
		}
		pkt := make([]byte, incl)
		if _, err := io.ReadFull(r, pkt); err != nil {
			return n, badf("record %d data: %v", n, err)
		}
		if err := checkRawIP(pkt); err != nil {
			return n, fmt.Errorf("record %d: %w", n, err)
		}
		n++
	}
}

// VerifyPcapNG checks a pcapng stream and returns its packet count.
func VerifyPcapNG(r io.Reader) (int, error) {
	le := binary.LittleEndian
	sawSHB, sawIDB := false, false
	n := 0
	var bh [8]byte
	for {
		if _, err := io.ReadFull(r, bh[:]); err == io.EOF {
			if !sawSHB {
				return n, badf("missing section header block")
			}
			if !sawIDB {
				return n, badf("missing interface description block")
			}
			return n, nil
		} else if err != nil {
			return n, badf("block header: %v", err)
		}
		btype := le.Uint32(bh[0:])
		blen := le.Uint32(bh[4:])
		if blen < 12 || blen%4 != 0 {
			return n, badf("block %#x: bad length %d", btype, blen)
		}
		body := make([]byte, blen-8)
		if _, err := io.ReadFull(r, body); err != nil {
			return n, badf("block %#x body: %v", btype, err)
		}
		if tl := le.Uint32(body[len(body)-4:]); tl != blen {
			return n, badf("block %#x: trailing length %d != %d", btype, tl, blen)
		}
		body = body[:len(body)-4]
		switch btype {
		case blockSHB:
			if len(body) < 16 {
				return n, badf("section header too short")
			}
			if bom := le.Uint32(body[0:]); bom != 0x1A2B3C4D {
				return n, badf("byte-order magic %#x", bom)
			}
			sawSHB = true
		case blockIDB:
			if !sawSHB {
				return n, badf("interface block before section header")
			}
			if lt := le.Uint16(body[0:]); lt != linktypeRaw {
				return n, badf("interface linktype %d, want %d", lt, linktypeRaw)
			}
			sawIDB = true
		case blockEPB:
			if !sawIDB {
				return n, badf("packet block before interface block")
			}
			if len(body) < 20 {
				return n, badf("packet block %d too short", n)
			}
			capLen := le.Uint32(body[12:])
			origLen := le.Uint32(body[16:])
			if capLen > origLen {
				return n, badf("packet %d: captured %d exceeds original %d", n, capLen, origLen)
			}
			if uint32(len(body)-20) < capLen {
				return n, badf("packet %d: body %d shorter than captured %d", n, len(body)-20, capLen)
			}
			if err := checkRawIP(body[20 : 20+capLen]); err != nil {
				return n, fmt.Errorf("packet %d: %w", n, err)
			}
			n++
		}
	}
}
