// Package obs is the observability core: a zero-allocation metrics
// registry, a bounded flight recorder with standard pcap/pcapng output,
// and a failover timeline analyzer. Everything in this package is
// deterministic — values are functions of the simulation only, never of
// wall-clock time — so snapshots and timelines are byte-identical across
// runs at the same seed.
//
// The metrics discipline matches the hot-path rules of internal/sim and
// internal/netbuf: all lookup work (name resolution, slot allocation,
// bucket layout) happens once at attach time; the steady-state path is an
// index-addressed add through a pre-resolved handle — no map access, no
// interface dispatch, no allocation. Handles obtained from a nil
// *Registry write into private discard slots, so instrumented components
// never branch on "is anyone listening".
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Kind discriminates metric types.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

// String names the kind in Prometheus TYPE terms.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// metric is one preallocated slot. Counter and gauge use value; histograms
// use bounds/counts/sum. The slot is addressed by its registration index;
// handles hold the pointer so steady-state updates are a single store.
type metric struct {
	name   string
	kind   Kind
	index  int
	value  int64
	bounds []int64 // histogram upper bounds, ascending (inclusive)
	counts []int64 // len(bounds)+1; the last bucket is +Inf
	sum    int64
}

// Counter is a monotonically increasing handle. The zero Counter is not
// usable; obtain one from Registry.Counter (a nil registry works too).
type Counter struct{ m *metric }

// Inc adds one.
func (c Counter) Inc() { c.m.value++ }

// Add adds n (n must be >= 0 for the series to stay monotone).
func (c Counter) Add(n int64) { c.m.value += n }

// Value reads the current count.
func (c Counter) Value() int64 { return c.m.value }

// Gauge is a set/adjust handle for instantaneous values (queue depths).
type Gauge struct{ m *metric }

// Set stores v.
func (g Gauge) Set(v int64) { g.m.value = v }

// Add adjusts by d (may be negative).
func (g Gauge) Add(d int64) { g.m.value += d }

// Value reads the current level.
func (g Gauge) Value() int64 { return g.m.value }

// Histogram is a fixed-bucket observation handle. Bucket bounds are fixed
// at attach time; Observe is a linear scan over a handful of bounds plus
// two adds — no allocation, no sorting.
type Histogram struct{ m *metric }

// Observe records one sample.
func (h Histogram) Observe(v int64) {
	m := h.m
	i := 0
	for ; i < len(m.bounds); i++ {
		if v <= m.bounds[i] {
			break
		}
	}
	if len(m.counts) > 0 {
		m.counts[i]++
	}
	m.sum += v
}

// Count returns the total number of observations.
func (h Histogram) Count() int64 {
	var n int64
	for _, c := range h.m.counts {
		n += c
	}
	return n
}

// Sum returns the sum of all observed values.
func (h Histogram) Sum() int64 { return h.m.sum }

// Registry owns the metric slots of one simulation. It is not safe for
// concurrent use — like the scheduler it belongs to one single-threaded
// simulation; parallel benchmark workers each build their own.
type Registry struct {
	byName  map[string]*metric // attach-time resolution only
	metrics []*metric          // registration (and export) order
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// resolve returns the slot for name, creating it on first attach. Series
// names follow Prometheus conventions and may carry a label suffix, e.g.
// `tcp_retransmissions_total{host="primary"}`; the whole string keys the
// slot. Re-attaching an existing name returns the same slot (kind must
// match), so two components may share a series.
func (r *Registry) resolve(name string, kind Kind, bounds []int64) *metric {
	if r == nil {
		// Discard slot: private to the handle, so concurrent simulations
		// with detached components never share state.
		return &metric{name: name, kind: kind, index: -1,
			bounds: bounds, counts: make([]int64, len(bounds)+1)}
	}
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: %q re-registered as %s (was %s)", name, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, kind: kind, index: len(r.metrics),
		bounds: bounds, counts: make([]int64, len(bounds)+1)}
	r.byName[name] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter attaches (or re-attaches) a counter series.
func (r *Registry) Counter(name string) Counter {
	return Counter{m: r.resolve(name, KindCounter, nil)}
}

// Gauge attaches (or re-attaches) a gauge series.
func (r *Registry) Gauge(name string) Gauge {
	return Gauge{m: r.resolve(name, KindGauge, nil)}
}

// Histogram attaches a histogram with the given ascending upper bounds
// (an implicit +Inf bucket is appended). Bounds are fixed for the life of
// the series; re-attaching ignores the new bounds.
func (r *Registry) Histogram(name string, bounds []int64) Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return Histogram{m: r.resolve(name, KindHistogram, b)}
}

// DurationBuckets builds histogram bounds (in nanoseconds) from durations.
func DurationBuckets(ds ...time.Duration) []int64 {
	out := make([]int64, len(ds))
	for i, d := range ds {
		out[i] = d.Nanoseconds()
	}
	return out
}

// Sample is one exported series in a Snapshot.
type Sample struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Value  int64   `json:"value,omitempty"`            // counter/gauge
	Sum    int64   `json:"sum,omitempty"`              // histogram
	Count  int64   `json:"count,omitempty"`            // histogram
	Bounds []int64 `json:"bucket_bounds_ns,omitempty"` // histogram
	Counts []int64 `json:"bucket_counts,omitempty"`    // histogram
}

// Snapshot copies every series in registration order (which is itself
// deterministic: attach order is a function of scenario construction).
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	out := make([]Sample, 0, len(r.metrics))
	for _, m := range r.metrics {
		s := Sample{Name: m.name, Kind: m.kind.String()}
		switch m.kind {
		case KindHistogram:
			s.Sum = m.sum
			s.Bounds = m.bounds
			s.Counts = m.counts
			for _, c := range m.counts {
				s.Count += c
			}
		default:
			s.Value = m.value
		}
		out = append(out, s)
	}
	return out
}

// WriteJSON emits the snapshot as a JSON array. The encoding is built by
// hand to keep the output layout stable under Go version changes (the
// snapshot doubles as a golden artifact in determinism gates).
func (r *Registry) WriteJSON(w io.Writer) error {
	_, err := io.WriteString(w, "[\n")
	if err != nil {
		return err
	}
	for i, s := range r.Snapshot() {
		sep := ","
		if i == len(r.metrics)-1 {
			sep = ""
		}
		switch s.Kind {
		case "histogram":
			_, err = fmt.Fprintf(w, "  {\"name\": %q, \"kind\": %q, \"sum\": %d, \"count\": %d, \"bounds\": %s, \"counts\": %s}%s\n",
				s.Name, s.Kind, s.Sum, s.Count, jsonInts(s.Bounds), jsonInts(s.Counts), sep)
		default:
			_, err = fmt.Fprintf(w, "  {\"name\": %q, \"kind\": %q, \"value\": %d}%s\n",
				s.Name, s.Kind, s.Value, sep)
		}
		if err != nil {
			return err
		}
	}
	_, err = io.WriteString(w, "]\n")
	return err
}

func jsonInts(vs []int64) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, v := range vs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte(']')
	return b.String()
}

// splitSeries separates a full series name into its base name and label
// block: `x_total{host="p"}` -> ("x_total", `host="p"`).
func splitSeries(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// DumpText writes the registry in the Prometheus text exposition format
// (version 0.0.4): one # TYPE line per base metric name, then the series.
// Histograms expand into cumulative _bucket series with le labels plus
// _sum and _count. Series keep registration order; TYPE lines appear
// before the first series of each base name.
func (r *Registry) DumpText(w io.Writer) error {
	if r == nil {
		return nil
	}
	typed := make(map[string]bool)
	for _, m := range r.metrics {
		base, labels := splitSeries(m.name)
		if !typed[base] {
			typed[base] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, m.kind); err != nil {
				return err
			}
		}
		switch m.kind {
		case KindHistogram:
			var cum int64
			for i, c := range m.counts {
				cum += c
				le := "+Inf"
				if i < len(m.bounds) {
					le = fmt.Sprintf("%d", m.bounds[i])
				}
				ls := fmt.Sprintf(`le="%s"`, le)
				if labels != "" {
					ls = labels + "," + ls
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", base, ls, cum); err != nil {
					return err
				}
			}
			suffix := ""
			if labels != "" {
				suffix = "{" + labels + "}"
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %d\n%s_count%s %d\n",
				base, suffix, m.sum, base, suffix, cum); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %d\n", m.name, m.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// Lookup returns the current value of a counter or gauge series, or false
// when the series does not exist (tests and report code use this; the hot
// path never does).
func (r *Registry) Lookup(name string) (int64, bool) {
	if r == nil {
		return 0, false
	}
	m, ok := r.byName[name]
	if !ok || m.kind == KindHistogram {
		return 0, ok
	}
	return m.value, true
}

// Names returns every registered series name, sorted (diagnostics).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	out := make([]string, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m.name)
	}
	sort.Strings(out)
	return out
}
