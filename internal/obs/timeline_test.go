package obs

import (
	"errors"
	"strings"
	"testing"
	"time"

	"tcpfailover/internal/ipv4"
)

var (
	tlService = ipv4.AddrFrom4(10, 0, 1, 1)
	tlClient  = ipv4.AddrFrom4(10, 0, 2, 1)
)

// tcpSeg builds a minimal TCP header payload with the given flags byte.
func tcpSeg(flags byte) []byte {
	p := make([]byte, 20)
	p[12] = 5 << 4 // data offset
	p[13] = flags
	return p
}

func tlRecord(at time.Duration, dir uint8, src, dst ipv4.Addr, flags byte) Record {
	return Record{
		Time:    at,
		Host:    "client",
		Dir:     dir,
		Hdr:     ipv4.Header{Protocol: ipv4.ProtoTCP, Src: src, Dst: dst},
		Len:     20,
		Payload: tcpSeg(flags),
	}
}

func tlMarks() Marks {
	return Marks{
		FailureInjected: 40 * time.Millisecond,
		DetectorFired:   90 * time.Millisecond,
		TakeoverDone:    90 * time.Millisecond,
	}
}

func TestAnalyzeReconstructsPhases(t *testing.T) {
	recs := []Record{
		// Pre-takeover traffic must be ignored, including rx from the service.
		tlRecord(10*time.Millisecond, DirRx, tlService, tlClient, 0x10),
		tlRecord(10*time.Millisecond, DirTx, tlClient, tlService, 0x10),
		// Heartbeats and other protocols never count.
		{Time: 95 * time.Millisecond, Dir: DirRx,
			Hdr: ipv4.Header{Protocol: ipv4.ProtoHeartbeat, Src: tlService, Dst: tlClient}},
		// First post-takeover segment from the service.
		tlRecord(120*time.Millisecond, DirRx, tlService, tlClient, 0x18),
		// A tx to somewhere else must not end the scan.
		tlRecord(121*time.Millisecond, DirTx, tlClient, ipv4.AddrFrom4(10, 0, 9, 9), 0x10),
		// The resuming ACK.
		tlRecord(125*time.Millisecond, DirTx, tlClient, tlService, 0x10),
		tlRecord(130*time.Millisecond, DirTx, tlClient, tlService, 0x10),
	}
	tl, err := Analyze(recs, tlMarks(), tlService)
	if err != nil {
		t.Fatal(err)
	}
	if tl.FirstServerSegment != 120*time.Millisecond {
		t.Errorf("FirstServerSegment = %v, want 120ms", tl.FirstServerSegment)
	}
	if tl.ClientAckResumed != 125*time.Millisecond {
		t.Errorf("ClientAckResumed = %v, want 125ms", tl.ClientAckResumed)
	}
	if tl.Detection() != 50*time.Millisecond {
		t.Errorf("Detection = %v, want 50ms", tl.Detection())
	}
	if tl.Resume() != 30*time.Millisecond {
		t.Errorf("Resume = %v, want 30ms", tl.Resume())
	}
	if tl.AckTurnaround() != 5*time.Millisecond {
		t.Errorf("AckTurnaround = %v, want 5ms", tl.AckTurnaround())
	}
	if tl.Total() != 85*time.Millisecond {
		t.Errorf("Total = %v, want 85ms", tl.Total())
	}
}

func TestAnalyzeIncomplete(t *testing.T) {
	// No post-takeover server segment at all.
	recs := []Record{
		tlRecord(10*time.Millisecond, DirRx, tlService, tlClient, 0x10),
	}
	if _, err := Analyze(recs, tlMarks(), tlService); !errors.Is(err, ErrIncompleteTimeline) {
		t.Fatalf("err = %v, want ErrIncompleteTimeline", err)
	}
	// Server segment but no client ACK after it.
	recs = append(recs, tlRecord(120*time.Millisecond, DirRx, tlService, tlClient, 0x18))
	if _, err := Analyze(recs, tlMarks(), tlService); !errors.Is(err, ErrIncompleteTimeline) {
		t.Fatalf("err = %v, want ErrIncompleteTimeline", err)
	}
	// Marks out of order.
	bad := Marks{FailureInjected: 2 * time.Second, DetectorFired: time.Second, TakeoverDone: 3 * time.Second}
	if _, err := Analyze(nil, bad, tlService); !errors.Is(err, ErrIncompleteTimeline) {
		t.Fatalf("err = %v, want ErrIncompleteTimeline", err)
	}
}

func TestTimelineWriteTextGolden(t *testing.T) {
	tl := Timeline{
		FailureInjected:    40 * time.Millisecond,
		DetectorFired:      90 * time.Millisecond,
		TakeoverDone:       90 * time.Millisecond,
		FirstServerSegment: 120 * time.Millisecond,
		ClientAckResumed:   125 * time.Millisecond,
	}
	var sb strings.Builder
	if err := tl.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := "" +
		"failure injected          0.040000000  \n" +
		"detector fired            0.090000000  +50ms\n" +
		"gratuitous ARP sent       0.090000000  +0s\n" +
		"first server segment      0.120000000  +30ms\n" +
		"client ack resumed        0.125000000  +5ms\n" +
		"total                                  85ms\n"
	if sb.String() != want {
		t.Errorf("WriteText mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}
