package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// perfettoFixture builds a tiny deterministic trace: one connection that
// lives through a failover (so it carries setup, stall, and milestone
// events) plus a two-row counter timeseries.
func perfettoFixture() (*SpanRecorder, *Timeseries) {
	r := NewSpanRecorder(0)
	key := uint64(0x0a000002)<<32 | uint64(40000)<<16 | 9000
	r.Mark(key, SpanSynSent, 1*time.Millisecond)
	r.Mark(key, SpanEstablished, 2*time.Millisecond)
	r.Progress(key, 90*time.Millisecond)
	r.MarkFailure(100 * time.Millisecond)
	r.MarkDetect(140 * time.Millisecond)
	r.MarkTakeover(145 * time.Millisecond)
	r.Mark(key, SpanFirstDiverted, 146*time.Millisecond)
	r.Mark(key, SpanFirstAfterTakeover, 150*time.Millisecond)
	r.Progress(key, 155*time.Millisecond)

	reg := NewRegistry()
	c := reg.Counter("segments_total")
	s := NewSampler(reg, 50*time.Millisecond, 4)
	c.Add(10)
	s.Sample(50 * time.Millisecond)
	c.Add(32)
	s.Sample(100 * time.Millisecond)
	return r, s.Timeseries()
}

// TestPerfettoGolden pins the exact trace-event JSON byte layout: stable
// field order, microsecond timestamps with nanosecond fractions, the span
// process, fleet marks, and counter tracks.
func TestPerfettoGolden(t *testing.T) {
	spans, ts := perfettoFixture()
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, spans, ts); err != nil {
		t.Fatal(err)
	}
	const golden = `{"displayTimeUnit": "ns", "traceEvents": [
  {"name": "process_name", "ph": "M", "pid": 1, "tid": 0, "args": {"name": "connections"}},
  {"name": "thread_name", "ph": "M", "pid": 1, "tid": 0, "args": {"name": "fleet"}},
  {"name": "process_name", "ph": "M", "pid": 2, "tid": 0, "args": {"name": "metrics"}},
  {"name": "failure_injected", "ph": "i", "pid": 1, "tid": 0, "ts": 100000.000, "s": "g"},
  {"name": "detector_fired", "ph": "i", "pid": 1, "tid": 0, "ts": 140000.000, "s": "g"},
  {"name": "takeover_done", "ph": "i", "pid": 1, "tid": 0, "ts": 145000.000, "s": "g"},
  {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1, "args": {"name": "conn 0a000002:40000->9000"}},
  {"name": "setup", "ph": "X", "pid": 1, "tid": 1, "ts": 1000.000, "dur": 1000.000},
  {"name": "stall", "ph": "X", "pid": 1, "tid": 1, "ts": 90000.000, "dur": 65000.000, "args": {"precrash_ns": 10000000, "detection_ns": 40000000, "announce_ns": 5000000, "resume_ns": 5000000, "recovery_ns": 5000000}},
  {"name": "syn_sent", "ph": "i", "pid": 1, "tid": 1, "ts": 1000.000, "s": "t"},
  {"name": "established", "ph": "i", "pid": 1, "tid": 1, "ts": 2000.000, "s": "t"},
  {"name": "first_byte", "ph": "i", "pid": 1, "tid": 1, "ts": 90000.000, "s": "t"},
  {"name": "last_progress", "ph": "i", "pid": 1, "tid": 1, "ts": 90000.000, "s": "t"},
  {"name": "first_diverted", "ph": "i", "pid": 1, "tid": 1, "ts": 146000.000, "s": "t"},
  {"name": "first_after_takeover", "ph": "i", "pid": 1, "tid": 1, "ts": 150000.000, "s": "t"},
  {"name": "first_recovery", "ph": "i", "pid": 1, "tid": 1, "ts": 155000.000, "s": "t"},
  {"name": "segments_total", "ph": "C", "pid": 2, "tid": 0, "ts": 50000.000, "args": {"value": 10}},
  {"name": "segments_total", "ph": "C", "pid": 2, "tid": 0, "ts": 100000.000, "args": {"value": 42}}
]}
`
	if buf.String() != golden {
		t.Errorf("perfetto output drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.String(), golden)
	}
}

// TestPerfettoValidJSON checks the emitted trace parses as ordinary JSON in
// the trace-event shape ui.perfetto.dev expects.
func TestPerfettoValidJSON(t *testing.T) {
	spans, ts := perfettoFixture()
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, spans, ts); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Ts   float64         `json:"ts"`
			Dur  float64         `json:"dur"`
			S    string          `json:"s"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", trace.DisplayTimeUnit)
	}
	kinds := map[string]int{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "" || ev.Name == "" {
			t.Errorf("event missing ph/name: %+v", ev)
		}
		kinds[ev.Ph]++
	}
	for _, ph := range []string{"M", "X", "i", "C"} {
		if kinds[ph] == 0 {
			t.Errorf("no %q events emitted: %v", ph, kinds)
		}
	}
}

// TestPerfettoEmpty checks the degenerate inputs stay valid.
func TestPerfettoEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if err := json.Unmarshal(buf.Bytes(), &v); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v\n%s", err, buf.String())
	}
}
