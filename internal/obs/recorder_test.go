package obs

import (
	"bytes"
	"testing"
	"time"

	"tcpfailover/internal/ipv4"
)

func testHdr(id uint16, proto uint8) ipv4.Header {
	return ipv4.Header{
		ID:       id,
		TTL:      64,
		Protocol: proto,
		Src:      ipv4.AddrFrom4(10, 0, 0, 1),
		Dst:      ipv4.AddrFrom4(10, 0, 1, 2),
	}
}

func fillRecorder(rec *Recorder, n int) {
	payload := make([]byte, 40)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := 0; i < n; i++ {
		dir := "rx"
		if i%2 == 1 {
			dir = "tx"
		}
		rec.Record(time.Duration(i)*time.Millisecond, "client", dir, testHdr(uint16(i), 6), payload)
	}
}

func TestRecorderRingWrap(t *testing.T) {
	rec := NewRecorder(4, 0)
	fillRecorder(rec, 10)
	if rec.Total() != 10 {
		t.Fatalf("Total = %d, want 10", rec.Total())
	}
	if rec.Len() != 4 {
		t.Fatalf("Len = %d, want 4", rec.Len())
	}
	recs := rec.Records()
	// Oldest surviving record is #6.
	for i, r := range recs {
		if want := uint16(6 + i); r.Hdr.ID != want {
			t.Fatalf("record %d has ID %d, want %d", i, r.Hdr.ID, want)
		}
		if want := time.Duration(6+i) * time.Millisecond; r.Time != want {
			t.Fatalf("record %d time %v, want %v", i, r.Time, want)
		}
	}
	if recs[0].Dir != DirRx || recs[1].Dir != DirTx {
		t.Fatalf("directions %d,%d want rx,tx", recs[0].Dir, recs[1].Dir)
	}
}

func TestRecorderSnapTruncation(t *testing.T) {
	rec := NewRecorder(8, 16)
	big := make([]byte, 100)
	rec.Record(0, "h", "rx", testHdr(1, 6), big)
	r := rec.Records()[0]
	if r.Len != 100 {
		t.Fatalf("Len = %d, want 100 (original length)", r.Len)
	}
	if len(r.Payload) != 16 {
		t.Fatalf("payload kept %d bytes, want 16 (snap)", len(r.Payload))
	}
}

func TestRecorderSteadyStateNoAlloc(t *testing.T) {
	rec := NewRecorder(64, 0)
	payload := make([]byte, DefaultSnapLen)
	hdr := testHdr(0, 6)
	// Warm the ring so every slot's payload buffer is at snap capacity.
	for i := 0; i < 128; i++ {
		rec.Record(0, "h", "rx", hdr, payload)
	}
	allocs := testing.AllocsPerRun(200, func() {
		rec.Record(0, "h", "tx", hdr, payload)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f objects/op after warmup, want 0", allocs)
	}
}

func TestPcapRoundTrip(t *testing.T) {
	rec := NewRecorder(16, 0)
	fillRecorder(rec, 5)
	var buf bytes.Buffer
	if err := WritePcap(&buf, rec.Records()); err != nil {
		t.Fatal(err)
	}
	n, err := VerifyPcap(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("VerifyPcap: %v", err)
	}
	if n != 5 {
		t.Fatalf("verified %d packets, want 5", n)
	}
}

func TestPcapNGRoundTrip(t *testing.T) {
	rec := NewRecorder(16, 0)
	fillRecorder(rec, 7)
	var buf bytes.Buffer
	if err := WritePcapNG(&buf, rec.Records()); err != nil {
		t.Fatal(err)
	}
	n, err := VerifyPcapNG(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("VerifyPcapNG: %v", err)
	}
	if n != 7 {
		t.Fatalf("verified %d packets, want 7", n)
	}
}

func TestPcapTruncatedPayloadOrigLen(t *testing.T) {
	rec := NewRecorder(4, 32)
	big := make([]byte, 200)
	rec.Record(time.Second, "h", "tx", testHdr(9, 6), big)
	var buf bytes.Buffer
	if err := WritePcap(&buf, rec.Records()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[24:] // skip global header
	incl := uint32(b[8]) | uint32(b[9])<<8 | uint32(b[10])<<16 | uint32(b[11])<<24
	orig := uint32(b[12]) | uint32(b[13])<<8 | uint32(b[14])<<16 | uint32(b[15])<<24
	if incl != uint32(ipv4.HeaderLen+32) {
		t.Fatalf("incl_len = %d, want %d", incl, ipv4.HeaderLen+32)
	}
	if orig != uint32(ipv4.HeaderLen+200) {
		t.Fatalf("orig_len = %d, want %d", orig, ipv4.HeaderLen+200)
	}
	if _, err := VerifyPcap(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("VerifyPcap on truncated capture: %v", err)
	}
}

func TestVerifyPcapRejectsCorruption(t *testing.T) {
	rec := NewRecorder(4, 0)
	fillRecorder(rec, 2)
	var buf bytes.Buffer
	if err := WritePcap(&buf, rec.Records()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff
	if _, err := VerifyPcap(bytes.NewReader(bad)); err == nil {
		t.Fatal("VerifyPcap accepted a bad magic number")
	}
	// Truncated mid-record.
	if _, err := VerifyPcap(bytes.NewReader(good[:len(good)-3])); err == nil {
		t.Fatal("VerifyPcap accepted a truncated stream")
	}
	// Corrupt the version field of an IP packet (first record's data).
	bad = append([]byte(nil), good...)
	bad[24+16] = 0x60 // version 6
	if _, err := VerifyPcap(bytes.NewReader(bad)); err == nil {
		t.Fatal("VerifyPcap accepted a non-IPv4 packet")
	}
}

func TestVerifyPcapNGRejectsCorruption(t *testing.T) {
	rec := NewRecorder(4, 0)
	fillRecorder(rec, 2)
	var buf bytes.Buffer
	if err := WritePcapNG(&buf, rec.Records()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad byte-order magic in the SHB.
	bad := append([]byte(nil), good...)
	bad[8] ^= 0xff
	if _, err := VerifyPcapNG(bytes.NewReader(bad)); err == nil {
		t.Fatal("VerifyPcapNG accepted a bad byte-order magic")
	}
	// Mismatched trailing block length on the IDB.
	bad = append([]byte(nil), good...)
	bad[28+24] ^= 0x01
	if _, err := VerifyPcapNG(bytes.NewReader(bad)); err == nil {
		t.Fatal("VerifyPcapNG accepted a bad trailing length")
	}
	// Packets with no interface block: chop the IDB out.
	noIDB := append(append([]byte(nil), good[:28]...), good[28+28:]...)
	if _, err := VerifyPcapNG(bytes.NewReader(noIDB)); err == nil {
		t.Fatal("VerifyPcapNG accepted packets without an interface block")
	}
}
