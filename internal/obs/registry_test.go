package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("requests_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Re-attaching the same series resolves to the same slot.
	c2 := reg.Counter("requests_total")
	c2.Inc()
	if got := c.Value(); got != 6 {
		t.Fatalf("counter after re-attach = %d, want 6", got)
	}

	g := reg.Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", []int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 5122 {
		t.Fatalf("sum = %d, want 5122", got)
	}
	snap := reg.Snapshot()
	var found bool
	for _, s := range snap {
		if s.Name != "lat" {
			continue
		}
		found = true
		// Per-bucket (non-cumulative) counts: ≤10: 2, ≤100: 2, ≤1000: 0, +Inf: 1.
		want := []int64{2, 2, 0, 1}
		if len(s.Counts) != len(want) {
			t.Fatalf("bucket counts = %v, want %v", s.Counts, want)
		}
		for i := range want {
			if s.Counts[i] != want[i] {
				t.Fatalf("bucket counts = %v, want %v", s.Counts, want)
			}
		}
	}
	if !found {
		t.Fatal("histogram missing from snapshot")
	}
}

func TestNilRegistryDiscards(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	g := reg.Gauge("y")
	h := reg.Histogram("z", []int64{1})
	c.Inc()
	g.Set(3)
	h.Observe(2)
	if c.Value() != 1 || g.Value() != 3 || h.Count() != 1 {
		t.Fatal("discard slots should still accumulate locally")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dual")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	reg.Gauge("dual")
}

func TestWriteJSONIsValid(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`tcp_segments_in_total{host="primary"}`).Add(7)
	reg.Gauge("depth").Set(-2)
	reg.Histogram("d", DurationBuckets(time.Microsecond, time.Millisecond)).Observe(int64(50 * time.Microsecond))
	var sb strings.Builder
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, sb.String())
	}
	if len(out) != 3 {
		t.Fatalf("got %d series, want 3", len(out))
	}
}

func TestDumpTextPrometheusShape(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`hits_total{host="a"}`).Add(3)
	reg.Counter(`hits_total{host="b"}`).Add(4)
	reg.Histogram("lat", []int64{10, 100}).Observe(42)
	var sb strings.Builder
	if err := reg.DumpText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`hits_total{host="a"} 3`,
		`hits_total{host="b"} 4`,
		`lat_bucket{le="10"} 0`,
		`lat_bucket{le="100"} 1`, // cumulative
		`lat_bucket{le="+Inf"} 1`,
		`lat_sum 42`,
		`lat_count 1`,
		`# TYPE hits_total counter`,
		`# TYPE lat histogram`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("DumpText missing %q\n%s", want, text)
		}
	}
}

func TestSnapshotRegistrationOrder(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_total")
	reg.Counter("a_total")
	reg.Gauge("c")
	snap := reg.Snapshot()
	want := []string{"b_total", "a_total", "c"}
	if len(snap) != len(want) {
		t.Fatalf("snapshot length %d, want %d", len(snap), len(want))
	}
	for i := range want {
		if snap[i].Name != want[i] {
			t.Fatalf("snapshot[%d] = %q, want %q (registration order)", i, snap[i].Name, want[i])
		}
	}
	names := reg.Names()
	wantSorted := []string{"a_total", "b_total", "c"}
	for i := range wantSorted {
		if names[i] != wantSorted[i] {
			t.Fatalf("Names()[%d] = %q, want %q (sorted)", i, names[i], wantSorted[i])
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("bench_hist", DurationBuckets(
		time.Microsecond, 10*time.Microsecond, 100*time.Microsecond, time.Millisecond))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
