package obs

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// WritePerfetto emits a Chrome trace-event JSON file (the format
// ui.perfetto.dev and chrome://tracing load) combining span tracks and
// counter tracks:
//
//   - pid 1 "connections": one thread per recorded span (sorted by flow
//     key), carrying complete ("X") slices for the setup (SYN->established)
//     and stall (last progress -> first post-recovery delivery) intervals
//     and instant ("i") events for every recorded milestone;
//   - pid 1 thread 0 "fleet": global instant events for the failure
//     injection, detector firing, and takeover/ARP announce marks;
//   - pid 2 "metrics": counter ("C") events from the sampled timeseries,
//     one track per series.
//
// Timestamps are microseconds (the trace-event unit) with a fractional
// part carrying full nanosecond precision; displayTimeUnit is ns. The JSON
// is built by hand with a fixed field order so the output is byte-stable
// and golden-testable.
func WritePerfetto(w io.Writer, spans *SpanRecorder, ts *Timeseries) error {
	var b strings.Builder
	b.WriteString("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n")
	first := true
	emit := func(line string) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		b.WriteString("  ")
		b.WriteString(line)
	}

	emit(`{"name": "process_name", "ph": "M", "pid": 1, "tid": 0, "args": {"name": "connections"}}`)
	emit(`{"name": "thread_name", "ph": "M", "pid": 1, "tid": 0, "args": {"name": "fleet"}}`)
	if ts != nil && len(ts.Series) > 0 {
		emit(`{"name": "process_name", "ph": "M", "pid": 2, "tid": 0, "args": {"name": "metrics"}}`)
	}

	if spans != nil {
		if t, ok := spans.FailureMark(); ok {
			emit(fmt.Sprintf(`{"name": "failure_injected", "ph": "i", "pid": 1, "tid": 0, "ts": %s, "s": "g"}`, usTS(t)))
		}
		if t, ok := spans.DetectMark(); ok {
			emit(fmt.Sprintf(`{"name": "detector_fired", "ph": "i", "pid": 1, "tid": 0, "ts": %s, "s": "g"}`, usTS(t)))
		}
		if t, ok := spans.TakeoverMark(); ok {
			emit(fmt.Sprintf(`{"name": "takeover_done", "ph": "i", "pid": 1, "tid": 0, "ts": %s, "s": "g"}`, usTS(t)))
		}
		for tid, sp := range spans.Spans() {
			span := sp
			id := tid + 1
			emit(fmt.Sprintf(`{"name": "thread_name", "ph": "M", "pid": 1, "tid": %d, "args": {"name": %q}}`,
				id, connName(span.Key)))
			if a, ok := span.Time(SpanSynSent); ok {
				if z, ok := span.Time(SpanEstablished); ok && z >= a {
					emit(fmt.Sprintf(`{"name": "setup", "ph": "X", "pid": 1, "tid": %d, "ts": %s, "dur": %s}`,
						id, usTS(a), usTS(z-a)))
				}
			}
			if st, ok := spans.Stall(&span); ok {
				emit(fmt.Sprintf(`{"name": "stall", "ph": "X", "pid": 1, "tid": %d, "ts": %s, "dur": %s, `+
					`"args": {"precrash_ns": %d, "detection_ns": %d, "announce_ns": %d, "resume_ns": %d, "recovery_ns": %d}}`,
					id, usTS(st.Anchor), usTS(st.Total),
					st.PreCrash.Nanoseconds(), st.Detection.Nanoseconds(), st.Announce.Nanoseconds(),
					st.Resume.Nanoseconds(), st.Recovery.Nanoseconds()))
			}
			for m := SpanMilestone(0); m < NumSpanMilestones; m++ {
				if t, ok := span.Time(m); ok {
					emit(fmt.Sprintf(`{"name": %q, "ph": "i", "pid": 1, "tid": %d, "ts": %s, "s": "t"}`,
						m.String(), id, usTS(t)))
				}
			}
		}
	}

	if ts != nil {
		for _, col := range ts.Series {
			for i, t := range ts.TimesNs {
				emit(fmt.Sprintf(`{"name": %q, "ph": "C", "pid": 2, "tid": 0, "ts": %s, "args": {"value": %d}}`,
					col.Name, usTS(time.Duration(t)), col.Values[i]))
			}
		}
	}

	b.WriteString("\n]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// usTS renders a sim time as trace-event microseconds with a fractional
// part preserving nanosecond precision ("1234.567").
func usTS(t time.Duration) string {
	ns := t.Nanoseconds()
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// connName renders a packed flow key (clientAddr<<32|clientPort<<16|
// servicePort) as a human-readable track name.
func connName(key uint64) string {
	return fmt.Sprintf("conn %08x:%d->%d", uint32(key>>32), uint16(key>>16), uint16(key))
}
