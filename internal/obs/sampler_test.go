package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func samplerFixture() (*Registry, Counter, Gauge, Histogram) {
	reg := NewRegistry()
	c := reg.Counter("segments_total")
	g := reg.Gauge("conns_active")
	h := reg.Histogram("rtt_ns", []int64{1000, 10000})
	return reg, c, g, h
}

func TestSamplerColumnsAndValues(t *testing.T) {
	reg, c, g, h := samplerFixture()
	s := NewSampler(reg, time.Millisecond, 8)
	c.Add(3)
	g.Set(2)
	h.Observe(500)
	h.Observe(20000)
	s.Sample(1 * time.Millisecond)
	c.Add(4)
	g.Set(1)
	s.Sample(2 * time.Millisecond)

	ts := s.Timeseries()
	if ts.PeriodNs != int64(time.Millisecond) {
		t.Errorf("period = %d, want 1ms", ts.PeriodNs)
	}
	wantNames := []string{"segments_total", "conns_active", "rtt_ns.count", "rtt_ns.sum"}
	if len(ts.Series) != len(wantNames) {
		t.Fatalf("got %d series, want %d", len(ts.Series), len(wantNames))
	}
	for i, n := range wantNames {
		if ts.Series[i].Name != n {
			t.Errorf("series %d = %q, want %q (registration order)", i, ts.Series[i].Name, n)
		}
	}
	wantVals := map[string][]int64{
		"segments_total": {3, 7},
		"conns_active":   {2, 1},
		"rtt_ns.count":   {2, 2},
		"rtt_ns.sum":     {20500, 20500},
	}
	for _, col := range ts.Series {
		w := wantVals[col.Name]
		if len(col.Values) != len(w) {
			t.Fatalf("%s: %d rows, want %d", col.Name, len(col.Values), len(w))
		}
		for i := range w {
			if col.Values[i] != w[i] {
				t.Errorf("%s[%d] = %d, want %d", col.Name, i, col.Values[i], w[i])
			}
		}
	}
}

func TestSamplerRingWrap(t *testing.T) {
	reg, c, _, _ := samplerFixture()
	s := NewSampler(reg, time.Millisecond, 3)
	for i := 1; i <= 5; i++ {
		c.Inc()
		s.Sample(time.Duration(i) * time.Millisecond)
	}
	if s.Samples() != 3 {
		t.Fatalf("retained %d samples, want 3", s.Samples())
	}
	ts := s.Timeseries()
	wantTimes := []int64{int64(3 * time.Millisecond), int64(4 * time.Millisecond), int64(5 * time.Millisecond)}
	for i, w := range wantTimes {
		if ts.TimesNs[i] != w {
			t.Errorf("times[%d] = %d, want %d (oldest retained first)", i, ts.TimesNs[i], w)
		}
	}
	if got := ts.Series[0].Values; got[0] != 3 || got[1] != 4 || got[2] != 5 {
		t.Errorf("counter ring = %v, want [3 4 5]", got)
	}
}

func TestSamplerSteadyStateNoAlloc(t *testing.T) {
	reg, c, g, h := samplerFixture()
	s := NewSampler(reg, time.Millisecond, 4)
	for i := 0; i < 8; i++ { // fill past the wrap
		s.Sample(time.Duration(i) * time.Millisecond)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(7)
		h.Observe(123)
		s.Sample(9 * time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("steady-state Sample allocates %.1f times per call, want 0", allocs)
	}
}

func TestMergeTimeseries(t *testing.T) {
	mk := func(counter int64) *Timeseries {
		reg := NewRegistry()
		c := reg.Counter("segments_total")
		s := NewSampler(reg, time.Millisecond, 4)
		c.Add(counter)
		s.Sample(1 * time.Millisecond)
		c.Add(counter)
		s.Sample(2 * time.Millisecond)
		return s.Timeseries()
	}
	a, b := mk(10), mk(1)
	m, err := MergeTimeseries(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Series[0].Values; got[0] != 11 || got[1] != 22 {
		t.Errorf("merged values = %v, want [11 22]", got)
	}
	// Mismatched grids must fail loudly, not misalign silently.
	bad := mk(1)
	bad.TimesNs[1]++
	if _, err := MergeTimeseries(a, bad); err == nil {
		t.Error("mismatched sample grid merged without error")
	}
	short := mk(1)
	short.TimesNs = short.TimesNs[:1]
	if _, err := MergeTimeseries(a, short); err == nil {
		t.Error("short timeseries merged without error")
	}
}

// TestTimeseriesGoldenJSON pins the exact byte layout of the -timeseries-out
// JSON artifact: hand-built encoding, stable field order.
func TestTimeseriesGoldenJSON(t *testing.T) {
	reg, c, g, _ := samplerFixture()
	s := NewSampler(reg, 2*time.Millisecond, 4)
	c.Add(5)
	g.Set(3)
	s.Sample(2 * time.Millisecond)
	c.Add(1)
	s.Sample(4 * time.Millisecond)

	var buf bytes.Buffer
	if err := s.Timeseries().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "period_ns": 2000000,
  "times_ns": [2000000,4000000],
  "series": [
    {"name": "segments_total", "kind": "counter", "values": [5,6]},
    {"name": "conns_active", "kind": "gauge", "values": [3,3]},
    {"name": "rtt_ns.count", "kind": "histogram", "values": [0,0]},
    {"name": "rtt_ns.sum", "kind": "histogram", "values": [0,0]}
  ]
}
`
	if buf.String() != golden {
		t.Errorf("timeseries JSON drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.String(), golden)
	}
	// And it must stay parseable as ordinary JSON.
	var parsed struct {
		PeriodNs int64   `json:"period_ns"`
		TimesNs  []int64 `json:"times_ns"`
		Series   []struct {
			Name   string  `json:"name"`
			Kind   string  `json:"kind"`
			Values []int64 `json:"values"`
		} `json:"series"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("golden JSON does not parse: %v", err)
	}
	if parsed.PeriodNs != 2000000 || len(parsed.Series) != 4 {
		t.Errorf("parsed golden lost content: %+v", parsed)
	}
}

// TestTimeseriesGoldenCSV pins the CSV flavor of the same artifact.
func TestTimeseriesGoldenCSV(t *testing.T) {
	reg, c, _, _ := samplerFixture()
	s := NewSampler(reg, time.Millisecond, 4)
	c.Add(2)
	s.Sample(1 * time.Millisecond)
	c.Add(2)
	s.Sample(2 * time.Millisecond)

	var buf bytes.Buffer
	if err := s.Timeseries().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	const golden = `t_ns,segments_total,conns_active,rtt_ns.count,rtt_ns.sum
1000000,2,0,0,0
2000000,4,0,0,0
`
	if buf.String() != golden {
		t.Errorf("timeseries CSV drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.String(), golden)
	}
}
