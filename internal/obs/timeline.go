package obs

import (
	"errors"
	"fmt"
	"io"
	"time"

	"tcpfailover/internal/ipv4"
)

// Failover timeline reconstruction. A failover has five observable
// milestones:
//
//	failure injected      the experiment fail-stops the primary
//	detector fired        the secondary's fault detector declares it dead
//	gratuitous ARP        the takeover procedure finishes announcing aP
//	first server segment  the first post-takeover TCP segment reaches the
//	                      client from the service address (the secondary's
//	                      stack now answers directly)
//	client ack resumes    the client's first TCP segment back to the service
//	                      address with ACK set — the connection is live again
//
// The first three come from in-simulation hooks (the experiment records
// them as Marks); the last two are reconstructed from a flight recorder
// attached to the client host. All values are virtual time, so a timeline
// is a pure function of the scenario seed and renders byte-identically
// across runs — the determinism gate relies on that.

// Marks carries the hook-recorded milestones into Analyze.
type Marks struct {
	FailureInjected time.Duration `json:"failure_injected_ns"`
	DetectorFired   time.Duration `json:"detector_fired_ns"`
	TakeoverDone    time.Duration `json:"takeover_done_ns"`
}

// Timeline is one reconstructed failover: the five milestone timestamps.
type Timeline struct {
	FailureInjected    time.Duration `json:"failure_injected_ns"`
	DetectorFired      time.Duration `json:"detector_fired_ns"`
	TakeoverDone       time.Duration `json:"takeover_done_ns"`
	FirstServerSegment time.Duration `json:"first_server_segment_ns"`
	ClientAckResumed   time.Duration `json:"client_ack_resumed_ns"`
}

// Detection is the fault-detection phase: crash to detector firing.
func (t Timeline) Detection() time.Duration { return t.DetectorFired - t.FailureInjected }

// Announce is the takeover phase: detector firing to gratuitous ARP sent.
func (t Timeline) Announce() time.Duration { return t.TakeoverDone - t.DetectorFired }

// Resume is the redirection phase: ARP sent to the first segment from the
// secondary reaching the client (includes the router's ARP-table update).
func (t Timeline) Resume() time.Duration { return t.FirstServerSegment - t.TakeoverDone }

// AckTurnaround is the client-side phase: first secondary segment to the
// client's first ACK back.
func (t Timeline) AckTurnaround() time.Duration { return t.ClientAckResumed - t.FirstServerSegment }

// Total is the whole failover window as the client experiences it.
func (t Timeline) Total() time.Duration { return t.ClientAckResumed - t.FailureInjected }

// ErrIncompleteTimeline reports that a milestone could not be found.
var ErrIncompleteTimeline = errors.New("obs: incomplete failover timeline")

const tcpAckFlag = 0x10

// Analyze reconstructs a failover timeline from a client-host capture.
// recs must come from a recorder attached to the client; service is the
// address clients connect to (the failed primary's, taken over by the
// secondary). The package deliberately does not import internal/tcp, so
// the two TCP fields it needs — the flags byte — are read by offset.
func Analyze(recs []Record, marks Marks, service ipv4.Addr) (Timeline, error) {
	t := Timeline{
		FailureInjected: marks.FailureInjected,
		DetectorFired:   marks.DetectorFired,
		TakeoverDone:    marks.TakeoverDone,
	}
	if !(marks.FailureInjected <= marks.DetectorFired && marks.DetectorFired <= marks.TakeoverDone) {
		return t, fmt.Errorf("%w: marks out of order (%v, %v, %v)",
			ErrIncompleteTimeline, marks.FailureInjected, marks.DetectorFired, marks.TakeoverDone)
	}
	for _, r := range recs {
		if r.Hdr.Protocol != ipv4.ProtoTCP || len(r.Payload) < 14 {
			continue
		}
		if t.FirstServerSegment == 0 {
			// Anything from the service address after the gratuitous ARP was
			// sent by the secondary: the primary is fail-stopped and the
			// server LAN is microseconds wide, so nothing of the primary's
			// survives the ≥ detection-timeout gap in flight.
			if r.Dir == DirRx && r.Hdr.Src == service && r.Time >= marks.TakeoverDone {
				t.FirstServerSegment = r.Time
			}
			continue
		}
		if r.Dir == DirTx && r.Hdr.Dst == service && r.Payload[13]&tcpAckFlag != 0 {
			t.ClientAckResumed = r.Time
			return t, nil
		}
	}
	if t.FirstServerSegment == 0 {
		return t, fmt.Errorf("%w: no post-takeover segment from %v in %d records",
			ErrIncompleteTimeline, service, len(recs))
	}
	return t, fmt.Errorf("%w: no client ACK after first server segment at %v",
		ErrIncompleteTimeline, t.FirstServerSegment)
}

// WriteText renders the timeline as a fixed-layout phase breakdown. The
// output is a pure function of the timeline values.
func (t Timeline) WriteText(w io.Writer) error {
	rows := []struct {
		label string
		at    time.Duration
		phase time.Duration
	}{
		{"failure injected", t.FailureInjected, 0},
		{"detector fired", t.DetectorFired, t.Detection()},
		{"gratuitous ARP sent", t.TakeoverDone, t.Announce()},
		{"first server segment", t.FirstServerSegment, t.Resume()},
		{"client ack resumed", t.ClientAckResumed, t.AckTurnaround()},
	}
	for i, row := range rows {
		delta := ""
		if i > 0 {
			delta = "+" + row.phase.String()
		}
		if _, err := fmt.Fprintf(w, "%-22s %14.9f  %s\n", row.label, row.at.Seconds(), delta); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-22s %14s  %s\n", "total", "", t.Total())
	return err
}
