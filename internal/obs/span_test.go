package obs

import (
	"testing"
	"time"
)

func TestSpanMilestoneSemantics(t *testing.T) {
	r := NewSpanRecorder(0)
	const key = uint64(0x0a00000200008000) | 9000

	r.Mark(key, SpanSynSent, 10*time.Millisecond)
	r.Mark(key, SpanSynSent, 20*time.Millisecond) // set-if-unset: ignored
	r.Mark(key, SpanEstablished, 30*time.Millisecond)

	// Pre-failure progress advances LastProgress every time and records
	// FirstByte once.
	r.Progress(key, 40*time.Millisecond)
	r.Progress(key, 50*time.Millisecond)
	r.MarkFailure(55 * time.Millisecond)
	// Post-failure progress freezes LastProgress and sets FirstRecovery once.
	r.Progress(key, 200*time.Millisecond)
	r.Progress(key, 210*time.Millisecond)

	sp, ok := r.Lookup(key)
	if !ok {
		t.Fatal("span not found")
	}
	want := map[SpanMilestone]time.Duration{
		SpanSynSent:       10 * time.Millisecond,
		SpanEstablished:   30 * time.Millisecond,
		SpanFirstByte:     40 * time.Millisecond,
		SpanLastProgress:  50 * time.Millisecond,
		SpanFirstRecovery: 200 * time.Millisecond,
	}
	for m, w := range want {
		got, ok := sp.Time(m)
		if !ok || got != w {
			t.Errorf("%s = %v (set=%v), want %v", m, got, ok, w)
		}
	}
	if sp.Has(SpanFirstDiverted) || sp.Has(SpanFirstAfterTakeover) {
		t.Error("unmarked milestones reported as set")
	}

	r.Retransmit(key)
	r.Retransmit(key)
	r.ZeroWindow(key)
	r.Retransmit(12345) // unknown key: must not create a span
	sp, _ = r.Lookup(key)
	if sp.Retransmits != 2 || sp.ZeroWindowStalls != 1 {
		t.Errorf("counters = %d/%d, want 2/1", sp.Retransmits, sp.ZeroWindowStalls)
	}
	if r.Len() != 1 {
		t.Errorf("recorder holds %d spans, want 1 (Retransmit on unknown key must not allocate one)", r.Len())
	}
}

// TestSpanRecorderChurnBounded is the churn gate: under a flood of
// one-shot keys far beyond the limit, the LRU bound must recycle slots so
// the arena never grows past the limit, with every eviction counted.
func TestSpanRecorderChurnBounded(t *testing.T) {
	const limit = 64
	reg := NewRegistry()
	r := NewSpanRecorder(limit)
	r.AttachObs(reg)
	const flood = 10000
	for i := 0; i < flood; i++ {
		r.Mark(uint64(i+1), SpanSynSent, time.Duration(i)*time.Microsecond)
	}
	if r.Len() != limit {
		t.Errorf("live spans = %d, want %d", r.Len(), limit)
	}
	if r.HighWater() > limit {
		t.Errorf("high water %d exceeds limit %d", r.HighWater(), limit)
	}
	if r.ArenaCap() > limit {
		t.Errorf("arena grew to %d slots under churn, want <= %d (slots must recycle)", r.ArenaCap(), limit)
	}
	if want := int64(flood - limit); r.Evicted() != want {
		t.Errorf("evicted %d, want %d", r.Evicted(), want)
	}
	byName := map[string]int64{}
	for _, s := range reg.Snapshot() {
		byName[s.Name] = s.Value
	}
	if got := byName["obs_span_evictions_total"]; got != int64(flood-limit) {
		t.Errorf("obs_span_evictions_total = %d, want %d", got, flood-limit)
	}
	if got := byName["obs_spans_active"]; got != int64(limit) {
		t.Errorf("obs_spans_active = %d, want %d", got, limit)
	}
	// The survivors are exactly the most recently touched keys.
	for i := flood - limit; i < flood; i++ {
		if _, ok := r.Lookup(uint64(i + 1)); !ok {
			t.Fatalf("recent key %d evicted", i+1)
		}
	}
	if _, ok := r.Lookup(1); ok {
		t.Error("oldest key survived a full LRU cycle")
	}
}

// TestSpanRecorderLRUTouch checks that touching an old span protects it
// from eviction.
func TestSpanRecorderLRUTouch(t *testing.T) {
	r := NewSpanRecorder(3)
	r.Mark(1, SpanSynSent, 1)
	r.Mark(2, SpanSynSent, 2)
	r.Mark(3, SpanSynSent, 3)
	r.Mark(1, SpanEstablished, 4) // touch key 1: key 2 is now oldest
	r.Mark(4, SpanSynSent, 5)     // evicts key 2
	if _, ok := r.Lookup(2); ok {
		t.Error("least-recently-touched span survived")
	}
	for _, k := range []uint64{1, 3, 4} {
		if _, ok := r.Lookup(k); !ok {
			t.Errorf("span %d evicted, want retained", k)
		}
	}
}

func TestSpanSetLimitEvictsDown(t *testing.T) {
	r := NewSpanRecorder(0)
	for i := 0; i < 10; i++ {
		r.Mark(uint64(i+1), SpanSynSent, time.Duration(i))
	}
	r.SetLimit(4)
	if r.Len() != 4 {
		t.Fatalf("len = %d after SetLimit(4), want 4", r.Len())
	}
	for k := uint64(7); k <= 10; k++ {
		if _, ok := r.Lookup(k); !ok {
			t.Errorf("recent span %d evicted by SetLimit", k)
		}
	}
}

// TestSpanDigestDeterministic checks the digest is a function of the record
// set and marks only — insertion order must not matter, content must.
func TestSpanDigestDeterministic(t *testing.T) {
	build := func(order []uint64) *SpanRecorder {
		r := NewSpanRecorder(0)
		for _, k := range order {
			r.Mark(k, SpanSynSent, time.Duration(k)*time.Millisecond)
			r.Progress(k, time.Duration(k+5)*time.Millisecond)
		}
		r.MarkFailure(100 * time.Millisecond)
		r.MarkDetect(120 * time.Millisecond)
		r.MarkTakeover(130 * time.Millisecond)
		return r
	}
	a := build([]uint64{1, 2, 3}).Digest()
	b := build([]uint64{3, 1, 2}).Digest()
	if a != b {
		t.Errorf("digest depends on insertion order: %016x vs %016x", a, b)
	}
	c := build([]uint64{1, 2, 4}).Digest()
	if a == c {
		t.Error("digest blind to record content")
	}
	// Marks must be digested too.
	r := NewSpanRecorder(0)
	r.Mark(1, SpanSynSent, time.Millisecond)
	d1 := r.Digest()
	r.MarkFailure(2 * time.Millisecond)
	if r.Digest() == d1 {
		t.Error("digest blind to fleet marks")
	}
	// Fold order sensitivity.
	if MergeSpanDigests([]uint64{a, c}) == MergeSpanDigests([]uint64{c, a}) {
		t.Error("merged digest blind to cell order")
	}
}

// TestSpanRecorderNilSafe checks that every method is a no-op on a nil
// recorder — the hooks in the TCP stack and bridges call unconditionally.
func TestSpanRecorderNilSafe(t *testing.T) {
	var r *SpanRecorder
	r.Mark(1, SpanSynSent, 0)
	r.Progress(1, 0)
	r.Retransmit(1)
	r.ZeroWindow(1)
	r.MarkFailure(0)
	r.MarkDetect(0)
	r.MarkTakeover(0)
	if r.TakeoverMarked() {
		t.Error("nil recorder reports takeover marked")
	}
	if _, ok := r.Lookup(1); ok {
		t.Error("nil recorder found a span")
	}
	if r.Spans() != nil {
		t.Error("nil recorder returned spans")
	}
	if _, ok := r.Stall(&Span{}); ok {
		t.Error("nil recorder computed a stall")
	}
	r.Digest() // must not panic
}

func TestStallAttributionTiles(t *testing.T) {
	r := NewSpanRecorder(0)
	const key = uint64(42)
	r.Mark(key, SpanSynSent, 1*time.Millisecond)
	r.Mark(key, SpanEstablished, 2*time.Millisecond)
	r.Progress(key, 90*time.Millisecond)
	r.MarkFailure(100 * time.Millisecond)
	r.MarkDetect(140 * time.Millisecond)
	r.MarkTakeover(145 * time.Millisecond)
	r.Mark(key, SpanFirstAfterTakeover, 150*time.Millisecond)
	r.Progress(key, 155*time.Millisecond)

	sp, _ := r.Lookup(key)
	st, ok := r.Stall(&sp)
	if !ok {
		t.Fatal("no stall computed")
	}
	if st.Anchor != 90*time.Millisecond {
		t.Errorf("anchor = %v, want last pre-crash progress 90ms", st.Anchor)
	}
	if st.Total != 65*time.Millisecond {
		t.Errorf("total = %v, want 65ms", st.Total)
	}
	wants := []struct {
		name string
		got  time.Duration
		want time.Duration
	}{
		{"precrash", st.PreCrash, 10 * time.Millisecond},
		{"detection", st.Detection, 40 * time.Millisecond},
		{"announce", st.Announce, 5 * time.Millisecond},
		{"resume", st.Resume, 5 * time.Millisecond},
		{"recovery", st.Recovery, 5 * time.Millisecond},
	}
	sum := time.Duration(0)
	for _, w := range wants {
		if w.got != w.want {
			t.Errorf("%s = %v, want %v", w.name, w.got, w.want)
		}
		sum += w.got
	}
	if sum != st.Total {
		t.Errorf("phases sum to %v, total is %v — must tile exactly", sum, st.Total)
	}
}

func TestStallAttributionAnchorFallbackAndRejects(t *testing.T) {
	r := NewSpanRecorder(0)
	r.MarkFailure(100 * time.Millisecond)
	r.MarkDetect(140 * time.Millisecond)
	r.MarkTakeover(145 * time.Millisecond)

	// Established but no payload before the crash: anchor falls back to
	// establishment.
	r.Mark(1, SpanSynSent, 95*time.Millisecond)
	r.Mark(1, SpanEstablished, 98*time.Millisecond)
	r.Progress(1, 160*time.Millisecond)
	sp, _ := r.Lookup(1)
	if st, ok := r.Stall(&sp); !ok || st.Anchor != 98*time.Millisecond {
		t.Errorf("established fallback: ok=%v anchor=%v, want 98ms", ok, st.Anchor)
	}

	// Mid-handshake: anchor falls back to SYN.
	r.Mark(2, SpanSynSent, 99*time.Millisecond)
	r.Progress(2, 170*time.Millisecond)
	sp, _ = r.Lookup(2)
	if st, ok := r.Stall(&sp); !ok || st.Anchor != 99*time.Millisecond {
		t.Errorf("syn fallback: ok=%v anchor=%v, want 99ms", ok, st.Anchor)
	}

	// Never recovered: no stall.
	r.Mark(3, SpanSynSent, 90*time.Millisecond)
	sp, _ = r.Lookup(3)
	if _, ok := r.Stall(&sp); ok {
		t.Error("unrecovered span scored a stall")
	}

	// Born after takeover: never saw the outage.
	r.Mark(4, SpanSynSent, 150*time.Millisecond)
	r.Mark(4, SpanEstablished, 151*time.Millisecond)
	r.Progress(4, 152*time.Millisecond)
	sp, _ = r.Lookup(4)
	if _, ok := r.Stall(&sp); ok {
		t.Error("post-takeover span scored a stall")
	}

	// Incomplete fleet marks: nothing scores.
	r2 := NewSpanRecorder(0)
	r2.Mark(1, SpanEstablished, 1*time.Millisecond)
	r2.MarkFailure(2 * time.Millisecond)
	r2.Progress(1, 3*time.Millisecond)
	sp, _ = r2.Lookup(1)
	if _, ok := r2.Stall(&sp); ok {
		t.Error("stall scored without detect/takeover marks")
	}
}
