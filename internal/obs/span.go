package obs

import (
	"sort"
	"time"

	"tcpfailover/internal/flowtab"
)

// SpanMilestone indexes one typed lifecycle timestamp in a connection span.
type SpanMilestone uint8

// Per-connection lifecycle milestones, in causal order. Each is recorded at
// most once per connection (set-if-unset), except LastProgress, which is
// overwritten on every delivery until the failure mark freezes it — it then
// holds the last pre-crash progress, the anchor the stall is measured from.
const (
	SpanSynSent SpanMilestone = iota
	SpanEstablished
	SpanFirstByte
	SpanLastProgress
	SpanFirstDiverted
	SpanFirstAfterTakeover
	SpanFirstRecovery
	NumSpanMilestones
)

// spanMilestoneNames are the export names, indexed by SpanMilestone.
var spanMilestoneNames = [NumSpanMilestones]string{
	"syn_sent",
	"established",
	"first_byte",
	"last_progress",
	"first_diverted",
	"first_after_takeover",
	"first_recovery",
}

// String returns the export name of the milestone.
func (m SpanMilestone) String() string {
	if m < NumSpanMilestones {
		return spanMilestoneNames[m]
	}
	return "unknown"
}

// Span is one connection's lifecycle record. It is pointer-free so a slab
// of a million spans is a single never-scanned allocation (the flowtab
// discipline from DESIGN.md §14); links for the recorder's LRU list are
// 32-bit slot indices, not pointers.
type Span struct {
	// Key is the packed flow key (clientAddr<<32 | clientPort<<16 |
	// servicePort) shared by the client stack and the secondary bridge's
	// divert path, so both sides write into the same record.
	Key uint64
	// Times holds one sim timestamp per milestone; only entries whose bit
	// is set in Set are valid.
	Times [NumSpanMilestones]time.Duration
	// Set is the valid-milestone bitmask (bit i <-> SpanMilestone i).
	Set uint32
	// Retransmits counts retransmission events attributed to this flow.
	Retransmits uint32
	// ZeroWindowStalls counts zero-window (persist-timer) stalls.
	ZeroWindowStalls uint32
	// lruPrev/lruNext are slot-index+1 links in the recorder's recency
	// list; 0 means "none" so the zero value is detached.
	lruPrev, lruNext int32
}

// Has reports whether milestone m was recorded.
func (s *Span) Has(m SpanMilestone) bool { return s.Set&(1<<m) != 0 }

// Time returns the timestamp of milestone m and whether it was recorded.
func (s *Span) Time(m SpanMilestone) (time.Duration, bool) {
	return s.Times[m], s.Has(m)
}

// SpanRecorder collects per-connection lifecycle spans for a whole fleet.
// Storage is pointer-free (flowtab.Table over flowtab.Slab), updates are
// index-addressed stores with no steady-state allocation, and every
// timestamp is sim time, so the record set is a deterministic function of
// the simulation — byte-identical digests across worker and shard counts.
//
// Like the rest of the observability core it belongs to one single-threaded
// simulation domain; sharded runs give each cell its own recorder and merge
// digests/records afterwards.
type SpanRecorder struct {
	tab  flowtab.Table
	slab flowtab.Slab[Span]

	// lruHead/lruTail are slot-index+1 ends of the recency list (head =
	// most recent); 0 means empty. The list bounds the arena under
	// SYN-flood churn exactly like the hardened bridge flow tables.
	lruHead, lruTail int32
	limit            int
	highWater        int

	evictedTotal int64
	evictions    Counter
	active       Gauge

	// Fleet-wide failover marks, shared by every span's phase attribution.
	failureAt, detectAt, takeoverAt time.Duration
	haveFailure, haveDetect         bool
	haveTakeover                    bool
}

// NewSpanRecorder returns a recorder bounded to limit live spans (0 means
// unbounded). When the limit is reached the least recently touched span is
// evicted, so a SYN flood recycles slots instead of growing the arena.
func NewSpanRecorder(limit int) *SpanRecorder {
	r := &SpanRecorder{limit: limit}
	r.evictions = (*Registry)(nil).Counter("obs_span_evictions_total")
	r.active = (*Registry)(nil).Gauge("obs_spans_active")
	return r
}

// AttachObs re-homes the recorder's own series (eviction counter, active
// gauge) onto reg. Call before traffic; handles are pre-resolved so the
// steady state never branches on attachment.
func (r *SpanRecorder) AttachObs(reg *Registry) {
	r.evictions = reg.Counter("obs_span_evictions_total")
	r.active = reg.Gauge("obs_spans_active")
	r.evictions.Add(r.evictedTotal)
	r.active.Set(int64(r.slab.Len()))
}

// SetLimit changes the live-span bound (0 means unbounded). Existing spans
// above the new limit are evicted oldest-first immediately.
func (r *SpanRecorder) SetLimit(n int) {
	r.limit = n
	for r.limit > 0 && r.slab.Len() > r.limit {
		r.evictOldest()
	}
}

// Len returns the number of live spans.
func (r *SpanRecorder) Len() int {
	if r == nil {
		return 0
	}
	return r.slab.Len()
}

// HighWater returns the maximum number of simultaneously live spans seen.
func (r *SpanRecorder) HighWater() int {
	if r == nil {
		return 0
	}
	return r.highWater
}

// ArenaCap returns the total slots ever created (live + free): the arena
// footprint the churn gate bounds.
func (r *SpanRecorder) ArenaCap() int {
	if r == nil {
		return 0
	}
	return r.slab.Cap()
}

// Evicted returns the total number of spans evicted by the LRU bound.
func (r *SpanRecorder) Evicted() int64 {
	if r == nil {
		return 0
	}
	return r.evictedTotal
}

// lruUnlink detaches slot i from the recency list.
func (r *SpanRecorder) lruUnlink(i uint32) {
	sp := r.slab.At(i)
	if sp.lruPrev != 0 {
		r.slab.At(uint32(sp.lruPrev - 1)).lruNext = sp.lruNext
	} else if r.lruHead == int32(i)+1 {
		r.lruHead = sp.lruNext
	}
	if sp.lruNext != 0 {
		r.slab.At(uint32(sp.lruNext - 1)).lruPrev = sp.lruPrev
	} else if r.lruTail == int32(i)+1 {
		r.lruTail = sp.lruPrev
	}
	sp.lruPrev, sp.lruNext = 0, 0
}

// lruPush makes slot i the most recently used.
func (r *SpanRecorder) lruPush(i uint32) {
	sp := r.slab.At(i)
	sp.lruPrev, sp.lruNext = 0, r.lruHead
	if r.lruHead != 0 {
		r.slab.At(uint32(r.lruHead - 1)).lruPrev = int32(i) + 1
	}
	r.lruHead = int32(i) + 1
	if r.lruTail == 0 {
		r.lruTail = int32(i) + 1
	}
}

// lruTouch moves slot i to the front of the recency list.
func (r *SpanRecorder) lruTouch(i uint32) {
	if r.lruHead == int32(i)+1 {
		return
	}
	r.lruUnlink(i)
	r.lruPush(i)
}

// evictOldest drops the least recently touched span.
func (r *SpanRecorder) evictOldest() {
	if r.lruTail == 0 {
		return
	}
	i := uint32(r.lruTail - 1)
	key := r.slab.At(i).Key
	r.lruUnlink(i)
	r.tab.Delete(key)
	r.slab.Free(i)
	r.evictedTotal++
	r.evictions.Inc()
	r.active.Set(int64(r.slab.Len()))
}

// slot returns the slab index for key, creating (and possibly evicting to
// make room for) a fresh span when none exists.
func (r *SpanRecorder) slot(key uint64) uint32 {
	if i, ok := r.tab.Get(key); ok {
		r.lruTouch(i)
		return i
	}
	if r.limit > 0 && r.slab.Len() >= r.limit {
		r.evictOldest()
	}
	i := r.slab.Alloc()
	r.slab.At(i).Key = key
	r.tab.Put(key, i)
	r.lruPush(i)
	if r.slab.Len() > r.highWater {
		r.highWater = r.slab.Len()
	}
	r.active.Set(int64(r.slab.Len()))
	return i
}

// Mark records milestone m for key at sim time now (set-if-unset). A span
// is created on first sight of the key.
func (r *SpanRecorder) Mark(key uint64, m SpanMilestone, now time.Duration) {
	if r == nil {
		return
	}
	sp := r.slab.At(r.slot(key))
	if sp.Set&(1<<m) == 0 {
		sp.Times[m] = now
		sp.Set |= 1 << m
	}
}

// Progress records one in-order payload delivery for key at sim time now.
// Before the failure mark it advances LastProgress (the pre-crash anchor);
// after it, the first delivery becomes FirstRecovery and LastProgress stays
// frozen. FirstByte is recorded on the first delivery either way.
func (r *SpanRecorder) Progress(key uint64, now time.Duration) {
	if r == nil {
		return
	}
	sp := r.slab.At(r.slot(key))
	if sp.Set&(1<<SpanFirstByte) == 0 {
		sp.Times[SpanFirstByte] = now
		sp.Set |= 1 << SpanFirstByte
	}
	if !r.haveFailure {
		sp.Times[SpanLastProgress] = now
		sp.Set |= 1 << SpanLastProgress
		return
	}
	if sp.Set&(1<<SpanFirstRecovery) == 0 {
		sp.Times[SpanFirstRecovery] = now
		sp.Set |= 1 << SpanFirstRecovery
	}
}

// Retransmit attributes one retransmission to key's span, if it exists.
func (r *SpanRecorder) Retransmit(key uint64) {
	if r == nil {
		return
	}
	if i, ok := r.tab.Get(key); ok {
		r.slab.At(i).Retransmits++
	}
}

// ZeroWindow attributes one zero-window stall to key's span, if it exists.
func (r *SpanRecorder) ZeroWindow(key uint64) {
	if r == nil {
		return
	}
	if i, ok := r.tab.Get(key); ok {
		r.slab.At(i).ZeroWindowStalls++
	}
}

// MarkFailure records the fleet-wide failure-injection time (set-if-unset).
// From this point Progress freezes LastProgress and starts FirstRecovery.
func (r *SpanRecorder) MarkFailure(now time.Duration) {
	if r == nil || r.haveFailure {
		return
	}
	r.failureAt, r.haveFailure = now, true
}

// MarkDetect records when the failure detector fired (set-if-unset).
func (r *SpanRecorder) MarkDetect(now time.Duration) {
	if r == nil || r.haveDetect {
		return
	}
	r.detectAt, r.haveDetect = now, true
}

// MarkTakeover records when the secondary finished taking over the service
// address — the ARP announce instant (set-if-unset).
func (r *SpanRecorder) MarkTakeover(now time.Duration) {
	if r == nil || r.haveTakeover {
		return
	}
	r.takeoverAt, r.haveTakeover = now, true
}

// FailureMark returns the failure-injection time and whether it was marked.
func (r *SpanRecorder) FailureMark() (time.Duration, bool) {
	return r.failureAt, r.haveFailure
}

// DetectMark returns the detector-fired time and whether it was marked.
func (r *SpanRecorder) DetectMark() (time.Duration, bool) {
	return r.detectAt, r.haveDetect
}

// TakeoverMark returns the takeover/ARP-announce time and whether it was
// marked.
func (r *SpanRecorder) TakeoverMark() (time.Duration, bool) {
	return r.takeoverAt, r.haveTakeover
}

// TakeoverMarked reports whether takeover has been marked; the client
// stack's input path branches on this single bool pre-takeover.
func (r *SpanRecorder) TakeoverMarked() bool { return r != nil && r.haveTakeover }

// Lookup returns a copy of key's span.
func (r *SpanRecorder) Lookup(key uint64) (Span, bool) {
	if r == nil {
		return Span{}, false
	}
	i, ok := r.tab.Get(key)
	if !ok {
		return Span{}, false
	}
	return *r.slab.At(i), true
}

// Spans returns copies of every live span, sorted by key — the canonical
// order every exporter and digest uses.
func (r *SpanRecorder) Spans() []Span {
	if r == nil {
		return nil
	}
	out := make([]Span, 0, r.slab.Len())
	r.slab.Range(func(_ uint32, sp *Span) { out = append(out, *sp) })
	sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	return out
}

// Digest returns an FNV-1a hash over every live span (sorted by key) and
// the fleet marks. Two recorders that observed the same simulation produce
// the same digest regardless of worker or shard count — the determinism
// gates compare exactly this.
func (r *SpanRecorder) Digest() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	if r == nil {
		return h
	}
	for _, sp := range r.Spans() {
		mix(sp.Key)
		mix(uint64(sp.Set))
		for m := SpanMilestone(0); m < NumSpanMilestones; m++ {
			if sp.Has(m) {
				mix(uint64(sp.Times[m]))
			}
		}
		mix(uint64(sp.Retransmits))
		mix(uint64(sp.ZeroWindowStalls))
	}
	marks := [...]struct {
		t    time.Duration
		have bool
	}{{r.failureAt, r.haveFailure}, {r.detectAt, r.haveDetect}, {r.takeoverAt, r.haveTakeover}}
	for _, mk := range marks {
		if mk.have {
			mix(uint64(mk.t) | 1<<63)
		} else {
			mix(0)
		}
	}
	return h
}

// MergeSpanDigests folds per-cell digests into one fleet digest, order-
// sensitively (cells are always folded in cell-index order).
func MergeSpanDigests(digests []uint64) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, d := range digests {
		for s := 0; s < 64; s += 8 {
			h ^= (d >> s) & 0xff
			h *= prime64
		}
	}
	return h
}
