package obs

import (
	"encoding/binary"
	"io"

	"tcpfailover/internal/ipv4"
)

// The recorder dumps to standard capture formats so the simulated traffic
// opens in tcpdump / Wireshark / tshark. Packets are written as raw IPv4
// datagrams (LINKTYPE_RAW = 101): the simulation's Ethernet framing carries
// no information the IP layer doesn't, and raw IP keeps the files
// self-describing. Timestamps are the simulation's virtual nanoseconds, so
// the nanosecond-resolution pcap magic is used.

const (
	pcapMagicNano = 0xa1b23c4d // nanosecond-resolution pcap
	linktypeRaw   = 101        // LINKTYPE_RAW: raw IPv4/IPv6
	pcapSnapLen   = 65535
)

// WritePcap writes the records as a nanosecond-resolution pcap stream.
func WritePcap(w io.Writer, recs []Record) error {
	var hdr [24]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], pcapMagicNano)
	le.PutUint16(hdr[4:], 2) // version 2.4
	le.PutUint16(hdr[6:], 4)
	// thiszone, sigfigs: zero.
	le.PutUint32(hdr[16:], pcapSnapLen)
	le.PutUint32(hdr[20:], linktypeRaw)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var rh [16]byte
	for _, r := range recs {
		pkt := ipv4.Marshal(r.Hdr, r.Payload)
		ns := uint64(r.Time)
		le.PutUint32(rh[0:], uint32(ns/1e9))
		le.PutUint32(rh[4:], uint32(ns%1e9))
		le.PutUint32(rh[8:], uint32(len(pkt)))             // captured length
		le.PutUint32(rh[12:], uint32(ipv4.HeaderLen+r.Len)) // original length
		if _, err := w.Write(rh[:]); err != nil {
			return err
		}
		if _, err := w.Write(pkt); err != nil {
			return err
		}
	}
	return nil
}

// pcapng block types.
const (
	blockSHB = 0x0A0D0D0A
	blockIDB = 0x00000001
	blockEPB = 0x00000006
)

// WritePcapNG writes the records as a pcapng stream: one section header,
// one raw-IP interface with nanosecond timestamp resolution, and one
// enhanced packet block per record.
func WritePcapNG(w io.Writer, recs []Record) error {
	le := binary.LittleEndian

	// Section Header Block: type, length, byte-order magic, version 1.0,
	// unknown section length, no options.
	var shb [28]byte
	le.PutUint32(shb[0:], blockSHB)
	le.PutUint32(shb[4:], 28)
	le.PutUint32(shb[8:], 0x1A2B3C4D)
	le.PutUint16(shb[12:], 1) // major
	le.PutUint16(shb[14:], 0) // minor
	le.PutUint64(shb[16:], ^uint64(0))
	le.PutUint32(shb[24:], 28)
	if _, err := w.Write(shb[:]); err != nil {
		return err
	}

	// Interface Description Block with an if_tsresol=9 option (timestamps
	// in nanoseconds; the default would be microseconds).
	var idb [28]byte
	le.PutUint32(idb[0:], blockIDB)
	le.PutUint32(idb[4:], 28)
	le.PutUint16(idb[8:], linktypeRaw)
	le.PutUint32(idb[12:], pcapSnapLen)
	le.PutUint16(idb[16:], 9) // option: if_tsresol
	le.PutUint16(idb[18:], 1) // length 1
	idb[20] = 9               // 10^-9
	// 3 pad bytes, then opt_endofopt (0,0) and trailing total length.
	le.PutUint32(idb[24:], 28)
	if _, err := w.Write(idb[:]); err != nil {
		return err
	}

	var bh [28]byte // EPB fixed part
	var pad [4]byte
	for _, r := range recs {
		pkt := ipv4.Marshal(r.Hdr, r.Payload)
		padded := (len(pkt) + 3) &^ 3
		total := 32 + padded // 28 fixed + data + trailing length
		ns := uint64(r.Time)
		le.PutUint32(bh[0:], blockEPB)
		le.PutUint32(bh[4:], uint32(total))
		le.PutUint32(bh[8:], 0) // interface 0
		le.PutUint32(bh[12:], uint32(ns>>32))
		le.PutUint32(bh[16:], uint32(ns))
		le.PutUint32(bh[20:], uint32(len(pkt)))
		le.PutUint32(bh[24:], uint32(ipv4.HeaderLen+r.Len))
		if _, err := w.Write(bh[:]); err != nil {
			return err
		}
		if _, err := w.Write(pkt); err != nil {
			return err
		}
		if _, err := w.Write(pad[:padded-len(pkt)]); err != nil {
			return err
		}
		var tl [4]byte
		le.PutUint32(tl[:], uint32(total))
		if _, err := w.Write(tl[:]); err != nil {
			return err
		}
	}
	return nil
}
