package obs

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Sampler snapshots a metrics registry into columnar rings at a fixed
// sim-time period. The column set is frozen at construction from the
// registry's registration order (itself deterministic), so two samplers
// over equivalent registries produce identical column layouts; each Sample
// call is a straight copy of pre-resolved slots into flat int64 rings —
// no maps, no allocation in the steady state.
//
// Scheduling is the caller's job: obs cannot depend on internal/sim, so
// the simulation (bench harness, CLI) arms a periodic scheduler event that
// calls Sample(now). The ring holds the most recent Cap samples and wraps
// like the flight recorder, bounding memory for arbitrarily long runs.
type Sampler struct {
	period time.Duration
	cols   []samplerCol
	times  []int64 // sample sim times, ns; ring of capacity cap
	cap    int
	n      int // total samples taken (may exceed cap)
}

// samplerCol is one exported series: a pre-resolved metric slot plus its
// value ring. Histograms export two columns (count and sum).
type samplerCol struct {
	name string
	kind Kind
	m    *metric
	sum  bool // histogram sum column (else count for histograms)
	vals []int64
}

// NewSampler builds a sampler over reg with the given period and ring
// capacity (minimum 1). The column set is the registry's series at call
// time: counters and gauges one column each, histograms a ".count" and a
// ".sum" column.
func NewSampler(reg *Registry, period time.Duration, capacity int) *Sampler {
	if capacity < 1 {
		capacity = 1
	}
	s := &Sampler{period: period, cap: capacity, times: make([]int64, 0, capacity)}
	if reg == nil {
		return s
	}
	for _, m := range reg.metrics {
		switch m.kind {
		case KindHistogram:
			s.cols = append(s.cols,
				samplerCol{name: m.name + ".count", kind: m.kind, m: m, vals: make([]int64, 0, capacity)},
				samplerCol{name: m.name + ".sum", kind: m.kind, m: m, sum: true, vals: make([]int64, 0, capacity)})
		default:
			s.cols = append(s.cols,
				samplerCol{name: m.name, kind: m.kind, m: m, vals: make([]int64, 0, capacity)})
		}
	}
	return s
}

// Period returns the sampling period the caller should arm.
func (s *Sampler) Period() time.Duration { return s.period }

// Sample records one row at sim time now. Zero-allocation once the rings
// are full; before that, appends into pre-sized backing arrays.
func (s *Sampler) Sample(now time.Duration) {
	slot := s.n % s.cap
	if len(s.times) < s.cap {
		s.times = append(s.times, int64(now))
	} else {
		s.times[slot] = int64(now)
	}
	for i := range s.cols {
		c := &s.cols[i]
		var v int64
		switch {
		case c.kind != KindHistogram:
			v = c.m.value
		case c.sum:
			v = c.m.sum
		default:
			for _, n := range c.m.counts {
				v += n
			}
		}
		if len(c.vals) < s.cap {
			c.vals = append(c.vals, v)
		} else {
			c.vals[slot] = v
		}
	}
	s.n++
}

// Samples returns the number of rows currently retained.
func (s *Sampler) Samples() int {
	if s.n < s.cap {
		return s.n
	}
	return s.cap
}

// Timeseries is a sampler's contents in time order — the export and merge
// format. Times and every series' Values have equal length.
type Timeseries struct {
	PeriodNs int64
	TimesNs  []int64
	Series   []TimeseriesCol
}

// TimeseriesCol is one series column of a Timeseries.
type TimeseriesCol struct {
	Name   string
	Kind   string
	Values []int64
}

// Timeseries unrolls the ring into time order (oldest retained sample
// first).
func (s *Sampler) Timeseries() *Timeseries {
	n := s.Samples()
	ts := &Timeseries{PeriodNs: int64(s.period), TimesNs: make([]int64, n)}
	start := 0
	if s.n > s.cap {
		start = s.n % s.cap
	}
	for i := 0; i < n; i++ {
		ts.TimesNs[i] = s.times[(start+i)%s.cap]
	}
	for _, c := range s.cols {
		col := TimeseriesCol{Name: c.name, Kind: c.kind.String(), Values: make([]int64, n)}
		for i := 0; i < n; i++ {
			col.Values[i] = c.vals[(start+i)%s.cap]
		}
		ts.Series = append(ts.Series, col)
	}
	return ts
}

// MergeTimeseries folds per-cell timeseries into one fleet view: rows are
// aligned by timestamp (every cell samples on the same sim-time grid, so
// the time vectors must be identical) and series are united first-seen in
// input order with values summed — the same discipline as MergeSnapshots,
// so the result is independent of how cells were packed onto shards.
func MergeTimeseries(parts ...*Timeseries) (*Timeseries, error) {
	out := &Timeseries{}
	index := make(map[string]int)
	for _, p := range parts {
		if p == nil {
			continue
		}
		if out.TimesNs == nil {
			out.PeriodNs = p.PeriodNs
			out.TimesNs = append([]int64(nil), p.TimesNs...)
		} else if len(p.TimesNs) != len(out.TimesNs) {
			return nil, fmt.Errorf("obs: merging timeseries with %d rows into %d", len(p.TimesNs), len(out.TimesNs))
		} else {
			for i, t := range p.TimesNs {
				if t != out.TimesNs[i] {
					return nil, fmt.Errorf("obs: timeseries sample grids differ at row %d", i)
				}
			}
		}
		for _, col := range p.Series {
			j, ok := index[col.Name]
			if !ok {
				index[col.Name] = len(out.Series)
				out.Series = append(out.Series, TimeseriesCol{
					Name: col.Name, Kind: col.Kind,
					Values: append([]int64(nil), col.Values...),
				})
				continue
			}
			for i, v := range col.Values {
				out.Series[j].Values[i] += v
			}
		}
	}
	return out, nil
}

// WriteJSON emits the timeseries as a JSON object. Hand-built, like
// Registry.WriteJSON, so the byte layout is stable across Go versions and
// can serve as a golden artifact.
func (ts *Timeseries) WriteJSON(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "{\n  \"period_ns\": %d,\n  \"times_ns\": %s,\n  \"series\": [\n",
		ts.PeriodNs, jsonInts(ts.TimesNs)); err != nil {
		return err
	}
	for i, col := range ts.Series {
		sep := ","
		if i == len(ts.Series)-1 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "    {\"name\": %q, \"kind\": %q, \"values\": %s}%s\n",
			col.Name, col.Kind, jsonInts(col.Values), sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "  ]\n}\n")
	return err
}

// WriteCSV emits the timeseries as CSV: a header row (t_ns plus series
// names) followed by one row per sample.
func (ts *Timeseries) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("t_ns")
	for _, col := range ts.Series {
		b.WriteByte(',')
		b.WriteString(col.Name)
	}
	b.WriteByte('\n')
	for i, t := range ts.TimesNs {
		fmt.Fprintf(&b, "%d", t)
		for _, col := range ts.Series {
			fmt.Fprintf(&b, ",%d", col.Values[i])
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
