package obs

import "time"

// StallBreakdown is one connection's client-visible failover stall,
// attributed to the phases of E9's single-connection timeline — but
// computed from a recorded span, so it scales to the whole fleet.
//
// The stall runs from Anchor (the last pre-crash progress, or connection
// establishment for flows that never got a byte through, or SYN for flows
// caught mid-handshake) to the first post-recovery payload delivery. The
// phase fields tile that interval exactly: PreCrash + Detection + Announce
// + Resume + Recovery == Total.
type StallBreakdown struct {
	Anchor time.Duration // where the stall is measured from
	Total  time.Duration // anchor -> first post-recovery delivery

	PreCrash  time.Duration // anchor -> failure injection
	Detection time.Duration // failure injection -> detector fired
	Announce  time.Duration // detector fired -> takeover done (ARP announce)
	Resume    time.Duration // takeover -> first segment reaching the client
	Recovery  time.Duration // first post-takeover segment -> first delivery
}

// Stall computes sp's client-visible stall against the recorder's fleet
// marks. It returns false when the span records no completed stall: the
// connection never recovered (no post-failure delivery), was established
// only after takeover, or the fleet marks are incomplete.
func (r *SpanRecorder) Stall(sp *Span) (StallBreakdown, bool) {
	if r == nil || !r.haveFailure || !r.haveDetect || !r.haveTakeover {
		return StallBreakdown{}, false
	}
	if !sp.Has(SpanFirstRecovery) {
		return StallBreakdown{}, false
	}
	anchor, ok := sp.Time(SpanLastProgress)
	if !ok {
		if anchor, ok = sp.Time(SpanEstablished); !ok {
			if anchor, ok = sp.Time(SpanSynSent); !ok {
				return StallBreakdown{}, false
			}
		}
	}
	if anchor >= r.takeoverAt {
		// The flow only became active after the takeover completed; it
		// never experienced the outage.
		return StallBreakdown{}, false
	}
	end := sp.Times[SpanFirstRecovery]
	if end < anchor {
		return StallBreakdown{}, false
	}
	resumeEnd := end
	if t, ok := sp.Time(SpanFirstAfterTakeover); ok {
		resumeEnd = t
	}
	// Clamp the phase boundaries into [anchor, end] and force them
	// monotone, so the phase durations are non-negative and tile the
	// stall exactly even when a boundary lands outside the interval.
	clamp := func(t, lo time.Duration) time.Duration {
		if t < lo {
			t = lo
		}
		if t > end {
			t = end
		}
		return t
	}
	b1 := clamp(r.failureAt, anchor) // end of pre-crash
	b2 := clamp(r.detectAt, b1)      // end of detection
	b3 := clamp(r.takeoverAt, b2)    // end of announce
	b4 := clamp(resumeEnd, b3)       // end of resume
	return StallBreakdown{
		Anchor:    anchor,
		Total:     end - anchor,
		PreCrash:  b1 - anchor,
		Detection: b2 - b1,
		Announce:  b3 - b2,
		Resume:    b4 - b3,
		Recovery:  end - b4,
	}, true
}
