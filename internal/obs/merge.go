package obs

// Cross-shard aggregation. A sharded simulation keeps one Registry per cell
// (registries are single-threaded, like the schedulers that feed them) and
// merges the snapshots at observation time — counters and gauges sum, and
// histograms with matching bounds sum bucket-wise. Because each cell's
// registration order and counts are deterministic, the merged snapshot is
// too, and is identical for every shard count.

// MergeSnapshots combines per-cell snapshots into one aggregate. Series are
// matched by name; output order is first-seen order across the inputs in
// argument order, which is stable when the inputs are themselves stable.
// Histograms whose bucket bounds differ are kept as separate occurrences
// only in spirit — the first occurrence's bounds win and mismatched buckets
// are dropped (the simulator registers every cell's histograms identically,
// so this is a defensive path, not an expected one).
func MergeSnapshots(snaps ...[]Sample) []Sample {
	var out []Sample
	index := make(map[string]int)
	for _, snap := range snaps {
		for _, s := range snap {
			i, ok := index[s.Name]
			if !ok {
				index[s.Name] = len(out)
				cp := s
				cp.Bounds = append([]int64(nil), s.Bounds...)
				cp.Counts = append([]int64(nil), s.Counts...)
				out = append(out, cp)
				continue
			}
			dst := &out[i]
			switch s.Kind {
			case KindHistogram.String():
				dst.Sum += s.Sum
				dst.Count += s.Count
				if len(dst.Counts) == len(s.Counts) {
					for j := range s.Counts {
						dst.Counts[j] += s.Counts[j]
					}
				}
			default:
				dst.Value += s.Value
			}
		}
	}
	return out
}

// MergeRegistries snapshots each registry and merges the results.
func MergeRegistries(regs ...*Registry) []Sample {
	snaps := make([][]Sample, 0, len(regs))
	for _, r := range regs {
		snaps = append(snaps, r.Snapshot())
	}
	return MergeSnapshots(snaps...)
}
