package obs

import (
	"time"

	"tcpfailover/internal/ipv4"
)

// Record directions.
const (
	DirRx = uint8(0)
	DirTx = uint8(1)
)

// Record is one captured datagram: the IPv4 header plus a snapshot of the
// transport payload. Payload aliases the recorder's slot storage — it is
// valid until the slot is overwritten (capacity records later).
type Record struct {
	Time    time.Duration // virtual capture time
	Host    string        // capturing host's name
	Dir     uint8         // DirRx or DirTx, from the host's viewpoint
	Hdr     ipv4.Header
	Len     int    // original transport payload length
	Payload []byte // first min(Len, snap) bytes, copied
}

// Recorder is the flight recorder: a bounded ring of packet records. Slots
// are preallocated and payload storage is reused, so steady-state capture
// costs one bounded copy per datagram and no allocation once every slot's
// buffer has reached the snap length. Like the registry it belongs to one
// single-threaded simulation.
type Recorder struct {
	slots []Record
	snap  int
	total uint64 // records ever written; ring position = total % len(slots)
}

// DefaultSnapLen bounds the payload bytes kept per record. 128 bytes cover
// every TCP header this simulation produces (options included) plus the
// leading payload — enough for timeline reconstruction and readable pcaps
// without letting bulk transfers blow up the ring's memory.
const DefaultSnapLen = 128

// NewRecorder creates a ring of capacity records, keeping up to snapLen
// payload bytes per record (0 means DefaultSnapLen).
func NewRecorder(capacity, snapLen int) *Recorder {
	if capacity <= 0 {
		capacity = 1024
	}
	if snapLen <= 0 {
		snapLen = DefaultSnapLen
	}
	return &Recorder{slots: make([]Record, capacity), snap: snapLen}
}

// Record captures one datagram. dir is the tap's "rx"/"tx" string.
func (r *Recorder) Record(now time.Duration, host, dir string, hdr ipv4.Header, payload []byte) {
	s := &r.slots[r.total%uint64(len(r.slots))]
	r.total++
	s.Time = now
	s.Host = host
	s.Dir = DirRx
	if dir == "tx" {
		s.Dir = DirTx
	}
	s.Hdr = hdr
	s.Len = len(payload)
	n := min(len(payload), r.snap)
	s.Payload = append(s.Payload[:0], payload[:n]...)
}

// Total returns the number of records ever written (may exceed capacity).
func (r *Recorder) Total() uint64 { return r.total }

// Len returns the number of records currently held.
func (r *Recorder) Len() int {
	if r.total < uint64(len(r.slots)) {
		return int(r.total)
	}
	return len(r.slots)
}

// Records returns the held records oldest-first. The returned slice is
// freshly built but the Payload fields alias slot storage: the view is
// valid until the next Record call.
func (r *Recorder) Records() []Record {
	n := r.Len()
	out := make([]Record, 0, n)
	start := r.total - uint64(n)
	for i := range uint64(n) {
		out = append(out, r.slots[(start+i)%uint64(len(r.slots))])
	}
	return out
}
