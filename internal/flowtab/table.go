// Package flowtab provides the pointer-free connection-state containers the
// bridges and the TCP demultiplexer keep on the per-segment critical path:
// an open-addressing hash table over packed uint64 flow keys (Table), a slab
// arena handing out dense slot indices instead of heap pointers (Slab), and
// a fixed-size port bitset (PortSet).
//
// The containers exist for one reason: at a million concurrent connections,
// Go's built-in map[key]*record keeps millions of individually GC-scanned
// heap objects alive — one record (plus its sub-objects) per connection,
// chased through randomly placed hash buckets on every segment. A Table
// over a Slab replaces all of that with a handful of large, flat backing
// arrays: the garbage collector sees O(1) objects regardless of the
// connection count, lookups probe a contiguous cache-dense array, and
// record-to-record links (LRU lists, hash chains) are 32-bit slot indices
// instead of pointers. DESIGN.md §14 quantifies the effect; experiment E13
// (failover-bench -experiment memscale) regenerates the numbers.
package flowtab

import "math/bits"

// Table is an open-addressing hash table from uint64 keys to uint32 values,
// intended to map packed flow keys (core.TupleKey, tcp.Tuple.key()) to slot
// indices in a Slab. It uses robin-hood probing with backward-shift
// deletion, so there are no tombstones and lookups terminate as soon as the
// probe distance exceeds the resident entry's — bounded, cache-local scans
// even at high load factors. The zero value is an empty table ready for use.
//
// The backing arrays contain no pointers: to the garbage collector a Table
// of a million flows is three allocations, not a million.
type Table struct {
	keys []uint64
	vals []uint32
	// dist holds, per slot, the probe distance of the resident entry plus
	// one; 0 marks an empty slot. An entry's distance is how far it sits
	// from its home slot, which robin-hood keeps within O(log n) with high
	// probability; growth is forced long before the uint8 saturates.
	dist []uint8
	n    int
	mask uint64
}

// tableMaxLoad is the numerator of the grow threshold in eighths: the table
// rehashes when n exceeds 7/8 of capacity. Robin-hood probing keeps probe
// sequences short at loads where plain linear probing degrades, which is
// what lets the table stay dense — half the memory of doubling at 50%.
const tableMaxLoad = 7

// hash finalizes a packed flow key. The keys are structured (address and
// port bits in fixed positions), so they must be mixed before masking;
// this is the 64-bit finalizer from MurmurHash3, bijective and cheap.
func hash(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Len returns the number of resident entries.
func (t *Table) Len() int { return t.n }

// Cap returns the current slot count (0 before the first Put).
func (t *Table) Cap() int { return len(t.keys) }

// Get returns the value stored for key.
func (t *Table) Get(key uint64) (uint32, bool) {
	if t.n == 0 {
		return 0, false
	}
	i := hash(key) & t.mask
	for d := uint8(1); ; d++ {
		switch {
		case t.dist[i] == 0 || t.dist[i] < d:
			// An empty slot, or a resident entry closer to home than the
			// probe: robin-hood invariant says key cannot be further on.
			return 0, false
		case t.keys[i] == key:
			return t.vals[i], true
		}
		i = (i + 1) & t.mask
	}
}

// Put stores val for key, replacing any existing value.
func (t *Table) Put(key uint64, val uint32) {
	if 8*(t.n+1) > tableMaxLoad*len(t.keys) {
		t.grow()
	}
	t.insert(key, val)
}

// insert places an entry into a table that is guaranteed to have room.
func (t *Table) insert(key uint64, val uint32) {
	i := hash(key) & t.mask
	d := uint8(1)
	for {
		switch {
		case t.dist[i] == 0:
			t.keys[i], t.vals[i], t.dist[i] = key, val, d
			t.n++
			return
		case t.keys[i] == key && t.dist[i] == d:
			t.vals[i] = val // update in place
			return
		case t.dist[i] < d:
			// Rob the rich: the resident is closer to home than we are, so
			// it can afford to move one further along.
			t.keys[i], key = key, t.keys[i]
			t.vals[i], val = val, t.vals[i]
			t.dist[i], d = d, t.dist[i]
		}
		i = (i + 1) & t.mask
		d++
		if d == 0 { // uint8 wrapped: pathological clustering, rehash larger
			t.grow()
			t.insert(key, val)
			return
		}
	}
}

// Delete removes key, returning the value it held. Backward-shift deletion
// restores the robin-hood invariant immediately: subsequent entries whose
// probe distance is above one slide back, so no tombstone is ever left to
// slow later lookups.
func (t *Table) Delete(key uint64) (uint32, bool) {
	if t.n == 0 {
		return 0, false
	}
	i := hash(key) & t.mask
	for d := uint8(1); ; d++ {
		switch {
		case t.dist[i] == 0 || t.dist[i] < d:
			return 0, false
		case t.keys[i] == key:
			val := t.vals[i]
			for {
				next := (i + 1) & t.mask
				if t.dist[next] <= 1 {
					t.dist[i] = 0
					break
				}
				t.keys[i], t.vals[i], t.dist[i] = t.keys[next], t.vals[next], t.dist[next]-1
				i = next
			}
			t.n--
			return val, true
		}
		i = (i + 1) & t.mask
	}
}

// AppendKeys appends every resident key to dst and returns it. The order is
// the table's internal slot order — callers that need determinism (the
// failover reconfiguration walks) sort the result.
func (t *Table) AppendKeys(dst []uint64) []uint64 {
	for i, d := range t.dist {
		if d != 0 {
			dst = append(dst, t.keys[i])
		}
	}
	return dst
}

// grow rehashes into a table of at least double the capacity (minimum 8).
func (t *Table) grow() {
	newCap := 8
	if len(t.keys) > 0 {
		newCap = 2 * len(t.keys)
	}
	t.rehash(newCap)
}

// rehash rebuilds the arrays at capacity c (a power of two).
func (t *Table) rehash(c int) {
	if c&(c-1) != 0 {
		c = 1 << bits.Len(uint(c))
	}
	oldKeys, oldVals, oldDist := t.keys, t.vals, t.dist
	t.keys = make([]uint64, c)
	t.vals = make([]uint32, c)
	t.dist = make([]uint8, c)
	t.mask = uint64(c - 1)
	t.n = 0
	for i, d := range oldDist {
		if d != 0 {
			t.insert(oldKeys[i], oldVals[i])
		}
	}
}
