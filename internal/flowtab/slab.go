package flowtab

// Slab is an index-addressed arena of records. Alloc hands out dense uint32
// slot indices into one flat backing array; Free returns a slot to an
// intrusive index-linked free list for reuse. Records are stored by value:
// a Slab of a million pconn-sized records is a single allocation the
// garbage collector scans linearly (and, when T is pointer-free, not at
// all), instead of a million individually tracked objects.
//
// Pointers returned by At are valid only until the next Alloc — growth may
// move the backing array. Code that defers work against a slot (the
// bridge's GC-linger timer) must capture the slot index plus Gen and
// revalidate with Live when the timer fires: indices are reused, and the
// generation counter is what distinguishes the slot's next tenant from the
// record the timer was armed against (the classic ABA guard).
//
// The zero value is an empty slab ready for use.
type Slab[T any] struct {
	items []T
	meta  []slabMeta
	free  int32 // head of the free list plus one; 0 when empty
	n     int
	zero  T // template for resetting recycled slots
}

// slabMeta is the per-slot bookkeeping kept out of the record array so a
// pointer-free T yields a pointer-free (never-scanned) items array. Free-
// list links are stored as index+1 so the zero value means "end of list".
type slabMeta struct {
	gen  uint32
	next int32 // free-list link plus one when free; slabLive when allocated
}

const slabLive int32 = -1

// NewSlab returns a slab with room for n records before the first growth.
func NewSlab[T any](n int) *Slab[T] {
	s := &Slab[T]{}
	if n > 0 {
		s.items = make([]T, 0, n)
		s.meta = make([]slabMeta, 0, n)
	}
	return s
}

// Len returns the number of live records.
func (s *Slab[T]) Len() int { return s.n }

// Cap returns the total number of slots ever created (live + free).
func (s *Slab[T]) Cap() int { return len(s.items) }

// Alloc returns the index of a zeroed slot, reusing freed slots before
// growing the arrays.
func (s *Slab[T]) Alloc() uint32 {
	s.n++
	if s.free > 0 {
		i := uint32(s.free - 1)
		s.free = s.meta[i].next
		s.meta[i].next = slabLive
		s.items[i] = s.zero
		return i
	}
	s.items = append(s.items, s.zero)
	s.meta = append(s.meta, slabMeta{next: slabLive})
	return uint32(len(s.items) - 1)
}

// At returns the record at slot i. The pointer is invalidated by the next
// Alloc; do not retain it across allocations.
func (s *Slab[T]) At(i uint32) *T { return &s.items[i] }

// Free returns slot i to the free list and bumps its generation so stale
// (index, gen) handles held by deferred work no longer validate. The
// record is reset immediately, releasing anything its fields reference.
func (s *Slab[T]) Free(i uint32) {
	if s.meta[i].next != slabLive {
		panic("flowtab: double free of slab slot")
	}
	s.items[i] = s.zero
	s.meta[i].gen++
	s.meta[i].next = s.free
	s.free = int32(i) + 1
	s.n--
}

// Gen returns slot i's current generation.
func (s *Slab[T]) Gen(i uint32) uint32 { return s.meta[i].gen }

// Live reports whether slot i is allocated and still on generation gen —
// i.e. whether a handle captured when Gen(i) returned gen still refers to
// the same tenancy.
func (s *Slab[T]) Live(i uint32, gen uint32) bool {
	return s.meta[i].next == slabLive && s.meta[i].gen == gen
}

// Range calls fn for every live slot in ascending index order.
func (s *Slab[T]) Range(fn func(i uint32, item *T)) {
	for i := range s.items {
		if s.meta[i].next == slabLive {
			fn(uint32(i), &s.items[i])
		}
	}
}
