package flowtab

import "testing"

type rec struct {
	id   int
	link int32
}

func TestSlabAllocFreeReuse(t *testing.T) {
	s := NewSlab[rec](2)
	a := s.Alloc()
	b := s.Alloc()
	if a == b {
		t.Fatalf("Alloc returned the same slot twice: %d", a)
	}
	s.At(a).id = 1
	s.At(b).id = 2
	if s.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", s.Len())
	}
	genA := s.Gen(a)
	s.Free(a)
	if s.Len() != 1 {
		t.Fatalf("Len() = %d after Free, want 1", s.Len())
	}
	if s.Live(a, genA) {
		t.Fatal("freed slot still validates against its old generation")
	}
	c := s.Alloc()
	if c != a {
		t.Fatalf("Alloc did not reuse the freed slot: got %d, want %d", c, a)
	}
	if s.At(c).id != 0 {
		t.Fatalf("reused slot not zeroed: id = %d", s.At(c).id)
	}
	if s.Live(c, genA) {
		t.Fatal("new tenant validates against the previous tenant's handle")
	}
	if !s.Live(c, s.Gen(c)) {
		t.Fatal("current handle does not validate")
	}
	if s.Cap() != 2 {
		t.Fatalf("Cap() = %d, want 2 (reuse must not grow the arena)", s.Cap())
	}
}

func TestSlabChurnStaysBounded(t *testing.T) {
	var s Slab[rec]
	// Allocate and free in waves; the arena must not exceed the peak
	// concurrent live count.
	const waves, width = 100, 64
	for w := 0; w < waves; w++ {
		idx := make([]uint32, width)
		for i := range idx {
			idx[i] = s.Alloc()
			s.At(idx[i]).id = w*width + i
		}
		for _, i := range idx {
			s.Free(i)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len() = %d after balanced churn", s.Len())
	}
	if s.Cap() > width {
		t.Fatalf("Cap() = %d after churn with peak %d live", s.Cap(), width)
	}
}

func TestSlabRangeOrderAndLiveness(t *testing.T) {
	var s Slab[rec]
	var idx []uint32
	for i := 0; i < 10; i++ {
		j := s.Alloc()
		s.At(j).id = i
		idx = append(idx, j)
	}
	s.Free(idx[3])
	s.Free(idx[7])
	var seen []int
	s.Range(func(i uint32, r *rec) { seen = append(seen, r.id) })
	want := []int{0, 1, 2, 4, 5, 6, 8, 9}
	if len(seen) != len(want) {
		t.Fatalf("Range visited %d slots, want %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("Range order: got %v, want %v", seen, want)
		}
	}
}

func TestSlabDoubleFreePanics(t *testing.T) {
	var s Slab[rec]
	i := s.Alloc()
	s.Free(i)
	defer func() {
		if recover() == nil {
			t.Fatal("double Free did not panic")
		}
	}()
	s.Free(i)
}

func TestPortSet(t *testing.T) {
	var ps PortSet
	if ps.Contains(0) || ps.Contains(65535) || ps.Len() != 0 {
		t.Fatal("zero value not empty")
	}
	ports := []uint16{0, 1, 63, 64, 80, 443, 8080, 49152, 65535}
	for _, p := range ports {
		ps.Add(p)
		ps.Add(p) // idempotent
	}
	if ps.Len() != len(ports) {
		t.Fatalf("Len() = %d, want %d", ps.Len(), len(ports))
	}
	for _, p := range ports {
		if !ps.Contains(p) {
			t.Errorf("Contains(%d) = false after Add", p)
		}
	}
	if ps.Contains(81) || ps.Contains(2) {
		t.Error("Contains reports a port never added")
	}
	got := ps.Append(nil)
	for i, p := range ports {
		if got[i] != p {
			t.Fatalf("Append = %v, want ascending %v", got, ports)
		}
	}
	ps.Remove(80)
	ps.Remove(80) // idempotent
	if ps.Contains(80) || ps.Len() != len(ports)-1 {
		t.Fatalf("Remove(80) failed: len %d contains %v", ps.Len(), ps.Contains(80))
	}
}
