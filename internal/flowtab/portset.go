package flowtab

import "math/bits"

// PortSet is a fixed-size membership set over the full 16-bit port space:
// 65 536 bits in a flat [1024]uint64 array. The selector keeps two of these
// on the per-segment verdict path where it previously probed map[uint16]bool
// — a Contains is one shift, one mask, and one indexed load into an 8 KB
// array, with no hashing and nothing for the garbage collector to visit.
// The zero value is an empty set.
type PortSet struct {
	bits [1024]uint64
	n    int
}

// Add inserts port p.
func (s *PortSet) Add(p uint16) {
	w, b := p>>6, uint64(1)<<(p&63)
	if s.bits[w]&b == 0 {
		s.bits[w] |= b
		s.n++
	}
}

// Remove deletes port p.
func (s *PortSet) Remove(p uint16) {
	w, b := p>>6, uint64(1)<<(p&63)
	if s.bits[w]&b != 0 {
		s.bits[w] &^= b
		s.n--
	}
}

// Contains reports whether port p is in the set.
func (s *PortSet) Contains(p uint16) bool {
	return s.bits[p>>6]&(uint64(1)<<(p&63)) != 0
}

// Len returns the number of ports in the set.
func (s *PortSet) Len() int { return s.n }

// Append appends the member ports to dst in ascending order and returns it.
func (s *PortSet) Append(dst []uint16) []uint16 {
	for w, word := range s.bits {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			dst = append(dst, uint16(w<<6+b))
			word &= word - 1
		}
	}
	return dst
}
