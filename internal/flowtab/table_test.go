package flowtab

import (
	"math/rand"
	"slices"
	"testing"
)

// TestFlowtabDifferential is the table's correctness gate, in the same
// differential style as the repo's wheel-vs-heap and shard-vs-sequential
// tests: a seeded workload of interleaved inserts, updates, deletes,
// lookups, and key walks runs against both the open-addressing table and a
// builtin model map, and every observable must agree at every step. The
// trial count and key ranges are chosen so each trial crosses several
// growth/rehash boundaries and churns deleted slots hard enough that
// backward-shift deletion bugs (the open-addressing analogue of tombstone
// leaks) cannot hide.
func TestFlowtabDifferential(t *testing.T) {
	const trials = 1000
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(40_000 + trial)))
		var tab Table
		model := make(map[uint64]uint32)
		// A narrow key universe forces constant collisions and re-insertion
		// over freshly deleted slots; a handful of trials use a wide
		// universe to exercise growth deep past the initial capacity.
		universe := uint64(16 + rng.Intn(200))
		if trial%50 == 0 {
			universe = 100_000
		}
		steps := 200 + rng.Intn(400)
		for step := 0; step < steps; step++ {
			key := rng.Uint64() % universe
			switch op := rng.Intn(10); {
			case op < 5: // insert / update
				val := rng.Uint32()
				tab.Put(key, val)
				model[key] = val
			case op < 8: // delete
				gotVal, gotOK := tab.Delete(key)
				wantVal, wantOK := model[key]
				delete(model, key)
				if gotOK != wantOK || (gotOK && gotVal != wantVal) {
					t.Fatalf("trial %d step %d: Delete(%d) = (%d,%v), want (%d,%v)",
						trial, step, key, gotVal, gotOK, wantVal, wantOK)
				}
			default: // lookup
				gotVal, gotOK := tab.Get(key)
				wantVal, wantOK := model[key]
				if gotOK != wantOK || (gotOK && gotVal != wantVal) {
					t.Fatalf("trial %d step %d: Get(%d) = (%d,%v), want (%d,%v)",
						trial, step, key, gotVal, gotOK, wantVal, wantOK)
				}
			}
			if tab.Len() != len(model) {
				t.Fatalf("trial %d step %d: Len() = %d, want %d", trial, step, tab.Len(), len(model))
			}
		}
		// Full-state audit at the end of the trial: every model entry
		// retrievable, and the key walk is exactly the model's key set.
		for k, want := range model {
			if got, ok := tab.Get(k); !ok || got != want {
				t.Fatalf("trial %d: final Get(%d) = (%d,%v), want (%d,true)", trial, k, got, ok, want)
			}
		}
		keys := tab.AppendKeys(nil)
		if len(keys) != len(model) {
			t.Fatalf("trial %d: AppendKeys returned %d keys, want %d", trial, len(keys), len(model))
		}
		slices.Sort(keys)
		want := make([]uint64, 0, len(model))
		for k := range model {
			want = append(want, k)
		}
		slices.Sort(want)
		if !slices.Equal(keys, want) {
			t.Fatalf("trial %d: key walk diverged from model", trial)
		}
	}
}

// TestTableZeroKey pins down that key 0 is an ordinary key: occupancy lives
// in the metadata array, not in a sentinel key value.
func TestTableZeroKey(t *testing.T) {
	var tab Table
	if _, ok := tab.Get(0); ok {
		t.Fatal("empty table claims to hold key 0")
	}
	tab.Put(0, 77)
	if v, ok := tab.Get(0); !ok || v != 77 {
		t.Fatalf("Get(0) = (%d,%v), want (77,true)", v, ok)
	}
	if v, ok := tab.Delete(0); !ok || v != 77 {
		t.Fatalf("Delete(0) = (%d,%v), want (77,true)", v, ok)
	}
	if tab.Len() != 0 {
		t.Fatalf("Len() = %d after deleting the only key", tab.Len())
	}
}

// TestTableGrowthBoundary walks the load factor straight through several
// rehashes and then removes everything, verifying contents at each size.
func TestTableGrowthBoundary(t *testing.T) {
	var tab Table
	const n = 10_000
	for i := uint64(0); i < n; i++ {
		tab.Put(i, uint32(i*2))
		if v, ok := tab.Get(i); !ok || v != uint32(i*2) {
			t.Fatalf("Get(%d) right after Put = (%d,%v)", i, v, ok)
		}
	}
	if tab.Len() != n {
		t.Fatalf("Len() = %d, want %d", tab.Len(), n)
	}
	if tab.Cap()&(tab.Cap()-1) != 0 {
		t.Fatalf("Cap() = %d, want a power of two", tab.Cap())
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := tab.Delete(i); !ok || v != uint32(i*2) {
			t.Fatalf("Delete(%d) = (%d,%v)", i, v, ok)
		}
		// The key after the deleted one must still be reachable across the
		// backward shift.
		if i+1 < n {
			if v, ok := tab.Get(i + 1); !ok || v != uint32((i+1)*2) {
				t.Fatalf("Get(%d) after deleting %d = (%d,%v)", i+1, i, v, ok)
			}
		}
	}
	if tab.Len() != 0 {
		t.Fatalf("Len() = %d after deleting all", tab.Len())
	}
}

// TestTableUpdateDoesNotGrowCount pins the update-in-place path.
func TestTableUpdateDoesNotGrowCount(t *testing.T) {
	var tab Table
	for i := 0; i < 100; i++ {
		tab.Put(42, uint32(i))
	}
	if tab.Len() != 1 {
		t.Fatalf("Len() = %d after 100 updates of one key", tab.Len())
	}
	if v, _ := tab.Get(42); v != 99 {
		t.Fatalf("Get(42) = %d, want 99", v)
	}
}
