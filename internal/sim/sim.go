// Package sim provides a deterministic discrete-event simulation engine.
//
// Every component of the simulated network (NICs, protocol timers,
// applications) schedules work on a single Scheduler. Events execute in
// strict virtual-time order with stable FIFO tie-breaking, so a simulation
// with a fixed RNG seed is fully reproducible. Virtual time has nanosecond
// resolution, which lets the benchmark harness report microsecond-scale
// latencies the way the paper's testbed measurements do.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// ErrEventLimit is returned by Run when the configured safety limit on the
// number of executed events is exceeded, which almost always indicates a
// livelock in the simulated protocols (for example, two stacks
// retransmitting to each other forever).
var ErrEventLimit = errors.New("sim: event limit exceeded")

// DefaultEventLimit bounds a single Run call. Large enough for 100 MB
// stream-transfer experiments, small enough to fail fast on livelock.
const DefaultEventLimit = 200_000_000

// Event is a scheduled callback. It is created by Scheduler.At/After and can
// be cancelled with Stop.
type Event struct {
	when time.Duration
	seq  uint64
	name string
	fn   func()

	index   int // heap index, -1 when not queued
	stopped bool
}

// Stop cancels the event. It reports whether the event had been pending
// (true) or had already fired or been stopped (false).
func (e *Event) Stop() bool {
	if e == nil || e.stopped || e.index < 0 {
		return false
	}
	e.stopped = true
	return true
}

// Pending reports whether the event is still scheduled to run.
func (e *Event) Pending() bool { return e != nil && !e.stopped && e.index >= 0 }

// When returns the virtual time at which the event fires.
func (e *Event) When() time.Duration { return e.when }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		return
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Scheduler is a single-threaded discrete-event executor with a virtual
// clock. It is not safe for concurrent use; all simulated components run
// inside its event loop.
type Scheduler struct {
	now      time.Duration
	queue    eventHeap
	seq      uint64
	rng      *rand.Rand
	limit    int
	executed int
	halted   bool
}

// New returns a Scheduler whose RNG is seeded with seed, making the entire
// simulation reproducible.
func New(seed int64) *Scheduler {
	return &Scheduler{
		rng:   rand.New(rand.NewSource(seed)),
		limit: DefaultEventLimit,
	}
}

// Now returns the current virtual time (elapsed since simulation start).
func (s *Scheduler) Now() time.Duration { return s.now }

// Rand returns the scheduler's deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// SetEventLimit overrides the livelock safety limit for subsequent Run
// calls. A limit of 0 or below disables the check.
func (s *Scheduler) SetEventLimit(n int) { s.limit = n }

// Executed returns the total number of events executed so far.
func (s *Scheduler) Executed() int { return s.executed }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is clamped to the current time (the event runs after all events already
// queued for the current instant). The name is used in diagnostics only.
func (s *Scheduler) At(t time.Duration, name string, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	ev := &Event{when: t, seq: s.seq, name: name, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return ev
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, name string, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, name, fn)
}

// Halt stops the current Run/RunUntil call after the in-flight event
// completes. Pending events remain queued.
func (s *Scheduler) Halt() { s.halted = true }

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (s *Scheduler) Step() bool {
	for s.queue.Len() > 0 {
		ev, ok := heap.Pop(&s.queue).(*Event)
		if !ok {
			continue
		}
		if ev.stopped {
			continue
		}
		s.now = ev.when
		s.executed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty, Halt is called, or the
// event limit is exceeded.
func (s *Scheduler) Run() error {
	s.halted = false
	start := s.executed
	for !s.halted {
		if !s.Step() {
			return nil
		}
		if s.limit > 0 && s.executed-start > s.limit {
			return fmt.Errorf("%w (%d events, now=%v)", ErrEventLimit, s.executed-start, s.now)
		}
	}
	return nil
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. It stops early if Halt is called.
func (s *Scheduler) RunUntil(t time.Duration) error {
	s.halted = false
	start := s.executed
	for !s.halted {
		if s.queue.Len() == 0 || s.queue[0].when > t {
			if s.now < t {
				s.now = t
			}
			return nil
		}
		s.Step()
		if s.limit > 0 && s.executed-start > s.limit {
			return fmt.Errorf("%w (%d events, now=%v)", ErrEventLimit, s.executed-start, s.now)
		}
	}
	return nil
}

// RunFor executes events for a span d of virtual time from the current
// instant.
func (s *Scheduler) RunFor(d time.Duration) error { return s.RunUntil(s.now + d) }

// PendingEvents returns the number of queued (not yet stopped) events.
func (s *Scheduler) PendingEvents() int {
	n := 0
	for _, ev := range s.queue {
		if !ev.stopped {
			n++
		}
	}
	return n
}
