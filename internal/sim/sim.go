// Package sim provides a deterministic discrete-event simulation engine.
//
// Every component of the simulated network (NICs, protocol timers,
// applications) schedules work on a single Scheduler. Events execute in
// strict virtual-time order with stable FIFO tie-breaking, so a simulation
// with a fixed RNG seed is fully reproducible. Virtual time has nanosecond
// resolution, which lets the benchmark harness report microsecond-scale
// latencies the way the paper's testbed measurements do.
//
// The scheduler is built for the hot path: the priority queue is a
// hand-rolled indexed binary min-heap over []*event (no interface boxing,
// sift-up/down specialized to the (when, seq) key), and fired or canceled
// events are recycled through a free list instead of being garbage
// collected. TCP timer churn — a retransmission timer re-armed per segment —
// therefore allocates nothing in steady state. Callers hold Timer handles,
// not events; a generation counter in each pooled event makes Stop on a
// stale handle (whose event has been recycled for an unrelated purpose) a
// safe no-op.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// ErrEventLimit is returned by Run when the configured safety limit on the
// number of executed events is exceeded, which almost always indicates a
// livelock in the simulated protocols (for example, two stacks
// retransmitting to each other forever).
var ErrEventLimit = errors.New("sim: event limit exceeded")

// DefaultEventLimit bounds a single Run call. Large enough for 100 MB
// stream-transfer experiments, small enough to fail fast on livelock.
const DefaultEventLimit = 200_000_000

// event is a pooled scheduled callback. Exactly one of fn and fnArg is set.
type event struct {
	when  time.Duration
	seq   uint64
	name  string
	fn    func()
	fnArg func(any)
	arg   any

	sched   *Scheduler
	index   int    // heap index, -1 when not queued
	gen     uint64 // bumped on recycle; validates Timer handles
	stopped bool
}

// Timer is a handle to a scheduled callback, returned by At/After. The zero
// Timer is valid and behaves as an already-fired timer. Because events are
// pooled, the handle carries the event's generation: Stop and Pending on a
// handle whose event has fired and been recycled are safe no-ops even if the
// event object now backs an unrelated timer.
type Timer struct {
	ev  *event
	gen uint64
}

// Stop cancels the timer. It reports whether the timer had been pending
// (true) or had already fired, been stopped, or been recycled (false).
// The event is unlinked from the heap and recycled immediately, so a timer
// armed and canceled repeatedly — TCP's retransmission timer, re-armed per
// segment — cycles one pooled event instead of stacking dead entries in
// the queue until their deadlines.
func (t Timer) Stop() bool {
	e := t.ev
	if e == nil || e.gen != t.gen || e.stopped || e.index < 0 {
		return false
	}
	s := e.sched
	s.pending--
	s.removeAt(e.index)
	s.release(e)
	return true
}

// Pending reports whether the timer is still scheduled to run.
func (t Timer) Pending() bool {
	e := t.ev
	return e != nil && e.gen == t.gen && !e.stopped && e.index >= 0
}

// When returns the virtual time at which the timer fires, or 0 if it is no
// longer scheduled.
func (t Timer) When() time.Duration {
	if !t.Pending() {
		return 0
	}
	return t.ev.when
}

// Scheduler is a single-threaded discrete-event executor with a virtual
// clock. It is not safe for concurrent use; all simulated components run
// inside its event loop. Independent Schedulers are safe to run on separate
// goroutines (the parallel benchmark harness does).
type Scheduler struct {
	now      time.Duration
	queue    []*event // indexed binary min-heap on (when, seq)
	free     []*event // recycled events
	pending  int      // queued events not yet stopped
	seq      uint64
	rng      *rand.Rand
	limit    int
	executed int
	halted   bool
}

// New returns a Scheduler whose RNG is seeded with seed, making the entire
// simulation reproducible.
func New(seed int64) *Scheduler {
	return &Scheduler{
		rng:   rand.New(rand.NewSource(seed)),
		limit: DefaultEventLimit,
	}
}

// Now returns the current virtual time (elapsed since simulation start).
func (s *Scheduler) Now() time.Duration { return s.now }

// Rand returns the scheduler's deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// SetEventLimit overrides the livelock safety limit for subsequent Run
// calls. A limit of 0 or below disables the check.
func (s *Scheduler) SetEventLimit(n int) { s.limit = n }

// Executed returns the total number of events executed so far.
func (s *Scheduler) Executed() int { return s.executed }

// acquire takes an event from the free list or allocates one.
func (s *Scheduler) acquire() *event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return ev
	}
	return &event{sched: s, index: -1}
}

// release recycles an event. Bumping the generation invalidates every Timer
// handle that still points at it, so a later Stop through a stale handle
// cannot corrupt the event's next incarnation.
func (s *Scheduler) release(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.fnArg = nil
	ev.arg = nil
	ev.name = ""
	ev.stopped = false
	ev.index = -1
	s.free = append(s.free, ev)
}

// schedule inserts a prepared event and returns its handle.
func (s *Scheduler) schedule(ev *event) Timer {
	ev.seq = s.seq
	s.seq++
	s.pending++
	s.push(ev)
	return Timer{ev: ev, gen: ev.gen}
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is clamped to the current time (the event runs after all events already
// queued for the current instant). The name is used in diagnostics only.
func (s *Scheduler) At(t time.Duration, name string, fn func()) Timer {
	if t < s.now {
		t = s.now
	}
	ev := s.acquire()
	ev.when = t
	ev.name = name
	ev.fn = fn
	return s.schedule(ev)
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, name string, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, name, fn)
}

// AtArg schedules fn(arg) at absolute virtual time t. Passing a top-level
// function plus its argument instead of a closure lets hot paths (packet
// hops, TCP timers) schedule without allocating a closure per event.
func (s *Scheduler) AtArg(t time.Duration, name string, fn func(any), arg any) Timer {
	if t < s.now {
		t = s.now
	}
	ev := s.acquire()
	ev.when = t
	ev.name = name
	ev.fnArg = fn
	ev.arg = arg
	return s.schedule(ev)
}

// AfterArg schedules fn(arg) to run d after the current virtual time.
func (s *Scheduler) AfterArg(d time.Duration, name string, fn func(any), arg any) Timer {
	if d < 0 {
		d = 0
	}
	return s.AtArg(s.now+d, name, fn, arg)
}

// Halt stops the current Run/RunUntil call after the in-flight event
// completes. Pending events remain queued.
func (s *Scheduler) Halt() { s.halted = true }

// --- heap ---------------------------------------------------------------

// less orders events by (when, seq): virtual time with FIFO tie-break.
func less(a, b *event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (s *Scheduler) push(ev *event) {
	q := append(s.queue, ev)
	i := len(q) - 1
	ev.index = i
	// Sift up.
	for i > 0 {
		parent := (i - 1) / 2
		if !less(ev, q[parent]) {
			break
		}
		q[i] = q[parent]
		q[i].index = i
		i = parent
	}
	q[i] = ev
	ev.index = i
	s.queue = q
}

// popMin removes and returns the earliest event.
func (s *Scheduler) popMin() *event {
	top := s.queue[0]
	s.removeAt(0)
	return top
}

// removeAt unlinks the event at heap index i, moving the last element into
// its place and restoring the heap invariant. Removal order does not affect
// execution order — (when, seq) keys are unique, so the pop sequence is a
// total order regardless of the heap's internal arrangement.
func (s *Scheduler) removeAt(i int) {
	q := s.queue
	n := len(q) - 1
	q[i].index = -1
	last := q[n]
	q[n] = nil
	s.queue = q[:n]
	if i == n {
		return
	}
	q = s.queue
	// Re-seat last at i: sift down, and if it never moved, sift up (it may
	// be smaller than the removed event's ancestors).
	j := i
	for {
		l, r := 2*j+1, 2*j+2
		if l >= n {
			break
		}
		child := l
		if r < n && less(q[r], q[l]) {
			child = r
		}
		if !less(q[child], last) {
			break
		}
		q[j] = q[child]
		q[j].index = j
		j = child
	}
	if j == i {
		for j > 0 {
			parent := (j - 1) / 2
			if !less(last, q[parent]) {
				break
			}
			q[j] = q[parent]
			q[j].index = j
			j = parent
		}
	}
	q[j] = last
	last.index = j
}

// --- execution ----------------------------------------------------------

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed. Stopped events
// encountered on the way are recycled without firing.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		ev := s.popMin()
		if ev.stopped {
			s.release(ev)
			continue
		}
		s.now = ev.when
		s.executed++
		s.pending--
		// Copy the callback out and recycle before invoking: the callback
		// may schedule new work, which can immediately reuse this event
		// (under a fresh generation).
		fn, fnArg, arg := ev.fn, ev.fnArg, ev.arg
		s.release(ev)
		if fnArg != nil {
			fnArg(arg)
		} else {
			fn()
		}
		return true
	}
	return false
}

// Run executes events until the queue is empty, Halt is called, or the
// event limit is exceeded.
func (s *Scheduler) Run() error {
	s.halted = false
	start := s.executed
	for !s.halted {
		if !s.Step() {
			return nil
		}
		if s.limit > 0 && s.executed-start > s.limit {
			return fmt.Errorf("%w (%d events, now=%v)", ErrEventLimit, s.executed-start, s.now)
		}
	}
	return nil
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. It stops early if Halt is called.
func (s *Scheduler) RunUntil(t time.Duration) error {
	s.halted = false
	start := s.executed
	for !s.halted {
		if len(s.queue) == 0 || s.queue[0].when > t {
			if s.now < t {
				s.now = t
			}
			return nil
		}
		s.Step()
		if s.limit > 0 && s.executed-start > s.limit {
			return fmt.Errorf("%w (%d events, now=%v)", ErrEventLimit, s.executed-start, s.now)
		}
	}
	return nil
}

// RunFor executes events for a span d of virtual time from the current
// instant.
func (s *Scheduler) RunFor(d time.Duration) error { return s.RunUntil(s.now + d) }

// PendingEvents returns the number of queued (not yet stopped) events. The
// count is maintained incrementally; this is O(1).
func (s *Scheduler) PendingEvents() int { return s.pending }
