// Package sim provides a deterministic discrete-event simulation engine.
//
// Every component of the simulated network (NICs, protocol timers,
// applications) schedules work on a single Scheduler. Events execute in
// strict virtual-time order with stable FIFO tie-breaking, so a simulation
// with a fixed RNG seed is fully reproducible. Virtual time has nanosecond
// resolution, which lets the benchmark harness report microsecond-scale
// latencies the way the paper's testbed measurements do.
//
// The scheduler is built for the hot path: the priority queue is a
// hand-rolled indexed binary min-heap over []*event (no interface boxing,
// sift-up/down specialized to the (when, seq) key), and fired or canceled
// events are recycled through a free list instead of being garbage
// collected. TCP timer churn — a retransmission timer re-armed per segment —
// therefore allocates nothing in steady state. Callers hold Timer handles,
// not events; a generation counter in each pooled event makes Stop on a
// stale handle (whose event has been recycled for an unrelated purpose) a
// safe no-op.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"tcpfailover/internal/obs"
)

// ErrEventLimit is returned by Run when the configured safety limit on the
// number of executed events is exceeded, which almost always indicates a
// livelock in the simulated protocols (for example, two stacks
// retransmitting to each other forever).
var ErrEventLimit = errors.New("sim: event limit exceeded")

// DefaultEventLimit bounds a single Run call. Large enough for 100 MB
// stream-transfer experiments, small enough to fail fast on livelock.
const DefaultEventLimit = 200_000_000

// StreamID identifies an event stream: an independent (seq, rng) lane inside
// a Scheduler. A plain scheduler has exactly one stream (id 0) and behaves as
// it always has. The sharded engine gives every cell of a partitioned
// topology its own stream, so the total event order — the heap key is
// (when, stream, seq) — and every random draw are functions of the topology
// alone, not of how cells are grouped onto domain schedulers. That is the
// property that makes a sharded run byte-identical to the sequential one.
type StreamID uint32

// streamState is one stream's allocation lane: its FIFO tie-break counter,
// its deterministic random source, and its execution digest.
type streamState struct {
	id       StreamID
	seq      uint64
	rng      *rand.Rand
	executed int64
	digest   uint64
}

// Stream is a handle to a scheduler stream, returned by NewStream (and
// DefaultStream for stream 0).
type Stream struct {
	s  *Scheduler
	st *streamState
}

// ID returns the stream's global identifier.
func (st *Stream) ID() StreamID { return st.st.id }

// Executed returns the number of events executed under this stream.
func (st *Stream) Executed() int64 { return st.st.executed }

// Digest returns the stream's running execution digest (see EnableDigest).
func (st *Stream) Digest() uint64 { return st.st.digest }

// Use makes the stream current: events scheduled from outside the event loop
// (scenario construction, harness dial timers) are keyed and seeded under it.
// Inside the loop the current stream follows the executing event, so causal
// chains inherit their ancestor's stream automatically.
func (st *Stream) Use() { st.s.cur = st.st }

// event is a pooled scheduled callback. Exactly one of fn and fnArg is set.
// A pending event lives either in the heap (index >= 0) or staged in a
// timing-wheel slot (slot >= 0), never both.
type event struct {
	when  time.Duration
	seq   uint64
	sid   StreamID
	st    *streamState // stream the callback executes under
	name  string
	fn    func()
	fnArg func(any)
	arg   any

	sched   *Scheduler
	index   int    // heap index, -1 when not in the heap
	slot    int32  // wheel slot, -1 when not staged in the wheel
	gen     uint64 // bumped on recycle; validates Timer handles
	stopped bool
	// Intrusive links of the wheel slot's doubly-linked list. Linking
	// through the pooled events keeps staging allocation-free: a slot's
	// first use (each wheelTick of virtual time starts one) costs nothing.
	slotNext *event
	slotPrev *event
}

// Timer is a handle to a scheduled callback, returned by At/After. The zero
// Timer is valid and behaves as an already-fired timer. Because events are
// pooled, the handle carries the event's generation: Stop and Pending on a
// handle whose event has fired and been recycled are safe no-ops even if the
// event object now backs an unrelated timer.
type Timer struct {
	ev  *event
	gen uint64
}

// Stop cancels the timer. It reports whether the timer had been pending
// (true) or had already fired, been stopped, or been recycled (false).
// The event is unlinked from the heap and recycled immediately, so a timer
// armed and canceled repeatedly — TCP's retransmission timer, re-armed per
// segment — cycles one pooled event instead of stacking dead entries in
// the queue until their deadlines.
func (t Timer) Stop() bool {
	e := t.ev
	if e == nil || e.gen != t.gen || e.stopped {
		return false
	}
	s := e.sched
	if e.slot >= 0 {
		// Staged in the timing wheel: O(1) swap-remove from its slot.
		s.pending--
		s.wheel.remove(e)
		s.release(e)
		return true
	}
	if e.index < 0 {
		return false
	}
	s.pending--
	s.removeAt(e.index)
	s.release(e)
	return true
}

// Pending reports whether the timer is still scheduled to run.
func (t Timer) Pending() bool {
	e := t.ev
	return e != nil && e.gen == t.gen && !e.stopped && (e.index >= 0 || e.slot >= 0)
}

// When returns the virtual time at which the timer fires, or 0 if it is no
// longer scheduled.
func (t Timer) When() time.Duration {
	if !t.Pending() {
		return 0
	}
	return t.ev.when
}

// Scheduler is a single-threaded discrete-event executor with a virtual
// clock. It is not safe for concurrent use; all simulated components run
// inside its event loop. Independent Schedulers are safe to run on separate
// goroutines (the parallel benchmark harness does).
type Scheduler struct {
	now      time.Duration
	queue    []heapNode  // indexed binary min-heap on (when, stream, seq)
	wheel    *timerWheel // short-horizon staging wheel; nil for BackendHeap
	free     []*event    // recycled events
	pending  int         // queued events not yet stopped
	cur      *streamState
	streams  []*streamState // registration order; streams[0] is stream 0
	digestOn bool
	limit    int
	executed int
	halted   bool

	// Observability handles (discard slots until AttachObs): which arm each
	// schedule() takes. The wheel-vs-heap split is the figure of merit for
	// the staging heuristic, so it is exported rather than inferred.
	wheelArms obs.Counter
	heapArms  obs.Counter
}

// New returns a Scheduler whose RNG is seeded with seed, making the entire
// simulation reproducible. The scheduler uses the process-default timer
// backend (the hierarchical timing wheel unless SetDefaultBackend says
// otherwise); execution order is identical for either backend.
func New(seed int64) *Scheduler {
	return NewBackend(seed, DefaultBackend())
}

// NewBackend returns a Scheduler with an explicit timer backend. BackendWheel
// stages short-horizon timers in a hashed wheel for O(1) arm/cancel;
// BackendHeap keeps every pending event in the binary heap. The two execute
// the same event sequence byte-for-byte (the wheel only stages events — they
// always pass through the (when, seq) heap before firing), so BackendHeap
// exists as the differential-testing baseline.
func NewBackend(seed int64, b Backend) *Scheduler {
	st := &streamState{id: 0, rng: rand.New(rand.NewSource(seed))}
	s := &Scheduler{
		cur:       st,
		streams:   []*streamState{st},
		limit:     DefaultEventLimit,
		wheelArms: (*obs.Registry)(nil).Counter("sim_timer_wheel_arms_total"),
		heapArms:  (*obs.Registry)(nil).Counter("sim_timer_heap_arms_total"),
	}
	if b == BackendWheel {
		s.wheel = newTimerWheel()
	}
	return s
}

// AttachObs resolves the scheduler's metric handles against reg. Call once
// at scenario build time, before the simulation runs.
func (s *Scheduler) AttachObs(reg *obs.Registry) {
	s.wheelArms = reg.Counter("sim_timer_wheel_arms_total")
	s.heapArms = reg.Counter("sim_timer_heap_arms_total")
}

// Now returns the current virtual time (elapsed since simulation start).
func (s *Scheduler) Now() time.Duration { return s.now }

// Rand returns the current stream's deterministic random source. On a plain
// scheduler this is the single seed-derived RNG it has always been; on a
// sharded domain each cell draws from its own stream's RNG, so the draw
// sequence a cell sees is independent of which other cells share its domain.
func (s *Scheduler) Rand() *rand.Rand { return s.cur.rng }

// NewStream registers an event stream with the given global id and RNG seed.
// Stream ids must be unique within a Scheduler — the sharded builder keeps
// them unique across the whole topology so event keys are global. Panics on
// a duplicate id.
func (s *Scheduler) NewStream(id StreamID, seed int64) *Stream {
	for _, st := range s.streams {
		if st.id == id {
			panic(fmt.Sprintf("sim: duplicate stream id %d", id))
		}
	}
	st := &streamState{id: id, rng: rand.New(rand.NewSource(seed))}
	s.streams = append(s.streams, st)
	return &Stream{s: s, st: st}
}

// DefaultStream returns the handle for stream 0, which every plain
// New/NewBackend scheduler starts with (and starts on).
func (s *Scheduler) DefaultStream() *Stream { return &Stream{s: s, st: s.streams[0]} }

// EnableDigest turns on per-stream execution digesting: each executed event
// folds its (when, stream, seq, name) key into the owning stream's running
// FNV-1a hash. Two runs whose digests match executed the same events with
// the same keys in the same per-stream order — the differential tests use
// this to prove shard-count independence without recording full traces.
func (s *Scheduler) EnableDigest() { s.digestOn = true }

// StreamDigest summarizes one stream's execution history.
type StreamDigest struct {
	ID       StreamID
	Executed int64
	Digest   uint64
}

// StreamDigests returns every stream's digest, ordered by stream id.
func (s *Scheduler) StreamDigests() []StreamDigest {
	out := make([]StreamDigest, 0, len(s.streams))
	for _, st := range s.streams {
		out = append(out, StreamDigest{ID: st.id, Executed: st.executed, Digest: st.digest})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// foldDigest mixes one event key into a stream digest.
func foldDigest(h uint64, when time.Duration, sid StreamID, seq uint64, name string) uint64 {
	if h == 0 {
		h = fnvOffset
	}
	h = (h ^ uint64(when)) * fnvPrime
	h = (h ^ uint64(sid)) * fnvPrime
	h = (h ^ seq) * fnvPrime
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * fnvPrime
	}
	return h
}

// SetEventLimit overrides the livelock safety limit for subsequent Run
// calls. A limit of 0 or below disables the check.
func (s *Scheduler) SetEventLimit(n int) { s.limit = n }

// Executed returns the total number of events executed so far.
func (s *Scheduler) Executed() int { return s.executed }

// acquire takes an event from the free list or allocates one.
func (s *Scheduler) acquire() *event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return ev
	}
	return &event{sched: s, index: -1, slot: -1}
}

// release recycles an event. Bumping the generation invalidates every Timer
// handle that still points at it, so a later Stop through a stale handle
// cannot corrupt the event's next incarnation.
func (s *Scheduler) release(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.fnArg = nil
	ev.arg = nil
	ev.st = nil
	ev.name = ""
	ev.stopped = false
	ev.index = -1
	ev.slot = -1
	s.free = append(s.free, ev)
}

// schedule inserts a prepared event and returns its handle. Events whose
// deadline is comfortably ahead of the current tick and within the wheel's
// horizon are staged in a slot (O(1)); everything else goes straight into
// the heap. Near-term events — packet hops and CPU charges, microseconds
// out — are deliberately excluded: they execute almost immediately, so
// staging would only add a settle-time flush on top of the heap push they
// pay anyway. The wheel is for the timers that usually get canceled
// (delayed ack, retransmission), whose cancel then costs O(1) unlinking
// instead of an O(log n) heap repair.
func (s *Scheduler) schedule(ev *event) Timer {
	cur := s.cur
	ev.sid = cur.id
	ev.seq = cur.seq
	ev.st = cur
	cur.seq++
	s.pending++
	if w := s.wheel; w != nil {
		nowTick := int64(s.now / wheelTick)
		if w.count == 0 && w.baseTick < nowTick {
			// Nothing staged: slide the horizon window up to the present.
			// Without this the window goes stale whenever every staged
			// timer is canceled before expiring — the wheel's normal
			// workload — because baseTick otherwise advances only when a
			// slot is flushed.
			w.baseTick = nowTick
			w.scanFrom = nowTick
		}
		t := int64(ev.when / wheelTick)
		if t > nowTick+1 && t >= w.baseTick && t-w.baseTick < wheelSlots {
			s.wheelArms.Inc()
			w.insert(ev, t)
			return Timer{ev: ev, gen: ev.gen}
		}
	}
	s.heapArms.Inc()
	s.push(ev)
	return Timer{ev: ev, gen: ev.gen}
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is clamped to the current time (the event runs after all events already
// queued for the current instant). The name is used in diagnostics only.
func (s *Scheduler) At(t time.Duration, name string, fn func()) Timer {
	if t < s.now {
		t = s.now
	}
	ev := s.acquire()
	ev.when = t
	ev.name = name
	ev.fn = fn
	return s.schedule(ev)
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, name string, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, name, fn)
}

// AtArg schedules fn(arg) at absolute virtual time t. Passing a top-level
// function plus its argument instead of a closure lets hot paths (packet
// hops, TCP timers) schedule without allocating a closure per event.
func (s *Scheduler) AtArg(t time.Duration, name string, fn func(any), arg any) Timer {
	if t < s.now {
		t = s.now
	}
	ev := s.acquire()
	ev.when = t
	ev.name = name
	ev.fnArg = fn
	ev.arg = arg
	return s.schedule(ev)
}

// AfterArg schedules fn(arg) to run d after the current virtual time.
func (s *Scheduler) AfterArg(d time.Duration, name string, fn func(any), arg any) Timer {
	if d < 0 {
		d = 0
	}
	return s.AtArg(s.now+d, name, fn, arg)
}

// Inject schedules fn(arg) under an explicit (when, sid, seq) heap key,
// executing under exec's stream. This is the cross-domain delivery
// primitive: the shard mailboxes allocate (sid, seq) from their own wire
// stream on the sending side, so the key — and therefore the merged
// execution order in the destination domain — is identical no matter how
// the topology is partitioned. Panics if when precedes the destination
// clock: that is a lookahead violation, the event could already have been
// passed by.
func (s *Scheduler) Inject(when time.Duration, sid StreamID, seq uint64, exec *Stream, name string, fn func(any), arg any) {
	if when < s.now {
		panic(fmt.Sprintf("sim: Inject at %v before now %v (lookahead violation)", when, s.now))
	}
	if exec.s != s {
		panic("sim: Inject exec stream belongs to a different scheduler")
	}
	ev := s.acquire()
	ev.when = when
	ev.name = name
	ev.fnArg = fn
	ev.arg = arg
	ev.sid = sid
	ev.seq = seq
	ev.st = exec.st
	s.pending++
	s.push(ev)
}

// Halt stops the current Run/RunUntil call after the in-flight event
// completes. Pending events remain queued.
func (s *Scheduler) Halt() { s.halted = true }

// --- heap ---------------------------------------------------------------

// heapNode is one heap entry with the ordering key held inline. Sift
// comparisons at 10k connections walk a heap whose events are scattered,
// cold cache lines; keeping (when, seq) in the contiguous node array means
// a comparison never dereferences an event — only reseating one touches it
// (to maintain event.index for O(1) cancel).
type heapNode struct {
	when time.Duration
	seq  uint64
	sid  StreamID
	ev   *event
}

// less orders nodes by (when, stream, seq): virtual time, then stream id,
// then the stream's FIFO counter. Keys are unique, so the pop sequence is a
// total order. Because seq counters are per stream, an event's key depends
// only on its causal history within its own stream — never on what other
// streams (other cells, possibly in other domains) scheduled in between —
// which is what makes the merged order shard-count independent.
func (a heapNode) less(b heapNode) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	if a.sid != b.sid {
		return a.sid < b.sid
	}
	return a.seq < b.seq
}

func (s *Scheduler) push(ev *event) {
	nd := heapNode{when: ev.when, seq: ev.seq, sid: ev.sid, ev: ev}
	q := append(s.queue, nd)
	i := len(q) - 1
	// Sift up.
	for i > 0 {
		parent := (i - 1) / 2
		if !nd.less(q[parent]) {
			break
		}
		q[i] = q[parent]
		q[i].ev.index = i
		i = parent
	}
	q[i] = nd
	ev.index = i
	s.queue = q
}

// popMin removes and returns the earliest event.
func (s *Scheduler) popMin() *event {
	top := s.queue[0].ev
	s.removeAt(0)
	return top
}

// removeAt unlinks the event at heap index i, moving the last element into
// its place and restoring the heap invariant. Removal order does not affect
// execution order — (when, seq) keys are unique, so the pop sequence is a
// total order regardless of the heap's internal arrangement.
func (s *Scheduler) removeAt(i int) {
	q := s.queue
	n := len(q) - 1
	q[i].ev.index = -1
	last := q[n]
	q[n] = heapNode{}
	s.queue = q[:n]
	if i == n {
		return
	}
	q = s.queue
	// Re-seat last at i: sift down, and if it never moved, sift up (it may
	// be smaller than the removed event's ancestors).
	j := i
	for {
		l, r := 2*j+1, 2*j+2
		if l >= n {
			break
		}
		child := l
		if r < n && q[r].less(q[l]) {
			child = r
		}
		if !q[child].less(last) {
			break
		}
		q[j] = q[child]
		q[j].ev.index = j
		j = child
	}
	if j == i {
		for j > 0 {
			parent := (j - 1) / 2
			if !last.less(q[parent]) {
				break
			}
			q[j] = q[parent]
			q[j].ev.index = j
			j = parent
		}
	}
	q[j] = last
	last.ev.index = j
}

// --- execution ----------------------------------------------------------

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed. Stopped events
// encountered on the way are recycled without firing.
func (s *Scheduler) Step() bool {
	for {
		s.settle()
		if len(s.queue) == 0 {
			return false
		}
		ev := s.popMin()
		if ev.stopped {
			s.release(ev)
			continue
		}
		s.now = ev.when
		s.executed++
		s.pending--
		// The executing event's stream becomes current, so work it schedules
		// inherits its stream — causal chains stay in their cell's lane.
		st := ev.st
		s.cur = st
		st.executed++
		if s.digestOn {
			st.digest = foldDigest(st.digest, ev.when, ev.sid, ev.seq, ev.name)
		}
		// Copy the callback out and recycle before invoking: the callback
		// may schedule new work, which can immediately reuse this event
		// (under a fresh generation).
		fn, fnArg, arg := ev.fn, ev.fnArg, ev.arg
		s.release(ev)
		if fnArg != nil {
			fnArg(arg)
		} else {
			fn()
		}
		return true
	}
}

// Run executes events until the queue is empty, Halt is called, or the
// event limit is exceeded.
func (s *Scheduler) Run() error {
	s.halted = false
	start := s.executed
	for !s.halted {
		if !s.Step() {
			return nil
		}
		if s.limit > 0 && s.executed-start > s.limit {
			return fmt.Errorf("%w (%d events, now=%v)", ErrEventLimit, s.executed-start, s.now)
		}
	}
	return nil
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. It stops early if Halt is called.
func (s *Scheduler) RunUntil(t time.Duration) error {
	s.halted = false
	start := s.executed
	for !s.halted {
		// After settle the heap top is the globally earliest pending event:
		// every staged wheel event lies in a strictly later tick, hence
		// strictly after the heap top.
		s.settle()
		if len(s.queue) == 0 || s.queue[0].when > t {
			if s.now < t {
				s.now = t
			}
			return nil
		}
		s.Step()
		if s.limit > 0 && s.executed-start > s.limit {
			return fmt.Errorf("%w (%d events, now=%v)", ErrEventLimit, s.executed-start, s.now)
		}
	}
	return nil
}

// RunFor executes events for a span d of virtual time from the current
// instant.
func (s *Scheduler) RunFor(d time.Duration) error { return s.RunUntil(s.now + d) }

// PendingEvents returns the number of queued (not yet stopped) events. The
// count is maintained incrementally; this is O(1).
func (s *Scheduler) PendingEvents() int { return s.pending }
