package sim

import (
	"testing"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New(1)
	var got []int
	s.After(30*time.Millisecond, "c", func() { got = append(got, 3) })
	s.After(10*time.Millisecond, "a", func() { got = append(got, 1) })
	s.After(20*time.Millisecond, "b", func() { got = append(got, 2) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("Now() = %v, want 30ms", s.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := range 10 {
		i := i
		s.At(time.Millisecond, "e", func() { got = append(got, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range 10 {
		if got[i] != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestStopCancelsEvent(t *testing.T) {
	s := New(1)
	fired := false
	ev := s.After(time.Millisecond, "x", func() { fired = true })
	if !ev.Pending() {
		t.Error("event should be pending")
	}
	if !ev.Stop() {
		t.Error("Stop should report true for a pending event")
	}
	if ev.Stop() {
		t.Error("second Stop should report false")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("stopped event fired")
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	s := New(1)
	count := 0
	var recur func()
	recur = func() {
		count++
		if count < 5 {
			s.After(time.Millisecond, "r", recur)
		}
	}
	s.After(time.Millisecond, "r", recur)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if s.Now() != 5*time.Millisecond {
		t.Errorf("Now() = %v, want 5ms", s.Now())
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	s := New(1)
	var fired []time.Duration
	for _, d := range []time.Duration{1, 5, 9, 15, 20} {
		d := d * time.Millisecond
		s.At(d, "e", func() { fired = append(fired, d) })
	}
	if err := s.RunUntil(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 {
		t.Errorf("fired %v, want the three events <= 10ms", fired)
	}
	if s.Now() != 10*time.Millisecond {
		t.Errorf("Now() = %v, want exactly the deadline", s.Now())
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 5 {
		t.Errorf("remaining events did not run: %v", fired)
	}
}

func TestScheduleInPastClampsToNow(t *testing.T) {
	s := New(1)
	var at time.Duration
	s.After(10*time.Millisecond, "outer", func() {
		s.At(time.Millisecond, "past", func() { at = s.Now() })
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 10*time.Millisecond {
		t.Errorf("past-scheduled event ran at %v, want now (10ms)", at)
	}
}

func TestHaltStopsRun(t *testing.T) {
	s := New(1)
	count := 0
	for range 10 {
		s.After(time.Millisecond, "e", func() {
			count++
			if count == 3 {
				s.Halt()
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("count = %d, want 3 (halted)", count)
	}
	if s.PendingEvents() != 7 {
		t.Errorf("pending = %d, want 7", s.PendingEvents())
	}
}

func TestEventLimitDetectsLivelock(t *testing.T) {
	s := New(1)
	s.SetEventLimit(100)
	var spin func()
	spin = func() { s.After(time.Microsecond, "spin", spin) }
	spin()
	err := s.Run()
	if err == nil {
		t.Fatal("expected event-limit error")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int64 {
		s := New(42)
		var vals []int64
		for range 20 {
			s.After(time.Duration(s.Rand().Int63n(1000))*time.Microsecond, "e", func() {
				vals = append(vals, s.Rand().Int63())
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return vals
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	s := New(1)
	if s.Step() {
		t.Error("Step on empty queue should report false")
	}
	s.After(0, "e", func() {})
	if !s.Step() {
		t.Error("Step should execute the queued event")
	}
}
