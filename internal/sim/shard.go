package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Sharded parallel execution.
//
// A ShardGroup partitions one simulated topology across N domain Schedulers
// and advances them in conservative time-window lockstep (a classic
// Chandy–Misra–Bryant null-message-free variant): every window the group
// computes the earliest pending event time across all domains (ne), opens a
// half-open window [now, W) with W = min(ne + lookahead, target), runs every
// domain to W — in parallel on worker goroutines — and then exchanges
// cross-domain traffic at the barrier. Lookahead is the minimum cross-domain
// link latency: an event executing at time t can only cause a remote event
// at t + latency ≥ ne + lookahead ≥ W, so nothing a domain does inside a
// window can affect another domain within that same window, and domains can
// run the window concurrently without synchronizing.
//
// Determinism — the sharded run is byte-identical to the sequential one —
// rests on three rules:
//
//  1. Heap keys are (when, stream, seq) with per-stream seq counters
//     (sim.go). A cell's events are keyed only by the cell's own causal
//     history, never by interleaving with other cells.
//  2. Cross-domain deliveries carry explicit keys allocated on the sending
//     side from the mailbox's own wire stream (Mailbox.Post), and execute
//     under an rx stream registered in the destination domain. Both stream
//     ids are global, assigned in topology order, so the keys are identical
//     whether the two endpoints share a domain or not.
//  3. Deliveries are injected at window barriers, always at times the
//     half-open window has not yet executed past (when ≥ W), so the
//     destination heap totally orders them against local events exactly as
//     a single shared heap would have.
//
// Goroutine interleaving can therefore only change *wall-clock* order, never
// virtual-time order: each domain's heap pops a total order, and the merged
// order per stream is fixed by the keys.
type ShardGroup struct {
	domains []*Scheduler
	boxes   []*Mailbox
	workers int

	now       time.Duration
	windowEnd time.Duration // published before each window's workers start
	nextSID   StreamID      // wire/rx stream id allocator
	windows   int64
	poll      time.Duration
	errs      []error // per-domain, reused every window
}

// DefaultPollInterval is RunWhile's condition-check spacing.
const DefaultPollInterval = time.Millisecond

// mailboxStreamBase is the first stream id handed to mailboxes. Topology
// builders must keep cell stream ids below it.
const mailboxStreamBase StreamID = 1 << 20

const maxDuration = time.Duration(math.MaxInt64)

// NewShardGroup creates a lockstep group over the given domain schedulers.
// The default worker count is min(GOMAXPROCS, len(domains)).
func NewShardGroup(domains ...*Scheduler) *ShardGroup {
	if len(domains) == 0 {
		panic("sim: shard group needs at least one domain")
	}
	w := runtime.GOMAXPROCS(0)
	if w > len(domains) {
		w = len(domains)
	}
	return &ShardGroup{
		domains: domains,
		workers: w,
		nextSID: mailboxStreamBase,
		errs:    make([]error, len(domains)),
	}
}

// Domains returns the group's domain schedulers in partition order.
func (g *ShardGroup) Domains() []*Scheduler { return g.domains }

// Now returns the group's virtual time: the end of the last completed
// window. Individual domain clocks always equal it between windows.
func (g *ShardGroup) Now() time.Duration { return g.now }

// Windows returns how many lockstep windows have been executed.
func (g *ShardGroup) Windows() int64 { return g.windows }

// Executed returns the total events executed across all domains.
func (g *ShardGroup) Executed() int {
	n := 0
	for _, d := range g.domains {
		n += d.Executed()
	}
	return n
}

// CrossPosts returns the total number of deliveries buffered across domain
// boundaries (same-domain mailbox posts are injected directly and excluded).
func (g *ShardGroup) CrossPosts() int64 {
	var n int64
	for _, mb := range g.boxes {
		n += mb.crossPosts
	}
	return n
}

// SetWorkers caps the goroutines used per window. n <= 1 runs the domains
// serially on the calling goroutine (still byte-identical — parallelism is
// purely a wall-clock concern).
func (g *ShardGroup) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(g.domains) {
		n = len(g.domains)
	}
	g.workers = n
}

// Workers returns the per-window worker cap.
func (g *ShardGroup) Workers() int { return g.workers }

// Lookahead returns the group's conservative lookahead: the minimum latency
// over cross-domain mailboxes, or MaxInt64 if no link crosses a boundary
// (then every run is a single window — plain sequential execution).
func (g *ShardGroup) Lookahead() time.Duration {
	la := maxDuration
	for _, mb := range g.boxes {
		if mb.src != mb.dst && mb.minLat < la {
			la = mb.minLat
		}
	}
	return la
}

// StreamDigests merges every domain's per-stream digests, ordered by stream
// id. With EnableDigest on each domain this is the byte-identity witness the
// differential tests compare across shard counts. Domain default streams
// (id 0) are excluded: there is one per domain — a partition-dependent
// count — and simulation work never runs on them in a sharded build.
func (g *ShardGroup) StreamDigests() []StreamDigest {
	var out []StreamDigest
	for _, d := range g.domains {
		for _, sd := range d.StreamDigests() {
			if sd.ID != 0 {
				out = append(out, sd)
			}
		}
	}
	sortDigests(out)
	return out
}

func sortDigests(ds []StreamDigest) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j].ID < ds[j-1].ID; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

// --- mailbox -------------------------------------------------------------

// xpost is one buffered cross-domain delivery with its pre-allocated key.
type xpost struct {
	when time.Duration
	seq  uint64
	name string
	fn   func(any)
	arg  any
}

// Mailbox is a deterministic one-way delivery channel between two domains
// (possibly the same one). Posts carry keys from the mailbox's wire stream
// and execute under its rx stream in the destination domain, so delivery
// order — and everything the delivery causes — is independent of the
// partition. A Mailbox is owned by its source domain: Post may only be
// called from code running on src (or at build time, before windows start).
type Mailbox struct {
	g      *ShardGroup
	src    *Scheduler
	dst    *Scheduler
	minLat time.Duration
	sid    StreamID // wire stream: keys delivery events; counter lives here
	seq    uint64
	rx     *Stream // rx stream: delivery callbacks execute (and seed) here

	out        []xpost
	crossPosts int64
}

// NewMailbox registers a delivery channel from src to dst whose earliest
// possible delivery is minLatency after the send. minLatency bounds the
// group lookahead when the mailbox crosses domains, so it must be positive
// there; a same-domain mailbox (src == dst) delivers directly and tolerates
// zero. The seed feeds the rx stream's RNG. Mailboxes must be created in
// the same order for every partition of a topology — stream ids are
// allocated sequentially and must be partition-independent.
func (g *ShardGroup) NewMailbox(src, dst *Scheduler, minLatency time.Duration, seed int64) (*Mailbox, error) {
	if !g.owns(src) || !g.owns(dst) {
		return nil, fmt.Errorf("sim: mailbox endpoints must be domains of this group")
	}
	if src != dst && minLatency <= 0 {
		return nil, fmt.Errorf("sim: cross-domain mailbox needs positive minimum latency, got %v (zero-latency links only work sequentially)", minLatency)
	}
	wire := g.nextSID
	rxID := g.nextSID + 1
	g.nextSID += 2
	mb := &Mailbox{
		g:      g,
		src:    src,
		dst:    dst,
		minLat: minLatency,
		sid:    wire,
		rx:     dst.NewStream(rxID, seed),
	}
	g.boxes = append(g.boxes, mb)
	return mb, nil
}

func (g *ShardGroup) owns(s *Scheduler) bool {
	for _, d := range g.domains {
		if d == s {
			return true
		}
	}
	return false
}

// Cross reports whether the mailbox crosses a domain boundary.
func (mb *Mailbox) Cross() bool { return mb.src != mb.dst }

// MinLatency returns the mailbox's declared earliest-delivery bound.
func (mb *Mailbox) MinLatency() time.Duration { return mb.minLat }

// Post schedules fn(arg) at virtual time when in the destination domain.
// Same-domain posts inject immediately; cross-domain posts are buffered in
// the source domain and drained at the next window barrier. Either way the
// event's key is (when, wire stream, next wire seq) — identical across
// partitions because the counter advances per post, in the source cell's
// deterministic causal order.
func (mb *Mailbox) Post(when time.Duration, name string, fn func(any), arg any) {
	seq := mb.seq
	mb.seq++
	if mb.src == mb.dst {
		mb.dst.Inject(when, mb.sid, seq, mb.rx, name, fn, arg)
		return
	}
	if when < mb.g.windowEnd {
		panic(fmt.Sprintf("sim: cross-domain post at %v inside window ending %v — link delivers below the declared %v minimum latency", when, mb.g.windowEnd, mb.minLat))
	}
	mb.crossPosts++
	mb.out = append(mb.out, xpost{when: when, seq: seq, name: name, fn: fn, arg: arg})
}

// drain injects every buffered delivery into the destination heap. Runs at
// barriers only, after all domain workers have quiesced.
func (mb *Mailbox) drain() {
	for i := range mb.out {
		p := &mb.out[i]
		mb.dst.Inject(p.when, mb.sid, p.seq, mb.rx, p.name, p.fn, p.arg)
		p.name = ""
		p.fn = nil
		p.arg = nil
	}
	mb.out = mb.out[:0]
}

// --- window loop ---------------------------------------------------------

// nextEventBound returns a lower bound on the scheduler's earliest pending
// event: the heap top, or the timing wheel's earliest staged tick (whose
// slot start is ≤ every event staged in it).
func (s *Scheduler) nextEventBound() (time.Duration, bool) {
	has := false
	var b time.Duration
	if len(s.queue) > 0 {
		b = s.queue[0].when
		has = true
	}
	if s.wheel != nil && s.wheel.count > 0 {
		wb := time.Duration(s.wheel.nextTick()) * wheelTick
		if !has || wb < b {
			b = wb
		}
		has = true
	}
	return b, has
}

// runBefore executes every event with when strictly < t, then advances the
// clock to t. The half-open bound is what makes barrier injection safe:
// deliveries landing exactly on a window edge have not been passed by.
func (s *Scheduler) runBefore(t time.Duration) error {
	s.halted = false
	start := s.executed
	for !s.halted {
		s.settle()
		if len(s.queue) == 0 || s.queue[0].when >= t {
			if s.now < t {
				s.now = t
			}
			return nil
		}
		s.Step()
		if s.limit > 0 && s.executed-start > s.limit {
			return fmt.Errorf("%w (%d events, now=%v)", ErrEventLimit, s.executed-start, s.now)
		}
	}
	return nil
}

// nextWindow picks the end of the next lockstep window: min over domains of
// the next-event bound, plus lookahead, clamped to limit. With no pending
// events anywhere (or no cross-domain links) the window jumps straight to
// the limit.
func (g *ShardGroup) nextWindow(limit time.Duration) time.Duration {
	la := g.Lookahead()
	if la == maxDuration {
		return limit
	}
	ne := maxDuration
	for _, d := range g.domains {
		if b, ok := d.nextEventBound(); ok && b < ne {
			ne = b
		}
	}
	if ne == maxDuration {
		return limit
	}
	if ne < g.now {
		ne = g.now
	}
	if ne >= limit-la { // overflow-safe: ne + la would pass limit
		return limit
	}
	return ne + la
}

// runWindow advances every domain to w (half-open), then exchanges
// cross-domain deliveries at the barrier. Domains run on worker goroutines;
// the WaitGroup barrier gives the drain a happens-before edge over every
// buffered post, and the next window's goroutine launches hand the injected
// events back to their domains.
func (g *ShardGroup) runWindow(w time.Duration) error {
	g.windowEnd = w
	g.windows++
	if g.workers <= 1 || len(g.domains) == 1 {
		for i, d := range g.domains {
			g.errs[i] = d.runBefore(w)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(g.workers)
		for k := 0; k < g.workers; k++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(g.domains) {
						return
					}
					g.errs[i] = g.domains[i].runBefore(w)
				}
			}()
		}
		wg.Wait()
	}
	for _, mb := range g.boxes {
		mb.drain()
	}
	g.now = w
	for _, err := range g.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunUntil advances the whole group to t, executing every event with
// when < t (half-open, unlike Scheduler.RunUntil's closed bound — callers
// that need events exactly at t should run to t+1ns). All domain clocks
// equal t afterwards.
func (g *ShardGroup) RunUntil(t time.Duration) error {
	for g.now < t {
		if err := g.runWindow(g.nextWindow(t)); err != nil {
			return err
		}
	}
	return nil
}

// SetPollInterval adjusts RunWhile's condition-check spacing (default
// DefaultPollInterval). Must be positive.
func (g *ShardGroup) SetPollInterval(d time.Duration) {
	if d > 0 {
		g.poll = d
	}
}

// RunWhile advances the group while cond returns true, stopping at the
// until deadline. cond is evaluated at fixed virtual-time poll instants
// (multiples of the poll interval past the start), NOT at every window
// barrier: window placement depends on the partition, and a stop decided at
// a partition-dependent instant would execute a partition-dependent event
// set. Poll instants are pure virtual times, so the set of events executed
// before the stop — and therefore every digest and stat — is byte-identical
// for every shard count. cond runs at a barrier and may read any domain's
// state race-free.
func (g *ShardGroup) RunWhile(cond func() bool, until time.Duration) error {
	p := g.poll
	if p <= 0 {
		p = DefaultPollInterval
	}
	for g.now < until {
		if cond != nil && !cond() {
			return nil
		}
		target := g.now + p
		if target > until {
			target = until
		}
		if err := g.RunUntil(target); err != nil {
			return err
		}
	}
	return nil
}
