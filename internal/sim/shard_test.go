package sim

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestStreamKeyOrdering: same-instant events from different streams execute
// in stream-id order, and within a stream in FIFO order — regardless of
// scheduling order.
func TestStreamKeyOrdering(t *testing.T) {
	s := New(1)
	a := s.NewStream(5, 10)
	b := s.NewStream(3, 11)
	var got []string
	rec := func(name string) func() { return func() { got = append(got, name) } }
	a.Use()
	s.At(time.Millisecond, "a0", rec("a0"))
	s.At(time.Millisecond, "a1", rec("a1"))
	b.Use()
	s.At(time.Millisecond, "b0", rec("b0"))
	s.At(0, "b-early", rec("b-early"))
	if err := s.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	want := []string{"b-early", "b0", "a0", "a1"} // stream 3 before stream 5 at the tie
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("execution order %v, want %v", got, want)
	}
}

// TestStreamInheritance: work scheduled inside an event inherits the
// event's stream, keeping causal chains in their lane.
func TestStreamInheritance(t *testing.T) {
	s := New(1)
	a := s.NewStream(1, 1)
	b := s.NewStream(2, 2)
	a.Use()
	s.At(time.Millisecond, "a", func() {
		s.After(time.Millisecond, "a-child", func() {})
	})
	b.Use()
	s.At(time.Millisecond, "b", func() {})
	if err := s.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if a.Executed() != 2 {
		t.Errorf("stream a executed %d events, want 2 (child inherited)", a.Executed())
	}
	if b.Executed() != 1 {
		t.Errorf("stream b executed %d events, want 1", b.Executed())
	}
}

func TestDuplicateStreamPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate stream id did not panic")
		}
	}()
	s := New(1)
	s.NewStream(7, 1)
	s.NewStream(7, 2)
}

// TestMailboxPartitionIndependence is the engine-level differential test:
// the same two-cell ping-pong topology, once with both cells in one domain
// and once split across two, must produce identical per-stream digests.
func TestMailboxPartitionIndependence(t *testing.T) {
	const latency = 3 * time.Millisecond
	build := func(domains []*Scheduler, domOf [2]int) *ShardGroup {
		g := NewShardGroup(domains...)
		cellA := domains[domOf[0]].NewStream(1, 100)
		cellB := domains[domOf[1]].NewStream(2, 200)
		ab, err := g.NewMailbox(domains[domOf[0]], domains[domOf[1]], latency, 7)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := g.NewMailbox(domains[domOf[1]], domains[domOf[0]], latency, 8)
		if err != nil {
			t.Fatal(err)
		}
		// Ping-pong: each delivery draws randomness and bounces back, plus
		// local per-cell chatter that interleaves at the same instants.
		var bounceA, bounceB func(any)
		bounceA = func(n any) { // runs in A's domain under ba's rx stream
			if n.(int) <= 0 {
				return
			}
			d := time.Duration(domains[domOf[0]].Rand().Intn(1000)) * time.Microsecond
			now := domains[domOf[0]].Now()
			ab.Post(now+latency+d, "pong", bounceB, n.(int)-1)
		}
		bounceB = func(n any) {
			if n.(int) <= 0 {
				return
			}
			d := time.Duration(domains[domOf[1]].Rand().Intn(1000)) * time.Microsecond
			now := domains[domOf[1]].Now()
			ba.Post(now+latency+d, "ping", bounceA, n.(int)-1)
		}
		cellA.Use()
		ab.Post(latency, "pong", bounceB, 40)
		var chatterA func()
		chatterA = func() {
			if domains[domOf[0]].Now() < 100*time.Millisecond {
				domains[domOf[0]].After(time.Duration(domains[domOf[0]].Rand().Intn(500))*time.Microsecond, "chatterA", chatterA)
			}
		}
		domains[domOf[0]].After(0, "chatterA", chatterA)
		cellB.Use()
		var chatterB func()
		chatterB = func() {
			if domains[domOf[1]].Now() < 100*time.Millisecond {
				domains[domOf[1]].After(time.Duration(domains[domOf[1]].Rand().Intn(700))*time.Microsecond, "chatterB", chatterB)
			}
		}
		domains[domOf[1]].After(0, "chatterB", chatterB)
		return g
	}

	run := func(split bool) []StreamDigest {
		var domains []*Scheduler
		domOf := [2]int{0, 0}
		if split {
			domains = []*Scheduler{New(1), New(1)}
			domOf = [2]int{0, 1}
		} else {
			domains = []*Scheduler{New(1)}
		}
		for _, d := range domains {
			d.EnableDigest()
		}
		g := build(domains, domOf)
		if err := g.RunUntil(time.Second); err != nil {
			t.Fatal(err)
		}
		return g.StreamDigests()
	}

	seq := run(false)
	par := run(true)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("digests diverge:\n 1 domain: %+v\n 2 domains: %+v", seq, par)
	}
	var total int64
	for _, d := range seq {
		total += d.Executed
	}
	if total == 0 {
		t.Fatal("no events executed")
	}
}

// TestShardGroupRunUntilHalfOpen: events exactly at the target wait for a
// later call.
func TestShardGroupRunUntilHalfOpen(t *testing.T) {
	d := New(1)
	g := NewShardGroup(d)
	fired := false
	d.At(10*time.Millisecond, "edge", func() { fired = true })
	if err := g.RunUntil(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("event at the window edge fired inside the half-open window")
	}
	if g.Now() != 10*time.Millisecond {
		t.Fatalf("now %v, want 10ms", g.Now())
	}
	if err := g.RunUntil(10*time.Millisecond + time.Nanosecond); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event never fired")
	}
}

func TestMailboxZeroLatencyCrossDomainRejected(t *testing.T) {
	a, b := New(1), New(2)
	g := NewShardGroup(a, b)
	if _, err := g.NewMailbox(a, b, 0, 1); err == nil {
		t.Fatal("zero-latency cross-domain mailbox accepted")
	} else if !strings.Contains(err.Error(), "latency") {
		t.Errorf("unhelpful error: %v", err)
	}
	// Same-domain tolerates zero (sequential fallback).
	if _, err := g.NewMailbox(a, a, 0, 1); err != nil {
		t.Fatalf("same-domain zero-latency mailbox rejected: %v", err)
	}
}

// TestPostLookaheadViolationPanics: a cross-domain post earlier than the
// current window's end is a contract violation and must fail loudly.
func TestPostLookaheadViolationPanics(t *testing.T) {
	a, b := New(1), New(2)
	g := NewShardGroup(a, b)
	g.SetWorkers(1) // serial windows so the panic surfaces on this goroutine
	st := a.NewStream(1, 1)
	mb, err := g.NewMailbox(a, b, 10*time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	st.Use()
	a.At(time.Millisecond, "bad-post", func() {
		// Claims 10ms lookahead but posts 1ms out.
		mb.Post(a.Now()+time.Millisecond, "early", func(any) {}, nil)
	})
	defer func() {
		if recover() == nil {
			t.Fatal("undershooting the declared lookahead did not panic")
		}
	}()
	_ = g.RunUntil(time.Second)
}

// TestInjectExplicitKey: injected events order against local events by their
// explicit (when, stream, seq) key.
func TestInjectExplicitKey(t *testing.T) {
	s := New(1)
	local := s.NewStream(9, 1)
	rx := s.NewStream(4, 2)
	var got []string
	local.Use()
	s.At(time.Millisecond, "local", func() { got = append(got, "local") })
	// Stream 4 sorts before stream 9 at the same instant.
	s.Inject(time.Millisecond, 4, 0, rx, "injected", func(any) { got = append(got, "injected") }, nil)
	if err := s.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	want := []string{"injected", "local"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order %v, want %v", got, want)
	}
}
