package sim

import (
	"sync/atomic"
	"time"
)

// Timer backend selection.
//
// The hashed timing wheel stages short-horizon timers — TCP retransmission
// and delayed-ack timers, re-armed and canceled once per segment — in
// per-tick slots, making arm and cancel O(1) instead of O(log n) heap
// sifts. With 10k connections the heap otherwise holds ~10k pending timers
// and every segment pays two 14-level sifts.
//
// Determinism is preserved by construction: the wheel never *executes*
// events. When a slot's tick comes due its events are flushed into the
// (when, seq) binary heap, and the heap alone decides execution order.
// Since (when, seq) keys are unique, the pop sequence is a total order
// independent of how events arrived in the heap — so a wheel-backed and a
// heap-only scheduler run byte-identical simulations for the same seed
// (pinned by the differential tests and the workers-1-vs-N CI gate).

// Backend selects the Scheduler's timer data structure.
type Backend int

const (
	// BackendWheel stages short-horizon timers in a hashed wheel (default).
	BackendWheel Backend = iota
	// BackendHeap keeps every pending timer in the binary heap. Identical
	// observable behavior; exists as the differential-testing baseline.
	BackendHeap
)

const (
	wheelBits  = 10
	wheelSlots = 1 << wheelBits // 1024 slots
	wheelMask  = wheelSlots - 1
	// wheelTick × wheelSlots ≈ 1s of horizon: covers delayed-ack (200ms)
	// and first-RTO (200ms–1s) churn; backoff retransmits and TIME-WAIT
	// deadlines beyond it go to the heap, which is fine — they are rare.
	wheelTick = time.Millisecond
)

// defaultHeapOnly flips the process-default backend; atomic because the
// parallel bench harness constructs schedulers from multiple goroutines.
var defaultHeapOnly atomic.Bool

// DefaultBackend returns the backend New uses.
func DefaultBackend() Backend {
	if defaultHeapOnly.Load() {
		return BackendHeap
	}
	return BackendWheel
}

// SetDefaultBackend changes the backend used by subsequent New calls.
// Schedulers already constructed are unaffected. Intended for differential
// tests and A/B benchmarks; call it only while no scheduler is being
// constructed concurrently elsewhere.
func SetDefaultBackend(b Backend) { defaultHeapOnly.Store(b == BackendHeap) }

// timerWheel is a single-level hashed wheel over wheelSlots ticks. Events in
// slot t&wheelMask all share tick t: an event is staged only when its tick
// lies in [baseTick, baseTick+wheelSlots), and a slot is emptied (flushed to
// the heap) before baseTick passes it, so two ticks can never occupy one
// slot at the same time.
type timerWheel struct {
	// Each slot heads an intrusive doubly-linked list through the pooled
	// events. A slice per slot would re-grow from nil on every slot's first
	// use — and since each wheelTick of virtual time opens a fresh slot,
	// simulations shorter than a full rotation would allocate steadily.
	slots    [wheelSlots]*event
	baseTick int64 // lowest tick that may still be staged
	scanFrom int64 // lower bound on the earliest non-empty tick
	count    int   // staged events across all slots
}

func newTimerWheel() *timerWheel { return &timerWheel{} }

// insert stages ev (whose tick is t, already verified in-horizon) in O(1)
// by pushing it onto the slot's list head. Order within a slot is
// irrelevant — the heap re-establishes (when, seq) order at flush time.
func (w *timerWheel) insert(ev *event, t int64) {
	idx := t & wheelMask
	ev.slot = int32(idx)
	head := w.slots[idx]
	ev.slotNext = head
	ev.slotPrev = nil
	if head != nil {
		head.slotPrev = ev
	}
	w.slots[idx] = ev
	w.count++
	if t < w.scanFrom {
		w.scanFrom = t
	}
}

// remove unstages a canceled event in O(1) by unlinking it.
func (w *timerWheel) remove(ev *event) {
	if ev.slotPrev != nil {
		ev.slotPrev.slotNext = ev.slotNext
	} else {
		w.slots[ev.slot] = ev.slotNext
	}
	if ev.slotNext != nil {
		ev.slotNext.slotPrev = ev.slotPrev
	}
	ev.slotNext, ev.slotPrev = nil, nil
	ev.slot = -1
	w.count--
}

// nextTick returns the earliest tick with staged events. Must only be called
// with count > 0. The scan resumes from a memoized lower bound, so repeated
// calls between flushes are O(1) amortized.
func (w *timerWheel) nextTick() int64 {
	t := w.scanFrom
	if t < w.baseTick {
		t = w.baseTick
	}
	for end := w.baseTick + wheelSlots; t < end; t++ {
		if w.slots[t&wheelMask] != nil {
			w.scanFrom = t
			return t
		}
	}
	panic("sim: timer wheel count desynchronized")
}

// settle flushes every wheel slot that could precede (or tie with) the heap
// top, leaving the heap top as the globally earliest pending event. A slot
// is flushed when its tick is <= the heap top's tick: a same-tick slot may
// hold an event that sorts before the heap top within the tick.
func (s *Scheduler) settle() {
	w := s.wheel
	if w == nil {
		return
	}
	for w.count > 0 {
		wt := w.nextTick()
		if len(s.queue) > 0 && int64(s.queue[0].when/wheelTick) < wt {
			return
		}
		s.flushSlot(wt)
	}
}

// flushSlot migrates one slot's events into the heap and advances baseTick
// past it, after which that tick is "inside the horizon's past" and new
// same-tick arms go straight to the heap.
func (s *Scheduler) flushSlot(wt int64) {
	w := s.wheel
	idx := wt & wheelMask
	for ev := w.slots[idx]; ev != nil; {
		next := ev.slotNext
		ev.slotNext, ev.slotPrev = nil, nil
		ev.slot = -1
		s.push(ev)
		w.count--
		ev = next
	}
	w.slots[idx] = nil
	w.baseTick = wt + 1
	if w.scanFrom < w.baseTick {
		w.scanFrom = w.baseTick
	}
}
