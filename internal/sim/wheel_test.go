package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// TestWheelHorizonBoundary arms timers straddling the wheel horizon: one in
// the last in-horizon tick, one exactly at the horizon (heap), one far
// beyond, and one at time zero. They must fire in deadline order and
// Pending/When must hold for staged and heap-resident events alike.
func TestWheelHorizonBoundary(t *testing.T) {
	s := NewBackend(1, BackendWheel)
	horizon := wheelTick * wheelSlots
	deadlines := []time.Duration{
		0,                   // current tick: straight to the heap
		wheelTick - 1,       // near-term: straight to the heap
		horizon - 1,         // last staged tick
		horizon,             // first out-of-horizon tick: heap
		horizon + wheelTick, // beyond: heap
		10 * horizon,        // far future: heap
	}
	var fired []time.Duration
	timers := make([]Timer, len(deadlines))
	for i, d := range deadlines {
		d := d
		timers[i] = s.At(d, "t", func() { fired = append(fired, d) })
	}
	for i, tm := range timers {
		if !tm.Pending() {
			t.Fatalf("timer %d not pending", i)
		}
		if tm.When() != deadlines[i] {
			t.Fatalf("timer %d When=%v want %v", i, tm.When(), deadlines[i])
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fired, deadlines) {
		t.Fatalf("fire order %v, want %v", fired, deadlines)
	}
	if s.PendingEvents() != 0 {
		t.Fatalf("PendingEvents = %d after drain", s.PendingEvents())
	}
}

// TestWheelHorizonAdvances checks that once the wheel's base has moved, a
// slot index is reusable for a tick one full rotation later and events still
// fire at the right times.
func TestWheelHorizonAdvances(t *testing.T) {
	s := NewBackend(2, BackendWheel)
	var fired []time.Duration
	note := func(d time.Duration) func() { return func() { fired = append(fired, d) } }
	first := 5 * wheelTick
	s.At(first, "a", note(first))
	if err := s.RunUntil(first); err != nil {
		t.Fatal(err)
	}
	// Same slot index (tick 5 + wheelSlots), now in-horizon again.
	second := first + wheelTick*wheelSlots
	s.At(second, "b", note(second))
	third := first + 2*wheelTick
	s.At(third, "c", note(third))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{first, third, second}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("fire order %v, want %v", fired, want)
	}
}

// TestWheelCancelRearmRecycles exercises the retransmission-timer pattern —
// arm, cancel, re-arm, thousands of times — and checks that staged events
// recycle through the scheduler's pool: the pending count stays at one and
// stale handles remain safe no-ops.
func TestWheelCancelRearmRecycles(t *testing.T) {
	s := NewBackend(3, BackendWheel)
	var tm Timer
	var stale []Timer
	for i := 0; i < 5000; i++ {
		if i > 0 {
			if !tm.Stop() {
				t.Fatalf("Stop %d reported not pending", i)
			}
			stale = append(stale, tm)
		}
		tm = s.After(200*time.Millisecond, "rexmt", func() {})
		if got := s.PendingEvents(); got != 1 {
			t.Fatalf("PendingEvents = %d after re-arm %d, want 1", got, i)
		}
	}
	// Every stale handle's event has been recycled under a new generation.
	for i, old := range stale {
		if old.Pending() {
			t.Fatalf("stale handle %d still pending", i)
		}
		if old.Stop() {
			t.Fatalf("stale handle %d Stop returned true", i)
		}
	}
	// Perfect recycling: every arm reuses the single pooled event object.
	for i, old := range stale {
		if old.ev != tm.ev {
			t.Fatalf("re-arm %d allocated a new event instead of recycling", i)
		}
	}
	if !tm.Stop() {
		t.Fatal("final Stop failed")
	}
	if s.PendingEvents() != 0 {
		t.Fatalf("PendingEvents = %d after final Stop", s.PendingEvents())
	}
}

// TestWheelSameTickOrdering arms many events inside one wheel tick in a
// scrambled deadline order, plus ties at the same instant, and requires
// execution in (when, arm-sequence) order — the same total order the heap
// baseline produces.
func TestWheelSameTickOrdering(t *testing.T) {
	const n = 64
	run := func(b Backend) []int {
		s := NewBackend(4, b)
		rng := rand.New(rand.NewSource(99))
		var fired []int
		base := wheelTick * 3
		for i := 0; i < n; i++ {
			i := i
			// All deadlines inside tick 3; every fourth is a tie at base.
			off := time.Duration(rng.Intn(int(wheelTick)))
			if i%4 == 0 {
				off = 0
			}
			s.At(base+off, "e", func() { fired = append(fired, i) })
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return fired
	}
	wheel, heap := run(BackendWheel), run(BackendHeap)
	if !reflect.DeepEqual(wheel, heap) {
		t.Fatalf("same-tick order diverged:\nwheel %v\nheap  %v", wheel, heap)
	}
	// Ties must fire in arm order.
	seenTie := -1
	for _, i := range wheel {
		if i%4 == 0 {
			if i < seenTie {
				t.Fatalf("tied events out of arm order: %v", wheel)
			}
			seenTie = i
		}
	}
}

// TestWheelVsHeapRandomSchedule drives both backends through an identical
// randomized arm/cancel/step workload — deadlines spanning the horizon,
// cancellations, re-arms from inside callbacks — and requires byte-identical
// execution traces.
func TestWheelVsHeapRandomSchedule(t *testing.T) {
	run := func(b Backend) string {
		s := NewBackend(7, b)
		rng := rand.New(rand.NewSource(42))
		trace := ""
		var timers []Timer
		var arm func(id int)
		arm = func(id int) {
			d := time.Duration(rng.Int63n(int64(wheelTick * wheelSlots * 2)))
			id2 := id
			timers = append(timers, s.After(d, "r", func() {
				trace += fmt.Sprintf("%d@%v;", id2, s.Now())
				if id2 < 400 && rng.Intn(3) == 0 {
					arm(id2 + 1000)
				}
			}))
		}
		for i := 0; i < 300; i++ {
			arm(i)
			if i%3 == 0 && len(timers) > 4 {
				victim := rng.Intn(len(timers))
				timers[victim].Stop()
			}
			if i%17 == 0 {
				if err := s.RunFor(time.Duration(rng.Int63n(int64(wheelTick * 50)))); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	wheel, heap := run(BackendWheel), run(BackendHeap)
	if wheel != heap {
		t.Fatalf("execution traces diverged between wheel and heap backends:\nwheel %.300s\nheap  %.300s", wheel, heap)
	}
}

// TestWheelPastDeadlineClamped verifies that arming in the past (clamped to
// now) lands in the heap, not a stale wheel slot, and runs after events
// already queued for the current instant.
func TestWheelPastDeadlineClamped(t *testing.T) {
	s := NewBackend(8, BackendWheel)
	var fired []string
	s.At(3*wheelTick, "a", func() {
		fired = append(fired, "a")
		s.At(0, "late", func() { fired = append(fired, "late") })
		s.At(s.Now(), "now", func() { fired = append(fired, "now") })
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "late", "now"}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("fire order %v, want %v", fired, want)
	}
}
