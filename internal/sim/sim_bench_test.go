package sim

import (
	"testing"
	"time"
)

// BenchmarkScheduler measures the cost of the scheduler's hot cycle as TCP
// exercises it: schedule a timer, cancel it (the common case — most TCP
// timers are stopped before they fire), schedule a replacement, and fire
// events interleaved at varying horizons. allocs/op is the headline number:
// timer churn is the simulator's dominant allocator.
func BenchmarkScheduler(b *testing.B) {
	s := New(1)
	var spin func()
	n := 0
	spin = func() {
		// Each fired event re-arms itself and churns a canceled timer,
		// mimicking a retransmission timer reset per segment.
		t := s.After(50*time.Microsecond, "bench.rexmt", func() {})
		t.Stop()
		n++
		s.After(time.Duration(1+n%7)*time.Microsecond, "bench.next", spin)
	}
	spin()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	b.StopTimer()
	_ = n
}

// BenchmarkSchedulerMixed measures a deeper queue with out-of-order
// insertion and partial cancellation, the pattern of many concurrent
// connections. The callback is hoisted so the numbers isolate the
// scheduler's own heap and pooling costs.
func BenchmarkSchedulerMixed(b *testing.B) {
	s := New(42)
	fired := 0
	fn := func() { fired++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 512; j++ {
			d := time.Duration(s.Rand().Int63n(int64(time.Millisecond)))
			t := s.After(d, "bench.mixed", fn)
			if j%3 == 0 {
				t.Stop()
			}
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
