package sim

import (
	"testing"
	"time"
)

// TestStopAfterRecycleAliasing is the regression test for the event pool's
// generation guard: a Timer handle whose event has fired and been recycled
// into a new, unrelated timer must not be able to stop that new timer.
func TestStopAfterRecycleAliasing(t *testing.T) {
	s := New(1)
	stale := s.After(time.Millisecond, "old", func() {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	fired := false
	fresh := s.After(time.Millisecond, "new", func() { fired = true })
	if stale.ev != fresh.ev {
		t.Fatalf("pool did not recycle the fired event; test cannot observe aliasing")
	}
	if stale.Stop() {
		t.Error("Stop on a fired, recycled timer reported true")
	}
	if stale.Pending() {
		t.Error("stale handle reports pending")
	}
	if !fresh.Pending() {
		t.Fatal("stale Stop corrupted the recycled event")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("recycled event did not fire")
	}
}

// TestStoppedEventsRecycled verifies that Stop unlinks the event from the
// queue and recycles it immediately: repeated arm/cancel cycles — the
// retransmission-timer pattern — reuse a single pooled event instead of
// stacking dead entries in the heap until their deadlines pass.
func TestStoppedEventsRecycled(t *testing.T) {
	s := New(1)
	for i := 0; i < 8; i++ {
		s.After(time.Duration(i)*time.Millisecond, "x", func() {}).Stop()
	}
	if got := s.PendingEvents(); got != 0 {
		t.Fatalf("PendingEvents = %d after stopping all, want 0", got)
	}
	if len(s.queue) != 0 {
		t.Errorf("queue holds %d dead events, want 0 (eager removal)", len(s.queue))
	}
	if len(s.free) != 1 {
		t.Errorf("free list has %d events, want the single event all 8 cycles reused", len(s.free))
	}
	if s.Step() {
		t.Error("Step fired a stopped event")
	}
}

// TestStopMiddleKeepsOrder removes events from the middle of a populated
// heap and checks the survivors still fire in (when, seq) order.
func TestStopMiddleKeepsOrder(t *testing.T) {
	s := New(1)
	const n = 32
	var fired []int
	timers := make([]Timer, n)
	for i := 0; i < n; i++ {
		i := i
		// Deliberately scrambled deadlines exercise both sift directions
		// when removeAt re-seats the heap's last element.
		when := time.Duration((i*7)%n+1) * time.Millisecond
		timers[i] = s.After(when, "x", func() { fired = append(fired, (i*7)%n+1) })
	}
	for i := 0; i < n; i += 3 {
		timers[i].Stop()
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for j := 1; j < len(fired); j++ {
		if fired[j-1] > fired[j] {
			t.Fatalf("events fired out of order: %v", fired)
		}
	}
	want := n - (n+2)/3
	if len(fired) != want {
		t.Fatalf("%d events fired, want %d", len(fired), want)
	}
}

func TestPendingEventsCounter(t *testing.T) {
	s := New(1)
	timers := make([]Timer, 10)
	for i := range timers {
		timers[i] = s.After(time.Duration(i+1)*time.Millisecond, "x", func() {})
	}
	if got := s.PendingEvents(); got != 10 {
		t.Fatalf("PendingEvents = %d, want 10", got)
	}
	timers[3].Stop()
	timers[7].Stop()
	timers[7].Stop() // double-stop must not double-decrement
	if got := s.PendingEvents(); got != 8 {
		t.Fatalf("PendingEvents = %d after two stops, want 8", got)
	}
	s.Step()
	if got := s.PendingEvents(); got != 7 {
		t.Fatalf("PendingEvents = %d after one fire, want 7", got)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.PendingEvents(); got != 0 {
		t.Fatalf("PendingEvents = %d after Run, want 0", got)
	}
}

// TestTimerRescheduleZeroAlloc is the satellite guard: arming and canceling
// a timer — the per-segment retransmission-timer pattern — must not allocate
// once the pool is warm.
func TestTimerRescheduleZeroAlloc(t *testing.T) {
	s := New(1)
	fn := func() {}
	for i := 0; i < 64; i++ { // warm the free list
		s.After(time.Microsecond, "warm", fn).Stop()
		s.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tm := s.After(time.Microsecond, "x", fn)
		tm.Stop()
		s.Step()
	})
	if allocs != 0 {
		t.Errorf("timer reschedule allocates %.1f per event, want 0", allocs)
	}
}

func TestAtArgDeliversArgument(t *testing.T) {
	s := New(1)
	type box struct{ n int }
	bx := &box{}
	s.AtArg(time.Millisecond, "arg", func(v any) { v.(*box).n = 42 }, bx)
	s.AfterArg(2*time.Millisecond, "arg2", func(v any) { v.(*box).n++ }, bx)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if bx.n != 43 {
		t.Errorf("arg events ran incorrectly: n = %d, want 43", bx.n)
	}
}
