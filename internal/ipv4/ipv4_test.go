package ipv4

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	tests := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"10.0.1.1", AddrFrom4(10, 0, 1, 1), true},
		{"255.255.255.255", AddrFrom4(255, 255, 255, 255), true},
		{"0.0.0.0", 0, true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"1.2.3.256", 0, false},
		{"a.b.c.d", 0, false},
	}
	for _, tc := range tests {
		got, err := ParseAddr(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseAddr(%q) err=%v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPrefixContains(t *testing.T) {
	p := PrefixFrom(MustParseAddr("10.0.1.17"), 24) // masked to 10.0.1.0/24
	if p.Addr != MustParseAddr("10.0.1.0") {
		t.Errorf("prefix not masked: %v", p)
	}
	for addr, want := range map[string]bool{
		"10.0.1.1":   true,
		"10.0.1.255": true,
		"10.0.2.1":   false,
		"11.0.1.1":   false,
	} {
		if got := p.Contains(MustParseAddr(addr)); got != want {
			t.Errorf("Contains(%s) = %v, want %v", addr, got, want)
		}
	}
	if !PrefixFrom(0, 0).Contains(MustParseAddr("203.0.113.9")) {
		t.Error("default route does not contain arbitrary address")
	}
	host := PrefixFrom(MustParseAddr("10.0.0.1"), 32)
	if !host.Contains(MustParseAddr("10.0.0.1")) || host.Contains(MustParseAddr("10.0.0.2")) {
		t.Error("/32 prefix misbehaves")
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for range 300 {
		h := Header{
			ID:       uint16(rng.Intn(65536)),
			TTL:      uint8(1 + rng.Intn(255)),
			Protocol: uint8(rng.Intn(256)),
			Src:      Addr(rng.Uint32()),
			Dst:      Addr(rng.Uint32()),
		}
		payload := make([]byte, rng.Intn(256))
		rng.Read(payload)
		raw := Marshal(h, payload)
		got, gotPayload, err := Unmarshal(raw)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if got.ID != h.ID || got.TTL != h.TTL || got.Protocol != h.Protocol ||
			got.Src != h.Src || got.Dst != h.Dst {
			t.Fatalf("header mismatch: %+v vs %+v", got, h)
		}
		if string(gotPayload) != string(payload) {
			t.Fatal("payload mismatch")
		}
		if got.TotalLen != HeaderLen+len(payload) {
			t.Fatalf("TotalLen = %d", got.TotalLen)
		}
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	raw := Marshal(Header{TTL: 64, Protocol: ProtoTCP, Src: 1, Dst: 2}, []byte("data"))

	if _, _, err := Unmarshal(raw[:10]); err == nil {
		t.Error("truncated datagram accepted")
	}

	bad := append([]byte(nil), raw...)
	bad[0] = 0x55 // version 5
	if _, _, err := Unmarshal(bad); err == nil {
		t.Error("bad version accepted")
	}

	bad = append([]byte(nil), raw...)
	bad[8] ^= 0xff // corrupt TTL without fixing checksum
	if _, _, err := Unmarshal(bad); err == nil {
		t.Error("corrupted header accepted (checksum not verified)")
	}
}

func TestRoutingLongestPrefixMatch(t *testing.T) {
	var tbl Table
	tbl.Add(Route{Dst: PrefixFrom(0, 0), NextHop: MustParseAddr("10.0.0.254"), IfIndex: 0})
	tbl.Add(Route{Dst: PrefixFrom(MustParseAddr("10.0.1.0"), 24), IfIndex: 1})
	tbl.Add(Route{Dst: PrefixFrom(MustParseAddr("10.0.1.128"), 25), NextHop: MustParseAddr("10.0.1.200"), IfIndex: 2})

	tests := []struct {
		dst    string
		ifidx  int
		nextok bool
	}{
		{"10.0.1.5", 1, false},
		{"10.0.1.200", 2, true},
		{"192.168.9.9", 0, true},
	}
	for _, tc := range tests {
		r, ok := tbl.Lookup(MustParseAddr(tc.dst))
		if !ok {
			t.Fatalf("no route for %s", tc.dst)
		}
		if r.IfIndex != tc.ifidx {
			t.Errorf("route for %s via if %d, want %d", tc.dst, r.IfIndex, tc.ifidx)
		}
		if (r.NextHop != 0) != tc.nextok {
			t.Errorf("route for %s next hop %v", tc.dst, r.NextHop)
		}
	}

	var empty Table
	if _, ok := empty.Lookup(MustParseAddr("1.2.3.4")); ok {
		t.Error("empty table returned a route")
	}
}

func TestPutGetAddr(t *testing.T) {
	f := func(v uint32) bool {
		b := make([]byte, 4)
		PutAddr(b, Addr(v))
		return GetAddr(b) == Addr(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
