// Package ipv4 implements the simulated Internet Protocol layer: addresses,
// header marshaling with checksums, and longest-prefix-match routing. The
// routers that sit between the paper's client and servers operate at this
// layer and have no knowledge of TCP.
package ipv4

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"tcpfailover/internal/checksum"
	"tcpfailover/internal/netbuf"
)

// Addr is an IPv4 address.
type Addr uint32

// AddrFrom4 builds an address from four octets.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseAddr parses dotted-quad notation.
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("ipv4: parse %q: need 4 octets", s)
	}
	var v uint32
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 {
			return 0, fmt.Errorf("ipv4: parse %q: bad octet %q", s, p)
		}
		v = v<<8 | uint32(n)
	}
	return Addr(v), nil
}

// MustParseAddr is ParseAddr that panics on error; for constants in tests
// and examples.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String renders dotted-quad notation.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// IsZero reports whether the address is 0.0.0.0.
func (a Addr) IsZero() bool { return a == 0 }

// Prefix is a CIDR prefix.
type Prefix struct {
	Addr Addr
	Bits int
}

// PrefixFrom builds a prefix, masking the address to the prefix length.
func PrefixFrom(a Addr, bits int) Prefix {
	return Prefix{Addr: a & mask(bits), Bits: bits}
}

func mask(bits int) Addr {
	if bits <= 0 {
		return 0
	}
	if bits >= 32 {
		return ^Addr(0)
	}
	return ^Addr(0) << (32 - bits)
}

// Contains reports whether the prefix covers a.
func (p Prefix) Contains(a Addr) bool { return a&mask(p.Bits) == p.Addr }

// String renders CIDR notation.
func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.Addr, p.Bits) }

// Protocol numbers carried in the header's protocol field.
const (
	ProtoTCP       = 6
	ProtoHeartbeat = 253 // experimentation protocol, used by the fault detector
)

// HeaderLen is the length of the fixed IPv4 header (no options).
const HeaderLen = 20

// DefaultTTL is the initial time-to-live for locally originated datagrams.
const DefaultTTL = 64

// Header is a parsed IPv4 header. Options are not modeled.
type Header struct {
	TotalLen int
	ID       uint16
	TTL      uint8
	Protocol uint8
	Src      Addr
	Dst      Addr
}

// Errors returned by Unmarshal.
var (
	ErrTruncated   = errors.New("ipv4: truncated datagram")
	ErrBadVersion  = errors.New("ipv4: bad version")
	ErrBadChecksum = errors.New("ipv4: bad header checksum")
)

// Marshal renders the header followed by payload into a fresh buffer,
// computing TotalLen and the header checksum.
func Marshal(h Header, payload []byte) []byte {
	b := make([]byte, HeaderLen+len(payload))
	h.TotalLen = len(b)
	b[0] = 0x45 // version 4, IHL 5
	b[2] = byte(h.TotalLen >> 8)
	b[3] = byte(h.TotalLen)
	b[4] = byte(h.ID >> 8)
	b[5] = byte(h.ID)
	b[8] = h.TTL
	b[9] = h.Protocol
	putAddr(b[12:16], h.Src)
	putAddr(b[16:20], h.Dst)
	sum := checksum.Sum(b[:HeaderLen])
	b[10] = byte(sum >> 8)
	b[11] = byte(sum)
	copy(b[HeaderLen:], payload)
	return b
}

// The hot path prepends headers into netbuf headroom; this must fit.
const _ uint = netbuf.Headroom - HeaderLen

// PrependHeader writes the header in place into pkt's headroom, in front of
// the data already in the buffer (the IP payload), computing TotalLen and
// the header checksum. It is the zero-copy counterpart of Marshal.
func PrependHeader(pkt *netbuf.Buffer, h Header) {
	h.TotalLen = HeaderLen + pkt.Len()
	b := pkt.Prepend(HeaderLen)
	// The store is pooled, so every byte must be written explicitly.
	b[0] = 0x45 // version 4, IHL 5
	b[1] = 0    // TOS
	b[2] = byte(h.TotalLen >> 8)
	b[3] = byte(h.TotalLen)
	b[4] = byte(h.ID >> 8)
	b[5] = byte(h.ID)
	b[6], b[7] = 0, 0 // flags / fragment offset
	b[8] = h.TTL
	b[9] = h.Protocol
	b[10], b[11] = 0, 0
	putAddr(b[12:16], h.Src)
	putAddr(b[16:20], h.Dst)
	sum := checksum.Sum(b[:HeaderLen])
	b[10] = byte(sum >> 8)
	b[11] = byte(sum)
}

// Unmarshal parses a datagram, verifying version and header checksum. The
// returned payload aliases b.
func Unmarshal(b []byte) (Header, []byte, error) {
	if len(b) < HeaderLen {
		return Header{}, nil, ErrTruncated
	}
	if b[0]>>4 != 4 || int(b[0]&0x0f) != 5 {
		return Header{}, nil, ErrBadVersion
	}
	if checksum.Sum(b[:HeaderLen]) != 0 {
		return Header{}, nil, ErrBadChecksum
	}
	h := Header{
		TotalLen: int(b[2])<<8 | int(b[3]),
		ID:       uint16(b[4])<<8 | uint16(b[5]),
		TTL:      b[8],
		Protocol: b[9],
		Src:      getAddr(b[12:16]),
		Dst:      getAddr(b[16:20]),
	}
	if h.TotalLen < HeaderLen || h.TotalLen > len(b) {
		return Header{}, nil, ErrTruncated
	}
	return h, b[HeaderLen:h.TotalLen], nil
}

func putAddr(b []byte, a Addr) {
	b[0] = byte(a >> 24)
	b[1] = byte(a >> 16)
	b[2] = byte(a >> 8)
	b[3] = byte(a)
}

func getAddr(b []byte) Addr {
	return Addr(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))
}

// PutAddr writes an address in network byte order (for ARP packets etc.).
func PutAddr(b []byte, a Addr) { putAddr(b, a) }

// GetAddr reads an address in network byte order.
func GetAddr(b []byte) Addr { return getAddr(b) }

// Route is a routing-table entry. A zero NextHop means the destination is
// on-link (deliverable directly via ARP on the interface).
type Route struct {
	Dst     Prefix
	NextHop Addr
	IfIndex int
}

// Table is a longest-prefix-match routing table.
type Table struct {
	routes []Route
}

// Add inserts a route.
func (t *Table) Add(r Route) { t.routes = append(t.routes, r) }

// Lookup returns the most specific matching route.
func (t *Table) Lookup(dst Addr) (Route, bool) {
	best := -1
	var bestRoute Route
	for _, r := range t.routes {
		if r.Dst.Contains(dst) && r.Dst.Bits > best {
			best = r.Dst.Bits
			bestRoute = r
		}
	}
	return bestRoute, best >= 0
}

// Routes returns a copy of the table entries.
func (t *Table) Routes() []Route {
	out := make([]Route, len(t.routes))
	copy(out, t.routes)
	return out
}
