// Package metrics provides the small statistics helpers the benchmark
// harness uses to report results the way the paper does: medians, maxima,
// and transfer rates.
package metrics

import (
	"sort"
	"time"
)

// Durations collects duration samples. Percentile queries sort the samples
// in place and remember that they are sorted, so a burst of queries
// (median, p90, p99...) after a collection phase costs one sort and zero
// allocations.
type Durations struct {
	samples []time.Duration
	sorted  bool
}

// Add records a sample.
func (d *Durations) Add(v time.Duration) {
	d.samples = append(d.samples, v)
	d.sorted = false
}

// N returns the number of samples.
func (d *Durations) N() int { return len(d.samples) }

// Median returns the median sample (zero when empty).
func (d *Durations) Median() time.Duration { return d.Percentile(50) }

// Percentile returns the pth percentile using nearest-rank.
func (d *Durations) Percentile(p float64) time.Duration {
	if len(d.samples) == 0 {
		return 0
	}
	if !d.sorted {
		sort.Slice(d.samples, func(i, j int) bool { return d.samples[i] < d.samples[j] })
		d.sorted = true
	}
	idx := int(float64(len(d.samples)-1) * p / 100.0)
	return d.samples[idx]
}

// Max returns the largest sample.
func (d *Durations) Max() time.Duration {
	var m time.Duration
	for _, v := range d.samples {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the smallest sample (zero when empty).
func (d *Durations) Min() time.Duration {
	if len(d.samples) == 0 {
		return 0
	}
	m := d.samples[0]
	for _, v := range d.samples[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Mean returns the arithmetic mean.
func (d *Durations) Mean() time.Duration {
	if len(d.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range d.samples {
		sum += v
	}
	return sum / time.Duration(len(d.samples))
}

// Floats collects float64 samples (rates, ratios) with the same
// nearest-rank statistics and sort-once behaviour as Durations.
type Floats struct {
	samples []float64
	sorted  bool
}

// Add records a sample.
func (f *Floats) Add(v float64) {
	f.samples = append(f.samples, v)
	f.sorted = false
}

// N returns the number of samples.
func (f *Floats) N() int { return len(f.samples) }

// Median returns the median sample (zero when empty).
func (f *Floats) Median() float64 { return f.Percentile(50) }

// Percentile returns the pth percentile using nearest-rank.
func (f *Floats) Percentile(p float64) float64 {
	if len(f.samples) == 0 {
		return 0
	}
	if !f.sorted {
		sort.Float64s(f.samples)
		f.sorted = true
	}
	idx := int(float64(len(f.samples)-1) * p / 100.0)
	return f.samples[idx]
}

// Max returns the largest sample (zero when empty).
func (f *Floats) Max() float64 {
	var m float64
	for _, v := range f.samples {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the smallest sample (zero when empty).
func (f *Floats) Min() float64 {
	if len(f.samples) == 0 {
		return 0
	}
	m := f.samples[0]
	for _, v := range f.samples[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Mean returns the arithmetic mean (zero when empty).
func (f *Floats) Mean() float64 {
	if len(f.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range f.samples {
		sum += v
	}
	return sum / float64(len(f.samples))
}

// RateKBps converts bytes transferred in elapsed time to KB/s (the paper's
// unit, 1 KB = 1024 bytes).
func RateKBps(bytes int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) / 1024.0 / elapsed.Seconds()
}
