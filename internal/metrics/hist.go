package metrics

import (
	"math/bits"
	"time"
)

// LogHistogram is a zero-allocation log-bucketed histogram in the style of
// HDR histograms: values up to 2*logHistSub are counted exactly, and every
// octave above that is split into logHistSub linear sub-buckets, bounding
// the relative quantile error by 1/logHistSub (~3%). The bucket array is a
// fixed-size value field, so recording a sample is two integer operations
// and an increment — no allocation, no sort, no retained samples. That is
// the property the open-loop experiments need: p99/p999 over millions of
// response-time samples without holding every sample the way the sort-based
// Durations does. Durations remains the right tool for small-n experiments
// where exact order statistics matter.
//
// The zero value is ready to use.
type LogHistogram struct {
	counts [logHistBuckets]int64
	count  int64
	sum    int64
	min    int64
	max    int64
}

const (
	// logHistSubBits fixes the sub-bucket resolution: 2^5 = 32 sub-buckets
	// per octave, a worst-case relative error of 1/32 per reported quantile.
	logHistSubBits = 5
	logHistSub     = 1 << logHistSubBits
	// logHistBuckets covers the full non-negative int64 range: values below
	// 2*logHistSub index directly, and each octave shift above that (1 to
	// 63-(logHistSubBits+1), i.e. up to MaxInt64) contributes logHistSub
	// sub-buckets; the last bucket's upper bound is exactly MaxInt64.
	logHistBuckets = 2*logHistSub + (63-logHistSubBits-1)*logHistSub
)

// logHistIndex maps a non-negative value to its bucket.
func logHistIndex(v int64) int {
	u := uint64(v)
	if u < 2*logHistSub {
		return int(u)
	}
	shift := bits.Len64(u) - (logHistSubBits + 1)
	return shift*logHistSub + int(u>>uint(shift))
}

// logHistUpper returns the largest value the bucket holds (its inclusive
// upper bound). Quantiles report this value, so the estimate never
// undershoots the exact order statistic and overshoots it by at most one
// bucket width (a factor of 1 + 1/logHistSub).
func logHistUpper(i int) int64 {
	if i < 2*logHistSub {
		return int64(i)
	}
	shift := i/logHistSub - 1
	return int64(i-shift*logHistSub+1)<<uint(shift) - 1
}

// Observe records a sample. Negative values clamp to zero (durations are
// never negative; a clamped zero is more useful than a panic mid-run).
func (h *LogHistogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.counts[logHistIndex(v)]++
}

// ObserveDuration records a duration sample in nanoseconds.
func (h *LogHistogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// N returns the number of recorded samples.
func (h *LogHistogram) N() int64 { return h.count }

// Sum returns the sum of all recorded samples.
func (h *LogHistogram) Sum() int64 { return h.sum }

// Max returns the largest recorded sample (zero when empty). Exact.
func (h *LogHistogram) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Min returns the smallest recorded sample (zero when empty). Exact.
func (h *LogHistogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Mean returns the arithmetic mean (zero when empty). Exact.
func (h *LogHistogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Percentile returns the pth percentile using the same nearest-rank
// convention as Durations.Percentile: the sample at sorted index
// int((n-1)*p/100). The returned value is the containing bucket's upper
// bound, so it is >= the exact order statistic and within a relative
// 1/32 of it. Exact min and max are substituted at the extremes.
func (h *LogHistogram) Percentile(p float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(float64(h.count-1)*p/100.0) + 1 // 1-based target rank
	if rank <= 1 {
		return h.min
	}
	if rank >= h.count {
		return h.max
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i]
		if cum >= rank {
			return logHistUpper(i)
		}
	}
	return h.max // unreachable: cum reaches h.count
}

// PercentileDuration is Percentile for duration-valued histograms.
func (h *LogHistogram) PercentileDuration(p float64) time.Duration {
	return time.Duration(h.Percentile(p))
}

// Merge folds other's samples into h. Bucket layouts are identical by
// construction, so merging is elementwise.
func (h *LogHistogram) Merge(other *LogHistogram) {
	if other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
}
