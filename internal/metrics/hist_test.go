package metrics

import (
	"math"
	"testing"
	"time"
)

// rng is a tiny splitmix64 so the tests don't depend on math/rand ordering.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// TestLogHistIndexMonotone walks bucket boundaries: the index function must
// be monotone, every bucket's upper bound must map back to its own index,
// and the next value must map to the next bucket.
func TestLogHistIndexMonotone(t *testing.T) {
	prev := -1
	for i := 0; i < logHistBuckets; i++ {
		u := logHistUpper(i)
		if got := logHistIndex(u); got != i {
			t.Fatalf("upper(%d)=%d maps to bucket %d", i, u, got)
		}
		if prev >= 0 && u <= logHistUpper(prev) {
			t.Fatalf("upper bounds not increasing at %d", i)
		}
		prev = i
		if u < math.MaxInt64 {
			if got := logHistIndex(u + 1); got != i+1 {
				t.Fatalf("upper(%d)+1=%d maps to bucket %d, want %d", i, u+1, got, i+1)
			}
		}
	}
}

// TestLogHistogramVsExactPercentiles is the cross-check the satellite task
// asks for: for several sample distributions, every quantile reported by the
// log-bucketed histogram must bracket the exact sorted percentile from
// above within the bucket's relative-error bound.
func TestLogHistogramVsExactPercentiles(t *testing.T) {
	distributions := map[string]func(r *rng) int64{
		"uniform": func(r *rng) int64 { return int64(r.next() % 1_000_000) },
		"exponential": func(r *rng) int64 {
			return int64(-math.Log(1-r.float()) * 50_000)
		},
		"heavytail": func(r *rng) int64 {
			// Pareto alpha=1.2: the regime where retaining samples hurts.
			return int64(1000 * math.Pow(1-r.float(), -1/1.2))
		},
		"tiny": func(r *rng) int64 { return int64(r.next() % 40) }, // exact region
	}
	quantiles := []float64{0, 10, 50, 90, 99, 99.9, 100}
	for name, draw := range distributions {
		r := &rng{s: 42}
		var h LogHistogram
		var exact Durations
		for i := 0; i < 200_000; i++ {
			v := draw(r)
			h.Observe(v)
			exact.Add(time.Duration(v))
		}
		for _, q := range quantiles {
			want := int64(exact.Percentile(q))
			got := h.Percentile(q)
			if got < want {
				t.Errorf("%s p%v: histogram %d undershoots exact %d", name, q, got, want)
			}
			// Upper bound: one bucket width, i.e. a relative 1/32 (plus 1 for
			// the integer edges of the exact region).
			if limit := want + want/logHistSub + 1; got > limit {
				t.Errorf("%s p%v: histogram %d exceeds exact %d by more than 1/%d",
					name, q, got, want, logHistSub)
			}
		}
		if h.N() != int64(exact.N()) {
			t.Errorf("%s: count %d != %d", name, h.N(), exact.N())
		}
		if h.Max() != int64(exact.Max()) || h.Min() != int64(exact.Min()) {
			t.Errorf("%s: min/max not exact: %d/%d vs %d/%d",
				name, h.Min(), h.Max(), int64(exact.Min()), int64(exact.Max()))
		}
	}
}

// TestLogHistogramMerge checks that merging two histograms reports the same
// quantiles as observing the union.
func TestLogHistogramMerge(t *testing.T) {
	r := &rng{s: 7}
	var a, b, union LogHistogram
	for i := 0; i < 10_000; i++ {
		v := int64(r.next() % 500_000)
		union.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(&b)
	if a.N() != union.N() || a.Sum() != union.Sum() || a.Min() != union.Min() || a.Max() != union.Max() {
		t.Fatalf("merge counters differ: n=%d/%d sum=%d/%d", a.N(), union.N(), a.Sum(), union.Sum())
	}
	for _, q := range []float64{50, 99, 99.9} {
		if a.Percentile(q) != union.Percentile(q) {
			t.Errorf("p%v: merged %d != union %d", q, a.Percentile(q), union.Percentile(q))
		}
	}
}

// TestLogHistogramObserveAllocs pins the zero-allocation property of the
// record path.
func TestLogHistogramObserveAllocs(t *testing.T) {
	var h LogHistogram
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(123_456)
	})
	if allocs != 0 {
		t.Errorf("Observe allocates %v times per call, want 0", allocs)
	}
}

// TestLogHistogramEmptyAndNegative covers the degenerate inputs.
func TestLogHistogramEmptyAndNegative(t *testing.T) {
	var h LogHistogram
	if h.Percentile(50) != 0 || h.Max() != 0 || h.Min() != 0 || h.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
	h.Observe(-5)
	if h.Min() != 0 || h.Max() != 0 || h.N() != 1 {
		t.Errorf("negative sample must clamp to zero: min=%d max=%d n=%d", h.Min(), h.Max(), h.N())
	}
	h.ObserveDuration(time.Millisecond)
	if h.PercentileDuration(100) != time.Millisecond {
		t.Errorf("max duration = %v, want 1ms", h.PercentileDuration(100))
	}
}
