package metrics

import (
	"testing"
	"time"
)

func TestDurationsStatistics(t *testing.T) {
	var d Durations
	for _, v := range []time.Duration{5, 1, 4, 2, 3} {
		d.Add(v * time.Millisecond)
	}
	if d.N() != 5 {
		t.Errorf("N = %d", d.N())
	}
	if got := d.Median(); got != 3*time.Millisecond {
		t.Errorf("Median = %v", got)
	}
	if got := d.Max(); got != 5*time.Millisecond {
		t.Errorf("Max = %v", got)
	}
	if got := d.Min(); got != time.Millisecond {
		t.Errorf("Min = %v", got)
	}
	if got := d.Mean(); got != 3*time.Millisecond {
		t.Errorf("Mean = %v", got)
	}
	if got := d.Percentile(0); got != time.Millisecond {
		t.Errorf("P0 = %v", got)
	}
	if got := d.Percentile(100); got != 5*time.Millisecond {
		t.Errorf("P100 = %v", got)
	}
}

func TestDurationsEmpty(t *testing.T) {
	var d Durations
	if d.Median() != 0 || d.Max() != 0 || d.Min() != 0 || d.Mean() != 0 {
		t.Error("empty collector should report zeros")
	}
}

// TestPercentileAfterAdd pins the dirty-flag behaviour: queries sort once,
// a later Add invalidates the sort, and the next query re-sorts.
func TestPercentileAfterAdd(t *testing.T) {
	var d Durations
	d.Add(3 * time.Millisecond)
	d.Add(1 * time.Millisecond)
	if got := d.Median(); got != 1*time.Millisecond {
		t.Errorf("median of {3,1} = %v, want 1ms", got)
	}
	d.Add(5 * time.Millisecond)
	d.Add(4 * time.Millisecond)
	if got := d.Median(); got != 3*time.Millisecond {
		t.Errorf("median after more adds = %v, want 3ms", got)
	}
	if got := d.Percentile(100); got != 5*time.Millisecond {
		t.Errorf("P100 = %v, want 5ms", got)
	}

	var f Floats
	f.Add(2)
	f.Add(9)
	if got := f.Median(); got != 2 {
		t.Errorf("float median of {2,9} = %v, want 2", got)
	}
	f.Add(1)
	if got := f.Median(); got != 2 {
		t.Errorf("float median of {2,9,1} = %v, want 2", got)
	}
	if got := f.Max(); got != 9 {
		t.Errorf("float max = %v, want 9", got)
	}
}

func TestRateKBps(t *testing.T) {
	if got := RateKBps(102400, time.Second); got != 100 {
		t.Errorf("RateKBps = %v, want 100", got)
	}
	if got := RateKBps(1024, 0); got != 0 {
		t.Errorf("RateKBps with zero elapsed = %v", got)
	}
}

// BenchmarkPercentileQueries measures a typical report: many samples, then
// a burst of percentile queries. The sort-once collectors do one sort and
// no per-query allocation; before the dirty flag every query copied and
// re-sorted the full sample set.
func BenchmarkPercentileQueries(b *testing.B) {
	var d Durations
	for i := 0; i < 10000; i++ {
		d.Add(time.Duration((i*2654435761)%100000) * time.Microsecond)
	}
	d.Percentile(50) // sort outside the timed loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Percentile(50)
		d.Percentile(90)
		d.Percentile(99)
	}
}
