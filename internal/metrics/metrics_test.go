package metrics

import (
	"testing"
	"time"
)

func TestDurationsStatistics(t *testing.T) {
	var d Durations
	for _, v := range []time.Duration{5, 1, 4, 2, 3} {
		d.Add(v * time.Millisecond)
	}
	if d.N() != 5 {
		t.Errorf("N = %d", d.N())
	}
	if got := d.Median(); got != 3*time.Millisecond {
		t.Errorf("Median = %v", got)
	}
	if got := d.Max(); got != 5*time.Millisecond {
		t.Errorf("Max = %v", got)
	}
	if got := d.Min(); got != time.Millisecond {
		t.Errorf("Min = %v", got)
	}
	if got := d.Mean(); got != 3*time.Millisecond {
		t.Errorf("Mean = %v", got)
	}
	if got := d.Percentile(0); got != time.Millisecond {
		t.Errorf("P0 = %v", got)
	}
	if got := d.Percentile(100); got != 5*time.Millisecond {
		t.Errorf("P100 = %v", got)
	}
}

func TestDurationsEmpty(t *testing.T) {
	var d Durations
	if d.Median() != 0 || d.Max() != 0 || d.Min() != 0 || d.Mean() != 0 {
		t.Error("empty collector should report zeros")
	}
}

func TestRateKBps(t *testing.T) {
	if got := RateKBps(102400, time.Second); got != 100 {
		t.Errorf("RateKBps = %v, want 100", got)
	}
	if got := RateKBps(1024, 0); got != 0 {
		t.Errorf("RateKBps with zero elapsed = %v", got)
	}
}
