package core

import (
	"slices"

	"tcpfailover/internal/flowtab"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/netbuf"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/obs"
	"tcpfailover/internal/tcp"
)

// origDstOptionLen is the wire overhead of the original-destination option
// block (two alignment NOPs + kind + length + IPv4 address).
const origDstOptionLen = 8

// SecondaryStats counts the secondary bridge's work.
type SecondaryStats struct {
	SnoopedIn      int64 // client segments captured promiscuously and translated
	DivertedOut    int64 // locally generated segments diverted to the primary
	DroppedDuring  int64 // segments dropped while takeover was reconfiguring
	TakenOver      int64 // connections re-keyed to the primary address
	FlowsEvicted   int64 // flow-cache entries evicted by the SetFlowLimit cap
	MalformedDrops int64 // snooped frames with an inconsistent data offset
}

// SecondaryBridge is the bridge sublayer on the secondary server S.
//
// In normal operation it (a) receives all of the client's datagrams via the
// NIC's promiscuous mode, replaces the destination address aP with aS and
// passes them up so S's TCP layer believes the client sent them directly to
// S, and (b) intercepts every TCP segment S's layer addresses to a client,
// replaces the destination with aP, and records the original destination in
// a TCP header option (paper section 3.1).
//
// On primary failure, Takeover runs the five-step procedure of section 5.
type SecondaryBridge struct {
	host    *netstack.Host
	ifIndex int
	aP, aS  ipv4.Addr
	// upstream is where diverted segments go: the primary, or — for the
	// tail of a daisy chain — the next backup up the chain. Defaults to aP.
	upstream ipv4.Addr
	sel      *Selector

	active bool
	// flows caches the per-tuple snoop/divert decision: the selector
	// verdict and, for failover flows, the precomputed original-destination
	// option block. Both hooks normalize a segment to the same TupleKey, so
	// steady-state segments in either direction pay a single table hit
	// instead of up to three selector probes. Entries self-invalidate when
	// the selector configuration changes. The table maps keys to slot
	// indices in fslots; records live by value, so a million snooped flows
	// are a handful of flat allocations rather than a million heap objects.
	flows  flowtab.Table
	fslots flowtab.Slab[sflow]
	// maxFlows bounds the flow cache (and the takeover records it holds):
	// when exceeded, the least-recently-touched flow is evicted. 0 means
	// unbounded — the historical behavior. The packed-uint64 keys make each
	// entry cheap, but a SYN flood of spoofed clients would still grow the
	// table without limit.
	maxFlows         int
	lruHead, lruTail int32 // slot indices, -1 = none

	// keyScratch is the reusable buffer for Takeover's sorted re-key walk.
	keyScratch []uint64

	stats SecondaryStats
	m     secondaryMetrics

	// spans, when non-nil, receives the first-diverted milestone per flow
	// (the bridge's TupleKey for an outbound diverted segment is bit-for-bit
	// the client stack's Tuple.SpanKey) and the fleet takeover mark.
	spans *obs.SpanRecorder

	// OnTakeover, if set, is called when Takeover completes — after the
	// gratuitous ARP announcing the primary's address has been broadcast.
	// The failover timeline analyzer timestamps its ARP phase here.
	OnTakeover func()
}

// sflow is a cached per-flow decision of the secondary bridge. Records live
// by value in the bridge's slab; the LRU links are slot indices.
type sflow struct {
	gen   uint64 // selector generation the verdict was computed under
	match bool
	// rec marks a flow that matched at least once: at takeover its TCP
	// connection must be re-keyed to aP. The tuple itself is not stored —
	// it is fully derivable from the key plus the bridge's own address, so
	// the separate map[TupleKey]tcp.Tuple earlier revisions kept was pure
	// redundancy. The bit is sticky across selector reconfigurations,
	// matching the old table's never-unrecorded semantics.
	rec bool
	opt [8]byte // orig-dst option block carrying the client address

	// Owning key and intrusive LRU links (slot indices, -1 = none), the
	// links maintained only under a SetFlowLimit cap.
	key              TupleKey
	self             int32
	lruPrev, lruNext int32
}

// flow returns the cached decision for key, classifying the flow on first
// sight (or after a selector change): the verdict is computed, the option
// block prebuilt, and — for failover flows — the connection marked for
// takeover re-keying.
func (b *SecondaryBridge) flow(key TupleKey) *sflow {
	var f *sflow
	if i, ok := b.flows.Get(uint64(key)); ok {
		f = b.fslots.At(i)
	}
	if f != nil && f.gen == b.sel.Gen() {
		if b.maxFlows > 0 {
			b.lruTouch(f)
		}
		return f
	}
	if f == nil {
		idx := b.fslots.Alloc()
		f = b.fslots.At(idx)
		f.key = key
		f.self = int32(idx)
		f.lruPrev, f.lruNext = -1, -1
		b.flows.Put(uint64(key), idx)
		if b.maxFlows > 0 {
			b.lruPush(f)
			for b.flows.Len() > b.maxFlows && b.lruTail >= 0 && b.lruTail != f.self {
				b.evict(b.fslots.At(uint32(b.lruTail)))
			}
		}
	} else if b.maxFlows > 0 {
		b.lruTouch(f)
	}
	f.gen = b.sel.Gen()
	f.match = b.sel.Match(key)
	if f.match {
		tcp.OrigDstOptionBlock(&f.opt, key.PeerAddr())
		f.rec = true
	}
	return f
}

// --- LRU list, maintained only when maxFlows > 0 -----------------------------

func (b *SecondaryBridge) lruPush(f *sflow) {
	f.lruPrev, f.lruNext = -1, b.lruHead
	if b.lruHead >= 0 {
		b.fslots.At(uint32(b.lruHead)).lruPrev = f.self
	}
	b.lruHead = f.self
	if b.lruTail < 0 {
		b.lruTail = f.self
	}
}

func (b *SecondaryBridge) lruUnlink(f *sflow) {
	if f.lruPrev >= 0 {
		b.fslots.At(uint32(f.lruPrev)).lruNext = f.lruNext
	} else if b.lruHead == f.self {
		b.lruHead = f.lruNext
	}
	if f.lruNext >= 0 {
		b.fslots.At(uint32(f.lruNext)).lruPrev = f.lruPrev
	} else if b.lruTail == f.self {
		b.lruTail = f.lruPrev
	}
	f.lruPrev, f.lruNext = -1, -1
}

func (b *SecondaryBridge) lruTouch(f *sflow) {
	if b.lruHead == f.self {
		return
	}
	b.lruUnlink(f)
	b.lruPush(f)
}

// evict drops a flow-cache entry, including its takeover record. Active
// connections stay LRU-fresh (every snooped or diverted segment touches the
// entry), so what the cap sheds under a SYN flood is the flood's own
// single-segment flows.
func (b *SecondaryBridge) evict(f *sflow) {
	b.lruUnlink(f)
	b.flows.Delete(uint64(f.key))
	b.stats.FlowsEvicted++
	b.m.flowEvictions.Inc()
	b.fslots.Free(uint32(f.self))
}

// SetFlowLimit bounds the flow cache to n entries, evicting the least
// recently touched beyond the cap. 0 (the default) means unbounded. Set at
// build time, before traffic is snooped: entries cached while unbounded are
// only indexed lazily as they are next touched (walking the map here would
// impose a nondeterministic eviction order).
func (b *SecondaryBridge) SetFlowLimit(n int) { b.maxFlows = n }

// Flows returns the number of cached flow entries.
func (b *SecondaryBridge) Flows() int { return b.flows.Len() }

// NewSecondaryBridge installs the bridge on host's interface ifIndex. The
// NIC is placed in promiscuous receive mode.
func NewSecondaryBridge(host *netstack.Host, ifIndex int, primaryAddr, secondaryAddr ipv4.Addr, sel *Selector) *SecondaryBridge {
	b := &SecondaryBridge{
		host:     host,
		ifIndex:  ifIndex,
		aP:       primaryAddr,
		aS:       secondaryAddr,
		upstream: primaryAddr,
		sel:      sel,
		active:   true,
		lruHead:  -1,
		lruTail:  -1,
		m:        newSecondaryMetrics(nil, ""),
	}
	host.Iface(ifIndex).NIC().SetPromiscuous(true)
	host.SetInboundHook(b.inbound)
	host.SetOutboundHook(b.outbound)
	return b
}

// Stats returns a copy of the bridge counters.
func (b *SecondaryBridge) Stats() SecondaryStats { return b.stats }

// AttachSpans installs the fleet span recorder: the bridge marks each
// flow's first diverted segment and timestamps the takeover/ARP announce.
func (b *SecondaryBridge) AttachSpans(r *obs.SpanRecorder) { b.spans = r }

// Inbound is the bridge's inbound interposition handler (exported for
// composition and benchmarks; NewSecondaryBridge installs it automatically).
func (b *SecondaryBridge) Inbound(ifIndex int, hdr ipv4.Header, payload []byte) (netstack.InVerdict, ipv4.Header, []byte) {
	return b.inbound(ifIndex, hdr, payload)
}

// Outbound is the bridge's outbound interposition handler.
func (b *SecondaryBridge) Outbound(src, dst ipv4.Addr, segment []byte) bool {
	return b.outbound(src, dst, segment)
}

// Active reports whether the bridge is operating (false after takeover).
func (b *SecondaryBridge) Active() bool { return b.active }

// inbound implements the aP -> aS destination translation for incoming
// client segments. All other datagrams follow normal processing.
func (b *SecondaryBridge) inbound(ifIndex int, hdr ipv4.Header, payload []byte) (netstack.InVerdict, ipv4.Header, []byte) {
	if !b.active || hdr.Dst != b.aP || len(payload) < tcp.HeaderLen {
		return netstack.VerdictPass, hdr, payload
	}
	if !tcp.RawSane(payload) {
		// A forged data offset on the snoop path would corrupt the MSS
		// clamp's option walk; drop rather than deliver a frame the local
		// TCP layer would reject anyway.
		b.m.malformedDrops.Inc()
		b.stats.MalformedDrops++
		return netstack.VerdictDrop, hdr, payload
	}
	key := MakeTupleKey(hdr.Src, tcp.RawSrcPort(payload), tcp.RawDstPort(payload))
	if !b.flow(key).match {
		return netstack.VerdictPass, hdr, payload
	}
	// The payload is this station's private copy of the bits; patch the
	// pseudo-header checksum incrementally and rewrite the address.
	tcp.PatchPseudoAddr(payload, b.aP, b.aS)
	hdr.Dst = b.aS
	if tcp.RawFlags(payload).Has(tcp.FlagSYN) {
		// Leave MTU headroom for the original-destination option that the
		// outbound diversion adds to every segment this TCP layer emits.
		tcp.ClampRawMSS(payload, origDstOptionLen)
	}
	b.stats.SnoopedIn++
	b.m.snoopedIn.Inc()
	return netstack.VerdictDeliver, hdr, payload
}

// outbound diverts failover segments addressed to a client so they reach
// the primary bridge instead.
func (b *SecondaryBridge) outbound(src, dst ipv4.Addr, segment []byte) bool {
	if !b.active {
		return false
	}
	key := MakeTupleKey(dst, tcp.RawDstPort(segment), tcp.RawSrcPort(segment))
	f := b.flow(key)
	if !f.match {
		return false
	}
	if b.spans != nil {
		b.spans.Mark(uint64(key), obs.SpanFirstDiverted, b.host.Scheduler().Now())
	}
	// Build the diverted segment straight into a pooled packet buffer: the
	// flow's precomputed option block is appended to the header copy and
	// the buffer is handed to the stack without a further copy.
	pkt := netbuf.Get()
	out, err := tcp.AppendOrigDstOption(pkt, segment, &f.opt)
	if err != nil {
		// Header options full; fall back to dropping (TCP will retransmit).
		pkt.Release()
		return true
	}
	// The checksum must reflect the new pseudo-header destination.
	tcp.PatchPseudoAddr(out, dst, b.upstream)
	b.stats.DivertedOut++
	b.m.divertedOut.Inc()
	_ = b.host.SendIPFastBuf(src, b.upstream, ipv4.ProtoTCP, pkt)
	return true
}

// SetUpstream redirects future diverted segments, e.g. when the middle
// server of a daisy chain fails and the tail re-attaches to the head.
func (b *SecondaryBridge) SetUpstream(a ipv4.Addr) { b.upstream = a }

// Takeover executes the paper's section 5 procedure after the fault
// detector reports the primary failed:
//
//  1. stop sending TCP segments addressed to the client,
//  2. disable the promiscuous receive mode,
//  3. disable the aP-to-aS translation for incoming segments,
//  4. disable the aC-to-aP translation for outgoing segments,
//  5. take over the primary's IP address,
//
// after which the bridge is disabled and the host behaves like a standard
// TCP server. The connections the TCP layer established under aS are
// re-keyed to aP, and a gratuitous ARP is broadcast so the router rebinds
// aP to this host's MAC (the router's ARP processing latency forms part of
// the takeover window T).
func (b *SecondaryBridge) Takeover() error {
	if !b.active {
		return nil
	}
	// Steps 1, 3, 4: a single flag gates both hooks and the output path.
	b.active = false
	// Step 2.
	b.host.Iface(b.ifIndex).NIC().SetPromiscuous(false)
	// Step 5.
	b.host.AddAddress(b.ifIndex, b.aP)
	stack := b.host.TCP()
	// Deterministic re-key order: sort the flow keys into the reusable
	// scratch buffer (the table's internal order is not stable run to run).
	b.keyScratch = b.flows.AppendKeys(b.keyScratch[:0])
	slices.Sort(b.keyScratch)
	for _, kk := range b.keyScratch {
		i, ok := b.flows.Get(kk)
		if !ok || !b.fslots.At(i).rec {
			continue
		}
		key := TupleKey(kk)
		t := tcp.Tuple{
			LocalAddr:  b.aS,
			LocalPort:  key.LocalPort(),
			RemoteAddr: key.PeerAddr(),
			RemotePort: key.PeerPort(),
		}
		if _, ok := stack.Lookup(t); !ok {
			continue // connection already closed
		}
		if err := stack.Rebind(t, b.aP); err != nil {
			return err
		}
		b.stats.TakenOver++
	}
	if err := b.host.Iface(b.ifIndex).ARP().Announce(b.aP); err != nil {
		return err
	}
	b.spans.MarkTakeover(b.host.Scheduler().Now())
	if b.OnTakeover != nil {
		b.OnTakeover()
	}
	// Resume sending: kick retransmission of anything lost during the
	// reconfiguration by letting the TCP timers run; nothing else to do.
	return nil
}
