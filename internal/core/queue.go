package core

import "tcpfailover/internal/tcp"

// byteQueue is one of the primary bridge's per-connection output queues
// (the "primary server output queue" and "secondary server output queue" of
// the paper's Figure 2). It stores payload bytes of the server-to-client
// stream, indexed by sequence number in the secondary's sequence space.
// Bytes below the floor — already sent to the client — are discarded on
// insert. Blocks are kept sorted and non-overlapping, preferring
// already-held bytes on overlap (the replicas produce identical streams, so
// the choice is immaterial unless divergence detection trips).
type byteQueue struct {
	floor  tcp.Seq // lowest sequence number of interest (= bridge sndMax)
	blocks []qblock
	bytes  int
}

type qblock struct {
	seq  tcp.Seq
	data []byte
}

func (b qblock) end() tcp.Seq { return b.seq.Add(len(b.data)) }

func newByteQueue(floor tcp.Seq) *byteQueue { return &byteQueue{floor: floor} }

// Len returns the number of buffered bytes.
func (q *byteQueue) Len() int { return q.bytes }

// Insert stores payload at seq, copying it and trimming anything below the
// floor or overlapping existing blocks.
func (q *byteQueue) Insert(seq tcp.Seq, payload []byte) {
	if len(payload) == 0 {
		return
	}
	if seq.Less(q.floor) {
		skip := q.floor.Diff(seq)
		if skip >= len(payload) {
			return
		}
		payload = payload[skip:]
		seq = q.floor
	}
	data := make([]byte, len(payload))
	copy(data, payload)
	nb := qblock{seq: seq, data: data}

	// A fresh slice: splitting the new block around an existing one appends
	// two elements per element read, which would corrupt an aliased
	// in-place rebuild.
	out := make([]qblock, 0, len(q.blocks)+2)
	inserted := false
	for _, blk := range q.blocks {
		switch {
		case nb.data == nil || blk.end().Leq(nb.seq):
			out = append(out, blk)
		case nb.end().Leq(blk.seq):
			if !inserted {
				out = append(out, nb)
				q.bytes += len(nb.data)
				inserted = true
			}
			out = append(out, blk)
		default:
			if nb.seq.Less(blk.seq) {
				left := qblock{seq: nb.seq, data: nb.data[:blk.seq.Diff(nb.seq)]}
				out = append(out, left)
				q.bytes += len(left.data)
			}
			out = append(out, blk)
			if nb.end().Greater(blk.end()) {
				nb = qblock{seq: blk.end(), data: nb.data[blk.end().Diff(nb.seq):]}
			} else {
				nb.data = nil
				inserted = true
			}
		}
	}
	if nb.data != nil && !inserted {
		out = append(out, nb)
		q.bytes += len(nb.data)
	}
	q.blocks = out
}

// Contiguous returns the bytes available starting exactly at the floor
// (without consuming). The returned slice aliases internal storage.
func (q *byteQueue) Contiguous() []byte {
	if len(q.blocks) == 0 || q.blocks[0].seq != q.floor {
		return nil
	}
	// Coalesce adjacent blocks lazily: the common case is a single block.
	b := q.blocks[0]
	if len(q.blocks) == 1 || q.blocks[1].seq != b.end() {
		return b.data
	}
	var out []byte
	next := q.floor
	for _, blk := range q.blocks {
		if blk.seq != next {
			break
		}
		out = append(out, blk.data...)
		next = blk.end()
	}
	return out
}

// Advance raises the floor by n bytes, discarding everything below it.
func (q *byteQueue) Advance(n int) {
	q.floor = q.floor.Add(n)
	out := q.blocks[:0]
	for _, blk := range q.blocks {
		if blk.end().Leq(q.floor) {
			q.bytes -= len(blk.data)
			continue
		}
		if blk.seq.Less(q.floor) {
			cut := q.floor.Diff(blk.seq)
			q.bytes -= cut
			blk = qblock{seq: q.floor, data: blk.data[cut:]}
		}
		out = append(out, blk)
	}
	q.blocks = out
}

// Floor returns the current floor sequence number.
func (q *byteQueue) Floor() tcp.Seq { return q.floor }
