package core

import "tcpfailover/internal/tcp"

// byteQueue is one of the primary bridge's per-connection output queues
// (the "primary server output queue" and "secondary server output queue" of
// the paper's Figure 2). It stores payload bytes of the server-to-client
// stream, indexed by sequence number in the secondary's sequence space.
// Bytes below the floor — already sent to the client — are discarded on
// insert. Blocks are kept sorted and non-overlapping, preferring
// already-held bytes on overlap (the replicas produce identical streams, so
// the choice is immaterial unless divergence detection trips).
type byteQueue struct {
	floor   tcp.Seq // lowest sequence number of interest (= bridge sndMax)
	blocks  []qblock
	bytes   int
	scratch []byte   // reusable coalescing buffer for Contiguous
	spare   []byte   // retired block storage, reused by Insert
	rebuild []qblock // reusable target for out-of-order list rebuilds
}

// newBlockData copies payload into owned storage, reusing the spare block
// array when it fits. In the steady state — insert, match, drain — the same
// array cycles between the spare slot and the single live block, so the
// per-segment allocation disappears.
func (q *byteQueue) newBlockData(payload []byte) []byte {
	if cap(q.spare) >= len(payload) {
		data := q.spare[:len(payload)]
		q.spare = nil
		copy(data, payload)
		return data
	}
	data := make([]byte, len(payload))
	copy(data, payload)
	return data
}

type qblock struct {
	seq  tcp.Seq
	data []byte
	// shared marks a block whose backing array is split between two list
	// entries (an insert split around an existing block). Shared storage
	// must never be retired to the spare slot while its sibling may live.
	shared bool
}

func (b qblock) end() tcp.Seq { return b.seq.Add(len(b.data)) }

func newByteQueue(floor tcp.Seq) *byteQueue { return &byteQueue{floor: floor} }

// reset re-initializes the queue to empty with the given floor. The bridges
// embed their queues by value inside slab records, so establishment calls
// reset instead of allocating a fresh queue; dropping the block slices here
// (rather than keeping them as scratch) is fine because slot reuse zeroes
// the record anyway.
func (q *byteQueue) reset(floor tcp.Seq) { *q = byteQueue{floor: floor} }

// Len returns the number of buffered bytes.
func (q *byteQueue) Len() int { return q.bytes }

// Insert stores payload at seq, copying it and trimming anything below the
// floor or overlapping existing blocks.
func (q *byteQueue) Insert(seq tcp.Seq, payload []byte) {
	if len(payload) == 0 {
		return
	}
	if seq.Less(q.floor) {
		skip := q.floor.Diff(seq)
		if skip >= len(payload) {
			return
		}
		payload = payload[skip:]
		seq = q.floor
	}
	// Fast path: in-order arrival at the tail, the common case while the
	// replicas stay in step. Extends the last block (or appends a new one
	// past a gap) without rebuilding the block list.
	if n := len(q.blocks); n == 0 || q.blocks[n-1].end().Leq(seq) {
		if n > 0 && q.blocks[n-1].end() == seq {
			q.blocks[n-1].data = append(q.blocks[n-1].data, payload...)
		} else {
			q.blocks = append(q.blocks, qblock{seq: seq, data: q.newBlockData(payload)})
		}
		q.bytes += len(payload)
		return
	}

	nb := qblock{seq: seq, data: q.newBlockData(payload)}

	// A separate slice: splitting the new block around an existing one
	// appends two elements per element read, which would corrupt an aliased
	// in-place rebuild. The old array becomes the next rebuild target.
	if cap(q.rebuild) < len(q.blocks)+2 {
		q.rebuild = make([]qblock, 0, 2*len(q.blocks)+2)
	}
	out := q.rebuild[:0]
	inserted := false
	for _, blk := range q.blocks {
		switch {
		case nb.data == nil || blk.end().Leq(nb.seq):
			out = append(out, blk)
		case nb.end().Leq(blk.seq):
			if !inserted {
				out = append(out, nb)
				q.bytes += len(nb.data)
				inserted = true
			}
			out = append(out, blk)
		default:
			if nb.seq.Less(blk.seq) {
				left := qblock{seq: nb.seq, data: nb.data[:blk.seq.Diff(nb.seq)], shared: nb.shared}
				if nb.end().Greater(blk.end()) {
					// The remainder survives past blk too: the two pieces
					// alias one array.
					left.shared = true
				}
				out = append(out, left)
				q.bytes += len(left.data)
			}
			out = append(out, blk)
			if nb.end().Greater(blk.end()) {
				shared := nb.shared || nb.seq.Less(blk.seq)
				nb = qblock{seq: blk.end(), data: nb.data[blk.end().Diff(nb.seq):], shared: shared}
			} else {
				nb.data = nil
				inserted = true
			}
		}
	}
	if nb.data != nil && !inserted {
		out = append(out, nb)
		q.bytes += len(nb.data)
	}
	q.rebuild = q.blocks[:0]
	q.blocks = out
}

// Contiguous returns the bytes available starting exactly at the floor
// (without consuming). The returned slice aliases internal storage and is
// valid only until the next Insert, Advance, or Contiguous call.
func (q *byteQueue) Contiguous() []byte {
	if len(q.blocks) == 0 || q.blocks[0].seq != q.floor {
		return nil
	}
	// Coalesce adjacent blocks lazily: the common case is a single block.
	b := q.blocks[0]
	if len(q.blocks) == 1 || q.blocks[1].seq != b.end() {
		return b.data
	}
	q.scratch = q.scratch[:0]
	next := q.floor
	for _, blk := range q.blocks {
		if blk.seq != next {
			break
		}
		q.scratch = append(q.scratch, blk.data...)
		next = blk.end()
	}
	return q.scratch
}

// Advance raises the floor by n bytes, discarding everything below it.
func (q *byteQueue) Advance(n int) {
	q.floor = q.floor.Add(n)
	var spare []byte
	out := q.blocks[:0]
	for _, blk := range q.blocks {
		if blk.end().Leq(q.floor) {
			q.bytes -= len(blk.data)
			// Retire the largest fully drained block's storage for reuse.
			// Split-aliased blocks are excluded: their array may still back
			// a surviving sibling.
			if !blk.shared && cap(blk.data) > cap(spare) {
				spare = blk.data[:0]
			}
			continue
		}
		if blk.seq.Less(q.floor) {
			cut := q.floor.Diff(blk.seq)
			q.bytes -= cut
			blk = qblock{seq: q.floor, data: blk.data[cut:], shared: blk.shared}
		}
		out = append(out, blk)
	}
	q.blocks = out
	if cap(spare) > cap(q.spare) {
		q.spare = spare
	}
}

// Floor returns the current floor sequence number.
func (q *byteQueue) Floor() tcp.Seq { return q.floor }
