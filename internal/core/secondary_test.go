package core

import (
	"testing"

	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/sim"
	"tcpfailover/internal/tcp"
)

// Unit-level tests of the secondary bridge's translations, using a bare
// host fixture and hand-built segments.

type secFixture struct {
	sched *sim.Scheduler
	host  *netstack.Host
	b     *SecondaryBridge
	sel   *Selector
	aP    ipv4.Addr
	aS    ipv4.Addr
	aC    ipv4.Addr
	seg   *ethernet.Segment
}

func newSecFixture(t *testing.T) *secFixture {
	t.Helper()
	f := &secFixture{
		sched: sim.New(1),
		aP:    ipv4.MustParseAddr("10.0.1.1"),
		aS:    ipv4.MustParseAddr("10.0.1.2"),
		aC:    ipv4.MustParseAddr("10.0.2.1"),
	}
	f.seg = ethernet.NewSegment(f.sched, ethernet.Config{})
	prefix := ipv4.PrefixFrom(ipv4.MustParseAddr("10.0.1.0"), 24)
	f.host = netstack.NewHost(f.sched, "s", netstack.DefaultProfile())
	f.host.AttachIface(f.seg, ethernet.MAC{2, 0, 0, 0, 0, 2}, f.aS, prefix)
	f.sel = NewSelector()
	f.sel.EnableServerPort(80)
	f.b = NewSecondaryBridge(f.host, 0, f.aP, f.aS, f.sel)
	return f
}

// callInbound invokes the installed inbound hook the way netstack would.
func (f *secFixture) callInbound(t *testing.T, hdr ipv4.Header, payload []byte) (netstack.InVerdict, ipv4.Header, []byte) {
	t.Helper()
	// The hook is installed on the host; reach it through a fake delivery.
	// netstack exposes no direct accessor, so rebuild the same call the
	// host makes by re-installing a capturing wrapper is overkill: the
	// bridge's handler is reachable via its unexported method.
	return f.b.inbound(0, hdr, payload)
}

func TestSecondaryInboundTranslation(t *testing.T) {
	f := newSecFixture(t)
	seg := &tcp.Segment{SrcPort: 49152, DstPort: 80, Seq: 100, Flags: tcp.FlagACK, Window: 65535}
	raw := tcp.Marshal(f.aC, f.aP, seg)
	hdr := ipv4.Header{Protocol: ipv4.ProtoTCP, Src: f.aC, Dst: f.aP}

	verdict, nh, np := f.callInbound(t, hdr, raw)
	if verdict != netstack.VerdictDeliver {
		t.Fatalf("verdict = %v, want Deliver", verdict)
	}
	if nh.Dst != f.aS {
		t.Errorf("dst = %v, want %v (aP -> aS translation)", nh.Dst, f.aS)
	}
	if tcp.ComputeChecksum(f.aC, f.aS, np) != 0 {
		t.Error("checksum not patched for the new pseudo-header")
	}
	if f.b.Stats().SnoopedIn != 1 {
		t.Errorf("SnoopedIn = %d", f.b.Stats().SnoopedIn)
	}
}

func TestSecondaryInboundIgnoresOtherTraffic(t *testing.T) {
	f := newSecFixture(t)

	// Not addressed to aP: untouched.
	seg := &tcp.Segment{SrcPort: 1, DstPort: 80, Flags: tcp.FlagACK}
	raw := tcp.Marshal(f.aC, f.aS, seg)
	verdict, _, _ := f.callInbound(t, ipv4.Header{Protocol: ipv4.ProtoTCP, Src: f.aC, Dst: f.aS}, raw)
	if verdict != netstack.VerdictPass {
		t.Errorf("own traffic verdict = %v, want Pass", verdict)
	}

	// Addressed to aP but on a non-failover port: untouched.
	seg = &tcp.Segment{SrcPort: 1, DstPort: 9999, Flags: tcp.FlagACK}
	raw = tcp.Marshal(f.aC, f.aP, seg)
	verdict, nh, _ := f.callInbound(t, ipv4.Header{Protocol: ipv4.ProtoTCP, Src: f.aC, Dst: f.aP}, raw)
	if verdict != netstack.VerdictPass || nh.Dst != f.aP {
		t.Errorf("non-failover traffic translated (verdict=%v dst=%v)", verdict, nh.Dst)
	}
}

func TestSecondaryInboundClampsSynMSS(t *testing.T) {
	f := newSecFixture(t)
	seg := &tcp.Segment{
		SrcPort: 49152, DstPort: 80, Seq: 1, Flags: tcp.FlagSYN,
		Window: 65535, Options: []tcp.Option{tcp.MSSOption(1460)},
	}
	raw := tcp.Marshal(f.aC, f.aP, seg)
	_, _, np := f.callInbound(t, ipv4.Header{Protocol: ipv4.ProtoTCP, Src: f.aC, Dst: f.aP}, raw)
	got, err := tcp.Unmarshal(f.aC, f.aS, np, true)
	if err != nil {
		t.Fatal(err)
	}
	if mss, _ := got.MSS(); mss != 1452 {
		t.Errorf("MSS = %d, want 1452 (clamped by the diversion overhead)", mss)
	}
}

func TestSecondaryOutboundDiversion(t *testing.T) {
	f := newSecFixture(t)
	var sentTo ipv4.Addr
	var sentRaw []byte
	f.host.AddPacketTap(func(dir string, hdr ipv4.Header, payload []byte) {
		if dir == "tx" && hdr.Protocol == ipv4.ProtoTCP {
			sentTo = hdr.Dst
			sentRaw = append([]byte(nil), payload...)
		}
	})
	seg := &tcp.Segment{SrcPort: 80, DstPort: 49152, Seq: 1000, Flags: tcp.FlagACK | tcp.FlagPSH,
		Window: 65535, Payload: []byte("reply")}
	raw := tcp.Marshal(f.aS, f.aC, seg)
	if consumed := f.b.outbound(f.aS, f.aC, raw); !consumed {
		t.Fatal("failover segment not consumed by the diversion")
	}
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if sentTo != f.aP {
		t.Fatalf("diverted to %v, want %v", sentTo, f.aP)
	}
	if tcp.ComputeChecksum(f.aS, f.aP, sentRaw) != 0 {
		t.Error("diverted segment checksum invalid under the new pseudo-header")
	}
	stripped, orig, ok := tcp.StripOrigDstOption(sentRaw)
	if !ok || orig != f.aC {
		t.Fatalf("original destination = %v (ok=%v), want %v", orig, ok, f.aC)
	}
	if string(tcp.RawPayload(stripped)) != "reply" {
		t.Error("payload damaged by the diversion")
	}
}

func TestSecondaryOutboundPassesNonFailover(t *testing.T) {
	f := newSecFixture(t)
	seg := &tcp.Segment{SrcPort: 9999, DstPort: 49152, Flags: tcp.FlagACK}
	raw := tcp.Marshal(f.aS, f.aC, seg)
	if f.b.outbound(f.aS, f.aC, raw) {
		t.Error("non-failover segment consumed")
	}
}

func TestSecondaryRetargetAndTakeoverGating(t *testing.T) {
	f := newSecFixture(t)
	other := ipv4.MustParseAddr("10.0.1.9")
	f.b.SetUpstream(other)
	var sentTo ipv4.Addr
	f.host.AddPacketTap(func(dir string, hdr ipv4.Header, payload []byte) {
		if dir == "tx" && hdr.Protocol == ipv4.ProtoTCP {
			sentTo = hdr.Dst
		}
	})
	seg := &tcp.Segment{SrcPort: 80, DstPort: 49152, Flags: tcp.FlagACK}
	raw := tcp.Marshal(f.aS, f.aC, seg)
	f.b.outbound(f.aS, f.aC, raw)
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if sentTo != other {
		t.Errorf("diverted to %v after retarget, want %v", sentTo, other)
	}

	// After takeover every translation is disabled.
	if err := f.b.Takeover(); err != nil {
		t.Fatal(err)
	}
	if f.b.Active() {
		t.Fatal("bridge still active")
	}
	if f.host.Iface(0).NIC().Promiscuous() {
		t.Error("promiscuous mode still on after takeover (step 2)")
	}
	if !f.host.Owns(f.aP) {
		t.Error("service address not taken over (step 5)")
	}
	raw = tcp.Marshal(f.aC, f.aP, &tcp.Segment{SrcPort: 49152, DstPort: 80, Flags: tcp.FlagACK})
	verdict, nh, _ := f.callInbound(t, ipv4.Header{Protocol: ipv4.ProtoTCP, Src: f.aC, Dst: f.aP}, raw)
	if verdict != netstack.VerdictPass || nh.Dst != f.aP {
		t.Error("inbound translation still applied after takeover (step 3)")
	}
	raw = tcp.Marshal(f.aP, f.aC, &tcp.Segment{SrcPort: 80, DstPort: 49152, Flags: tcp.FlagACK})
	if f.b.outbound(f.aP, f.aC, raw) {
		t.Error("outbound diversion still applied after takeover (step 4)")
	}
	// Takeover is idempotent.
	if err := f.b.Takeover(); err != nil {
		t.Fatal(err)
	}
}
