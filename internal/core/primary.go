package core

import (
	"bytes"
	"slices"
	"time"

	"tcpfailover/internal/flowtab"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/netbuf"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/sim"
	"tcpfailover/internal/tcp"
)

// PrimaryConfig tunes the primary bridge.
type PrimaryConfig struct {
	// VerifyReplicaOutput compares the matched bytes from the two replicas
	// and counts divergences (a replica-determinism check the paper assumes
	// rather than enforces). The secondary's bytes win, since the client's
	// sequence numbers are synchronized to the secondary.
	VerifyReplicaOutput bool
	// DefaultMSS is used when a SYN carries no MSS option. Default 536.
	DefaultMSS uint16
	// GCLinger keeps closed-connection records around briefly before
	// deletion. Default 0 (delete immediately, as the paper describes; the
	// bridge synthesizes ACKs for late FINs afterward).
	GCLinger time.Duration
	// ValidateSeq enables in-window sequence validation on the bridge's
	// client-facing and diverted paths: a client RST tears bridge state
	// down only when its sequence number sits within one window of the
	// combined acknowledgment, client data is answered or forwarded only
	// within one window of the same horizon, and a diverted RST from the
	// secondary must land within one window of the release point. Off by
	// default (the paper's bridge trusts the wire); the E11 adversary
	// experiment measures the difference. Out-of-horizon segments are
	// dropped and counted in bridge_seq_invalid_drops_total.
	ValidateSeq bool
	// MaxConns bounds the tracked-connection table. When the cap is
	// exceeded the least-recently-touched connection is evicted (counted in
	// bridge_flow_evictions_total), which keeps a SYN flood of spoofed
	// clients from growing the table without limit. 0 means unbounded (the
	// historical behavior, with zero bookkeeping cost).
	MaxConns int
}

func (c PrimaryConfig) withDefaults() PrimaryConfig {
	if c.DefaultMSS == 0 {
		c.DefaultMSS = 536
	}
	return c
}

// PrimaryStats counts the primary bridge's work.
type PrimaryStats struct {
	SegmentsFromPrimary      int64
	SegmentsFromSecondary    int64
	SegmentsToClient         int64
	BytesMatched             int64
	EmptyAcks                int64
	RetransmissionsForwarded int64
	Divergences              int64
	LateFinAcks              int64
	ConnsOpened              int64
	ConnsClosed              int64
	BadChecksumDrops         int64
	ConnsEvicted             int64 // LRU evictions under the MaxConns cap
	SeqInvalidDrops          int64 // segments rejected by in-window validation
	MalformedDrops           int64 // frames with an inconsistent data offset
}

// seqHorizon is the validation window ValidateSeq applies around the
// bridge's acknowledgment and release points: one maximum unscaled TCP
// window. A blind off-path forger must land within it, which shrinks the
// per-probe success probability from certainty (any RST tore state down)
// to 2^16/2^32.
const seqHorizon = 65536

// pconn is the primary bridge's per-connection state: the two output
// queues, the sequence-number offset, and the acknowledgment/window
// bookkeeping of sections 3 and 7 of the paper.
//
// Records live by value in the bridge's slab, addressed by slot index, and
// hold no pointers to other records: the LRU links are slot indices, and
// the output queues are embedded values. At a million connections the
// garbage collector therefore sees one conns table and one slab — not a
// million pconns each dragging two queue objects (DESIGN.md §14).
type pconn struct {
	key             TupleKey
	self            int32 // own slot index in the bridge's slab
	serverInitiated bool

	// Establishment.
	seqPInit, seqSInit tcp.Seq
	pInitSet, sInitSet bool
	delta              tcp.Seq // seqP,init - seqS,init
	deltaKnown         bool
	mssP, mssS         uint16
	synWinP, synWinS   uint16
	combinedSynSent    bool

	// Server-to-client stream, in the secondary's sequence space.
	sndMax       tcp.Seq // next byte to release to the client
	pq, sq       byteQueue
	pFin, sFin   tcp.Seq
	pFinSet      bool
	sFinSet      bool
	finSent      bool
	finSeq       tcp.Seq
	finAckedByCl bool

	// Client-stream acknowledgment state from each replica.
	ackP, ackS       tcp.Seq
	ackPSet, ackSSet bool
	winP, winS       uint16
	lastAckSent      tcp.Seq
	lastAckValid     bool
	lastWinSent      uint16

	// Termination bookkeeping (section 8).
	clientFinSeen bool
	clientFinEnd  tcp.Seq // sequence number just past the client's FIN

	// Intrusive LRU links (slot indices, -1 = none), maintained only under
	// PrimaryConfig.MaxConns — no allocation and no cost on the unbounded
	// default path.
	lruPrev, lruNext int32
}

func (c *pconn) effMSS(def uint16) int {
	m := c.mssP
	if c.mssS != 0 && (m == 0 || c.mssS < m) {
		m = c.mssS
	}
	if m == 0 {
		m = def
	}
	return int(m)
}

// PrimaryBridge is the bridge sublayer on the primary server P.
type PrimaryBridge struct {
	host   *netstack.Host
	sched  *sim.Scheduler
	aP, aS ipv4.Addr
	sel    *Selector
	cfg    PrimaryConfig

	// conns maps TupleKey to a slot index in slots; together they replace
	// the map[TupleKey]*pconn a pointer-chasing design would use.
	conns    flowtab.Table
	slots    flowtab.Slab[pconn]
	degraded bool // after secondary failure (section 6)

	// LRU list over conns (slot indices, -1 = none), most-recently-touched
	// first; only maintained when cfg.MaxConns > 0.
	lruHead, lruTail int32

	// keyScratch is the reusable buffer for the sorted-key reconfiguration
	// walks, so HandleSecondaryFailure does not allocate O(conns) memory in
	// the middle of a takeover.
	keyScratch []uint64

	// emit transports a finished client-bound segment, taking ownership of
	// the packet buffer. The default sends it directly; a daisy-chained
	// middle server overrides it to divert the merged stream to its own
	// upstream primary.
	emit func(client ipv4.Addr, pkt *netbuf.Buffer)

	// emitSeg and emitPayload are reusable scratch for the steady-state
	// emit paths: pump and the retransmission forwarding build each
	// outgoing segment in place instead of allocating one per segment.
	// Safe because emitToClient marshals into a packet buffer before
	// returning, so nothing aliases the scratch across segments.
	emitSeg     tcp.Segment
	emitPayload []byte

	stats PrimaryStats
	m     primaryMetrics
	// OnDivergence, if set, is called when replica outputs differ.
	OnDivergence func(key TupleKey, seq tcp.Seq)
}

// NewPrimaryBridge installs the bridge on the primary host.
func NewPrimaryBridge(host *netstack.Host, primaryAddr, secondaryAddr ipv4.Addr, sel *Selector, cfg PrimaryConfig) *PrimaryBridge {
	b := NewPrimaryBridgeCore(host, primaryAddr, secondaryAddr, sel, cfg)
	host.SetInboundHook(b.Inbound)
	host.SetOutboundHook(b.Outbound)
	return b
}

// NewPrimaryBridgeCore builds the bridge without installing its hooks on
// the host; a composing bridge (the daisy chain's middle server) wires the
// Inbound/Outbound handlers itself.
func NewPrimaryBridgeCore(host *netstack.Host, primaryAddr, secondaryAddr ipv4.Addr, sel *Selector, cfg PrimaryConfig) *PrimaryBridge {
	b := &PrimaryBridge{
		host:    host,
		sched:   host.Scheduler(),
		aP:      primaryAddr,
		aS:      secondaryAddr,
		sel:     sel,
		cfg:     cfg.withDefaults(),
		lruHead: -1,
		lruTail: -1,
		m:       newPrimaryMetrics(nil, ""),
	}
	b.emit = func(client ipv4.Addr, pkt *netbuf.Buffer) {
		_ = b.host.SendIPFastBuf(b.aP, client, ipv4.ProtoTCP, pkt)
	}
	return b
}

// Inbound is the bridge's inbound interposition handler (exported for
// composition; NewPrimaryBridge installs it automatically).
func (b *PrimaryBridge) Inbound(ifIndex int, hdr ipv4.Header, payload []byte) (netstack.InVerdict, ipv4.Header, []byte) {
	return b.inbound(ifIndex, hdr, payload)
}

// Outbound is the bridge's outbound interposition handler.
func (b *PrimaryBridge) Outbound(src, dst ipv4.Addr, segment []byte) bool {
	return b.outbound(src, dst, segment)
}

// SetEmitFunc overrides the transport for finished client-bound segments.
// The function takes ownership of the packet buffer and must release it or
// pass it on.
func (b *PrimaryBridge) SetEmitFunc(f func(client ipv4.Addr, pkt *netbuf.Buffer)) { b.emit = f }

// SetLocalAddr re-keys the bridge's client-facing address; a promoted
// middle server switches to the failed head's address during takeover.
func (b *PrimaryBridge) SetLocalAddr(a ipv4.Addr) { b.aP = a }

// LocalAddr returns the bridge's client-facing address.
func (b *PrimaryBridge) LocalAddr() ipv4.Addr { return b.aP }

// SetMatchingPeer re-points the bridge at the replica now feeding it (used
// when a daisy chain loses its middle and the tail attaches directly).
func (b *PrimaryBridge) SetMatchingPeer(a ipv4.Addr) { b.aS = a }

// Stats returns a copy of the bridge counters. BadChecksumDrops lives in
// the obs registry (the bridge's counter handle is its source of truth);
// the returned struct is filled from it for API compatibility.
func (b *PrimaryBridge) Stats() PrimaryStats {
	s := b.stats
	s.BadChecksumDrops = b.m.badChecksumDrops.Value()
	s.SeqInvalidDrops = b.m.seqInvalidDrops.Value()
	s.MalformedDrops = b.m.malformedDrops.Value()
	return s
}

// Degraded reports whether the bridge has switched to single-server
// operation after a secondary failure.
func (b *PrimaryBridge) Degraded() bool { return b.degraded }

// Conns returns the number of tracked connections.
func (b *PrimaryBridge) Conns() int { return b.conns.Len() }

// lookup returns the live record for key, or nil. The returned pointer is
// valid until the next slot allocation (b.conn on a miss).
func (b *PrimaryBridge) lookup(key TupleKey) *pconn {
	if i, ok := b.conns.Get(uint64(key)); ok {
		return b.slots.At(i)
	}
	return nil
}

func (b *PrimaryBridge) conn(key TupleKey) *pconn {
	if c := b.lookup(key); c != nil {
		return c
	}
	idx := b.slots.Alloc()
	c := b.slots.At(idx)
	c.key = key
	c.self = int32(idx)
	c.lruPrev, c.lruNext = -1, -1
	b.conns.Put(uint64(key), idx)
	b.stats.ConnsOpened++
	if b.cfg.MaxConns > 0 {
		b.lruPush(c)
		for b.conns.Len() > b.cfg.MaxConns && b.lruTail >= 0 && b.lruTail != c.self {
			victim := b.slots.At(uint32(b.lruTail))
			b.removeConn(victim)
			b.stats.ConnsEvicted++
			b.m.flowEvictions.Inc()
		}
	}
	return c
}

// --- LRU list, maintained only when cfg.MaxConns > 0 -------------------------

func (b *PrimaryBridge) lruPush(c *pconn) {
	c.lruPrev, c.lruNext = -1, b.lruHead
	if b.lruHead >= 0 {
		b.slots.At(uint32(b.lruHead)).lruPrev = c.self
	}
	b.lruHead = c.self
	if b.lruTail < 0 {
		b.lruTail = c.self
	}
}

func (b *PrimaryBridge) lruUnlink(c *pconn) {
	if c.lruPrev >= 0 {
		b.slots.At(uint32(c.lruPrev)).lruNext = c.lruNext
	} else if b.lruHead == c.self {
		b.lruHead = c.lruNext
	}
	if c.lruNext >= 0 {
		b.slots.At(uint32(c.lruNext)).lruPrev = c.lruPrev
	} else if b.lruTail == c.self {
		b.lruTail = c.lruPrev
	}
	c.lruPrev, c.lruNext = -1, -1
}

// lruTouch moves c to the front: legitimate traffic keeps its connection
// fresh, so a SYN flood's idle embryos are the ones the cap evicts.
func (b *PrimaryBridge) lruTouch(c *pconn) {
	if b.cfg.MaxConns == 0 || b.lruHead == c.self {
		return
	}
	b.lruUnlink(c)
	b.lruPush(c)
}

// --- outbound: segments from the primary's own TCP layer --------------------

func (b *PrimaryBridge) outbound(src, dst ipv4.Addr, segment []byte) bool {
	key := MakeTupleKey(dst, tcp.RawDstPort(segment), tcp.RawSrcPort(segment))
	// Steady state is a single table hit: a tracked connection implies the
	// selector matched when the record was created, so the (up to three
	// probe) selector runs only on a conns miss.
	c := b.lookup(key)
	exists := c != nil
	if !exists && !b.sel.Match(key) {
		return false
	}
	b.stats.SegmentsFromPrimary++
	flags := tcp.RawFlags(segment)
	if exists {
		b.lruTouch(c)
	}
	if !exists {
		// Only a SYN may create bridge state (a server-initiated
		// connection, section 7.2). Anything else for an unknown
		// connection is post-cleanup traffic: let a refusal RST through
		// unchanged, swallow the rest.
		if !flags.Has(tcp.FlagSYN) {
			if flags.Has(tcp.FlagRST) && flags.Has(tcp.FlagACK) {
				_ = b.host.SendIPFast(b.aP, dst, ipv4.ProtoTCP, segment)
			}
			return true
		}
		c = b.conn(key)
	}

	switch {
	case flags.Has(tcp.FlagSYN):
		seg, err := tcp.Unmarshal(src, dst, segment, false)
		if err != nil {
			return true
		}
		if !c.pInitSet {
			c.pInitSet = true
			c.seqPInit = seg.Seq
			if mss, ok := seg.MSS(); ok {
				c.mssP = mss
			} else {
				c.mssP = b.cfg.DefaultMSS
			}
			c.synWinP = seg.Window
		}
		c.winP = seg.Window
		if flags.Has(tcp.FlagACK) {
			c.ackP = seg.Ack
			c.ackPSet = true
		} else {
			c.serverInitiated = true
		}
		if b.degraded && !c.sInitSet {
			b.adoptPrimaryAsSecondary(c)
		}
		b.maybeSendCombinedSyn(c)
		return true

	case flags.Has(tcp.FlagRST):
		b.forwardRST(c, segment, true)
		return true

	default:
		if !c.deltaKnown {
			return true // cannot translate yet; TCP will retransmit
		}
		sSeq := tcp.RawSeq(segment) - c.delta
		b.m.seqTranslations.Inc()
		if flags.Has(tcp.FlagACK) {
			c.ackP = tcp.RawAck(segment)
			c.ackPSet = true
		}
		c.winP = tcp.RawWindow(segment)
		if b.degraded {
			b.forwardDegraded(c, sSeq, segment, flags)
			return true
		}
		payload := tcp.RawPayload(segment)
		b.ingestServerSegment(c, sSeq, payload, flags, true)
		b.pump(c)
		return true
	}
}

// verifyDiverted checks the TCP checksum of a diverted segment before the
// demultiplexer consumes it. Diverted segments bypass the local TCP layer's
// verification, and the bridge re-checksums the bytes it merges toward the
// client — so without this check, a bit flipped on the server LAN would be
// laundered into a validly-checksummed client segment. Dropping the
// segment instead lets the secondary's TCP retransmit it.
func (b *PrimaryBridge) verifyDiverted(hdr ipv4.Header, payload []byte) bool {
	if tcp.ComputeChecksum(hdr.Src, hdr.Dst, payload) != 0 {
		b.m.badChecksumDrops.Inc()
		return false
	}
	return true
}

// --- inbound: datagrams addressed to aP --------------------------------------

func (b *PrimaryBridge) inbound(ifIndex int, hdr ipv4.Header, payload []byte) (netstack.InVerdict, ipv4.Header, []byte) {
	if len(payload) < tcp.HeaderLen {
		return netstack.VerdictPass, hdr, payload
	}
	if !tcp.RawSane(payload) {
		// A forged data offset would send the raw option/payload slicing
		// below out of range. Endpoints are protected by UnmarshalInto's
		// validation; the bridge works on the raw frame, so it drops here.
		b.m.malformedDrops.Inc()
		return netstack.VerdictDrop, hdr, payload
	}
	if hdr.Dst != b.aP {
		// Segments diverted to another address this host owns (a chain
		// promotion in flight) still belong to the demultiplexer; anything
		// else is not ours. The checksum must be verified before the strip:
		// the in-place strip cancels corrupted option bytes out of the sum.
		if tcp.HasOrigDstOption(payload) && b.host.Owns(hdr.Dst) {
			if !b.verifyDiverted(hdr, payload) {
				return netstack.VerdictDrop, hdr, payload
			}
			if stripped, orig, ok := tcp.StripOrigDstOptionInPlace(payload); ok {
				if !b.degraded {
					b.fromSecondary(orig, stripped)
				}
				return netstack.VerdictDrop, hdr, payload
			}
		}
		return netstack.VerdictPass, hdr, payload
	}
	if tcp.HasOrigDstOption(payload) {
		// Demultiplexer: a diverted segment from the secondary. The payload
		// is this station's private copy, so the option is stripped in
		// place — no per-segment copy.
		if !b.verifyDiverted(hdr, payload) {
			return netstack.VerdictDrop, hdr, payload
		}
		stripped, orig, _ := tcp.StripOrigDstOptionInPlace(payload)
		if !b.degraded {
			b.fromSecondary(orig, stripped)
		}
		return netstack.VerdictDrop, hdr, payload
	}

	// A client segment. A tracked connection implies a past selector match,
	// so steady state is one table hit.
	key := MakeTupleKey(hdr.Src, tcp.RawSrcPort(payload), tcp.RawDstPort(payload))
	flags := tcp.RawFlags(payload)
	c := b.lookup(key)
	if c == nil {
		if !b.sel.Match(key) {
			return netstack.VerdictPass, hdr, payload
		}
		switch {
		case flags.Has(tcp.FlagSYN) && !flags.Has(tcp.FlagACK):
			c = b.conn(key) // new client-initiated connection
			_ = c
		case flags.Has(tcp.FlagFIN):
			// Retransmitted FIN after the bridge deleted the connection:
			// acknowledge it directly (section 8).
			b.synthesizeAck(key.PeerAddr(), key.PeerPort(), b.aP, key.LocalPort(),
				tcp.RawAck(payload),
				tcp.RawSeq(payload).Add(len(tcp.RawPayload(payload))+1))
			b.stats.LateFinAcks++
			return netstack.VerdictDrop, hdr, payload
		}
		return netstack.VerdictPass, hdr, payload
	}

	b.lruTouch(c)
	if flags.Has(tcp.FlagACK) && c.deltaKnown {
		ackS := tcp.RawAck(payload)
		if c.finSent && ackS.Greater(c.finSeq) {
			c.finAckedByCl = true
		}
		// Translate the acknowledgment into the primary's sequence space so
		// P's TCP layer recognizes it. (The client acknowledges sequence
		// numbers in the secondary's space.)
		tcp.SetRawAck(payload, ackS+c.delta)
		b.m.seqTranslations.Inc()
	}
	if flags.Has(tcp.FlagFIN) {
		c.clientFinSeen = true
		c.clientFinEnd = tcp.RawSeq(payload).Add(len(tcp.RawPayload(payload)) + 1)
	}
	if flags.Has(tcp.FlagRST) {
		if b.cfg.ValidateSeq && c.combinedSynSent && (c.ackPSet || c.ackSSet) &&
			!tcp.RawSeq(payload).InWindow(c.minAck(b.degraded), seqHorizon) {
			// A blind off-path RST: outside the horizon around the combined
			// acknowledgment it cannot be the client's, and letting it
			// through would tear down bridge state the replicas still hold.
			b.m.seqInvalidDrops.Inc()
			return netstack.VerdictDrop, hdr, payload
		}
		// Both replicas' TCP layers observe the reset; nothing remains for
		// the bridge to reconcile.
		b.removeConn(c)
		return netstack.VerdictPass, hdr, payload
	}
	if n := len(tcp.RawPayload(payload)); n > 0 && c.combinedSynSent && c.lastAckValid {
		if b.cfg.ValidateSeq &&
			!tcp.RawSeq(payload).Add(n).InWindow(c.minAck(b.degraded).Add(-seqHorizon), 3*seqHorizon) {
			// Stale or far-future data: answering it would hand a blind
			// forger an acknowledgment reflector, so it is dropped instead.
			b.m.seqInvalidDrops.Inc()
			return netstack.VerdictDrop, hdr, payload
		}
		if tcp.RawSeq(payload).Add(n).Leq(c.minAck(b.degraded)) {
			// The client retransmits data both replicas have already
			// acknowledged — it missed the acknowledgment. The replicas'
			// duplicate ACKs would not advance the combined minimum, so the
			// bridge answers directly (the duplicate-ACK analogue of the
			// section 4 retransmission forwarding).
			b.stats.EmptyAcks++
			out := &b.emitSeg
			*out = tcp.Segment{
				Seq:    c.sndMax,
				Ack:    c.minAck(b.degraded),
				Flags:  tcp.FlagACK,
				Window: c.minWin(b.degraded),
			}
			b.emitToClient(c, out)
		}
	}
	b.maybeGC(c)
	return netstack.VerdictPass, hdr, payload
}

// forwardDegraded implements section 6 step 3: after the secondary fails,
// segments from the primary's TCP layer are no longer delayed and carry the
// primary's own acknowledgment and window, but the bridge must continue to
// subtract Delta-seq from outgoing sequence numbers forever, because the
// client's TCP layer is synchronized to the secondary's sequence space.
func (b *PrimaryBridge) forwardDegraded(c *pconn, sSeq tcp.Seq, segment []byte, flags tcp.Flags) {
	tcp.SetRawSeq(segment, sSeq)
	end := sSeq.Add(len(tcp.RawPayload(segment)))
	if flags.Has(tcp.FlagFIN) {
		end = end.Add(1)
		if !c.finSent {
			c.finSent = true
			c.finSeq = end.Add(-1)
		}
	}
	if end.Greater(c.sndMax) {
		c.sndMax = end
	}
	if flags.Has(tcp.FlagACK) {
		c.lastAckSent = tcp.RawAck(segment)
		c.lastAckValid = true
		c.lastWinSent = tcp.RawWindow(segment)
	}
	b.stats.SegmentsToClient++
	// The segment slice is borrowed from the outbound hook; the emit
	// function takes ownership of its argument, so hand it a pooled copy.
	b.emit(c.key.PeerAddr(), netbuf.From(segment))
}

// fromSecondary processes a diverted segment whose original destination was
// orig (the client address).
func (b *PrimaryBridge) fromSecondary(orig ipv4.Addr, segment []byte) {
	b.stats.SegmentsFromSecondary++
	key := MakeTupleKey(orig, tcp.RawDstPort(segment), tcp.RawSrcPort(segment))
	flags := tcp.RawFlags(segment)
	c := b.lookup(key)
	exists := c != nil
	if !exists {
		switch {
		case flags.Has(tcp.FlagFIN) || len(tcp.RawPayload(segment)) > 0:
			// The secondary retransmits data or its FIN because it missed
			// the client's closing ACKs. The bridge only deletes its state
			// once the client has acknowledged everything, so it answers
			// these retransmissions on the client's behalf (section 8).
			end := tcp.RawSeq(segment).Add(len(tcp.RawPayload(segment)))
			if flags.Has(tcp.FlagFIN) {
				end = end.Add(1)
			}
			b.synthesizeAck(orig, key.PeerPort(), b.aS, key.LocalPort(),
				tcp.RawAck(segment), end)
			b.stats.LateFinAcks++
			return
		case flags.Has(tcp.FlagSYN):
			c = b.conn(key)
		default:
			// A delayed pure ACK: creating state for it would swallow
			// subsequent retransmissions.
			return
		}
	}
	if exists {
		b.lruTouch(c)
	}

	switch {
	case flags.Has(tcp.FlagSYN):
		seg, err := tcp.Unmarshal(b.aS, orig, segment, false)
		if err != nil {
			return
		}
		if !c.sInitSet {
			c.sInitSet = true
			c.seqSInit = seg.Seq
			if mss, ok := seg.MSS(); ok {
				c.mssS = mss
			} else {
				c.mssS = b.cfg.DefaultMSS
			}
			c.synWinS = seg.Window
		}
		c.winS = seg.Window
		if flags.Has(tcp.FlagACK) {
			c.ackS = seg.Ack
			c.ackSSet = true
		}
		b.maybeSendCombinedSyn(c)

	case flags.Has(tcp.FlagRST):
		if b.cfg.ValidateSeq && c.deltaKnown &&
			!tcp.RawSeq(segment).InWindow(c.sndMax.Add(-seqHorizon), 2*seqHorizon) {
			// A diverted RST is forged unless it lands near the release
			// point: the secondary resets in its own sequence space, which
			// the bridge tracks as sndMax.
			b.m.seqInvalidDrops.Inc()
			return
		}
		b.forwardRST(c, segment, false)

	default:
		if !c.deltaKnown {
			return
		}
		if flags.Has(tcp.FlagACK) {
			c.ackS = tcp.RawAck(segment)
			c.ackSSet = true
		}
		c.winS = tcp.RawWindow(segment)
		b.ingestServerSegment(c, tcp.RawSeq(segment), tcp.RawPayload(segment), flags, false)
		b.pump(c)
	}
}

// ingestServerSegment handles a data-bearing (or FIN-bearing) segment from
// either replica, already expressed in the secondary's sequence space.
func (b *PrimaryBridge) ingestServerSegment(c *pconn, sSeq tcp.Seq, payload []byte, flags tcp.Flags, fromPrimary bool) {
	if flags.Has(tcp.FlagFIN) {
		fin := sSeq.Add(len(payload))
		if fromPrimary {
			c.pFin, c.pFinSet = fin, true
		} else {
			c.sFin, c.sFinSet = fin, true
		}
	}
	end := sSeq.Add(len(payload))
	if flags.Has(tcp.FlagFIN) {
		end = end.Add(1)
	}
	if (len(payload) > 0 || flags.Has(tcp.FlagFIN)) && end.Leq(c.sndMax) {
		// A retransmission of bytes already released: the bridge receives
		// only a single copy, so it must send it immediately (section 4).
		b.stats.RetransmissionsForwarded++
		// payload aliases the inbound frame's private copy; emitToClient
		// marshals it into a packet buffer before returning, so no copy.
		out := &b.emitSeg
		*out = tcp.Segment{
			Seq:     sSeq,
			Ack:     c.minAck(b.degraded),
			Flags:   tcp.FlagACK | tcp.FlagPSH,
			Window:  c.minWin(b.degraded),
			Payload: payload,
		}
		if flags.Has(tcp.FlagFIN) {
			out.Flags |= tcp.FlagFIN
		}
		b.emitToClient(c, out)
		return
	}
	if len(payload) > 0 {
		q := &c.sq
		if fromPrimary {
			q = &c.pq
		}
		// Insert trims duplicates below the floor, so the gauge tracks the
		// realized growth rather than the raw payload length.
		before := q.Len()
		q.Insert(sSeq, payload)
		b.m.queueBytes.Add(int64(q.Len() - before))
	}
}

// pump constructs new client segments from matching queued payload
// (Figure 2) and forwards acknowledgment/window advances.
func (b *PrimaryBridge) pump(c *pconn) {
	if !c.deltaKnown {
		return
	}
	mss := c.effMSS(b.cfg.DefaultMSS)
	for {
		pb := c.pq.Contiguous()
		sb := c.sq.Contiguous()
		n := min(len(pb), len(sb), mss)
		if n > 0 {
			if b.cfg.VerifyReplicaOutput && !bytes.Equal(pb[:n], sb[:n]) {
				b.stats.Divergences++
				if b.OnDivergence != nil {
					b.OnDivergence(c.key, c.sndMax)
				}
			}
			// The queue block may be recycled by Advance, so the released
			// bytes move into the bridge's reusable scratch first.
			b.emitPayload = append(b.emitPayload[:0], sb[:n]...)
			seq := c.sndMax
			b.qAdvance(c, n)
			c.sndMax = c.sndMax.Add(n)
			b.stats.BytesMatched += int64(n)
			b.m.matchedBytes.Add(int64(n))
			out := &b.emitSeg
			*out = tcp.Segment{
				Seq:     seq,
				Ack:     c.minAck(false),
				Flags:   tcp.FlagACK | tcp.FlagPSH,
				Window:  c.minWin(false),
				Payload: b.emitPayload,
			}
			if b.finsMatchedAt(c, c.sndMax) && c.pq.Len() == 0 && c.sq.Len() == 0 {
				out.Flags |= tcp.FlagFIN
				c.finSent = true
				c.finSeq = c.sndMax
				c.sndMax = c.sndMax.Add(1)
			}
			b.emitToClient(c, out)
			continue
		}
		if b.finsMatchedAt(c, c.sndMax) && !c.finSent {
			out := &b.emitSeg
			*out = tcp.Segment{
				Seq:    c.sndMax,
				Ack:    c.minAck(false),
				Flags:  tcp.FlagACK | tcp.FlagFIN,
				Window: c.minWin(false),
			}
			c.finSent = true
			c.finSeq = c.sndMax
			c.sndMax = c.sndMax.Add(1)
			b.emitToClient(c, out)
			continue
		}
		break
	}
	b.maybeEmitAck(c)
	b.maybeGC(c)
}

func (b *PrimaryBridge) finsMatchedAt(c *pconn, at tcp.Seq) bool {
	if c.finSent {
		return false
	}
	if b.degraded {
		return c.pFinSet && c.pFin == at
	}
	return c.pFinSet && c.sFinSet && c.pFin == at && c.sFin == at
}

func (c *pconn) minAck(degraded bool) tcp.Seq {
	switch {
	case degraded || !c.ackSSet:
		return c.ackP
	case !c.ackPSet:
		return c.ackS
	default:
		return tcp.MinSeq(c.ackP, c.ackS)
	}
}

func (c *pconn) minWin(degraded bool) uint16 {
	if degraded {
		return c.winP
	}
	return min(c.winP, c.winS)
}

// maybeEmitAck constructs a payload-less segment when the combined
// acknowledgment advances (or the combined window reopens), preventing the
// deadlock the paper describes when the server applications send no data.
func (b *PrimaryBridge) maybeEmitAck(c *pconn) {
	if !c.combinedSynSent {
		return
	}
	if !b.degraded && !(c.ackPSet && c.ackSSet) {
		return
	}
	if b.degraded && !c.ackPSet {
		return
	}
	minAck := c.minAck(b.degraded)
	minWin := c.minWin(b.degraded)
	needAck := !c.lastAckValid || minAck.Greater(c.lastAckSent)
	winDelta := int(minWin) - int(c.lastWinSent)
	needWin := winDelta > 0 && (c.lastWinSent == 0 || winDelta >= c.effMSS(b.cfg.DefaultMSS))
	if !needAck && !needWin {
		return
	}
	b.stats.EmptyAcks++
	out := &b.emitSeg
	*out = tcp.Segment{
		Seq:    c.sndMax,
		Ack:    minAck,
		Flags:  tcp.FlagACK,
		Window: minWin,
	}
	b.emitToClient(c, out)
}

// maybeSendCombinedSyn emits the SYN (or SYN-ACK) the client sees, once
// both replicas' SYNs are known: sequence number in the secondary's space,
// MSS and window the minimum of the two (section 7).
func (b *PrimaryBridge) maybeSendCombinedSyn(c *pconn) {
	if !c.pInitSet || !c.sInitSet {
		return
	}
	if !c.combinedSynSent {
		c.delta = c.seqPInit - c.seqSInit
		c.deltaKnown = true
		c.sndMax = c.seqSInit.Add(1)
		c.pq.reset(c.sndMax)
		c.sq.reset(c.sndMax)
	}
	mss := c.effMSS(b.cfg.DefaultMSS)
	seg := &tcp.Segment{
		Seq:     c.seqSInit,
		Flags:   tcp.FlagSYN,
		Window:  min(c.synWinP, c.synWinS),
		Options: []tcp.Option{tcp.MSSOption(uint16(mss))},
	}
	if !c.serverInitiated {
		seg.Flags |= tcp.FlagACK
		seg.Ack = c.minAck(b.degraded)
	}
	c.combinedSynSent = true
	b.emitToClient(c, seg)
}

// adoptPrimaryAsSecondary handles connections still establishing when the
// secondary fails: the primary's own SYN stands in for the missing
// secondary's, making Delta-seq zero for this connection.
func (b *PrimaryBridge) adoptPrimaryAsSecondary(c *pconn) {
	c.sInitSet = true
	c.seqSInit = c.seqPInit
	c.mssS = c.mssP
	c.synWinS = c.synWinP
	c.winS = c.winP
	if c.ackPSet {
		c.ackS = c.ackP
		c.ackSSet = true
	}
}

func (b *PrimaryBridge) forwardRST(c *pconn, segment []byte, fromPrimary bool) {
	seq := tcp.RawSeq(segment)
	if fromPrimary {
		if c.deltaKnown {
			seq -= c.delta
			b.m.seqTranslations.Inc()
		} else if !tcp.RawFlags(segment).Has(tcp.FlagACK) {
			// Cannot express the reset in the client's sequence space.
			return
		}
	}
	out := &tcp.Segment{Seq: seq, Flags: tcp.FlagRST}
	if tcp.RawFlags(segment).Has(tcp.FlagACK) {
		out.Flags |= tcp.FlagACK
		out.Ack = tcp.RawAck(segment)
	}
	b.emitToClient(c, out)
	b.removeConn(c)
}

func (b *PrimaryBridge) emitToClient(c *pconn, seg *tcp.Segment) {
	seg.SrcPort = c.key.LocalPort()
	seg.DstPort = c.key.PeerPort()
	// Marshal straight into a pooled packet buffer: one copy of the
	// payload, and the emit function forwards the buffer without another.
	pkt := netbuf.Get()
	copy(tcp.MarshalReserve(pkt, seg, len(seg.Payload)), seg.Payload)
	tcp.SealChecksum(b.aP, c.key.PeerAddr(), pkt.Bytes())
	b.stats.SegmentsToClient++
	b.m.releasedBytes.Add(int64(len(seg.Payload)))
	if seg.Flags.Has(tcp.FlagACK) {
		c.lastAckSent = seg.Ack
		c.lastAckValid = true
		c.lastWinSent = seg.Window
	}
	b.emit(c.key.PeerAddr(), pkt)
}

// synthesizeAck builds and sends a bare acknowledgment on behalf of a
// vanished connection (section 8's late-FIN handling). The datagram carries
// srcAddr as its source, which lets the bridge answer the secondary's FIN
// retransmissions as if the client had.
func (b *PrimaryBridge) synthesizeAck(srcAddr ipv4.Addr, srcPort uint16, dstAddr ipv4.Addr, dstPort uint16, seq, ack tcp.Seq) {
	seg := &b.emitSeg
	*seg = tcp.Segment{
		SrcPort: srcPort,
		DstPort: dstPort,
		Seq:     seq,
		Ack:     ack,
		Flags:   tcp.FlagACK,
		Window:  65535,
	}
	pkt := netbuf.Get()
	tcp.MarshalReserve(pkt, seg, 0)
	tcp.SealChecksum(srcAddr, dstAddr, pkt.Bytes())
	_ = b.host.SendIPFastBuf(srcAddr, dstAddr, ipv4.ProtoTCP, pkt)
}

// maybeGC deletes the connection record once both directions are fully
// closed (section 8): the servers' FIN has been acknowledged by the client
// and the client's FIN has been acknowledged by both servers.
func (b *PrimaryBridge) maybeGC(c *pconn) {
	if !(c.finSent && c.finAckedByCl && c.clientFinSeen) {
		return
	}
	if !c.minAck(b.degraded).Geq(c.clientFinEnd) {
		return
	}
	if b.cfg.GCLinger > 0 {
		// The slot may be freed and re-let to a new tenant (even for the
		// same tuple) while the timer is pending; the slab generation is
		// what distinguishes the tenancy this timer was armed against.
		key, idx := c.key, uint32(c.self)
		gen := b.slots.Gen(idx)
		b.sched.After(b.cfg.GCLinger, "bridge.gc", func() {
			if cur, ok := b.conns.Get(uint64(key)); ok && cur == idx && b.slots.Live(idx, gen) {
				b.removeConn(b.slots.At(idx))
			}
		})
		return
	}
	b.removeConn(c)
}

// qAdvance discards n matched bytes from both queues and keeps the queue
// gauge in step. The secondary queue may hold fewer than n bytes (degraded
// drain), so the gauge moves by the realized shrinkage, not 2n.
func (b *PrimaryBridge) qAdvance(c *pconn, n int) {
	before := c.pq.Len() + c.sq.Len()
	c.pq.Advance(n)
	c.sq.Advance(n)
	b.m.queueBytes.Add(int64(c.pq.Len() + c.sq.Len() - before))
}

func (b *PrimaryBridge) removeConn(c *pconn) {
	idx, ok := b.conns.Get(uint64(c.key))
	if !ok || b.slots.At(idx) != c {
		return
	}
	if b.cfg.MaxConns > 0 {
		b.lruUnlink(c)
	}
	b.conns.Delete(uint64(c.key))
	b.stats.ConnsClosed++
	b.m.queueBytes.Add(int64(-(c.pq.Len() + c.sq.Len())))
	// Free zeroes the record, releasing the queues' block storage.
	b.slots.Free(idx)
}

// HandleSecondaryFailure reconfigures the bridge per section 6 of the
// paper: flush the primary output queues to the client, disable the
// demultiplexer and the delaying of primary segments, and keep subtracting
// Delta-seq from outgoing sequence numbers forever (the client is
// synchronized to the secondary's sequence space).
func (b *PrimaryBridge) HandleSecondaryFailure() {
	if b.degraded {
		return
	}
	b.degraded = true
	// The walk must be deterministic (the table's internal order is not):
	// sort the keys into the bridge's reusable scratch buffer rather than
	// allocating O(conns) in the middle of a takeover.
	b.keyScratch = b.conns.AppendKeys(b.keyScratch[:0])
	slices.Sort(b.keyScratch)
	for _, k := range b.keyScratch {
		idx, ok := b.conns.Get(k)
		if !ok {
			continue
		}
		c := b.slots.At(idx)
		if !c.deltaKnown {
			if c.pInitSet && !c.sInitSet {
				b.adoptPrimaryAsSecondary(c)
				b.maybeSendCombinedSyn(c)
			}
			continue
		}
		// Step 1: drain the primary output queue into new segments.
		mss := c.effMSS(b.cfg.DefaultMSS)
		for {
			data := c.pq.Contiguous()
			if len(data) == 0 {
				break
			}
			n := min(len(data), mss)
			out := &tcp.Segment{
				Seq:     c.sndMax,
				Ack:     c.minAck(true),
				Flags:   tcp.FlagACK | tcp.FlagPSH,
				Window:  c.minWin(true),
				Payload: append([]byte(nil), data[:n]...),
			}
			b.qAdvance(c, n)
			c.sndMax = c.sndMax.Add(n)
			if b.finsMatchedAt(c, c.sndMax) && c.pq.Len() == 0 {
				out.Flags |= tcp.FlagFIN
				c.finSent = true
				c.finSeq = c.sndMax
				c.sndMax = c.sndMax.Add(1)
			}
			b.emitToClient(c, out)
		}
		if b.finsMatchedAt(c, c.sndMax) && !c.finSent {
			out := &tcp.Segment{
				Seq:    c.sndMax,
				Ack:    c.minAck(true),
				Flags:  tcp.FlagACK | tcp.FlagFIN,
				Window: c.minWin(true),
			}
			c.finSent = true
			c.finSeq = c.sndMax
			c.sndMax = c.sndMax.Add(1)
			b.emitToClient(c, out)
		}
		b.maybeEmitAck(c)
	}
}
