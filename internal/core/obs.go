package core

import (
	"fmt"

	"tcpfailover/internal/obs"
)

// series appends a host label to a metric name when the host is known.
func series(name, host string) string {
	if host == "" {
		return name
	}
	return fmt.Sprintf("%s{host=%q}", name, host)
}

// primaryMetrics are the primary bridge's pre-resolved observability
// handles. Always populated — with discard handles until AttachObs — so the
// merge path updates them unconditionally without branching or allocating.
type primaryMetrics struct {
	queueBytes       obs.Gauge   // bytes parked in pq+sq across all conns
	matchedBytes     obs.Counter // bytes matched between the replica streams
	releasedBytes    obs.Counter // payload bytes released toward the client
	seqTranslations  obs.Counter // Δseq applications (seq or ack rewrites)
	badChecksumDrops obs.Counter // diverted segments dropped by verifyDiverted
	seqInvalidDrops  obs.Counter // segments dropped by in-window validation
	flowEvictions    obs.Counter // tracked connections evicted by the LRU cap
	malformedDrops   obs.Counter // frames with an inconsistent data offset
}

func newPrimaryMetrics(reg *obs.Registry, host string) primaryMetrics {
	return primaryMetrics{
		queueBytes:       reg.Gauge(series("bridge_queue_bytes", host)),
		matchedBytes:     reg.Counter(series("bridge_bytes_matched_total", host)),
		releasedBytes:    reg.Counter(series("bridge_bytes_released_total", host)),
		seqTranslations:  reg.Counter(series("bridge_seq_translations_total", host)),
		badChecksumDrops: reg.Counter(series("bridge_bad_checksum_drops_total", host)),
		seqInvalidDrops:  reg.Counter(series("bridge_seq_invalid_drops_total", host)),
		flowEvictions:    reg.Counter(series("bridge_flow_evictions_total", host)),
		malformedDrops:   reg.Counter(series("bridge_malformed_drops_total", host)),
	}
}

// AttachObs resolves the bridge's metric handles against reg, labeled with
// the host name. Call at scenario build time, before traffic flows: the
// BadChecksumDrops counter is the source of truth behind Stats(), and the
// queue gauge tracks deltas, so attaching mid-stream would lose history.
func (b *PrimaryBridge) AttachObs(reg *obs.Registry, host string) {
	b.m = newPrimaryMetrics(reg, host)
}

// secondaryMetrics are the secondary bridge's pre-resolved handles.
type secondaryMetrics struct {
	snoopedIn      obs.Counter
	divertedOut    obs.Counter
	flowEvictions  obs.Counter // flow-cache entries evicted by the LRU cap
	malformedDrops obs.Counter // snooped frames with an inconsistent offset
}

func newSecondaryMetrics(reg *obs.Registry, host string) secondaryMetrics {
	return secondaryMetrics{
		snoopedIn:      reg.Counter(series("bridge_snooped_in_total", host)),
		divertedOut:    reg.Counter(series("bridge_diverted_out_total", host)),
		flowEvictions:  reg.Counter(series("bridge_flow_evictions_total", host)),
		malformedDrops: reg.Counter(series("bridge_malformed_drops_total", host)),
	}
}

// AttachObs resolves the bridge's metric handles against reg, labeled with
// the host name.
func (b *SecondaryBridge) AttachObs(reg *obs.Registry, host string) {
	b.m = newSecondaryMetrics(reg, host)
}
