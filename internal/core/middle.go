package core

import (
	"slices"

	"tcpfailover/internal/flowtab"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/netbuf"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/tcp"
)

// MiddleBridge realizes the paper's daisy-chaining remark ("Higher degrees
// of replication can be achieved by daisy-chaining multiple backup
// servers", section 1) for the intermediate server of a three-way chain
// head <- middle <- tail.
//
// The middle server composes the two bridge roles:
//
//   - Toward the client it behaves like a *secondary*: its NIC is
//     promiscuous, and client segments addressed to the service address
//     (the head's) are translated to its own address for its TCP layer.
//   - Toward the tail it behaves like a *primary*: it holds its own TCP
//     output, matches it against the tail's diverted stream, and produces
//     a merged stream in the tail's sequence space.
//   - The merged stream is not sent to the client; it is diverted — with
//     the original-destination option — to the head, whose own primary
//     bridge performs the final match.
//
// Because the merged stream carries ack = min(ackMiddle, ackTail) and
// win = min(...), the head's minimum over (its own, the merged stream)
// covers all three replicas; the composition needs no new protocol.
type MiddleBridge struct {
	host    *netstack.Host
	ifIndex int
	service ipv4.Addr // the client-facing address (initially the head's)
	self    ipv4.Addr
	head    ipv4.Addr
	sel     *Selector

	pb *PrimaryBridge // matches own output against the tail's stream

	active bool // diverting toward the head (false once promoted)
	// conns is the set of snooped failover connections (the re-key tuple is
	// derivable from the key plus the middle's own address, so only the key
	// set is stored). keyScratch backs PromoteToHead's sorted walk.
	conns      flowtab.Table
	keyScratch []uint64

	stats SecondaryStats
}

// NewMiddleBridge installs the composed bridge on the middle host.
// service is the address clients connect to (the head's); tail is the next
// backup down the chain.
func NewMiddleBridge(host *netstack.Host, ifIndex int, service, self, tail ipv4.Addr,
	sel *Selector, cfg PrimaryConfig) *MiddleBridge {
	b := &MiddleBridge{
		host:    host,
		ifIndex: ifIndex,
		service: service,
		self:    self,
		head:    service,
		sel:     sel,
		pb:      NewPrimaryBridgeCore(host, self, tail, sel, cfg),
		active:  true,
	}
	// The merged stream is diverted up the chain instead of sent to the
	// client.
	b.pb.SetEmitFunc(b.divertMerged)
	host.Iface(ifIndex).NIC().SetPromiscuous(true)
	host.SetInboundHook(b.inbound)
	host.SetOutboundHook(b.pb.Outbound)
	return b
}

// Primary exposes the inner matching bridge (stats, degradation).
func (b *MiddleBridge) Primary() *PrimaryBridge { return b.pb }

// Stats returns the secondary-role counters (snooped/diverted).
func (b *MiddleBridge) Stats() SecondaryStats { return b.stats }

// Active reports whether the middle is still diverting (false once it has
// been promoted to head).
func (b *MiddleBridge) Active() bool { return b.active }

// inbound chains the secondary-role translation in front of the inner
// primary bridge's demultiplexer.
func (b *MiddleBridge) inbound(ifIndex int, hdr ipv4.Header, payload []byte) (netstack.InVerdict, ipv4.Header, []byte) {
	translated := false
	if b.active && hdr.Dst == b.service && len(payload) >= tcp.HeaderLen {
		key := MakeTupleKey(hdr.Src, tcp.RawSrcPort(payload), tcp.RawDstPort(payload))
		if b.sel.Match(key) {
			// Secondary role: client segment snooped promiscuously.
			tcp.PatchPseudoAddr(payload, b.service, b.self)
			hdr.Dst = b.self
			if tcp.RawFlags(payload).Has(tcp.FlagSYN) {
				tcp.ClampRawMSS(payload, origDstOptionLen)
			}
			b.stats.SnoopedIn++
			b.conns.Put(uint64(key), 1)
			// Fall through into the primary role, which translates the
			// acknowledgment into this TCP layer's sequence space and
			// delivers.
			translated = true
		}
	}
	verdict, h2, p2 := b.pb.Inbound(ifIndex, hdr, payload)
	if translated && verdict == netstack.VerdictPass {
		// The address rewrite must reach the local stack even though the
		// inner bridge merely passed the segment through.
		return netstack.VerdictDeliver, h2, p2
	}
	return verdict, h2, p2
}

// divertMerged forwards a merged client-bound segment up the chain with
// the original-destination option, exactly as a plain secondary would.
func (b *MiddleBridge) divertMerged(client ipv4.Addr, pkt *netbuf.Buffer) {
	if !b.active {
		// Promoted: the merged stream goes straight to the client.
		_ = b.host.SendIPFastBuf(b.pb.LocalAddr(), client, ipv4.ProtoTCP, pkt)
		return
	}
	var opt [8]byte
	tcp.OrigDstOptionBlock(&opt, client)
	out := netbuf.Get()
	diverted, err := tcp.AppendOrigDstOption(out, pkt.Bytes(), &opt)
	pkt.Release()
	if err != nil {
		out.Release()
		return // header full; upstream recovers by retransmission
	}
	tcp.PatchPseudoAddr(diverted, client, b.head)
	b.stats.DivertedOut++
	_ = b.host.SendIPFastBuf(b.self, b.head, ipv4.ProtoTCP, out)
}

// PromoteToHead runs the section 5 takeover for the middle server when the
// chain's head fails: it stops diverting, takes over the service address,
// re-keys its TCP connections, and from then on behaves as the head of a
// shortened chain whose (sole) backup is the old tail.
func (b *MiddleBridge) PromoteToHead() error {
	if !b.active {
		return nil
	}
	b.active = false
	b.host.Iface(b.ifIndex).NIC().SetPromiscuous(false)
	b.host.AddAddress(b.ifIndex, b.service)
	// The inner bridge's client-facing identity becomes the service
	// address: merged segments now carry it as their source, and incoming
	// client segments (addressed to it) hit the acknowledgment translation.
	b.pb.SetLocalAddr(b.service)
	stack := b.host.TCP()
	b.keyScratch = b.conns.AppendKeys(b.keyScratch[:0])
	slices.Sort(b.keyScratch)
	for _, kk := range b.keyScratch {
		key := TupleKey(kk)
		t := tcp.Tuple{
			LocalAddr:  b.self,
			LocalPort:  key.LocalPort(),
			RemoteAddr: key.PeerAddr(),
			RemotePort: key.PeerPort(),
		}
		if _, ok := stack.Lookup(t); !ok {
			continue
		}
		if err := stack.Rebind(t, b.service); err != nil {
			return err
		}
		b.stats.TakenOver++
	}
	return b.host.Iface(b.ifIndex).ARP().Announce(b.service)
}

// HandleTailFailure degrades the inner bridge per section 6; the middle
// keeps feeding its own (still diverted) stream up the chain.
func (b *MiddleBridge) HandleTailFailure() { b.pb.HandleSecondaryFailure() }
