package core

import (
	"encoding/binary"
	"testing"

	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/tcp"
)

// FuzzSecondarySnoop throws attacker-crafted TCP bytes at the secondary
// bridge's promiscuous snoop path and the primary bridge's demultiplexer —
// the two raw-parsing surfaces an in-LAN attacker reaches without
// completing any handshake. The harness asserts the malformed-frame guard:
// nothing panics, and a frame whose data offset lies outside its own bytes
// is dropped and counted rather than delivered.
//
// The input doubles as a script: when it is long enough to be a sane
// segment it is replayed against an established bridge connection with the
// fuzzer in control of seq/ack/flags/payload, covering truncated and
// overlapping retransmissions in the byte-matching queues.
func FuzzSecondarySnoop(f *testing.F) {
	// A sane ACK, a truncated header, a data offset past the end, and an
	// offset below the minimum.
	f.Add(tcp.Marshal(ipv4.MustParseAddr("10.0.2.1"), ipv4.MustParseAddr("10.0.1.1"),
		&tcp.Segment{SrcPort: 49152, DstPort: 80, Seq: 1, Flags: tcp.FlagACK, Window: 65535}))
	f.Add([]byte{0xc0, 0x00, 0x00, 0x50, 0, 0, 0, 1})
	long := make([]byte, 24)
	long[12] = 0xf0 // data offset 60 > len
	f.Add(long)
	short := make([]byte, 24)
	short[12] = 0x10 // data offset 4 < 5 words
	f.Add(short)

	f.Fuzz(func(t *testing.T, data []byte) {
		sec := newSecFixture(t)
		hdr := ipv4.Header{Protocol: ipv4.ProtoTCP, Src: sec.aC, Dst: sec.aP}
		buf := append([]byte(nil), data...)
		verdict, _, _ := sec.b.inbound(0, hdr, buf)
		if len(data) >= tcp.HeaderLen && !tcp.RawSane(data) {
			if verdict != netstack.VerdictDrop {
				t.Fatalf("insane frame not dropped (verdict %v)", verdict)
			}
			if sec.b.Stats().MalformedDrops == 0 {
				t.Fatal("malformed drop not counted")
			}
		}

		pri := newPriFixture(t)
		hdrP := ipv4.Header{Protocol: ipv4.ProtoTCP, Src: pri.aC, Dst: pri.aP}
		pri.b.inbound(0, hdrP, append([]byte(nil), data...))

		// Structured replay: an established connection attacked with a
		// fuzzer-chosen segment (overlaps, stale data, far-future data).
		if len(data) < 10 {
			return
		}
		pri2 := newPriFixtureCfg(t, PrimaryConfig{ValidateSeq: data[9]&1 == 1})
		pri2.establish(t)
		seq := tcp.Seq(clientISS + 1).Add(int(int32(binary.BigEndian.Uint32(data[:4]))))
		ack := tcp.Seq(sISS + 1).Add(int(int32(binary.BigEndian.Uint32(data[4:8]))))
		flags := tcp.Flags(data[8]) &^ tcp.FlagSYN
		payload := data[10:]
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		raw := tcp.Marshal(pri2.aC, pri2.aP, &tcp.Segment{
			SrcPort: 49152, DstPort: 80, Seq: seq, Ack: ack,
			Flags: flags | tcp.FlagACK, Window: 65535, Payload: payload,
		})
		pri2.b.inbound(0, hdrP, raw)
	})
}
