package core

import (
	"testing"

	"tcpfailover/internal/tcp"
)

// BenchmarkByteQueueMatch measures the primary bridge's per-byte matching
// cost: both replicas' streams inserted with different segmentations and
// drained through Contiguous/Advance, the Figure 2 pipeline.
func BenchmarkByteQueueMatch(b *testing.B) {
	const chunkP, chunkS = 1460, 1452
	payloadP := make([]byte, chunkP)
	payloadS := make([]byte, chunkS)
	for b.Loop() {
		pq := newByteQueue(0)
		sq := newByteQueue(0)
		var pSeq, sSeq tcp.Seq
		released := 0
		for released < 64*1024 {
			pq.Insert(pSeq, payloadP)
			pSeq = pSeq.Add(chunkP)
			sq.Insert(sSeq, payloadS)
			sSeq = sSeq.Add(chunkS)
			for {
				pb, sb := pq.Contiguous(), sq.Contiguous()
				n := min(len(pb), len(sb))
				if n == 0 {
					break
				}
				pq.Advance(n)
				sq.Advance(n)
				released += n
			}
		}
	}
	b.SetBytes(64 * 1024)
}

// BenchmarkByteQueueOutOfOrder measures insertion with reordering, the
// queue's worst case.
func BenchmarkByteQueueOutOfOrder(b *testing.B) {
	payload := make([]byte, 1452)
	for b.Loop() {
		q := newByteQueue(0)
		// Insert 32 segments in reverse, then drain.
		for i := 31; i >= 0; i-- {
			q.Insert(tcp.Seq(i*1452), payload)
		}
		q.Advance(32 * 1452)
	}
	b.SetBytes(32 * 1452)
}
