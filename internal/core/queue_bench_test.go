package core

import (
	"testing"

	"tcpfailover/internal/tcp"
)

// BenchmarkByteQueueMatch measures the primary bridge's per-byte matching
// cost: both replicas' streams inserted with different segmentations and
// drained through Contiguous/Advance, the Figure 2 pipeline.
func BenchmarkByteQueueMatch(b *testing.B) {
	const chunkP, chunkS = 1460, 1452
	payloadP := make([]byte, chunkP)
	payloadS := make([]byte, chunkS)
	b.ReportAllocs()
	for b.Loop() {
		pq := newByteQueue(0)
		sq := newByteQueue(0)
		var pSeq, sSeq tcp.Seq
		released := 0
		for released < 64*1024 {
			pq.Insert(pSeq, payloadP)
			pSeq = pSeq.Add(chunkP)
			sq.Insert(sSeq, payloadS)
			sSeq = sSeq.Add(chunkS)
			for {
				pb, sb := pq.Contiguous(), sq.Contiguous()
				n := min(len(pb), len(sb))
				if n == 0 {
					break
				}
				pq.Advance(n)
				sq.Advance(n)
				released += n
			}
		}
	}
	b.SetBytes(64 * 1024)
}

// BenchmarkByteQueueOutOfOrder measures insertion with reordering, the
// queue's worst case.
func BenchmarkByteQueueOutOfOrder(b *testing.B) {
	payload := make([]byte, 1452)
	b.ReportAllocs()
	for b.Loop() {
		q := newByteQueue(0)
		// Insert 32 segments in reverse, then drain.
		for i := 31; i >= 0; i-- {
			q.Insert(tcp.Seq(i*1452), payload)
		}
		q.Advance(32 * 1452)
	}
	b.SetBytes(32 * 1452)
}

// BenchmarkByteQueuePartialDrain exercises the spare-retention fix: every
// round retires one block while another survives, so without the retained
// spare each round's gap insert would allocate fresh block storage.
func BenchmarkByteQueuePartialDrain(b *testing.B) {
	payload := make([]byte, 1452)
	b.ReportAllocs()
	for b.Loop() {
		q := newByteQueue(0)
		next := tcp.Seq(0)
		for i := 0; i < 32; i++ {
			q.Insert(next.Add(1452), payload) // arrives first, past a gap
			q.Insert(next, payload)           // fills the gap via a rebuild
			q.Advance(1452 + 726)             // retire one block, keep half the other
			q.Advance(726)
			next = next.Add(2 * 1452)
		}
	}
	b.SetBytes(32 * 2 * 1452)
}

// TestByteQueueSpareSurvivesPartialDrain asserts the fix benchmarked above:
// a fully drained, unshared block is retired to the spare slot even while
// other blocks survive, and the next insert needing fresh storage reuses it
// without allocating.
func TestByteQueueSpareSurvivesPartialDrain(t *testing.T) {
	payload := make([]byte, 1452)
	q := newByteQueue(0)
	q.Insert(1452, payload) // out of order: [1452, 2904)
	q.Insert(0, payload)    // fills the front: [0, 1452)
	q.Advance(1452 + 726)   // retire the first block; half the second survives
	if q.Len() != 726 {
		t.Fatalf("Len = %d after partial drain, want 726", q.Len())
	}
	if cap(q.spare) < 1452 {
		t.Fatalf("retired block not kept as spare (cap %d); a survivor must not block reuse", cap(q.spare))
	}
	spare := q.spare[:1]
	q.Insert(4096, payload) // past a gap: must consume the spare
	if q.spare != nil {
		t.Fatal("gap insert did not consume the spare")
	}
	if last := q.blocks[len(q.blocks)-1].data; &last[0] != &spare[0] {
		t.Fatal("gap insert allocated fresh storage instead of the spare")
	}
}

// TestByteQueueSharedBlocksNotRetired asserts the safety side of the fix: a
// block whose storage is split-aliased with a surviving sibling must not be
// retired, or the sibling's bytes could be overwritten by a later insert.
func TestByteQueueSharedBlocksNotRetired(t *testing.T) {
	q := newByteQueue(0)
	mid := make([]byte, 100)
	for i := range mid {
		mid[i] = 0xAA
	}
	q.Insert(100, mid)
	wide := make([]byte, 300)
	for i := range wide {
		wide[i] = byte(i)
	}
	q.Insert(0, wide) // splits around [100, 200): both pieces share one array
	q.Advance(200)    // retire the left piece and mid; right piece survives
	// mid's unshared 100-byte block may be retired; the split 300-byte
	// array backing the surviving right piece must not be.
	if cap(q.spare) > 100 {
		t.Fatalf("split-aliased storage retired as spare (cap %d)", cap(q.spare))
	}
	q.Insert(500, make([]byte, 64)) // would scribble on the survivor if aliased
	got := q.Contiguous()
	for i, b := range got[:100] {
		if b != byte(200+i) {
			t.Fatalf("surviving split block corrupted at %d: got %#x want %#x", i, b, byte(200+i))
		}
	}
}
