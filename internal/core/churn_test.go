package core

import (
	"testing"

	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/tcp"
)

// Flow-table growth under SYN-flood churn: unbounded tables track every
// spoofed tuple; with a cap the live entry count stays at the bound, the
// overflow shows up in the eviction counters, and LRU order protects the
// entry that keeps seeing traffic.

// churnSYN pushes a client SYN from a distinct spoofed (addr, port) tuple
// through the primary bridge's inbound hook.
func churnSYN(f *priFixture, i int) {
	src := ipv4.AddrFrom4(10, 9, byte(i>>8), byte(i))
	seg := &tcp.Segment{SrcPort: uint16(20000 + i), DstPort: 80, Seq: tcp.Seq(i),
		Flags: tcp.FlagSYN, Window: 65535, Options: []tcp.Option{tcp.MSSOption(1460)}}
	raw := tcp.Marshal(src, f.aP, seg)
	f.b.inbound(0, ipv4.Header{Protocol: ipv4.ProtoTCP, Src: src, Dst: f.aP}, raw)
}

func TestPrimaryBridgeChurnUnbounded(t *testing.T) {
	f := newPriFixture(t)
	for i := 0; i < propTrials; i++ {
		churnSYN(f, i)
	}
	if got := f.b.Conns(); got != propTrials {
		t.Errorf("unbounded bridge tracks %d conns, want %d", got, propTrials)
	}
	if ev := f.b.Stats().ConnsEvicted; ev != 0 {
		t.Errorf("unbounded bridge evicted %d", ev)
	}
}

func TestPrimaryBridgeChurnBounded(t *testing.T) {
	const cap = 64
	f := newPriFixtureCfg(t, PrimaryConfig{MaxConns: cap})
	// A legitimate connection established before the flood…
	f.establishForAttack(t)
	for i := 0; i < propTrials; i++ {
		churnSYN(f, i)
		// …that keeps carrying traffic while the flood churns, so the LRU
		// must keep it fresh.
		if i%16 == 0 {
			f.fromClientWire(t, &tcp.Segment{Seq: clientISS + 1, Ack: sISS + 1,
				Flags: tcp.FlagACK, Window: 65535})
		}
	}
	if got := f.b.Conns(); got != cap {
		t.Errorf("bounded bridge tracks %d conns, want %d", got, cap)
	}
	wantEv := int64(propTrials + 1 - cap)
	if ev := f.b.Stats().ConnsEvicted; ev != wantEv {
		t.Errorf("evictions = %d, want %d", ev, wantEv)
	}
	// Slot reuse: the flood pushed 1000 records through a 64-entry arena, so
	// evicted slots must be recycled — the arena's high-water mark stays at
	// the LRU bound (+1 for the insert-then-evict window), not the churn.
	if live := f.b.slots.Len(); live != cap {
		t.Errorf("pconn arena holds %d live slots, want %d", live, cap)
	}
	if grew := f.b.slots.Cap(); grew > cap+1 {
		t.Errorf("pconn arena grew to %d slots under churn, want <= %d (evicted slots not reused)",
			grew, cap+1)
	}
	// The legitimate connection survived the entire flood.
	f.sent = nil
	f.fromClientWire(t, &tcp.Segment{Seq: clientISS + 1, Ack: sISS + 1,
		Flags: tcp.FlagACK, Window: 65535})
	f.fromPrimaryTCP(t, &tcp.Segment{Seq: pISS + 1, Ack: clientISS + 1,
		Flags: tcp.FlagACK | tcp.FlagPSH, Window: 60000, Payload: []byte("live")})
	f.fromSecondaryWire(t, &tcp.Segment{Seq: sISS + 1, Ack: clientISS + 1,
		Flags: tcp.FlagACK, Window: 58000, Payload: []byte("live")})
	if len(f.sent) == 0 || string(f.sent[len(f.sent)-1].seg.Payload) != "live" {
		t.Errorf("legitimate connection lost to the flood (emitted %d segments)", len(f.sent))
	}
}

// snoopSYN pushes a spoofed client SYN through the secondary bridge's
// promiscuous snoop path.
func snoopSYN(t *testing.T, f *secFixture, i int) {
	t.Helper()
	src := ipv4.AddrFrom4(10, 9, byte(i>>8), byte(i))
	seg := &tcp.Segment{SrcPort: uint16(20000 + i), DstPort: 80, Seq: tcp.Seq(i),
		Flags: tcp.FlagSYN, Window: 65535, Options: []tcp.Option{tcp.MSSOption(1460)}}
	raw := tcp.Marshal(src, f.aP, seg)
	f.callInbound(t, ipv4.Header{Protocol: ipv4.ProtoTCP, Src: src, Dst: f.aP}, raw)
}

func TestSecondaryBridgeChurnUnbounded(t *testing.T) {
	f := newSecFixture(t)
	for i := 0; i < propTrials; i++ {
		snoopSYN(t, f, i)
	}
	if got := f.b.Flows(); got != propTrials {
		t.Errorf("unbounded flow cache holds %d entries, want %d", got, propTrials)
	}
	if ev := f.b.Stats().FlowsEvicted; ev != 0 {
		t.Errorf("unbounded cache evicted %d", ev)
	}
}

func TestSecondaryBridgeChurnBounded(t *testing.T) {
	const cap = 64
	f := newSecFixture(t)
	f.b.SetFlowLimit(cap)
	// The legitimate client's flow, refreshed throughout the flood.
	legit := &tcp.Segment{SrcPort: 49152, DstPort: 80, Seq: 100, Flags: tcp.FlagACK, Window: 65535}
	legitRaw := tcp.Marshal(f.aC, f.aP, legit)
	legitHdr := ipv4.Header{Protocol: ipv4.ProtoTCP, Src: f.aC, Dst: f.aP}
	f.callInbound(t, legitHdr, append([]byte(nil), legitRaw...))
	for i := 0; i < propTrials; i++ {
		snoopSYN(t, f, i)
		if i%16 == 0 {
			f.callInbound(t, legitHdr, append([]byte(nil), legitRaw...))
		}
	}
	if got := f.b.Flows(); got != cap {
		t.Errorf("bounded flow cache holds %d entries, want %d", got, cap)
	}
	wantEv := int64(propTrials + 1 - cap)
	if ev := f.b.Stats().FlowsEvicted; ev != wantEv {
		t.Errorf("evictions = %d, want %d", ev, wantEv)
	}
	// Slot reuse, as in the primary test: the arena must not grow past the
	// flow limit no matter how many flows churned through it.
	if live := f.b.fslots.Len(); live != cap {
		t.Errorf("sflow arena holds %d live slots, want %d", live, cap)
	}
	if grew := f.b.fslots.Cap(); grew > cap+1 {
		t.Errorf("sflow arena grew to %d slots under churn, want <= %d (evicted slots not reused)",
			grew, cap+1)
	}
	// The refreshed flow must still be resident: snooping it again must not
	// evict anything further.
	before := f.b.Stats().FlowsEvicted
	verdict, _, _ := f.callInbound(t, legitHdr, append([]byte(nil), legitRaw...))
	if verdict != netstack.VerdictDeliver {
		t.Errorf("legitimate flow no longer snooped (verdict %v)", verdict)
	}
	if f.b.Stats().FlowsEvicted != before {
		t.Errorf("refreshing the legitimate flow caused an eviction")
	}
}
