package core

import (
	"testing"

	"tcpfailover/internal/ipv4"
)

func TestSelectorServerPorts(t *testing.T) {
	s := NewSelector()
	s.EnableServerPort(80)
	s.EnableServerPort(21)

	client := ipv4.MustParseAddr("10.0.2.1")
	if !s.Match(MakeTupleKey(client, 49152, 80)) {
		t.Error("port 80 connection not matched")
	}
	if s.Match(MakeTupleKey(client, 49152, 8080)) {
		t.Error("unrelated port matched")
	}
	s.DisableServerPort(80)
	if s.Match(MakeTupleKey(client, 49152, 80)) {
		t.Error("disabled port still matched")
	}
	ports := s.ServerPorts()
	if len(ports) != 1 || ports[0] != 21 {
		t.Errorf("ServerPorts = %v", ports)
	}
}

func TestSelectorPeerPorts(t *testing.T) {
	// Section 7.2: server-initiated connections to a back-end port.
	s := NewSelector()
	s.EnablePeerPort(5432)
	backend := ipv4.MustParseAddr("10.0.2.1")
	if !s.Match(MakeTupleKey(backend, 5432, 49152)) {
		t.Error("back-end connection not matched")
	}
	if s.Match(MakeTupleKey(backend, 5433, 49152)) {
		t.Error("wrong peer port matched")
	}
}

func TestSelectorTuples(t *testing.T) {
	// The paper's per-socket method: one specific connection.
	s := NewSelector()
	k := MakeTupleKey(ipv4.MustParseAddr("10.0.2.1"), 1234, 9999)
	s.EnableTuple(k)
	if !s.Match(k) {
		t.Error("explicit tuple not matched")
	}
	other := MakeTupleKey(k.PeerAddr(), 1235, k.LocalPort())
	if s.Match(other) {
		t.Error("different tuple matched")
	}
}
