package core

import (
	"bytes"
	"math/rand"
	"testing"

	"tcpfailover/internal/tcp"
)

func TestByteQueueFigure2Example(t *testing.T) {
	// The paper's Figure 2: the primary queue holds (translated) bytes
	// 21-24; the secondary's segment carries 23-26. Matching releases
	// 23-24; 25-26 remain in the secondary queue.
	pq := newByteQueue(23) // bytes 21-22 were already sent (floor = 23)
	sq := newByteQueue(23)

	pq.Insert(21, []byte{21, 22, 23, 24}) // trimmed below floor
	sq.Insert(23, []byte{23, 24, 25, 26})

	pb := pq.Contiguous()
	sb := sq.Contiguous()
	n := min(len(pb), len(sb))
	if n != 2 || pb[0] != 23 || pb[1] != 24 {
		t.Fatalf("matched %d bytes %v, want bytes 23-24", n, pb[:n])
	}
	pq.Advance(n)
	sq.Advance(n)
	if pq.Len() != 0 {
		t.Errorf("primary queue holds %d bytes, want 0", pq.Len())
	}
	if sq.Len() != 2 || !bytes.Equal(sq.Contiguous(), []byte{25, 26}) {
		t.Errorf("secondary queue holds %v, want bytes 25-26", sq.Contiguous())
	}
}

func TestByteQueueTrimsBelowFloor(t *testing.T) {
	q := newByteQueue(100)
	q.Insert(90, []byte("0123456789abcdef")) // covers 90..106
	if got := q.Contiguous(); string(got) != "abcdef" {
		t.Fatalf("Contiguous = %q", got)
	}
	q.Insert(50, []byte("old")) // entirely below floor
	if q.Len() != 6 {
		t.Errorf("Len = %d after stale insert", q.Len())
	}
}

func TestByteQueueGapBlocksContiguous(t *testing.T) {
	q := newByteQueue(100)
	q.Insert(105, []byte("later"))
	if got := q.Contiguous(); got != nil {
		t.Fatalf("Contiguous across gap = %q", got)
	}
	q.Insert(100, []byte("early"))
	if got := q.Contiguous(); string(got) != "earlylater" {
		t.Fatalf("Contiguous = %q", got)
	}
}

func TestByteQueueAdvancePartialBlock(t *testing.T) {
	q := newByteQueue(0)
	q.Insert(0, []byte("abcdefgh"))
	q.Advance(3)
	if q.Floor() != 3 {
		t.Errorf("floor = %d", q.Floor())
	}
	if got := q.Contiguous(); string(got) != "defgh" {
		t.Errorf("Contiguous = %q", got)
	}
}

func TestByteQueueOverlapPrefersExisting(t *testing.T) {
	q := newByteQueue(0)
	q.Insert(0, []byte("AAAA"))
	q.Insert(0, []byte("bbbbcc")) // overlap keeps AAAA, appends cc
	if got := q.Contiguous(); string(got) != "AAAAcc" {
		t.Errorf("Contiguous = %q, want AAAAcc", got)
	}
}

// TestByteQueueMatchingProperty: two queues fed the same deterministic
// stream chopped into different random segmentations always release the
// stream exactly once, in order — the heart of the bridge's correctness.
func TestByteQueueMatchingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := range 100 {
		stream := make([]byte, 2000+rng.Intn(3000))
		rng.Read(stream)
		base := tcp.Seq(rng.Uint32())

		chop := func() [][2]int {
			var cuts [][2]int
			at := 0
			for at < len(stream) {
				n := 1 + rng.Intn(1460)
				if at+n > len(stream) {
					n = len(stream) - at
				}
				cuts = append(cuts, [2]int{at, at + n})
				at += n
			}
			// Shuffle with some duplication, simulating reordering and
			// retransmission.
			rng.Shuffle(len(cuts), func(i, j int) { cuts[i], cuts[j] = cuts[j], cuts[i] })
			cuts = append(cuts, cuts[:len(cuts)/3]...)
			return cuts
		}

		pq := newByteQueue(base)
		sq := newByteQueue(base)
		pcuts, scuts := chop(), chop()
		var released []byte
		pump := func() {
			for {
				pb, sb := pq.Contiguous(), sq.Contiguous()
				n := min(len(pb), len(sb))
				if n == 0 {
					return
				}
				if !bytes.Equal(pb[:n], sb[:n]) {
					t.Fatalf("trial %d: queues disagree", trial)
				}
				released = append(released, sb[:n]...)
				pq.Advance(n)
				sq.Advance(n)
			}
		}
		for i := 0; i < max(len(pcuts), len(scuts)); i++ {
			if i < len(pcuts) {
				c := pcuts[i]
				pq.Insert(base.Add(c[0]), stream[c[0]:c[1]])
			}
			if i < len(scuts) {
				c := scuts[i]
				sq.Insert(base.Add(c[0]), stream[c[0]:c[1]])
			}
			pump()
		}
		if !bytes.Equal(released, stream) {
			t.Fatalf("trial %d: released %d bytes, want %d (equal=%v)",
				trial, len(released), len(stream), bytes.Equal(released, stream))
		}
		if pq.Len() != 0 || sq.Len() != 0 {
			t.Fatalf("trial %d: residual bytes p=%d s=%d", trial, pq.Len(), sq.Len())
		}
	}
}
