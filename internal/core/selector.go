// Package core implements the paper's contribution: the TCP Failover
// bridge, a sublayer that resides between the TCP layer and the IP layer of
// the primary and secondary servers' network stacks.
//
// The SecondaryBridge runs on the secondary server S. It puts the NIC in
// promiscuous mode, translates the destination address of client segments
// addressed to the primary P so that S's own TCP layer processes them, and
// diverts every segment S's TCP layer emits toward a client to P instead,
// tagging it with the original destination as a TCP header option.
//
// The PrimaryBridge runs on the primary server P. It holds segments P's own
// TCP layer produces, translates their sequence numbers into the
// secondary's sequence space by subtracting Delta-seq = seqP,init -
// seqS,init, matches their payload byte-for-byte against the segments
// received from S, and releases to the client only bytes both replicas have
// produced — with acknowledgment and window fields set to the minimum of
// the two replicas' values. On failure of either server the corresponding
// bridge reconfigures per sections 5 and 6 of the paper.
package core

import (
	"tcpfailover/internal/flowtab"
	"tcpfailover/internal/ipv4"
)

// TupleKey identifies a replicated connection from the bridge's viewpoint:
// the unreplicated peer endpoint (the client, or the back-end server T for
// server-initiated connections) plus the replicated server's port, packed
// addr<<32 | peerPort<<16 | localPort. The packing fills the word exactly
// (32+16+16 bits), so it is collision-free; a plain uint64 key routes the
// bridges' per-segment map lookups through the runtime's fast64 access
// paths, which a same-sized struct key does not get.
type TupleKey uint64

// MakeTupleKey packs a peer endpoint and replicated-server port into a
// TupleKey.
func MakeTupleKey(peer ipv4.Addr, peerPort, localPort uint16) TupleKey {
	return TupleKey(uint64(peer)<<32 | uint64(peerPort)<<16 | uint64(localPort))
}

// PeerAddr returns the unreplicated peer's address.
func (k TupleKey) PeerAddr() ipv4.Addr { return ipv4.Addr(k >> 32) }

// PeerPort returns the unreplicated peer's port.
func (k TupleKey) PeerPort() uint16 { return uint16(k >> 16) }

// LocalPort returns the replicated server's port.
func (k TupleKey) LocalPort() uint16 { return uint16(k) }

// Selector decides which TCP connections are failover connections. The
// paper implements two methods (section 7): a per-socket option, and a
// user-specified set of port numbers; the same configuration must be
// installed on the primary and the secondary. Selector supports both:
// server ports (the replicated server's listening ports), peer ports (for
// server-initiated connections to well-known back-end ports), and explicit
// per-connection tuples (the socket-option method).
// The port sets are flowtab bitsets rather than maps: Match sits on the
// snoop path of every segment the secondary sees, and a bitset probe is a
// shift and an indexed load with nothing for the garbage collector to
// follow. The explicit-tuple set is a flowtab.Table for the same reason.
type Selector struct {
	serverPorts flowtab.PortSet
	peerPorts   flowtab.PortSet
	tuples      flowtab.Table
	// gen counts configuration changes so per-flow verdict caches (the
	// secondary bridge's) can self-invalidate instead of re-probing the
	// port sets on every snooped segment.
	gen uint64
}

// NewSelector returns an empty selector.
func NewSelector() *Selector {
	return &Selector{}
}

// EnableServerPort marks every connection whose replicated-server port is p
// as a failover connection (paper's method 2, for server sockets).
func (s *Selector) EnableServerPort(p uint16) { s.serverPorts.Add(p); s.gen++ }

// EnablePeerPort marks every connection toward remote port p as a failover
// connection; used for server-initiated connections to an unreplicated
// back-end (paper section 7.2).
func (s *Selector) EnablePeerPort(p uint16) { s.peerPorts.Add(p); s.gen++ }

// EnableTuple marks one specific connection (paper's method 1, the
// per-socket option).
func (s *Selector) EnableTuple(k TupleKey) { s.tuples.Put(uint64(k), 1); s.gen++ }

// DisableServerPort removes a server port from the set.
func (s *Selector) DisableServerPort(p uint16) { s.serverPorts.Remove(p); s.gen++ }

// Gen returns the configuration generation; it changes whenever the
// selection rules do.
func (s *Selector) Gen() uint64 { return s.gen }

// Match reports whether a connection identified by k is a failover
// connection.
func (s *Selector) Match(k TupleKey) bool {
	if s.serverPorts.Contains(k.LocalPort()) || s.peerPorts.Contains(k.PeerPort()) {
		return true
	}
	_, ok := s.tuples.Get(uint64(k))
	return ok
}

// ServerPorts returns the configured server ports in ascending order.
func (s *Selector) ServerPorts() []uint16 {
	return s.serverPorts.Append(make([]uint16, 0, s.serverPorts.Len()))
}
