// Package core implements the paper's contribution: the TCP Failover
// bridge, a sublayer that resides between the TCP layer and the IP layer of
// the primary and secondary servers' network stacks.
//
// The SecondaryBridge runs on the secondary server S. It puts the NIC in
// promiscuous mode, translates the destination address of client segments
// addressed to the primary P so that S's own TCP layer processes them, and
// diverts every segment S's TCP layer emits toward a client to P instead,
// tagging it with the original destination as a TCP header option.
//
// The PrimaryBridge runs on the primary server P. It holds segments P's own
// TCP layer produces, translates their sequence numbers into the
// secondary's sequence space by subtracting Delta-seq = seqP,init -
// seqS,init, matches their payload byte-for-byte against the segments
// received from S, and releases to the client only bytes both replicas have
// produced — with acknowledgment and window fields set to the minimum of
// the two replicas' values. On failure of either server the corresponding
// bridge reconfigures per sections 5 and 6 of the paper.
package core

import (
	"maps"
	"slices"

	"tcpfailover/internal/ipv4"
)

// TupleKey identifies a replicated connection from the bridge's viewpoint:
// the unreplicated peer endpoint (the client, or the back-end server T for
// server-initiated connections) plus the replicated server's port, packed
// addr<<32 | peerPort<<16 | localPort. The packing fills the word exactly
// (32+16+16 bits), so it is collision-free; a plain uint64 key routes the
// bridges' per-segment map lookups through the runtime's fast64 access
// paths, which a same-sized struct key does not get.
type TupleKey uint64

// MakeTupleKey packs a peer endpoint and replicated-server port into a
// TupleKey.
func MakeTupleKey(peer ipv4.Addr, peerPort, localPort uint16) TupleKey {
	return TupleKey(uint64(peer)<<32 | uint64(peerPort)<<16 | uint64(localPort))
}

// sortedKeys returns m's keys in ascending order. The failover
// reconfiguration paths walk whole connection tables; iterating the map
// directly would let Go's randomized map order decide the per-connection
// send order, breaking run-to-run determinism the moment a table holds
// more than one entry (the adversarial SYN-flood scenarios hold hundreds).
func sortedKeys[V any](m map[TupleKey]V) []TupleKey {
	return slices.Sorted(maps.Keys(m))
}

// PeerAddr returns the unreplicated peer's address.
func (k TupleKey) PeerAddr() ipv4.Addr { return ipv4.Addr(k >> 32) }

// PeerPort returns the unreplicated peer's port.
func (k TupleKey) PeerPort() uint16 { return uint16(k >> 16) }

// LocalPort returns the replicated server's port.
func (k TupleKey) LocalPort() uint16 { return uint16(k) }

// Selector decides which TCP connections are failover connections. The
// paper implements two methods (section 7): a per-socket option, and a
// user-specified set of port numbers; the same configuration must be
// installed on the primary and the secondary. Selector supports both:
// server ports (the replicated server's listening ports), peer ports (for
// server-initiated connections to well-known back-end ports), and explicit
// per-connection tuples (the socket-option method).
type Selector struct {
	serverPorts map[uint16]bool
	peerPorts   map[uint16]bool
	tuples      map[TupleKey]bool
	// gen counts configuration changes so per-flow verdict caches (the
	// secondary bridge's) can self-invalidate instead of re-probing the
	// three maps on every snooped segment.
	gen uint64
}

// NewSelector returns an empty selector.
func NewSelector() *Selector {
	return &Selector{
		serverPorts: make(map[uint16]bool),
		peerPorts:   make(map[uint16]bool),
		tuples:      make(map[TupleKey]bool),
	}
}

// EnableServerPort marks every connection whose replicated-server port is p
// as a failover connection (paper's method 2, for server sockets).
func (s *Selector) EnableServerPort(p uint16) { s.serverPorts[p] = true; s.gen++ }

// EnablePeerPort marks every connection toward remote port p as a failover
// connection; used for server-initiated connections to an unreplicated
// back-end (paper section 7.2).
func (s *Selector) EnablePeerPort(p uint16) { s.peerPorts[p] = true; s.gen++ }

// EnableTuple marks one specific connection (paper's method 1, the
// per-socket option).
func (s *Selector) EnableTuple(k TupleKey) { s.tuples[k] = true; s.gen++ }

// DisableServerPort removes a server port from the set.
func (s *Selector) DisableServerPort(p uint16) { delete(s.serverPorts, p); s.gen++ }

// Gen returns the configuration generation; it changes whenever the
// selection rules do.
func (s *Selector) Gen() uint64 { return s.gen }

// Match reports whether a connection identified by k is a failover
// connection.
func (s *Selector) Match(k TupleKey) bool {
	return s.serverPorts[k.LocalPort()] || s.peerPorts[k.PeerPort()] || s.tuples[k]
}

// ServerPorts returns the configured server ports.
func (s *Selector) ServerPorts() []uint16 {
	out := make([]uint16, 0, len(s.serverPorts))
	for p := range s.serverPorts {
		out = append(out, p)
	}
	return out
}
