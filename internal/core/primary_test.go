package core

import (
	"bytes"
	"testing"

	"tcpfailover/internal/ethernet"
	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/netbuf"
	"tcpfailover/internal/netstack"
	"tcpfailover/internal/sim"
	"tcpfailover/internal/tcp"
)

// Unit-level tests of the primary bridge: scripted segments are pushed
// through its hooks and the emitted client-bound segments are captured.

type priFixture struct {
	sched *sim.Scheduler
	host  *netstack.Host
	b     *PrimaryBridge
	aP    ipv4.Addr
	aS    ipv4.Addr
	aC    ipv4.Addr
	sent  []capturedSeg
}

type capturedSeg struct {
	dst ipv4.Addr
	seg *tcp.Segment
	raw []byte
}

func newPriFixture(t *testing.T) *priFixture {
	t.Helper()
	return newPriFixtureCfg(t, PrimaryConfig{})
}

func newPriFixtureCfg(t *testing.T, cfg PrimaryConfig) *priFixture {
	t.Helper()
	f := &priFixture{
		sched: sim.New(1),
		aP:    ipv4.MustParseAddr("10.0.1.1"),
		aS:    ipv4.MustParseAddr("10.0.1.2"),
		aC:    ipv4.MustParseAddr("10.0.2.1"),
	}
	seg := ethernet.NewSegment(f.sched, ethernet.Config{})
	prefix := ipv4.PrefixFrom(ipv4.MustParseAddr("10.0.1.0"), 24)
	f.host = netstack.NewHost(f.sched, "p", netstack.DefaultProfile())
	f.host.AttachIface(seg, ethernet.MAC{2, 0, 0, 0, 0, 1}, f.aP, prefix)
	sel := NewSelector()
	sel.EnableServerPort(80)
	f.b = NewPrimaryBridge(f.host, f.aP, f.aS, sel, cfg)
	// Capture emissions without touching the wire.
	f.b.SetEmitFunc(func(client ipv4.Addr, pkt *netbuf.Buffer) {
		raw := append([]byte(nil), pkt.Bytes()...)
		pkt.Release()
		s, err := tcp.Unmarshal(f.aP, client, raw, true)
		if err != nil {
			t.Fatalf("bridge emitted an invalid segment: %v", err)
		}
		f.sent = append(f.sent, capturedSeg{dst: client, seg: s, raw: raw})
	})
	return f
}

// fromPrimaryTCP pushes a segment as if the local TCP layer emitted it.
func (f *priFixture) fromPrimaryTCP(t *testing.T, seg *tcp.Segment) {
	t.Helper()
	seg.SrcPort, seg.DstPort = 80, 49152
	raw := tcp.Marshal(f.aP, f.aC, seg)
	if !f.b.outbound(f.aP, f.aC, raw) {
		t.Fatalf("failover segment not consumed: %+v", seg)
	}
}

// fromSecondaryWire pushes a diverted segment as it would arrive from S.
func (f *priFixture) fromSecondaryWire(t *testing.T, seg *tcp.Segment) {
	t.Helper()
	seg.SrcPort, seg.DstPort = 80, 49152
	raw := tcp.Marshal(f.aS, f.aC, seg)
	div, err := tcp.InsertOrigDstOption(raw, f.aC)
	if err != nil {
		t.Fatal(err)
	}
	tcp.PatchPseudoAddr(div, f.aC, f.aP)
	verdict, _, _ := f.b.inbound(0, ipv4.Header{Protocol: ipv4.ProtoTCP, Src: f.aS, Dst: f.aP}, div)
	if verdict != netstack.VerdictDrop {
		t.Fatalf("diverted segment not consumed (verdict %v)", verdict)
	}
}

// fromClientWire pushes a client segment; returns the possibly patched
// payload that would be delivered to the local TCP layer.
func (f *priFixture) fromClientWire(t *testing.T, seg *tcp.Segment) []byte {
	t.Helper()
	seg.SrcPort, seg.DstPort = 49152, 80
	raw := tcp.Marshal(f.aC, f.aP, seg)
	verdict, _, np := f.b.inbound(0, ipv4.Header{Protocol: ipv4.ProtoTCP, Src: f.aC, Dst: f.aP}, raw)
	if verdict == netstack.VerdictDrop {
		return nil
	}
	return np
}

const (
	clientISS = 1_000_000
	pISS      = 50_000_000
	sISS      = 90_000_000
)

// establish walks the fixture through a client-initiated handshake.
func (f *priFixture) establish(t *testing.T) {
	t.Helper()
	f.fromClientWire(t, &tcp.Segment{Seq: clientISS, Flags: tcp.FlagSYN, Window: 65535,
		Options: []tcp.Option{tcp.MSSOption(1460)}})
	f.fromPrimaryTCP(t, &tcp.Segment{Seq: pISS, Ack: clientISS + 1,
		Flags: tcp.FlagSYN | tcp.FlagACK, Window: 60000,
		Options: []tcp.Option{tcp.MSSOption(1460)}})
	if len(f.sent) != 0 {
		t.Fatalf("SYN-ACK not held while waiting for the secondary (sent %d)", len(f.sent))
	}
	f.fromSecondaryWire(t, &tcp.Segment{Seq: sISS, Ack: clientISS + 1,
		Flags: tcp.FlagSYN | tcp.FlagACK, Window: 58000,
		Options: []tcp.Option{tcp.MSSOption(1452)}})
	if len(f.sent) != 1 {
		t.Fatalf("combined SYN-ACK count = %d, want 1", len(f.sent))
	}
}

func TestBridgeCombinedSynAck(t *testing.T) {
	f := newPriFixture(t)
	f.establish(t)
	syn := f.sent[0].seg
	if !syn.Flags.Has(tcp.FlagSYN | tcp.FlagACK) {
		t.Errorf("flags = %v", syn.Flags)
	}
	if syn.Seq != sISS {
		t.Errorf("combined SYN seq = %d, want the secondary's ISS %d", syn.Seq, sISS)
	}
	if syn.Ack != clientISS+1 {
		t.Errorf("ack = %d", syn.Ack)
	}
	if mss, _ := syn.MSS(); mss != 1452 {
		t.Errorf("MSS = %d, want min(1460,1452)", mss)
	}
	if syn.Window != 58000 {
		t.Errorf("window = %d, want min(60000,58000)", syn.Window)
	}
}

func TestBridgeFigure2Matching(t *testing.T) {
	f := newPriFixture(t)
	f.establish(t)
	f.sent = nil

	// The primary's TCP produces 4 bytes in P-space; no emission until the
	// secondary's copy arrives.
	f.fromPrimaryTCP(t, &tcp.Segment{Seq: pISS + 1, Ack: clientISS + 1,
		Flags: tcp.FlagACK | tcp.FlagPSH, Window: 60000, Payload: []byte("wxyz")})
	if len(f.sent) != 0 {
		t.Fatalf("primary data released without the secondary's copy")
	}
	// The secondary produces the same bytes, differently segmented: first
	// two, then the rest plus more that the primary has not produced yet.
	f.fromSecondaryWire(t, &tcp.Segment{Seq: sISS + 1, Ack: clientISS + 1,
		Flags: tcp.FlagACK, Window: 58000, Payload: []byte("wx")})
	if len(f.sent) != 1 || string(f.sent[0].seg.Payload) != "wx" {
		t.Fatalf("first match: %+v", f.sent)
	}
	f.fromSecondaryWire(t, &tcp.Segment{Seq: sISS + 3, Ack: clientISS + 1,
		Flags: tcp.FlagACK, Window: 58000, Payload: []byte("yzAB")})
	if len(f.sent) != 2 || string(f.sent[1].seg.Payload) != "yz" {
		t.Fatalf("second match: %+v", f.sent)
	}
	// The sequence numbers to the client are in the secondary's space.
	if f.sent[0].seg.Seq != sISS+1 || f.sent[1].seg.Seq != sISS+3 {
		t.Errorf("emitted seqs %d, %d", f.sent[0].seg.Seq, f.sent[1].seg.Seq)
	}
	// "AB" waits in the secondary queue for the primary's copy.
	f.fromPrimaryTCP(t, &tcp.Segment{Seq: pISS + 5, Ack: clientISS + 1,
		Flags: tcp.FlagACK | tcp.FlagPSH, Window: 60000, Payload: []byte("AB")})
	if len(f.sent) != 3 || string(f.sent[2].seg.Payload) != "AB" {
		t.Fatalf("third match: %+v", f.sent)
	}
}

func TestBridgeMinAckAndWindow(t *testing.T) {
	f := newPriFixture(t)
	f.establish(t)
	f.sent = nil

	// The primary acknowledges further than the secondary: the combined
	// minimum has not advanced, so the bridge must stay silent — this is
	// the guarantee that the client never sees data acknowledged before
	// both replicas hold it (requirement 2).
	f.fromPrimaryTCP(t, &tcp.Segment{Seq: pISS + 1, Ack: clientISS + 2921,
		Flags: tcp.FlagACK, Window: 50000})
	if len(f.sent) != 0 {
		t.Fatalf("bridge acked ahead of the secondary: %+v", f.sent)
	}
	f.fromSecondaryWire(t, &tcp.Segment{Seq: sISS + 1, Ack: clientISS + 1461,
		Flags: tcp.FlagACK, Window: 40000})
	if len(f.sent) != 1 {
		t.Fatalf("no empty ack after combined minimum advanced")
	}
	out := f.sent[0].seg
	if out.Ack != clientISS+1461 {
		t.Errorf("ack = %d, want min(2921,1461)+base = %d", out.Ack, clientISS+1461)
	}
	if out.Window != 40000 {
		t.Errorf("window = %d, want min(50000,40000)", out.Window)
	}
}

func TestBridgeInboundAckTranslation(t *testing.T) {
	f := newPriFixture(t)
	f.establish(t)

	// The client acknowledges in the secondary's space; the local TCP layer
	// must receive it in the primary's space (+Delta).
	delivered := f.fromClientWire(t, &tcp.Segment{Seq: clientISS + 1, Ack: sISS + 101,
		Flags: tcp.FlagACK, Window: 65535})
	if delivered == nil {
		t.Fatal("client segment consumed")
	}
	if got := tcp.RawAck(delivered); got != tcp.Seq(pISS+101) {
		t.Errorf("translated ack = %d, want %d", got, pISS+101)
	}
	if tcp.ComputeChecksum(f.aC, f.aP, delivered) != 0 {
		t.Error("checksum invalid after the incremental ack patch")
	}
}

func TestBridgeRetransmissionForwardedImmediately(t *testing.T) {
	f := newPriFixture(t)
	f.establish(t)
	f.sent = nil
	// Release four bytes.
	f.fromPrimaryTCP(t, &tcp.Segment{Seq: pISS + 1, Ack: clientISS + 1,
		Flags: tcp.FlagACK, Window: 60000, Payload: []byte("data")})
	f.fromSecondaryWire(t, &tcp.Segment{Seq: sISS + 1, Ack: clientISS + 1,
		Flags: tcp.FlagACK, Window: 58000, Payload: []byte("data")})
	if len(f.sent) != 1 {
		t.Fatal("setup release failed")
	}
	f.sent = nil
	// The primary's TCP retransmits: the bridge holds only one copy, so it
	// must send immediately without waiting for the secondary (section 4).
	f.fromPrimaryTCP(t, &tcp.Segment{Seq: pISS + 1, Ack: clientISS + 1,
		Flags: tcp.FlagACK, Window: 60000, Payload: []byte("data")})
	if len(f.sent) != 1 || string(f.sent[0].seg.Payload) != "data" {
		t.Fatalf("retransmission not forwarded: %+v", f.sent)
	}
	if f.sent[0].seg.Seq != sISS+1 {
		t.Errorf("retransmission seq = %d, want translated %d", f.sent[0].seg.Seq, sISS+1)
	}
	if f.b.Stats().RetransmissionsForwarded != 1 {
		t.Errorf("RetransmissionsForwarded = %d", f.b.Stats().RetransmissionsForwarded)
	}
}

func TestBridgeReplicaBytesMustMatch(t *testing.T) {
	f := newPriFixture(t)
	f.b.cfg.VerifyReplicaOutput = true
	f.establish(t)
	f.fromPrimaryTCP(t, &tcp.Segment{Seq: pISS + 1, Ack: clientISS + 1,
		Flags: tcp.FlagACK, Window: 60000, Payload: []byte("AAAA")})
	f.fromSecondaryWire(t, &tcp.Segment{Seq: sISS + 1, Ack: clientISS + 1,
		Flags: tcp.FlagACK, Window: 58000, Payload: []byte("BBBB")})
	if f.b.Stats().Divergences == 0 {
		t.Error("divergent replica output not detected")
	}
}

func TestBridgeDegradedPassThrough(t *testing.T) {
	f := newPriFixture(t)
	f.establish(t)
	f.sent = nil
	// Queue primary bytes the secondary never confirms, then fail it.
	f.fromPrimaryTCP(t, &tcp.Segment{Seq: pISS + 1, Ack: clientISS + 1,
		Flags: tcp.FlagACK | tcp.FlagPSH, Window: 60000, Payload: []byte("pending")})
	f.b.HandleSecondaryFailure()
	if !f.b.Degraded() {
		t.Fatal("not degraded")
	}
	// Step 1: the queue is flushed to the client.
	if len(f.sent) != 1 || string(f.sent[0].seg.Payload) != "pending" {
		t.Fatalf("queue not flushed: %+v", f.sent)
	}
	if f.sent[0].seg.Seq != sISS+1 {
		t.Errorf("flush seq = %d, want translated space", f.sent[0].seg.Seq)
	}
	f.sent = nil
	// Step 3: subsequent segments pass straight through, still translated.
	f.fromPrimaryTCP(t, &tcp.Segment{Seq: pISS + 8, Ack: clientISS + 9,
		Flags: tcp.FlagACK | tcp.FlagPSH, Window: 60000, Payload: []byte("more")})
	if len(f.sent) != 1 {
		t.Fatalf("degraded segment not forwarded")
	}
	out := f.sent[0]
	if out.seg.Seq != sISS+8 {
		t.Errorf("degraded seq = %d, want %d (Delta still subtracted)", out.seg.Seq, sISS+8)
	}
	if out.seg.Ack != clientISS+9 {
		t.Errorf("degraded ack = %d, want the primary's own %d", out.seg.Ack, clientISS+9)
	}
	if !bytes.Equal(out.seg.Payload, []byte("more")) {
		t.Error("payload damaged in degraded pass-through")
	}
}

// TestBridgeServerInitiatedEstablishment covers section 7.2: both replicas
// dial an unreplicated server T; the bridge merges their SYNs into one.
func TestBridgeServerInitiatedEstablishment(t *testing.T) {
	f := newPriFixture(t)
	f.b.sel.EnablePeerPort(49152) // "T"'s well-known port, for this test

	// The primary's TCP dials first: a bare SYN, held by the bridge.
	f.fromPrimaryTCP(t, &tcp.Segment{Seq: pISS, Flags: tcp.FlagSYN,
		Window: 60000, Options: []tcp.Option{tcp.MSSOption(1460)}})
	if len(f.sent) != 0 {
		t.Fatal("primary SYN not held")
	}
	// The secondary's diverted SYN arrives; the combined SYN goes to T.
	f.fromSecondaryWire(t, &tcp.Segment{Seq: sISS, Flags: tcp.FlagSYN,
		Window: 58000, Options: []tcp.Option{tcp.MSSOption(1452)}})
	if len(f.sent) != 1 {
		t.Fatalf("combined SYN count = %d", len(f.sent))
	}
	syn := f.sent[0].seg
	if syn.Flags.Has(tcp.FlagACK) {
		t.Error("server-initiated combined SYN must not carry ACK")
	}
	if syn.Seq != sISS {
		t.Errorf("seq = %d, want the secondary's ISS", syn.Seq)
	}
	if mss, _ := syn.MSS(); mss != 1452 {
		t.Errorf("MSS = %d, want the minimum", mss)
	}

	// T's SYN-ACK (a "client" segment here) gets its ack translated for
	// the local TCP layer.
	delivered := f.fromClientWire(t, &tcp.Segment{Seq: clientISS, Ack: sISS + 1,
		Flags: tcp.FlagSYN | tcp.FlagACK, Window: 65535,
		Options: []tcp.Option{tcp.MSSOption(1460)}})
	if delivered == nil {
		t.Fatal("T's SYN-ACK consumed")
	}
	if got := tcp.RawAck(delivered); got != tcp.Seq(pISS+1) {
		t.Errorf("translated ack = %d, want %d", got, pISS+1)
	}

	// The replicas' final handshake ACKs: the first advances the combined
	// minimum and completes T's handshake.
	f.sent = nil
	f.fromPrimaryTCP(t, &tcp.Segment{Seq: pISS + 1, Ack: clientISS + 1,
		Flags: tcp.FlagACK, Window: 60000})
	f.fromSecondaryWire(t, &tcp.Segment{Seq: sISS + 1, Ack: clientISS + 1,
		Flags: tcp.FlagACK, Window: 58000})
	if len(f.sent) != 1 {
		t.Fatalf("final ACK emissions = %d, want exactly 1", len(f.sent))
	}
	if f.sent[0].seg.Ack != clientISS+1 {
		t.Errorf("final ack = %d", f.sent[0].seg.Ack)
	}
}

// TestBridgeRSTForwarding covers both directions of reset propagation.
func TestBridgeRSTForwarding(t *testing.T) {
	t.Run("from_primary_translated", func(t *testing.T) {
		f := newPriFixture(t)
		f.establish(t)
		f.sent = nil
		f.fromPrimaryTCP(t, &tcp.Segment{Seq: pISS + 1, Ack: clientISS + 1,
			Flags: tcp.FlagRST | tcp.FlagACK})
		if len(f.sent) != 1 || !f.sent[0].seg.Flags.Has(tcp.FlagRST) {
			t.Fatalf("RST not forwarded: %+v", f.sent)
		}
		if f.sent[0].seg.Seq != sISS+1 {
			t.Errorf("RST seq = %d, want translated %d", f.sent[0].seg.Seq, sISS+1)
		}
		if f.b.Conns() != 0 {
			t.Error("connection record survived the reset")
		}
	})
	t.Run("from_secondary_as_is", func(t *testing.T) {
		f := newPriFixture(t)
		f.establish(t)
		f.sent = nil
		f.fromSecondaryWire(t, &tcp.Segment{Seq: sISS + 1, Ack: clientISS + 1,
			Flags: tcp.FlagRST | tcp.FlagACK})
		if len(f.sent) != 1 || !f.sent[0].seg.Flags.Has(tcp.FlagRST) {
			t.Fatalf("RST not forwarded: %+v", f.sent)
		}
		if f.sent[0].seg.Seq != sISS+1 {
			t.Errorf("RST seq = %d (the secondary's space needs no translation)", f.sent[0].seg.Seq)
		}
	})
	t.Run("syn_refusal_passthrough", func(t *testing.T) {
		// A refusal RST (answering a SYN) arrives before Delta is known;
		// its ACK-derived fields are valid in any space.
		f := newPriFixture(t)
		f.fromClientWire(t, &tcp.Segment{Seq: clientISS, Flags: tcp.FlagSYN, Window: 65535})
		f.fromPrimaryTCP(t, &tcp.Segment{Seq: 0, Ack: clientISS + 1,
			Flags: tcp.FlagRST | tcp.FlagACK})
		if len(f.sent) != 1 || !f.sent[0].seg.Flags.Has(tcp.FlagRST) {
			t.Fatalf("refusal RST not forwarded: %+v", f.sent)
		}
	})
}

// TestBridgeDegradedNewConnections: connections arriving after the
// secondary has failed establish against the primary alone, with
// Delta-seq = 0 (the primary's SYN stands in for the missing secondary's).
func TestBridgeDegradedNewConnections(t *testing.T) {
	f := newPriFixture(t)
	f.b.HandleSecondaryFailure()
	f.fromClientWire(t, &tcp.Segment{Seq: clientISS, Flags: tcp.FlagSYN, Window: 65535,
		Options: []tcp.Option{tcp.MSSOption(1460)}})
	f.fromPrimaryTCP(t, &tcp.Segment{Seq: pISS, Ack: clientISS + 1,
		Flags: tcp.FlagSYN | tcp.FlagACK, Window: 60000,
		Options: []tcp.Option{tcp.MSSOption(1460)}})
	if len(f.sent) != 1 {
		t.Fatalf("SYN-ACK not emitted in degraded mode (sent=%d)", len(f.sent))
	}
	syn := f.sent[0].seg
	if syn.Seq != pISS {
		t.Errorf("degraded SYN-ACK seq = %d, want the primary's own ISS (Delta=0)", syn.Seq)
	}
	f.sent = nil
	// Data passes straight through, untranslated.
	f.fromPrimaryTCP(t, &tcp.Segment{Seq: pISS + 1, Ack: clientISS + 1,
		Flags: tcp.FlagACK | tcp.FlagPSH, Window: 60000, Payload: []byte("solo")})
	if len(f.sent) != 1 || f.sent[0].seg.Seq != pISS+1 {
		t.Fatalf("degraded new-connection data mishandled: %+v", f.sent)
	}
}

// TestBridgeFinMatching: the merged FIN is emitted only when both replicas
// have produced theirs at the same stream position (section 8).
func TestBridgeFinMatching(t *testing.T) {
	f := newPriFixture(t)
	f.establish(t)
	f.sent = nil
	f.fromPrimaryTCP(t, &tcp.Segment{Seq: pISS + 1, Ack: clientISS + 1,
		Flags: tcp.FlagACK | tcp.FlagFIN | tcp.FlagPSH, Window: 60000, Payload: []byte("bye")})
	if len(f.sent) != 0 {
		t.Fatal("FIN released before the secondary's")
	}
	f.fromSecondaryWire(t, &tcp.Segment{Seq: sISS + 1, Ack: clientISS + 1,
		Flags: tcp.FlagACK | tcp.FlagFIN | tcp.FlagPSH, Window: 58000, Payload: []byte("bye")})
	if len(f.sent) != 1 {
		t.Fatalf("merged FIN emissions = %d", len(f.sent))
	}
	out := f.sent[0].seg
	if !out.Flags.Has(tcp.FlagFIN) || string(out.Payload) != "bye" {
		t.Fatalf("merged segment: %+v", out)
	}
	// The client acknowledges the FIN; with its own FIN already seen, the
	// record is garbage-collected.
	f.fromClientWire(t, &tcp.Segment{Seq: clientISS + 1, Ack: sISS + 5,
		Flags: tcp.FlagACK | tcp.FlagFIN, Window: 65535})
	f.fromPrimaryTCP(t, &tcp.Segment{Seq: pISS + 5, Ack: clientISS + 2, Flags: tcp.FlagACK, Window: 60000})
	f.fromSecondaryWire(t, &tcp.Segment{Seq: sISS + 5, Ack: clientISS + 2, Flags: tcp.FlagACK, Window: 58000})
	f.fromClientWire(t, &tcp.Segment{Seq: clientISS + 2, Ack: sISS + 5, Flags: tcp.FlagACK, Window: 65535})
	if f.b.Conns() != 0 {
		t.Errorf("record not garbage-collected after full close (%d left)", f.b.Conns())
	}
}
