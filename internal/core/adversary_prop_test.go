package core

import (
	"testing"

	"tcpfailover/internal/fault"
	"tcpfailover/internal/tcp"
)

// Property tests for the bridge hardening knobs: each defense is gated by a
// paired run of 1000 seeded trials — with the knob off the attack must
// succeed (establishing that the threat is real and the attack model
// works), with it on the attack must be defeated. The trials draw forged
// sequence numbers from the same seeded stream in both runs, so the pair
// compares the defense, not the luck.

const propTrials = 1000

// establishForAttack walks the handshake and one ack exchange so the
// connection reaches the steady state an off-path attacker targets:
// combined SYN sent, both replica acks recorded, last-ack valid.
func (f *priFixture) establishForAttack(t *testing.T) {
	t.Helper()
	f.establish(t)
	f.fromClientWire(t, &tcp.Segment{Seq: clientISS + 1, Ack: sISS + 1, Flags: tcp.FlagACK, Window: 65535})
	f.fromPrimaryTCP(t, &tcp.Segment{Seq: pISS + 1, Ack: clientISS + 1, Flags: tcp.FlagACK, Window: 60000})
	f.fromSecondaryWire(t, &tcp.Segment{Seq: sISS + 1, Ack: clientISS + 1, Flags: tcp.FlagACK, Window: 58000})
}

// TestPropBridgeBlindRST: a forged client-side RST with a uniformly random
// sequence number. Unvalidated, ANY random value tears down the bridge's
// connection state (the segment selector never looks at seq); validated,
// the probe must land inside a 64 KB window of a 4 GB space.
func TestPropBridgeBlindRST(t *testing.T) {
	for _, tc := range []struct {
		name     string
		validate bool
	}{
		{"off-attack-succeeds", false},
		{"on-attack-defeated", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := fault.NewRand(0xb11d).Split("rst")
			killed, drops := 0, int64(0)
			for i := 0; i < propTrials; i++ {
				f := newPriFixtureCfg(t, PrimaryConfig{ValidateSeq: tc.validate})
				f.establishForAttack(t)
				f.fromClientWire(t, &tcp.Segment{
					Seq: tcp.Seq(rng.Uint64()), Ack: tcp.Seq(rng.Uint64()),
					Flags: tcp.FlagRST | tcp.FlagACK,
				})
				if f.b.Conns() == 0 {
					killed++
				}
				drops += f.b.Stats().SeqInvalidDrops
			}
			if !tc.validate {
				if killed != propTrials {
					t.Errorf("unvalidated: %d/%d blind RSTs killed the connection, want all", killed, propTrials)
				}
				if drops != 0 {
					t.Errorf("unvalidated bridge recorded %d seq drops", drops)
				}
			} else {
				if killed > 3 {
					t.Errorf("validated: %d/%d blind RSTs still killed the connection", killed, propTrials)
				}
				if drops != int64(propTrials-killed) {
					t.Errorf("drops = %d, want %d", drops, propTrials-killed)
				}
			}
		})
	}
}

// TestPropBridgeDivertedRST: the same probe arriving via the secondary's
// diverted path (an attacker spoofing the replica instead of the client).
func TestPropBridgeDivertedRST(t *testing.T) {
	for _, tc := range []struct {
		name     string
		validate bool
	}{
		{"off-attack-succeeds", false},
		{"on-attack-defeated", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := fault.NewRand(0xb11d).Split("diverted")
			killed, drops := 0, int64(0)
			for i := 0; i < propTrials; i++ {
				f := newPriFixtureCfg(t, PrimaryConfig{ValidateSeq: tc.validate})
				f.establishForAttack(t)
				f.fromSecondaryWire(t, &tcp.Segment{
					Seq: tcp.Seq(rng.Uint64()), Ack: tcp.Seq(rng.Uint64()),
					Flags: tcp.FlagRST | tcp.FlagACK,
				})
				if f.b.Conns() == 0 {
					killed++
				}
				drops += f.b.Stats().SeqInvalidDrops
			}
			if !tc.validate {
				if killed != propTrials {
					t.Errorf("unvalidated: %d/%d diverted RSTs killed the connection, want all", killed, propTrials)
				}
			} else {
				if killed > 3 {
					t.Errorf("validated: %d/%d diverted RSTs still killed the connection", killed, propTrials)
				}
				if drops != int64(propTrials-killed) {
					t.Errorf("drops = %d, want %d", drops, propTrials-killed)
				}
			}
		})
	}
}

// TestPropBridgeStaleDataHorizon: forged client data with a random sequence
// number — the ACK-storm reflection primitive. Unvalidated, roughly half
// the probes land at-or-below the connection's cumulative ack and trigger
// the bridge's immediate duplicate-ack reply; validated, a probe must land
// within the ±64 KB horizon of the ack point to get any reaction at all.
func TestPropBridgeStaleDataHorizon(t *testing.T) {
	payload := []byte("0123456789abcdef0123456789abcdef")
	for _, tc := range []struct {
		name     string
		validate bool
	}{
		{"off-attack-succeeds", false},
		{"on-attack-defeated", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := fault.NewRand(0xb11d).Split("stale")
			reflected, drops := 0, int64(0)
			for i := 0; i < propTrials; i++ {
				f := newPriFixtureCfg(t, PrimaryConfig{ValidateSeq: tc.validate})
				f.establishForAttack(t)
				emitted := len(f.sent)
				f.fromClientWire(t, &tcp.Segment{
					Seq: tcp.Seq(rng.Uint64()), Ack: sISS + 1,
					Flags: tcp.FlagACK | tcp.FlagPSH, Window: 65535, Payload: payload,
				})
				if len(f.sent) > emitted {
					reflected++
				}
				drops += f.b.Stats().SeqInvalidDrops
			}
			if !tc.validate {
				// The ack-or-below half-space triggers the duplicate ack:
				// binomial(1000, ~1/2) stays within these bounds with margin.
				if reflected < 400 || reflected > 600 {
					t.Errorf("unvalidated: %d/%d stale probes reflected, want ~500", reflected, propTrials)
				}
			} else {
				if reflected > 3 {
					t.Errorf("validated: %d/%d stale probes still reflected", reflected, propTrials)
				}
				if drops < int64(propTrials)-3 {
					t.Errorf("drops = %d, want ~%d", drops, propTrials)
				}
			}
		})
	}
}
