package apps

import (
	"fmt"
	"io"
	"strings"

	"tcpfailover/internal/ipv4"
	"tcpfailover/internal/tcp"
)

// A two-tier system for the paper's section 7.2: a *replicated* middle tier
// that accepts client requests and satisfies them from an *unreplicated*
// back-end key-value store T, to which the replicated servers open a
// server-initiated TCP connection through the bridge.
//
// Back-end protocol (line-oriented):
//
//	GET <key>          -> VAL <value> | NIL
//	PUT <key> <value>  -> OK
//
// Middle-tier protocol:
//
//	FETCH <key>        -> 200 <value> | 404
//	STORE <key> <val>  -> 201
//	QUIT               -> 221 (closes)

// KVDefaultPort is the back-end's well-known port.
const KVDefaultPort = 5432

// KVServer is the unreplicated back-end store.
type KVServer struct {
	Data map[string]string
	// Requests counts processed commands.
	Requests int64
}

// NewKVServer installs the back end on port.
func NewKVServer(stack *tcp.Stack, port uint16, seed map[string]string) (*KVServer, error) {
	s := &KVServer{Data: make(map[string]string, len(seed))}
	for k, v := range seed {
		s.Data[k] = v
	}
	_, err := stack.Listen(port, func(c *tcp.Conn) {
		var lr lineReader
		buf := make([]byte, copyBufSize)
		c.OnReadable(func() {
			for {
				n, err := c.Read(buf)
				if n > 0 {
					for _, line := range lr.feed(buf[:n]) {
						s.Requests++
						fields := strings.Fields(line)
						switch {
						case len(fields) == 2 && strings.EqualFold(fields[0], "GET"):
							if v, ok := s.Data[fields[1]]; ok {
								_, _ = c.Write([]byte("VAL " + v + "\n"))
							} else {
								_, _ = c.Write([]byte("NIL\n"))
							}
						case len(fields) == 3 && strings.EqualFold(fields[0], "PUT"):
							s.Data[fields[1]] = fields[2]
							_, _ = c.Write([]byte("OK\n"))
						default:
							_, _ = c.Write([]byte("ERR\n"))
						}
					}
					continue
				}
				if err == io.EOF {
					c.Close()
				}
				return
			}
		})
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Frontend is the replicated middle tier. It opens one back-end connection
// per accepted client session — keeping each back-end byte stream driven by
// exactly one client connection, which is what makes the replicas'
// server-initiated streams byte-identical (the paper's per-connection
// determinism requirement, section 1).
type Frontend struct {
	stack  *tcp.Stack
	beAddr ipv4.Addr
	bePort uint16
	// BackendConns counts back-end connections opened.
	BackendConns int
}

// NewFrontend installs the middle tier: it listens on port for clients and
// dials the back end at beAddr:bePort once per client session.
func NewFrontend(stack *tcp.Stack, port uint16, beAddr ipv4.Addr, bePort uint16) (*Frontend, error) {
	f := &Frontend{stack: stack, beAddr: beAddr, bePort: bePort}
	_, err := stack.Listen(port, func(c *tcp.Conn) {
		be, err := stack.Dial(f.beAddr, f.bePort)
		if err != nil {
			c.Abort()
			return
		}
		f.BackendConns++
		sess := &feSession{
			conn: c,
			be:   be,
			buf:  make([]byte, copyBufSize),
			bbuf: make([]byte, copyBufSize),
		}
		c.OnReadable(sess.onReadable)
		c.OnClose(func(error) { be.Close() })
		be.OnReadable(sess.onBackendReadable)
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

type feSession struct {
	conn *tcp.Conn
	be   *tcp.Conn
	lr   lineReader
	blr  lineReader
	buf  []byte
	bbuf []byte
	// Replies go out strictly in command order: each command reserves a
	// slot, filled either immediately (local errors) or when the matching
	// back-end reply arrives. Waiters map back-end replies onto their
	// slots FIFO.
	slots    []*string
	waiters  []func(string)
	quitting bool
}

// ask forwards one back-end command and fills the command's reply slot
// when the back end answers.
func (s *feSession) ask(cmd string, transform func(string) string) {
	slot := s.reserve()
	s.waiters = append(s.waiters, func(resp string) {
		out := transform(resp)
		*slot = out
		s.flushSlots()
	})
	_, _ = s.be.Write([]byte(cmd + "\n"))
}

// reserve appends an unfilled reply slot.
func (s *feSession) reserve() *string {
	slot := new(string)
	s.slots = append(s.slots, slot)
	return slot
}

// flushSlots emits the filled prefix of the reply queue, in order.
func (s *feSession) flushSlots() {
	for len(s.slots) > 0 && *s.slots[0] != "" {
		_, _ = s.conn.Write([]byte(*s.slots[0] + "\n"))
		s.slots = s.slots[1:]
	}
	s.maybeQuit()
}

func (s *feSession) onBackendReadable() {
	for {
		n, rerr := s.be.Read(s.bbuf)
		if n > 0 {
			for _, line := range s.blr.feed(s.bbuf[:n]) {
				if len(s.waiters) > 0 {
					cb := s.waiters[0]
					s.waiters = s.waiters[1:]
					cb(line)
				}
			}
			continue
		}
		if rerr == io.EOF {
			s.be.Close()
		}
		return
	}
}

func (s *feSession) onReadable() {
	for {
		n, err := s.conn.Read(s.buf)
		if n > 0 {
			for _, line := range s.lr.feed(s.buf[:n]) {
				s.command(line)
			}
			continue
		}
		if err == io.EOF {
			s.conn.Close()
		}
		return
	}
}

// reply answers a command synchronously, keeping command order.
func (s *feSession) reply(line string) {
	slot := s.reserve()
	*slot = line
	s.flushSlots()
}

func (s *feSession) maybeQuit() {
	if s.quitting && len(s.slots) == 0 {
		s.quitting = false
		_, _ = s.conn.Write([]byte("221\n"))
		s.conn.Close()
	}
}

func (s *feSession) command(line string) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return
	}
	switch {
	case len(fields) == 2 && strings.EqualFold(fields[0], "FETCH"):
		s.ask("GET "+fields[1], func(resp string) string {
			if v, ok := strings.CutPrefix(resp, "VAL "); ok {
				return "200 " + v
			}
			return "404"
		})
	case len(fields) == 3 && strings.EqualFold(fields[0], "STORE"):
		s.ask(fmt.Sprintf("PUT %s %s", fields[1], fields[2]), func(resp string) string {
			if resp == "OK" {
				return "201"
			}
			return "500"
		})
	case strings.EqualFold(fields[0], "QUIT"):
		// Answer only after all in-flight back-end replies have been
		// relayed, so responses reach the client in order.
		s.quitting = true
		s.maybeQuit()
	default:
		s.reply("400 unknown command")
	}
}
