package apps

import (
	"strings"
	"testing"
	"time"

	"tcpfailover/internal/ipv4"
)

func TestPatternVerifyRoundTrip(t *testing.T) {
	buf := make([]byte, 10000)
	Pattern(buf, 12345)
	if i := VerifyPattern(buf, 12345); i != -1 {
		t.Fatalf("self-verify failed at %d", i)
	}
	// Chunked generation matches whole generation.
	a := make([]byte, 1000)
	b := make([]byte, 1000)
	Pattern(a, 0)
	Pattern(b[:500], 0)
	Pattern(b[500:], 500)
	if string(a) != string(b) {
		t.Error("chunked pattern differs from whole pattern")
	}
	// Corruption is found at the right offset.
	buf[777] ^= 0xff
	if i := VerifyPattern(buf, 12345); i != 777 {
		t.Errorf("corruption reported at %d, want 777", i)
	}
}

func TestLineReader(t *testing.T) {
	var lr lineReader
	if lines := lr.feed([]byte("partial")); len(lines) != 0 {
		t.Fatalf("incomplete line returned: %v", lines)
	}
	lines := lr.feed([]byte(" line\r\nsecond\nthird"))
	if len(lines) != 2 || lines[0] != "partial line" || lines[1] != "second" {
		t.Fatalf("lines = %q", lines)
	}
	if lines := lr.feed([]byte("\n")); len(lines) != 1 || lines[0] != "third" {
		t.Fatalf("final line = %q", lines)
	}
}

func TestPortArgRoundTrip(t *testing.T) {
	addr := ipv4.MustParseAddr("10.0.2.1")
	for _, port := range []uint16{1, 80, 40000, 65535} {
		s := formatPortArg(addr, port)
		gotAddr, gotPort, err := parsePortArg(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		if gotAddr != addr || gotPort != port {
			t.Errorf("round trip %q -> %v:%d", s, gotAddr, gotPort)
		}
	}
	for _, bad := range []string{"", "1,2,3", "1,2,3,4,5,6,7", "300,0,0,1,0,80", "a,b,c,d,e,f"} {
		if _, _, err := parsePortArg(bad); err == nil {
			t.Errorf("parsePortArg(%q) accepted", bad)
		}
	}
}

func TestFTPFilesNamesSorted(t *testing.T) {
	files := DefaultFTPFiles()
	names := files.Names()
	if len(names) != 5 {
		t.Fatalf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if files[names[i-1]] > files[names[i]] {
			t.Errorf("names not sorted by size: %v", names)
		}
	}
}

func TestPacingCost(t *testing.T) {
	p := Pacing{Fixed: 100 * time.Microsecond, PerKB: 10 * time.Microsecond}
	if got := p.Cost(2048); got != 120*time.Microsecond {
		t.Errorf("Cost(2048) = %v", got)
	}
	var zero Pacing
	if !zero.zero() || zero.Cost(1000) != 0 {
		t.Error("zero pacing misbehaves")
	}
}

func TestDefaultCatalogDeterministic(t *testing.T) {
	a, b := DefaultCatalog(), DefaultCatalog()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("catalogs differ in size")
	}
	an, bn := a.names(), b.names()
	for i := range an {
		if an[i] != bn[i] {
			t.Fatal("catalog name order not deterministic")
		}
		x, y := a[an[i]], b[bn[i]]
		if x.PriceCents != y.PriceCents || x.Stock != y.Stock || x.Desc != y.Desc {
			t.Fatal("catalog contents differ")
		}
	}
	if !strings.Contains(a["keyboard"].Desc, "keyboard") {
		t.Error("unexpected catalog content")
	}
}
